// Jump tables: switch statements compile to indirect jumps through
// .rodata tables — the paper's bounded-control-flow showcase. The lifter
// proves the table index is bounded (from the cmp/ja guard), enumerates
// the table ("one edge per read value") and resolves the indirection;
// disabling the code-pointer compatibility extension (an ablation) joins
// the loaded pointers into an abstract interval and loses the resolution.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cgen"
)

func main() {
	prog := &cgen.Program{
		Funcs: []*cgen.Func{{
			Name: "dispatch", Params: 1, Locals: 1,
			Body: []cgen.Stmt{
				cgen.Switch{
					X: cgen.Param(0),
					Cases: [][]cgen.Stmt{
						{cgen.Assign{Dst: 0, Src: cgen.Const(100)}},
						{cgen.Assign{Dst: 0, Src: cgen.Const(200)}},
						{cgen.Assign{Dst: 0, Src: cgen.Const(300)}},
						{cgen.Assign{Dst: 0, Src: cgen.Const(400)}},
					},
					Default: []cgen.Stmt{cgen.Assign{Dst: 0, Src: cgen.Const(0)}},
				},
				cgen.Return{X: cgen.Local(0)},
			},
		}},
	}
	bin, err := cgen.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}

	fr, err := repro.LiftFunction(bin.ELF, bin.Funcs["dispatch"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default lift: status=%s resolved-indirections=%d unresolved-jumps=%d\n",
		fr.Status, fr.Stats.ResolvedInd, fr.Stats.UnresolvedJump)

	fmt.Println("\nrecovered disassembly (note the cmp/ja bound and the table jump):")
	lines, err := repro.Disasm(bin.ELF, bin.Funcs["dispatch"])
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(" ", l)
	}

	// Ablation: join code pointers — the loaded table entries collapse
	// into an interval and the jump cannot be bounded.
	ab, err := repro.LiftFunction(bin.ELF, bin.Funcs["dispatch"],
		repro.Options{JoinCodePointers: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nablation (join code pointers): resolved=%d unresolved-jumps=%d\n",
		ab.Stats.ResolvedInd, ab.Stats.UnresolvedJump)
}
