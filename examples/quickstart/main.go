// Quickstart: compile a tiny C-like program to a real ELF binary, lift it
// to a Hoare Graph (Step 1), inspect the recovered disassembly and
// statistics, then independently re-verify every Hoare triple (Step 2).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cgen"
)

func main() {
	// A small program: f(x) = sum of the x first integers, capped at 100.
	prog := &cgen.Program{
		Funcs: []*cgen.Func{{
			Name: "main", Params: 1, Locals: 2,
			Body: []cgen.Stmt{
				cgen.If{
					Cond: cgen.Cond{Op: cgen.CondGt, L: cgen.Param(0), R: cgen.Const(100)},
					Then: []cgen.Stmt{cgen.Return{X: cgen.Const(100)}},
				},
				cgen.Assign{Dst: 0, Src: cgen.Const(0)},
				cgen.Assign{Dst: 1, Src: cgen.Const(0)},
				cgen.While{
					Cond: cgen.Cond{Op: cgen.CondLt, L: cgen.Local(1), R: cgen.Param(0)},
					Body: []cgen.Stmt{
						cgen.Assign{Dst: 0, Src: cgen.Bin{Op: cgen.OpAdd, L: cgen.Local(0), R: cgen.Local(1)}},
						cgen.Assign{Dst: 1, Src: cgen.Bin{Op: cgen.OpAdd, L: cgen.Local(1), R: cgen.Const(1)}},
					},
				},
				cgen.Return{X: cgen.Local(0)},
			},
		}},
	}
	bin, err := cgen.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d bytes of ELF\n\n", len(bin.ELF))

	// Step 1: lift the binary from its entry point.
	rep, err := repro.LiftBinary(bin.ELF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lift status: %s\n", rep.Status)
	fmt.Printf("instructions=%d symbolic states=%d edges=%d\n\n",
		rep.Stats.Instructions, rep.Stats.States, rep.Stats.Edges)

	// The recovered disassembly of main.
	lines, err := repro.Disasm(bin.ELF, bin.Funcs["main"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered disassembly of main:")
	for _, l := range lines {
		fmt.Println(" ", l)
	}

	// Step 2: every vertex is one independently checked Hoare triple.
	vr, err := repro.VerifyBinary(bin.ELF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStep 2: %d theorems proven, %d assumed, %d failed\n",
		vr.Proven, vr.Assumed, vr.Failed)
}
