// ROP detection via proof obligations: the Section 5.3 case studies. The
// ret2win binary calls the unknown external memset with a pointer into its
// own stack frame; lifting succeeds but emits a proof obligation that
// memset must preserve the return-address region — the negation of that
// obligation is exactly the exploit. The stack-probing and non-standard-
// rsp binaries are rejected outright, and the induced buffer overflow gets
// no Hoare graph at all.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	fmt.Println("=== ret2win: exploit candidate surfaced as a proof obligation ===")
	s, err := corpus.Ret2Win()
	if err != nil {
		log.Fatal(err)
	}
	l := core.New(s.Image, core.DefaultConfig())
	r := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
	fmt.Printf("status: %s\n", r.Status)
	for _, o := range r.Graph.Obligations {
		fmt.Printf("obligation: %s\n", o)
	}
	fmt.Println("violating the obligation (memset writing ≥ 0x30 bytes) overwrites the return address.")

	fmt.Println("\n=== functions the lifter must reject ===")
	for _, build := range []func() (*corpus.Scenario, error){
		corpus.StackProbe, corpus.NonStdRSP, corpus.Overflow,
	} {
		s, err := build()
		if err != nil {
			log.Fatal(err)
		}
		l := core.New(s.Image, core.DefaultConfig())
		r := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
		fmt.Printf("%-12s -> %s\n", s.Name, r.Status)
		for _, reason := range r.Reasons {
			fmt.Printf("             %s\n", reason)
		}
	}
}
