// Weird edge: the Section 2 example of the paper, end to end. A jump-table
// dispatch hides a ret instruction (byte 0xc3) inside the immediate of its
// first instruction. When the two stored-through pointers alias, the
// indirect jump lands in the middle of that instruction — a ROP gadget.
// An overapproximative lifter must find this "weird" edge, and ours does:
// the Hoare graph contains one edge per jump-table value plus the edge to
// the hidden gadget, and every edge verifies as a Hoare triple.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/emu"
	"repro/internal/sem"
	"repro/internal/triple"
	"repro/internal/x86"
)

func main() {
	s, err := corpus.WeirdEdge()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Describe)

	l := core.New(s.Image, core.DefaultConfig())
	r := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
	fmt.Printf("\nlift status: %s, %d instructions, %d states, %d resolved indirection(s)\n",
		r.Status, r.Stats().Instructions, r.Stats().States, r.Stats().ResolvedInd)

	gadget := s.FuncAddr + 1
	fmt.Printf("\nhidden instruction at %#x: %s\n", gadget,
		mustString(r, gadget))
	for _, e := range r.Graph.SortedEdges() {
		if v := r.Graph.Vertices[e.To]; v != nil && v.Addr == gadget {
			fmt.Printf("WEIRD EDGE: %s --[%s]--> %s\n", e.From, e.Inst.String(), e.To)
		}
	}

	// Concrete confirmation: run with aliasing pointers.
	c := emu.New(s.Image)
	c.Reset(s.FuncAddr)
	c.Regs[x86.RAX] = 7
	c.Regs[x86.RDI] = 0x7ffff800
	c.Regs[x86.RSI] = 0x7ffff800 // same pointer: the aliasing case
	trace, err := c.Run(100)
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range trace {
		if tr.To == gadget {
			fmt.Printf("\nconcrete run confirms: control reached %#x (the gadget)\n", gadget)
		}
	}

	rep := triple.Check(context.Background(), s.Image, r.Graph, sem.DefaultConfig(), triple.Workers(2))
	fmt.Printf("\nStep 2: %d theorems proven, %d assumed, %d failed\n",
		rep.Proven, rep.Assumed, rep.Failed)
}

func mustString(r *core.FuncResult, addr uint64) string {
	inst, ok := r.Graph.Instrs[addr]
	if !ok {
		return "(not lifted)"
	}
	return inst.String()
}
