package lift_test

// Facade-level coverage of the robustness options: retry-with-backoff and
// checkpoint/resume wired through lift.Run, with faults injected the same
// way the CI smoke job does.

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/lift"
)

func scenarioRequests(t *testing.T) []lift.Request {
	t.Helper()
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]lift.Request, 0, len(scenarios))
	for _, s := range scenarios {
		reqs = append(reqs, lift.Func(s.Name, s.Image, s.FuncAddr))
	}
	return reqs
}

// TestFacadeRetryAndCheckpoint drives the whole robustness surface
// through the facade: every first attempt panics, retries recover every
// lift, the journal records the outcomes, and a resumed run restores them
// without lifting — summarising byte-identically.
func TestFacadeRetryAndCheckpoint(t *testing.T) {
	reqs := scenarioRequests(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp, err := lift.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{Seed: 3, PanicRate: 1, MaxAttemptFaults: 1})
	sum := lift.Run(context.Background(), reqs,
		lift.Jobs(2),
		lift.Retry(lift.RetryPolicy{MaxAttempts: 2}),
		lift.WithCheckpoint(cp),
		lift.Faults(inj),
	)
	if sum.Panics != 0 || sum.Retried != len(reqs) {
		t.Fatalf("panics=%d retried=%d, want 0/%d", sum.Panics, sum.Retried, len(reqs))
	}
	if cp.Err() != nil || cp.Len() != len(reqs) {
		t.Fatalf("journal: len=%d err=%v", cp.Len(), cp.Err())
	}

	resumed, err := lift.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	sum2 := lift.Run(context.Background(), reqs, lift.WithCheckpoint(resumed))
	if sum2.Restored != len(reqs) {
		t.Fatalf("Restored = %d, want %d", sum2.Restored, len(reqs))
	}
	if got, want := sum2.Canonical(), sum.Canonical(); got != want {
		t.Fatalf("restored summary diverges:\n--- restored ---\n%s--- original ---\n%s", got, want)
	}
}

// TestOpenCheckpointIsTheOnlyEntrypoint pins the post-deprecation
// contract: OpenCheckpoint both creates a missing journal and resumes an
// existing one, and the NewCheckpoint/ResumeCheckpoint wrappers deleted
// after their one compatibility release stay deleted (the ctxless
// analyzer's deprecation map is empty — see internal/analysis).
func TestOpenCheckpointIsTheOnlyEntrypoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compat.ckpt")
	cp, err := lift.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 0 {
		t.Fatalf("fresh journal Len = %d, want 0", cp.Len())
	}
	// Reopening resumes the same (still empty) file.
	if opened, err := lift.OpenCheckpoint(path); err != nil || opened.Len() != 0 || opened.Skipped() != 0 {
		t.Fatalf("reopen: len=%v skipped=%v err=%v", opened.Len(), opened.Skipped(), err)
	}
}
