package lift_test

// Facade-level coverage of incremental lifting: a cold run populates the
// store, a warm run over a freshly regenerated (byte-identical) corpus
// performs zero lifts and summarises byte-identically, and flipping one
// function in one unit re-lifts exactly that unit.

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/lift"
)

// storeShape is a small mixed directory: lifted and unprovable units,
// binaries included, so the store sees both task kinds and several
// statuses.
var storeShape = corpus.DirShape{
	Name: "storetest", Kind: corpus.KindBinary, Lifted: 4, Unprovable: 1,
	MinStmts: 2, MaxStmts: 6, Helpers: 2,
}

const storeSeed = 11

func storeRequests(t *testing.T) ([]lift.Request, *corpus.Directory) {
	t.Helper()
	dir, err := corpus.BuildDirectory(storeShape, storeSeed)
	if err != nil {
		t.Fatal(err)
	}
	return lift.UnitRequests(dir.Units), dir
}

func TestStoreWarmRunLiftsNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "graphs.hgcs")
	reqs, _ := storeRequests(t)

	st, err := lift.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	cold := lift.Run(context.Background(), reqs, lift.Jobs(2), lift.WithStore(st))
	if cold.StoreHits+cold.StoreMisses != len(reqs) {
		t.Fatalf("cold run: hits=%d misses=%d over %d requests",
			cold.StoreHits, cold.StoreMisses, len(reqs))
	}
	if cold.StoreMisses == 0 {
		t.Fatal("cold run hit an empty store")
	}

	// A separate process regenerating the same corpus: reopen the store
	// from disk, rebuild byte-identical images, run again.
	st2, err := lift.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Dropped() != 0 || st2.Len() == 0 {
		t.Fatalf("reopened store: len=%d dropped=%d", st2.Len(), st2.Dropped())
	}
	reqs2, _ := storeRequests(t)
	warm := lift.Run(context.Background(), reqs2, lift.Jobs(2), lift.WithStore(st2))
	if warm.StoreMisses != 0 || warm.StoreHits != len(reqs2) {
		t.Fatalf("warm run lifted: hits=%d misses=%d, want %d/0",
			warm.StoreHits, warm.StoreMisses, len(reqs2))
	}
	for _, r := range warm.Results {
		if !r.FromStore {
			t.Fatalf("%s: not served from store", r.Name)
		}
	}
	if got, want := warm.Canonical(), cold.Canonical(); got != want {
		t.Fatalf("warm summary diverges from cold:\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}
}

func TestStoreSingleFunctionInvalidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "graphs.hgcs")
	reqs, _ := storeRequests(t)
	st, err := lift.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	lift.Run(context.Background(), reqs, lift.Jobs(2), lift.WithStore(st))

	// Rebuild the corpus and change exactly one function in exactly one
	// unit — the incremental-build scenario. Only that unit may re-lift.
	dir, err := corpus.BuildDirectory(storeShape, storeSeed)
	if err != nil {
		t.Fatal(err)
	}
	flipped := dir.Units[0]
	if _, err := corpus.FlipUnit(flipped); err != nil {
		t.Fatal(err)
	}
	st2, err := lift.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := lift.Run(context.Background(), lift.UnitRequests(dir.Units),
		lift.Jobs(2), lift.WithStore(st2))
	if sum.StoreMisses != 1 || sum.StoreHits != len(dir.Units)-1 {
		t.Fatalf("after one-function flip: hits=%d misses=%d, want %d/1",
			sum.StoreHits, sum.StoreMisses, len(dir.Units)-1)
	}
	for _, r := range sum.Results {
		if r.Name == flipped.Name && r.FromStore {
			t.Fatalf("%s: flipped unit served from store", r.Name)
		}
		if r.Name != flipped.Name && !r.FromStore {
			t.Fatalf("%s: unchanged unit re-lifted", r.Name)
		}
	}
}
