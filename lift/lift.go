// Package lift is the unified front door to the lifting pipeline. It
// replaces the three fragmented entry surfaces that grew organically —
// core.Config for the lifter, pipeline.Task/pipeline.Options for the
// scheduler, and ad-hoc tracer/metrics wiring — with one request type and
// one functional-option set, threaded end to end by a context.Context:
//
//	metrics := obs.NewMetrics()
//	sum := lift.Run(ctx, lift.Requests(
//	        lift.Binary("a.elf", imgA),
//	        lift.Func("strlen", imgB, 0x401000),
//	    ),
//	    lift.Jobs(8),
//	    lift.Timeout(30*time.Second),
//	    lift.Observe(metrics),
//	)
//
// Cancelling ctx stops in-flight lifts cooperatively (they report
// core.StatusCancelled) and skips tasks not yet started; the per-lift
// Timeout is a deadline on the same context, so the two budgets share one
// mechanism. The old context-less entrypoints (pipeline.Run,
// core.Lifter.LiftFunc, core.Lifter.LiftBinary, triple.CheckGraph) have
// been deleted; all lifting flows through this package.
//
// Two persistence surfaces compose with a Run:
//
//   - WithCheckpoint(cp) makes a run crash-safe: completed results journal
//     to disk and an interrupted run resumes where it stopped. A
//     checkpoint is keyed by task name and scoped to one request list.
//   - WithStore(st) makes lifting incremental: lifted Hoare graphs are
//     cached content-addressed by (code bytes, config, lifter version), so
//     a re-run over an unchanged corpus decodes graphs instead of lifting
//     them, and editing one function re-lifts only that function. A store
//     survives arbitrary corpus changes.
package lift

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/hgstore"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/solver"
)

// Aliases for the result types a Run produces, so facade users need not
// import the scheduler package.
type (
	// Summary aggregates a Run (deterministic in the inputs).
	Summary = pipeline.Summary
	// Result is the outcome of one scheduled lift.
	Result = pipeline.Result
	// Stats is the per-lift statistics record.
	Stats = pipeline.Stats
	// RetryPolicy tunes the rescheduling of faulted lifts (see Retry).
	RetryPolicy = pipeline.RetryPolicy
	// Checkpoint is a crash-safe journal of completed results (see
	// WithCheckpoint and OpenCheckpoint).
	Checkpoint = pipeline.Checkpoint
	// Store is a content-addressed cache of lifted Hoare graphs (see
	// WithStore and OpenStore).
	Store = hgstore.Store
)

// OpenCheckpoint opens the checkpoint journal at path: an existing file
// is resumed (a corrupt tail is dropped and reported by Skipped), a
// missing one starts a fresh journal. Delete the file first for a
// guaranteed-fresh run. This is the only checkpoint entrypoint: the
// deprecated NewCheckpoint/ResumeCheckpoint wrappers served their one
// compatibility release and are gone.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	return pipeline.OpenCheckpoint(path)
}

// OpenStore opens the Hoare-graph store at path: an existing container is
// loaded (corrupt or version-skewed records are dropped and counted, never
// fatal), a missing file starts an empty store that is created on first
// write.
func OpenStore(path string) (*Store, error) {
	return hgstore.Open(path)
}

// Request names one unit of work: a whole binary lifted from its entry
// point, or a single function at an address. Construct with Binary or
// Func; Config, when non-nil, overrides the run-level lifter
// configuration for this request only.
type Request struct {
	Name   string
	Img    *image.Image
	Addr   uint64
	IsBin  bool
	Config *core.Config
}

// Binary requests lifting a whole binary from its entry point (Table 1's
// upper part).
func Binary(name string, img *image.Image) Request {
	return Request{Name: name, Img: img, IsBin: true}
}

// Func requests lifting the single function at addr (Table 1's lower
// part, the shared-object workflow).
func Func(name string, img *image.Image, addr uint64) Request {
	return Request{Name: name, Img: img, Addr: addr}
}

// Requests collects its arguments — a literal-friendly alternative to
// building the slice by hand.
func Requests(reqs ...Request) []Request { return reqs }

// WithMaxStates returns a copy of the request with a per-request step
// budget (corpus units carry their own).
func (r Request) WithMaxStates(n int) Request {
	cfg := core.DefaultConfig()
	if r.Config != nil {
		cfg = *r.Config
	}
	cfg.MaxStates = n
	r.Config = &cfg
	return r
}

// UnitRequests maps generated corpus units onto requests, honouring each
// unit's step budget — the one translation cmd/xenbench and the benchmark
// harness used to duplicate.
func UnitRequests(units []*corpus.Unit) []Request {
	reqs := make([]Request, 0, len(units))
	for _, u := range units {
		r := Request{
			Name:  u.Name,
			Img:   u.Image,
			Addr:  u.FuncAddr,
			IsBin: u.Kind == corpus.KindBinary,
		}
		if u.Budget > 0 {
			r = r.WithMaxStates(u.Budget)
		}
		reqs = append(reqs, r)
	}
	return reqs
}

// settings is the resolved option set of one Run.
type settings struct {
	popts   pipeline.Options
	baseCfg core.Config
	cfgMod  bool
}

// Option tunes a Run (functional options over the unified settings).
type Option func(*settings)

// Jobs sets the worker count (≤ 0 selects all CPUs).
func Jobs(n int) Option {
	return func(s *settings) { s.popts.Jobs = n }
}

// Timeout sets the per-lift wall-clock budget, enforced as a context
// deadline checked at every exploration step plus a watchdog for lifts
// that stop stepping entirely.
func Timeout(d time.Duration) Option {
	return func(s *settings) { s.popts.Timeout = d }
}

// Cache shares a solver memo cache across Runs (nil = fresh per Run).
func Cache(c *solver.Cache) Option {
	return func(s *settings) { s.popts.Cache = c }
}

// Tracer observes the run with an existing tracer.
func Tracer(t *obs.Tracer) Option {
	return func(s *settings) { s.popts.Tracer = t }
}

// Observe builds a tracer over the given sinks (a JSONL writer, a ring
// buffer, a metrics registry, …); all-nil sinks leave observation
// disabled, so flag-gated sinks can be passed unconditionally.
func Observe(sinks ...obs.Sink) Option {
	return func(s *settings) { s.popts.Tracer = obs.NewTracer(sinks...) }
}

// Retry re-schedules lifts that end in StatusPanic or StatusTimeout —
// the statuses infrastructure faults produce — under the given policy.
// Every lift is context-free and starts from the same initial state, so a
// retry can only reproduce the outcome or replace a fault with the real
// result; lifts that exhaust the policy are quarantined on the Summary.
func Retry(p RetryPolicy) Option {
	return func(s *settings) { s.popts.Retry = p }
}

// WithCheckpoint makes the run crash-safe: every completed (non-
// cancelled) result is appended to the journal, and tasks the journal
// already holds are restored without lifting. Resuming an interrupted run
// with the same requests reproduces the uninterrupted Summary.
func WithCheckpoint(c *Checkpoint) Option {
	return func(s *settings) { s.popts.Checkpoint = c }
}

// WithStore makes the run incremental: before lifting, each task is
// looked up in the store by the hash of its own code bytes, its resolved
// configuration and the lifter version; a hit decodes the cached graphs
// (and re-validates the hash of every instruction range they depend on
// against the task's image) instead of exploring, and a miss lifts as
// usual and writes the result back. Summary.StoreHits / StoreMisses count
// the split; a fully warm run performs zero lifts.
func WithStore(st *Store) Option {
	return func(s *settings) { s.popts.Store = st }
}

// Faults installs a deterministic fault injector, consulted at the start
// of every lift attempt (tests and the CI fault-injection smoke job;
// production runs never set it).
func Faults(inj *faultinject.Injector) Option {
	return func(s *settings) { s.popts.Faults = inj }
}

// Lint runs the hglint static analyzer over every successfully lifted
// graph, through the run's shared solver cache; reports land on each
// Result and diagnostics on the tracer as lint events.
func Lint() Option {
	return func(s *settings) { s.popts.Lint = true }
}

// MaxStates bounds per-function exploration for every request without its
// own Config.
func MaxStates(n int) Option {
	return func(s *settings) { s.baseCfg.MaxStates = n; s.cfgMod = true }
}

// NoJoin disables state joining (ablation: every visit explores a fresh
// state).
func NoJoin() Option {
	return func(s *settings) { s.baseCfg.NoJoin = true; s.cfgMod = true }
}

// JoinCodePointers joins states holding different code-pointer immediates
// (ablation: loses indirection resolution).
func JoinCodePointers() Option {
	return func(s *settings) { s.baseCfg.JoinCodePointers = true; s.cfgMod = true }
}

// PointerFacts enables the pointer-analysis pre-pass on every request: a
// per-function fact table of proven region relations and separation
// hypotheses is computed before exploring, answering comparisons without
// the decision procedure and without forking the memory model. Set at the
// run level (pipeline.Options) so it also folds into per-request Config
// overrides and the store's configuration fingerprint.
func PointerFacts() Option {
	return func(s *settings) { s.popts.PointerFacts = true }
}

// Config replaces the base lifter configuration outright for every
// request without its own override.
func Config(cfg core.Config) Option {
	return func(s *settings) { s.baseCfg = cfg; s.cfgMod = true }
}

func resolve(opts []Option) settings {
	s := settings{baseCfg: core.DefaultConfig()}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// Run lifts every request through the scheduler and aggregates the
// outcomes. Results are in request order and every counter is summed in
// that order, so a Summary is deterministic in the inputs regardless of
// Jobs.
func Run(ctx context.Context, reqs []Request, opts ...Option) *Summary {
	s := resolve(opts)
	tasks := make([]pipeline.Task, len(reqs))
	for i, r := range reqs {
		cfg := r.Config
		if cfg == nil && s.cfgMod {
			c := s.baseCfg
			cfg = &c
		}
		tasks[i] = pipeline.Task{
			Name:   r.Name,
			Img:    r.Img,
			Addr:   r.Addr,
			Binary: r.IsBin,
			Cfg:    cfg,
		}
	}
	return pipeline.RunCtx(ctx, tasks, s.popts)
}

// One lifts a single request and returns its result directly.
func One(ctx context.Context, req Request, opts ...Option) Result {
	return Run(ctx, []Request{req}, opts...).Results[0]
}
