// Package repro is a from-scratch Go reproduction of "Formally Verified
// Lifting of C-Compiled x86-64 Binaries" (Verbeek, Bockenek, Fu,
// Ravindran; PLDI 2022).
//
// The package lifts stripped x86-64 ELF binaries to Hoare Graphs: provably
// overapproximative representations containing the disassembled
// instructions, the recovered control flow, and per-vertex invariants
// strong enough to prove three sanity properties — return address
// integrity, bounded control flow and calling convention adherence
// (Step 1). Every edge of the graph is a Hoare triple that an independent
// checker re-verifies from the binary's bytes (Step 2, the paper's
// Isabelle/HOL export).
//
// Quick start:
//
//	data, _ := os.ReadFile("a.out")
//	res, err := repro.LiftBinary(data)
//	if err != nil { ... }
//	fmt.Println(res.Status, res.Stats.Instructions, "instructions")
//	rep, _ := repro.VerifyBinary(data)   // Step 2
//	fmt.Println(rep.Proven, "theorems proven")
package repro

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/hglint"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/sem"
	"repro/internal/triple"
)

// Status classifies a lifting outcome, following Table 1's legend.
type Status string

// The lifting outcomes.
const (
	Lifted        Status = "lifted"
	UnprovableRet Status = "unprovable-return-address"
	Concurrency   Status = "concurrency"
	Timeout       Status = "timeout"
	Cancelled     Status = "cancelled"
	Error         Status = "error"
)

func statusOf(s core.Status) Status {
	switch s {
	case core.StatusLifted:
		return Lifted
	case core.StatusUnprovableRet:
		return UnprovableRet
	case core.StatusConcurrency:
		return Concurrency
	case core.StatusTimeout:
		return Timeout
	case core.StatusCancelled:
		return Cancelled
	default:
		return Error
	}
}

// Stats summarises a Hoare graph in the shape of Table 1's columns.
type Stats struct {
	Instructions   int // lifted instructions
	States         int // symbolic states (vertices)
	ResolvedInd    int // column A: resolved indirections
	UnresolvedJump int // column B
	UnresolvedCall int // column C
	Edges          int
}

// FuncReport is the outcome of lifting one function.
type FuncReport struct {
	Name    string
	Addr    uint64
	Status  Status
	Reasons []string
	Returns bool
	Stats   Stats
	// Obligations are the generated proof obligations over external
	// functions (Section 5.3), e.g.
	// "@400701 : memset(rdi := rsp0 - 0x28) MUST PRESERVE [...]".
	Obligations []string
	// Assumptions are the implicit separation assumptions exported with
	// the graph (Section 5.2).
	Assumptions []string
	// Graph is the extracted Hoare graph rendered as text (vertices with
	// invariants, labelled edges, annotations).
	Graph string
	// Theory is the Isabelle/HOL-style export of the graph's theorems.
	Theory string
	// DOT is a Graphviz rendering of the graph with weird vertices
	// highlighted.
	DOT string
	// HG is the machine-readable .hg serialisation of the graph, suitable
	// for hgprove -hg.
	HG []byte
}

// BinaryReport aggregates lifting a binary from its entry point.
type BinaryReport struct {
	Status Status
	Stats  Stats
	Funcs  []*FuncReport
}

// Options tunes lifting. The zero value uses the paper's defaults.
type Options struct {
	// MaxStates bounds per-function exploration (0 = default, 40000).
	MaxStates int
	// NoJoin disables state joining (ablation).
	NoJoin bool
	// JoinCodePointers joins states holding different code-pointer
	// immediates (ablation; loses indirection resolution).
	JoinCodePointers bool
	// ErrorBudget bounds Step 2's failing theorems per function: once that
	// many have failed, the remaining theorems of the function are skipped
	// rather than attempted (0 = unlimited). Either way verification keeps
	// going past failures and reports partial results — it never aborts the
	// whole binary on the first bad theorem.
	ErrorBudget int
}

func (o Options) config() core.Config {
	cfg := core.DefaultConfig()
	if o.MaxStates > 0 {
		cfg.MaxStates = o.MaxStates
	}
	cfg.NoJoin = o.NoJoin
	cfg.JoinCodePointers = o.JoinCodePointers
	return cfg
}

func funcReport(r *core.FuncResult) *FuncReport {
	fr := &FuncReport{
		Name:    r.Name,
		Addr:    r.Addr,
		Status:  statusOf(r.Status),
		Reasons: r.Reasons,
		Returns: r.Returns,
	}
	st := r.Stats()
	fr.Stats = Stats{
		Instructions:   st.Instructions,
		States:         st.States,
		ResolvedInd:    st.ResolvedInd,
		UnresolvedJump: st.UnresolvedJump,
		UnresolvedCall: st.UnresolvedCall,
		Edges:          st.Edges,
	}
	if r.Graph != nil {
		fr.Obligations = r.Graph.Obligations
		fr.Assumptions = r.Graph.Assumptions
		fr.Graph = r.Graph.Dump()
		fr.Theory = triple.ExportTheory(r.Graph, r.Name)
		fr.DOT = r.Graph.ToDOT()
		fr.HG = hoare.Marshal(r.Graph)
	}
	return fr
}

// LiftBinary lifts an ELF binary from its entry point, exploring all
// reachable code including internal function calls (Step 1).
func LiftBinary(elf []byte, opts ...Options) (*BinaryReport, error) {
	im, err := image.Load(elf)
	if err != nil {
		return nil, err
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	l := core.New(im, o.config())
	res := l.LiftBinaryCtx(context.Background(), "binary")
	rep := &BinaryReport{Status: statusOf(res.Status)}
	rep.Stats = Stats{
		Instructions:   res.Stats.Instructions,
		States:         res.Stats.States,
		ResolvedInd:    res.Stats.ResolvedInd,
		UnresolvedJump: res.Stats.UnresolvedJump,
		UnresolvedCall: res.Stats.UnresolvedCall,
		Edges:          res.Stats.Edges,
	}
	for _, fr := range res.Funcs {
		rep.Funcs = append(rep.Funcs, funcReport(fr))
	}
	return rep, nil
}

// LiftFunction lifts a single function at the given address — how the
// paper lifts the exported functions of shared objects (Table 1, lower
// part).
func LiftFunction(elf []byte, addr uint64, opts ...Options) (*FuncReport, error) {
	im, err := image.Load(elf)
	if err != nil {
		return nil, err
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	l := core.New(im, o.config())
	name := fmt.Sprintf("sub_%x", addr)
	if n, ok := im.SymbolName(addr); ok {
		name = n
	}
	return funcReport(l.LiftFuncCtx(context.Background(), addr, name)), nil
}

// FuncSymbols lists the exported function symbols of an ELF image (the
// `nm` step of the paper's shared-object workflow).
func FuncSymbols(elf []byte) (map[string]uint64, error) {
	im, err := image.Load(elf)
	if err != nil {
		return nil, err
	}
	out := map[string]uint64{}
	for _, s := range im.FuncSymbols() {
		out[s.Name] = s.Value
	}
	return out, nil
}

// VerifyReport is the Step 2 outcome: one theorem per vertex, aggregated
// across functions, with a per-function breakdown in Funcs.
type VerifyReport struct {
	Proven  int
	Assumed int
	Failed  int
	// Skipped counts theorems never attempted (cancellation or an
	// exhausted ErrorBudget).
	Skipped int
	// Degraded counts functions whose graphs could not be checked at all
	// (e.g. hglint found them structurally malformed); their reasons are
	// on the matching Funcs entries.
	Degraded int
	// Failures lists the failed theorems ("vertex: reason").
	Failures []string
	// Funcs breaks the totals down per function, so a partially verified
	// binary reports exactly which functions degraded and how far each got.
	Funcs []FuncVerify
}

// FuncVerify is the Step 2 outcome of one function.
type FuncVerify struct {
	Name    string
	Proven  int
	Assumed int
	Failed  int
	Skipped int
	// Degraded explains why the function's graph was not checked at all;
	// empty for checked functions.
	Degraded string
}

// AllProven reports whether every theorem was proven or explicitly
// assumed. Skipped theorems and degraded functions count against it: a
// partial verification never claims to be a full one.
func (r *VerifyReport) AllProven() bool {
	return r.Failed == 0 && r.Skipped == 0 && r.Degraded == 0
}

// addCheck folds one function's checking report into the totals.
func (r *VerifyReport) addCheck(name string, check *triple.Report, qualify bool) {
	fv := FuncVerify{Name: name, Proven: check.Proven, Assumed: check.Assumed,
		Failed: check.Failed, Skipped: check.Skipped}
	r.Proven += check.Proven
	r.Assumed += check.Assumed
	r.Failed += check.Failed
	r.Skipped += check.Skipped
	for _, th := range check.Sorted() {
		if th.Verdict == triple.Failed {
			label := string(th.Vertex)
			if qualify {
				label = name + "/" + label
			}
			r.Failures = append(r.Failures, fmt.Sprintf("%s: %s", label, th.Reason))
		}
	}
	r.Funcs = append(r.Funcs, fv)
}

// addDegraded records a function whose graph could not be checked.
func (r *VerifyReport) addDegraded(name, reason string) {
	r.Degraded++
	r.Funcs = append(r.Funcs, FuncVerify{Name: name, Degraded: reason})
	r.Failures = append(r.Failures, fmt.Sprintf("%s: %s", name, reason))
}

// VerifyFunction runs Step 2 on a single function: the function is lifted,
// then every vertex's Hoare triple is independently re-verified against
// the binary's bytes.
func VerifyFunction(elf []byte, addr uint64, opts ...Options) (*FuncReport, *VerifyReport, error) {
	im, err := image.Load(elf)
	if err != nil {
		return nil, nil, err
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	l := core.New(im, o.config())
	name := fmt.Sprintf("sub_%x", addr)
	if n, ok := im.SymbolName(addr); ok {
		name = n
	}
	fr := l.LiftFuncCtx(context.Background(), addr, name)
	rep := funcReport(fr)
	if fr.Status != core.StatusLifted {
		return rep, nil, fmt.Errorf("repro: function %s not lifted: %s", name, fr.Status)
	}
	vr := &VerifyReport{}
	// Precheck: a structurally malformed graph would only surface deep
	// inside the theorem checker as an opaque failure, so report it as a
	// degraded function instead of checking (or aborting).
	if lrep := hglint.Lint(fr.Graph); lrep.HasErrors() {
		vr.addDegraded(name, fmt.Sprintf("malformed graph: %d hglint errors", lrep.Errors()))
		return rep, vr, nil
	}
	check := triple.Check(context.Background(), im, fr.Graph, sem.DefaultConfig(),
		triple.Workers(4), triple.ErrorBudget(o.ErrorBudget))
	vr.addCheck(name, check, false)
	return rep, vr, nil
}

// VerifyBinary runs Step 2 over every function reached from the entry
// point, mirroring Table 2's per-binary totals.
func VerifyBinary(elf []byte, opts ...Options) (*VerifyReport, error) {
	im, err := image.Load(elf)
	if err != nil {
		return nil, err
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	l := core.New(im, o.config())
	res := l.LiftBinaryCtx(context.Background(), "binary")
	if res.Status != core.StatusLifted {
		return nil, fmt.Errorf("repro: binary not lifted: %s", statusOf(res.Status))
	}
	out := &VerifyReport{}
	for _, fr := range res.Funcs {
		if fr.Graph == nil {
			continue
		}
		// Precheck ahead of the per-vertex theorems. A malformed graph
		// degrades its own function and the check moves on: one bad
		// function must not abort Step 2 for the whole binary.
		if lrep := hglint.Lint(fr.Graph); lrep.HasErrors() {
			out.addDegraded(fr.Name, fmt.Sprintf("malformed graph: %d hglint errors", lrep.Errors()))
			continue
		}
		check := triple.Check(context.Background(), im, fr.Graph, sem.DefaultConfig(),
			triple.Workers(4), triple.ErrorBudget(o.ErrorBudget))
		out.addCheck(fr.Name, check, true)
	}
	return out, nil
}

// Exploit is a concrete way to violate a generated proof obligation —
// Section 7's security-analysis application ("the negation of the
// generated assumptions may be useful in the generation of exploits").
type Exploit struct {
	CallAddr     uint64
	Callee       string
	ArgReg       string
	Offset       int64 // frame offset of the pointer, relative to rsp0
	OverwriteLen int64 // minimum write length reaching the return address
	Description  string
}

// ExploitCandidates lifts the function and negates its proof obligations
// into concrete exploit recipes (see examples/ropdetect).
func ExploitCandidates(elf []byte, addr uint64) ([]Exploit, error) {
	im, err := image.Load(elf)
	if err != nil {
		return nil, err
	}
	l := core.New(im, core.DefaultConfig())
	name := fmt.Sprintf("sub_%x", addr)
	if n, ok := im.SymbolName(addr); ok {
		name = n
	}
	fr := l.LiftFuncCtx(context.Background(), addr, name)
	var out []Exploit
	for _, c := range core.ExploitCandidates(fr) {
		out = append(out, Exploit{
			CallAddr:     c.CallAddr,
			Callee:       c.Callee,
			ArgReg:       c.ArgReg,
			Offset:       c.Offset,
			OverwriteLen: c.OverwriteLen,
			Description:  c.String(),
		})
	}
	return out, nil
}

// Disasm renders the recovered disassembly of a lifted function in address
// order — the paper's base question 1 ("what instructions are executed").
func Disasm(elf []byte, addr uint64) ([]string, error) {
	im, err := image.Load(elf)
	if err != nil {
		return nil, err
	}
	l := core.New(im, core.DefaultConfig())
	fr := l.LiftFuncCtx(context.Background(), addr, "f")
	if fr.Graph == nil {
		return nil, fmt.Errorf("repro: no graph")
	}
	addrs := make([]uint64, 0, len(fr.Graph.Instrs))
	for a := range fr.Graph.Instrs {
		addrs = append(addrs, a)
	}
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			if addrs[j] < addrs[i] {
				addrs[i], addrs[j] = addrs[j], addrs[i]
			}
		}
	}
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		inst := fr.Graph.Instrs[a]
		out = append(out, fmt.Sprintf("%#x: %s", a, inst.String()))
	}
	return out, nil
}
