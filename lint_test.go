package repro

// Integration tests for the hglint static analyzer through the lift
// facade and the Step-2 facade: lifted scenario graphs pass the analyzer,
// lint reports ride the pipeline results, diagnostics ride the trace as
// lint events, and the Verify* entrypoints run the precheck ahead of the
// theorem checker.

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/hglint"
	"repro/internal/obs"
	"repro/lift"
)

// TestFacadeLint lifts every scenario with lint enabled: each lifted
// graph must carry an error-free report, and diagnostics (if any) must
// appear as lint events on the trace.
func TestFacadeLint(t *testing.T) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]lift.Request, 0, len(scenarios))
	for _, s := range scenarios {
		reqs = append(reqs, lift.Func(s.Name, s.Image, s.FuncAddr))
	}
	ring := obs.NewRing(1 << 16)
	sum := lift.Run(context.Background(), reqs, lift.Jobs(2), lift.Lint(), lift.Observe(ring))
	if sum.LintErrors != 0 {
		for _, r := range sum.Results {
			for _, rep := range r.Lint {
				t.Errorf("%s:\n%s", r.Name, rep)
			}
		}
		t.Fatalf("scenario graphs should be hglint-clean, got %d errors", sum.LintErrors)
	}
	lifted := 0
	for _, r := range sum.Results {
		if len(r.Lint) > 0 {
			lifted++
		}
	}
	if lifted == 0 {
		t.Fatal("no scenario produced a lint report")
	}
	for _, e := range ring.Events() {
		if e.Kind == obs.KLint && e.Status == hglint.SevError.String() {
			t.Errorf("error-severity lint event on a lifted scenario: %s %s", e.Func, e.Detail)
		}
	}
}

// TestVerifyFunctionRunsPrecheck exercises the Step-2 facade end to end:
// the lint precheck must pass on a well-formed lift and the theorems must
// then all be proven (or assumed).
func TestVerifyFunctionRunsPrecheck(t *testing.T) {
	s, err := corpus.Ret2Win()
	if err != nil {
		t.Fatal(err)
	}
	_, vr, err := VerifyFunction(s.Raw, s.FuncAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !vr.AllProven() {
		t.Fatalf("theorems failed: %v", vr.Failures)
	}
}
