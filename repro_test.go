package repro

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cgen"
	"repro/internal/corpus"
)

// compileSample builds a small program through the public-facing corpus
// compiler.
func compileSample(t testing.TB) *cgen.Result {
	t.Helper()
	prog := &cgen.Program{
		Globals: []cgen.Global{{Name: "g0", Size: 8}},
		Funcs: []*cgen.Func{
			{Name: "helper", Params: 1, Locals: 1,
				Body: []cgen.Stmt{
					cgen.Assign{Dst: 0, Src: cgen.Bin{Op: cgen.OpMul, L: cgen.Param(0), R: cgen.Const(3)}},
					cgen.Return{X: cgen.Local(0)},
				}},
			{Name: "main", Params: 1, Locals: 1,
				Body: []cgen.Stmt{
					cgen.Switch{X: cgen.Param(0),
						Cases: [][]cgen.Stmt{
							{cgen.Assign{Dst: 0, Src: cgen.Call{Name: "helper", Args: []cgen.Expr{cgen.Const(2)}}}},
							{cgen.Assign{Dst: 0, Src: cgen.Const(9)}},
						},
						Default: []cgen.Stmt{cgen.Assign{Dst: 0, Src: cgen.Const(1)}}},
					cgen.Return{X: cgen.Local(0)},
				}},
		},
		Entry: "main",
	}
	res, err := cgen.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLiftBinaryAPI(t *testing.T) {
	bin := compileSample(t)
	rep, err := LiftBinary(bin.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != Lifted {
		t.Fatalf("status: %s", rep.Status)
	}
	if rep.Stats.Instructions == 0 || rep.Stats.States == 0 {
		t.Fatalf("stats: %+v", rep.Stats)
	}
	if rep.Stats.ResolvedInd == 0 {
		t.Fatal("the switch's jump table must be resolved")
	}
	if len(rep.Funcs) < 3 { // _start, main, helper
		t.Fatalf("functions: %d", len(rep.Funcs))
	}
}

func TestLiftFunctionAPI(t *testing.T) {
	bin := compileSample(t)
	fr, err := LiftFunction(bin.ELF, bin.Funcs["helper"])
	if err != nil {
		t.Fatal(err)
	}
	if fr.Status != Lifted || !fr.Returns {
		t.Fatalf("helper: %s", fr.Status)
	}
	if fr.Name != "helper" {
		t.Fatalf("symbol name not resolved: %q", fr.Name)
	}
	if !strings.Contains(fr.Graph, "vertex") || !strings.Contains(fr.Graph, "edge") {
		t.Fatal("graph dump missing")
	}
	if !strings.Contains(fr.Theory, "lemma hoare_") {
		t.Fatal("theory export missing")
	}
}

func TestVerifyAPI(t *testing.T) {
	bin := compileSample(t)
	fr, vr, err := VerifyFunction(bin.ELF, bin.Funcs["main"])
	if err != nil {
		t.Fatal(err)
	}
	if fr.Status != Lifted {
		t.Fatal(fr.Status)
	}
	if !vr.AllProven() {
		t.Fatalf("failures: %v", vr.Failures)
	}
	if vr.Proven == 0 {
		t.Fatal("no theorems proven")
	}
	if vr.Skipped != 0 || vr.Degraded != 0 {
		t.Fatalf("healthy function reports skipped=%d degraded=%d", vr.Skipped, vr.Degraded)
	}
	if len(vr.Funcs) != 1 || vr.Funcs[0].Proven != vr.Proven {
		t.Fatalf("per-function breakdown: %+v (totals proven=%d)", vr.Funcs, vr.Proven)
	}
	// An error budget on a healthy function changes nothing: nothing
	// fails, so nothing is skipped.
	_, vrb, err := VerifyFunction(bin.ELF, bin.Funcs["main"], Options{ErrorBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !vrb.AllProven() || vrb.Proven != vr.Proven {
		t.Fatalf("budgeted verification diverges: %+v vs proven=%d", vrb, vr.Proven)
	}
	bvr, err := VerifyBinary(bin.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if !bvr.AllProven() {
		t.Fatalf("binary failures: %v", bvr.Failures)
	}
	if len(bvr.Funcs) == 0 || bvr.Degraded != 0 {
		t.Fatalf("binary breakdown: %d funcs, degraded=%d", len(bvr.Funcs), bvr.Degraded)
	}
	var proven int
	for _, fv := range bvr.Funcs {
		proven += fv.Proven
	}
	if proven != bvr.Proven {
		t.Fatalf("per-function proven sums to %d, totals say %d", proven, bvr.Proven)
	}
}

func TestFuncSymbolsAPI(t *testing.T) {
	bin := compileSample(t)
	syms, err := FuncSymbols(bin.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if syms["main"] == 0 || syms["helper"] == 0 {
		t.Fatalf("symbols: %v", syms)
	}
}

func TestDisasmAPI(t *testing.T) {
	bin := compileSample(t)
	lines, err := Disasm(bin.ELF, bin.Funcs["helper"])
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 5 {
		t.Fatalf("disassembly: %v", lines)
	}
	if !strings.Contains(lines[0], "push rbp") {
		t.Fatalf("prologue: %v", lines[0])
	}
}

func TestOptionsAblations(t *testing.T) {
	bin := compileSample(t)
	// Joining code pointers loses the jump-table resolution.
	fr, err := LiftFunction(bin.ELF, bin.Funcs["main"], Options{JoinCodePointers: true})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Stats.UnresolvedJump == 0 {
		t.Fatalf("ablation must lose the indirection: %+v", fr.Stats)
	}
	// A tiny budget times out.
	fr, err = LiftFunction(bin.ELF, bin.Funcs["main"], Options{MaxStates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Status != Timeout {
		t.Fatalf("budget: %s", fr.Status)
	}
}

func TestBadInput(t *testing.T) {
	if _, err := LiftBinary([]byte("not an elf")); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := LiftFunction(nil, 0); err == nil {
		t.Fatal("nil input must be rejected")
	}
}

// TestObligationSurfacesInAPI checks that the Section 5.3 obligation text
// reaches the public report.
func TestObligationSurfacesInAPI(t *testing.T) {
	s, err := corpus.Ret2Win()
	if err != nil {
		t.Fatal(err)
	}
	// Re-serialise the scenario image through the public API.
	fr, err := LiftFunction(elfBytes(t, s), s.FuncAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Obligations) == 0 || !strings.Contains(fr.Obligations[0], "MUST PRESERVE") {
		t.Fatalf("obligations: %v", fr.Obligations)
	}
}

// elfBytes returns the scenario's raw ELF image.
func elfBytes(t *testing.T, s *corpus.Scenario) []byte {
	t.Helper()
	return s.Raw
}

// TestGeneratedCorpusThroughAPI lifts a few random programs through the
// facade.
func TestGeneratedCorpusThroughAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5; i++ {
		p := cgen.GenProgram(rng, 2, cgen.DefaultFeatures())
		res, err := cgen.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := LiftBinary(res.ELF)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status != Lifted {
			for _, fr := range rep.Funcs {
				t.Logf("%s: %s %v", fr.Name, fr.Status, fr.Reasons)
			}
			t.Fatalf("trial %d: %s", i, rep.Status)
		}
	}
}

func TestExploitCandidatesAPI(t *testing.T) {
	s, err := corpus.Ret2Win()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ExploitCandidates(s.Raw, s.FuncAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != 1 || ex[0].Callee != "memset" || ex[0].OverwriteLen != 0x30 {
		t.Fatalf("candidates: %+v", ex)
	}
	if !strings.Contains(ex[0].Description, "overwrites the return address") {
		t.Fatalf("description: %q", ex[0].Description)
	}
}

func TestFuncReportExports(t *testing.T) {
	bin := compileSample(t)
	fr, err := LiftFunction(bin.ELF, bin.Funcs["helper"])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fr.DOT, "digraph") {
		t.Fatal("DOT export missing")
	}
	if !strings.HasPrefix(string(fr.HG), "hg ") {
		t.Fatal(".hg export missing")
	}
}
