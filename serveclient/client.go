// Package serveclient is the client side of the hgserved HTTP/JSON API:
// it submits ELF binaries (single or batch) to a daemon and consumes the
// NDJSON response stream — task progress while the pipeline runs, one
// result line per lift, and the final summary line whose Canonical
// rendering is byte-identical across duplicate submissions.
//
// Backpressure is a first-class outcome, not a transport failure: a
// saturated daemon answers 429 with a Retry-After hint, surfaced here as
// *RetryError so load generators and batch drivers can implement honest
// backoff.
package serveclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
)

// Wire aliases, so client code needs only this package.
type (
	// Spec names one ELF binary to lift (see serve.BinarySpec).
	Spec = serve.BinarySpec
	// Line is one NDJSON record of the response stream.
	Line = serve.Line
)

// Client talks to one hgserved daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8441".
	BaseURL string
	// Tenant labels this client's submissions for admission control
	// (empty = "anonymous").
	Tenant string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

// RetryError reports a 429 rejection: the daemon's queue (or this
// tenant's share of it) is saturated and the client should retry after
// the hinted delay.
type RetryError struct {
	Reason string
	After  time.Duration
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("serveclient: saturated (%s), retry after %s", e.Reason, e.After)
}

// StatusError reports any other non-200 response.
type StatusError struct {
	Code   int
	Reason string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serveclient: HTTP %d: %s", e.Code, e.Reason)
}

// Stream is an open NDJSON response. Lines arrive live while the daemon
// lifts; the stream ends (io.EOF from Next) after the summary line.
type Stream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// Next returns the next line, or io.EOF when the stream is done.
func (s *Stream) Next() (Line, error) {
	for s.sc.Scan() {
		raw := bytes.TrimSpace(s.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ln Line
		if err := json.Unmarshal(raw, &ln); err != nil {
			return Line{}, fmt.Errorf("serveclient: bad stream line %q: %w", raw, err)
		}
		return ln, nil
	}
	if err := s.sc.Err(); err != nil {
		return Line{}, err
	}
	return Line{}, io.EOF
}

// Close releases the response body; safe after EOF.
func (s *Stream) Close() error { return s.body.Close() }

// Result is a fully drained stream, split by line type.
type Result struct {
	Tasks   []Line // progress lines, in arrival order
	Results []Line // one per requested lift, in request order
	Summary Line   // the final summary line
}

// Submit sends one submission and returns the open stream. A saturated
// daemon yields *RetryError; other failures yield *StatusError or a
// transport error.
func (c *Client) Submit(ctx context.Context, specs ...Spec) (*Stream, error) {
	body, err := json.Marshal(serve.Submission{Tenant: c.Tenant, Binaries: specs})
	if err != nil {
		return nil, err
	}
	url := strings.TrimSuffix(c.BaseURL, "/") + "/v1/lift"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var rb serve.RejectBody
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if err := json.Unmarshal(raw, &rb); err != nil {
			rb.Error = strings.TrimSpace(string(raw))
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			after := time.Duration(rb.RetryAfterS) * time.Second
			if h := resp.Header.Get("Retry-After"); h != "" {
				if secs, err := strconv.Atoi(h); err == nil {
					after = time.Duration(secs) * time.Second
				}
			}
			return nil, &RetryError{Reason: rb.Error, After: after}
		}
		return nil, &StatusError{Code: resp.StatusCode, Reason: rb.Error}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	return &Stream{body: resp.Body, sc: sc}, nil
}

// Lift submits and drains the whole stream, returning the split lines.
// It is the convenience form for callers that do not need live progress.
func (c *Client) Lift(ctx context.Context, specs ...Spec) (*Result, error) {
	st, err := c.Submit(ctx, specs...)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	res := &Result{}
	sawSummary := false
	for {
		ln, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ln.Type {
		case serve.LineTask:
			res.Tasks = append(res.Tasks, ln)
		case serve.LineResult:
			res.Results = append(res.Results, ln)
		case serve.LineSummary:
			res.Summary = ln
			sawSummary = true
		case serve.LineError:
			return nil, fmt.Errorf("serveclient: daemon error: %s", ln.Detail)
		}
	}
	if !sawSummary {
		return nil, fmt.Errorf("serveclient: stream ended without a summary line")
	}
	return res, nil
}

// Metrics fetches the daemon's /metricz dump.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	url := strings.TrimSuffix(c.BaseURL, "/") + "/metricz"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Code: resp.StatusCode, Reason: strings.TrimSpace(string(raw))}
	}
	return string(raw), nil
}
