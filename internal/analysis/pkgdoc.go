package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// Pkgdoc enforces the repo's godoc floor: every package must carry a
// package-level doc comment, and in a non-main package it must open with
// the canonical "Package <name>" form so godoc renders it. The check
// fires once per package, anchored at the package clause of the first
// (lexically smallest) file godoc would attribute the comment to, and
// skips external test packages (the _test variants), whose documentation
// lives with the package under test.
var Pkgdoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "flags packages without a package-level doc comment",
	Run:  runPkgdoc,
}

func runPkgdoc(pass *Pass) []Diagnostic {
	name := pass.Pkg.Name()
	if strings.HasSuffix(name, "_test") {
		return nil
	}
	var first *ast.File
	for _, f := range pass.Files {
		if f.Doc != nil {
			return nil
		}
		// Generated files may legitimately omit docs, but a package whose
		// only files are generated still wants a hand-written doc.go; keep
		// the anchor deterministic either way.
		if first == nil || pass.Fset.Position(f.Package).Filename < pass.Fset.Position(first.Package).Filename {
			first = f
		}
	}
	if first == nil {
		return nil
	}
	want := fmt.Sprintf("a package comment (\"Package %s ...\")", name)
	if name == "main" {
		want = "a package comment describing the command"
	}
	return []Diagnostic{{
		Pos: first.Package,
		Msg: fmt.Sprintf("package %s has no package-level doc comment; add %s to one file", name, want),
	}}
}
