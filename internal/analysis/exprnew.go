package analysis

import (
	"go/ast"
	"go/types"
)

// Exprnew flags composite literals of expr.Expr outside package expr. Every
// expression must be built through the interning constructors (Word, V,
// Deref, the smart constructors): a hand-built &expr.Expr{...} bypasses the
// intern table, breaking the pointer-identity invariant that Equal and the
// pointer-keyed clause maps rely on. (The struct's fields are unexported, so
// such a literal barely typechecks anyway — this pass turns the loophole of
// an empty literal, and any future exported field, into a vet error.)
var Exprnew = &Analyzer{
	Name: "exprnew",
	Doc:  "flags expr.Expr composite literals outside the interning constructors",
	Run:  runExprnew,
}

const exprPkgPath = "repro/internal/expr"

func runExprnew(pass *Pass) []Diagnostic {
	if pass.Pkg.Path() == exprPkgPath {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok {
				return true
			}
			if named, ok := tv.Type.(*types.Named); ok &&
				named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == exprPkgPath &&
				named.Obj().Name() == "Expr" {
				diags = append(diags, Diagnostic{
					Pos: lit.Pos(),
					Msg: "expr.Expr composite literal bypasses interning; use the expr constructors",
				})
			}
			return true
		})
	}
	return diags
}
