package analysis

import (
	"fmt"
	"go/types"
	"strings"
)

const obsPath = "repro/internal/obs"

// Obsnil flags direct field access on obs.Tracer outside package obs.
// The disabled tracer is a nil *Tracer by design — every emission
// helper is nil-safe, but a field selection on the nil pointer panics.
// Package obs itself (including its internal tests) owns the receiver
// and is exempt.
var Obsnil = &Analyzer{
	Name: "obsnil",
	Doc:  "flags direct field access on possibly-nil *obs.Tracer",
	Run:  runObsnil,
}

func runObsnil(pass *Pass) []Diagnostic {
	// Test variants typecheck under paths like
	// "repro/internal/obs [repro/internal/obs.test]".
	if p, _, _ := strings.Cut(pass.Pkg.Path(), " ["); p == obsPath {
		return nil
	}
	var diags []Diagnostic
	for sel, s := range pass.Info.Selections {
		if s.Kind() != types.FieldVal {
			continue
		}
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			continue
		}
		if named.Obj().Pkg().Path() != obsPath || named.Obj().Name() != "Tracer" {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos: sel.Sel.Pos(),
			Msg: fmt.Sprintf("direct access to field %s on possibly-nil *obs.Tracer; use its nil-safe methods", s.Obj().Name()),
		})
	}
	return diags
}
