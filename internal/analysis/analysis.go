// Package analysis is a deliberately small, stdlib-only subset of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// typechecked package (a Pass) and reports Diagnostics. It exists so the
// repo can ship custom vet passes without a dependency on x/tools — the
// driver side of the go vet -vettool protocol lives in cmd/reprovet.
//
// Four analyzers are registered:
//
//	ctxless — forbids reintroducing exported non-context Lift*/Run*/Check*
//	          entrypoints in the core/pipeline/triple packages (the four
//	          deprecated context-less wrappers were deleted once callers
//	          migrated; the rule keeps them deleted) and flags calls to
//	          any wrapper registered as Deprecated (none at present — the
//	          PR 7 checkpoint wrappers finished their one compatibility
//	          release and are deleted).
//	exprnew — flags expr.Expr composite literals outside package expr;
//	          hand-built expressions bypass the intern table and break
//	          the pointer-identity invariant behind expr.Equal.
//	obsnil  — flags direct field access on *obs.Tracer outside package
//	          obs; the tracer is nil when tracing is disabled, so only
//	          its nil-safe methods may be used.
//	pkgdoc  — flags packages with no package-level doc comment; external
//	          test packages (_test variants) are exempt.
//
// A diagnostic is suppressed by a directive comment on the same line or
// the line directly above it:
//
//	//reprovet:ignore ctxless          — suppress one analyzer
//	//reprovet:ignore ctxless obsnil   — suppress several
//	//reprovet:ignore                  — suppress all
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Pass carries one typechecked package through the analyzers.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Diagnostic is one finding, positioned in the package's file set.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Msg      string
}

// Analyzer is one named check over a Pass. Run may leave the Analyzer
// field of its diagnostics empty; the driver fills it in.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// All returns every registered analyzer.
func All() []*Analyzer { return []*Analyzer{Ctxless, Exprnew, Obsnil, Pkgdoc} }

// Run applies the analyzers to the pass, drops directive-suppressed
// findings, and returns the rest ordered by position then analyzer.
func Run(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	sup := collectIgnores(pass)
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(pass) {
			d.Analyzer = a.Name
			if sup.covers(pass.Fset.Position(d.Pos), a.Name) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pass.Fset.Position(out[i].Pos), pass.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

const ignoreDirective = "//reprovet:ignore"

// ignores maps file → line → analyzer names suppressed there (nil set
// means all analyzers).
type ignores map[string]map[int][]string

func collectIgnores(pass *Pass) ignores {
	ig := ignores{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				m := ig[p.Filename]
				if m == nil {
					m = map[int][]string{}
					ig[p.Filename] = m
				}
				m[p.Line] = strings.Fields(rest)
			}
		}
	}
	return ig
}

// covers reports whether a directive on the diagnostic's line, or the
// line directly above it, names the analyzer (or names nothing, which
// suppresses everything).
func (ig ignores) covers(p token.Position, analyzer string) bool {
	m := ig[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		names, ok := m[line]
		if !ok {
			continue
		}
		if len(names) == 0 {
			return true
		}
		for _, n := range names {
			if n == analyzer {
				return true
			}
		}
	}
	return false
}
