package analysis

import (
	"fmt"
	"go/types"
)

// deprecatedEntrypoints maps the FullName of each Deprecated
// non-context entrypoint to its context-aware replacement.
var deprecatedEntrypoints = map[string]string{
	"(*repro/internal/core.Lifter).LiftFunc":   "LiftFuncCtx",
	"(*repro/internal/core.Lifter).LiftBinary": "LiftBinaryCtx",
	"repro/internal/pipeline.Run":              "RunCtx",
	"repro/internal/triple.CheckGraph":         "Check",
}

// Ctxless flags every use of a Deprecated non-context entrypoint. The
// wrappers exist for compatibility only: they take no context, so their
// callers cannot cancel lifting or proving, and they bypass the
// per-task deadline plumbing.
var Ctxless = &Analyzer{
	Name: "ctxless",
	Doc:  "flags calls to the deprecated non-context lift/check entrypoints",
	Run:  runCtxless,
}

func runCtxless(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for ident, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		repl, ok := deprecatedEntrypoints[fn.FullName()]
		if !ok {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos: ident.Pos(),
			Msg: fmt.Sprintf("%s is deprecated and context-less; use %s", fn.Name(), repl),
		})
	}
	return diags
}
