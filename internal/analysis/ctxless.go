package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// entrypointPkgs are the packages whose exported lift/prove entrypoints
// must thread a context.Context. The four deprecated context-less
// wrappers (Lifter.LiftFunc, Lifter.LiftBinary, pipeline.Run,
// triple.CheckGraph) were deleted once every caller had migrated; this
// rule keeps them deleted by flagging any reintroduction at the
// declaration, not the call site.
var entrypointPkgs = map[string]bool{
	"repro/internal/core":     true,
	"repro/internal/pipeline": true,
	"repro/internal/triple":   true,
}

// entrypointPrefixes mark the declaration names the rule covers: the
// verbs that start a lift, a scheduled run, or a Step-2 check.
var entrypointPrefixes = []string{"Lift", "Run", "Check"}

// deprecatedEntrypoints maps the FullName of each Deprecated wrapper
// kept for one compatibility release to its replacement; uses are
// flagged like the old context-less entrypoints were before their
// deletion. The PR 7 checkpoint wrappers (lift.NewCheckpoint,
// lift.ResumeCheckpoint) served that release and are deleted, so the
// map is empty until the next deprecation cycle populates it.
var deprecatedEntrypoints = map[string]string{}

// Ctxless enforces the context-aware entrypoint API: inside the lift,
// pipeline and triple packages, no exported Lift*/Run*/Check* function or
// method may omit a context.Context parameter (cancellation and deadlines
// must reach every exploration), and callers anywhere may not use the
// Deprecated compatibility wrappers that remain elsewhere.
var Ctxless = &Analyzer{
	Name: "ctxless",
	Doc:  "forbids exported non-context lift/check entrypoints and flags deprecated wrapper calls",
	Run:  runCtxless,
}

func runCtxless(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for ident, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		repl, ok := deprecatedEntrypoints[fn.FullName()]
		if !ok {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos: ident.Pos(),
			Msg: fmt.Sprintf("%s is deprecated; use %s", fn.Name(), repl),
		})
	}
	// Test variants typecheck under paths like
	// "repro/internal/core [repro/internal/core.test]".
	if p, _, _ := strings.Cut(pass.Pkg.Path(), " ["); !entrypointPkgs[p] {
		return diags
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !isEntrypointName(fd.Name.Name) {
				continue
			}
			if hasContextParam(pass, fd) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos: fd.Name.Pos(),
				Msg: fmt.Sprintf("exported entrypoint %s takes no context.Context; lift/run/check entrypoints must be cancellable", fd.Name.Name),
			})
		}
	}
	return diags
}

// isEntrypointName reports whether an exported declaration name falls
// under the entrypoint rule (Lift*, Run*, Check*). Test entrypoints
// (Test*, Benchmark*, Fuzz*) never match the prefixes, so _test files
// need no special case.
func isEntrypointName(name string) bool {
	for _, p := range entrypointPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// hasContextParam reports whether any parameter's type is
// context.Context.
func hasContextParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}
