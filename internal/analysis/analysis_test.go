package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// The analyzers match on fully qualified names, so the tests typecheck
// small stand-ins for the real packages under their real import paths
// and wire them together with a map-backed importer. This keeps the
// tests hermetic: no export data, no dependency on the actual packages.

const coreSrc = `package core
import "context"
type Lifter struct{}
func (l *Lifter) LiftFuncCtx(ctx context.Context, addr uint64, name string) int { return 0 }
func (l *Lifter) LiftBinaryCtx(ctx context.Context, name string) int { return 0 }
`

const pipelineSrc = `package pipeline
import "context"
func RunCtx(ctx context.Context) int { return 0 }
`

const tripleSrc = `package triple
import "context"
func Check(ctx context.Context) int { return 0 }
`

// The stub lift package keeps synthetic NewCheckpoint/ResumeCheckpoint
// declarations: the real wrappers are deleted and the real deprecation
// map is empty, but the flagging mechanism stays covered by registering
// these names via withDeprecated.
const liftSrc = `package lift
type Checkpoint struct{}
func OpenCheckpoint(path string) (*Checkpoint, error) { return &Checkpoint{}, nil }
func NewCheckpoint(path string) (*Checkpoint, error) { return OpenCheckpoint(path) }
func ResumeCheckpoint(path string) (*Checkpoint, error) { return OpenCheckpoint(path) }
`

// withDeprecated installs test-only entries in the ctxless deprecation
// map for the duration of one test, restoring the real (currently empty)
// map afterwards.
func withDeprecated(t *testing.T, entries map[string]string) {
	t.Helper()
	saved := deprecatedEntrypoints
	deprecatedEntrypoints = entries
	t.Cleanup(func() { deprecatedEntrypoints = saved })
}

// stubDeprecations marks the stub lift wrappers deprecated, mirroring how
// the map looked while the PR 7 wrappers were in their compatibility
// release.
func stubDeprecations(t *testing.T) {
	withDeprecated(t, map[string]string{
		"repro/lift.NewCheckpoint":    "OpenCheckpoint",
		"repro/lift.ResumeCheckpoint": "OpenCheckpoint",
	})
}

const exprSrc = `package expr
type Expr struct{}
func Word(w uint64) *Expr { return &Expr{} }
`

const obsSrc = `package obs
type Ring struct{}
type Tracer struct {
	Sink *Ring
	lift string
}
func (t *Tracer) Step(addr uint64) {
	if t == nil { return }
	_ = t.Sink
	_ = t.lift
}
`

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return nil, &types.Error{Msg: "no package " + path}
}

// typecheck parses and typechecks one file as the given import path and
// returns a ready Pass.
func typecheck(t *testing.T, path, src string, imp types.Importer) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	pkg, err := (&types.Config{Importer: imp}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

// stubImporter typechecks the stand-in packages and serves them (plus a
// minimal context stub) to the test package under analysis.
func stubImporter(t *testing.T) mapImporter {
	t.Helper()
	imp := mapImporter{}
	ctxPass := typecheck(t, "context", `package context
type Context interface{}
func Background() Context { return nil }
`, imp)
	imp["context"] = ctxPass.Pkg
	for path, src := range map[string]string{
		"repro/internal/core":     coreSrc,
		"repro/internal/pipeline": pipelineSrc,
		"repro/internal/triple":   tripleSrc,
		"repro/internal/obs":      obsSrc,
		"repro/internal/expr":     exprSrc,
		"repro/lift":              liftSrc,
	} {
		imp[path] = typecheck(t, path, src, imp).Pkg
	}
	return imp
}

func TestAnalyzers(t *testing.T) {
	stubDeprecations(t)
	imp := stubImporter(t)
	pass := typecheck(t, "example.com/use", `package use

import (
	"context"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/triple"
	"repro/lift"
)

func use(l *core.Lifter, tr *obs.Tracer) {
	_, _ = lift.NewCheckpoint("a")    // ctxless
	_, _ = lift.ResumeCheckpoint("a") // ctxless
	_, _ = lift.OpenCheckpoint("a")
	_ = l.LiftFuncCtx(context.Background(), 1, "f")
	_ = pipeline.RunCtx(context.Background())
	_ = triple.Check(context.Background())
	_ = tr.Sink // obsnil
	tr.Step(1)
	_, _ = lift.NewCheckpoint("a") //reprovet:ignore ctxless
	//reprovet:ignore
	_ = tr.Sink
	_, _ = lift.NewCheckpoint("a") //reprovet:ignore obsnil
}
`, imp)
	diags := Run(pass, All())
	type finding struct {
		line     int
		analyzer string
	}
	var got []finding
	for _, d := range diags {
		got = append(got, finding{pass.Fset.Position(d.Pos).Line, d.Analyzer})
	}
	want := []finding{
		{1, "pkgdoc"}, // the test package deliberately has no package doc
		{13, "ctxless"}, {14, "ctxless"},
		{19, "obsnil"},
		{24, "ctxless"}, // the obsnil-only directive must not hide ctxless
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCtxlessMessageNamesReplacement(t *testing.T) {
	stubDeprecations(t)
	imp := stubImporter(t)
	pass := typecheck(t, "example.com/msg", `package msg
import "repro/lift"
func f() { _, _ = lift.ResumeCheckpoint("x") }
`, imp)
	diags := Run(pass, []*Analyzer{Ctxless})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	if !strings.Contains(diags[0].Msg, "OpenCheckpoint") {
		t.Fatalf("message %q does not name the replacement", diags[0].Msg)
	}
}

func TestCtxlessDeclarationRule(t *testing.T) {
	imp := stubImporter(t)
	// The rule covers the entrypoint packages including their internal
	// test variants: exported Lift*/Run*/Check* declarations must take a
	// context.Context.
	src := `package pipeline
import "context"
func Run(n int) int { return n }
func RunCtx(ctx context.Context) int { return 0 }
func run() {}
func ForEach(jobs, n int) {}
type T struct{}
func (T) CheckAll() {}
func (T) CheckAllCtx(ctx context.Context) {}
`
	for _, path := range []string{
		"repro/internal/pipeline",
		"repro/internal/pipeline [repro/internal/pipeline.test]",
	} {
		pass := typecheck(t, path, src, imp)
		diags := Run(pass, []*Analyzer{Ctxless})
		if len(diags) != 2 {
			t.Fatalf("%s: got %d diagnostics, want 2: %v", path, len(diags), diags)
		}
		for i, wantLine := range []int{3, 8} {
			if l := pass.Fset.Position(diags[i].Pos).Line; l != wantLine {
				t.Errorf("%s: diag %d at line %d, want %d: %s", path, i, l, wantLine, diags[i].Msg)
			}
		}
	}
	// Outside the entrypoint packages the declaration rule is silent —
	// other packages may export context-less Run/Check helpers freely.
	pass := typecheck(t, "example.com/other", `package other
func Run() {}
func CheckAll() {}
`, imp)
	if diags := Run(pass, []*Analyzer{Ctxless}); len(diags) != 0 {
		t.Fatalf("declaration rule fired outside the entrypoint packages: %v", diags)
	}
}

func TestObsnilExemptsPackageObs(t *testing.T) {
	// The stand-in obs package accesses its own fields from a method —
	// that must not fire, including for the test-variant package path.
	imp := mapImporter{}
	for _, path := range []string{obsPath, obsPath + " [" + obsPath + ".test]"} {
		pass := typecheck(t, path, obsSrc, imp)
		if diags := Run(pass, []*Analyzer{Obsnil}); len(diags) != 0 {
			t.Fatalf("%s: got %d diagnostics, want 0: %v", path, len(diags), diags)
		}
	}
}

func TestObsnilFlagsValueReceiverToo(t *testing.T) {
	imp := stubImporter(t)
	pass := typecheck(t, "example.com/val", `package val
import "repro/internal/obs"
func f(tr obs.Tracer, p *obs.Tracer) {
	_ = tr.Sink
	_ = p.Sink
}
`, imp)
	diags := Run(pass, []*Analyzer{Obsnil})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
}

func TestExprnewFlagsLiterals(t *testing.T) {
	imp := stubImporter(t)
	pass := typecheck(t, "example.com/lit", `package lit
import "repro/internal/expr"
func f() {
	_ = &expr.Expr{}             // exprnew: pointer literal
	_ = expr.Expr{}              // exprnew: value literal
	_ = []*expr.Expr{nil}        // fine: slice literal of pointers
	_ = map[int]*expr.Expr{}     // fine: map literal of pointers
	_ = expr.Word(1)             // fine: constructor
	_ = &expr.Expr{} //reprovet:ignore exprnew
}
`, imp)
	diags := Run(pass, []*Analyzer{Exprnew})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if l := pass.Fset.Position(d.Pos).Line; l != 4 && l != 5 {
			t.Errorf("unexpected diagnostic at line %d: %s", l, d.Msg)
		}
	}
}

func TestExprnewExemptsPackageExpr(t *testing.T) {
	imp := mapImporter{}
	pass := typecheck(t, "repro/internal/expr", exprSrc, imp)
	if diags := Run(pass, []*Analyzer{Exprnew}); len(diags) != 0 {
		t.Fatalf("interning constructors themselves must be exempt: %v", diags)
	}
}

func TestPkgdoc(t *testing.T) {
	imp := mapImporter{}
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"documented", "// Package doc does things.\npackage doc\n", 0},
		{"undocumented", "package doc\n", 1},
		{"main", "package main\nfunc main() {}\n", 1},
		{"external test", "package doc_test\n", 0},
	}
	for _, tc := range cases {
		pass := typecheck(t, "example.com/doc", tc.src, imp)
		diags := Run(pass, []*Analyzer{Pkgdoc})
		if len(diags) != tc.want {
			t.Errorf("%s: got %d diagnostics, want %d: %v", tc.name, len(diags), tc.want, diags)
		}
		if tc.want == 1 {
			if !strings.Contains(diags[0].Msg, "package comment") {
				t.Errorf("%s: message %q does not explain the fix", tc.name, diags[0].Msg)
			}
			if p := pass.Fset.Position(diags[0].Pos); p.Line != 1 {
				t.Errorf("%s: diagnostic at line %d, want the package clause", tc.name, p.Line)
			}
		}
	}
}

func TestPkgdocAnyFileSuffices(t *testing.T) {
	// A multi-file package needs the doc on only one file.
	fset := token.NewFileSet()
	var files []*ast.File
	for name, src := range map[string]string{
		"a.go": "package multi\n",
		"b.go": "// Package multi is documented here.\npackage multi\n",
	} {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	pkg, err := (&types.Config{}).Check("example.com/multi", fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}
	if diags := Run(pass, []*Analyzer{Pkgdoc}); len(diags) != 0 {
		t.Fatalf("documented multi-file package flagged: %v", diags)
	}
}

// TestCtxlessDeprecationMapEmpty pins the post-deletion state: no
// deprecated wrappers remain registered, so the use-site rule is silent
// until the next deprecation cycle populates the map.
func TestCtxlessDeprecationMapEmpty(t *testing.T) {
	if len(deprecatedEntrypoints) != 0 {
		t.Fatalf("deprecatedEntrypoints holds %d entries, want 0 (the PR 7 wrappers are deleted): %v",
			len(deprecatedEntrypoints), deprecatedEntrypoints)
	}
	imp := stubImporter(t)
	pass := typecheck(t, "example.com/clean", `package clean
import "repro/lift"
func f() { _, _ = lift.NewCheckpoint("x") }
`, imp)
	if diags := Run(pass, []*Analyzer{Ctxless}); len(diags) != 0 {
		t.Fatalf("empty map still flagged a use: %v", diags)
	}
}

func TestRunOrdersDeterministically(t *testing.T) {
	stubDeprecations(t)
	imp := stubImporter(t)
	src := `package ord
import (
	"repro/internal/obs"
	"repro/lift"
)
func f(tr *obs.Tracer) {
	_ = tr.Sink
	_, _ = lift.NewCheckpoint("x")
	_ = tr.Sink
}
`
	var prev []Diagnostic
	for i := 0; i < 5; i++ {
		pass := typecheck(t, "example.com/ord", src, imp)
		diags := Run(pass, All())
		if len(diags) != 4 { // pkgdoc fires too: ord has no package doc
			t.Fatalf("got %d diagnostics", len(diags))
		}
		if prev != nil {
			for j := range diags {
				if diags[j].Analyzer != prev[j].Analyzer || diags[j].Msg != prev[j].Msg {
					t.Fatalf("run %d reordered: %v vs %v", i, diags, prev)
				}
			}
		}
		prev = diags
	}
}
