package corpus

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/hoare"
	"repro/internal/x86"
)

// edgeRelation indexes the HG edges of every lifted function of a binary
// as an address-level transition relation, together with enough structure
// to validate call/return transitions of a concrete trace.
type edgeRelation struct {
	allowed  map[[2]uint64]bool
	retSites map[uint64]bool // addresses of proven rets
	callTo   map[uint64]map[uint64]bool
	haltAt   map[uint64]bool
	instrs   map[uint64]bool
}

func buildRelation(t *testing.T, l *core.Lifter) *edgeRelation {
	t.Helper()
	rel := &edgeRelation{
		allowed:  map[[2]uint64]bool{},
		retSites: map[uint64]bool{},
		callTo:   map[uint64]map[uint64]bool{},
		haltAt:   map[uint64]bool{},
		instrs:   map[uint64]bool{},
	}
	for _, fr := range l.Summaries() {
		if fr.Graph == nil {
			continue
		}
		addrOf := map[hoare.VertexID]uint64{}
		for id, v := range fr.Graph.Vertices {
			addrOf[id] = v.Addr
		}
		for a := range fr.Graph.Instrs {
			rel.instrs[a] = true
		}
		for _, e := range fr.Graph.Edges {
			switch e.To {
			case hoare.ExitID:
				rel.retSites[e.Inst.Addr] = true
			case hoare.HaltID:
				rel.haltAt[e.Inst.Addr] = true
			default:
				rel.allowed[[2]uint64{e.Inst.Addr, addrOf[e.To]}] = true
			}
			if e.Inst.Mn == x86.CALL {
				if tgt, ok := e.Inst.Target(); ok {
					m := rel.callTo[e.Inst.Addr]
					if m == nil {
						m = map[uint64]bool{}
						rel.callTo[e.Inst.Addr] = m
					}
					m[tgt] = true
				}
			}
		}
	}
	return rel
}

// simulated checks one concrete transition against the relation.
func (rel *edgeRelation) simulated(im interface{ PLTName(uint64) (string, bool) }, tr emu.Transition) bool {
	if rel.allowed[[2]uint64{tr.From, tr.To}] {
		return true
	}
	// A call edge: the concrete transition enters the callee, while the
	// context-free graph edges go to the continuation. The callee entry
	// must be the call's resolved target.
	if m, ok := rel.callTo[tr.From]; ok && m[tr.To] {
		return true
	}
	// Calls into PLT stubs are modelled as external-call edges; the
	// emulator handles them at call time, so no stub transition appears.
	// A proven ret may return to any of its callers' continuations: the
	// continuation must itself be a lifted instruction.
	if rel.retSites[tr.From] && rel.instrs[tr.To] {
		return true
	}
	return false
}

// TestOverapproximationOnGeneratedCorpus is Definition 4.6 as an
// end-to-end property: for randomly generated multi-function binaries,
// every transition of every concrete run is simulated by the lifted Hoare
// graphs.
func TestOverapproximationOnGeneratedCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	trials := 12
	for trial := 0; trial < trials; trial++ {
		fe := cgen.DefaultFeatures()
		fe.Externs = []string{"malloc", "free"}
		p := cgen.GenProgram(rng, 1+rng.Intn(3), fe)
		res, err := cgen.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		l := core.New(res.Image, core.DefaultConfig())
		br := l.LiftBinaryCtx(context.Background(), "gen")
		if br.Status != core.StatusLifted {
			// A rejected binary makes no overapproximation claim.
			continue
		}
		rel := buildRelation(t, l)

		for run := 0; run < 6; run++ {
			c := emu.New(res.Image)
			c.Regs[x86.RDI] = uint64(rng.Intn(40))
			c.Externals["exit"] = func(c *emu.CPU) { c.Halted = true }
			trace, err := c.Run(500000)
			if err != nil {
				t.Fatalf("trial %d: emu: %v", trial, err)
			}
			if !c.Halted {
				t.Fatalf("trial %d: did not terminate", trial)
			}
			for _, tr := range trace {
				if !rel.simulated(res.Image, tr) {
					t.Fatalf("trial %d run %d: concrete transition %#x→%#x not simulated by the HG",
						trial, run, tr.From, tr.To)
				}
			}
		}
	}
}

// TestOverapproximationScenarioBinaries checks the simulation property on
// the hand-assembled weird-edge binary across all table indices and both
// aliasing regimes.
func TestOverapproximationScenarioBinaries(t *testing.T) {
	s, err := WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	l := core.New(s.Image, core.DefaultConfig())
	r := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
	if r.Status != core.StatusLifted {
		t.Fatal(r.Status)
	}
	rel := buildRelation(t, l)
	for idx := uint64(0); idx <= 0xc5; idx += 13 {
		for _, alias := range []bool{true, false} {
			c := emu.New(s.Image)
			c.Reset(s.FuncAddr)
			c.Regs[x86.RAX] = idx
			c.Regs[x86.RDI] = 0x7ffff800
			if alias {
				c.Regs[x86.RSI] = 0x7ffff800
			} else {
				c.Regs[x86.RSI] = 0x7ffff900
			}
			trace, err := c.Run(1000)
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range trace {
				if !rel.simulated(s.Image, tr) {
					t.Fatalf("idx=%d alias=%v: %#x→%#x not simulated", idx, alias, tr.From, tr.To)
				}
			}
		}
	}
}
