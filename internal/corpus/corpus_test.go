package corpus

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/hoare"
	"repro/internal/sem"
	"repro/internal/triple"
	"repro/internal/x86"
)

func liftScenario(t *testing.T, s *Scenario) *core.FuncResult {
	t.Helper()
	l := core.New(s.Image, core.DefaultConfig())
	return l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
}

// TestWeirdEdge replays Section 2 end to end: the binary lifts, the jump
// table is bounded, the aliasing fork produces the hidden-ret weird edge
// at entry+1, and the Hoare graph overapproximates concrete execution.
func TestWeirdEdge(t *testing.T) {
	s, err := WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	r := liftScenario(t, s)
	if r.Status != core.StatusLifted {
		t.Fatalf("status %s: %v", r.Status, r.Reasons)
	}
	st := r.Stats()
	if st.ResolvedInd != 1 {
		t.Fatalf("the indirect jump must be resolved: %+v", st)
	}
	if st.UnresolvedJump != 0 || st.UnresolvedCall != 0 {
		t.Fatalf("no annotations expected: %+v", st)
	}
	// The weird edge: a vertex at entry+1 — the ret hidden inside the cmp
	// immediate (byte 0xc3).
	weird := r.Graph.VerticesAt(s.FuncAddr + 1)
	if len(weird) == 0 {
		t.Fatalf("hidden ret vertex at %#x not found", s.FuncAddr+1)
	}
	if inst, ok := r.Graph.Instrs[s.FuncAddr+1]; !ok || inst.Mn != x86.RET {
		t.Fatalf("instruction at entry+1: %v", inst)
	}
	// The weird vertex is reachable from the indirect jump.
	foundWeirdEdge := false
	for _, e := range r.Graph.Edges {
		if e.Inst.Mn == x86.JMP && e.Inst.Ops[0].Kind == x86.OpMem {
			for _, v := range weird {
				if e.To == v.ID {
					foundWeirdEdge = true
				}
			}
		}
	}
	if !foundWeirdEdge {
		t.Fatal("the jmp [rdi] edge to the hidden ret is missing")
	}

	// Concrete cross-check: run the binary with aliasing pointers; the
	// execution really lands on the hidden ret, and the transition is in
	// the graph.
	c := emu.New(s.Image)
	c.Reset(s.FuncAddr)
	c.Regs[x86.RAX] = 2          // table index
	c.Regs[x86.RDI] = 0x7ffff000 // scratch memory
	c.Regs[x86.RSI] = 0x7ffff000 // aliases rdi
	trace, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	landedWeird := false
	for _, tr := range trace {
		if tr.To == s.FuncAddr+1 {
			landedWeird = true
		}
	}
	if !landedWeird {
		t.Fatalf("concrete aliasing run did not reach the gadget: %+v", trace)
	}

	// Step 2 proves the graph.
	rep := triple.Check(context.Background(), s.Image, r.Graph, sem.DefaultConfig(), triple.Workers(2))
	if !rep.AllProven() {
		for _, th := range rep.Sorted() {
			if th.Verdict == triple.Failed {
				t.Errorf("theorem %s: %s", th.Vertex, th.Reason)
			}
		}
		t.Fatal("weird-edge graph must verify")
	}
}

func TestRet2WinObligation(t *testing.T) {
	s, err := Ret2Win()
	if err != nil {
		t.Fatal(err)
	}
	r := liftScenario(t, s)
	if r.Status != core.StatusLifted {
		t.Fatalf("status %s: %v", r.Status, r.Reasons)
	}
	if len(r.Graph.Obligations) == 0 {
		t.Fatal("memset obligation missing")
	}
	ob := r.Graph.Obligations[0]
	for _, want := range []string{"memset", "rdi := rsp0 - 0x28", "MUST PRESERVE"} {
		if !strings.Contains(ob, want) {
			t.Errorf("obligation %q missing %q", ob, want)
		}
	}
}

func TestFailureScenarios(t *testing.T) {
	for _, tc := range []struct {
		build func() (*Scenario, error)
		want  core.Status
	}{
		{StackProbe, core.StatusUnprovableRet},
		{NonStdRSP, core.StatusUnprovableRet},
		{Overflow, core.StatusUnprovableRet},
	} {
		s, err := tc.build()
		if err != nil {
			t.Fatal(err)
		}
		r := liftScenario(t, s)
		if r.Status != tc.want {
			t.Errorf("%s: status %s (want %s): %v", s.Name, r.Status, tc.want, r.Reasons)
		}
	}
}

func TestAllScenariosBuild(t *testing.T) {
	ss, err := AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 5 {
		t.Fatalf("scenarios: %d", len(ss))
	}
	for _, s := range ss {
		if s.Describe == "" {
			t.Errorf("%s: missing description", s.Name)
		}
	}
}

// TestDirectoryOutcomes builds a small Table 1-shaped directory and checks
// that lifting reproduces the expected per-unit statuses.
func TestDirectoryOutcomes(t *testing.T) {
	shape := DirShape{
		Name: "testdir", Kind: KindLibFunc,
		Lifted: 8, Unprovable: 2, Concurrent: 2, Timeout: 1,
		CallbackFrac: 0.25, CompJumpFrac: 0.12,
		MinStmts: 2, MaxStmts: 8, Helpers: 1,
	}
	dir, err := BuildDirectory(shape, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir.Units) != 13 {
		t.Fatalf("units: %d", len(dir.Units))
	}
	var match, total int
	var stats hoare.Stats
	for _, u := range dir.Units {
		cfg := core.DefaultConfig()
		if u.Budget > 0 {
			cfg.MaxStates = u.Budget
		}
		l := core.New(u.Image, cfg)
		r := l.LiftFuncCtx(context.Background(), u.FuncAddr, u.Name)
		total++
		if r.Status == u.Expect {
			match++
		} else {
			t.Logf("%s: got %s want %s (%v)", u.Name, r.Status, u.Expect, r.Reasons)
		}
		stats.Add(r.Stats())
	}
	// The generator controls outcomes; a small slack absorbs random
	// programs whose benign features happen to trip a rejection.
	if match < total-1 {
		t.Fatalf("only %d/%d units matched their expected status", match, total)
	}
	if stats.UnresolvedCall == 0 {
		t.Fatal("callback units must produce unresolved calls (column C)")
	}
	if stats.UnresolvedJump == 0 {
		t.Fatal("computed-jump units must produce unresolved jumps (column B)")
	}
	if stats.Instructions == 0 || stats.States < stats.Instructions {
		t.Fatalf("stats shape: %+v", stats)
	}
}

func TestXenSuiteShape(t *testing.T) {
	dirs := XenSuite(1.0)
	if len(dirs) != 8 {
		t.Fatalf("directories: %d", len(dirs))
	}
	var bins, funcs int
	for _, d := range dirs {
		n := d.Lifted + d.Unprovable + d.Concurrent + d.Timeout
		if d.Kind == KindBinary {
			bins += n
		} else {
			funcs += n
		}
	}
	if bins != 63 {
		t.Fatalf("binaries: %d (Table 1 has 63)", bins)
	}
	if funcs != 2151 {
		t.Fatalf("library functions: %d (Table 1 has 2151)", funcs)
	}
	// Scaling keeps every nonzero category present.
	for _, d := range XenSuite(0.05) {
		if d.Lifted == 0 {
			t.Fatalf("%s: scaled away the lifted units", d.Name)
		}
	}
}

func TestCoreUtilsSuite(t *testing.T) {
	units, err := CoreUtilsSuite(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 6 {
		t.Fatalf("units: %d", len(units))
	}
	names := map[string]bool{}
	for _, u := range units {
		names[u.Name] = true
		l := core.New(u.Image, core.DefaultConfig())
		r := l.LiftBinaryCtx(context.Background(), u.Name)
		if r.Status != core.StatusLifted {
			t.Errorf("%s: %s", u.Name, r.Status)
		}
	}
	for _, want := range []string{"hexdump", "od", "wc", "tar", "du", "gzip"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

// TestExploitCandidateFromRet2Win turns the Section 5.3 obligation into a
// concrete exploit recipe (Section 7's security-analysis application): the
// ret2win pointer sits at rsp0-0x28, so writing 0x30 bytes reaches the
// stored return address.
func TestExploitCandidateFromRet2Win(t *testing.T) {
	s, err := Ret2Win()
	if err != nil {
		t.Fatal(err)
	}
	r := liftScenario(t, s)
	cands := core.ExploitCandidates(r)
	if len(cands) != 1 {
		t.Fatalf("candidates: %+v", cands)
	}
	c := cands[0]
	if c.Callee != "memset" || c.ArgReg != "rdi" {
		t.Fatalf("candidate shape: %+v", c)
	}
	if c.Offset != -0x28 || c.OverwriteLen != 0x30 {
		t.Fatalf("overwrite math: %+v", c)
	}
	if !strings.Contains(c.String(), "overwrites the return address") {
		t.Fatalf("rendering: %s", c.String())
	}
	// Concrete confirmation: emulate memset writing OverwriteLen bytes —
	// the function "returns" to the attacker value instead of its caller.
	c2 := emu.New(s.Image)
	c2.Reset(s.FuncAddr)
	c2.Externals["memset"] = func(cpu *emu.CPU) {
		dst := cpu.Regs[x86.RDI]
		for i := int64(0); i < c.OverwriteLen; i++ {
			cpu.WriteMem(dst+uint64(i), 1, 0x41)
		}
	}
	for !c2.Halted {
		if _, err := c2.Step(); err != nil {
			break // jumping to 0x4141... faults: the hijack happened
		}
		if c2.RIP == 0x4141414141414141 {
			break
		}
	}
	if c2.RIP != 0x4141414141414141 {
		t.Fatalf("exploit did not hijack control: rip=%#x", c2.RIP)
	}
}

// TestWeirdEdgeDOT exports the Section 2 graph to Graphviz and checks the
// weird vertex is highlighted.
func TestWeirdEdgeDOT(t *testing.T) {
	s, err := WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	r := liftScenario(t, s)
	dot := r.Graph.ToDOT()
	for _, want := range []string{"digraph", "WEIRD", "color=red", "exit"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q", want)
		}
	}
}

// TestWeirdVertexStat counts the Section 2 gadget in the statistics.
func TestWeirdVertexStat(t *testing.T) {
	s, err := WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	r := liftScenario(t, s)
	if got := r.Stats().WeirdVertices; got == 0 {
		t.Fatalf("weird vertices: %d", got)
	}
	addrs := r.Graph.WeirdAddresses()
	if len(addrs) != 1 || addrs[0] != s.FuncAddr+1 {
		t.Fatalf("weird addresses: %#x", addrs)
	}
}
