// Package corpus builds the evaluation corpus: hand-assembled scenario
// binaries reproducing Section 2's weird-edge example and Section 5.3's
// failure cases, plus generated program suites shaped after the paper's
// Xen (Table 1) and CoreUtils (Table 2) case studies. The binaries are
// real ELF64 executables built from scratch; the lifter consumes their raw
// bytes exactly as it would consume GCC output.
package corpus

import (
	"fmt"

	"repro/internal/elf64"
	"repro/internal/image"
	"repro/internal/x86"
)

// Scenario is one named case-study binary.
type Scenario struct {
	Name  string
	Image *image.Image
	// Raw is the ELF image bytes.
	Raw []byte
	// FuncAddr is the address to lift (the scenario's function).
	FuncAddr uint64
	// Describe summarises what the paper expects for this scenario.
	Describe string
}

const (
	scenText   = 0x401000
	scenPLT    = 0x400800
	scenRodata = 0x4a0000
)

// build assembles a scenario with optional PLT externals and rodata.
func build(name string, externs []string, rodata []byte, emit func(a *x86.Asm, stub func(string) uint64)) (*Scenario, error) {
	stubAddr := func(n string) uint64 {
		for i, e := range externs {
			if e == n {
				return scenPLT + uint64(16*i)
			}
		}
		panic("corpus: unknown extern " + n)
	}
	a := x86.NewAsm(scenText)
	emit(a, stubAddr)
	code, err := a.Finish()
	if err != nil {
		return nil, fmt.Errorf("corpus %s: %w", name, err)
	}
	eb := elf64.NewExec(scenText)
	eb.AddSection(".text", elf64.SHFExecinstr, scenText, code)
	if len(externs) > 0 {
		plt := x86.NewAsm(scenPLT)
		for i := range externs {
			start := plt.PC()
			plt.I(x86.JMP, x86.MemOp(x86.RIP, x86.RegNone, 1, 0x100000, 8))
			for plt.PC() < start+16 {
				plt.I(x86.NOP)
			}
			_ = i
		}
		pltCode, err := plt.Finish()
		if err != nil {
			return nil, err
		}
		eb.AddSection(".plt", elf64.SHFExecinstr, scenPLT, pltCode)
		for i, n := range externs {
			eb.AddFunc(n+"@plt", scenPLT+uint64(16*i), 16)
		}
	}
	if rodata != nil {
		eb.AddSection(".rodata", 0, scenRodata, rodata)
	}
	img, err := eb.Bytes()
	if err != nil {
		return nil, err
	}
	im, err := image.Load(img)
	if err != nil {
		return nil, err
	}
	return &Scenario{Name: name, Image: im, Raw: img, FuncAddr: scenText}, nil
}

// WeirdEdge reproduces the Section 2 example as a 64-bit binary: a jump
// table dispatch whose first instruction hides a ret (byte 0xc3) inside
// its immediate, and two stores through possibly-aliasing pointers before
// an indirect jump. In the aliasing memory model the jump reads the second
// store's value and control lands in the middle of the first instruction —
// the hidden ROP gadget, a "weird" edge. (The paper's 32-bit example sits
// at address 0 and stores the constant 1; at our 64-bit load address the
// stored constant is entry+1, the same gadget address.)
//
// Layout (addresses relative to the function entry at 0x401000):
//
//	+0  cmp eax, 0xc3          ; byte at +1 is 0xc3 = ret
//	+5  ja  end
//	+b  mov rax, [rax*8 + tbl] ; bounded table read, one edge per value
//	+13 mov [rdi], rax
//	+16 mov qword [rsi], entry+1
//	+1d jmp [rdi]
//	pads p0..p3: mov eax, k; ret
//	end: ret
//
// The table holds 0xc4 entries cycling over the four landing pads.
func WeirdEdge() (*Scenario, error) {
	const entries = 0xc4
	table := make([]byte, 8*entries)
	s, err := build("weird-edge", nil, table, func(a *x86.Asm, _ func(string) uint64) {
		a.I(x86.CMP, x86.RegOp(x86.RAX, 4), x86.ImmOp(0xc3, 4)) // 3d c3 00 00 00
		a.Jcc(x86.CondA, "end")
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4)) // zero-extend the index
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RegNone, x86.RAX, 8, scenRodata, 8))
		a.I(x86.MOV, x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8), x86.RegOp(x86.RAX, 8))
		a.I(x86.MOV, x86.MemOp(x86.RSI, x86.RegNone, 1, 0, 8), x86.ImmOp(int64(scenText+1), 4))
		a.I(x86.JMP, x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8))
		for i := 0; i < 4; i++ {
			a.Label(fmt.Sprintf("pad%d", i))
			a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(int64(10*i), 4))
			a.I(x86.RET)
		}
		a.Label("end")
		a.I(x86.RET)
		// Patch the table now that the pads are placed.
		for i := 0; i < entries; i++ {
			addr, _ := a.LabelAddr(fmt.Sprintf("pad%d", i%4))
			for j := 0; j < 8; j++ {
				table[8*i+j] = byte(addr >> (8 * j))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	s.Describe = "Section 2: aliasing fork, bounded jump table, hidden ret gadget at entry+1"
	return s, nil
}

// Ret2Win reproduces the ROP Emporium ret2win shape of Section 5.3: a call
// to the unknown external memset with a pointer into the caller's stack
// frame. Lifting succeeds but generates the proof obligation that memset
// must preserve the region around the stored return address.
func Ret2Win() (*Scenario, error) {
	s, err := build("ret2win", []string{"memset"}, nil, func(a *x86.Asm, stub func(string) uint64) {
		a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x28, 1))
		a.I(x86.LEA, x86.RegOp(x86.RDI, 8), x86.MemOp(x86.RSP, x86.RegNone, 1, 0, 8))
		a.I(x86.XOR, x86.RegOp(x86.RSI, 4), x86.RegOp(x86.RSI, 4))
		a.I(x86.MOV, x86.RegOp(x86.RDX, 4), x86.ImmOp(48, 4))
		a.CallAbs(stub("memset"))
		a.I(x86.ADD, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x28, 1))
		a.I(x86.RET)
	})
	if err != nil {
		return nil, err
	}
	s.Describe = "Section 5.3: memset(rdi := rsp0 - 0x28) obliged to preserve the return address region"
	return s, nil
}

// StackProbe reproduces the /usr/bin/zip stack-probing failure of Section
// 5.3: rax is set, an internal probe function is called (clobbering rax in
// the overapproximation), then rsp is adjusted by rax and the probed area
// written. The relation between the write and the stored return address
// cannot be established; the function is rejected.
func StackProbe() (*Scenario, error) {
	s, err := build("stack-probe", nil, nil, func(a *x86.Asm, _ func(string) uint64) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(0x1400, 4))
		a.Call("probe")
		a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.RegOp(x86.RAX, 8))
		a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, 0, 8), x86.ImmOp(0, 4))
		a.I(x86.ADD, x86.RegOp(x86.RSP, 8), x86.RegOp(x86.RAX, 8))
		a.I(x86.RET)
		a.Label("probe")
		a.I(x86.RET)
	})
	if err != nil {
		return nil, err
	}
	s.Describe = "Section 5.3: stack probing — rax unknown after call, rsp-relative write unprovable"
	return s, nil
}

// NonStdRSP reproduces the /usr/bin/ssh failure of Section 5.3: the stack
// pointer is restored from a memory location instead of arithmetic over
// rsp0, so no memory relations over the frame can be proven.
func NonStdRSP() (*Scenario, error) {
	s, err := build("nonstd-rsp", nil, nil, func(a *x86.Asm, _ func(string) uint64) {
		a.I(x86.MOV, x86.RegOp(x86.RSP, 8), x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8))
		a.I(x86.ADD, x86.RegOp(x86.RSP, 8), x86.ImmOp(56, 1))
		a.I(x86.RET)
	})
	if err != nil {
		return nil, err
	}
	s.Describe = "Section 5.3: non-standard stack pointer restoration rejected"
	return s, nil
}

// Overflow reproduces the manually induced buffer overflow of Section 5.1:
// a store at an attacker-controlled offset from the frame. No HG is
// extracted (return address integrity unprovable).
func Overflow() (*Scenario, error) {
	s, err := build("overflow", nil, nil, func(a *x86.Asm, _ func(string) uint64) {
		a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x40, 1))
		a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RDI, 1, 0, 1), x86.RegOp(x86.RSI, 1))
		a.I(x86.ADD, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x40, 1))
		a.I(x86.RET)
	})
	if err != nil {
		return nil, err
	}
	s.Describe = "Section 5.1: induced buffer overflow — no HG is extracted"
	return s, nil
}

// AllScenarios returns every named scenario.
func AllScenarios() ([]*Scenario, error) {
	var out []*Scenario
	for _, f := range []func() (*Scenario, error){WeirdEdge, Ret2Win, StackProbe, NonStdRSP, Overflow} {
		s, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
