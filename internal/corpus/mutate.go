package corpus

// Single-function mutation: the incremental-lifting smoke tests need a
// binary that differs from a previous build in exactly one function, the
// way an edit-recompile cycle produces one. FlipUnit simulates that by
// flipping one immediate byte inside one function's symbol extent and
// reloading the image — every other function's bytes (and so its
// content-addressed store key) are untouched.

import (
	"fmt"

	"repro/internal/image"
	"repro/internal/x86"
)

// FlipUnit mutates the unit in place: one data immediate inside the
// unit's target function (FuncAddr for library functions, the first
// function symbol for whole binaries) is XOR-ed with 1 and the image
// reloaded from the patched ELF. Branch immediates and immediates that
// look like code pointers are skipped so the mutated function still
// decodes and lifts; the returned name identifies the mutated function.
func FlipUnit(u *Unit) (string, error) {
	addr := u.FuncAddr
	if u.Kind == KindBinary {
		// The entry point is the bare _start wrapper (no symbol, no
		// immediates); mutate the first real function instead.
		syms := u.Image.FuncSymbols()
		if len(syms) == 0 {
			return "", fmt.Errorf("flip %s: no function symbols", u.Name)
		}
		addr = syms[0].Value
	}
	name, size := "", uint64(0)
	for _, s := range u.Image.FuncSymbols() {
		if s.Value == addr && s.Size > 0 {
			name, size = s.Name, s.Size
			break
		}
	}
	if size == 0 {
		return "", fmt.Errorf("flip %s: no sized symbol at %#x", u.Name, addr)
	}
	flipAddr, err := findFlippableImm(u.Image, addr, addr+size)
	if err != nil {
		return "", fmt.Errorf("flip %s/%s: %w", u.Name, name, err)
	}
	raw := append([]byte(nil), u.Image.Raw()...)
	off, ok := fileOffset(u.Image, flipAddr)
	if !ok {
		return "", fmt.Errorf("flip %s/%s: address %#x not backed by file data", u.Name, name, flipAddr)
	}
	raw[off] ^= 1
	img, err := image.Load(raw)
	if err != nil {
		return "", fmt.Errorf("flip %s/%s: reload: %w", u.Name, name, err)
	}
	u.Image = img
	return name, nil
}

// findFlippableImm walks the instructions of [lo,hi) and returns the
// address of the final byte (immediates encode last) of the first
// instruction carrying a plain data immediate — not a branch target and
// not a value inside the text range (those are code pointers; flipping
// one would change control flow rather than data).
func findFlippableImm(img *image.Image, lo, hi uint64) (uint64, error) {
	for addr := lo; addr < hi; {
		inst, err := img.Fetch(addr)
		if err != nil {
			return 0, err
		}
		if inst.Mn != x86.JMP && inst.Mn != x86.CALL && inst.Mn != x86.JCC {
			for _, op := range inst.Ops {
				if op.Kind == x86.OpImm && !img.InText(uint64(op.Imm)) {
					return addr + uint64(inst.Len) - 1, nil
				}
			}
		}
		addr += uint64(inst.Len)
	}
	return 0, fmt.Errorf("no flippable immediate in [%#x,%#x)", lo, hi)
}

// fileOffset maps a virtual address to its offset in the raw ELF via the
// section table.
func fileOffset(img *image.Image, addr uint64) (uint64, bool) {
	for _, s := range img.File().Sections {
		if s.Data != nil && addr >= s.Addr && addr < s.Addr+uint64(len(s.Data)) {
			return s.Off + (addr - s.Addr), true
		}
	}
	return 0, false
}
