package corpus

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/image"
)

// UnitKind distinguishes Table 1's upper part (whole binaries, lifted from
// the entry point) from its lower part (externally exposed functions of
// shared objects, lifted individually).
type UnitKind uint8

// The unit kinds.
const (
	KindBinary UnitKind = iota
	KindLibFunc
)

// Unit is one item to lift: a compiled ELF image plus the expected
// outcome.
type Unit struct {
	Name     string
	Kind     UnitKind
	Image    *image.Image
	FuncAddr uint64 // entry of the function to lift (KindLibFunc)
	Expect   core.Status
	// Budget overrides the lifter's MaxStates for this unit (0 = default).
	// Timeout units are the functions too large for the exploration
	// budget — the analogue of the paper's 4-hour wall-clock limit.
	Budget int
}

// Directory is one row of Table 1.
type Directory struct {
	Name  string
	Kind  UnitKind
	Units []*Unit
}

// DirShape describes how to generate one directory: the per-outcome unit
// counts of Table 1 plus the feature mix driving the annotation columns.
type DirShape struct {
	Name       string
	Kind       UnitKind
	Lifted     int
	Unprovable int // column x: unprovable return address
	Concurrent int // column y: multithreading, out of scope
	Timeout    int // column z
	// CallbackFrac is the fraction of lifted units containing a call
	// through a function-pointer parameter (column C).
	CallbackFrac float64
	// CompJumpFrac is the fraction of lifted units containing a computed
	// jump through writable data (column B).
	CompJumpFrac float64
	// FuncsPerUnit spreads unit sizes (Figure 3's x axis).
	MinStmts, MaxStmts int
	// Helpers is the number of sibling functions per unit.
	Helpers int
}

// XenSuite returns the directory shapes of Table 1, with unit counts
// multiplied by scale (1.0 reproduces the paper's 63 binaries and 2151
// library functions).
func XenSuite(scale float64) []DirShape {
	n := func(c int) int {
		if c == 0 {
			return 0
		}
		return int(math.Max(1, math.Round(float64(c)*scale)))
	}
	return []DirShape{
		{Name: "bin", Kind: KindBinary, Lifted: n(12), Unprovable: n(2), Concurrent: n(1),
			CallbackFrac: 0.0, MinStmts: 4, MaxStmts: 14, Helpers: 3},
		{Name: "xen/bin", Kind: KindBinary, Lifted: n(7), Unprovable: n(1), Concurrent: n(8), Timeout: n(1),
			CallbackFrac: 0.3, MinStmts: 4, MaxStmts: 10, Helpers: 2},
		{Name: "libexec", Kind: KindBinary, Lifted: n(1),
			MinStmts: 4, MaxStmts: 6, Helpers: 1},
		{Name: "sbin", Kind: KindBinary, Lifted: n(25), Unprovable: n(1), Concurrent: n(4),
			CallbackFrac: 0.25, MinStmts: 4, MaxStmts: 12, Helpers: 3},
		{Name: "lib", Kind: KindLibFunc, Lifted: n(1874), Unprovable: n(29), Timeout: n(4),
			CallbackFrac: 0.32, CompJumpFrac: 0.13, MinStmts: 2, MaxStmts: 30, Helpers: 2},
		{Name: "xenfsimage", Kind: KindLibFunc, Lifted: n(106), Unprovable: n(3),
			CallbackFrac: 0.25, MinStmts: 3, MaxStmts: 16, Helpers: 2},
		{Name: "dist-packages", Kind: KindLibFunc, Lifted: n(16),
			CallbackFrac: 0.19, MinStmts: 2, MaxStmts: 8, Helpers: 1},
		{Name: "lowlevel", Kind: KindLibFunc, Lifted: n(119),
			CallbackFrac: 0.75, MinStmts: 2, MaxStmts: 10, Helpers: 1},
	}
}

// BuildDirectory generates and compiles every unit of a directory,
// deterministically from the seed.
func BuildDirectory(shape DirShape, seed int64) (*Directory, error) {
	dir := &Directory{Name: shape.Name, Kind: shape.Kind}
	rng := rand.New(rand.NewSource(seed))
	idx := 0
	add := func(expect core.Status, count int, configure func(fe *cgen.Features)) error {
		for i := 0; i < count; i++ {
			fe := cgen.DefaultFeatures()
			fe.StmtsPerFunc = shape.MinStmts + rng.Intn(shape.MaxStmts-shape.MinStmts+1)
			if configure != nil {
				configure(&fe)
			}
			u, err := buildUnit(shape, fmt.Sprintf("%s_%03d", sanitizeName(shape.Name), idx), rng, fe, expect)
			if err != nil {
				return err
			}
			dir.Units = append(dir.Units, u)
			idx++
		}
		return nil
	}

	nCallback := int(math.Round(shape.CallbackFrac * float64(shape.Lifted)))
	nCompJump := int(math.Round(shape.CompJumpFrac * float64(shape.Lifted)))
	if err := add(core.StatusLifted, nCallback, func(fe *cgen.Features) { fe.Callback = true }); err != nil {
		return nil, err
	}
	if err := add(core.StatusLifted, nCompJump, func(fe *cgen.Features) { fe.CompJump = true }); err != nil {
		return nil, err
	}
	if err := add(core.StatusLifted, shape.Lifted-nCallback-nCompJump, nil); err != nil {
		return nil, err
	}
	if err := add(core.StatusUnprovableRet, shape.Unprovable, func(fe *cgen.Features) { fe.Overflow = true }); err != nil {
		return nil, err
	}
	if err := add(core.StatusConcurrency, shape.Concurrent, func(fe *cgen.Features) { fe.Pthread = true }); err != nil {
		return nil, err
	}
	if err := add(core.StatusTimeout, shape.Timeout, func(fe *cgen.Features) {
		fe.StmtsPerFunc = 40
		fe.MaxDepth = 3
	}); err != nil {
		return nil, err
	}
	return dir, nil
}

// buildUnit generates one program and compiles it.
func buildUnit(shape DirShape, name string, rng *rand.Rand, fe cgen.Features, expect core.Status) (*Unit, error) {
	nFuncs := 1 + shape.Helpers
	p := &cgen.Program{Globals: []cgen.Global{{Name: "g0", Size: 8}, {Name: "g1", Size: 8}}}
	var names []string
	for i := 0; i < nFuncs; i++ {
		feI := fe
		if i < nFuncs-1 {
			// Helpers are benign: the outcome-driving feature lives in
			// the unit's main function.
			feI.Callback = false
			feI.Pthread = false
			feI.Overflow = false
			feI.CompJump = false
			feI.StmtsPerFunc = 2 + rng.Intn(4)
		}
		fn := cgen.GenFunc(rng, fmt.Sprintf("fn%d", i), names, feI)
		p.Funcs = append(p.Funcs, fn)
		names = append(names, fn.Name)
	}
	p.Entry = names[len(names)-1]
	res, err := cgen.Compile(p)
	if err != nil {
		return nil, fmt.Errorf("corpus unit %s: %w", name, err)
	}
	u := &Unit{
		Name:   name,
		Kind:   shape.Kind,
		Image:  res.Image,
		Expect: expect,
	}
	if shape.Kind == KindLibFunc {
		u.FuncAddr = res.Funcs[p.Entry]
	} else {
		u.FuncAddr = res.Image.Entry()
	}
	if expect == core.StatusTimeout {
		u.Budget = 120
	}
	return u, nil
}

func sanitizeName(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c == '/' || c == '-' {
			out[i] = '_'
		}
	}
	return string(out)
}

// CoreUtilsSuite returns the six Table 2 binaries: CoreUtils-shaped
// programs whose relative sizes follow the paper's instruction counts
// (hexdump 2515, od 3040, wc 445, tar 5730, du 883, gzip 3465) and whose
// switch density follows the indirection counts (11, 11, 0, 5, 3, 7).
func CoreUtilsSuite(scale float64) ([]*Unit, error) {
	specs := []struct {
		name     string
		funcs    int
		switches int
	}{
		{"hexdump", 18, 11},
		{"od", 22, 11},
		{"wc", 4, 0},
		{"tar", 40, 5},
		{"du", 7, 3},
		{"gzip", 25, 7},
	}
	var out []*Unit
	for i, sp := range specs {
		n := int(math.Max(1, math.Round(float64(sp.funcs)*scale)))
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		fe := cgen.DefaultFeatures()
		fe.StmtsPerFunc = 10
		if sp.switches > 0 {
			fe.Switches = 250
		} else {
			fe.Switches = 0
		}
		p := &cgen.Program{Globals: []cgen.Global{{Name: "g0", Size: 8}}}
		var names []string
		for j := 0; j < n; j++ {
			fn := cgen.GenFunc(rng, fmt.Sprintf("u%d", j), names, fe)
			p.Funcs = append(p.Funcs, fn)
			names = append(names, fn.Name)
		}
		// A driver calls every function so the entry-point exploration
		// covers the whole binary, as the paper's CoreUtils lifts do.
		driver := &cgen.Func{Name: "main", Params: 1}
		for _, name := range names {
			driver.Body = append(driver.Body, cgen.ExprStmt{
				X: cgen.Call{Name: name, Args: []cgen.Expr{cgen.Param(0)}},
			})
		}
		driver.Body = append(driver.Body, cgen.Return{X: cgen.Const(0)})
		p.Funcs = append(p.Funcs, driver)
		p.Entry = "main"
		res, err := cgen.Compile(p)
		if err != nil {
			return nil, fmt.Errorf("coreutils %s: %w", sp.name, err)
		}
		out = append(out, &Unit{
			Name:     sp.name,
			Kind:     KindBinary,
			Image:    res.Image,
			FuncAddr: res.Image.Entry(),
			Expect:   core.StatusLifted,
		})
	}
	return out, nil
}
