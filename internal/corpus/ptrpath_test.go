package corpus

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// runPtrDir lifts the ptr_ directory with or without the pointer pre-pass
// (Jobs 1 keeps summaries deterministic; each unit's budget is honoured).
func runPtrDir(t *testing.T, dir *Directory, facts bool) *pipeline.Summary {
	t.Helper()
	var tasks []pipeline.Task
	for _, u := range dir.Units {
		cfg := core.DefaultConfig()
		if u.Budget > 0 {
			cfg.MaxStates = u.Budget
		}
		tasks = append(tasks, pipeline.Task{Name: u.Name, Img: u.Image, Addr: u.FuncAddr, Cfg: &cfg})
	}
	return pipeline.RunCtx(context.Background(), tasks, pipeline.Options{Jobs: 1, PointerFacts: facts})
}

// TestPtrPathology pins the directory's double life: without facts the
// units fork and destroy (and the forkbomb times out); with facts the
// fork+destroy totals collapse and the forkbomb lifts inside the same
// budget. This is the in-tree version of the CI ptr-smoke gate.
func TestPtrPathology(t *testing.T) {
	dir, err := PtrPathology()
	if err != nil {
		t.Fatal(err)
	}
	off := runPtrDir(t, dir, false)
	on := runPtrDir(t, dir, true)

	for i, u := range dir.Units {
		if got := off.Results[i].Status; got != u.Expect {
			t.Errorf("%s without facts: status %v, want %v", u.Name, got, u.Expect)
		}
		t.Logf("%s: off status=%v steps_forks=%d destroys=%d fallbacks=%d | on status=%v forks=%d destroys=%d fallbacks=%d facthits=%d",
			u.Name,
			off.Results[i].Status, off.Results[i].Stats.Sem.Forks, off.Results[i].Stats.Sem.Destroys, off.Results[i].Stats.Sem.Fallbacks,
			on.Results[i].Status, on.Results[i].Stats.Sem.Forks, on.Results[i].Stats.Sem.Destroys, on.Results[i].Stats.Sem.Fallbacks,
			on.Results[i].Stats.Sem.FactHits)
	}

	// The newly-liftable unit: rejected on budget without facts, lifted
	// with them under the identical budget.
	if off.Results[0].Status != core.StatusTimeout || on.Results[0].Status != core.StatusLifted {
		t.Fatalf("ptr_forkbomb: off=%v on=%v, want timeout/lifted",
			off.Results[0].Status, on.Results[0].Status)
	}
	// Every unit lifted without facts stays lifted with them.
	for i, u := range dir.Units {
		if off.Results[i].Status == core.StatusLifted && on.Results[i].Status != core.StatusLifted {
			t.Errorf("%s: lifted without facts but %v with them", u.Name, on.Results[i].Status)
		}
	}

	offCost := off.Stats.Sem.Forks + off.Stats.Sem.Destroys
	onCost := on.Stats.Sem.Forks + on.Stats.Sem.Destroys
	if onCost*10 > offCost*7 { // ≥ 30% reduction, integer arithmetic
		t.Errorf("fork+destroy: %d without facts, %d with — want ≥30%% reduction", offCost, onCost)
	}
	if off.Stats.Sem.Fallbacks == 0 {
		t.Error("directory must exercise the MaxModels fallback without facts")
	}
	if on.Stats.Sem.FactHits == 0 {
		t.Error("fact table was never consulted")
	}

	// Control unit: identical statistics in both modes (its pairs are all
	// decided or stack-vs-global, so facts must not perturb anything).
	ctl := len(dir.Units) - 1
	if dir.Units[ctl].Name != "ptr_stack_global" {
		t.Fatalf("control unit moved: %s", dir.Units[ctl].Name)
	}
	o, n := off.Results[ctl].Stats, on.Results[ctl].Stats
	if o.Graph != n.Graph || o.Sem.Forks != n.Sem.Forks || o.Sem.Destroys != n.Sem.Destroys {
		t.Errorf("control unit drifted: off %+v/%+v vs on %+v/%+v", o.Graph, o.Sem, n.Graph, n.Sem)
	}
}

// TestPtrPathologyBudgetMargin documents the forkbomb budget's two-sided
// margin so innocent lifter changes that shift step counts fail loudly
// here instead of flaking in CI: the fact-assisted exploration must finish
// comfortably inside the budget, the factless one must exceed it.
func TestPtrPathologyBudgetMargin(t *testing.T) {
	dir, err := PtrPathology()
	if err != nil {
		t.Fatal(err)
	}
	fb := dir.Units[0]
	if fb.Name != "ptr_forkbomb" {
		t.Fatalf("forkbomb unit moved: %s", fb.Name)
	}
	on := runPtrDir(t, &Directory{Name: "ptr", Units: []*Unit{fb}}, true)
	steps := on.Results[0].Func.Steps
	if steps*5 > forkbombBudget*4 {
		t.Errorf("fact-assisted forkbomb used %d of %d steps — margin too thin, raise the budget",
			steps, forkbombBudget)
	}
	t.Logf("fact-assisted forkbomb: %d steps of %d budget", steps, forkbombBudget)
}
