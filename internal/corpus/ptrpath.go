package corpus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/elf64"
	"repro/internal/image"
	"repro/internal/x86"
)

// PtrPathology builds the ptr_ directory: hand-assembled functions scaling
// up the Section 2 aliasing idiom until the memory model's fork/destroy
// machinery becomes the dominant cost. Every store goes through a distinct
// argument register, so no pair of regions shares a symbolic base: the
// solver cannot decide them, AssumeBaseSeparation does not apply (both are
// non-stack), and each insertion multiplies the model set — exactly the
// pairs the pointer pre-pass turns into separation hypotheses.
//
// The directory doubles as the -ptr CI gate's corpus. Expect records the
// outcome under the default configuration (no pointer facts); under
// PointerFacts the ptr_forkbomb unit's budget suffices and it lifts.
func PtrPathology() (*Directory, error) {
	dir := &Directory{Name: "ptr", Kind: KindLibFunc}
	add := func(name string, budget int, expect core.Status, emit func(a *x86.Asm)) error {
		u, err := asmUnit(name, budget, expect, emit)
		if err != nil {
			return err
		}
		dir.Units = append(dir.Units, u)
		return nil
	}

	// argBases are the pointer arguments of the System V convention plus
	// caller-saved scratch registers: ten distinct provenance bases, none of
	// them the stack pointer.
	argBases := []x86.Reg{
		x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9,
		x86.R10, x86.R11, x86.RAX, x86.RBX,
	}
	store := func(a *x86.Asm, base x86.Reg, disp int64, size int, val int64) {
		a.I(x86.MOV, x86.MemOp(base, x86.RegNone, 1, disp, size), x86.ImmOp(val, 4))
	}

	// ptr_forkbomb: six same-size stores through six distinct bases, then a
	// read-back tail. Without facts every insertion forks per undecided
	// tree and the forked states re-join and re-explore the tail; the step
	// budget is tuned so that blow-up exhausts it (StatusTimeout) while the
	// fact-assisted run — one model per insertion — finishes well inside
	// it. This is the "previously rejected, now liftable" unit.
	err := add("ptr_forkbomb", forkbombBudget, core.StatusTimeout, func(a *x86.Asm) {
		for i, r := range argBases[:6] {
			store(a, r, 0, 8, int64(i+1))
		}
		// Tail: reads through the same bases, each of which forks again in
		// the undecided models, then a little arithmetic.
		for _, r := range argBases[:6] {
			a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(r, x86.RegNone, 1, 0, 8))
		}
		for i := 0; i < 8; i++ {
			a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 1))
		}
		a.I(x86.RET)
	})
	if err != nil {
		return nil, err
	}

	// ptr_destroy_mixed: stores through all ten bases. In the model where
	// every region is separate the forest holds 9 trees by the tenth
	// insertion, whose result set exceeds MaxModels (8) — the silent
	// fallback destroys the model. With facts each insertion yields one
	// model and the fallback never triggers. Lifts either way (the return
	// address clause is stack-based and assumed separate from every store).
	err = add("ptr_destroy_mixed", 0, core.StatusLifted, func(a *x86.Asm) {
		for i, r := range argBases {
			store(a, r, 0, 8, int64(i+1))
		}
		a.I(x86.RET)
	})
	if err != nil {
		return nil, err
	}

	// ptr_alias2: the bare Section 2 idiom — store through rdi, store
	// through rsi, read back through rdi. Two undecided pairs, a handful of
	// forks; lifts in both modes. Under facts the rdi/rsi hypothesis is
	// recorded as an explicit separation assumption.
	err = add("ptr_alias2", 0, core.StatusLifted, func(a *x86.Asm) {
		store(a, x86.RDI, 0, 8, 1)
		store(a, x86.RSI, 0, 8, 2)
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8))
		a.I(x86.RET)
	})
	if err != nil {
		return nil, err
	}

	// ptr_stack_global: only stack-relative and RIP-relative (global
	// constant) accesses. Every pair is decided by the solver or by
	// AssumeBaseSeparation already, so facts change nothing: the control
	// unit whose verdict and statistics must be identical in both modes.
	err = add("ptr_stack_global", 0, core.StatusLifted, func(a *x86.Asm) {
		a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x20, 1))
		store(a, x86.RSP, 0, 8, 1)
		store(a, x86.RSP, 8, 8, 2)
		store(a, x86.RSP, 16, 8, 3)
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RSP, x86.RegNone, 1, 8, 8))
		a.I(x86.ADD, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x20, 1))
		a.I(x86.RET)
	})
	if err != nil {
		return nil, err
	}
	return dir, nil
}

// forkbombBudget is ptr_forkbomb's MaxStates override: above the
// fact-assisted exploration's step count, below the forking one's. The
// corpus test pins both sides of the margin.
const forkbombBudget = 120

// asmUnit assembles one hand-written function into a lift unit.
func asmUnit(name string, budget int, expect core.Status, emit func(a *x86.Asm)) (*Unit, error) {
	a := x86.NewAsm(scenText)
	emit(a)
	code, err := a.Finish()
	if err != nil {
		return nil, fmt.Errorf("corpus %s: %w", name, err)
	}
	eb := elf64.NewExec(scenText)
	eb.AddSection(".text", elf64.SHFExecinstr, scenText, code)
	eb.AddFunc(name, scenText, uint64(len(code)))
	raw, err := eb.Bytes()
	if err != nil {
		return nil, err
	}
	im, err := image.Load(raw)
	if err != nil {
		return nil, err
	}
	return &Unit{
		Name:     name,
		Kind:     KindLibFunc,
		Image:    im,
		FuncAddr: scenText,
		Expect:   expect,
		Budget:   budget,
	}, nil
}
