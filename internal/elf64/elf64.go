// Package elf64 is a from-scratch reader and writer for the subset of the
// ELF64 object format the lifter consumes: executable headers, program
// headers, section headers, string and symbol tables. The paper targets
// stripped COTS x86-64 ELF binaries; external function names are recovered
// from PLT-stub symbols (standing in for .rela.plt, which survives
// stripping). The writer produces small static executables for the
// synthetic corpus.
package elf64

// Constants for the ELF structures we read and write.
const (
	ELFCLASS64  = 2
	ELFDATA2LSB = 1
	EVCurrent   = 1
	ETExec      = 2
	ETDyn       = 3
	EMX8664     = 0x3e

	PTLoad = 1

	PFX = 1
	PFW = 2
	PFR = 4

	SHTNull     = 0
	SHTProgbits = 1
	SHTSymtab   = 2
	SHTStrtab   = 3
	SHTNobits   = 8

	SHFWrite     = 1
	SHFAlloc     = 2
	SHFExecinstr = 4

	STTFunc   = 2
	STTObject = 1
	STBGlobal = 1
)

// Header mirrors Elf64_Ehdr.
type Header struct {
	Type      uint16
	Machine   uint16
	Entry     uint64
	PhOff     uint64
	ShOff     uint64
	Flags     uint32
	EhSize    uint16
	PhEntSize uint16
	PhNum     uint16
	ShEntSize uint16
	ShNum     uint16
	ShStrNdx  uint16
}

// Prog mirrors Elf64_Phdr.
type Prog struct {
	Type   uint32
	Flags  uint32
	Off    uint64
	VAddr  uint64
	PAddr  uint64
	FileSz uint64
	MemSz  uint64
	Align  uint64
}

// Section mirrors Elf64_Shdr plus its resolved name and data.
type Section struct {
	Name      string
	Type      uint32
	Flags     uint64
	Addr      uint64
	Off       uint64
	Size      uint64
	Link      uint32
	Info      uint32
	AddrAlign uint64
	EntSize   uint64
	Data      []byte // nil for SHT_NOBITS
}

// Symbol mirrors Elf64_Sym with its resolved name.
type Symbol struct {
	Name  string
	Info  byte
	Other byte
	Shndx uint16
	Value uint64
	Size  uint64
}

// IsFunc reports whether the symbol is a function symbol.
func (s Symbol) IsFunc() bool { return s.Info&0xf == STTFunc }

// File is a parsed (or to-be-written) ELF binary.
type File struct {
	Header   Header
	Progs    []Prog
	Sections []Section
	Symbols  []Symbol
}

// Section returns the section with the given name, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// SectionAt returns the allocated section containing the virtual address,
// or nil.
func (f *File) SectionAt(addr uint64) *Section {
	for i := range f.Sections {
		s := &f.Sections[i]
		if s.Flags&SHFAlloc != 0 && addr >= s.Addr && addr < s.Addr+s.Size {
			return s
		}
	}
	return nil
}

// ReadAt copies size bytes of initialised data at the virtual address.
// It reports false if the range is not fully inside one section's data
// (e.g. .bss).
func (f *File) ReadAt(addr uint64, size int) ([]byte, bool) {
	s := f.SectionAt(addr)
	if s == nil || s.Data == nil {
		return nil, false
	}
	off := addr - s.Addr
	if off+uint64(size) > uint64(len(s.Data)) {
		return nil, false
	}
	out := make([]byte, size)
	copy(out, s.Data[off:])
	return out, true
}

// FuncSymbols returns the global function symbols (what `nm` reports as
// externally exposed functions for shared objects).
func (f *File) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range f.Symbols {
		if s.IsFunc() && s.Info>>4 == STBGlobal && s.Value != 0 {
			out = append(out, s)
		}
	}
	return out
}

// SymbolAt returns the symbol whose value is exactly addr, if any.
func (f *File) SymbolAt(addr uint64) (Symbol, bool) {
	for _, s := range f.Symbols {
		if s.Value == addr {
			return s, true
		}
	}
	return Symbol{}, false
}
