package elf64

import (
	"bytes"
	"fmt"
)

// Builder assembles a minimal static ELF64 executable (or shared-object-
// shaped image): caller-placed allocated sections, one PT_LOAD segment per
// section, a symbol table and the section name table.
type Builder struct {
	typ      uint16
	entry    uint64
	sections []Section
	symbols  []Symbol
}

// NewExec returns a builder for an ET_EXEC image.
func NewExec(entry uint64) *Builder { return &Builder{typ: ETExec, entry: entry} }

// NewShared returns a builder for an ET_DYN image (a shared object).
func NewShared() *Builder { return &Builder{typ: ETDyn} }

// SetEntry sets the entry point.
func (b *Builder) SetEntry(addr uint64) { b.entry = addr }

// AddSection registers an allocated progbits section at a fixed virtual
// address. Sections must not overlap.
func (b *Builder) AddSection(name string, flags uint64, addr uint64, data []byte) {
	b.sections = append(b.sections, Section{
		Name: name, Type: SHTProgbits, Flags: SHFAlloc | flags,
		Addr: addr, Size: uint64(len(data)), AddrAlign: 16,
		Data: append([]byte(nil), data...),
	})
}

// AddFunc registers a global function symbol.
func (b *Builder) AddFunc(name string, addr, size uint64) {
	b.symbols = append(b.symbols, Symbol{
		Name: name, Info: STBGlobal<<4 | STTFunc, Value: addr, Size: size,
	})
}

// AddObject registers a global data symbol.
func (b *Builder) AddObject(name string, addr, size uint64) {
	b.symbols = append(b.symbols, Symbol{
		Name: name, Info: STBGlobal<<4 | STTObject, Value: addr, Size: size,
	})
}

const pageSize = 0x1000

// Bytes serialises the image.
func (b *Builder) Bytes() ([]byte, error) {
	for i, s := range b.sections {
		for j := i + 1; j < len(b.sections); j++ {
			t := b.sections[j]
			if s.Addr < t.Addr+t.Size && t.Addr < s.Addr+s.Size {
				return nil, fmt.Errorf("elf64: sections %s and %s overlap", s.Name, t.Name)
			}
		}
	}

	// Build auxiliary tables: shstrtab, symtab, strtab.
	secs := append([]Section{{Type: SHTNull}}, b.sections...)

	strtab := []byte{0}
	symtab := make([]byte, 24) // null symbol
	for _, sym := range b.symbols {
		off := uint32(len(strtab))
		strtab = append(strtab, sym.Name...)
		strtab = append(strtab, 0)
		ent := make([]byte, 24)
		le.PutUint32(ent, off)
		ent[4] = sym.Info
		// Link symbols to the section containing them.
		for i, s := range secs {
			if s.Flags&SHFAlloc != 0 && sym.Value >= s.Addr && sym.Value < s.Addr+s.Size {
				le.PutUint16(ent[6:], uint16(i))
				break
			}
		}
		le.PutUint64(ent[8:], sym.Value)
		le.PutUint64(ent[16:], sym.Size)
		symtab = append(symtab, ent...)
	}
	symtabNdx := len(secs)
	strtabNdx := symtabNdx + 1
	secs = append(secs,
		Section{Name: ".symtab", Type: SHTSymtab, Size: uint64(len(symtab)),
			Link: uint32(strtabNdx), Info: 1, AddrAlign: 8, EntSize: 24, Data: symtab},
		Section{Name: ".strtab", Type: SHTStrtab, Size: uint64(len(strtab)),
			AddrAlign: 1, Data: strtab},
	)
	shstr := []byte{0}
	nameOffs := make([]uint32, 0, len(secs)+1)
	for _, s := range secs {
		if s.Name == "" {
			nameOffs = append(nameOffs, 0)
			continue
		}
		nameOffs = append(nameOffs, uint32(len(shstr)))
		shstr = append(shstr, s.Name...)
		shstr = append(shstr, 0)
	}
	shstrNameOff := uint32(len(shstr))
	shstr = append(shstr, ".shstrtab"...)
	shstr = append(shstr, 0)
	nameOffs = append(nameOffs, shstrNameOff)
	shstrNdx := len(secs)
	secs = append(secs, Section{Name: ".shstrtab", Type: SHTStrtab,
		Size: uint64(len(shstr)), AddrAlign: 1, Data: shstr})

	// Layout: ehdr, phdrs, section data, shdrs.
	nLoad := 0
	for _, s := range secs {
		if s.Flags&SHFAlloc != 0 {
			nLoad++
		}
	}
	off := uint64(64 + 56*nLoad)
	offs := make([]uint64, len(secs))
	for i := range secs {
		s := &secs[i]
		if s.Type == SHTNull || len(s.Data) == 0 {
			continue
		}
		if s.Flags&SHFAlloc != 0 {
			// Keep offset congruent to vaddr modulo the page size.
			delta := (s.Addr - off) % pageSize
			off += delta
		} else if off%8 != 0 {
			off += 8 - off%8
		}
		offs[i] = off
		off += uint64(len(s.Data))
	}
	if off%8 != 0 {
		off += 8 - off%8
	}
	shOff := off

	var out bytes.Buffer
	// ELF header.
	eh := make([]byte, 64)
	copy(eh, []byte{0x7f, 'E', 'L', 'F', ELFCLASS64, ELFDATA2LSB, EVCurrent})
	le.PutUint16(eh[16:], b.typ)
	le.PutUint16(eh[18:], EMX8664)
	le.PutUint32(eh[20:], EVCurrent)
	le.PutUint64(eh[24:], b.entry)
	le.PutUint64(eh[32:], 64) // phoff
	le.PutUint64(eh[40:], shOff)
	le.PutUint16(eh[52:], 64)
	le.PutUint16(eh[54:], 56)
	le.PutUint16(eh[56:], uint16(nLoad))
	le.PutUint16(eh[58:], 64)
	le.PutUint16(eh[60:], uint16(len(secs)))
	le.PutUint16(eh[62:], uint16(shstrNdx))
	out.Write(eh)

	// Program headers.
	for i, s := range secs {
		if s.Flags&SHFAlloc == 0 {
			continue
		}
		ph := make([]byte, 56)
		le.PutUint32(ph, PTLoad)
		flags := uint32(PFR)
		if s.Flags&SHFExecinstr != 0 {
			flags |= PFX
		}
		if s.Flags&SHFWrite != 0 {
			flags |= PFW
		}
		le.PutUint32(ph[4:], flags)
		le.PutUint64(ph[8:], offs[i])
		le.PutUint64(ph[16:], s.Addr)
		le.PutUint64(ph[24:], s.Addr)
		le.PutUint64(ph[32:], s.Size)
		le.PutUint64(ph[40:], s.Size)
		le.PutUint64(ph[48:], pageSize)
		out.Write(ph)
	}

	// Section data.
	for i, s := range secs {
		if len(s.Data) == 0 {
			continue
		}
		pad := int(offs[i]) - out.Len()
		if pad < 0 {
			return nil, fmt.Errorf("elf64: layout error for %s", s.Name)
		}
		out.Write(make([]byte, pad))
		out.Write(s.Data)
	}

	// Section headers.
	pad := int(shOff) - out.Len()
	if pad < 0 {
		return nil, fmt.Errorf("elf64: shdr layout error")
	}
	out.Write(make([]byte, pad))
	for i, s := range secs {
		sh := make([]byte, 64)
		le.PutUint32(sh, nameOffs[i])
		le.PutUint32(sh[4:], s.Type)
		le.PutUint64(sh[8:], s.Flags)
		le.PutUint64(sh[16:], s.Addr)
		le.PutUint64(sh[24:], offs[i])
		le.PutUint64(sh[32:], s.Size)
		le.PutUint32(sh[40:], s.Link)
		le.PutUint32(sh[44:], s.Info)
		le.PutUint64(sh[48:], s.AddrAlign)
		le.PutUint64(sh[56:], s.EntSize)
		out.Write(sh)
	}
	return out.Bytes(), nil
}
