package elf64

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// buildSample writes a small executable with .text/.rodata/.data and two
// function symbols, then parses it back.
func buildSample(t *testing.T) *File {
	t.Helper()
	b := NewExec(0x401000)
	text := []byte{0x55, 0x48, 0x89, 0xe5, 0x5d, 0xc3, 0x90, 0x90}
	rodata := []byte{0x10, 0x10, 0x40, 0, 0, 0, 0, 0}
	data := []byte{1, 2, 3, 4}
	b.AddSection(".text", SHFExecinstr, 0x401000, text)
	b.AddSection(".rodata", 0, 0x4a0000, rodata)
	b.AddSection(".data", SHFWrite, 0x4b0000, data)
	b.AddFunc("main", 0x401000, 6)
	b.AddFunc("helper", 0x401006, 2)
	b.AddObject("table", 0x4a0000, 8)
	img, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	f := buildSample(t)
	if f.Header.Entry != 0x401000 {
		t.Fatalf("entry %#x", f.Header.Entry)
	}
	if f.Header.Type != ETExec {
		t.Fatalf("type %d", f.Header.Type)
	}
	text := f.Section(".text")
	if text == nil || text.Addr != 0x401000 || len(text.Data) != 8 {
		t.Fatalf("text: %+v", text)
	}
	if text.Flags&SHFExecinstr == 0 {
		t.Fatal("text must be executable")
	}
	if data := f.Section(".data"); data == nil || data.Flags&SHFWrite == 0 {
		t.Fatal("data must be writable")
	}
	if f.Section(".nope") != nil {
		t.Fatal("missing section must be nil")
	}
}

func TestSymbols(t *testing.T) {
	f := buildSample(t)
	funcs := f.FuncSymbols()
	if len(funcs) != 2 {
		t.Fatalf("func symbols: %+v", funcs)
	}
	byName := map[string]Symbol{}
	for _, s := range funcs {
		byName[s.Name] = s
	}
	if byName["main"].Value != 0x401000 || byName["main"].Size != 6 {
		t.Fatalf("main: %+v", byName["main"])
	}
	if s, ok := f.SymbolAt(0x401006); !ok || s.Name != "helper" {
		t.Fatalf("symbol at: %+v %v", s, ok)
	}
	if _, ok := f.SymbolAt(0xdead); ok {
		t.Fatal("bogus address must have no symbol")
	}
	// The object symbol is not a function symbol.
	for _, s := range funcs {
		if s.Name == "table" {
			t.Fatal("object symbol leaked into FuncSymbols")
		}
	}
}

func TestSectionAtAndReadAt(t *testing.T) {
	f := buildSample(t)
	if s := f.SectionAt(0x401003); s == nil || s.Name != ".text" {
		t.Fatalf("section at text addr: %v", s)
	}
	if s := f.SectionAt(0x500000); s != nil {
		t.Fatalf("unmapped addr: %v", s)
	}
	b, ok := f.ReadAt(0x4a0000, 8)
	if !ok || le.Uint64(b) != 0x401010 {
		t.Fatalf("rodata read: % x %v", b, ok)
	}
	if _, ok := f.ReadAt(0x4a0006, 8); ok {
		t.Fatal("cross-boundary read must fail")
	}
	if _, ok := f.ReadAt(0x999999, 1); ok {
		t.Fatal("unmapped read must fail")
	}
}

func TestProgHeaders(t *testing.T) {
	f := buildSample(t)
	if len(f.Progs) != 3 {
		t.Fatalf("want 3 PT_LOAD, got %d", len(f.Progs))
	}
	for _, p := range f.Progs {
		if p.Type != PTLoad {
			t.Fatalf("segment type %d", p.Type)
		}
		// File offset congruent to vaddr modulo page size (mmap-ability).
		if p.Off%pageSize != p.VAddr%pageSize {
			t.Fatalf("segment misaligned: off=%#x vaddr=%#x", p.Off, p.VAddr)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Fatal("empty image must fail")
	}
	if _, err := Parse(make([]byte, 100)); err == nil {
		t.Fatal("bad magic must fail")
	}
	img := make([]byte, 100)
	copy(img, []byte{0x7f, 'E', 'L', 'F', 1 /* 32-bit */, 1, 1})
	if _, err := Parse(img); err == nil {
		t.Fatal("ELFCLASS32 must fail")
	}
	copy(img, []byte{0x7f, 'E', 'L', 'F', ELFCLASS64, 2 /* big endian */, 1})
	if _, err := Parse(img); err == nil {
		t.Fatal("big-endian must fail")
	}
	// Valid prefix but wrong machine.
	copy(img, []byte{0x7f, 'E', 'L', 'F', ELFCLASS64, ELFDATA2LSB, 1})
	le.PutUint16(img[18:], 0x28) // ARM
	if _, err := Parse(img); err == nil {
		t.Fatal("ARM machine must fail")
	}
	var pe *ParseError
	_, err := Parse(nil)
	if e, ok := err.(*ParseError); ok {
		pe = e
	}
	if pe == nil || pe.Error() == "" {
		t.Fatal("error type")
	}
}

func TestParseErrorSentinels(t *testing.T) {
	// Format-class failures wrap ErrBadMagic.
	for name, img := range map[string][]byte{
		"bad magic": make([]byte, 100),
		"elfclass32": append([]byte{0x7f, 'E', 'L', 'F', 1, 1, 1},
			make([]byte, 93)...),
		"big endian": append([]byte{0x7f, 'E', 'L', 'F', ELFCLASS64, 2, 1},
			make([]byte, 93)...),
	} {
		_, err := Parse(img)
		if !errors.Is(err, ErrBadMagic) {
			t.Errorf("%s: want errors.Is(err, ErrBadMagic), got %v", name, err)
		}
		if errors.Is(err, ErrTruncated) {
			t.Errorf("%s: must not match ErrTruncated", name)
		}
	}
	// Truncation-class failures wrap ErrTruncated.
	_, err := Parse(nil)
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("empty image: want ErrTruncated, got %v", err)
	}
	short := make([]byte, 100)
	copy(short, []byte{0x7f, 'E', 'L', 'F', ELFCLASS64, ELFDATA2LSB, 1})
	le.PutUint16(short[18:], EMX8664)
	le.PutUint64(short[32:], 1<<40) // PhOff far past the image
	le.PutUint16(short[54:], 56)
	le.PutUint16(short[56:], 1)
	_, err = Parse(short)
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("out-of-range program header: want ErrTruncated, got %v", err)
	}
	// Both sentinels still surface the concrete type for errors.As.
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Err == nil {
		t.Errorf("want *ParseError wrapping a sentinel, got %v", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	b := NewExec(0x1000)
	b.AddSection(".a", 0, 0x1000, make([]byte, 0x100))
	b.AddSection(".b", 0, 0x1080, make([]byte, 0x100))
	if _, err := b.Bytes(); err == nil {
		t.Fatal("overlapping sections must be rejected")
	}
}

func TestSharedObject(t *testing.T) {
	b := NewShared()
	b.AddSection(".text", SHFExecinstr, 0x1000, bytes.Repeat([]byte{0x90}, 16))
	b.AddFunc("exported_fn", 0x1000, 16)
	img, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if f.Header.Type != ETDyn {
		t.Fatalf("type %d", f.Header.Type)
	}
	if n := len(f.FuncSymbols()); n != 1 {
		t.Fatalf("exported functions: %d", n)
	}
}

// TestQuickWriterReaderRoundTrip fuzzes section layouts through the writer
// and reader.
func TestQuickWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		b := NewExec(0x401000)
		type secSpec struct {
			name string
			addr uint64
			data []byte
		}
		var specs []secSpec
		addr := uint64(0x401000)
		nSecs := 1 + rng.Intn(4)
		for i := 0; i < nSecs; i++ {
			n := 1 + rng.Intn(300)
			data := make([]byte, n)
			rng.Read(data)
			name := fmt.Sprintf(".s%d", i)
			flags := uint64(0)
			if i == 0 {
				flags = SHFExecinstr
			}
			if rng.Intn(2) == 0 {
				flags |= SHFWrite
			}
			b.AddSection(name, flags, addr, data)
			specs = append(specs, secSpec{name, addr, data})
			addr += uint64(n) + uint64(rng.Intn(0x2000))
		}
		nSyms := rng.Intn(5)
		for i := 0; i < nSyms; i++ {
			b.AddFunc(fmt.Sprintf("fn%d", i), specs[0].addr+uint64(i), 1)
		}
		img, err := b.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		f, err := Parse(img)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, sp := range specs {
			s := f.Section(sp.name)
			if s == nil {
				t.Fatalf("trial %d: section %s lost", trial, sp.name)
			}
			if s.Addr != sp.addr || len(s.Data) != len(sp.data) {
				t.Fatalf("trial %d: section %s shape", trial, sp.name)
			}
			for j := range sp.data {
				if s.Data[j] != sp.data[j] {
					t.Fatalf("trial %d: section %s data at %d", trial, sp.name, j)
				}
			}
		}
		if got := len(f.FuncSymbols()); got != nSyms {
			t.Fatalf("trial %d: symbols %d != %d", trial, got, nSyms)
		}
	}
}
