package elf64

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Sentinel parse failures, for errors.Is dispatch: a truncated image may
// be worth re-fetching, a wrong-format one never is.
var (
	// ErrBadMagic marks an image that is not ELF64/LSB/x86-64 at all.
	ErrBadMagic = errors.New("bad magic")
	// ErrTruncated marks an image whose headers point past its end.
	ErrTruncated = errors.New("truncated image")
)

// ParseError reports a malformed ELF image. It wraps one of the sentinel
// failures above, so both errors.Is(err, ErrTruncated) and
// errors.As(err, *ParseError) work on a Parse error.
type ParseError struct {
	Reason string
	Err    error // the sentinel category, if any
}

func (e *ParseError) Error() string { return "elf64: " + e.Reason }

// Unwrap exposes the sentinel category to errors.Is.
func (e *ParseError) Unwrap() error { return e.Err }

func parseErr(sentinel error, format string, args ...any) error {
	return &ParseError{Reason: fmt.Sprintf(format, args...), Err: sentinel}
}

var le = binary.LittleEndian

// Parse reads an ELF64 little-endian x86-64 image from memory.
func Parse(b []byte) (*File, error) {
	if len(b) < 64 {
		return nil, parseErr(ErrTruncated, "image too small (%d bytes)", len(b))
	}
	if b[0] != 0x7f || b[1] != 'E' || b[2] != 'L' || b[3] != 'F' {
		return nil, parseErr(ErrBadMagic, "bad magic % x", b[:4])
	}
	if b[4] != ELFCLASS64 {
		return nil, parseErr(ErrBadMagic, "not ELFCLASS64")
	}
	if b[5] != ELFDATA2LSB {
		return nil, parseErr(ErrBadMagic, "not little-endian")
	}
	f := &File{}
	h := &f.Header
	h.Type = le.Uint16(b[16:])
	h.Machine = le.Uint16(b[18:])
	if h.Machine != EMX8664 {
		return nil, parseErr(ErrBadMagic, "not x86-64 (machine %#x)", h.Machine)
	}
	h.Entry = le.Uint64(b[24:])
	h.PhOff = le.Uint64(b[32:])
	h.ShOff = le.Uint64(b[40:])
	h.Flags = le.Uint32(b[48:])
	h.EhSize = le.Uint16(b[52:])
	h.PhEntSize = le.Uint16(b[54:])
	h.PhNum = le.Uint16(b[56:])
	h.ShEntSize = le.Uint16(b[58:])
	h.ShNum = le.Uint16(b[60:])
	h.ShStrNdx = le.Uint16(b[62:])

	// Program headers.
	for i := 0; i < int(h.PhNum); i++ {
		off := h.PhOff + uint64(i)*uint64(h.PhEntSize)
		if off+56 > uint64(len(b)) {
			return nil, parseErr(ErrTruncated, "program header %d out of range", i)
		}
		p := b[off:]
		f.Progs = append(f.Progs, Prog{
			Type:   le.Uint32(p),
			Flags:  le.Uint32(p[4:]),
			Off:    le.Uint64(p[8:]),
			VAddr:  le.Uint64(p[16:]),
			PAddr:  le.Uint64(p[24:]),
			FileSz: le.Uint64(p[32:]),
			MemSz:  le.Uint64(p[40:]),
			Align:  le.Uint64(p[48:]),
		})
	}

	// Section headers (names resolved after reading shstrtab).
	type rawShdr struct {
		nameOff uint32
		sec     Section
	}
	var raw []rawShdr
	for i := 0; i < int(h.ShNum); i++ {
		off := h.ShOff + uint64(i)*uint64(h.ShEntSize)
		if off+64 > uint64(len(b)) {
			return nil, parseErr(ErrTruncated, "section header %d out of range", i)
		}
		s := b[off:]
		sec := Section{
			Type:      le.Uint32(s[4:]),
			Flags:     le.Uint64(s[8:]),
			Addr:      le.Uint64(s[16:]),
			Off:       le.Uint64(s[24:]),
			Size:      le.Uint64(s[32:]),
			Link:      le.Uint32(s[40:]),
			Info:      le.Uint32(s[44:]),
			AddrAlign: le.Uint64(s[48:]),
			EntSize:   le.Uint64(s[56:]),
		}
		if sec.Type != SHTNobits && sec.Type != SHTNull && sec.Size > 0 {
			if sec.Off+sec.Size > uint64(len(b)) {
				return nil, parseErr(ErrTruncated, "section %d data out of range", i)
			}
			sec.Data = append([]byte(nil), b[sec.Off:sec.Off+sec.Size]...)
		}
		raw = append(raw, rawShdr{nameOff: le.Uint32(s), sec: sec})
	}

	// Resolve section names.
	var shstr []byte
	if int(h.ShStrNdx) < len(raw) {
		shstr = raw[h.ShStrNdx].sec.Data
	}
	for _, r := range raw {
		r.sec.Name = cstr(shstr, r.nameOff)
		f.Sections = append(f.Sections, r.sec)
	}

	// Symbols.
	symtab := f.Section(".symtab")
	if symtab != nil {
		var strtab []byte
		if int(symtab.Link) < len(f.Sections) {
			strtab = f.Sections[symtab.Link].Data
		}
		n := len(symtab.Data) / 24
		for i := 0; i < n; i++ {
			s := symtab.Data[i*24:]
			f.Symbols = append(f.Symbols, Symbol{
				Name:  cstr(strtab, le.Uint32(s)),
				Info:  s[4],
				Other: s[5],
				Shndx: le.Uint16(s[6:]),
				Value: le.Uint64(s[8:]),
				Size:  le.Uint64(s[16:]),
			})
		}
	}
	return f, nil
}

// cstr reads a NUL-terminated string at the given offset of a string table.
func cstr(tab []byte, off uint32) string {
	if int(off) >= len(tab) {
		return ""
	}
	end := int(off)
	for end < len(tab) && tab[end] != 0 {
		end++
	}
	return string(tab[off:end])
}
