package serve

// The HTTP/JSON wire format shared by the daemon and serveclient. A
// submission is one POST /v1/lift body; the response is an NDJSON stream
// of Lines: task progress while the pipeline runs, one result line per
// requested lift, and a final summary line carrying the canonical
// rendering — the byte string a duplicate submission must reproduce
// exactly from the store.

// BinarySpec names one ELF binary to lift. With Funcs set, each address
// is lifted as a single function (the shared-object workflow); without,
// the binary is lifted whole from its entry point.
type BinarySpec struct {
	Name string `json:"name"`
	// ELF is the raw image bytes (base64 in JSON).
	ELF   []byte   `json:"elf"`
	Funcs []uint64 `json:"funcs,omitempty"`
}

// Submission is the body of POST /v1/lift: a batch of one or more
// binaries from one tenant.
type Submission struct {
	Tenant   string       `json:"tenant,omitempty"`
	Binaries []BinarySpec `json:"binaries"`
}

// Line types of the NDJSON response stream.
const (
	LineTask    = "task"    // progress: a scheduled lift started/finished or hit the store
	LineResult  = "result"  // one final per-task verdict
	LineSummary = "summary" // exactly one, last: run totals + canonical rendering
	LineError   = "error"   // terminal: the submission could not be processed
)

// Line is one NDJSON record of the response stream.
type Line struct {
	Type string `json:"type"`
	// Name is the task the line refers to (task and result lines).
	Name string `json:"name,omitempty"`
	// Event refines task lines: "start", "finish", "store-hit",
	// "store-miss".
	Event string `json:"event,omitempty"`
	// Status is the core.Status string of a finished task or result.
	Status string `json:"status,omitempty"`
	// Detail carries free-form context (store-miss reason, error text).
	Detail string `json:"detail,omitempty"`
	// FromStore marks a result answered from the graph store (no lift).
	FromStore bool `json:"from_store,omitempty"`
	// WallNS is the task/request wall time in nanoseconds.
	WallNS int64 `json:"wall_ns,omitempty"`

	// Summary-line totals.
	Lifted      int `json:"lifted,omitempty"`
	Cancelled   int `json:"cancelled,omitempty"`
	Failed      int `json:"failed,omitempty"`
	StoreHits   int `json:"store_hits,omitempty"`
	StoreMisses int `json:"store_misses,omitempty"`
	// Canonical is the Summary.Canonical rendering: deterministic in the
	// inputs, so a duplicate submission answered from the store matches
	// the original byte for byte.
	Canonical string `json:"canonical,omitempty"`
}

// RejectBody is the JSON body of a 429 (saturated) or 503 (shutting
// down) response; RetryAfterS mirrors the Retry-After header.
type RejectBody struct {
	Error       string `json:"error"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}
