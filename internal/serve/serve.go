// Package serve is the lifting-as-a-service engine behind cmd/hgserved:
// an HTTP/JSON front end over the repro/lift facade. Clients POST ELF
// binaries (single or batch) to /v1/lift; the engine schedules the lifts
// on internal/pipeline and streams progress, per-task verdicts and a
// final canonical summary back as NDJSON.
//
// Admission is bounded on two axes. Globally, at most Parallel
// submissions run pipelines concurrently and at most QueueDepth more may
// wait for a slot; per tenant, at most TenantShare submissions may be in
// the building at once, so one aggressive client cannot monopolise the
// queue. A submission over either bound is rejected immediately with
// 429 and a Retry-After hint derived from the recent request-latency
// EWMA — the queue never grows without bound.
//
// Deduplication is the content-addressed Hoare-graph store: every run
// goes through Options.Store (lookup-before-lift in the pipeline), so a
// duplicate submission is answered entirely from cache — zero lifts, and
// a summary whose Canonical rendering is byte-identical to the original
// run's. The engine owns the store's flush cycle: it switches the store
// to buffered mode and flushes after each submission that added entries,
// plus exactly once at Shutdown. Because the store's flush is a locked
// read-merge-write (see internal/hgstore), other processes — a CLI
// hglift -store run, a second daemon — may share the same container
// concurrently without losing entries.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/hgstore"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/lift"
)

// Options configures an Engine.
type Options struct {
	// Store is the shared Hoare-graph cache (nil disables dedup). The
	// engine switches it to buffered mode and owns its flush cycle.
	Store *hgstore.Store
	// Sinks observe every event of the daemon and its runs (a JSONL
	// trace, a ring); the engine's Metrics registry is always appended.
	Sinks []obs.Sink
	// Metrics is the /metricz registry (nil = a fresh one).
	Metrics *obs.Metrics
	// Parallel bounds concurrent pipeline runs (default 2).
	Parallel int
	// QueueDepth bounds submissions waiting for a run slot (default 8);
	// beyond Parallel+QueueDepth admissions the engine answers 429.
	QueueDepth int
	// TenantShare bounds waiting+running submissions per tenant
	// (default: half the total capacity, at least 1).
	TenantShare int
	// Jobs is the pipeline worker count per run (≤ 0 = all CPUs).
	Jobs int
	// Timeout is the per-lift wall-clock budget (0 = none).
	Timeout time.Duration
	// MaxBody caps the submission body size (default 64 MiB).
	MaxBody int64
	// Faults is the deterministic fault injector threaded into every
	// run (tests only; production leaves it nil).
	Faults *faultinject.Injector
}

// Engine schedules submissions and serves the HTTP API.
type Engine struct {
	opts    Options
	store   *hgstore.Store
	metrics *obs.Metrics
	sinks   []obs.Sink  // request sinks: opts.Sinks + metrics
	tr      *obs.Tracer // daemon-level tracer over sinks
	slots   chan struct{}

	baseCtx context.Context
	cancel  context.CancelFunc

	mu        sync.Mutex
	admitted  int
	perTenant map[string]int
	ewmaNS    float64
	reqSeq    int
	closed    bool
	dirty     bool // the store holds unflushed entries

	wg        sync.WaitGroup
	flushOnce sync.Once
	flushErr  error
}

// New builds an engine. When Options.Store is set it is switched to
// buffered flushes; the engine (and only the engine, within this
// process) persists it — after each submission that added entries and
// once at Shutdown.
func New(opts Options) *Engine {
	if opts.Parallel <= 0 {
		opts.Parallel = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	if opts.TenantShare <= 0 {
		opts.TenantShare = (opts.Parallel + opts.QueueDepth) / 2
		if opts.TenantShare < 1 {
			opts.TenantShare = 1
		}
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 64 << 20
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewMetrics()
	}
	if opts.Store != nil {
		opts.Store.SetAutoFlush(false)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sinks := append(append([]obs.Sink{}, opts.Sinks...), opts.Metrics)
	return &Engine{
		opts:      opts,
		store:     opts.Store,
		metrics:   opts.Metrics,
		sinks:     sinks,
		tr:        obs.NewTracer(sinks...),
		slots:     make(chan struct{}, opts.Parallel),
		baseCtx:   ctx,
		cancel:    cancel,
		perTenant: map[string]int{},
	}
}

// Handler returns the engine's HTTP API:
//
//	POST /v1/lift  — submit a batch, stream NDJSON back
//	GET  /metricz  — the metrics registry, rendered as text
//	GET  /healthz  — "ok" while accepting work, 503 once shutting down
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lift", e.handleLift)
	mux.HandleFunc("GET /metricz", e.handleMetricz)
	mux.HandleFunc("GET /healthz", e.handleHealthz)
	return mux
}

// Shutdown stops the engine: new submissions are rejected with 503,
// in-flight pipeline runs are cancelled (their unfinished lifts report
// StatusCancelled and every open NDJSON stream still ends with its
// result and summary lines), and — after the last run drains — the
// store is flushed exactly once. The context bounds the drain.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	e.flushOnce.Do(func() {
		if e.store == nil {
			return
		}
		e.mu.Lock()
		e.dirty = false
		e.mu.Unlock()
		start := time.Now()
		if e.flushErr = e.store.Flush(); e.flushErr == nil {
			e.tr.StoreFlush(e.store.Len(), time.Since(start))
		}
	})
	return e.flushErr
}

// rejection describes a refused admission.
type rejection struct {
	code   int // http.StatusTooManyRequests or http.StatusServiceUnavailable
	reason string
	after  int // Retry-After seconds (429 only)
}

// admit reserves capacity for one submission; the caller must release.
func (e *Engine) admit(tenant string) (id string, rej *rejection) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return "", &rejection{code: http.StatusServiceUnavailable, reason: "shutting down"}
	}
	capacity := e.opts.Parallel + e.opts.QueueDepth
	if e.admitted >= capacity {
		return "", &rejection{code: http.StatusTooManyRequests, reason: "queue full", after: e.retryAfterLocked()}
	}
	if e.perTenant[tenant] >= e.opts.TenantShare {
		return "", &rejection{code: http.StatusTooManyRequests, reason: "tenant share exhausted", after: e.retryAfterLocked()}
	}
	e.admitted++
	e.perTenant[tenant]++
	e.reqSeq++
	e.wg.Add(1)
	return fmt.Sprintf("r%04d", e.reqSeq), nil
}

// release returns a submission's capacity and folds its latency into the
// EWMA the Retry-After hint is derived from.
func (e *Engine) release(tenant string, wall time.Duration) {
	e.mu.Lock()
	e.admitted--
	if e.perTenant[tenant]--; e.perTenant[tenant] <= 0 {
		delete(e.perTenant, tenant)
	}
	const alpha = 0.3
	if e.ewmaNS == 0 {
		e.ewmaNS = float64(wall)
	} else {
		e.ewmaNS = alpha*float64(wall) + (1-alpha)*e.ewmaNS
	}
	e.mu.Unlock()
	e.wg.Done()
}

// retryAfterLocked estimates when capacity will free up: the latency
// EWMA scaled by how many queued submissions precede a retry, clamped to
// [1s, 60s]. Callers hold e.mu.
func (e *Engine) retryAfterLocked() int {
	waiting := e.admitted - e.opts.Parallel
	if waiting < 0 {
		waiting = 0
	}
	est := e.ewmaNS * float64(waiting+1) / float64(e.opts.Parallel)
	secs := int(math.Ceil(est / float64(time.Second)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (e *Engine) handleHealthz(w http.ResponseWriter, r *http.Request) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

func (e *Engine) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, e.metrics.Dump())
}

// reject writes a 429/503 JSON body (and Retry-After header for 429).
func reject(w http.ResponseWriter, rej *rejection) {
	w.Header().Set("Content-Type", "application/json")
	body := RejectBody{Error: rej.reason}
	if rej.code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprint(rej.after))
		body.RetryAfterS = rej.after
	}
	w.WriteHeader(rej.code)
	json.NewEncoder(w).Encode(body)
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(RejectBody{Error: fmt.Sprintf(format, args...)})
}

// parseSubmission decodes and validates one body into lift requests.
func parseSubmission(body []byte) (sub Submission, reqs []lift.Request, err error) {
	if err := json.Unmarshal(body, &sub); err != nil {
		return sub, nil, fmt.Errorf("bad JSON: %w", err)
	}
	if len(sub.Binaries) == 0 {
		return sub, nil, fmt.Errorf("empty submission: no binaries")
	}
	seen := map[string]bool{}
	for i, spec := range sub.Binaries {
		if spec.Name == "" {
			return sub, nil, fmt.Errorf("binary %d: missing name", i)
		}
		img, err := image.Load(spec.ELF)
		if err != nil {
			return sub, nil, fmt.Errorf("binary %q: %w", spec.Name, err)
		}
		add := func(name string, r lift.Request) error {
			if seen[name] {
				return fmt.Errorf("duplicate task name %q", name)
			}
			seen[name] = true
			reqs = append(reqs, r)
			return nil
		}
		if len(spec.Funcs) == 0 {
			if err := add(spec.Name, lift.Binary(spec.Name, img)); err != nil {
				return sub, nil, err
			}
			continue
		}
		for _, addr := range spec.Funcs {
			name := fmt.Sprintf("%s+%#x", spec.Name, addr)
			if err := add(name, lift.Func(name, img, addr)); err != nil {
				return sub, nil, err
			}
		}
	}
	return sub, reqs, nil
}

// streamSink writes task progress events as NDJSON lines while the
// pipeline runs. Pipeline workers emit concurrently, so every write is
// serialised and flushed line-atomically.
type streamSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	fl  http.Flusher
	err error
}

func newStreamSink(w http.ResponseWriter) *streamSink {
	s := &streamSink{enc: json.NewEncoder(w)}
	s.fl, _ = w.(http.Flusher)
	return s
}

func (s *streamSink) Emit(e obs.Event) {
	var ln Line
	switch e.Kind {
	case obs.KTaskStart:
		ln = Line{Type: LineTask, Name: e.Func, Event: "start"}
	case obs.KTaskFinish:
		ln = Line{Type: LineTask, Name: e.Func, Event: "finish", Status: e.Status, WallNS: int64(e.Wall)}
	case obs.KStore:
		switch e.Status {
		case "hit":
			ln = Line{Type: LineTask, Name: e.Func, Event: "store-hit"}
		case "miss":
			ln = Line{Type: LineTask, Name: e.Func, Event: "store-miss", Detail: e.Detail}
		default:
			return
		}
	default:
		return
	}
	s.write(ln)
}

func (s *streamSink) write(ln Line) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if s.err = s.enc.Encode(ln); s.err == nil && s.fl != nil {
		s.fl.Flush()
	}
}

func (e *Engine) handleLift(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, e.opts.MaxBody+1))
	if err != nil {
		badRequest(w, "reading body: %v", err)
		return
	}
	if int64(len(body)) > e.opts.MaxBody {
		badRequest(w, "body exceeds %d bytes", e.opts.MaxBody)
		return
	}
	sub, reqs, err := parseSubmission(body)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	tenant := sub.Tenant
	if tenant == "" {
		tenant = "anonymous"
	}

	id, rej := e.admit(tenant)
	if rej != nil {
		e.tr.ServeReject(id, tenant, rej.reason)
		reject(w, rej)
		return
	}
	start := time.Now()
	outcome := "ok"
	defer func() {
		wall := time.Since(start)
		e.release(tenant, wall)
		e.tr.ServeDone(id, tenant, outcome, wall)
	}()
	e.mu.Lock()
	depth := e.admitted
	e.mu.Unlock()
	e.tr.ServeAdmit(id, tenant, depth)

	// The run must stop on client disconnect AND on engine shutdown.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	defer context.AfterFunc(e.baseCtx, cancel)()

	// Queue: wait for one of the Parallel run slots.
	select {
	case e.slots <- struct{}{}:
		defer func() { <-e.slots }()
	case <-ctx.Done():
		outcome = "cancelled"
		reject(w, &rejection{code: http.StatusServiceUnavailable, reason: "cancelled while queued"})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	sink := newStreamSink(w)
	tr := obs.NewTracer(append(append([]obs.Sink{}, e.sinks...), sink)...)

	opts := []lift.Option{
		lift.Jobs(e.opts.Jobs),
		lift.Tracer(tr),
	}
	if e.opts.Timeout > 0 {
		opts = append(opts, lift.Timeout(e.opts.Timeout))
	}
	if e.store != nil {
		opts = append(opts, lift.WithStore(e.store))
	}
	if e.opts.Faults != nil {
		opts = append(opts, lift.Faults(e.opts.Faults))
	}
	sum := lift.Run(ctx, reqs, opts...)

	for i := range sum.Results {
		res := &sum.Results[i]
		sink.write(Line{
			Type:      LineResult,
			Name:      res.Name,
			Status:    res.Status.String(),
			FromStore: res.FromStore,
			WallNS:    int64(res.Stats.Wall),
		})
	}
	sink.write(Line{
		Type:        LineSummary,
		Lifted:      sum.Lifted,
		Cancelled:   sum.Cancelled,
		Failed:      sum.Unprovable + sum.Concurrency + sum.Timeouts + sum.Errors + sum.Panics,
		StoreHits:   sum.StoreHits,
		StoreMisses: sum.StoreMisses,
		WallNS:      int64(sum.Wall),
		Canonical:   sum.Canonical(),
	})
	if sum.Cancelled > 0 {
		outcome = "cancelled"
	}

	// Misses mean fresh lifts were stored in memory: persist them, unless
	// the engine is shutting down — then the single Shutdown flush owns it.
	if e.store != nil && sum.StoreMisses > 0 {
		e.mu.Lock()
		e.dirty = true
		closed := e.closed
		e.mu.Unlock()
		if !closed {
			if err := e.flushStore(); err != nil {
				e.tr.StoreError(id, err)
			}
		}
	}
}

// flushStore persists buffered store entries if any are pending.
func (e *Engine) flushStore() error {
	e.mu.Lock()
	dirty := e.dirty
	e.dirty = false
	e.mu.Unlock()
	if !dirty || e.store == nil {
		return nil
	}
	start := time.Now()
	if err := e.store.Flush(); err != nil {
		return err
	}
	e.tr.StoreFlush(e.store.Len(), time.Since(start))
	return nil
}
