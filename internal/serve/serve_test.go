package serve_test

// End-to-end coverage of the daemon engine through a real HTTP server
// and the serveclient package: streaming lifts, store-backed dedup with
// byte-identical canonical summaries, bounded-queue and per-tenant 429
// backpressure with Retry-After, and graceful shutdown mid-batch
// (cancelled in-flight lifts, cleanly closed NDJSON streams, exactly one
// store flush).

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/hgstore"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/serveclient"
)

// scenarioSpecs converts the corpus scenarios into submission specs, one
// function each.
func scenarioSpecs(t *testing.T) []serveclient.Spec {
	t.Helper()
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]serveclient.Spec, 0, len(scenarios))
	for _, s := range scenarios {
		specs = append(specs, serveclient.Spec{Name: s.Name, ELF: s.Raw, Funcs: []uint64{s.FuncAddr}})
	}
	return specs
}

// startEngine wires an engine to a live HTTP server and returns a client.
func startEngine(t *testing.T, opts serve.Options) (*serve.Engine, *serveclient.Client) {
	t.Helper()
	e := serve.New(opts)
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)
	return e, &serveclient.Client{BaseURL: srv.URL, Tenant: "test"}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestServeSingleSubmission(t *testing.T) {
	metrics := obs.NewMetrics()
	e, client := startEngine(t, serve.Options{Metrics: metrics})
	defer e.Shutdown(context.Background())
	specs := scenarioSpecs(t)

	res, err := client.Lift(context.Background(), specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("got %d result lines, want 1", len(res.Results))
	}
	if res.Results[0].Status == "" || res.Results[0].FromStore {
		t.Fatalf("result = %+v, want a fresh (non-store) status", res.Results[0])
	}
	if res.Summary.Canonical == "" {
		t.Fatal("summary line carries no canonical rendering")
	}
	// Progress lines bracket the lift.
	var starts, finishes int
	for _, ln := range res.Tasks {
		switch ln.Event {
		case "start":
			starts++
		case "finish":
			finishes++
		}
	}
	if starts != 1 || finishes != 1 {
		t.Fatalf("progress: %d starts, %d finishes, want 1/1", starts, finishes)
	}
	if got := metrics.CounterSnapshot(); got["serve.admitted"] != 1 || got["serve.done.ok"] != 1 {
		t.Fatalf("serve counters = %v", got)
	}
}

// TestServeDedupByteIdentical is the tentpole acceptance test: the same
// batch submitted twice must be answered entirely from the store on the
// second pass — zero lifts — with a byte-identical canonical summary.
func TestServeDedupByteIdentical(t *testing.T) {
	st, err := hgstore.Open(filepath.Join(t.TempDir(), "serve.hgcs"))
	if err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewMetrics()
	e, client := startEngine(t, serve.Options{Store: st, Metrics: metrics})
	defer e.Shutdown(context.Background())
	specs := scenarioSpecs(t)

	cold, err := client.Lift(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Summary.StoreMisses != len(specs) || cold.Summary.StoreHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/%d",
			cold.Summary.StoreHits, cold.Summary.StoreMisses, len(specs))
	}

	warm, err := client.Lift(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Summary.StoreMisses != 0 || warm.Summary.StoreHits != len(specs) {
		t.Fatalf("warm run performed lifts: hits=%d misses=%d, want %d/0",
			warm.Summary.StoreHits, warm.Summary.StoreMisses, len(specs))
	}
	for _, ln := range warm.Results {
		if !ln.FromStore {
			t.Fatalf("warm result %q not served from store", ln.Name)
		}
	}
	if warm.Summary.Canonical != cold.Summary.Canonical {
		t.Fatalf("canonical summaries diverge:\n--- warm ---\n%s--- cold ---\n%s",
			warm.Summary.Canonical, cold.Summary.Canonical)
	}
	// The cold run's entries were flushed: a fresh handle sees them all.
	reopened, err := hgstore.Open(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != len(specs) {
		t.Fatalf("flushed store holds %d entries, want %d", reopened.Len(), len(specs))
	}
	if got := metrics.CounterSnapshot(); got["store.flushes"] != 1 {
		t.Fatalf("store.flushes = %d, want 1 (cold run only)", got["store.flushes"])
	}
}

// TestServeBackpressure429 saturates a one-slot engine with stalled
// lifts and checks both rejection axes: global queue depth and the
// per-tenant share, each answered with 429 + Retry-After.
func TestServeBackpressure429(t *testing.T) {
	metrics := obs.NewMetrics()
	inj := faultinject.New(faultinject.Config{Seed: 7, StallRate: 1, StallFor: time.Minute})
	e, client := startEngine(t, serve.Options{
		Metrics:     metrics,
		Parallel:    1,
		QueueDepth:  1,
		TenantShare: 2,
		Faults:      inj,
	})
	specs := scenarioSpecs(t)

	// Fill the run slot and the queue with stalled submissions.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Both end cancelled at shutdown; transport errors are fine too.
			client.Lift(context.Background(), specs[0])
		}()
	}
	waitFor(t, "two admitted submissions", func() bool {
		return metrics.CounterSnapshot()["serve.admitted"] == 2
	})

	// Global capacity (Parallel+QueueDepth = 2) is exhausted.
	_, err := client.Lift(context.Background(), specs[0])
	var re *serveclient.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("saturated submit returned %v, want *RetryError", err)
	}
	if re.After < time.Second {
		t.Fatalf("Retry-After = %s, want >= 1s", re.After)
	}

	// On a roomy engine with TenantShare=1, the same tenant's second
	// in-flight submission is rejected by its share, not global capacity.
	otherMetrics := obs.NewMetrics()
	otherEngine, otherClient := startEngine(t, serve.Options{
		Metrics:     otherMetrics,
		Parallel:    4,
		QueueDepth:  4,
		TenantShare: 1,
		Faults:      inj,
	})
	var tw sync.WaitGroup
	tw.Add(1)
	go func() {
		defer tw.Done()
		otherClient.Lift(context.Background(), specs[0])
	}()
	waitFor(t, "one admitted submission", func() bool {
		return otherMetrics.CounterSnapshot()["serve.admitted"] == 1
	})
	_, err = otherClient.Lift(context.Background(), specs[0])
	if !errors.As(err, &re) {
		t.Fatalf("tenant-saturated submit returned %v, want *RetryError", err)
	}
	if !strings.Contains(re.Reason, "tenant") {
		t.Fatalf("rejection reason = %q, want the tenant share", re.Reason)
	}

	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := otherEngine.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	tw.Wait()
	if got := metrics.CounterSnapshot(); got["serve.rejected"] == 0 {
		t.Fatalf("serve.rejected = %d, want > 0", got["serve.rejected"])
	}
}

// TestServeShutdownMidBatch pins the graceful-exit contract: SIGTERM
// (modelled by Engine.Shutdown) mid-batch cancels in-flight lifts to
// StatusCancelled, still closes the NDJSON stream with its result and
// summary lines, flushes the store exactly once, and flips /healthz.
func TestServeShutdownMidBatch(t *testing.T) {
	st, err := hgstore.Open(filepath.Join(t.TempDir(), "serve.hgcs"))
	if err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewMetrics()
	ring := obs.NewRing(256)
	inj := faultinject.New(faultinject.Config{Seed: 9, StallRate: 1, StallFor: time.Minute})
	e, client := startEngine(t, serve.Options{
		Store:    st,
		Metrics:  metrics,
		Sinks:    []obs.Sink{ring},
		Parallel: 1,
		Faults:   inj,
	})
	specs := scenarioSpecs(t)

	type outcome struct {
		res *serveclient.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := client.Lift(context.Background(), specs...)
		done <- outcome{res, err}
	}()
	waitFor(t, "a task to start", func() bool {
		for _, ev := range ring.Events() {
			if ev.Kind == obs.KTaskStart {
				return true
			}
		}
		return false
	})

	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.err != nil {
		t.Fatalf("stream did not close cleanly: %v", out.err)
	}
	if out.res.Summary.Cancelled == 0 {
		t.Fatalf("summary reports no cancellations: %+v", out.res.Summary)
	}
	if len(out.res.Results) != len(specs) {
		t.Fatalf("stream carries %d result lines, want %d", len(out.res.Results), len(specs))
	}
	cancelled := 0
	for _, ln := range out.res.Results {
		if ln.Status == "cancelled" {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no result line reports StatusCancelled")
	}
	if got := metrics.CounterSnapshot(); got["store.flushes"] != 1 {
		t.Fatalf("store.flushes = %d, want exactly 1 (the shutdown flush)", got["store.flushes"])
	}
	if got := metrics.CounterSnapshot(); got["serve.done.cancelled"] != 1 {
		t.Fatalf("serve.done.cancelled = %d, want 1", got["serve.done.cancelled"])
	}

	// The engine is closed: new submissions bounce with 503.
	_, err = client.Lift(context.Background(), specs[0])
	var se *serveclient.StatusError
	if !errors.As(err, &se) || se.Code != 503 {
		t.Fatalf("post-shutdown submit returned %v, want 503", err)
	}
}

func TestServeBadSubmissions(t *testing.T) {
	e, client := startEngine(t, serve.Options{})
	defer e.Shutdown(context.Background())
	specs := scenarioSpecs(t)

	var se *serveclient.StatusError
	if _, err := client.Lift(context.Background()); !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("empty submission returned %v, want 400", err)
	}
	if _, err := client.Lift(context.Background(), serveclient.Spec{Name: "junk", ELF: []byte("not an elf")}); !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("junk ELF returned %v, want 400", err)
	}
	if _, err := client.Lift(context.Background(), specs[0], specs[0]); !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("duplicate names returned %v, want 400", err)
	}
	if !strings.Contains(se.Reason, "duplicate") {
		t.Fatalf("reason = %q, want duplicate-name explanation", se.Reason)
	}
}

func TestServeMetricz(t *testing.T) {
	st, err := hgstore.Open(filepath.Join(t.TempDir(), "serve.hgcs"))
	if err != nil {
		t.Fatal(err)
	}
	e, client := startEngine(t, serve.Options{Store: st})
	defer e.Shutdown(context.Background())
	specs := scenarioSpecs(t)
	if _, err := client.Lift(context.Background(), specs[0]); err != nil {
		t.Fatal(err)
	}
	dump, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serve.admitted", "serve.done.ok", "serve.request.wall", "store.misses"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("/metricz dump missing %q:\n%s", want, dump)
		}
	}
}
