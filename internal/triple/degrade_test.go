package triple

// Tests for graceful degradation in Step 2: cancelled and over-budget
// checks skip theorems explicitly instead of failing them (or aborting),
// and a partial report never claims full verification.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/hoare"
	"repro/internal/sem"
	"repro/internal/x86"
)

// tamperDistinct gives every non-terminal, non-entry vertex a distinct
// bogus rax claim, so at least two theorems of a straight-line function
// must fail (the entry's successor claim and each claim's successor).
func tamperDistinct(t *testing.T, g *hoare.Graph) int {
	t.Helper()
	n := 0
	for _, v := range g.Vertices {
		if v.State == nil || v.Addr == textBase || v.ID == hoare.ExitID || v.ID == hoare.HaltID {
			continue
		}
		v.State.Pred.SetReg(x86.RAX, expr.Word(100+v.Addr-textBase))
		n++
	}
	if n < 2 {
		t.Fatalf("only %d vertices to tamper with", n)
	}
	return n
}

// TestErrorBudgetSkips exhausts a budget of one failure: the checker must
// record exactly one failed theorem, skip the rest, and refuse AllProven.
func TestErrorBudgetSkips(t *testing.T) {
	im, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(5, 4))
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.ImmOp(3, 4))
		a.I(x86.RET)
	}, nil)
	if r.Status != core.StatusLifted {
		t.Fatalf("lift: %s %v", r.Status, r.Reasons)
	}
	tamperDistinct(t, r.Graph)

	full := Check(context.Background(), im, r.Graph, sem.DefaultConfig(), Workers(1))
	if full.Failed < 2 {
		t.Fatalf("tampering produced only %d failures, want ≥ 2", full.Failed)
	}
	if full.Skipped != 0 {
		t.Fatalf("unbudgeted check skipped %d theorems", full.Skipped)
	}

	budgeted := Check(context.Background(), im, r.Graph, sem.DefaultConfig(),
		Workers(1), ErrorBudget(1))
	if budgeted.Failed != 1 {
		t.Fatalf("budgeted check failed %d theorems, want exactly 1", budgeted.Failed)
	}
	if budgeted.Skipped == 0 {
		t.Fatal("budgeted check skipped nothing after exhausting the budget")
	}
	if budgeted.AllProven() {
		t.Fatal("partial check claims AllProven")
	}
	if got, want := len(budgeted.Theorems), len(full.Theorems); got != want {
		t.Fatalf("budgeted report has %d theorems, want %d (one per vertex)", got, want)
	}
}

// TestCancelledChecksSkip runs Check under an already-cancelled context:
// every theorem must report Skipped — not Failed — and the report must
// still refuse AllProven.
func TestCancelledChecksSkip(t *testing.T) {
	im, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(5, 4))
		a.I(x86.RET)
	}, nil)
	if r.Status != core.StatusLifted {
		t.Fatalf("lift: %s %v", r.Status, r.Reasons)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := Check(ctx, im, r.Graph, sem.DefaultConfig(), Workers(2))
	if rep.Skipped != len(rep.Theorems) || rep.Failed != 0 {
		t.Fatalf("cancelled check: skipped=%d failed=%d of %d, want all skipped",
			rep.Skipped, rep.Failed, len(rep.Theorems))
	}
	if rep.AllProven() {
		t.Fatal("cancelled check claims AllProven")
	}
	for _, th := range rep.Theorems {
		if th.Verdict != Skipped || th.Reason == "" {
			t.Fatalf("vertex %s: verdict %s reason %q", th.Vertex, th.Verdict, th.Reason)
		}
	}
}

// TestSkippedVerdictString pins the new verdict's rendering.
func TestSkippedVerdictString(t *testing.T) {
	if Skipped.String() != "skipped" {
		t.Fatalf("Skipped.String() = %q", Skipped.String())
	}
}
