package triple

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/elf64"
	"repro/internal/expr"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/memmodel"
	"repro/internal/sem"
	"repro/internal/solver"
	"repro/internal/x86"
)

const textBase = 0x401000

func buildAndLift(t *testing.T, build func(a *x86.Asm), rodata []byte) (*image.Image, *core.FuncResult) {
	t.Helper()
	a := x86.NewAsm(textBase)
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	eb := elf64.NewExec(textBase)
	eb.AddSection(".text", elf64.SHFExecinstr, textBase, code)
	if rodata != nil {
		eb.AddSection(".rodata", 0, 0x4a0000, rodata)
	}
	img, err := eb.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	im, err := image.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	l := core.New(im, core.DefaultConfig())
	return im, l.LiftFuncCtx(context.Background(), textBase, "f")
}

func TestCheckStraightLine(t *testing.T) {
	im, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.PUSH, x86.RegOp(x86.RBP, 8))
		a.I(x86.MOV, x86.RegOp(x86.RBP, 8), x86.RegOp(x86.RSP, 8))
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RDI, 8))
		a.I(x86.POP, x86.RegOp(x86.RBP, 8))
		a.I(x86.RET)
	}, nil)
	if r.Status != core.StatusLifted {
		t.Fatalf("lift: %s %v", r.Status, r.Reasons)
	}
	rep := Check(context.Background(), im, r.Graph, sem.DefaultConfig(), Workers(2))
	if !rep.AllProven() {
		t.Fatalf("failed theorems:\n%s", dumpFailures(rep))
	}
	if rep.Proven < 5 {
		t.Fatalf("proven: %d", rep.Proven)
	}
}

func TestCheckBranchesAndLoops(t *testing.T) {
	im, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
		a.Label("loop")
		a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 1))
		a.I(x86.CMP, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RDI, 8))
		a.Jcc(x86.CondB, "loop")
		a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.ImmOp(5, 1))
		a.Jcc(x86.CondE, "five")
		a.I(x86.RET)
		a.Label("five")
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(55, 4))
		a.I(x86.RET)
	}, nil)
	if r.Status != core.StatusLifted {
		t.Fatalf("lift: %s %v", r.Status, r.Reasons)
	}
	rep := Check(context.Background(), im, r.Graph, sem.DefaultConfig(), Workers(4))
	if !rep.AllProven() {
		t.Fatalf("failed theorems:\n%s", dumpFailures(rep))
	}
}

func TestCheckJumpTable(t *testing.T) {
	table := make([]byte, 16)
	im, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.ImmOp(1, 1))
		a.Jcc(x86.CondA, "dflt")
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RegNone, x86.RDI, 8, 0x4a0000, 8))
		a.I(x86.JMP, x86.RegOp(x86.RAX, 8))
		a.Label("c0")
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(0, 4))
		a.Jmp("end")
		a.Label("c1")
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(1, 4))
		a.Jmp("end")
		a.Label("dflt")
		a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
		a.Label("end")
		a.I(x86.RET)
		// Patch the table now that the labels exist.
		for i, lbl := range []string{"c0", "c1"} {
			addr, _ := a.LabelAddr(lbl)
			for j := 0; j < 8; j++ {
				table[8*i+j] = byte(addr >> (8 * j))
			}
		}
	}, table)
	if r.Status != core.StatusLifted {
		t.Fatalf("lift: %s %v", r.Status, r.Reasons)
	}
	rep := Check(context.Background(), im, r.Graph, sem.DefaultConfig(), Workers(2))
	if !rep.AllProven() {
		t.Fatalf("failed theorems:\n%s", dumpFailures(rep))
	}
}

func TestCheckDetectsTampering(t *testing.T) {
	im, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(5, 4))
		a.I(x86.RET)
	}, nil)
	if r.Status != core.StatusLifted {
		t.Fatal(r.Status)
	}
	// Tamper with an invariant: claim rax = 6 at the ret vertex.
	tampered := false
	for _, v := range r.Graph.Vertices {
		if v.State != nil && v.Addr != textBase && v.ID != hoare.ExitID && v.ID != hoare.HaltID {
			v.State.Pred.SetReg(x86.RAX, expr.Word(6))
			tampered = true
		}
	}
	if !tampered {
		t.Fatal("no vertex to tamper with")
	}
	rep := Check(context.Background(), im, r.Graph, sem.DefaultConfig(), Workers(1))
	if rep.AllProven() {
		t.Fatal("tampered invariant must fail verification")
	}
}

func TestCheckAnnotatedVertexAssumed(t *testing.T) {
	im, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.JMP, x86.RegOp(x86.RDI, 8)) // unresolvable
	}, nil)
	if r.Status != core.StatusLifted {
		t.Fatalf("lift: %s", r.Status)
	}
	rep := Check(context.Background(), im, r.Graph, sem.DefaultConfig(), Workers(1))
	if rep.Failed != 0 {
		t.Fatalf("annotated vertex must be assumed, not failed:\n%s", dumpFailures(rep))
	}
	if rep.Assumed == 0 {
		t.Fatal("expected an assumed theorem")
	}
}

func TestExportTheory(t *testing.T) {
	_, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 4))
		a.I(x86.RET)
	}, nil)
	thy := ExportTheory(r.Graph, "f_thy")
	for _, want := range []string{
		"theory f_thy",
		"definition P_401000",
		"lemma hoare_401000",
		"by htriple",
		"RSP s' = RSP\\<^sub>0 + 8",
		"end",
	} {
		if !strings.Contains(thy, want) {
			t.Errorf("theory missing %q:\n%s", want, thy)
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	if Proven.String() != "proven" || Assumed.String() != "assumed" || Failed.String() != "FAILED" {
		t.Fatal("verdict names")
	}
}

func dumpFailures(rep *Report) string {
	var b strings.Builder
	for _, th := range rep.Sorted() {
		if th.Verdict == Failed {
			b.WriteString(string(th.Vertex) + ": " + th.Reason + "\n")
		}
	}
	return b.String()
}

var _ = hoare.ExitID

// TestSerialisedGraphVerifies marshals a lifted graph to the .hg format,
// loads it back, and re-verifies every theorem on the loaded copy — the
// full export/import/validate pipeline.
func TestSerialisedGraphVerifies(t *testing.T) {
	table := make([]byte, 16)
	im, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.ImmOp(1, 1))
		a.Jcc(x86.CondA, "dflt")
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RegNone, x86.RDI, 8, 0x4a0000, 8))
		a.I(x86.JMP, x86.RegOp(x86.RAX, 8))
		a.Label("c0")
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(1, 4))
		a.Jmp("end")
		a.Label("c1")
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(2, 4))
		a.Jmp("end")
		a.Label("dflt")
		a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
		a.Label("end")
		a.I(x86.RET)
		for i, lbl := range []string{"c0", "c1"} {
			addr, _ := a.LabelAddr(lbl)
			for j := 0; j < 8; j++ {
				table[8*i+j] = byte(addr >> (8 * j))
			}
		}
	}, table)
	if r.Status != core.StatusLifted {
		t.Fatalf("lift: %s", r.Status)
	}

	data := hoare.Marshal(r.Graph)
	loaded, err := hoare.Load(im, data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FuncAddr != r.Graph.FuncAddr || loaded.RetSym != r.Graph.RetSym {
		t.Fatal("header mismatch")
	}
	if len(loaded.Vertices) != len(r.Graph.Vertices) || len(loaded.Edges) != len(r.Graph.Edges) {
		t.Fatalf("shape mismatch: %d/%d vertices, %d/%d edges",
			len(loaded.Vertices), len(r.Graph.Vertices), len(loaded.Edges), len(r.Graph.Edges))
	}
	// Invariants round-trip exactly (per-vertex predicate keys match).
	for id, v := range r.Graph.Vertices {
		lv := loaded.Vertices[id]
		if lv == nil {
			t.Fatalf("vertex %s lost", id)
		}
		if (v.State == nil) != (lv.State == nil) {
			t.Fatalf("vertex %s state presence mismatch", id)
		}
		if v.State != nil && v.State.Pred.Key() != lv.State.Pred.Key() {
			t.Fatalf("vertex %s predicate mismatch:\n%s\nvs\n%s",
				id, v.State.Pred.Key(), lv.State.Pred.Key())
		}
		if v.State != nil && v.State.Mem.Key() != lv.State.Mem.Key() {
			t.Fatalf("vertex %s model mismatch: %s vs %s", id, v.State.Mem, lv.State.Mem)
		}
	}
	// The loaded graph verifies.
	rep := Check(context.Background(), im, loaded, sem.DefaultConfig(), Workers(2))
	if !rep.AllProven() {
		t.Fatalf("loaded graph failed verification:\n%s", dumpFailures(rep))
	}
	// Marshalling the loaded graph is a fixed point.
	if string(hoare.Marshal(loaded)) != string(data) {
		t.Fatal("marshal is not idempotent across a load")
	}
}

func TestCheckParallelConsistency(t *testing.T) {
	// The parallel driver gives the same verdicts regardless of worker
	// count (the theorems are mutually independent).
	im, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.ImmOp(3, 1))
		a.Jcc(x86.CondA, "hi")
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(1, 4))
		a.I(x86.RET)
		a.Label("hi")
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(2, 4))
		a.I(x86.RET)
	}, nil)
	if r.Status != core.StatusLifted {
		t.Fatal(r.Status)
	}
	var reports []*Report
	for _, workers := range []int{0, 1, 4, 16} {
		reports = append(reports, Check(context.Background(), im, r.Graph, sem.DefaultConfig(), Workers(workers)))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Proven != reports[0].Proven ||
			reports[i].Assumed != reports[0].Assumed ||
			reports[i].Failed != reports[0].Failed {
			t.Fatalf("worker-count dependence: %+v vs %+v", reports[i], reports[0])
		}
	}
}

func TestTamperedMemoryModelFails(t *testing.T) {
	im, r := buildAndLift(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, -16, 8), x86.RegOp(x86.RDI, 8))
		a.I(x86.RET)
	}, nil)
	if r.Status != core.StatusLifted {
		t.Fatal(r.Status)
	}
	// Claim a bogus aliasing relation in some vertex's model: merge the
	// stack slot and the return-address slot into one node.
	tampered := false
	for _, v := range r.Graph.Vertices {
		if v.State == nil || len(v.State.Mem) < 2 {
			continue
		}
		merged := &memmodel.Tree{
			Regions: append(append([]solver.Region{}, v.State.Mem[0].Regions...),
				v.State.Mem[1].Regions...),
		}
		v.State.Mem = memmodel.Forest{merged}
		tampered = true
		break
	}
	if !tampered {
		t.Skip("no vertex with two trees")
	}
	rep := Check(context.Background(), im, r.Graph, sem.DefaultConfig(), Workers(1))
	if rep.AllProven() {
		t.Fatal("bogus aliasing claim must fail verification")
	}
}
