// Package triple implements Step 2 of the paper: independent verification
// of the extracted Hoare graph. Each vertex yields one theorem — the
// invariant of the vertex, as precondition of the instruction at its
// address, establishes the disjunction of its successors' invariants. The
// theorems are mutually independent and are checked in parallel, each by
// symbolically executing the instruction's formal semantics on the
// precondition and proving entailment of a successor invariant (the
// paper's tailored Isabelle/HOL proof scripts; here a from-scratch checker
// whose only shared trust base with Step 1 is the instruction semantics,
// which are themselves validated against a concrete emulator).
package triple

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/pred"
	"repro/internal/sem"
	"repro/internal/x86"
)

// Verdict classifies one theorem.
type Verdict uint8

// The theorem outcomes.
const (
	Proven  Verdict = iota // all outcomes entail some successor invariant
	Assumed                // the vertex carries an annotation: nothing to prove
	Failed
	// Skipped marks a theorem that was never attempted: the check's
	// context was cancelled, or the error budget was already exhausted.
	// A skipped theorem blocks AllProven just like a failed one — the
	// report is explicit about being partial, never silently optimistic.
	Skipped
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Proven:
		return "proven"
	case Assumed:
		return "assumed"
	case Skipped:
		return "skipped"
	default:
		return "FAILED"
	}
}

// Theorem is the checking result for one vertex.
type Theorem struct {
	Vertex  hoare.VertexID
	Addr    uint64
	Verdict Verdict
	Reason  string
}

// Report summarises checking one graph.
type Report struct {
	Func     string
	Theorems []Theorem
	Proven   int
	Assumed  int
	Failed   int
	Skipped  int
}

// AllProven reports whether every theorem was proven or explicitly
// assumed. Skipped theorems (cancellation, exhausted error budget) count
// against it: a partial check never claims full verification.
func (r *Report) AllProven() bool { return r.Failed == 0 && r.Skipped == 0 }

// CheckOption tunes a Check run. The zero configuration checks serially
// with no observation.
type CheckOption func(*checkCfg)

type checkCfg struct {
	workers int
	tracer  *obs.Tracer
	budget  int
}

// Workers fans the per-vertex theorems across n pool workers (< 1 = 1).
func Workers(n int) CheckOption {
	return func(c *checkCfg) { c.workers = n }
}

// WithTracer emits one obs.KTheorem event per checked vertex.
func WithTracer(t *obs.Tracer) CheckOption {
	return func(c *checkCfg) { c.tracer = t }
}

// ErrorBudget keeps checking past failing theorems until n have failed,
// then skips the rest (≤ 0 = unlimited, the default). The theorems are
// mutually independent, so continuing past a failure is sound: each
// verdict stands on its own, and the report remains explicit about what
// was skipped.
func ErrorBudget(n int) CheckOption {
	return func(c *checkCfg) { c.budget = n }
}

// Check re-verifies every vertex of the graph, independently and in
// parallel across the configured number of workers (the theorems are
// mutually independent, so the pipeline's worker pool fans them out
// directly). Cancelling the context stops issuing work; vertices not
// checked in time report Skipped with a cancellation reason, so a
// cancelled report never claims AllProven. An ErrorBudget likewise
// degrades gracefully: once the budget is exhausted the remaining
// theorems report Skipped instead of being attempted.
func Check(ctx context.Context, img *image.Image, g *hoare.Graph, cfg sem.Config, opts ...CheckOption) *Report {
	cc := checkCfg{workers: 1}
	for _, o := range opts {
		o(&cc)
	}
	if cc.workers < 1 {
		cc.workers = 1
	}
	vertices := g.SortedVertices()
	rep := &Report{Func: g.FuncName, Theorems: make([]Theorem, len(vertices))}
	var failures atomic.Int64
	pipeline.ForEach(cc.workers, len(vertices), func(i int) {
		v := vertices[i]
		switch {
		case ctx.Err() != nil:
			rep.Theorems[i] = Theorem{Vertex: v.ID, Addr: v.Addr, Verdict: Skipped,
				Reason: fmt.Sprintf("not checked: %v", ctx.Err())}
		case cc.budget > 0 && failures.Load() >= int64(cc.budget):
			rep.Theorems[i] = Theorem{Vertex: v.ID, Addr: v.Addr, Verdict: Skipped,
				Reason: fmt.Sprintf("not checked: error budget (%d) exhausted", cc.budget)}
		default:
			rep.Theorems[i] = checkVertex(img, g, cfg, v)
			if rep.Theorems[i].Verdict == Failed {
				failures.Add(1)
			}
		}
		th := &rep.Theorems[i]
		cc.tracer.Theorem(g.FuncName, string(th.Vertex), th.Addr, th.Verdict.String())
	})
	for _, th := range rep.Theorems {
		switch th.Verdict {
		case Proven:
			rep.Proven++
		case Assumed:
			rep.Assumed++
		case Skipped:
			rep.Skipped++
		default:
			rep.Failed++
		}
	}
	return rep
}

// annotatedAt reports whether the instruction at addr carries an
// unsoundness annotation.
func annotatedAt(g *hoare.Graph, addr uint64) bool {
	for _, a := range g.Annotations {
		if a.Addr == addr {
			return true
		}
	}
	return false
}

// checkVertex proves the one-step-inductive theorem of a single vertex:
// {inv(v)} inst(v) {∨ inv(succ)}. Every shared artefact is recomputed: the
// instruction is re-fetched from the binary's bytes and re-executed by a
// fresh machine.
func checkVertex(img *image.Image, g *hoare.Graph, cfg sem.Config, v *hoare.Vertex) Theorem {
	th := Theorem{Vertex: v.ID, Addr: v.Addr}
	if v.ID == hoare.ExitID || v.ID == hoare.HaltID {
		th.Verdict = Proven
		th.Reason = "terminal vertex"
		return th
	}
	inst, err := img.Fetch(v.Addr)
	if err != nil {
		th.Verdict = Failed
		th.Reason = fmt.Sprintf("re-fetch: %v", err)
		return th
	}

	// Successor invariants, grouped by vertex.
	succs := map[hoare.VertexID]*hoare.Vertex{}
	for _, e := range g.Edges {
		if e.From == v.ID {
			succs[e.To] = g.Vertices[e.To]
		}
	}

	m := sem.NewMachine(img, cfg)
	outs, err := m.Step(v.State, inst)
	if err != nil {
		th.Verdict = Failed
		th.Reason = fmt.Sprintf("re-execution: %v", err)
		return th
	}

	for _, o := range outs {
		ok, reason := outcomeEntailsSuccessor(g, m, inst.Addr, inst.Next(), o, succs)
		if !ok {
			if annotatedAt(g, v.Addr) {
				th.Verdict = Assumed
				th.Reason = "annotated: " + reason
				return th
			}
			th.Verdict = Failed
			th.Reason = reason
			return th
		}
	}
	th.Verdict = Proven
	return th
}

// outcomeEntailsSuccessor finds a successor vertex whose invariant is
// entailed by the outcome's post-state.
func outcomeEntailsSuccessor(g *hoare.Graph, m *sem.Machine, addr, next uint64, o sem.Outcome, succs map[hoare.VertexID]*hoare.Vertex) (bool, string) {
	switch o.Kind {
	case sem.KHalt:
		if _, ok := succs[hoare.HaltID]; ok {
			return true, ""
		}
		return false, "halt outcome without halt successor"
	case sem.KRet:
		chk := sem.CheckReturn(o, g.RetSym)
		if !chk.OK {
			return false, fmt.Sprintf("return check: %v", chk.Reasons)
		}
		if _, ok := succs[hoare.ExitID]; ok {
			return true, ""
		}
		return false, "ret outcome without exit successor"
	case sem.KCall:
		// A call edge's postcondition is the ABI-cleaned continuation —
		// or a terminal edge when the callee never returns.
		post := m.CleanAfterCall(o.State, addr)
		for id, s := range succs {
			if id == hoare.HaltID {
				return true, "" // callee proven non-returning in Step 1
			}
			if s != nil && s.Addr == next && entails(post, s.State, id) {
				return true, ""
			}
		}
		return false, "call continuation entails no successor invariant"
	default: // KFall, KJump
		tgt, ok := o.Resolved()
		if !ok {
			return false, fmt.Sprintf("unbounded control flow: rip = %v", o.Target)
		}
		var why string
		for id, s := range succs {
			if s == nil || id == hoare.ExitID || id == hoare.HaltID {
				continue
			}
			if s.Addr == tgt {
				ok, reason := entailsWhy(o.State, s.State)
				if ok {
					return true, ""
				}
				why = reason
			}
		}
		return false, fmt.Sprintf("no successor invariant at %#x is entailed: %s", tgt, why)
	}
}

// entails reports post ⊨ inv: every clause of the invariant holds in every
// concrete state satisfying the post-state. Equality clauses on join
// variables are interval constraints ("∃v ∈ [lo,hi]. part = v"), so they
// are discharged by interval inclusion; join variables shared between
// several parts additionally require the post values to coincide. Memory
// model entailment is relation-set inclusion (the invariant's model is the
// weaker one: it encodes fewer relations).
func entails(post, inv *sem.State, vid hoare.VertexID) bool {
	_ = vid
	ok, _ := entailsWhy(post, inv)
	return ok
}

// entailsWhy is entails with a failure explanation.
func entailsWhy(post, inv *sem.State) (bool, string) {
	if inv == nil {
		return false, "no invariant"
	}
	if ok, why := entailsPred(post.Pred, inv.Pred); !ok {
		return false, why
	}
	// Every relation asserted by the invariant's memory model must be
	// encoded by the post-state's model — or hold geometrically in every
	// state (same-base constant offsets).
	postRels := post.Mem.Relations()
	for _, rel := range inv.Mem.RelationsDetailed() {
		if postRels[rel.String()] {
			continue
		}
		if memmodel.GeometricallyNecessary(rel) {
			continue
		}
		return false, fmt.Sprintf("memory relation %q not established", rel.String())
	}
	return true, ""
}

// valueEntails checks one equality clause: the invariant asserts
// part = want; the post-state provides part = got.
func valueEntails(post, inv *pred.Pred, got, want *expr.Expr) bool {
	if got == nil {
		return false
	}
	if got.Equal(want) {
		return true
	}
	if want.Kind() != expr.KindVar {
		return false
	}
	// An equality with a variable is an interval constraint (or no
	// constraint at all if the variable is unbounded).
	wr, ok := inv.RangeOf(want)
	if !ok || (wr.Lo == 0 && wr.Hi == ^uint64(0)) {
		return true
	}
	gr, ok := post.RangeOf(got)
	return ok && gr.Lo >= wr.Lo && gr.Hi <= wr.Hi
}

// entailsPred checks the predicate clauses.
func entailsPred(post, inv *pred.Pred) (bool, string) {
	if post.IsBot() {
		return true, ""
	}
	if inv.IsBot() {
		return false, "invariant is unsatisfiable"
	}
	// Shared join variables encode correlations between parts: collect
	// the post values assigned to each invariant variable and require
	// them to coincide.
	varUses := map[*expr.Expr][]*expr.Expr{}
	record := func(got, want *expr.Expr) {
		if want != nil && want.Kind() == expr.KindVar && got != nil {
			varUses[want] = append(varUses[want], got)
		}
	}

	for _, r := range x86.GPRs {
		want := inv.Reg(r)
		if want == nil {
			continue
		}
		got := post.Reg(r)
		if !valueEntails(post, inv, got, want) {
			return false, fmt.Sprintf("register %s: post %v does not entail %v", r, got, want)
		}
		record(got, want)
	}
	ok := true
	why := ""
	inv.MemEntries(func(e pred.MemEntry) {
		if !ok {
			return
		}
		got, found := post.ReadMem(e.Addr, e.Size)
		if !found || !valueEntails(post, inv, got, e.Val) {
			ok = false
			why = fmt.Sprintf("memory [%s,%d]: post %v does not entail %v", e.Addr, e.Size, got, e.Val)
			return
		}
		record(got, e.Val)
	})
	if !ok {
		return false, why
	}
	for _, uses := range varUses {
		for i := 1; i < len(uses); i++ {
			if !uses[i].Equal(uses[0]) {
				return false, "correlated join variable with diverging post values"
			}
		}
	}
	// Flags.
	for f := x86.Flag(0); f < x86.NumFlags; f++ {
		want := inv.Flag(f)
		if want == nil {
			continue
		}
		got := post.Flag(f)
		if got == nil || !got.Equal(want) {
			return false, fmt.Sprintf("flag %s: post %v does not entail %v", f, got, want)
		}
	}
	if !cmpEntails(post, inv) {
		return false, "flag comparison descriptor not entailed"
	}
	return true, ""
}

// cmpEntails checks the flag-defining comparison descriptor: absent in the
// invariant is trivially implied; present, it must match the post's
// descriptor directly or through the register both express.
func cmpEntails(post, inv *pred.Pred) bool {
	ic := inv.LastCmp()
	if ic == nil {
		return true
	}
	pc := post.LastCmp()
	if pc == nil || pc.Kind != ic.Kind || pc.Size != ic.Size || !pc.Rhs.Equal(ic.Rhs) {
		return false
	}
	if pc.Lhs.Equal(ic.Lhs) {
		return true
	}
	for _, r := range x86.GPRs {
		iv, pv := inv.Reg(r), post.Reg(r)
		if iv == nil || pv == nil {
			continue
		}
		if ic.Lhs.Equal(expr.ZExt(iv, ic.Size)) && pc.Lhs.Equal(expr.ZExt(pv, pc.Size)) {
			return true
		}
	}
	return false
}

// Sorted returns the theorems ordered by address.
func (r *Report) Sorted() []Theorem {
	out := append([]Theorem(nil), r.Theorems...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Vertex < out[j].Vertex
	})
	return out
}
