package triple

import (
	"fmt"
	"strings"

	"repro/internal/hoare"
)

// ExportTheory renders the Hoare graph as an Isabelle/HOL-style theory
// file: one definition per vertex invariant and one lemma per vertex
// stating that the invariant, as a precondition of the instruction at that
// address, establishes the disjunction of its successors' invariants. Each
// lemma is discharged by the htriple proof method — the tailored symbolic
// execution script of the paper. The text is what the paper's Step 2
// exports; this repository's independent checker (Check) plays the
// role of the prover.
func ExportTheory(g *hoare.Graph, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "theory %s\n  imports X86_Semantics.StateCleanUp\nbegin\n\n", sanitizeThy(name))
	fmt.Fprintf(&b, "(* Hoare graph of %s @ %#x; return symbol %s *)\n\n", g.FuncName, g.FuncAddr, g.RetSym)

	vertices := g.SortedVertices()
	for _, v := range vertices {
		if v.State == nil {
			continue
		}
		fmt.Fprintf(&b, "definition P_%s :: \"state \\<Rightarrow> bool\" where\n", sanitizeThy(string(v.ID)))
		clauses := v.State.Pred.Clauses()
		if len(clauses) == 0 {
			fmt.Fprintf(&b, "  \"P_%s s \\<equiv> True\"\n\n", sanitizeThy(string(v.ID)))
			continue
		}
		fmt.Fprintf(&b, "  \"P_%s s \\<equiv>\n", sanitizeThy(string(v.ID)))
		for i, c := range clauses {
			sep := " \\<and>"
			if i == len(clauses)-1 {
				sep = "\""
			}
			fmt.Fprintf(&b, "     (%s)%s\n", c, sep)
		}
		fmt.Fprintf(&b, "  (* memory model: %s *)\n\n", v.State.Mem)
	}

	for _, v := range vertices {
		if v.State == nil {
			continue
		}
		inst, ok := g.Instrs[v.Addr]
		if !ok {
			continue
		}
		var posts []string
		for _, to := range g.Successors(v.ID) {
			switch to {
			case hoare.ExitID:
				posts = append(posts, fmt.Sprintf("(RIP s' = %s \\<and> RSP s' = RSP\\<^sub>0 + 8)", g.RetSym))
			case hoare.HaltID:
				posts = append(posts, "halted s'")
			default:
				posts = append(posts, fmt.Sprintf("P_%s s'", sanitizeThy(string(to))))
			}
		}
		if len(posts) == 0 {
			posts = []string{"True (* annotated: no bounded successors *)"}
		}
		fmt.Fprintf(&b, "lemma hoare_%s: (* %s *)\n", sanitizeThy(string(v.ID)), inst.String())
		fmt.Fprintf(&b, "  assumes \"P_%s s\" and \"s' = step_%x s\"\n", sanitizeThy(string(v.ID)), v.Addr)
		fmt.Fprintf(&b, "  shows \"%s\"\n", strings.Join(posts, " \\<or> "))
		fmt.Fprintf(&b, "  using assms by htriple\n\n")
	}

	for _, o := range g.Obligations {
		fmt.Fprintf(&b, "(* proof obligation: %s *)\n", o)
	}
	for _, a := range g.Assumptions {
		fmt.Fprintf(&b, "(* assumption: %s *)\n", a)
	}
	b.WriteString("\nend\n")
	return b.String()
}

// sanitizeThy makes an identifier Isabelle-friendly.
func sanitizeThy(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
