package x86

import (
	"encoding/binary"
	"fmt"
)

// DecodeError reports an undecodable byte sequence.
type DecodeError struct {
	Addr   uint64
	Opcode byte
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("x86: cannot decode at %#x (opcode %#02x): %s", e.Addr, e.Opcode, e.Reason)
}

type decoder struct {
	code []byte
	addr uint64
	pos  int

	opsize int // 4 by default, 8 with REX.W, 2 with 0x66
	rex    byte
	hasREX bool
	op66   bool
	repF3  bool
	repF2  bool
	opc    byte
}

func (d *decoder) fail(reason string) error {
	return &DecodeError{Addr: d.addr, Opcode: d.opc, Reason: reason}
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.code) {
		return 0, d.fail("truncated instruction")
	}
	b := d.code[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.pos+2 > len(d.code) {
		return 0, d.fail("truncated imm16")
	}
	v := binary.LittleEndian.Uint16(d.code[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.code) {
		return 0, d.fail("truncated imm32")
	}
	v := binary.LittleEndian.Uint32(d.code[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.pos+8 > len(d.code) {
		return 0, d.fail("truncated imm64")
	}
	v := binary.LittleEndian.Uint64(d.code[d.pos:])
	d.pos += 8
	return v, nil
}

// imm reads a size-byte immediate sign-extended to 64 bits.
func (d *decoder) imm(size int) (int64, error) {
	switch size {
	case 1:
		b, err := d.byte()
		return int64(int8(b)), err
	case 2:
		v, err := d.u16()
		return int64(int16(v)), err
	case 4:
		v, err := d.u32()
		return int64(int32(v)), err
	default:
		v, err := d.u64()
		return int64(v), err
	}
}

// rexR, rexX, rexB extend ModRM.reg, SIB.index and ModRM.rm/SIB.base.
func (d *decoder) rexR() Reg { return Reg(d.rex & 0x4 >> 2 << 3) }
func (d *decoder) rexX() Reg { return Reg(d.rex & 0x2 >> 1 << 3) }
func (d *decoder) rexB() Reg { return Reg(d.rex & 0x1 << 3) }

// modrm parses a ModRM byte (plus SIB/displacement) and returns the reg
// field (as a register number extended by REX.R) and the r/m operand at the
// given access size.
func (d *decoder) modrm(size int) (reg Reg, rm Operand, err error) {
	m, err := d.byte()
	if err != nil {
		return 0, Operand{}, err
	}
	mod := m >> 6
	reg = Reg(m>>3&7) | d.rexR()
	rmBits := Reg(m & 7)

	if mod == 3 {
		return reg, RegOp(rmBits|d.rexB(), size), nil
	}

	mem := Operand{Kind: OpMem, Size: size, Base: RegNone, Index: RegNone, Scale: 1}
	switch {
	case rmBits == 4: // SIB follows
		sib, err := d.byte()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Scale = 1 << (sib >> 6)
		idx := Reg(sib>>3&7) | d.rexX()
		base := Reg(sib&7) | d.rexB()
		if idx != RSP { // index=100b (without REX.X) means "no index"
			mem.Index = idx
		}
		if sib&7 == 5 && mod == 0 {
			// no base, disp32 follows
			v, err := d.u32()
			if err != nil {
				return 0, Operand{}, err
			}
			mem.Disp = int64(int32(v))
		} else {
			mem.Base = base
		}
	case rmBits == 5 && mod == 0: // RIP-relative disp32
		v, err := d.u32()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Base = RIP
		mem.Disp = int64(int32(v))
		return reg, mem, nil
	default:
		mem.Base = rmBits | d.rexB()
	}

	switch mod {
	case 1:
		b, err := d.byte()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Disp = int64(int8(b))
	case 2:
		v, err := d.u32()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Disp = int64(int32(v))
	}
	return reg, mem, nil
}

// Decode decodes a single instruction starting at code[0], whose first byte
// lives at virtual address addr. RIP-relative displacements are resolved
// against the end of the instruction and materialised as absolute
// addresses in the operand (Base=RIP, Disp=absolute target), so downstream
// consumers never re-do RIP arithmetic.
func Decode(code []byte, addr uint64) (Inst, error) {
	d := &decoder{code: code, addr: addr, opsize: 4}

	// Prefixes.
prefixes:
	for {
		if d.pos >= len(code) {
			return Inst{}, d.fail("empty")
		}
		switch b := code[d.pos]; b {
		case 0x66:
			d.op66 = true
			d.pos++
		case 0xf3:
			d.repF3 = true
			d.pos++
		case 0xf2:
			d.repF2 = true
			d.pos++
		case 0x2e, 0x3e, 0x26, 0x36, 0x64, 0x65: // segment / branch hints
			d.pos++
		default:
			if b >= 0x40 && b <= 0x4f {
				d.rex = b
				d.hasREX = true
				d.pos++
				// REX must be the last prefix.
				break prefixes
			}
			break prefixes
		}
	}
	if d.rex&0x8 != 0 {
		d.opsize = 8
	} else if d.op66 {
		d.opsize = 2
	}

	opc, err := d.byte()
	if err != nil {
		return Inst{}, err
	}
	d.opc = opc

	inst, err := d.decodeOne(opc)
	if err != nil {
		return Inst{}, err
	}
	inst.Addr = addr
	inst.Len = d.pos
	inst.Bytes = append([]byte(nil), code[:d.pos]...)

	// Resolve RIP-relative displacements and relative branch targets to
	// absolute addresses.
	for i := range inst.Ops {
		o := &inst.Ops[i]
		if o.Kind == OpMem && o.Base == RIP {
			o.Disp += int64(inst.Next())
		}
	}
	switch inst.Mn {
	case CALL, JMP, JCC:
		if len(inst.Ops) == 1 && inst.Ops[0].Kind == OpImm {
			inst.Ops[0].Imm += int64(inst.Next())
			inst.Ops[0].Size = 8
		}
	}
	return inst, nil
}

// aluFamily maps the low 3 bits of the classic ALU opcode rows (and the
// /reg field of 80/81/83) to mnemonics.
var aluFamily = [8]Mnemonic{ADD, OR, ADC, SBB, AND, SUB, XOR, CMP}

// shiftFamily maps the /reg field of C0/C1/D0-D3 to mnemonics.
var shiftFamily = [8]Mnemonic{ROL, ROR, BAD, BAD, SHL, SHR, BAD, SAR}

func (d *decoder) decodeOne(opc byte) (Inst, error) {
	size := d.opsize

	// Classic ALU rows: 00-3B excluding the 0F escape and row oddities.
	if opc < 0x40 && opc&7 <= 5 && opc != 0x0f && opc != 0x26 && opc != 0x2e && opc != 0x36 && opc != 0x3e {
		mn := aluFamily[opc>>3]
		switch opc & 7 {
		case 0: // r/m8, r8
			reg, rm, err := d.modrm(1)
			return Inst{Mn: mn, Ops: []Operand{rm, RegOp(reg, 1)}}, err
		case 1: // r/m, r
			reg, rm, err := d.modrm(size)
			return Inst{Mn: mn, Ops: []Operand{rm, RegOp(reg, size)}}, err
		case 2: // r8, r/m8
			reg, rm, err := d.modrm(1)
			return Inst{Mn: mn, Ops: []Operand{RegOp(reg, 1), rm}}, err
		case 3: // r, r/m
			reg, rm, err := d.modrm(size)
			return Inst{Mn: mn, Ops: []Operand{RegOp(reg, size), rm}}, err
		case 4: // al, imm8
			v, err := d.imm(1)
			return Inst{Mn: mn, Ops: []Operand{RegOp(RAX, 1), ImmOp(v, 1)}}, err
		case 5: // eax, imm
			isz := size
			if isz == 8 {
				isz = 4
			}
			v, err := d.imm(isz)
			return Inst{Mn: mn, Ops: []Operand{RegOp(RAX, size), ImmOp(v, isz)}}, err
		}
	}

	switch {
	case opc >= 0x50 && opc <= 0x57:
		return Inst{Mn: PUSH, Ops: []Operand{RegOp(Reg(opc-0x50)|d.rexB(), 8)}}, nil
	case opc >= 0x58 && opc <= 0x5f:
		return Inst{Mn: POP, Ops: []Operand{RegOp(Reg(opc-0x58)|d.rexB(), 8)}}, nil
	case opc >= 0x70 && opc <= 0x7f:
		v, err := d.imm(1)
		return Inst{Mn: JCC, Cond: Cond(opc - 0x70), Ops: []Operand{ImmOp(v, 1)}}, err
	case opc >= 0xb0 && opc <= 0xb7:
		v, err := d.imm(1)
		return Inst{Mn: MOV, Ops: []Operand{RegOp(Reg(opc-0xb0)|d.rexB(), 1), ImmOp(v, 1)}}, err
	case opc >= 0xb8 && opc <= 0xbf:
		r := Reg(opc-0xb8) | d.rexB()
		if size == 8 { // movabs r64, imm64
			v, err := d.u64()
			return Inst{Mn: MOV, Ops: []Operand{RegOp(r, 8), ImmOp(int64(v), 8)}}, err
		}
		v, err := d.imm(size)
		return Inst{Mn: MOV, Ops: []Operand{RegOp(r, size), ImmOp(v, size)}}, err
	case opc >= 0x91 && opc <= 0x97:
		return Inst{Mn: XCHG, Ops: []Operand{RegOp(RAX, size), RegOp(Reg(opc-0x90)|d.rexB(), size)}}, nil
	}

	switch opc {
	case 0x0f:
		return d.decode0F()
	case 0x63: // movsxd r64, r/m32
		reg, rm, err := d.modrm(4)
		return Inst{Mn: MOVSXD, Ops: []Operand{RegOp(reg, 8), rm}}, err
	case 0x68:
		v, err := d.imm(4)
		return Inst{Mn: PUSH, Ops: []Operand{ImmOp(v, 4)}}, err
	case 0x69: // imul r, r/m, imm32
		reg, rm, err := d.modrm(size)
		if err != nil {
			return Inst{}, err
		}
		isz := size
		if isz == 8 {
			isz = 4
		}
		v, err := d.imm(isz)
		return Inst{Mn: IMUL, Ops: []Operand{RegOp(reg, size), rm, ImmOp(v, isz)}}, err
	case 0x6a:
		v, err := d.imm(1)
		return Inst{Mn: PUSH, Ops: []Operand{ImmOp(v, 1)}}, err
	case 0x6b: // imul r, r/m, imm8
		reg, rm, err := d.modrm(size)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.imm(1)
		return Inst{Mn: IMUL, Ops: []Operand{RegOp(reg, size), rm, ImmOp(v, 1)}}, err
	case 0x80: // alu r/m8, imm8
		reg, rm, err := d.modrm(1)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.imm(1)
		return Inst{Mn: aluFamily[reg&7], Ops: []Operand{rm, ImmOp(v, 1)}}, err
	case 0x81:
		reg, rm, err := d.modrm(size)
		if err != nil {
			return Inst{}, err
		}
		isz := size
		if isz == 8 {
			isz = 4
		}
		v, err := d.imm(isz)
		return Inst{Mn: aluFamily[reg&7], Ops: []Operand{rm, ImmOp(v, isz)}}, err
	case 0x83:
		reg, rm, err := d.modrm(size)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.imm(1)
		return Inst{Mn: aluFamily[reg&7], Ops: []Operand{rm, ImmOp(v, 1)}}, err
	case 0x84:
		reg, rm, err := d.modrm(1)
		return Inst{Mn: TEST, Ops: []Operand{rm, RegOp(reg, 1)}}, err
	case 0x85:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: TEST, Ops: []Operand{rm, RegOp(reg, size)}}, err
	case 0x86:
		reg, rm, err := d.modrm(1)
		return Inst{Mn: XCHG, Ops: []Operand{rm, RegOp(reg, 1)}}, err
	case 0x87:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: XCHG, Ops: []Operand{rm, RegOp(reg, size)}}, err
	case 0x88:
		reg, rm, err := d.modrm(1)
		return Inst{Mn: MOV, Ops: []Operand{rm, RegOp(reg, 1)}}, err
	case 0x89:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: MOV, Ops: []Operand{rm, RegOp(reg, size)}}, err
	case 0x8a:
		reg, rm, err := d.modrm(1)
		return Inst{Mn: MOV, Ops: []Operand{RegOp(reg, 1), rm}}, err
	case 0x8b:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: MOV, Ops: []Operand{RegOp(reg, size), rm}}, err
	case 0x8d:
		reg, rm, err := d.modrm(size)
		if err != nil {
			return Inst{}, err
		}
		if rm.Kind != OpMem {
			return Inst{}, d.fail("lea with register source")
		}
		return Inst{Mn: LEA, Ops: []Operand{RegOp(reg, size), rm}}, nil
	case 0x8f: // pop r/m
		reg, rm, err := d.modrm(8)
		if err != nil {
			return Inst{}, err
		}
		if reg&7 != 0 {
			return Inst{}, d.fail("8f /non-zero")
		}
		return Inst{Mn: POP, Ops: []Operand{rm}}, nil
	case 0x90:
		return Inst{Mn: NOP}, nil
	case 0x98:
		if size == 8 {
			return Inst{Mn: CDQE}, nil
		}
		return Inst{Mn: CDQE}, nil // cwde/cdqe treated uniformly at size
	case 0x99:
		if size == 8 {
			return Inst{Mn: CQO}, nil
		}
		return Inst{Mn: CDQ}, nil
	case 0xa4:
		return Inst{Mn: MOVS, Rep: d.repF3, Ops: []Operand{{Kind: OpNone, Size: 1}}}, nil
	case 0xa5:
		return Inst{Mn: MOVS, Rep: d.repF3, Ops: []Operand{{Kind: OpNone, Size: size}}}, nil
	case 0xaa:
		return Inst{Mn: STOS, Rep: d.repF3, Ops: []Operand{{Kind: OpNone, Size: 1}}}, nil
	case 0xab:
		return Inst{Mn: STOS, Rep: d.repF3, Ops: []Operand{{Kind: OpNone, Size: size}}}, nil
	case 0xa8:
		v, err := d.imm(1)
		return Inst{Mn: TEST, Ops: []Operand{RegOp(RAX, 1), ImmOp(v, 1)}}, err
	case 0xa9:
		isz := size
		if isz == 8 {
			isz = 4
		}
		v, err := d.imm(isz)
		return Inst{Mn: TEST, Ops: []Operand{RegOp(RAX, size), ImmOp(v, isz)}}, err
	case 0xc0, 0xc1, 0xd0, 0xd1, 0xd2, 0xd3:
		sz := size
		if opc == 0xc0 || opc == 0xd0 || opc == 0xd2 {
			sz = 1
		}
		reg, rm, err := d.modrm(sz)
		if err != nil {
			return Inst{}, err
		}
		mn := shiftFamily[reg&7]
		if mn == BAD {
			return Inst{}, d.fail("unsupported shift family member")
		}
		switch opc {
		case 0xc0, 0xc1:
			v, err := d.imm(1)
			return Inst{Mn: mn, Ops: []Operand{rm, ImmOp(v, 1)}}, err
		case 0xd0, 0xd1:
			return Inst{Mn: mn, Ops: []Operand{rm, ImmOp(1, 1)}}, nil
		default: // d2, d3: shift by cl
			return Inst{Mn: mn, Ops: []Operand{rm, RegOp(RCX, 1)}}, nil
		}
	case 0xc2:
		v, err := d.u16()
		return Inst{Mn: RET, Ops: []Operand{ImmOp(int64(v), 2)}}, err
	case 0xc3:
		return Inst{Mn: RET}, nil
	case 0xc6:
		reg, rm, err := d.modrm(1)
		if err != nil {
			return Inst{}, err
		}
		if reg&7 != 0 {
			return Inst{}, d.fail("c6 /non-zero")
		}
		v, err := d.imm(1)
		return Inst{Mn: MOV, Ops: []Operand{rm, ImmOp(v, 1)}}, err
	case 0xc7:
		reg, rm, err := d.modrm(size)
		if err != nil {
			return Inst{}, err
		}
		if reg&7 != 0 {
			return Inst{}, d.fail("c7 /non-zero")
		}
		isz := size
		if isz == 8 {
			isz = 4
		}
		v, err := d.imm(isz)
		return Inst{Mn: MOV, Ops: []Operand{rm, ImmOp(v, isz)}}, err
	case 0xc9:
		return Inst{Mn: LEAVE}, nil
	case 0xcc:
		return Inst{Mn: INT3}, nil
	case 0xe8:
		v, err := d.imm(4)
		return Inst{Mn: CALL, Ops: []Operand{ImmOp(v, 4)}}, err
	case 0xe9:
		v, err := d.imm(4)
		return Inst{Mn: JMP, Ops: []Operand{ImmOp(v, 4)}}, err
	case 0xeb:
		v, err := d.imm(1)
		return Inst{Mn: JMP, Ops: []Operand{ImmOp(v, 1)}}, err
	case 0xf4:
		return Inst{Mn: HLT}, nil
	case 0xf6, 0xf7:
		sz := size
		if opc == 0xf6 {
			sz = 1
		}
		reg, rm, err := d.modrm(sz)
		if err != nil {
			return Inst{}, err
		}
		switch reg & 7 {
		case 0, 1: // test r/m, imm
			isz := sz
			if isz == 8 {
				isz = 4
			}
			v, err := d.imm(isz)
			return Inst{Mn: TEST, Ops: []Operand{rm, ImmOp(v, isz)}}, err
		case 2:
			return Inst{Mn: NOT, Ops: []Operand{rm}}, nil
		case 3:
			return Inst{Mn: NEG, Ops: []Operand{rm}}, nil
		case 4:
			return Inst{Mn: MUL, Ops: []Operand{rm}}, nil
		case 5:
			return Inst{Mn: IMUL, Ops: []Operand{rm}}, nil
		case 6:
			return Inst{Mn: DIV, Ops: []Operand{rm}}, nil
		default:
			return Inst{Mn: IDIV, Ops: []Operand{rm}}, nil
		}
	case 0xfe:
		reg, rm, err := d.modrm(1)
		if err != nil {
			return Inst{}, err
		}
		switch reg & 7 {
		case 0:
			return Inst{Mn: INC, Ops: []Operand{rm}}, nil
		case 1:
			return Inst{Mn: DEC, Ops: []Operand{rm}}, nil
		}
		return Inst{}, d.fail("fe /bad")
	case 0xff:
		reg, rm, err := d.modrm(size)
		if err != nil {
			return Inst{}, err
		}
		switch reg & 7 {
		case 0:
			return Inst{Mn: INC, Ops: []Operand{rm}}, nil
		case 1:
			return Inst{Mn: DEC, Ops: []Operand{rm}}, nil
		case 2:
			rm.Size = 8
			return Inst{Mn: CALL, Ops: []Operand{rm}}, nil
		case 4:
			rm.Size = 8
			return Inst{Mn: JMP, Ops: []Operand{rm}}, nil
		case 6:
			rm.Size = 8
			return Inst{Mn: PUSH, Ops: []Operand{rm}}, nil
		}
		return Inst{}, d.fail("ff /bad")
	}
	return Inst{}, d.fail("unsupported opcode")
}

func (d *decoder) decode0F() (Inst, error) {
	opc, err := d.byte()
	if err != nil {
		return Inst{}, err
	}
	d.opc = opc
	size := d.opsize

	switch {
	case opc >= 0x80 && opc <= 0x8f:
		v, err := d.imm(4)
		return Inst{Mn: JCC, Cond: Cond(opc - 0x80), Ops: []Operand{ImmOp(v, 4)}}, err
	case opc >= 0x90 && opc <= 0x9f:
		_, rm, err := d.modrm(1)
		return Inst{Mn: SETCC, Cond: Cond(opc - 0x90), Ops: []Operand{rm}}, err
	case opc >= 0x40 && opc <= 0x4f:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: CMOVCC, Cond: Cond(opc - 0x40), Ops: []Operand{RegOp(reg, size), rm}}, err
	}

	if opc >= 0xc8 && opc <= 0xcf {
		return Inst{Mn: BSWAP, Ops: []Operand{RegOp(Reg(opc-0xc8)|d.rexB(), size)}}, nil
	}

	switch opc {
	case 0x05:
		return Inst{Mn: SYSCALL}, nil
	case 0xa3:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: BT, Ops: []Operand{rm, RegOp(reg, size)}}, err
	case 0xab:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: BTS, Ops: []Operand{rm, RegOp(reg, size)}}, err
	case 0xb3:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: BTR, Ops: []Operand{rm, RegOp(reg, size)}}, err
	case 0xbb:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: BTC, Ops: []Operand{rm, RegOp(reg, size)}}, err
	case 0xba:
		reg, rm, err := d.modrm(size)
		if err != nil {
			return Inst{}, err
		}
		mns := map[Reg]Mnemonic{4: BT, 5: BTS, 6: BTR, 7: BTC}
		mn, ok := mns[reg&7]
		if !ok {
			return Inst{}, d.fail("0f ba /bad")
		}
		v, err := d.imm(1)
		return Inst{Mn: mn, Ops: []Operand{rm, ImmOp(v, 1)}}, err
	case 0xbc:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: BSF, Ops: []Operand{RegOp(reg, size), rm}}, err
	case 0xbd:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: BSR, Ops: []Operand{RegOp(reg, size), rm}}, err
	case 0xb8:
		if !d.repF3 {
			return Inst{}, d.fail("0f b8 without f3 (jmpe unsupported)")
		}
		reg, rm, err := d.modrm(size)
		return Inst{Mn: POPCNT, Ops: []Operand{RegOp(reg, size), rm}}, err
	case 0xc0:
		reg, rm, err := d.modrm(1)
		return Inst{Mn: XADD, Ops: []Operand{rm, RegOp(reg, 1)}}, err
	case 0xc1:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: XADD, Ops: []Operand{rm, RegOp(reg, size)}}, err
	case 0xb0:
		reg, rm, err := d.modrm(1)
		return Inst{Mn: CMPXCHG, Ops: []Operand{rm, RegOp(reg, 1)}}, err
	case 0xb1:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: CMPXCHG, Ops: []Operand{rm, RegOp(reg, size)}}, err
	case 0x0b:
		return Inst{Mn: UD2}, nil
	case 0x1e:
		if d.repF3 {
			m, err := d.byte()
			if err != nil {
				return Inst{}, err
			}
			if m == 0xfa {
				return Inst{Mn: ENDBR64}, nil
			}
			return Inst{}, d.fail("f3 0f 1e /bad")
		}
		return Inst{}, d.fail("0f 1e without f3")
	case 0x1f: // multi-byte nop
		_, _, err := d.modrm(size)
		return Inst{Mn: NOP}, err
	case 0xaf:
		reg, rm, err := d.modrm(size)
		return Inst{Mn: IMUL, Ops: []Operand{RegOp(reg, size), rm}}, err
	case 0xb6:
		reg, rm, err := d.modrm(1)
		return Inst{Mn: MOVZX, Ops: []Operand{RegOp(reg, size), rm}}, err
	case 0xb7:
		reg, rm, err := d.modrm(2)
		return Inst{Mn: MOVZX, Ops: []Operand{RegOp(reg, size), rm}}, err
	case 0xbe:
		reg, rm, err := d.modrm(1)
		return Inst{Mn: MOVSX, Ops: []Operand{RegOp(reg, size), rm}}, err
	case 0xbf:
		reg, rm, err := d.modrm(2)
		return Inst{Mn: MOVSX, Ops: []Operand{RegOp(reg, size), rm}}, err
	}
	return Inst{}, d.fail("unsupported 0f opcode")
}
