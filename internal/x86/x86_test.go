package x86

import (
	"math/rand"
	"reflect"
	"testing"
)

// dec is a test helper that decodes bytes at the given address.
func dec(t *testing.T, addr uint64, b ...byte) Inst {
	t.Helper()
	inst, err := Decode(b, addr)
	if err != nil {
		t.Fatalf("decode % x: %v", b, err)
	}
	if inst.Len != len(b) {
		t.Fatalf("decode % x: consumed %d of %d bytes", b, inst.Len, len(b))
	}
	return inst
}

func TestDecodeBasics(t *testing.T) {
	cases := []struct {
		bytes []byte
		want  string
	}{
		{[]byte{0x55}, "push rbp"},
		{[]byte{0x48, 0x89, 0xe5}, "mov rbp, rsp"},
		{[]byte{0x48, 0x83, 0xec, 0x20}, "sub rsp, 0x20"},
		{[]byte{0x5d}, "pop rbp"},
		{[]byte{0xc3}, "ret"},
		{[]byte{0xc9}, "leave"},
		{[]byte{0x90}, "nop"},
		{[]byte{0xf3, 0x0f, 0x1e, 0xfa}, "endbr64"},
		{[]byte{0x31, 0xc0}, "xor eax, eax"},
		{[]byte{0x48, 0x31, 0xc0}, "xor rax, rax"},
		{[]byte{0xb8, 0x2a, 0x00, 0x00, 0x00}, "mov eax, 0x2a"},
		{[]byte{0x48, 0xb8, 0xef, 0xbe, 0xad, 0xde, 0x00, 0x00, 0x00, 0x00}, "mov rax, 0xdeadbeef"},
		{[]byte{0x89, 0x7d, 0xfc}, "mov dword ptr [rbp-0x4], edi"},
		{[]byte{0x8b, 0x45, 0xfc}, "mov eax, dword ptr [rbp-0x4]"},
		{[]byte{0x48, 0x8d, 0x04, 0xbd, 0x00, 0x10, 0x40, 0x00}, "lea rax, qword ptr [rdi*4+0x401000]"},
		{[]byte{0x3d, 0xc3, 0x00, 0x00, 0x00}, "cmp eax, 0xc3"},
		{[]byte{0x41, 0x54}, "push r12"},
		{[]byte{0x41, 0x5d}, "pop r13"},
		{[]byte{0x4d, 0x89, 0xe6}, "mov r14, r12"},
		{[]byte{0x0f, 0xb6, 0xc0}, "movzx eax, al"},
		{[]byte{0x48, 0x0f, 0xbf, 0xc8}, "movsx rcx, ax"},
		{[]byte{0x48, 0x63, 0xd0}, "movsxd rdx, eax"},
		{[]byte{0x48, 0x0f, 0xaf, 0xc7}, "imul rax, rdi"},
		{[]byte{0x6b, 0xc0, 0x0a}, "imul eax, eax, 0xa"},
		{[]byte{0x48, 0xf7, 0xf9}, "idiv rcx"},
		{[]byte{0x48, 0xd1, 0xe8}, "shr rax, 0x1"},
		{[]byte{0x48, 0xc1, 0xe0, 0x03}, "shl rax, 0x3"},
		{[]byte{0x48, 0xd3, 0xf8}, "sar rax, cl"},
		{[]byte{0xff, 0xd0}, "call rax"},
		{[]byte{0xff, 0x27}, "jmp qword ptr [rdi]"},
		{[]byte{0xff, 0x75, 0xf0}, "push qword ptr [rbp-0x10]"},
		{[]byte{0x0f, 0x94, 0xc0}, "sete al"},
		{[]byte{0x48, 0x0f, 0x44, 0xc1}, "cmove rax, rcx"},
		{[]byte{0x48, 0x99}, "cqo"},
		{[]byte{0x99}, "cdq"},
		{[]byte{0x0f, 0x0b}, "ud2"},
		{[]byte{0x0f, 0x05}, "syscall"},
		{[]byte{0x66, 0x89, 0x08}, "mov word ptr [rax], cx"},
		{[]byte{0x42, 0x8b, 0x04, 0xb8}, "mov eax, dword ptr [rax+r15*4]"},
	}
	for _, c := range cases {
		inst := dec(t, 0, c.bytes...)
		if got := inst.String(); got != c.want {
			t.Errorf("% x: got %q, want %q", c.bytes, got, c.want)
		}
	}
}

func TestDecodeRelativeBranches(t *testing.T) {
	// e8 rel32 at 0x400000, rel = 0x100 → target 0x400105.
	inst := dec(t, 0x400000, 0xe8, 0x00, 0x01, 0x00, 0x00)
	if tgt, ok := inst.Target(); !ok || tgt != 0x400105 {
		t.Fatalf("call target %#x", tgt)
	}
	// jz rel8 backwards.
	inst = dec(t, 0x400010, 0x74, 0xfe)
	if tgt, ok := inst.Target(); !ok || tgt != 0x400010 {
		t.Fatalf("jz target %#x", tgt)
	}
	if inst.Cond != CondE {
		t.Fatalf("cond %v", inst.Cond)
	}
	// RIP-relative lea: 48 8d 05 rel32 at 0x400000 (7 bytes), rel=0x20 → 0x400027.
	inst = dec(t, 0x400000, 0x48, 0x8d, 0x05, 0x20, 0x00, 0x00, 0x00)
	if inst.Ops[1].Base != RIP || inst.Ops[1].Disp != 0x400027 {
		t.Fatalf("rip-rel: %v", inst.Ops[1])
	}
}

func TestDecodeSection2Example(t *testing.T) {
	// The 64-bit analogue of the paper's Section 2 byte sequence.
	code := []byte{
		0x3d, 0xc3, 0x00, 0x00, 0x00, // cmp eax, 0xc3
		0x0f, 0x87, 0x18, 0x00, 0x00, 0x00, // ja +0x18
		0x8b, 0x04, 0x85, 0x00, 0x10, 0x40, 0x00, // mov eax, [rax*4+0x401000]
		0x89, 0x07, // mov [rdi], eax
		0xc7, 0x06, 0x01, 0x00, 0x00, 0x00, // mov dword [rsi], 1
		0xff, 0x27, // jmp [rdi]
	}
	want := []string{
		"cmp eax, 0xc3",
		"ja 0x23",
		"mov eax, dword ptr [rax*4+0x401000]",
		"mov dword ptr [rdi], eax",
		"mov dword ptr [rsi], 0x1",
		"jmp qword ptr [rdi]",
	}
	addr := uint64(0)
	for i := 0; len(code) > 0; i++ {
		inst, err := Decode(code, addr)
		if err != nil {
			t.Fatalf("decode at %#x: %v", addr, err)
		}
		if inst.String() != want[i] {
			t.Errorf("at %#x: got %q, want %q", addr, inst.String(), want[i])
		}
		code = code[inst.Len:]
		addr += uint64(inst.Len)
	}
	// Decoding in the middle of the first instruction yields ret (the
	// hidden ROP gadget: byte 0xc3 of the immediate).
	gadget := dec(t, 1, 0xc3)
	if gadget.Mn != RET {
		t.Fatalf("hidden gadget: %v", gadget)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil, 0); err == nil {
		t.Fatal("empty input must fail")
	}
	if _, err := Decode([]byte{0x48}, 0); err == nil {
		t.Fatal("lone REX must fail")
	}
	if _, err := Decode([]byte{0x0f, 0xff}, 0); err == nil {
		t.Fatal("unknown 0f opcode must fail")
	}
	if _, err := Decode([]byte{0x81, 0xc0, 0x01}, 0); err == nil {
		t.Fatal("truncated imm32 must fail")
	}
	var de *DecodeError
	_, err := Decode([]byte{0x0f, 0xff}, 0x1234)
	if e, ok := err.(*DecodeError); ok {
		de = e
	} else {
		t.Fatalf("want *DecodeError, got %T", err)
	}
	if de.Addr != 0x1234 || de.Error() == "" {
		t.Fatalf("decode error fields: %+v", de)
	}
}

// roundTrip encodes inst, decodes the result and compares the semantic
// fields (mnemonic, condition, operands).
func roundTrip(t *testing.T, inst Inst) {
	t.Helper()
	inst.Addr = 0x400000
	b, err := Encode(inst)
	if err != nil {
		t.Fatalf("encode %s: %v", inst.String(), err)
	}
	got, err := Decode(b, inst.Addr)
	if err != nil {
		t.Fatalf("decode(encode(%s)) = % x: %v", inst.String(), b, err)
	}
	if got.Mn != inst.Mn || got.Cond != inst.Cond || !reflect.DeepEqual(got.Ops, inst.Ops) {
		t.Fatalf("round trip %s: got %s (% x)\n  ops want %+v\n  ops got  %+v",
			inst.String(), got.String(), b, inst.Ops, got.Ops)
	}
}

func TestEncodeRoundTripFixed(t *testing.T) {
	insts := []Inst{
		{Mn: MOV, Ops: []Operand{RegOp(RAX, 8), RegOp(RBX, 8)}},
		{Mn: MOV, Ops: []Operand{RegOp(R12, 4), ImmOp(0x1234, 4)}},
		{Mn: MOV, Ops: []Operand{RegOp(RAX, 8), ImmOp(0x123456789a, 8)}},
		{Mn: MOV, Ops: []Operand{MemOp(RBP, RegNone, 1, -16, 8), RegOp(RDI, 8)}},
		{Mn: MOV, Ops: []Operand{MemOp(RSP, RegNone, 1, 8, 4), ImmOp(7, 4)}},
		{Mn: MOV, Ops: []Operand{RegOp(RCX, 1), MemOp(RAX, RDX, 2, 5, 1)}},
		{Mn: ADD, Ops: []Operand{RegOp(RAX, 8), ImmOp(8, 1)}},
		{Mn: SUB, Ops: []Operand{RegOp(RSP, 8), ImmOp(0x100, 4)}},
		{Mn: CMP, Ops: []Operand{RegOp(RAX, 4), ImmOp(0xc3, 4)}},
		{Mn: CMP, Ops: []Operand{MemOp(RBP, RegNone, 1, -8, 8), RegOp(RAX, 8)}},
		{Mn: TEST, Ops: []Operand{RegOp(RDI, 8), RegOp(RDI, 8)}},
		{Mn: LEA, Ops: []Operand{RegOp(RAX, 8), MemOp(RegNone, RDI, 4, 0x401000, 8)}},
		{Mn: LEA, Ops: []Operand{RegOp(RSI, 8), MemOp(RSP, RegNone, 1, 16, 8)}},
		{Mn: MOVZX, Ops: []Operand{RegOp(RAX, 4), RegOp(RCX, 1)}},
		{Mn: MOVSX, Ops: []Operand{RegOp(RDX, 8), MemOp(RDI, RegNone, 1, 0, 2)}},
		{Mn: MOVSXD, Ops: []Operand{RegOp(RDX, 8), RegOp(RAX, 4)}},
		{Mn: IMUL, Ops: []Operand{RegOp(RAX, 8), RegOp(RBX, 8)}},
		{Mn: IMUL, Ops: []Operand{RegOp(RAX, 4), RegOp(RAX, 4), ImmOp(10, 1)}},
		{Mn: IMUL, Ops: []Operand{RegOp(RCX, 8)}},
		{Mn: MUL, Ops: []Operand{RegOp(RCX, 8)}},
		{Mn: DIV, Ops: []Operand{RegOp(RSI, 8)}},
		{Mn: IDIV, Ops: []Operand{RegOp(RSI, 4)}},
		{Mn: NOT, Ops: []Operand{RegOp(RDX, 8)}},
		{Mn: NEG, Ops: []Operand{MemOp(RBP, RegNone, 1, -24, 4)}},
		{Mn: INC, Ops: []Operand{RegOp(RAX, 8)}},
		{Mn: DEC, Ops: []Operand{MemOp(RBP, RegNone, 1, -4, 4)}},
		{Mn: SHL, Ops: []Operand{RegOp(RAX, 8), ImmOp(3, 1)}},
		{Mn: SHR, Ops: []Operand{RegOp(RDX, 4), RegOp(RCX, 1)}},
		{Mn: SAR, Ops: []Operand{RegOp(RAX, 8), ImmOp(63, 1)}},
		{Mn: ROL, Ops: []Operand{RegOp(RBX, 8), ImmOp(8, 1)}},
		{Mn: PUSH, Ops: []Operand{RegOp(R15, 8)}},
		{Mn: POP, Ops: []Operand{RegOp(RBP, 8)}},
		{Mn: PUSH, Ops: []Operand{MemOp(RBP, RegNone, 1, -16, 8)}},
		{Mn: XCHG, Ops: []Operand{RegOp(RBX, 8), RegOp(RDX, 8)}},
		{Mn: SETCC, Cond: CondNE, Ops: []Operand{RegOp(RAX, 1)}},
		{Mn: CMOVCC, Cond: CondL, Ops: []Operand{RegOp(RAX, 8), RegOp(RBX, 8)}},
		{Mn: CALL, Ops: []Operand{RegOp(RAX, 8)}},
		{Mn: JMP, Ops: []Operand{MemOp(RDI, RegNone, 1, 0, 8)}},
		{Mn: RET},
		{Mn: LEAVE},
		{Mn: NOP},
		{Mn: CDQE},
		{Mn: CQO},
		{Mn: ENDBR64},
		{Mn: AND, Ops: []Operand{RegOp(RSP, 8), ImmOp(-16, 1)}},
		{Mn: OR, Ops: []Operand{RegOp(RAX, 1), ImmOp(1, 1)}},
		{Mn: XOR, Ops: []Operand{RegOp(R9, 8), RegOp(R9, 8)}},
		{Mn: ADC, Ops: []Operand{RegOp(RAX, 8), RegOp(RDX, 8)}},
		{Mn: SBB, Ops: []Operand{RegOp(RDX, 4), RegOp(RDX, 4)}},
	}
	for _, inst := range insts {
		roundTrip(t, inst)
	}
}

func TestEncodeBranches(t *testing.T) {
	// call to absolute target.
	inst := Inst{Mn: CALL, Ops: []Operand{ImmOp(0x401000, 4)}, Addr: 0x400000}
	b, err := Encode(inst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if tgt, ok := got.Target(); !ok || tgt != 0x401000 {
		t.Fatalf("call target %#x", tgt)
	}
	// jcc backwards.
	inst = Inst{Mn: JCC, Cond: CondA, Ops: []Operand{ImmOp(0x3ff000, 4)}, Addr: 0x400000}
	b, err = Encode(inst)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Decode(b, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if tgt, ok := got.Target(); !ok || tgt != 0x3ff000 || got.Cond != CondA {
		t.Fatalf("jcc: %v", got)
	}
}

// TestEncodeRoundTripRandom fuzzes register/memory/immediate shapes through
// the encoder and decoder.
func TestEncodeRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	regs := GPRs
	sizes := []int{1, 2, 4, 8}
	randMem := func(size int) Operand {
		base := regs[rng.Intn(len(regs))]
		idx := RegNone
		scale := uint8(1)
		if rng.Intn(2) == 0 {
			for {
				idx = regs[rng.Intn(len(regs))]
				if idx != RSP {
					break
				}
			}
			scale = uint8(1 << rng.Intn(4))
		}
		disp := int64(int32(rng.Uint32()))
		if rng.Intn(2) == 0 {
			disp = int64(int8(rng.Intn(256)))
		}
		return MemOp(base, idx, scale, disp, size)
	}
	mns := []Mnemonic{MOV, ADD, SUB, AND, OR, XOR, CMP, ADC, SBB}
	for i := 0; i < 3000; i++ {
		mn := mns[rng.Intn(len(mns))]
		size := sizes[rng.Intn(len(sizes))]
		var inst Inst
		switch rng.Intn(4) {
		case 0: // reg, reg
			inst = Inst{Mn: mn, Ops: []Operand{
				RegOp(regs[rng.Intn(len(regs))], size),
				RegOp(regs[rng.Intn(len(regs))], size)}}
		case 1: // mem, reg
			inst = Inst{Mn: mn, Ops: []Operand{randMem(size), RegOp(regs[rng.Intn(len(regs))], size)}}
		case 2: // reg, mem
			inst = Inst{Mn: mn, Ops: []Operand{RegOp(regs[rng.Intn(len(regs))], size), randMem(size)}}
		case 3: // rm, imm
			iv := int64(int8(rng.Intn(256)))
			isz := 1
			if size > 1 && rng.Intn(2) == 0 {
				iv = int64(int32(rng.Uint32()))
				isz = 4
				if size == 2 {
					iv = int64(int16(iv))
					isz = 2
				}
			}
			dst := RegOp(regs[rng.Intn(len(regs))], size)
			if rng.Intn(2) == 0 {
				dst = randMem(size)
			}
			inst = Inst{Mn: mn, Ops: []Operand{dst, ImmOp(iv, isz)}}
			if mn == MOV && isz == 1 && size > 1 {
				// mov has no sign-extended imm8 form.
				inst.Ops[1].Size = sizeImmForMov(size)
			}
		}
		roundTrip(t, inst)
	}
}

func sizeImmForMov(opsize int) int {
	if opsize == 8 {
		return 4
	}
	return opsize
}

func TestAsmLabels(t *testing.T) {
	a := NewAsm(0x400000)
	a.Label("start")
	a.I(XOR, RegOp(RAX, 4), RegOp(RAX, 4))
	a.Label("loop")
	a.I(ADD, RegOp(RAX, 4), ImmOp(1, 1))
	a.I(CMP, RegOp(RAX, 4), ImmOp(10, 4))
	a.Jcc(CondL, "loop")
	a.Jmp("end")
	a.I(UD2)
	a.Label("end")
	a.I(RET)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Decode all and check the backward/forward targets.
	addr := uint64(0x400000)
	var insts []Inst
	rest := code
	for len(rest) > 0 {
		inst, err := Decode(rest, addr)
		if err != nil {
			t.Fatalf("decode at %#x: %v", addr, err)
		}
		insts = append(insts, inst)
		rest = rest[inst.Len:]
		addr += uint64(inst.Len)
	}
	loopAddr, _ := a.LabelAddr("loop")
	endAddr, _ := a.LabelAddr("end")
	var sawBack, sawFwd bool
	for _, in := range insts {
		if tgt, ok := in.Target(); ok {
			if in.Mn == JCC && tgt == loopAddr {
				sawBack = true
			}
			if in.Mn == JMP && tgt == endAddr {
				sawFwd = true
			}
		}
	}
	if !sawBack || !sawFwd {
		t.Fatalf("labels not resolved: back=%v fwd=%v", sawBack, sawFwd)
	}
}

func TestAsmErrors(t *testing.T) {
	a := NewAsm(0)
	a.Jmp("nowhere")
	if _, err := a.Finish(); err == nil {
		t.Fatal("undefined label must fail")
	}
	a = NewAsm(0)
	a.Label("x")
	a.Label("x")
	a.I(RET)
	if _, err := a.Finish(); err == nil {
		t.Fatal("duplicate label must fail")
	}
}

func TestRegNames(t *testing.T) {
	if RAX.Name(1) != "al" || RAX.Name(2) != "ax" || RAX.Name(4) != "eax" || RAX.Name(8) != "rax" {
		t.Fatal("rax names")
	}
	if R8.Name(4) != "r8d" || RSP.Name(1) != "spl" {
		t.Fatal("extended names")
	}
	if !IsCalleeSaved(RBX) || IsCalleeSaved(RAX) {
		t.Fatal("callee-saved classification")
	}
	if CondE.Negate() != CondNE || CondA.Negate() != CondBE {
		t.Fatal("condition negation")
	}
}
