package x86

import "fmt"

// Asm is a small one-pass assembler with label fixups, used by the
// synthetic-corpus compiler and by tests to build real machine code. All
// label branches use rel32 forms so instruction lengths are known at emit
// time; forward references are patched in Finish.
type Asm struct {
	base   uint64
	buf    []byte
	labels map[string]uint64
	fixups []fixup
	err    error
}

type fixup struct {
	pos   int    // offset of the Inst start within buf
	label string // target label
	inst  Inst   // instruction to re-encode once the label is known
}

// NewAsm returns an assembler whose first emitted byte lives at base.
func NewAsm(base uint64) *Asm {
	return &Asm{base: base, labels: map[string]uint64{}}
}

// PC returns the current virtual address.
func (a *Asm) PC() uint64 { return a.base + uint64(len(a.buf)) }

// Err returns the first emission error, if any.
func (a *Asm) Err() error { return a.err }

// Label binds name to the current address.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.setErr(fmt.Errorf("x86: duplicate label %q", name))
		return
	}
	a.labels[name] = a.PC()
}

// LabelAddr returns the bound address of a label (valid after Label).
func (a *Asm) LabelAddr(name string) (uint64, bool) {
	v, ok := a.labels[name]
	return v, ok
}

func (a *Asm) setErr(err error) {
	if a.err == nil {
		a.err = err
	}
}

// Raw appends raw bytes (used for handcrafted byte sequences such as the
// overlapping-instruction example of Section 2).
func (a *Asm) Raw(b ...byte) { a.buf = append(a.buf, b...) }

// I encodes one instruction at the current address.
func (a *Asm) I(mn Mnemonic, ops ...Operand) {
	a.emit(Inst{Mn: mn, Ops: ops, Addr: a.PC()})
}

// Icc encodes one conditional-family instruction.
func (a *Asm) Icc(mn Mnemonic, cc Cond, ops ...Operand) {
	a.emit(Inst{Mn: mn, Cond: cc, Ops: ops, Addr: a.PC()})
}

func (a *Asm) emit(inst Inst) {
	b, err := Encode(inst)
	if err != nil {
		a.setErr(err)
		return
	}
	a.buf = append(a.buf, b...)
}

// Jmp emits jmp rel32 to the (possibly forward) label.
func (a *Asm) Jmp(label string) { a.branch(JMP, 0, label) }

// Call emits call rel32 to the label.
func (a *Asm) Call(label string) { a.branch(CALL, 0, label) }

// Jcc emits a conditional rel32 jump to the label.
func (a *Asm) Jcc(cc Cond, label string) { a.branch(JCC, cc, label) }

func (a *Asm) branch(mn Mnemonic, cc Cond, label string) {
	inst := Inst{Mn: mn, Cond: cc, Ops: []Operand{ImmOp(0, 4)}, Addr: a.PC()}
	if tgt, ok := a.labels[label]; ok {
		inst.Ops[0].Imm = int64(tgt)
		a.emit(inst)
		return
	}
	a.fixups = append(a.fixups, fixup{pos: len(a.buf), label: label, inst: inst})
	b, err := Encode(inst) // placeholder with target 0
	if err != nil {
		a.setErr(err)
		return
	}
	a.buf = append(a.buf, b...)
}

// LeaLabel emits lea dst, [rip + label]: the address of a (possibly
// forward) label materialised into a register.
func (a *Asm) LeaLabel(dst Reg, label string) {
	inst := Inst{Mn: LEA, Ops: []Operand{
		RegOp(dst, 8),
		{Kind: OpMem, Size: 8, Base: RIP, Index: RegNone, Scale: 1},
	}, Addr: a.PC()}
	if tgt, ok := a.labels[label]; ok {
		inst.Ops[1].Disp = int64(tgt)
		a.emit(inst)
		return
	}
	a.fixups = append(a.fixups, fixup{pos: len(a.buf), label: label, inst: inst})
	b, err := Encode(inst)
	if err != nil {
		a.setErr(err)
		return
	}
	a.buf = append(a.buf, b...)
}

// CallAbs emits call rel32 to an absolute address (e.g. a PLT stub).
func (a *Asm) CallAbs(target uint64) {
	a.emit(Inst{Mn: CALL, Ops: []Operand{ImmOp(int64(target), 4)}, Addr: a.PC()})
}

// JmpAbs emits jmp rel32 to an absolute address.
func (a *Asm) JmpAbs(target uint64) {
	a.emit(Inst{Mn: JMP, Ops: []Operand{ImmOp(int64(target), 4)}, Addr: a.PC()})
}

// Finish resolves all forward references and returns the machine code.
func (a *Asm) Finish() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	for _, f := range a.fixups {
		tgt, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("x86: undefined label %q", f.label)
		}
		inst := f.inst
		if inst.Mn == LEA {
			inst.Ops[1].Disp = int64(tgt)
		} else {
			inst.Ops = []Operand{ImmOp(int64(tgt), 4)}
		}
		b, err := Encode(inst)
		if err != nil {
			return nil, err
		}
		copy(a.buf[f.pos:], b)
	}
	return a.buf, nil
}
