package x86

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics feeds random byte soup to the decoder: it must
// return either a valid instruction (whose length fits the input) or an
// error — never panic, never over-read.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	buf := make([]byte, 16)
	for trial := 0; trial < 200000; trial++ {
		n := 1 + rng.Intn(len(buf))
		code := buf[:n]
		for i := range code {
			code[i] = byte(rng.Intn(256))
		}
		inst, err := Decode(code, 0x400000)
		if err != nil {
			continue
		}
		if inst.Len <= 0 || inst.Len > n {
			t.Fatalf("decoded length %d out of range for input % x", inst.Len, code)
		}
		if inst.Mn == BAD {
			t.Fatalf("BAD mnemonic returned without error for % x", code)
		}
		// Rendering must not panic either.
		_ = inst.String()
	}
}

// TestDecodeTruncationMonotone: every successfully decoded instruction
// also decodes identically from exactly its own bytes, and fails (rather
// than mis-decoding) from any strict prefix.
func TestDecodeTruncationMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	buf := make([]byte, 15)
	checked := 0
	for trial := 0; trial < 100000 && checked < 3000; trial++ {
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		inst, err := Decode(buf, 0)
		if err != nil {
			continue
		}
		checked++
		again, err := Decode(buf[:inst.Len], 0)
		if err != nil {
			t.Fatalf("re-decode of % x failed: %v", buf[:inst.Len], err)
		}
		if again.String() != inst.String() {
			t.Fatalf("re-decode differs: %q vs %q", again.String(), inst.String())
		}
		for cut := 1; cut < inst.Len; cut++ {
			if pre, err := Decode(buf[:cut], 0); err == nil && pre.Len > cut {
				t.Fatalf("prefix decode over-read: % x", buf[:cut])
			}
		}
	}
	if checked == 0 {
		t.Fatal("no instructions decoded")
	}
}
