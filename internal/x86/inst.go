package x86

import (
	"fmt"
	"strings"
)

// Mnemonic identifies an instruction family. Conditional families (JCC,
// SETCC, CMOVCC) carry their condition in Inst.Cond.
type Mnemonic uint8

// The supported instruction families.
const (
	BAD Mnemonic = iota
	MOV
	MOVZX
	MOVSX
	MOVSXD
	LEA
	ADD
	SUB
	ADC
	SBB
	CMP
	TEST
	AND
	OR
	XOR
	NOT
	NEG
	INC
	DEC
	IMUL // 1-, 2- and 3-operand forms
	MUL
	DIV
	IDIV
	SHL
	SHR
	SAR
	ROL
	ROR
	PUSH
	POP
	CALL
	RET
	LEAVE
	JMP
	JCC
	SETCC
	CMOVCC
	NOP
	ENDBR64
	XCHG
	CDQE // REX.W 98 (and CWDE without)
	CDQ  // 99 (CQO with REX.W)
	CQO
	UD2
	HLT
	INT3
	SYSCALL
	BT      // bit test
	BTS     // bit test and set
	BTR     // bit test and reset
	BTC     // bit test and complement
	BSF     // bit scan forward
	BSR     // bit scan reverse
	POPCNT  // population count
	XADD    // exchange and add
	CMPXCHG // compare and exchange
	BSWAP   // byte swap
	MOVS    // move string ([rdi] ← [rsi]); Rep for rep movs
	STOS    // store string ([rdi] ← al/rax); Rep for rep stos
)

var mnNames = map[Mnemonic]string{
	BAD: "(bad)", MOV: "mov", MOVZX: "movzx", MOVSX: "movsx",
	MOVSXD: "movsxd", LEA: "lea", ADD: "add", SUB: "sub", ADC: "adc",
	SBB: "sbb", CMP: "cmp", TEST: "test", AND: "and", OR: "or", XOR: "xor",
	NOT: "not", NEG: "neg", INC: "inc", DEC: "dec", IMUL: "imul",
	MUL: "mul", DIV: "div", IDIV: "idiv", SHL: "shl", SHR: "shr",
	SAR: "sar", ROL: "rol", ROR: "ror", PUSH: "push", POP: "pop",
	CALL: "call", RET: "ret", LEAVE: "leave", JMP: "jmp", JCC: "j",
	SETCC: "set", CMOVCC: "cmov", NOP: "nop", ENDBR64: "endbr64",
	XCHG: "xchg", CDQE: "cdqe", CDQ: "cdq", CQO: "cqo", UD2: "ud2",
	HLT: "hlt", INT3: "int3", SYSCALL: "syscall",
	BT: "bt", BTS: "bts", BTR: "btr", BTC: "btc",
	BSF: "bsf", BSR: "bsr", POPCNT: "popcnt",
	XADD: "xadd", CMPXCHG: "cmpxchg", BSWAP: "bswap",
	MOVS: "movs", STOS: "stos",
}

// String returns the mnemonic text (condition-less for the cc families).
func (m Mnemonic) String() string {
	if s, ok := mnNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mn?%d", uint8(m))
}

// Cond is an x86 condition code in hardware encoding order, as used by the
// 0F 8x / 0F 9x / 0F 4x opcode rows.
type Cond uint8

// The sixteen condition codes.
const (
	CondO  Cond = iota // overflow
	CondNO             // not overflow
	CondB              // below (carry)
	CondAE             // above or equal (not carry)
	CondE              // equal (zero)
	CondNE             // not equal
	CondBE             // below or equal
	CondA              // above
	CondS              // sign
	CondNS             // not sign
	CondP              // parity
	CondNP             // not parity
	CondL              // less (signed)
	CondGE             // greater or equal (signed)
	CondLE             // less or equal (signed)
	CondG              // greater (signed)
)

var condNames = [...]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// String returns the condition suffix ("e", "ne", "a", …).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc?%d", uint8(c))
}

// Negate returns the opposite condition.
func (c Cond) Negate() Cond { return c ^ 1 }

// OperandKind discriminates the three operand shapes.
type OperandKind uint8

// The operand shapes.
const (
	OpNone OperandKind = iota
	OpReg              // a (sub-)register, with Size giving the width
	OpImm              // an immediate, sign-extended to 64 bits
	OpMem              // [base + index·scale + disp], possibly RIP-relative
)

// Operand is a single instruction operand.
type Operand struct {
	Kind  OperandKind
	Size  int // access width in bytes: 1, 2, 4 or 8
	Reg   Reg // OpReg
	Imm   int64
	Base  Reg // OpMem; RegNone if absent, RIP for RIP-relative
	Index Reg // OpMem; RegNone if absent
	Scale uint8
	Disp  int64
}

// RegOp returns a register operand of the given width.
func RegOp(r Reg, size int) Operand { return Operand{Kind: OpReg, Reg: r, Size: size} }

// ImmOp returns an immediate operand of the given width.
func ImmOp(v int64, size int) Operand { return Operand{Kind: OpImm, Imm: v, Size: size} }

// MemOp returns a memory operand [base + index·scale + disp] accessed at the
// given width.
func MemOp(base, index Reg, scale uint8, disp int64, size int) Operand {
	return Operand{Kind: OpMem, Base: base, Index: index, Scale: scale, Disp: disp, Size: size}
}

// String renders the operand in Intel syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpReg:
		return o.Reg.Name(o.Size)
	case OpImm:
		if o.Imm < 0 {
			return fmt.Sprintf("-0x%x", uint64(-o.Imm))
		}
		return fmt.Sprintf("0x%x", uint64(o.Imm))
	case OpMem:
		var b strings.Builder
		switch o.Size {
		case 1:
			b.WriteString("byte ptr [")
		case 2:
			b.WriteString("word ptr [")
		case 4:
			b.WriteString("dword ptr [")
		default:
			b.WriteString("qword ptr [")
		}
		sep := ""
		if o.Base != RegNone {
			b.WriteString(o.Base.String())
			sep = "+"
		}
		if o.Index != RegNone {
			b.WriteString(sep)
			fmt.Fprintf(&b, "%s*%d", o.Index, o.Scale)
			sep = "+"
		}
		if o.Disp != 0 || sep == "" {
			if o.Disp < 0 {
				fmt.Fprintf(&b, "-0x%x", uint64(-o.Disp))
			} else {
				b.WriteString(sep)
				fmt.Fprintf(&b, "0x%x", uint64(o.Disp))
			}
		}
		b.WriteByte(']')
		return b.String()
	}
	return ""
}

// Inst is one decoded instruction.
type Inst struct {
	Addr  uint64 // virtual address of the first byte
	Len   int    // encoded length in bytes
	Mn    Mnemonic
	Cond  Cond // JCC / SETCC / CMOVCC condition
	Rep   bool // REP prefix (MOVS / STOS)
	Ops   []Operand
	Bytes []byte // the raw encoding, Len bytes
}

// Next returns the address of the following instruction.
func (i *Inst) Next() uint64 { return i.Addr + uint64(i.Len) }

// Target returns the branch target of a direct CALL/JMP/JCC with an
// immediate operand, and reports whether the instruction has one.
func (i *Inst) Target() (uint64, bool) {
	switch i.Mn {
	case CALL, JMP, JCC:
		if len(i.Ops) == 1 && i.Ops[0].Kind == OpImm {
			return uint64(i.Ops[0].Imm), true
		}
	}
	return 0, false
}

// Mnem returns the full mnemonic text including any condition suffix, the
// string-op width suffix, and the rep prefix.
func (i *Inst) Mnem() string {
	switch i.Mn {
	case JCC, SETCC, CMOVCC:
		return i.Mn.String() + i.Cond.String()
	case MOVS, STOS:
		suffix := map[int]string{1: "b", 2: "w", 4: "d", 8: "q"}[i.strSize()]
		s := i.Mn.String() + suffix
		if i.Rep {
			s = "rep " + s
		}
		return s
	}
	return i.Mn.String()
}

// strSize returns the element width of a string instruction.
func (i *Inst) strSize() int {
	if len(i.Ops) > 0 {
		return i.Ops[0].Size
	}
	return 1
}

// String renders the instruction in Intel syntax. Branch targets are
// rendered as absolute addresses.
func (i *Inst) String() string {
	var b strings.Builder
	b.WriteString(i.Mnem())
	for n, o := range i.Ops {
		if o.Kind == OpNone {
			continue
		}
		if n == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		if (i.Mn == JMP || i.Mn == CALL || i.Mn == JCC) && o.Kind == OpImm {
			fmt.Fprintf(&b, "0x%x", uint64(o.Imm))
			continue
		}
		b.WriteString(o.String())
	}
	return b.String()
}
