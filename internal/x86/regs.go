// Package x86 provides an x86-64 instruction model together with a
// byte-accurate decoder and encoder for the instruction subset used by the
// lifter: data movement, integer ALU, shifts, multiplication/division,
// stack manipulation, direct/indirect control flow and the conditional
// families (Jcc, SETcc, CMOVcc). The paper assumes "the existence of a
// fetch function that, given an address, soundly retrieves a single
// instruction from the binary" — this package is that fetch function, and
// the encoder is its inverse, used by the synthetic corpus compiler and by
// round-trip tests.
package x86

import "fmt"

// Reg identifies a 64-bit general purpose register (or RIP). Sub-registers
// (eax, ax, al…) are represented as the 64-bit register plus an operand
// size.
type Reg uint8

// The sixteen general-purpose registers, the instruction pointer, and the
// absent-register sentinel used in memory operands.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	RIP
	RegNone Reg = 0xff
)

var regNames = [...]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15", "rip",
}

var regNames32 = [...]string{
	"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d", "eip",
}

var regNames16 = [...]string{
	"ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
	"r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w", "ip",
}

var regNames8 = [...]string{
	"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
	"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b", "ipl",
}

// String returns the canonical 64-bit name of the register.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Name returns the register name at the given operand size in bytes.
func (r Reg) Name(size int) string {
	if int(r) >= len(regNames) {
		return r.String()
	}
	switch size {
	case 1:
		return regNames8[r]
	case 2:
		return regNames16[r]
	case 4:
		return regNames32[r]
	default:
		return regNames[r]
	}
}

// GPRs lists the sixteen general-purpose registers in encoding order.
var GPRs = []Reg{
	RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI,
	R8, R9, R10, R11, R12, R13, R14, R15,
}

// CalleeSaved lists the registers the System V AMD64 calling convention
// requires callees to preserve (besides RSP, which is handled separately).
var CalleeSaved = []Reg{RBX, RBP, R12, R13, R14, R15}

// CallerSaved lists the volatile registers a call may clobber.
var CallerSaved = []Reg{RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11}

// ArgRegs lists the integer argument registers in System V order.
var ArgRegs = []Reg{RDI, RSI, RDX, RCX, R8, R9}

// IsCalleeSaved reports whether the calling convention marks r non-volatile.
func IsCalleeSaved(r Reg) bool {
	for _, c := range CalleeSaved {
		if c == r {
			return true
		}
	}
	return false
}

// Flag identifies one of the five status flags modelled by the lifter.
type Flag uint8

// The modelled status flags.
const (
	CF Flag = iota // carry
	PF             // parity
	ZF             // zero
	SF             // sign
	OF             // overflow
	NumFlags
)

var flagNames = [...]string{"cf", "pf", "zf", "sf", "of"}

// String returns the lower-case flag name.
func (f Flag) String() string {
	if int(f) < len(flagNames) {
		return flagNames[f]
	}
	return fmt.Sprintf("flag?%d", uint8(f))
}
