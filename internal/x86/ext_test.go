package x86

import "testing"

func TestDecodeExtendedISA(t *testing.T) {
	cases := []struct {
		bytes []byte
		want  string
	}{
		{[]byte{0x48, 0x0f, 0xa3, 0xc8}, "bt rax, rcx"},
		{[]byte{0x0f, 0xab, 0xc8}, "bts eax, ecx"},
		{[]byte{0x48, 0x0f, 0xb3, 0xd8}, "btr rax, rbx"},
		{[]byte{0x0f, 0xbb, 0xd0}, "btc eax, edx"},
		{[]byte{0x48, 0x0f, 0xba, 0xe0, 0x07}, "bt rax, 0x7"},
		{[]byte{0x0f, 0xba, 0xe8, 0x03}, "bts eax, 0x3"},
		{[]byte{0x48, 0x0f, 0xbc, 0xc1}, "bsf rax, rcx"},
		{[]byte{0x0f, 0xbd, 0xc1}, "bsr eax, ecx"},
		{[]byte{0xf3, 0x48, 0x0f, 0xb8, 0xc1}, "popcnt rax, rcx"},
		{[]byte{0x48, 0x0f, 0xc1, 0xc8}, "xadd rax, rcx"},
		{[]byte{0x0f, 0xc0, 0xc8}, "xadd al, cl"},
		{[]byte{0x48, 0x0f, 0xb1, 0xc8}, "cmpxchg rax, rcx"},
		{[]byte{0x0f, 0xc8}, "bswap eax"},
		{[]byte{0x48, 0x0f, 0xcb}, "bswap rbx"},
		{[]byte{0x41, 0x0f, 0xc9}, "bswap r9d"},
	}
	for _, c := range cases {
		inst, err := Decode(c.bytes, 0)
		if err != nil {
			t.Errorf("% x: %v", c.bytes, err)
			continue
		}
		if got := inst.String(); got != c.want {
			t.Errorf("% x: got %q, want %q", c.bytes, got, c.want)
		}
	}
}

func TestEncodeExtendedISARoundTrip(t *testing.T) {
	insts := []Inst{
		{Mn: BT, Ops: []Operand{RegOp(RAX, 8), RegOp(RCX, 8)}},
		{Mn: BTS, Ops: []Operand{RegOp(RDX, 4), RegOp(RBX, 4)}},
		{Mn: BTR, Ops: []Operand{MemOp(RDI, RegNone, 1, 8, 8), RegOp(RAX, 8)}},
		{Mn: BTC, Ops: []Operand{RegOp(R9, 8), RegOp(R10, 8)}},
		{Mn: BT, Ops: []Operand{RegOp(RAX, 8), ImmOp(13, 1)}},
		{Mn: BTS, Ops: []Operand{MemOp(RBP, RegNone, 1, -8, 8), ImmOp(3, 1)}},
		{Mn: BSF, Ops: []Operand{RegOp(RAX, 8), RegOp(RCX, 8)}},
		{Mn: BSR, Ops: []Operand{RegOp(R11, 4), MemOp(RSI, RegNone, 1, 0, 4)}},
		{Mn: POPCNT, Ops: []Operand{RegOp(RAX, 8), RegOp(RDI, 8)}},
		{Mn: POPCNT, Ops: []Operand{RegOp(RCX, 4), RegOp(RDX, 4)}},
		{Mn: XADD, Ops: []Operand{RegOp(RAX, 8), RegOp(RCX, 8)}},
		{Mn: XADD, Ops: []Operand{MemOp(RDI, RegNone, 1, 0, 4), RegOp(RSI, 4)}},
		{Mn: CMPXCHG, Ops: []Operand{RegOp(RBX, 8), RegOp(RCX, 8)}},
		{Mn: CMPXCHG, Ops: []Operand{MemOp(RDI, RegNone, 1, 16, 8), RegOp(RDX, 8)}},
		{Mn: BSWAP, Ops: []Operand{RegOp(RAX, 4)}},
		{Mn: BSWAP, Ops: []Operand{RegOp(R12, 8)}},
	}
	for _, inst := range insts {
		roundTrip(t, inst)
	}
}
