package x86

import (
	"encoding/binary"
	"fmt"
)

// enc accumulates the parts of one instruction encoding.
type enc struct {
	rex      byte // REX payload bits (W/R/X/B); emitted if nonzero or forced
	forceRex bool
	prefix   []byte // legacy prefixes (66, F3…)
	opcode   []byte
	modrm    byte
	hasModRM bool
	sib      byte
	hasSIB   bool
	disp     []byte
	ripRel   bool  // disp is a RIP-relative placeholder for target ripTarget
	ripTgt   int64 // absolute target
	imm      []byte
}

func (e *enc) setW() { e.rex |= 8 }

func (e *enc) opsizePrefix(size int) {
	switch size {
	case 2:
		e.prefix = append(e.prefix, 0x66)
	case 8:
		e.setW()
	}
}

// reg8NeedsREX reports whether encoding r as an 8-bit register requires a
// REX prefix to select spl/bpl/sil/dil rather than ah/ch/dh/bh.
func reg8NeedsREX(r Reg) bool { return r >= RSP && r <= RDI }

// setRegField installs r in the ModRM.reg field.
func (e *enc) setRegField(r Reg, size int) {
	if r >= 8 {
		e.rex |= 4 // REX.R
	}
	if size == 1 && reg8NeedsREX(r) {
		e.forceRex = true
	}
	e.modrm |= byte(r&7) << 3
	e.hasModRM = true
}

// setRM installs the r/m operand (register or memory form).
func (e *enc) setRM(o Operand) error {
	e.hasModRM = true
	if o.Kind == OpReg {
		if o.Reg >= 8 {
			e.rex |= 1 // REX.B
		}
		if o.Size == 1 && reg8NeedsREX(o.Reg) {
			e.forceRex = true
		}
		e.modrm |= 0xc0 | byte(o.Reg&7)
		return nil
	}
	if o.Kind != OpMem {
		return fmt.Errorf("x86: r/m operand must be register or memory, got %v", o)
	}
	if o.Base == RIP {
		e.modrm |= 0x05 // mod=00 rm=101
		e.ripRel = true
		e.ripTgt = o.Disp
		e.disp = make([]byte, 4)
		return nil
	}
	// Index register.
	needSIB := o.Index != RegNone || o.Base == RegNone || o.Base&7 == RSP&7
	if o.Index == RSP {
		return fmt.Errorf("x86: rsp cannot be an index register")
	}
	var mod byte
	switch {
	case o.Base == RegNone:
		mod = 0 // SIB with base=101, disp32
	case o.Disp == 0 && o.Base&7 != RBP&7:
		mod = 0
	case o.Disp >= -128 && o.Disp <= 127:
		mod = 1
	default:
		if o.Disp < -1<<31 || o.Disp > 1<<31-1 {
			return fmt.Errorf("x86: displacement %#x out of range", o.Disp)
		}
		mod = 2
	}
	if needSIB {
		e.modrm |= mod<<6 | 0x04
		e.hasSIB = true
		switch o.Scale {
		case 0, 1:
		case 2:
			e.sib |= 1 << 6
		case 4:
			e.sib |= 2 << 6
		case 8:
			e.sib |= 3 << 6
		default:
			return fmt.Errorf("x86: bad scale %d", o.Scale)
		}
		if o.Index == RegNone {
			e.sib |= 0x20 // index=100 (none)
		} else {
			if o.Index >= 8 {
				e.rex |= 2 // REX.X
			}
			e.sib |= byte(o.Index&7) << 3
		}
		if o.Base == RegNone {
			e.sib |= 0x05
			mod = 0
			e.modrm = e.modrm&^0xc0 | mod<<6
			e.disp = make([]byte, 4)
			binary.LittleEndian.PutUint32(e.disp, uint32(int32(o.Disp)))
			return nil
		}
		if o.Base >= 8 {
			e.rex |= 1
		}
		e.sib |= byte(o.Base & 7)
	} else {
		e.modrm |= mod<<6 | byte(o.Base&7)
		if o.Base >= 8 {
			e.rex |= 1
		}
	}
	switch mod {
	case 1:
		e.disp = []byte{byte(int8(o.Disp))}
	case 2:
		e.disp = make([]byte, 4)
		binary.LittleEndian.PutUint32(e.disp, uint32(int32(o.Disp)))
	}
	return nil
}

// putImm appends an immediate of the given byte width.
func (e *enc) putImm(v int64, size int) {
	switch size {
	case 1:
		e.imm = append(e.imm, byte(v))
	case 2:
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], uint16(v))
		e.imm = append(e.imm, b[:]...)
	case 4:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		e.imm = append(e.imm, b[:]...)
	case 8:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		e.imm = append(e.imm, b[:]...)
	}
}

// bytes serialises the encoding. addr is the virtual address of the first
// byte, needed to resolve RIP-relative displacements.
func (e *enc) bytes(addr uint64) []byte {
	out := append([]byte(nil), e.prefix...)
	if e.rex != 0 || e.forceRex {
		out = append(out, 0x40|e.rex)
	}
	out = append(out, e.opcode...)
	if e.hasModRM {
		out = append(out, e.modrm)
	}
	if e.hasSIB {
		out = append(out, e.sib)
	}
	dispOff := len(out)
	out = append(out, e.disp...)
	out = append(out, e.imm...)
	if e.ripRel {
		rel := e.ripTgt - int64(addr) - int64(len(out))
		binary.LittleEndian.PutUint32(out[dispOff:], uint32(int32(rel)))
	}
	return out
}

// aluBase maps ALU mnemonics to their classic opcode row base.
var aluBase = map[Mnemonic]byte{
	ADD: 0x00, OR: 0x08, ADC: 0x10, SBB: 0x18,
	AND: 0x20, SUB: 0x28, XOR: 0x30, CMP: 0x38,
}

// aluExt maps ALU mnemonics to the /reg extension of opcodes 80/81/83.
var aluExt = map[Mnemonic]byte{
	ADD: 0, OR: 1, ADC: 2, SBB: 3, AND: 4, SUB: 5, XOR: 6, CMP: 7,
}

// shiftExt maps shift mnemonics to the /reg extension of C0/C1/D2/D3.
var shiftExt = map[Mnemonic]byte{ROL: 0, ROR: 1, SHL: 4, SHR: 5, SAR: 7}

// Encode produces the byte encoding of inst. For CALL/JMP/JCC with
// immediate operands the immediate must hold the absolute target and
// inst.Addr the instruction address (matching what Decode produces);
// rel32 forms are always chosen. Returns an error for shapes outside the
// supported subset.
func Encode(inst Inst) ([]byte, error) {
	e := &enc{}
	ops := inst.Ops
	sz := func(i int) int { return ops[i].Size }

	switch inst.Mn {
	case NOP:
		return []byte{0x90}, nil
	case RET:
		if len(ops) == 1 {
			out := []byte{0xc2, 0, 0}
			binary.LittleEndian.PutUint16(out[1:], uint16(ops[0].Imm))
			return out, nil
		}
		return []byte{0xc3}, nil
	case LEAVE:
		return []byte{0xc9}, nil
	case INT3:
		return []byte{0xcc}, nil
	case HLT:
		return []byte{0xf4}, nil
	case UD2:
		return []byte{0x0f, 0x0b}, nil
	case SYSCALL:
		return []byte{0x0f, 0x05}, nil
	case ENDBR64:
		return []byte{0xf3, 0x0f, 0x1e, 0xfa}, nil
	case MOVS, STOS:
		op := byte(0xa4)
		if inst.Mn == STOS {
			op = 0xaa
		}
		size := 1
		if len(ops) > 0 {
			size = ops[0].Size
		}
		if size > 1 {
			op++
		}
		var out []byte
		if inst.Rep {
			out = append(out, 0xf3)
		}
		switch size {
		case 2:
			out = append(out, 0x66)
		case 8:
			out = append(out, 0x48)
		}
		return append(out, op), nil
	case CDQE:
		return []byte{0x48, 0x98}, nil
	case CDQ:
		return []byte{0x99}, nil
	case CQO:
		return []byte{0x48, 0x99}, nil

	case PUSH:
		switch {
		case len(ops) == 1 && ops[0].Kind == OpReg:
			if ops[0].Reg >= 8 {
				e.rex |= 1
			}
			e.opcode = []byte{0x50 + byte(ops[0].Reg&7)}
			return e.bytes(inst.Addr), nil
		case len(ops) == 1 && ops[0].Kind == OpImm:
			if ops[0].Size == 1 {
				return []byte{0x6a, byte(ops[0].Imm)}, nil
			}
			out := []byte{0x68, 0, 0, 0, 0}
			binary.LittleEndian.PutUint32(out[1:], uint32(int32(ops[0].Imm)))
			return out, nil
		case len(ops) == 1 && ops[0].Kind == OpMem:
			e.opcode = []byte{0xff}
			e.modrm = 6 << 3
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	case POP:
		if len(ops) == 1 && ops[0].Kind == OpReg {
			if ops[0].Reg >= 8 {
				e.rex |= 1
			}
			e.opcode = []byte{0x58 + byte(ops[0].Reg&7)}
			return e.bytes(inst.Addr), nil
		}
		if len(ops) == 1 && ops[0].Kind == OpMem {
			e.opcode = []byte{0x8f}
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}

	case CALL, JMP:
		if len(ops) == 1 && ops[0].Kind == OpImm {
			op := byte(0xe8)
			if inst.Mn == JMP {
				op = 0xe9
			}
			out := []byte{op, 0, 0, 0, 0}
			rel := ops[0].Imm - int64(inst.Addr) - int64(len(out))
			binary.LittleEndian.PutUint32(out[1:], uint32(int32(rel)))
			return out, nil
		}
		if len(ops) == 1 && (ops[0].Kind == OpMem || ops[0].Kind == OpReg) {
			ext := byte(2)
			if inst.Mn == JMP {
				ext = 4
			}
			e.opcode = []byte{0xff}
			e.modrm = ext << 3
			rm := ops[0]
			rm.Size = 4 // default-64 operand: no REX.W
			if err := e.setRM(rm); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	case JCC:
		if len(ops) == 1 && ops[0].Kind == OpImm {
			out := []byte{0x0f, 0x80 + byte(inst.Cond), 0, 0, 0, 0}
			rel := ops[0].Imm - int64(inst.Addr) - int64(len(out))
			binary.LittleEndian.PutUint32(out[2:], uint32(int32(rel)))
			return out, nil
		}
	case SETCC:
		if len(ops) == 1 {
			e.opcode = []byte{0x0f, 0x90 + byte(inst.Cond)}
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	case CMOVCC:
		if len(ops) == 2 && ops[0].Kind == OpReg {
			e.opsizePrefix(sz(0))
			e.opcode = []byte{0x0f, 0x40 + byte(inst.Cond)}
			e.setRegField(ops[0].Reg, sz(0))
			if err := e.setRM(ops[1]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}

	case MOV:
		return encodeMov(e, inst)
	case MOVZX, MOVSX:
		if len(ops) == 2 && ops[0].Kind == OpReg && sz(1) <= 2 {
			e.opsizePrefix(sz(0))
			op := byte(0xb6)
			if inst.Mn == MOVSX {
				op = 0xbe
			}
			if sz(1) == 2 {
				op++
			}
			e.opcode = []byte{0x0f, op}
			e.setRegField(ops[0].Reg, sz(0))
			if err := e.setRM(ops[1]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	case MOVSXD:
		if len(ops) == 2 && ops[0].Kind == OpReg {
			e.setW()
			e.opcode = []byte{0x63}
			e.setRegField(ops[0].Reg, 8)
			if err := e.setRM(ops[1]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	case LEA:
		if len(ops) == 2 && ops[0].Kind == OpReg && ops[1].Kind == OpMem {
			e.opsizePrefix(sz(0))
			e.opcode = []byte{0x8d}
			e.setRegField(ops[0].Reg, sz(0))
			if err := e.setRM(ops[1]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}

	case ADD, OR, ADC, SBB, AND, SUB, XOR, CMP:
		return encodeALU(e, inst)
	case TEST:
		return encodeTest(e, inst)
	case NOT, NEG, MUL, DIV, IDIV:
		ext := map[Mnemonic]byte{NOT: 2, NEG: 3, MUL: 4, DIV: 6, IDIV: 7}[inst.Mn]
		if len(ops) == 1 {
			op := byte(0xf7)
			if sz(0) == 1 {
				op = 0xf6
			} else {
				e.opsizePrefix(sz(0))
			}
			e.opcode = []byte{op}
			e.modrm = ext << 3
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	case IMUL:
		switch len(ops) {
		case 1:
			op := byte(0xf7)
			if sz(0) == 1 {
				op = 0xf6
			} else {
				e.opsizePrefix(sz(0))
			}
			e.opcode = []byte{op}
			e.modrm = 5 << 3
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		case 2:
			e.opsizePrefix(sz(0))
			e.opcode = []byte{0x0f, 0xaf}
			e.setRegField(ops[0].Reg, sz(0))
			if err := e.setRM(ops[1]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		case 3:
			e.opsizePrefix(sz(0))
			if ops[2].Size == 1 {
				e.opcode = []byte{0x6b}
			} else {
				e.opcode = []byte{0x69}
			}
			e.setRegField(ops[0].Reg, sz(0))
			if err := e.setRM(ops[1]); err != nil {
				return nil, err
			}
			e.putImm(ops[2].Imm, ops[2].Size)
			return e.bytes(inst.Addr), nil
		}
	case INC, DEC:
		if len(ops) == 1 {
			op := byte(0xff)
			if sz(0) == 1 {
				op = 0xfe
			} else {
				e.opsizePrefix(sz(0))
			}
			e.opcode = []byte{op}
			if inst.Mn == DEC {
				e.modrm = 1 << 3
			}
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	case SHL, SHR, SAR, ROL, ROR:
		ext := shiftExt[inst.Mn]
		if len(ops) == 2 {
			byCL := ops[1].Kind == OpReg && ops[1].Reg == RCX
			var op byte
			switch {
			case sz(0) == 1 && byCL:
				op = 0xd2
			case byCL:
				op = 0xd3
				e.opsizePrefix(sz(0))
			case sz(0) == 1:
				op = 0xc0
			default:
				op = 0xc1
				e.opsizePrefix(sz(0))
			}
			e.opcode = []byte{op}
			e.modrm = ext << 3
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			if !byCL {
				e.putImm(ops[1].Imm, 1)
			}
			return e.bytes(inst.Addr), nil
		}
	case BT, BTS, BTR, BTC:
		ops2 := map[Mnemonic]byte{BT: 0xa3, BTS: 0xab, BTR: 0xb3, BTC: 0xbb}
		exts := map[Mnemonic]byte{BT: 4, BTS: 5, BTR: 6, BTC: 7}
		if len(ops) == 2 && ops[1].Kind == OpReg {
			e.opsizePrefix(sz(0))
			e.opcode = []byte{0x0f, ops2[inst.Mn]}
			e.setRegField(ops[1].Reg, sz(1))
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
		if len(ops) == 2 && ops[1].Kind == OpImm {
			e.opsizePrefix(sz(0))
			e.opcode = []byte{0x0f, 0xba}
			e.modrm = exts[inst.Mn] << 3
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			e.putImm(ops[1].Imm, 1)
			return e.bytes(inst.Addr), nil
		}
	case BSF, BSR:
		if len(ops) == 2 && ops[0].Kind == OpReg {
			op := byte(0xbc)
			if inst.Mn == BSR {
				op = 0xbd
			}
			e.opsizePrefix(sz(0))
			e.opcode = []byte{0x0f, op}
			e.setRegField(ops[0].Reg, sz(0))
			if err := e.setRM(ops[1]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	case POPCNT:
		if len(ops) == 2 && ops[0].Kind == OpReg {
			e.prefix = append(e.prefix, 0xf3)
			e.opsizePrefix(sz(0))
			e.opcode = []byte{0x0f, 0xb8}
			e.setRegField(ops[0].Reg, sz(0))
			if err := e.setRM(ops[1]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	case XADD, CMPXCHG:
		if len(ops) == 2 && ops[1].Kind == OpReg {
			var op byte
			if inst.Mn == XADD {
				op = 0xc1
				if sz(0) == 1 {
					op = 0xc0
				}
			} else {
				op = 0xb1
				if sz(0) == 1 {
					op = 0xb0
				}
			}
			if sz(0) > 1 {
				e.opsizePrefix(sz(0))
			}
			e.opcode = []byte{0x0f, op}
			e.setRegField(ops[1].Reg, sz(1))
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	case BSWAP:
		if len(ops) == 1 && ops[0].Kind == OpReg {
			e.opsizePrefix(sz(0))
			if ops[0].Reg >= 8 {
				e.rex |= 1
			}
			e.opcode = []byte{0x0f, 0xc8 + byte(ops[0].Reg&7)}
			return e.bytes(inst.Addr), nil
		}
	case XCHG:
		if len(ops) == 2 {
			op := byte(0x87)
			if sz(0) == 1 {
				op = 0x86
			} else {
				e.opsizePrefix(sz(0))
			}
			e.opcode = []byte{op}
			// r/m first operand, reg second.
			if ops[1].Kind != OpReg {
				return nil, fmt.Errorf("x86: xchg second operand must be a register")
			}
			e.setRegField(ops[1].Reg, sz(1))
			if err := e.setRM(ops[0]); err != nil {
				return nil, err
			}
			return e.bytes(inst.Addr), nil
		}
	}
	return nil, fmt.Errorf("x86: cannot encode %s", inst.String())
}

func encodeMov(e *enc, inst Inst) ([]byte, error) {
	ops := inst.Ops
	if len(ops) != 2 {
		return nil, fmt.Errorf("x86: mov needs 2 operands")
	}
	dst, src := ops[0], ops[1]
	switch {
	case src.Kind == OpImm && dst.Kind == OpReg:
		if dst.Size == 8 && (src.Imm > 1<<31-1 || src.Imm < -1<<31 || src.Size == 8) {
			// movabs r64, imm64
			e.setW()
			if dst.Reg >= 8 {
				e.rex |= 1
			}
			e.opcode = []byte{0xb8 + byte(dst.Reg&7)}
			e.putImm(src.Imm, 8)
			return e.bytes(inst.Addr), nil
		}
		if dst.Size == 1 {
			if dst.Reg >= 8 {
				e.rex |= 1
			}
			if reg8NeedsREX(dst.Reg) {
				e.forceRex = true
			}
			e.opcode = []byte{0xb0 + byte(dst.Reg&7)}
			e.putImm(src.Imm, 1)
			return e.bytes(inst.Addr), nil
		}
		// c7 /0 sign-extends imm32 for 64-bit.
		e.opsizePrefix(dst.Size)
		e.opcode = []byte{0xc7}
		if err := e.setRM(dst); err != nil {
			return nil, err
		}
		isz := dst.Size
		if isz == 8 {
			isz = 4
		}
		e.putImm(src.Imm, isz)
		return e.bytes(inst.Addr), nil
	case src.Kind == OpImm && dst.Kind == OpMem:
		op := byte(0xc7)
		if dst.Size == 1 {
			op = 0xc6
		} else {
			e.opsizePrefix(dst.Size)
		}
		e.opcode = []byte{op}
		if err := e.setRM(dst); err != nil {
			return nil, err
		}
		isz := dst.Size
		if isz == 8 {
			isz = 4
		}
		e.putImm(src.Imm, isz)
		return e.bytes(inst.Addr), nil
	case src.Kind == OpReg:
		op := byte(0x89)
		if src.Size == 1 {
			op = 0x88
		} else {
			e.opsizePrefix(src.Size)
		}
		e.opcode = []byte{op}
		e.setRegField(src.Reg, src.Size)
		if err := e.setRM(dst); err != nil {
			return nil, err
		}
		return e.bytes(inst.Addr), nil
	case dst.Kind == OpReg && src.Kind == OpMem:
		op := byte(0x8b)
		if dst.Size == 1 {
			op = 0x8a
		} else {
			e.opsizePrefix(dst.Size)
		}
		e.opcode = []byte{op}
		e.setRegField(dst.Reg, dst.Size)
		if err := e.setRM(src); err != nil {
			return nil, err
		}
		return e.bytes(inst.Addr), nil
	}
	return nil, fmt.Errorf("x86: cannot encode mov %v, %v", dst, src)
}

func encodeALU(e *enc, inst Inst) ([]byte, error) {
	ops := inst.Ops
	if len(ops) != 2 {
		return nil, fmt.Errorf("x86: %s needs 2 operands", inst.Mn)
	}
	dst, src := ops[0], ops[1]
	base := aluBase[inst.Mn]
	switch {
	case src.Kind == OpImm:
		// Short accumulator forms: op al, imm8 / op eax, imm32.
		if dst.Kind == OpReg && dst.Reg == RAX {
			if dst.Size == 1 && src.Size == 1 {
				e.opcode = []byte{base + 4}
				e.putImm(src.Imm, 1)
				return e.bytes(inst.Addr), nil
			}
			if dst.Size > 1 && src.Size > 1 {
				e.opsizePrefix(dst.Size)
				e.opcode = []byte{base + 5}
				isz := dst.Size
				if isz == 8 {
					isz = 4
				}
				e.putImm(src.Imm, isz)
				return e.bytes(inst.Addr), nil
			}
		}
		var op byte
		switch {
		case dst.Size == 1:
			op = 0x80
		case src.Size == 1:
			op = 0x83
			e.opsizePrefix(dst.Size)
		default:
			op = 0x81
			e.opsizePrefix(dst.Size)
		}
		e.opcode = []byte{op}
		e.modrm = aluExt[inst.Mn] << 3
		if err := e.setRM(dst); err != nil {
			return nil, err
		}
		isz := src.Size
		if isz == 8 {
			isz = 4
		}
		e.putImm(src.Imm, isz)
		return e.bytes(inst.Addr), nil
	case src.Kind == OpReg:
		op := base + 1
		if src.Size == 1 {
			op = base
		} else {
			e.opsizePrefix(src.Size)
		}
		e.opcode = []byte{op}
		e.setRegField(src.Reg, src.Size)
		if err := e.setRM(dst); err != nil {
			return nil, err
		}
		return e.bytes(inst.Addr), nil
	case dst.Kind == OpReg && src.Kind == OpMem:
		op := base + 3
		if dst.Size == 1 {
			op = base + 2
		} else {
			e.opsizePrefix(dst.Size)
		}
		e.opcode = []byte{op}
		e.setRegField(dst.Reg, dst.Size)
		if err := e.setRM(src); err != nil {
			return nil, err
		}
		return e.bytes(inst.Addr), nil
	}
	return nil, fmt.Errorf("x86: cannot encode %s %v, %v", inst.Mn, dst, src)
}

func encodeTest(e *enc, inst Inst) ([]byte, error) {
	ops := inst.Ops
	if len(ops) != 2 {
		return nil, fmt.Errorf("x86: test needs 2 operands")
	}
	dst, src := ops[0], ops[1]
	switch {
	case src.Kind == OpReg:
		op := byte(0x85)
		if src.Size == 1 {
			op = 0x84
		} else {
			e.opsizePrefix(src.Size)
		}
		e.opcode = []byte{op}
		e.setRegField(src.Reg, src.Size)
		if err := e.setRM(dst); err != nil {
			return nil, err
		}
		return e.bytes(inst.Addr), nil
	case src.Kind == OpImm:
		op := byte(0xf7)
		if dst.Size == 1 {
			op = 0xf6
		} else {
			e.opsizePrefix(dst.Size)
		}
		e.opcode = []byte{op}
		if err := e.setRM(dst); err != nil {
			return nil, err
		}
		isz := dst.Size
		if isz == 8 {
			isz = 4
		}
		e.putImm(src.Imm, isz)
		return e.bytes(inst.Addr), nil
	}
	return nil, fmt.Errorf("x86: cannot encode test %v, %v", dst, src)
}
