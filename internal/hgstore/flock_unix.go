//go:build unix

package hgstore

// Cross-process serialisation of the read-merge-write flush cycle. The
// in-process mutex only protects one *Store; two processes sharing a store
// file (the hgserved daemon plus an hglift -store run, or two concurrent
// CLI runs) used to race each other through a fixed <path>.tmp and a
// blind whole-container overwrite — the later rename silently dropped the
// earlier process's entries. An advisory flock on a sidecar lock file
// closes the race: whoever holds it owns the read-merge-write window.
//
// The lock lives on <path>.lock rather than the container itself because
// the container is replaced by rename on every flush: a lock taken on the
// old inode would not exclude a writer that already renamed a new file
// into place. The sidecar is created once and never renamed, so its inode
// is stable for every process.

import (
	"fmt"
	"os"
	"syscall"
)

// fileLock holds an acquired advisory lock.
type fileLock struct {
	f *os.File
}

// acquireFileLock blocks until the exclusive advisory lock on path's
// sidecar lock file is held. The lock is per open-file-description, so two
// *Store handles in one process exclude each other the same way two
// processes do.
func acquireFileLock(path string) (*fileLock, error) {
	f, err := os.OpenFile(path+lockSuffix, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hgstore: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("hgstore: flock %s: %w", f.Name(), err)
	}
	return &fileLock{f: f}, nil
}

// release drops the lock. Closing the descriptor releases the flock; the
// explicit unlock first keeps the window tight when the close is delayed
// by the finaliser path.
func (l *fileLock) release() {
	syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	l.f.Close()
}
