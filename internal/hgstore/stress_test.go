package hgstore_test

// Cross-process write-race coverage: the bugfix this file pins replaced
// the fixed <path>.tmp + blind-overwrite flush with unique tmp names, an
// advisory file lock around the read-merge-write cycle, and
// merge-on-flush union semantics. Two real processes (this test binary
// re-executed, the internal/dist idiom) hammer one store path
// concurrently; every entry either process wrote must be present and
// decodable afterwards — zero lost entries, zero decode errors.

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hgstore"
	"repro/internal/image"
)

// The child environment: path of the shared store, the child's key-space
// base (keeps the two writers' keys disjoint), and how many entries to
// put. stressChild hijacks the process in TestMain, like dist.MaybeWorker.
const (
	stressEnv      = "REPRO_HGSTORE_STRESS"
	stressPathEnv  = "REPRO_HGSTORE_STRESS_PATH"
	stressBaseEnv  = "REPRO_HGSTORE_STRESS_BASE"
	stressCountEnv = "REPRO_HGSTORE_STRESS_COUNT"
)

func TestMain(m *testing.M) {
	stressChild()
	os.Exit(m.Run())
}

// stressEntry lifts the first corpus scenario and packages it as a store
// entry; the synthetic stress keys reuse its config fingerprint and
// address, so lookups decode against the scenario image.
func stressEntry() (*hgstore.Entry, hgstore.Key, *image.Image, error) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		return nil, hgstore.Key{}, nil, err
	}
	s := scenarios[0]
	l := core.New(s.Image, core.DefaultConfig())
	fr := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
	fr.Duration = time.Millisecond
	e := &hgstore.Entry{
		Status:     fr.Status,
		Graph:      fr.Stats(),
		Sem:        l.Counters(),
		Wall:       time.Millisecond,
		Duration:   fr.Duration,
		Funcs:      []*core.FuncResult{fr},
		EntryIndex: -1,
	}
	return e, hgstore.TaskKey(s.Image, s.FuncAddr, false, nil), s.Image, nil
}

// stressChild runs one writer process when the stress environment is set,
// never returning in that case: open the shared store, lift one scenario,
// and put it under count synthetic keys offset from base. Every Put goes
// through the full locked read-merge-write cycle, exactly like a
// concurrent hglift -store run next to a daemon.
func stressChild() {
	if os.Getenv(stressEnv) != "1" {
		return
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "stress child:", err)
		os.Exit(1)
	}
	base, err := strconv.ParseUint(os.Getenv(stressBaseEnv), 10, 64)
	if err != nil {
		fail(err)
	}
	count, err := strconv.Atoi(os.Getenv(stressCountEnv))
	if err != nil {
		fail(err)
	}
	st, err := hgstore.Open(os.Getenv(stressPathEnv))
	if err != nil {
		fail(err)
	}
	e, key, img, err := stressEntry()
	if err != nil {
		fail(err)
	}
	for i := 0; i < count; i++ {
		k := key
		k.Code = base + uint64(i)
		if _, err := st.Put(k, e, img); err != nil {
			fail(fmt.Errorf("put %d: %w", i, err))
		}
	}
	os.Exit(0)
}

// TestStoreTwoProcessStress is the acceptance test of the flush-race
// bugfix: two real OS processes interleave dozens of read-merge-write
// cycles on one store path, and the surviving container must hold every
// entry both of them wrote, each still decodable. Before the fix the two
// writers shared one <path>.tmp and overwrote instead of merging, so one
// process's entries were silently dropped.
func TestStoreTwoProcessStress(t *testing.T) {
	const perChild = 24
	path := filepath.Join(t.TempDir(), "shared.hgcs")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	bases := []uint64{1 << 32, 2 << 32}
	var wg sync.WaitGroup
	errs := make([]error, len(bases))
	outs := make([]string, len(bases))
	for i, base := range bases {
		wg.Add(1)
		go func(i int, base uint64) {
			defer wg.Done()
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				stressEnv+"=1",
				stressPathEnv+"="+path,
				stressBaseEnv+"="+strconv.FormatUint(base, 10),
				stressCountEnv+"="+strconv.Itoa(perChild),
			)
			out, err := cmd.CombinedOutput()
			errs[i], outs[i] = err, string(out)
		}(i, base)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("child %d failed: %v\n%s", i, errs[i], outs[i])
		}
	}

	st, err := hgstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped() != 0 {
		t.Fatalf("reopened store dropped %d records", st.Dropped())
	}
	if got, want := st.Len(), len(bases)*perChild; got != want {
		t.Fatalf("lost entries: store holds %d, want %d", got, want)
	}
	_, key, img, err := stressEntry()
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range bases {
		for i := 0; i < perChild; i++ {
			k := key
			k.Code = base + uint64(i)
			if e, _, _, reason := st.Lookup(k, img); e == nil {
				t.Fatalf("entry %#x lost or undecodable: %s", k.Code, reason)
			}
		}
	}
	// No writer may leave a temp file behind once its flushes are done.
	assertNoStrayTmps(t, path)
}

// TestStoreTwoHandleConcurrentFlush runs the same race in-process: two
// independent *Store handles on one path (each with its own mutex, so
// only the file lock and merge semantics serialise them) put concurrently
// from several goroutines. Run under -race in CI.
func TestStoreTwoHandleConcurrentFlush(t *testing.T) {
	const perHandle = 16
	path := filepath.Join(t.TempDir(), "shared.hgcs")
	var wg sync.WaitGroup
	for h := 0; h < 2; h++ {
		st, err := hgstore.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		// Sealing mutates the entry, so each handle puts its own (see
		// Store.Put); only the key space is shared.
		e, key, img, err := stressEntry()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h int, st *hgstore.Store) {
			defer wg.Done()
			for i := 0; i < perHandle; i++ {
				k := key
				k.Code = uint64(h)<<32 + uint64(i)
				if _, err := st.Put(k, e, img); err != nil {
					t.Errorf("handle %d put %d: %v", h, i, err)
				}
			}
		}(h, st)
	}
	wg.Wait()
	st, err := hgstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Len(), 2*perHandle; got != want {
		t.Fatalf("lost entries: store holds %d, want %d", got, want)
	}
	assertNoStrayTmps(t, path)
}

// TestStoreSweepsStaleTmps pins the crash-recovery sweep: tmp files
// stranded between CreateTemp and Rename — and the fixed-name tmp older
// writers used — are removed by the next Open.
func TestStoreSweepsStaleTmps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hgcs")
	for _, stray := range []string{path + ".tmp", path + ".tmp-12345"} {
		if err := os.WriteFile(stray, []byte("stranded"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated neighbour must survive the sweep.
	neighbour := filepath.Join(filepath.Dir(path), "other.hgcs.tmp-1")
	if err := os.WriteFile(neighbour, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := hgstore.Open(path); err != nil {
		t.Fatal(err)
	}
	assertNoStrayTmps(t, path)
	if _, err := os.Stat(neighbour); err != nil {
		t.Fatalf("sweep removed an unrelated file: %v", err)
	}
}

// TestStoreRenameFailureRemovesTmp forces the rename itself to fail (the
// destination becomes a directory) and checks the flush cleans up its own
// tmp file instead of stranding it.
func TestStoreRenameFailureRemovesTmp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hgcs")
	st, err := hgstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e, key, img, err := stressEntry()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(key, e, img); err != nil {
		t.Fatal(err)
	}
	// Replace the container with a directory: the next flush's rename
	// must fail and must not leave its tmp file behind.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	k2 := key
	k2.Code++
	if _, err := st.Put(k2, e, img); err == nil {
		t.Fatal("flush over a directory succeeded, want error")
	}
	assertNoStrayTmps(t, path)
}

// TestStoreBufferedFlush pins the daemon's write mode: with auto-flush
// off, Puts stay in memory until Flush persists them all in one cycle,
// and a clean Flush with nothing new is a no-op.
func TestStoreBufferedFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hgcs")
	st, err := hgstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st.SetAutoFlush(false)
	e, key, img, err := stressEntry()
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		k := key
		k.Code = uint64(i)
		if _, err := st.Put(k, e, img); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("buffered put reached disk early: %v", err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	reopened, err := hgstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != n {
		t.Fatalf("flushed store holds %d entries, want %d", reopened.Len(), n)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil { // nothing dirty: must not rewrite
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("clean Flush rewrote the container")
	}
}

// assertNoStrayTmps fails if any temp file survives next to the store.
func assertNoStrayTmps(t *testing.T, path string) {
	t.Helper()
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), base+".tmp") {
			t.Fatalf("stray temp file left behind: %s", ent.Name())
		}
	}
}
