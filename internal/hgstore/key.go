// Package hgstore is the function-level content-addressed cache of lifted
// Hoare graphs: the "incremental lifting" piece of the roadmap. The
// paper's CI scenario re-lifts overlapping corpora in which most functions
// are byte-identical between runs, yet Step 1 pays the full
// symbolic-execution cost every time. Because each function is lifted
// context-free from the exact same initial state, a lift's outcome is a
// pure function of (the code bytes it read, the lifter configuration, the
// lifter itself) — so the triple is a sound cache key, and a cached graph
// is as trustworthy as a fresh one: Step 2 can always re-verify it without
// trusting the writer.
//
// Storage is a single compact container file ("HGCS" v1) reusing the PR 6
// wire codecs: one interned-expression table per entry (shared subterms
// emitted once, decode restores pointer identity through the smart
// constructors) and the binary Hoare-graph record of internal/hoare. A
// checksum guards every payload; corrupt, truncated, or
// version-mismatched entries are misses, never errors.
package hgstore

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/image"
	"repro/internal/wire"
)

// LifterVersion names the lifter + semantics generation whose outputs the
// store holds. Bump it whenever a change to the lifter, the semantics, or
// the wire formats could alter a lift's outcome or its encoding: entries
// stamped with another version are dropped on open (a miss, not an
// error), so a stale store heals itself by re-lifting.
const LifterVersion = "hg-lifter/2"

// Key addresses one cached lift outcome. Two lifts with equal keys read
// the same primary code bytes under the same configuration and lifter
// generation; the entry's dependency ranges (see entry.go) close the gap
// for callee code the primary hash does not cover.
type Key struct {
	// Code is the content hash of the task's primary code bytes: the
	// function's own bytes (function tasks) or the whole ELF (binary
	// tasks), mixed with the entry address.
	Code uint64
	// Cfg is the configuration fingerprint (ConfigFingerprint).
	Cfg uint64
	// Addr is the function entry address (0 for binary tasks).
	Addr uint64
	// Binary distinguishes whole-binary lifts from single-function lifts.
	Binary bool
}

// hashSeed is an arbitrary odd constant separating the store's hash
// domain from the expression fingerprints built on the same mixer.
const hashSeed uint64 = 0x9e3779b97f4a7c15

// hashBytes folds b into h, eight bytes at a time through the splitmix64
// avalanche of expr.MixFP, with the tail length mixed in so prefixes hash
// differently from their extensions.
func hashBytes(h uint64, b []byte) uint64 {
	for len(b) >= 8 {
		h = expr.MixFP(h, binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	var tail uint64
	for i := 0; i < len(b); i++ {
		tail |= uint64(b[i]) << (8 * i)
	}
	return expr.MixFP(h, tail|uint64(len(b))<<56)
}

// hashExec folds every executable section (address and contents) into h:
// the conservative fallback when a function's own extent is unknown.
func hashExec(h uint64, img *image.Image) uint64 {
	for _, s := range img.File().Sections {
		if s.Flags&4 == 0 || s.Data == nil { // SHF_EXECINSTR
			continue
		}
		h = expr.MixFP(h, s.Addr)
		h = hashBytes(h, s.Data)
	}
	return h
}

// symbolSize returns the size of the function symbol at addr, or 0 when
// the binary carries none (stripped, or a toolchain emitting size-0
// symbols).
func symbolSize(img *image.Image, addr uint64) uint64 {
	for _, s := range img.FuncSymbols() {
		if s.Value == addr && s.Size > 0 {
			return s.Size
		}
	}
	return 0
}

// CodeHash computes the primary code hash of a task. Binary tasks hash
// the raw ELF (every byte of the file is reachable input: entry point,
// section layout, all code); function tasks hash the function's own bytes
// when the symbol table gives their extent, falling back to every
// executable section otherwise — a coarser key that still never returns a
// wrong hit, only more misses.
func CodeHash(img *image.Image, addr uint64, binary bool) uint64 {
	if binary {
		h := expr.MixFP(hashSeed, img.Entry())
		if raw := img.Raw(); raw != nil {
			return hashBytes(h, raw)
		}
		return hashExec(h, img)
	}
	h := expr.MixFP(^hashSeed, addr)
	if size := symbolSize(img, addr); size > 0 {
		if b, ok := img.File().ReadAt(addr, int(size)); ok {
			return hashBytes(h, b)
		}
	}
	return hashExec(h, img)
}

// ConfigFingerprint hashes every configuration field that can change a
// lift's outcome. Wall-clock fields (core.Config.Timeout) are excluded:
// outcomes that depend on them are never stored (see entry.go), so two
// runs differing only in wall budget share entries. The solver cache and
// tracer are excluded for the same reason — they are observers, not
// semantics.
func ConfigFingerprint(cfg *core.Config) uint64 {
	c := core.DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	var buf []byte
	buf = appendBool(buf, c.Sem.MM.ForkUnknown)
	buf = appendBool(buf, c.Sem.MM.AssumePartialImpossible)
	buf = wire.AppendUvarint(buf, uint64(c.Sem.MM.MaxModels))
	buf = wire.AppendUvarint(buf, uint64(c.Sem.MaxTableEntries))
	buf = appendBool(buf, c.Sem.AssumeBaseSeparation)
	buf = wire.AppendUvarint(buf, uint64(c.MaxStates))
	buf = appendBool(buf, c.NoJoin)
	buf = appendBool(buf, c.JoinCodePointers)
	buf = wire.AppendUvarint(buf, uint64(len(c.Terminating)))
	for _, s := range c.Terminating {
		buf = wire.AppendString(buf, s)
	}
	buf = wire.AppendUvarint(buf, uint64(len(c.ConcurrencyPrefixes)))
	for _, s := range c.ConcurrencyPrefixes {
		buf = wire.AppendString(buf, s)
	}
	buf = appendBool(buf, c.PointerFacts)
	return hashBytes(hashSeed, buf)
}

// TaskKey assembles the full cache key for one pipeline task.
func TaskKey(img *image.Image, addr uint64, binary bool, cfg *core.Config) Key {
	return Key{
		Code:   CodeHash(img, addr, binary),
		Cfg:    ConfigFingerprint(cfg),
		Addr:   addr,
		Binary: binary,
	}
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func decodeBool(d *wire.Decoder, what string) bool {
	switch d.Byte(what) {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Failf("%s flag is neither 0 nor 1", what)
		return false
	}
}
