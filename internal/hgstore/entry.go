package hgstore

// The entry payload: one cached pipeline-task outcome. The payload
// restores everything the scheduler would have produced by lifting —
// status, statistics replay (graph counts, solver/fork counters, original
// wall time), and the function results with their Hoare graphs — so a
// warm run's tables are byte-identical to the cold run's.
//
// Payload grammar (integers are uvarints unless noted; EXPR-TABLE and
// GRAPH are the PR 6 wire formats of internal/expr and internal/hoare):
//
//	payload = status(byte)
//	          graph-stats          10 uvarints, hoare.Stats field order
//	          sem-counters         6 uvarints
//	          wall-ns duration-ns
//	          dep-count (addr len)* dep-hash(u64 raw)
//	          EXPR-TABLE
//	          func-count funcrec*
//	          entry-index+1        0 = function task (no binary entry)
//	funcrec = name addr status(byte) returns(bool) steps
//	          reason-count reason* duration-ns has-graph GRAPH?
//
// The dependency ranges are the union of every instruction the lift
// decoded, merged into contiguous runs, with a content hash over their
// bytes. The primary key only covers the task's own code bytes; the
// ranges close the soundness gap for callees and helpers a function task
// explored: Lookup re-reads the ranges from the current image and treats
// any drift as a (stale) miss, so editing a callee re-lifts its callers
// even though their own bytes are unchanged.

import (
	"errors"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/sem"
	"repro/internal/wire"
)

// ErrStale marks an entry whose dependency code bytes no longer match the
// image: structurally valid, semantically outdated.
var ErrStale = errors.New("hgstore: entry is stale (dependency code bytes changed)")

// Entry is one decoded cached outcome.
type Entry struct {
	// Status is the task-level outcome (the binary's status for binary
	// tasks, the function's otherwise).
	Status core.Status
	// Graph, Sem and Wall replay the lift's statistics record exactly as
	// the cold run measured it — Joins included, which a decoded graph
	// cannot recompute (the wire format stores invariants, not join
	// counts) — so warm summaries aggregate identically to cold ones.
	Graph hoare.Stats
	Sem   sem.Counters
	// Wall is the original lift's wall time, Duration the binary task's
	// total (== Funcs[0].Duration for function tasks).
	Wall     time.Duration
	Duration time.Duration
	// Funcs holds the function results: exactly one for function tasks,
	// every explored function (in address order) for binary tasks.
	Funcs []*core.FuncResult
	// EntryIndex is the index in Funcs of the binary's entry function;
	// -1 for function tasks.
	EntryIndex int

	deps    []depRun
	depHash uint64
}

// depRun is one contiguous range of instruction bytes the lift depends on.
type depRun struct {
	addr uint64
	size uint64
}

// Storable reports whether a lift outcome may be cached. Panics and
// cancellations are infrastructure accidents, not properties of the
// binary. Timeouts are stored only when no wall-clock budget was in force:
// a step-budget timeout (core.Config.MaxStates) is deterministic, which is
// what lets a warm Table 1 — whose corpus includes budget-exhausted units
// by design — hit on every task; a wall-clock timeout is a property of the
// machine and the moment.
func Storable(status core.Status, wallBudget bool) bool {
	switch status {
	case core.StatusPanic, core.StatusCancelled:
		return false
	case core.StatusTimeout:
		return !wallBudget
	default:
		return true
	}
}

// Seal computes the entry's dependency ranges and their content hash from
// the graphs' decoded instructions, reading the bytes back from the image
// the lift ran against. It must be called before Put; an entry whose
// dependency bytes cannot be re-read is not cacheable.
func (e *Entry) Seal(img *image.Image) error {
	spans := map[uint64]uint64{}
	for _, fr := range e.Funcs {
		if fr.Graph == nil {
			continue
		}
		for addr, inst := range fr.Graph.Instrs {
			if n := uint64(inst.Len); n > spans[addr] {
				spans[addr] = n
			}
		}
	}
	addrs := make([]uint64, 0, len(spans))
	for a := range spans {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.deps = e.deps[:0]
	for _, a := range addrs {
		n := spans[a]
		if k := len(e.deps); k > 0 && e.deps[k-1].addr+e.deps[k-1].size >= a {
			if end := a + n; end > e.deps[k-1].addr+e.deps[k-1].size {
				e.deps[k-1].size = end - e.deps[k-1].addr
			}
			continue
		}
		e.deps = append(e.deps, depRun{addr: a, size: n})
	}
	h, ok := depHash(img, e.deps)
	if !ok {
		return errors.New("hgstore: dependency bytes not readable from image")
	}
	e.depHash = h
	return nil
}

// depHash folds the run addresses and their current image bytes.
func depHash(img *image.Image, deps []depRun) (uint64, bool) {
	h := hashSeed
	for _, r := range deps {
		b, ok := img.File().ReadAt(r.addr, int(r.size))
		if !ok {
			return 0, false
		}
		h = expr.MixFP(h, r.addr)
		h = hashBytes(h, b)
	}
	return h, true
}

// appendPayload appends the entry's wire encoding.
func (e *Entry) appendPayload(buf []byte) []byte {
	buf = append(buf, byte(e.Status))
	g := e.Graph
	for _, v := range []int{
		g.Instructions, g.States, g.ResolvedInd, g.UnresolvedJump,
		g.UnresolvedCall, g.Edges, g.Obligations, g.Assumptions,
		g.WeirdVertices, g.Joins,
	} {
		buf = wire.AppendUvarint(buf, uint64(v))
	}
	buf = wire.AppendUvarint(buf, e.Sem.SolverQueries)
	buf = wire.AppendUvarint(buf, e.Sem.SolverHits)
	buf = wire.AppendUvarint(buf, e.Sem.Forks)
	buf = wire.AppendUvarint(buf, e.Sem.Destroys)
	buf = wire.AppendUvarint(buf, e.Sem.FactHits)
	buf = wire.AppendUvarint(buf, e.Sem.Fallbacks)
	buf = wire.AppendUvarint(buf, uint64(e.Wall))
	buf = wire.AppendUvarint(buf, uint64(e.Duration))

	buf = wire.AppendUvarint(buf, uint64(len(e.deps)))
	for _, r := range e.deps {
		buf = wire.AppendUvarint(buf, r.addr)
		buf = wire.AppendUvarint(buf, r.size)
	}
	buf = wire.AppendUint64(buf, e.depHash)

	t := expr.NewTable()
	for _, fr := range e.Funcs {
		if graphStorable(fr) {
			hoare.CollectWireExprs(t, fr.Graph)
		}
	}
	buf = expr.AppendTable(buf, t)

	buf = wire.AppendUvarint(buf, uint64(len(e.Funcs)))
	for _, fr := range e.Funcs {
		buf = wire.AppendString(buf, fr.Name)
		buf = wire.AppendUvarint(buf, fr.Addr)
		buf = append(buf, byte(fr.Status))
		buf = appendBool(buf, fr.Returns)
		buf = wire.AppendUvarint(buf, uint64(fr.Steps))
		buf = wire.AppendUvarint(buf, uint64(len(fr.Reasons)))
		for _, r := range fr.Reasons {
			buf = wire.AppendString(buf, r)
		}
		buf = wire.AppendUvarint(buf, uint64(fr.Duration))
		if graphStorable(fr) {
			buf = append(buf, 1)
			buf = hoare.AppendWire(buf, t, fr.Graph)
		} else {
			buf = append(buf, 0)
		}
	}
	return wire.AppendUvarint(buf, uint64(e.EntryIndex+1))
}

// graphStorable reports whether a function result carries a graph the
// wire format can round-trip (an abandoned lift may have none, or one
// whose entry vertex was never created).
func graphStorable(fr *core.FuncResult) bool {
	return fr.Graph != nil && fr.Graph.EntryID != ""
}

// decodePayload decodes one entry against the image, validating the
// dependency ranges: a hash mismatch (or unreadable range) returns
// ErrStale, any structural problem returns the decoder's error. Graph
// decoding re-fetches instructions from the image and restores interned
// expression pointer identity, exactly like the dist shard decoder.
func decodePayload(d *wire.Decoder, img *image.Image) (*Entry, error) {
	e := &Entry{Status: core.Status(d.Byte("status"))}
	for _, p := range []*int{
		&e.Graph.Instructions, &e.Graph.States, &e.Graph.ResolvedInd,
		&e.Graph.UnresolvedJump, &e.Graph.UnresolvedCall, &e.Graph.Edges,
		&e.Graph.Obligations, &e.Graph.Assumptions, &e.Graph.WeirdVertices,
		&e.Graph.Joins,
	} {
		*p = int(d.Uvarint("graph stat"))
	}
	e.Sem.SolverQueries = d.Uvarint("solver queries")
	e.Sem.SolverHits = d.Uvarint("solver hits")
	e.Sem.Forks = d.Uvarint("forks")
	e.Sem.Destroys = d.Uvarint("destroys")
	e.Sem.FactHits = d.Uvarint("fact hits")
	e.Sem.Fallbacks = d.Uvarint("fallbacks")
	e.Wall = time.Duration(d.Uvarint("wall"))
	e.Duration = time.Duration(d.Uvarint("duration"))

	nDeps := d.Len("dependency run")
	for i := 0; i < nDeps && d.Err() == nil; i++ {
		addr := d.Uvarint("dependency address")
		size := d.Uvarint("dependency size")
		e.deps = append(e.deps, depRun{addr: addr, size: size})
	}
	e.depHash = d.Uint64("dependency hash")
	if err := d.Err(); err != nil {
		return nil, err
	}
	// Validate dependencies before paying for graph decode: the common
	// stale case (a callee changed) should cost a few ReadAt calls.
	if h, ok := depHash(img, e.deps); !ok || h != e.depHash {
		return nil, ErrStale
	}

	nodes, err := expr.DecodeTable(d)
	if err != nil {
		return nil, err
	}
	nFuncs := d.Len("function record")
	for i := 0; i < nFuncs && d.Err() == nil; i++ {
		fr := &core.FuncResult{
			Name:   d.String("function name"),
			Addr:   d.Uvarint("function address"),
			Status: core.Status(d.Byte("function status")),
		}
		fr.Returns = decodeBool(d, "returns")
		fr.Steps = int(d.Uvarint("steps"))
		nReasons := d.Len("reason")
		for j := 0; j < nReasons && d.Err() == nil; j++ {
			fr.Reasons = append(fr.Reasons, d.String("reason"))
		}
		fr.Duration = time.Duration(d.Uvarint("function duration"))
		if decodeBool(d, "graph flag") && d.Err() == nil {
			g, err := hoare.DecodeWire(d, nodes, img)
			if err != nil {
				return nil, err
			}
			fr.Graph = g
		}
		if d.Err() == nil {
			e.Funcs = append(e.Funcs, fr)
		}
	}
	e.EntryIndex = int(d.Uvarint("entry index")) - 1
	if err := d.Err(); err != nil {
		return nil, err
	}
	if e.EntryIndex >= len(e.Funcs) {
		return nil, errors.New("hgstore: entry index out of range")
	}
	return e, nil
}
