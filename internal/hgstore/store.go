package hgstore

// The on-disk container. One file holds the whole store:
//
//	file   = "HGCS" version(uvarint) filekind(byte 'S')
//	         record*                                     until EOF
//	record = code(u64 raw) cfg(u64 raw) addr binary(bool)
//	         lifter-version(string)
//	         payload(length-prefixed bytes) checksum(u64 raw)
//
// checksum is the content hash of the payload bytes; a record whose
// checksum does not match — bit corruption — is dropped, as is a
// truncated tail (a crash mid-write under a non-atomic filesystem), as
// are records stamped with a different LifterVersion. Every drop is a
// future miss, never an error: the store is a cache, and its failure mode
// is re-lifting.
//
// Writes are single-writer atomic replaces in the style of the checkpoint
// journal: the writer serialises the whole container to <path>.tmp,
// fsyncs, and renames over the destination, all under the store mutex —
// safe when N pipeline workers Put concurrently, and a reader never
// observes a half-written file.

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/image"
	"repro/internal/wire"
)

// Magic and Version identify the HGCS container.
const (
	Magic   = "HGCS"
	Version = 1
)

// File kinds: a store container holds keyed records, a graph file one
// standalone Hoare graph (see graphfile.go).
const (
	fileKindStore = 'S'
	fileKindGraph = 'G'
)

// record is one stored entry: the payload kept encoded until a Lookup
// needs it (decode restores interned pointers against the reader's
// image, so decoding eagerly at open would pin the wrong image).
type record struct {
	key     Key
	payload []byte
}

// Store is the content-addressed Hoare-graph cache. All methods are safe
// for concurrent use.
type Store struct {
	mu      sync.Mutex
	path    string
	recs    map[Key]*record
	order   []Key // insertion order of first sight, for stable files
	dropped int
}

// Open creates or resumes the store at path — one idiom, like
// lift.OpenCheckpoint: a missing file is an empty store, an existing one
// is loaded with corrupt, truncated, or version-skewed records dropped
// (Dropped counts them). Only real I/O errors are returned.
func Open(path string) (*Store, error) {
	s := &Store{path: path, recs: map[Key]*record{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("hgstore: open: %w", err)
	}
	s.load(data)
	return s, nil
}

// load parses a container, tolerating every content defect.
func (s *Store) load(data []byte) {
	d := wire.NewDecoder(data)
	if string(d.Bytes(uint64(len(Magic)), "magic")) != Magic ||
		d.Uvarint("container version") != Version ||
		d.Byte("file kind") != fileKindStore {
		// Wrong magic, a future container version, or a graph file where
		// a store was expected: everything it holds is unusable — treat
		// the whole file as dropped. The next flush rewrites it.
		s.dropped++
		return
	}
	for len(d.Rest()) > 0 {
		var k Key
		k.Code = d.Uint64("record code hash")
		k.Cfg = d.Uint64("record config fingerprint")
		k.Addr = d.Uvarint("record address")
		k.Binary = decodeBool(d, "record binary")
		version := d.String("record lifter version")
		payload := d.ByteSlice("record payload")
		sum := d.Uint64("record checksum")
		if d.Err() != nil {
			// Truncated or malformed tail: drop it and everything after.
			s.dropped++
			return
		}
		if sum != hashBytes(hashSeed, payload) || version != LifterVersion {
			s.dropped++
			continue
		}
		if _, ok := s.recs[k]; !ok {
			s.order = append(s.order, k)
		}
		s.recs[k] = &record{key: k, payload: payload}
	}
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Len returns the number of usable entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Bytes returns the total encoded payload size of the usable entries.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, r := range s.recs {
		n += int64(len(r.payload))
	}
	return n
}

// Dropped counts records discarded on open: corrupt, truncated, or
// stamped with another lifter version.
func (s *Store) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Lookup decodes the entry for key against img. A usable entry returns
// (entry, payload size, decode wall time, ""); every other outcome is a
// miss with a reason — "absent", "stale" (dependency code bytes changed),
// or "corrupt" (the payload fails structural decode despite its checksum,
// e.g. the image cannot satisfy an instruction fetch). Misses never
// return an error.
func (s *Store) Lookup(key Key, img *image.Image) (*Entry, int, time.Duration, string) {
	s.mu.Lock()
	r := s.recs[key]
	s.mu.Unlock()
	if r == nil {
		return nil, 0, 0, "absent"
	}
	start := time.Now()
	e, err := decodePayload(wire.NewDecoder(r.payload), img)
	switch {
	case errors.Is(err, ErrStale):
		return nil, 0, 0, "stale"
	case err != nil:
		return nil, 0, 0, "corrupt"
	}
	return e, len(r.payload), time.Since(start), ""
}

// Put seals, encodes and persists one entry, replacing any previous
// record under the same key, and returns the encoded payload size. The
// write is atomic (tmp+rename of the whole container) and serialised by
// the store mutex, so concurrent Puts from -jobs N workers interleave
// safely. Callers decide storability (see Storable) before putting.
func (s *Store) Put(key Key, e *Entry, img *image.Image) (int, error) {
	if err := e.Seal(img); err != nil {
		return 0, err
	}
	payload := e.appendPayload(nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[key]; !ok {
		s.order = append(s.order, key)
	}
	s.recs[key] = &record{key: key, payload: payload}
	return len(payload), s.flushLocked()
}

// flushLocked rewrites the container atomically. Records are emitted in
// first-insertion order, so re-running an identical corpus rewrites an
// identical file.
func (s *Store) flushLocked() error {
	buf := []byte(Magic)
	buf = wire.AppendUvarint(buf, Version)
	buf = append(buf, fileKindStore)
	for _, k := range s.order {
		r := s.recs[k]
		buf = wire.AppendUint64(buf, k.Code)
		buf = wire.AppendUint64(buf, k.Cfg)
		buf = wire.AppendUvarint(buf, k.Addr)
		buf = appendBool(buf, k.Binary)
		buf = wire.AppendString(buf, LifterVersion)
		buf = wire.AppendBytes(buf, r.payload)
		buf = wire.AppendUint64(buf, hashBytes(hashSeed, r.payload))
	}
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, s.path)
}

// Keys returns the stored keys sorted for deterministic iteration (tests
// and tooling; the container itself keeps insertion order).
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, len(s.order))
	copy(out, s.order)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Cfg != b.Cfg {
			return a.Cfg < b.Cfg
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return !a.Binary && b.Binary
	})
	return out
}
