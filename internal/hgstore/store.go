package hgstore

// The on-disk container. One file holds the whole store:
//
//	file   = "HGCS" version(uvarint) filekind(byte 'S')
//	         record*                                     until EOF
//	record = code(u64 raw) cfg(u64 raw) addr binary(bool)
//	         lifter-version(string)
//	         payload(length-prefixed bytes) checksum(u64 raw)
//
// checksum is the content hash of the payload bytes; a record whose
// checksum does not match — bit corruption — is dropped, as is a
// truncated tail (a crash mid-write under a non-atomic filesystem), as
// are records stamped with a different LifterVersion. Every drop is a
// future miss, never an error: the store is a cache, and its failure mode
// is re-lifting.
//
// Writes are atomic replaces: the writer serialises the whole container
// to a uniquely named temp file in the same directory (os.CreateTemp, so
// two flushers can never collide on one tmp path), fsyncs, and renames
// over the destination. A reader therefore never observes a half-written
// file. Concurrency is handled at two levels:
//
//   - in-process, the store mutex serialises the N pipeline workers that
//     Put concurrently under -jobs N;
//   - cross-process, an advisory flock on the <path>.lock sidecar
//     serialises the whole read-merge-write cycle, and the flush *unions*
//     the current on-disk container with the in-memory records instead of
//     blind-overwriting — so a daemon and a CLI run (or two CLI runs)
//     sharing one store file cannot drop each other's entries.
//
// A crash between CreateTemp and Rename strands a tmp file; Open sweeps
// leftovers (safe under the same lock: a live flusher holds it for its
// whole create-to-rename window, so any tmp visible while the lock is
// held is orphaned), and a failed Rename removes its own tmp.
//
// By default every Put flushes. Long-running writers (the hgserved
// daemon) switch to buffered mode with SetAutoFlush(false) and call Flush
// on their own cadence — merge-on-flush makes the deferred write exactly
// as safe, it just widens the window a crash can lose (a cache's failure
// mode: re-lifting).

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/image"
	"repro/internal/wire"
)

// Magic and Version identify the HGCS container.
const (
	Magic   = "HGCS"
	Version = 1
)

// lockSuffix names the sidecar lock file and tmpMid the unique temp files
// a flush writes ("<path>.tmp-<random>"); the sweep in Open matches the
// shared "<path>.tmp" prefix, which also covers the fixed "<path>.tmp"
// name older writers used.
const (
	lockSuffix = ".lock"
	tmpMid     = ".tmp-"
)

// File kinds: a store container holds keyed records, a graph file one
// standalone Hoare graph (see graphfile.go).
const (
	fileKindStore = 'S'
	fileKindGraph = 'G'
)

// record is one stored entry: the payload kept encoded until a Lookup
// needs it (decode restores interned pointers against the reader's
// image, so decoding eagerly at open would pin the wrong image).
type record struct {
	key     Key
	payload []byte
}

// Store is the content-addressed Hoare-graph cache. All methods are safe
// for concurrent use, including against other *Store handles (same or
// other processes) sharing the file.
type Store struct {
	mu        sync.Mutex
	path      string
	recs      map[Key]*record
	order     []Key // insertion order of first sight, for stable files
	dropped   int
	autoFlush bool // false = buffered: Puts stay in memory until Flush
	dirty     bool // buffered entries not yet flushed
}

// Open creates or resumes the store at path — one idiom, like
// lift.OpenCheckpoint: a missing file is an empty store, an existing one
// is loaded with corrupt, truncated, or version-skewed records dropped
// (Dropped counts them). Only real I/O errors are returned. Open takes
// the cross-process lock for the read, so it also sweeps any tmp files a
// crashed writer stranded in the directory.
func Open(path string) (*Store, error) {
	s := &Store{path: path, recs: map[Key]*record{}, autoFlush: true}
	lock, err := acquireFileLock(path)
	if err != nil {
		return nil, err
	}
	defer lock.release()
	s.sweepStaleTmps()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("hgstore: open: %w", err)
	}
	s.scan(data, false)
	return s, nil
}

// sweepStaleTmps removes orphaned temp files next to the store. Callers
// hold the file lock: a live flusher keeps the lock across its whole
// create-to-rename window, so every "<base>.tmp*" entry visible now was
// stranded by a crash (or by the pre-lock fixed-name writers) and will
// never be renamed.
func (s *Store) sweepStaleTmps() {
	dir, base := filepath.Split(s.path)
	if dir == "" {
		dir = "."
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return // a missing directory has no strays; Open surfaces real errors
	}
	for _, ent := range ents {
		name := ent.Name()
		if name == base+".tmp" || strings.HasPrefix(name, base+tmpMid) {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// scan parses a container, tolerating every content defect. In load mode
// (merge false) usable records replace in-memory ones and every defect
// counts toward Dropped. In merge mode — the flush's read-back of a file
// another process may have advanced — records only fill keys memory does
// not hold: keys are content-addressed, so an entry present in both
// places carries the same outcome and the in-memory copy wins; defects
// are not counted, since the flush is about to rewrite the file anyway.
func (s *Store) scan(data []byte, merge bool) {
	d := wire.NewDecoder(data)
	if string(d.Bytes(uint64(len(Magic)), "magic")) != Magic ||
		d.Uvarint("container version") != Version ||
		d.Byte("file kind") != fileKindStore {
		// Wrong magic, a future container version, or a graph file where
		// a store was expected: everything it holds is unusable — treat
		// the whole file as dropped. The next flush rewrites it.
		if !merge {
			s.dropped++
		}
		return
	}
	for len(d.Rest()) > 0 {
		var k Key
		k.Code = d.Uint64("record code hash")
		k.Cfg = d.Uint64("record config fingerprint")
		k.Addr = d.Uvarint("record address")
		k.Binary = decodeBool(d, "record binary")
		version := d.String("record lifter version")
		payload := d.ByteSlice("record payload")
		sum := d.Uint64("record checksum")
		if d.Err() != nil {
			// Truncated or malformed tail: drop it and everything after.
			if !merge {
				s.dropped++
			}
			return
		}
		if sum != hashBytes(hashSeed, payload) || version != LifterVersion {
			if !merge {
				s.dropped++
			}
			continue
		}
		if _, ok := s.recs[k]; ok {
			if merge {
				continue
			}
		} else {
			s.order = append(s.order, k)
		}
		s.recs[k] = &record{key: k, payload: payload}
	}
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Len returns the number of usable entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Bytes returns the total encoded payload size of the usable entries.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, r := range s.recs {
		n += int64(len(r.payload))
	}
	return n
}

// Dropped counts records discarded on open: corrupt, truncated, or
// stamped with another lifter version.
func (s *Store) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// SetAutoFlush selects between write-through Puts (true, the default:
// every Put rewrites the container, the CLI batch behaviour) and buffered
// mode (false: Puts stay in memory until Flush — the long-running daemon
// behaviour, where a flush per cached lift would make the container
// rewrite the hot path). Buffered entries survive only until a crash;
// that is the cache's stated failure mode, re-lifting.
func (s *Store) SetAutoFlush(auto bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.autoFlush = auto
}

// Flush persists buffered entries: a no-op when nothing changed since the
// last write, otherwise one locked read-merge-write cycle. Callers in
// buffered mode own the cadence (periodic, end-of-batch, shutdown).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	return s.flushLocked()
}

// Lookup decodes the entry for key against img. A usable entry returns
// (entry, payload size, decode wall time, ""); every other outcome is a
// miss with a reason — "absent", "stale" (dependency code bytes changed),
// or "corrupt" (the payload fails structural decode despite its checksum,
// e.g. the image cannot satisfy an instruction fetch). Misses never
// return an error.
func (s *Store) Lookup(key Key, img *image.Image) (*Entry, int, time.Duration, string) {
	s.mu.Lock()
	r := s.recs[key]
	s.mu.Unlock()
	if r == nil {
		return nil, 0, 0, "absent"
	}
	start := time.Now()
	e, err := decodePayload(wire.NewDecoder(r.payload), img)
	switch {
	case errors.Is(err, ErrStale):
		return nil, 0, 0, "stale"
	case err != nil:
		return nil, 0, 0, "corrupt"
	}
	return e, len(r.payload), time.Since(start), ""
}

// Put seals, encodes and persists one entry, replacing any previous
// record under the same key, and returns the encoded payload size. The
// write is atomic (unique tmp + rename of the whole container), serialised
// in-process by the store mutex and cross-process by the file lock, so
// concurrent Puts from -jobs N workers and from other processes sharing
// the store interleave safely. Sealing mutates the entry, so one *Entry
// must not be passed to concurrent Puts — each lift produces its own. In
// buffered mode (SetAutoFlush(false)) the entry only reaches disk at the
// next Flush. Callers decide storability (see Storable) before putting.
func (s *Store) Put(key Key, e *Entry, img *image.Image) (int, error) {
	if err := e.Seal(img); err != nil {
		return 0, err
	}
	payload := e.appendPayload(nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[key]; !ok {
		s.order = append(s.order, key)
	}
	s.recs[key] = &record{key: key, payload: payload}
	s.dirty = true
	if !s.autoFlush {
		return len(payload), nil
	}
	return len(payload), s.flushLocked()
}

// flushLocked rewrites the container atomically under the cross-process
// file lock: read back whatever is on disk and union it into memory (so a
// concurrent process's entries survive this writer's rewrite), then
// serialise everything to a unique temp file and rename it into place.
// Records are emitted in first-insertion order, so re-running an
// identical corpus rewrites an identical file.
func (s *Store) flushLocked() error {
	lock, err := acquireFileLock(s.path)
	if err != nil {
		return err
	}
	defer lock.release()
	if data, err := os.ReadFile(s.path); err == nil {
		s.scan(data, true)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("hgstore: flush read-back: %w", err)
	}
	buf := []byte(Magic)
	buf = wire.AppendUvarint(buf, Version)
	buf = append(buf, fileKindStore)
	for _, k := range s.order {
		r := s.recs[k]
		buf = wire.AppendUint64(buf, k.Code)
		buf = wire.AppendUint64(buf, k.Cfg)
		buf = wire.AppendUvarint(buf, k.Addr)
		buf = appendBool(buf, k.Binary)
		buf = wire.AppendString(buf, LifterVersion)
		buf = wire.AppendBytes(buf, r.payload)
		buf = wire.AppendUint64(buf, hashBytes(hashSeed, r.payload))
	}
	dir, base := filepath.Split(s.path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+tmpMid+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		// A failed rename must not strand the tmp file next to the store.
		os.Remove(tmp)
		return err
	}
	s.dirty = false
	return nil
}

// Keys returns the stored keys sorted for deterministic iteration (tests
// and tooling; the container itself keeps insertion order).
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, len(s.order))
	copy(out, s.order)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Cfg != b.Cfg {
			return a.Cfg < b.Cfg
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return !a.Binary && b.Binary
	})
	return out
}
