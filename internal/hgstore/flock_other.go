//go:build !unix

package hgstore

// Fallback for platforms without flock: the sidecar file is still created
// (so tooling sees the same on-disk shape) but provides no cross-process
// exclusion — concurrent writers fall back to last-flush-wins for entries
// the merge pass cannot see mid-write. The merge-on-flush union still
// recovers every entry that reached the container, so the degradation is
// bounded staleness, not corruption: every file a reader observes is a
// complete rename-published container.

import (
	"fmt"
	"os"
)

// fileLock holds the (advisory-only) sidecar handle.
type fileLock struct {
	f *os.File
}

// acquireFileLock opens the sidecar without real exclusion.
func acquireFileLock(path string) (*fileLock, error) {
	f, err := os.OpenFile(path+lockSuffix, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hgstore: lock: %w", err)
	}
	return &fileLock{f: f}, nil
}

// release closes the sidecar handle.
func (l *fileLock) release() { l.f.Close() }
