package hgstore

// Standalone compact graph files: the binary sibling of the .hg text
// format, so store entries exported by hglift are directly provable and
// lintable by hgprove/hglint.
//
//	graphfile = "HGCS" version(uvarint) filekind(byte 'G')
//	            body(length-prefixed bytes) checksum(u64 raw)
//	body      = EXPR-TABLE GRAPH
//
// Like the text form, instructions are stored by address only and
// re-fetched from the binary image on load, so a serialised graph cannot
// silently drift from its binary.

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/wire"
)

// IsBinaryGraph reports whether data starts with the HGCS magic —
// the dispatch test for loaders that accept both graph formats.
func IsBinaryGraph(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic
}

// MarshalGraph renders one graph in the compact binary format.
func MarshalGraph(g *hoare.Graph) []byte {
	t := expr.NewTable()
	hoare.CollectWireExprs(t, g)
	body := expr.AppendTable(nil, t)
	body = hoare.AppendWire(body, t, g)

	buf := []byte(Magic)
	buf = wire.AppendUvarint(buf, Version)
	buf = append(buf, fileKindGraph)
	buf = wire.AppendBytes(buf, body)
	return wire.AppendUint64(buf, hashBytes(hashSeed, body))
}

// LoadBinaryGraph decodes a compact graph file against the image. Unlike
// store lookups, a standalone file the user named explicitly fails loudly:
// corruption here is an input error, not a cache miss.
func LoadBinaryGraph(img *image.Image, data []byte) (*hoare.Graph, error) {
	d := wire.NewDecoder(data)
	if string(d.Bytes(uint64(len(Magic)), "magic")) != Magic {
		return nil, fmt.Errorf("hgstore: not an HGCS graph file")
	}
	if v := d.Uvarint("container version"); d.Err() == nil && v != Version {
		return nil, fmt.Errorf("hgstore: unsupported container version %d (have %d)", v, Version)
	}
	if k := d.Byte("file kind"); d.Err() == nil && k != fileKindGraph {
		return nil, fmt.Errorf("hgstore: file kind %q is not a standalone graph", k)
	}
	body := d.ByteSlice("graph body")
	sum := d.Uint64("graph checksum")
	if err := d.Err(); err != nil {
		return nil, err
	}
	if sum != hashBytes(hashSeed, body) {
		return nil, fmt.Errorf("hgstore: graph checksum mismatch (corrupt file)")
	}
	bd := wire.NewDecoder(body)
	nodes, err := expr.DecodeTable(bd)
	if err != nil {
		return nil, err
	}
	g, err := hoare.DecodeWire(bd, nodes, img)
	if err != nil {
		return nil, err
	}
	if len(bd.Rest()) != 0 {
		return nil, fmt.Errorf("hgstore: %d trailing bytes after graph record", len(bd.Rest()))
	}
	return g, nil
}

// LoadGraph loads a Hoare graph in either format, dispatching on the HGCS
// magic: compact binary files decode through LoadBinaryGraph, everything
// else parses as the .hg text grammar.
func LoadGraph(img *image.Image, data []byte) (*hoare.Graph, error) {
	if IsBinaryGraph(data) {
		return LoadBinaryGraph(img, data)
	}
	return hoare.Load(img, data)
}
