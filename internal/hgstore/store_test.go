package hgstore_test

// Property tests for the HGCS container, mirroring the HGSD/HGRS wire
// suites: round-trip through a reopened store, then every way a file can
// go wrong — truncation at each byte, bit corruption at each byte,
// container and lifter version skew, stale dependency bytes — must read
// back as misses or dropped records, never as errors or wrong hits.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hgstore"
	"repro/internal/hoare"
	"repro/internal/image"
)

// liftScenario lifts one corpus scenario and packages the result as a
// store entry the way the pipeline does.
func liftScenario(t *testing.T, s *corpus.Scenario) (*hgstore.Entry, hgstore.Key) {
	t.Helper()
	l := core.New(s.Image, core.DefaultConfig())
	fr := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
	// Pin the measured wall times so the encoded payload is a pure
	// function of the lift outcome (the determinism test depends on it).
	fr.Duration = 5 * time.Millisecond
	e := &hgstore.Entry{
		Status:     fr.Status,
		Graph:      fr.Stats(),
		Sem:        l.Counters(),
		Wall:       123 * time.Millisecond,
		Duration:   fr.Duration,
		Funcs:      []*core.FuncResult{fr},
		EntryIndex: -1,
	}
	return e, hgstore.TaskKey(s.Image, s.FuncAddr, false, nil)
}

// populated builds a store at path holding every lifted corpus scenario
// and returns the scenarios alongside.
func populated(t *testing.T, path string) []*corpus.Scenario {
	t.Helper()
	st, err := hgstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scenarios {
		e, key := liftScenario(t, s)
		if _, err := st.Put(key, e, s.Image); err != nil {
			t.Fatalf("put %s: %v", s.Name, err)
		}
	}
	if st.Len() != len(scenarios) {
		t.Fatalf("store holds %d entries, want %d", st.Len(), len(scenarios))
	}
	return scenarios
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hgcs")
	scenarios := populated(t, path)

	// A fresh process opening the same file sees every entry and decodes
	// it back to the lifted result, pointer identity included.
	st, err := hgstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped() != 0 || st.Len() != len(scenarios) {
		t.Fatalf("reopen: len=%d dropped=%d", st.Len(), st.Dropped())
	}
	for _, s := range scenarios {
		orig, key := liftScenario(t, s)
		e, n, _, reason := st.Lookup(key, s.Image)
		if e == nil {
			t.Fatalf("%s: miss (%s)", s.Name, reason)
		}
		if n <= 0 {
			t.Fatalf("%s: payload size %d", s.Name, n)
		}
		if e.Status != orig.Status || e.Graph != orig.Graph || e.Sem != orig.Sem {
			t.Fatalf("%s: stats replay mismatch:\n%+v\nvs\n%+v", s.Name, e, orig)
		}
		if e.Wall != orig.Wall {
			t.Fatalf("%s: wall replay %v, want %v", s.Name, e.Wall, orig.Wall)
		}
		if len(e.Funcs) != 1 || e.EntryIndex != -1 {
			t.Fatalf("%s: funcs=%d entryIndex=%d", s.Name, len(e.Funcs), e.EntryIndex)
		}
		got, want := e.Funcs[0], orig.Funcs[0]
		if got.Name != want.Name || got.Addr != want.Addr || got.Status != want.Status ||
			got.Returns != want.Returns || got.Steps != want.Steps {
			t.Fatalf("%s: func record mismatch: %+v vs %+v", s.Name, got, want)
		}
		if (got.Graph == nil) != (want.Graph == nil) {
			t.Fatalf("%s: graph presence differs", s.Name)
		}
		if got.Graph != nil {
			// Joins, resolved-indirection counts and edge-less
			// instructions are lifting-time data neither serial format
			// carries (the Entry.Graph stats field replays the original
			// counts instead; both the .hg text and wire formats rebuild
			// Instrs from edges); the vertex/edge structure must survive.
			gs, ws := got.Graph.Stats(), want.Graph.Stats()
			if gs.States != ws.States || gs.Edges != ws.Edges ||
				gs.Obligations != ws.Obligations || gs.Assumptions != ws.Assumptions {
				t.Fatalf("%s: decoded graph structure differs:\n%+v\nvs\n%+v", s.Name, gs, ws)
			}
			// The decoded graph re-marshals identically to the original:
			// the interned DAG survived with pointer identity restored.
			if !bytes.Equal(hoare.Marshal(got.Graph), hoare.Marshal(want.Graph)) {
				t.Fatalf("%s: decoded graph re-marshal differs", s.Name)
			}
		}
	}
	// A lookup under a key the store never saw is an "absent" miss.
	if e, _, _, reason := st.Lookup(hgstore.Key{Code: 1}, scenarios[0].Image); e != nil || reason != "absent" {
		t.Fatalf("unknown key: entry=%v reason=%q", e, reason)
	}
}

func TestStoreRewriteIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.hgcs")
	pathB := filepath.Join(dir, "b.hgcs")
	populated(t, pathA)
	populated(t, pathB)
	a, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identical corpus runs wrote different containers")
	}
}

func TestStoreTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hgcs")
	n := len(populated(t, path))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 37 {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := hgstore.Open(path)
		if err != nil {
			t.Fatalf("cut %d: open error: %v", cut, err)
		}
		if st.Len() >= n && cut < len(data) {
			// The only way to keep all records is the full file; any
			// proper prefix must have dropped at least the tail record.
			if st.Dropped() == 0 {
				t.Fatalf("cut %d: kept %d records with nothing dropped", cut, st.Len())
			}
		}
	}
}

func TestStoreCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hgcs")
	scenarios := populated(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit at a sweep of positions: the store must open without
	// error every time, and every surviving record must still decode —
	// the checksum rejects damaged payloads before Lookup can see them.
	for pos := 0; pos < len(data); pos += 53 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := hgstore.Open(path)
		if err != nil {
			t.Fatalf("pos %d: open error: %v", pos, err)
		}
		for _, s := range scenarios {
			_, key := liftScenario(t, s)
			if e, _, _, reason := st.Lookup(key, s.Image); e == nil && reason == "corrupt" {
				t.Fatalf("pos %d: checksummed payload decoded as corrupt", pos)
			}
		}
	}
}

func TestStoreVersionSkew(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hgcs")
	populated(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A future container version: the whole file is unusable — dropped,
	// not an error.
	future := append([]byte(nil), data...)
	future[len(hgstore.Magic)] = hgstore.Version + 1
	if err := os.WriteFile(path, future, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := hgstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 || st.Dropped() == 0 {
		t.Fatalf("future version: len=%d dropped=%d, want 0/>0", st.Len(), st.Dropped())
	}

	// A different lifter version inside the records: every record is
	// stale, dropped record by record.
	old := bytes.ReplaceAll(data, []byte(hgstore.LifterVersion), []byte("hg-lifter/0"))
	if len(old) != len(data) {
		t.Fatalf("lifter version string length changed; fix the test replacement")
	}
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = hgstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 || st.Dropped() == 0 {
		t.Fatalf("lifter skew: len=%d dropped=%d, want 0/>0", st.Len(), st.Dropped())
	}
}

func TestStoreStaleDependencies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hgcs")
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	s := scenarios[0]
	st, err := hgstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e, key := liftScenario(t, s)
	if e.Funcs[0].Graph == nil {
		t.Skipf("scenario %s did not lift; no dependency ranges to test", s.Name)
	}
	if _, err := st.Put(key, e, s.Image); err != nil {
		t.Fatal(err)
	}

	// Rebuild the image with one executed instruction byte changed but
	// the same symbol layout: the primary key is recomputed by the caller
	// (unchanged here — we reuse the stored key), so the dependency hash
	// is the guard that must catch the drift.
	raw := append([]byte(nil), s.Raw...)
	var addr uint64
	for a := range e.Funcs[0].Graph.Instrs {
		addr = a
		break
	}
	off, ok := fileOffsetOf(s.Image, addr)
	if !ok {
		t.Fatalf("no file offset for %#x", addr)
	}
	raw[off] ^= 0x01
	img2, err := image.Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _, reason := st.Lookup(key, img2); got != nil || reason != "stale" {
		t.Fatalf("mutated dependency bytes: entry=%v reason=%q, want stale miss", got, reason)
	}
	// Against the original image the entry still hits.
	if got, _, _, reason := st.Lookup(key, s.Image); got == nil {
		t.Fatalf("original image: miss (%s)", reason)
	}
}

// fileOffsetOf maps a virtual address to its raw-file offset.
func fileOffsetOf(img *image.Image, addr uint64) (uint64, bool) {
	for _, sec := range img.File().Sections {
		if sec.Data != nil && addr >= sec.Addr && addr < sec.Addr+uint64(len(sec.Data)) {
			return sec.Off + (addr - sec.Addr), true
		}
	}
	return 0, false
}

func TestKeySensitivity(t *testing.T) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	s := scenarios[0]
	base := hgstore.TaskKey(s.Image, s.FuncAddr, false, nil)

	// Same inputs, same key.
	if again := hgstore.TaskKey(s.Image, s.FuncAddr, false, nil); again != base {
		t.Fatal("TaskKey is not deterministic")
	}
	// A configuration that changes lift semantics changes the key.
	cfg := core.DefaultConfig()
	cfg.NoJoin = true
	if k := hgstore.TaskKey(s.Image, s.FuncAddr, false, &cfg); k.Cfg == base.Cfg {
		t.Fatal("NoJoin did not change the config fingerprint")
	}
	// The wall-clock budget is excluded on purpose: timeout-dependent
	// outcomes are never stored, so the budget must not split the key.
	cfg2 := core.DefaultConfig()
	cfg2.Timeout = time.Hour
	if k := hgstore.TaskKey(s.Image, s.FuncAddr, false, &cfg2); k.Cfg != base.Cfg {
		t.Fatal("wall-clock budget changed the config fingerprint")
	}
	// Binary and function tasks at the same address never collide.
	if k := hgstore.TaskKey(s.Image, s.FuncAddr, true, nil); k.Code == base.Code {
		t.Fatal("binary and function code hashes collide")
	}
	// Changing any code byte changes the binary hash.
	raw := append([]byte(nil), s.Raw...)
	raw[len(raw)-1] ^= 0xff
	img2, err := image.Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	if hgstore.CodeHash(img2, 0, true) == hgstore.CodeHash(s.Image, 0, true) {
		t.Fatal("binary code hash ignored a byte change")
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scenarios {
		l := core.New(s.Image, core.DefaultConfig())
		fr := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
		if fr.Graph == nil || fr.Graph.EntryID == "" {
			continue
		}
		data := hgstore.MarshalGraph(fr.Graph)
		if !hgstore.IsBinaryGraph(data) {
			t.Fatalf("%s: marshal did not produce the HGCS magic", s.Name)
		}
		g, err := hgstore.LoadGraph(s.Image, data)
		if err != nil {
			t.Fatalf("%s: load binary: %v", s.Name, err)
		}
		if !bytes.Equal(hoare.Marshal(g), hoare.Marshal(fr.Graph)) {
			t.Fatalf("%s: binary graph round-trip drifted", s.Name)
		}
		// The text path still dispatches through the same entrypoint.
		g2, err := hgstore.LoadGraph(s.Image, hoare.Marshal(fr.Graph))
		if err != nil {
			t.Fatalf("%s: load text: %v", s.Name, err)
		}
		if !bytes.Equal(hoare.Marshal(g2), hoare.Marshal(fr.Graph)) {
			t.Fatalf("%s: text graph round-trip drifted", s.Name)
		}

		// Standalone files fail loudly on damage, unlike store records.
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 0x40
		if _, err := hgstore.LoadGraph(s.Image, bad); err == nil {
			t.Fatalf("%s: corrupt graph file loaded without error", s.Name)
		}
		if _, err := hgstore.LoadGraph(s.Image, data[:len(data)-3]); err == nil {
			t.Fatalf("%s: truncated graph file loaded without error", s.Name)
		}
		break // one lifted scenario is enough for the file format
	}
}
