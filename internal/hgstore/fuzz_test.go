package hgstore_test

// Fuzz target for the HGCS container: for ANY byte string presented as a
// store file, Open must return without error or panic (content defects
// are misses, not failures), and every record that survives loading must
// either decode cleanly or miss with a reason under Lookup. Seeded with a
// real populated container, its truncations, bit-corrupted variants, and
// a standalone graph file (the wrong file kind for a store).

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hgstore"
)

// fuzzImage lazily builds one corpus scenario image for Lookup probing.
var fuzzImage = sync.OnceValues(func() (*corpus.Scenario, error) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		return nil, err
	}
	return scenarios[0], nil
})

func FuzzStoreOpen(f *testing.F) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.hgcs")
	st, err := hgstore.Open(path)
	if err != nil {
		f.Fatal(err)
	}
	var graphSeed []byte
	for _, s := range scenarios {
		l := core.New(s.Image, core.DefaultConfig())
		fr := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
		e := &hgstore.Entry{
			Status:     fr.Status,
			Graph:      fr.Stats(),
			Sem:        l.Counters(),
			Funcs:      []*core.FuncResult{fr},
			EntryIndex: -1,
		}
		if _, err := st.Put(hgstore.TaskKey(s.Image, s.FuncAddr, false, nil), e, s.Image); err != nil {
			f.Fatal(err)
		}
		if graphSeed == nil && fr.Graph != nil && fr.Graph.EntryID != "" {
			graphSeed = hgstore.MarshalGraph(fr.Graph)
		}
	}
	full, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:len(full)-1])
	f.Add([]byte("HGCS"))
	f.Add([]byte{})
	if graphSeed != nil {
		f.Add(graphSeed) // wrong file kind for a store
	}
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/3] ^= 0x80
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "f.hgcs")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		s, err := hgstore.Open(p)
		if err != nil {
			t.Fatalf("Open returned a content error: %v", err)
		}
		probe, perr := fuzzImage()
		if perr != nil {
			t.Skip()
		}
		for _, k := range s.Keys() {
			e, n, _, reason := s.Lookup(k, probe.Image)
			if e == nil && reason == "" {
				t.Fatal("miss without a reason")
			}
			if e != nil && n <= 0 {
				t.Fatal("hit with non-positive payload size")
			}
		}
		// The loaded prefix must survive a rewrite round-trip: Put-ing
		// one more record flushes the container, which must reopen to at
		// least the same records.
		before := s.Len()
		probeEntry := &hgstore.Entry{Status: core.StatusError, EntryIndex: -1}
		key := hgstore.TaskKey(probe.Image, probe.FuncAddr, false, nil)
		if _, err := s.Put(key, probeEntry, probe.Image); err != nil {
			t.Fatalf("Put after load: %v", err)
		}
		re, err := hgstore.Open(p)
		if err != nil {
			t.Fatalf("reopen after rewrite: %v", err)
		}
		if re.Dropped() != 0 {
			t.Fatalf("rewritten container drops %d records", re.Dropped())
		}
		if re.Len() < before {
			t.Fatalf("rewrite lost records: %d -> %d", before, re.Len())
		}
	})
}
