package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracer calls every emission helper on a nil tracer: the disabled
// tracer must be safe (and do nothing) everywhere it is threaded.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.WithLift("x") != nil {
		t.Fatal("WithLift on nil tracer must stay nil")
	}
	tr.Emit(Event{Kind: KStep})
	tr.TaskStart("t")
	tr.TaskFinish("t", "lifted", time.Second)
	tr.Watchdog("t", time.Second)
	tr.LiftStart("f", 1)
	tr.LiftFinish("f", 1, "lifted", 3, time.Second)
	tr.Step(1)
	tr.Join(1, "v")
	tr.Fork(1, 2)
	tr.Destroy(1)
	tr.Solver(1, true)
	tr.Obligation(1, "ob")
	tr.Theorem("f", "v", 1, "proven")
	tr.Lint("f", "v", 1, "error", "hg-entry", "missing")
	tr.Fallback(1)
	tr.PtrAnalyze("f", 1, 2, 3, time.Second)
	tr.FactHit(1)
}

// TestNewTracerDropsNilSinks checks that optional sinks can be passed
// unconditionally: all-nil sinks yield the disabled tracer.
func TestNewTracerDropsNilSinks(t *testing.T) {
	if NewTracer() != nil || NewTracer(nil, nil) != nil {
		t.Fatal("sink-less tracer must be nil (disabled)")
	}
	r := NewRing(4)
	tr := NewTracer(nil, r, nil)
	if tr == nil {
		t.Fatal("tracer with a real sink must be enabled")
	}
	tr.Step(7)
	if got := r.Events(); len(got) != 1 || got[0].Kind != KStep || got[0].Addr != 7 {
		t.Fatalf("ring saw %+v", got)
	}
}

// TestWithLiftLabels checks that WithLift labels events without touching
// the parent tracer.
func TestWithLiftLabels(t *testing.T) {
	r := NewRing(8)
	tr := NewTracer(r)
	tr.Step(1)
	tr.WithLift("task-a").Step(2)
	tr.Step(3)
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events", len(ev))
	}
	if ev[0].Lift != "" || ev[1].Lift != "task-a" || ev[2].Lift != "" {
		t.Fatalf("labels: %q %q %q", ev[0].Lift, ev[1].Lift, ev[2].Lift)
	}
}

// TestRingWraparound fills a ring past capacity and checks eviction order
// and the dropped counter.
func TestRingWraparound(t *testing.T) {
	r := NewRing(3)
	for i := uint64(1); i <= 5; i++ {
		r.Emit(Event{Kind: KStep, Addr: i})
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	for i, want := range []uint64{3, 4, 5} {
		if ev[i].Addr != want {
			t.Fatalf("event %d addr = %d, want %d", i, ev[i].Addr, want)
		}
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
}

// TestJSONL decodes the emitted lines and checks field round-tripping.
func TestJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	tr := NewTracer(j).WithLift("task-1")
	tr.Fork(0x400100, 2)
	tr.Solver(0x400104, true)
	tr.LiftFinish("f", 0x400100, "lifted", 9, 3*time.Millisecond)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	var rec struct {
		T    time.Time `json:"t"`
		K    string    `json:"k"`
		Lift string    `json:"lift"`
		Addr uint64    `json:"addr"`
		N    uint64    `json:"n"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.K != "fork" || rec.Lift != "task-1" || rec.Addr != 0x400100 || rec.N != 2 || rec.T.IsZero() {
		t.Fatalf("decoded %+v", rec)
	}
	for _, line := range lines {
		var any map[string]any
		if err := json.Unmarshal([]byte(line), &any); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
	}
}

// TestMetricsAggregation feeds a fixed event stream and checks every
// derived counter and the histogram.
func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	tr := NewTracer(m)
	tr.Step(1)
	tr.Step(2)
	tr.Join(2, "v")
	tr.Fork(3, 2)
	tr.Destroy(3)
	tr.Solver(4, false)
	tr.Solver(4, true)
	tr.Obligation(5, "ob")
	tr.LiftFinish("f", 1, "lifted", 2, time.Millisecond)
	tr.TaskFinish("t", "timeout", time.Second)
	tr.Watchdog("t", time.Second)
	tr.Theorem("f", "v", 1, "proven")
	tr.Lint("f", "v1", 1, "error", "hg-dangling-edge", "edge to nowhere")
	tr.Lint("f", "v2", 2, "warn", "hg-unreachable", "unreachable")
	tr.Fallback(3)
	tr.PtrAnalyze("f", 1, 5, 2, time.Millisecond)
	tr.FactHit(4)
	tr.FactHit(4)

	want := map[string]uint64{
		"explore.steps":      2,
		"explore.joins":      1,
		"memmodel.fork":      2,
		"memmodel.destroy":   1,
		"memmodel.fallback":  1,
		"solver.queries":     2,
		"solver.hits":        1,
		"obligations":        1,
		"lift.lifted":        1,
		"task.timeout":       1,
		"watchdog.abandoned": 1,
		"theorem.proven":     1,
		"lint.error":         1,
		"lint.warn":          1,
		"ptr.analyses":       1,
		"ptr.facts":          5,
		"ptr.hypotheses":     2,
		"ptr.hits":           2,
	}
	got := m.CounterSnapshot()
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
	if h := m.Histogram("lift.wall"); h.Count() != 1 || h.Sum() != time.Millisecond {
		t.Fatalf("lift.wall count=%d sum=%s", h.Count(), h.Sum())
	}
	dump := m.Dump()
	if !strings.Contains(dump, "explore.steps") || !strings.Contains(dump, "lift.wall") {
		t.Fatalf("dump missing sections:\n%s", dump)
	}
}

// TestMetricsServeEvents covers the daemon's slice of the taxonomy:
// admission, rejection and completion counters plus the request-latency
// histogram, and the store-flush event the buffered write mode emits.
func TestMetricsServeEvents(t *testing.T) {
	m := NewMetrics()
	tr := NewTracer(m)
	tr.ServeAdmit("r1", "alice", 1)
	tr.ServeAdmit("r2", "bob", 2)
	tr.ServeReject("r3", "bob", "queue full")
	tr.ServeDone("r1", "alice", "ok", 3*time.Millisecond)
	tr.ServeDone("r2", "bob", "cancelled", time.Millisecond)
	tr.StoreFlush(42, time.Millisecond)

	want := map[string]uint64{
		"serve.admitted":       2,
		"serve.rejected":       1,
		"serve.done.ok":        1,
		"serve.done.cancelled": 1,
		"store.flushes":        1,
	}
	got := m.CounterSnapshot()
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
	if h := m.Histogram("serve.request.wall"); h.Count() != 2 || h.Sum() != 4*time.Millisecond {
		t.Fatalf("serve.request.wall count=%d sum=%s", h.Count(), h.Sum())
	}
	if h := m.Histogram("store.flush.wall"); h.Count() != 1 {
		t.Fatalf("store.flush.wall count=%d", h.Count())
	}
}

// TestMetricsDumpDeterministic replays the same stream into two
// registries and requires byte-identical counter sections.
func TestMetricsDumpDeterministic(t *testing.T) {
	stream := []Event{
		{Kind: KStep, Addr: 1}, {Kind: KFork, Addr: 2, N: 3},
		{Kind: KSolver, Addr: 3}, {Kind: KObligation, Addr: 4, Detail: "ob"},
		{Kind: KTheorem, Status: "proven"},
	}
	dump := func() string {
		m := NewMetrics()
		for _, e := range stream {
			m.Emit(e)
		}
		return m.Dump()
	}
	if a, b := dump(), dump(); a != b {
		t.Fatalf("dumps differ:\n%s\nvs\n%s", a, b)
	}
}

// TestMetricsConcurrent hammers one registry from several goroutines —
// the -race regression for the registry's get-or-create path.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Emit(Event{Kind: KStep})
				m.Emit(Event{Kind: KSolver, Hit: i%2 == 0})
				m.Histogram("lift.wall").Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("explore.steps").Load(); got != 8*500 {
		t.Fatalf("explore.steps = %d, want %d", got, 8*500)
	}
	if got := m.Counter("solver.hits").Load(); got != 8*250 {
		t.Fatalf("solver.hits = %d, want %d", got, 8*250)
	}
}

// TestHistogramBuckets checks bucket placement at the bounds.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)     // first bucket (≤1µs)
	h.Observe(3 * time.Microsecond) // ≤4µs bucket
	h.Observe(time.Hour)            // overflow
	if h.counts[0].Load() != 1 {
		t.Fatalf("≤1µs bucket = %d", h.counts[0].Load())
	}
	if h.counts[2].Load() != 1 {
		t.Fatalf("≤4µs bucket = %d", h.counts[2].Load())
	}
	if h.counts[len(histBuckets)].Load() != 1 {
		t.Fatalf("overflow bucket = %d", h.counts[len(histBuckets)].Load())
	}
	if !strings.Contains(h.dump(), "count=3") {
		t.Fatalf("dump: %s", h.dump())
	}
}
