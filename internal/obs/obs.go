// Package obs is the lifting pipeline's observability layer: a structured
// trace of what Step 1 and Step 2 actually did, emitted live while they
// run. The paper's evaluation tables summarise a lift post-hoc (forks,
// destroys, solver queries, timeouts); proof-producing symbolic-execution
// systems go further and treat the per-step trace as first-class evidence.
// This package gives the reproduction the same: every lift lifecycle
// transition, exploration step, memory-model fork and destroy, solver
// query, join widening, emitted proof obligation, and Step-2 theorem
// verdict becomes an Event fanned out to pluggable sinks.
//
// The design constraint is that observation must be free when off and
// cheap when on. A *Tracer is nil-safe: every emission helper starts with
// a nil receiver check, so a disabled tracer costs exactly one pointer
// comparison on the hot path (the explorer's step loop and the machine's
// solver oracle). Events are plain value structs — building one allocates
// nothing; only sinks that serialise (the JSONL writer) pay for it.
//
// Sinks are deliberately tiny (a single Emit method) so new backends —
// a live TUI, an OpenTelemetry bridge, a sampling profiler — can be added
// without touching the instrumented packages. The three built-ins are the
// JSONL trace writer (sinks.go), the in-memory ring buffer for tests, and
// the Metrics registry (metrics.go), which is itself just a sink that
// aggregates instead of recording.
package obs

import (
	"time"
)

// Kind enumerates the event taxonomy.
type Kind uint8

// The event kinds. Task events bracket one scheduled pipeline task (which
// may lift several functions: a binary lift explores every reachable
// callee); lift events bracket one function exploration.
const (
	KTaskStart     Kind = iota // pipeline: a scheduled task began
	KTaskFinish                // pipeline: a scheduled task completed (Status, Wall)
	KWatchdog                  // pipeline: the watchdog abandoned a wedged lift
	KLiftStart                 // core: one function exploration began
	KLiftFinish                // core: one function exploration ended (Status, N = steps, Wall)
	KStep                      // core: one exploration step (Algorithm 1 loop body)
	KJoin                      // core: an existing invariant was weakened by joining
	KFork                      // sem: an undecided insertion forked the memory model (N = extra models)
	KDestroy                   // sem: an insertion destroyed a region in some model
	KSolver                    // sem: one solver comparison (Hit = answered from memo)
	KObligation                // core: a proof obligation over an external call was emitted
	KTheorem                   // triple: a Step-2 theorem verdict (Status, Vertex)
	KLint                      // hglint: a static-analysis diagnostic (Status = severity, Detail = rule: msg)
	KRetry                     // pipeline: a failed lift attempt was re-scheduled (Status = attempt's outcome, N = attempt)
	KQuarantine                // pipeline: a task exhausted its retry budget (Status = final outcome, N = attempts)
	KCheckpoint                // pipeline: checkpoint activity (Status = skip | write-error, Detail = context)
	KShardStart                // dist: a serialized shard was handed to a worker (N = work units)
	KShardDone                 // dist: a shard's verdicts merged (Status, N = solver queries, Hits = memo hits, Wall)
	KWorkerRestart             // dist: a worker crashed or timed out and its shard was re-scheduled (Status, N = attempt)
	KStore                     // hgstore: graph-store activity (Status = hit | miss | write | write-error | flush; N = payload bytes or flushed entries, Wall = decode/flush latency, Detail = miss reason / error)
	KServe                     // serve: daemon request lifecycle (Status = admit | reject | request outcome; Func = request id, Detail = tenant, N = queue depth, Wall = request latency)
	KFallback                  // sem: an insertion abandoned its forked models past MaxModels and destroyed instead
	KPtrAnalyze                // ptr: the pointer pre-pass analyzed one function (N = proven facts, Hits = hypotheses, Wall = analysis time)
	KFactHit                   // sem: a region comparison was answered from the pointer fact table
)

// kindNames renders the kinds in the JSONL trace.
var kindNames = [...]string{
	KTaskStart:  "task-start",
	KTaskFinish: "task-finish",
	KWatchdog:   "watchdog",
	KLiftStart:  "lift-start",
	KLiftFinish: "lift-finish",
	KStep:       "step",
	KJoin:       "join",
	KFork:       "fork",
	KDestroy:    "destroy",
	KSolver:     "solver",
	KObligation: "obligation",
	KTheorem:    "theorem",
	KLint:       "lint",
	KRetry:      "retry",
	KQuarantine: "quarantine",
	KCheckpoint: "checkpoint",

	KShardStart:    "shard-start",
	KShardDone:     "shard-done",
	KWorkerRestart: "worker-restart",
	KStore:         "store",
	KServe:         "serve",
	KFallback:      "fallback",
	KPtrAnalyze:    "ptr-analyze",
	KFactHit:       "ptr-hit",
}

// String renders the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalText renders the kind for JSON encoding.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Event is one structured trace record. It is a plain value: constructing
// and passing one allocates nothing, so instrumented hot paths stay cheap
// even with an attached ring or metrics sink.
type Event struct {
	Kind Kind
	// Lift labels the pipeline task the event belongs to (the Task.Name
	// the scheduler was given); empty outside a pipeline run.
	Lift string
	// Func is the function being explored or checked, Addr the relevant
	// instruction (or function entry) address.
	Func string
	Addr uint64
	// Vertex identifies the Hoare-graph vertex of a theorem verdict.
	Vertex string
	// Status carries a lifecycle outcome (core.Status or triple verdict
	// string).
	Status string
	// Detail is free-form context (an obligation text, a watchdog note).
	Detail string
	// N is a count: extra memory models for KFork, exploration steps for
	// KLiftFinish, solver queries for KShardDone.
	N uint64
	// Hits is a second count for kinds that need one: solver memo hits for
	// KShardDone (N holds the query count).
	Hits uint64
	// Hit reports a solver memo-cache hit for KSolver.
	Hit bool
	// Wall is the span duration for KTaskFinish / KLiftFinish.
	Wall time.Duration
}

// Sink consumes events. Implementations must be safe for concurrent use:
// the pipeline emits from every worker goroutine.
type Sink interface {
	Emit(Event)
}

// Tracer labels events with the enclosing pipeline task and fans them out
// to its sinks. The zero of the type is never used — a disabled tracer is
// a nil *Tracer, and every method is safe (and free) to call on nil, so
// instrumented code never guards emission sites itself.
type Tracer struct {
	lift  string
	sinks []Sink
}

// NewTracer builds a tracer over the given sinks; nil sinks are dropped,
// and with no (remaining) sinks the result is nil — the disabled tracer —
// so callers can pass optional sinks unconditionally.
func NewTracer(sinks ...Sink) *Tracer {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	return &Tracer{sinks: kept}
}

// WithLift returns a tracer emitting into the same sinks with every event
// labelled as belonging to the named pipeline task. On a nil tracer it
// returns nil.
func (t *Tracer) WithLift(name string) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{lift: name, sinks: t.sinks}
}

// Enabled reports whether the tracer emits anywhere. Instrumented code
// only needs it to skip building expensive Detail strings.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit labels and fans out one event.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	e.Lift = t.lift
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// TaskStart marks a scheduled pipeline task beginning.
func (t *Tracer) TaskStart(name string) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KTaskStart, Func: name})
}

// TaskFinish marks a scheduled pipeline task completing.
func (t *Tracer) TaskFinish(name, status string, wall time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KTaskFinish, Func: name, Status: status, Wall: wall})
}

// Watchdog marks the scheduler abandoning a wedged lift.
func (t *Tracer) Watchdog(name string, budget time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KWatchdog, Func: name, Wall: budget,
		Detail: "lift abandoned: no progress within the watchdog budget"})
}

// LiftStart marks one function exploration beginning.
func (t *Tracer) LiftStart(fn string, addr uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KLiftStart, Func: fn, Addr: addr})
}

// LiftFinish marks one function exploration ending.
func (t *Tracer) LiftFinish(fn string, addr uint64, status string, steps int, wall time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KLiftFinish, Func: fn, Addr: addr, Status: status, N: uint64(steps), Wall: wall})
}

// Step marks one exploration step at an instruction address.
func (t *Tracer) Step(addr uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KStep, Addr: addr})
}

// Join marks a join widening of the vertex invariant at addr.
func (t *Tracer) Join(addr uint64, vertex string) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KJoin, Addr: addr, Vertex: vertex})
}

// Fork marks an undecided memory-model insertion producing extra models.
func (t *Tracer) Fork(addr uint64, extra uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KFork, Addr: addr, N: extra})
}

// Destroy marks a memory-model insertion destroying a region.
func (t *Tracer) Destroy(addr uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KDestroy, Addr: addr})
}

// Fallback marks an insertion whose forked models were abandoned (fan-out
// past MaxModels, or nothing clean derivable without forking) in favour of
// the destroy model.
func (t *Tracer) Fallback(addr uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KFallback, Addr: addr})
}

// PtrAnalyze marks the pointer pre-pass finishing one function: proven is
// the number of predicate-independent facts, hypotheses the number of
// assumed separations, wall the analysis time.
func (t *Tracer) PtrAnalyze(fn string, addr uint64, proven, hypotheses int, wall time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KPtrAnalyze, Func: fn, Addr: addr,
		N: uint64(proven), Hits: uint64(hypotheses), Wall: wall})
}

// FactHit marks a region comparison answered from the pointer fact table
// before the decision procedure ran.
func (t *Tracer) FactHit(addr uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KFactHit, Addr: addr})
}

// Solver marks one solver comparison; hit reports a memo-cache answer.
func (t *Tracer) Solver(addr uint64, hit bool) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KSolver, Addr: addr, Hit: hit})
}

// Obligation marks an emitted proof obligation.
func (t *Tracer) Obligation(addr uint64, text string) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KObligation, Addr: addr, Detail: text})
}

// Theorem marks a Step-2 verdict for one vertex.
func (t *Tracer) Theorem(fn, vertex string, addr uint64, verdict string) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KTheorem, Func: fn, Vertex: vertex, Addr: addr, Status: verdict})
}

// Retry marks the scheduler re-scheduling a lift whose attempt (0-based)
// ended in the retryable status; backoff is the delay before the next
// attempt.
func (t *Tracer) Retry(name, status string, attempt int, backoff time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KRetry, Func: name, Status: status, N: uint64(attempt), Wall: backoff})
}

// Quarantine marks a task that exhausted its retry budget: attempts is the
// total number consumed, status the final attempt's outcome.
func (t *Tracer) Quarantine(name, status string, attempts int) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KQuarantine, Func: name, Status: status, N: uint64(attempts),
		Detail: "task quarantined: retry budget exhausted"})
}

// CheckpointSkip marks a task restored from the checkpoint journal instead
// of being lifted.
func (t *Tracer) CheckpointSkip(name string) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KCheckpoint, Func: name, Status: "skip",
		Detail: "restored from checkpoint journal"})
}

// CheckpointError marks a failed checkpoint append; the run keeps going
// (the record is retried on the next append), so this is a warning, not a
// failure.
func (t *Tracer) CheckpointError(name string, err error) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KCheckpoint, Func: name, Status: "write-error", Detail: err.Error()})
}

// ShardStart marks the dist coordinator handing a serialized shard (with
// the given number of work units) to a worker subprocess.
func (t *Tracer) ShardStart(shard string, units int) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KShardStart, Func: shard, N: uint64(units)})
}

// ShardDone marks a shard's verdicts being merged back: status is "ok" or
// the terminal failure, queries/hits the shard solver cache's totals.
func (t *Tracer) ShardDone(shard, status string, queries, hits uint64, wall time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KShardDone, Func: shard, Status: status, N: queries, Hits: hits, Wall: wall})
}

// WorkerRestart marks a worker subprocess crash or timeout whose shard was
// re-scheduled; attempt is the 0-based index of the attempt that failed.
func (t *Tracer) WorkerRestart(shard, reason string, attempt int) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KWorkerRestart, Func: shard, Status: reason, N: uint64(attempt)})
}

// StoreHit marks a graph-store lookup answered from the cache: bytes is
// the entry's encoded payload size, wall the decode latency (the cost the
// hit paid instead of a lift).
func (t *Tracer) StoreHit(name string, bytes uint64, wall time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KStore, Func: name, Status: "hit", N: bytes, Wall: wall})
}

// StoreMiss marks a graph-store lookup that found no usable entry; reason
// distinguishes why (absent, stale code bytes, version skew, corruption).
func (t *Tracer) StoreMiss(name, reason string) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KStore, Func: name, Status: "miss", Detail: reason})
}

// StoreWrite marks a freshly lifted result being appended to the graph
// store (bytes = encoded payload size).
func (t *Tracer) StoreWrite(name string, bytes uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KStore, Func: name, Status: "write", N: bytes})
}

// StoreError marks a failed store append; like checkpoint write errors the
// run keeps going — the entry is simply not cached — so this is a warning.
func (t *Tracer) StoreError(name string, err error) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KStore, Func: name, Status: "write-error", Detail: err.Error()})
}

// StoreFlush marks the graph store persisting its buffered entries in one
// locked read-merge-write cycle (the daemon's write mode): entries is how
// many the store holds after the merge, wall the cycle's latency.
func (t *Tracer) StoreFlush(entries int, wall time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KStore, Status: "flush", N: uint64(entries), Wall: wall})
}

// ServeAdmit marks the daemon admitting one submitted request into the
// bounded lift queue: id names the request, tenant the submitting client
// class, depth the queue depth after admission.
func (t *Tracer) ServeAdmit(id, tenant string, depth int) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KServe, Func: id, Status: "admit", Detail: tenant, N: uint64(depth)})
}

// ServeReject marks an admission rejection — the global queue or the
// tenant's share of it is saturated; the client saw 429 + Retry-After.
func (t *Tracer) ServeReject(id, tenant, reason string) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KServe, Func: id, Status: "reject", Detail: tenant + ": " + reason})
}

// ServeDone marks one admitted request completing: status is the request
// outcome ("ok", "cancelled", "error"), wall the admit-to-finish latency.
func (t *Tracer) ServeDone(id, tenant, status string, wall time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KServe, Func: id, Status: status, Detail: tenant, Wall: wall})
}

// Lint marks one hglint diagnostic against the graph of fn: severity
// rides in Status, the rule name and message in Detail.
func (t *Tracer) Lint(fn, vertex string, addr uint64, severity, rule, msg string) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KLint, Func: fn, Vertex: vertex, Addr: addr,
		Status: severity, Detail: rule + ": " + msg})
}
