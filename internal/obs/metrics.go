package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
)

// numHistBuckets bounds the wall-time histogram: exponential buckets from
// 1µs doubling up to ~0.5s, plus one overflow bucket.
const numHistBuckets = 20

// histBuckets are the bucket upper bounds; the overflow bucket is +Inf.
var histBuckets = func() []time.Duration {
	b := make([]time.Duration, numHistBuckets)
	d := time.Microsecond
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}()

// Histogram counts durations into fixed exponential buckets. All fields
// are atomics, so concurrent lift workers observe without locking.
type Histogram struct {
	counts [numHistBuckets + 1]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	n      atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.Search(len(histBuckets), func(i int) bool { return d <= histBuckets[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// dump renders the non-empty buckets as "≤bound:count" pairs.
func (h *Histogram) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d sum=%s", h.n.Load(), h.Sum().Round(time.Microsecond))
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if i < len(histBuckets) {
			fmt.Fprintf(&b, " ≤%s:%d", histBuckets[i], c)
		} else {
			fmt.Fprintf(&b, " >%s:%d", histBuckets[len(histBuckets)-1], c)
		}
	}
	return b.String()
}

// Metrics is an atomic registry of named counters and wall-time
// histograms, and a Sink that aggregates the event stream into them. The
// counters it derives from events are sums of per-lift quantities that do
// not depend on scheduling, so — with the single exception of
// "solver.hits", which depends on the interleaving of concurrent misses
// on the shared memo cache — a corpus run aggregates to identical counter
// values at -jobs 1 and -jobs N. Histograms record wall times and are
// inherently timing-dependent.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Uint64
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*atomic.Uint64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it at zero.
func (m *Metrics) Counter(name string) *atomic.Uint64 {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &atomic.Uint64{}
		m.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it empty.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.hists[name]; h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Emit aggregates one event into the registry.
func (m *Metrics) Emit(e Event) {
	switch e.Kind {
	case KStep:
		m.Counter("explore.steps").Add(1)
	case KJoin:
		m.Counter("explore.joins").Add(1)
	case KFork:
		m.Counter("memmodel.fork").Add(e.N)
	case KDestroy:
		m.Counter("memmodel.destroy").Add(1)
	case KFallback:
		m.Counter("memmodel.fallback").Add(1)
	case KPtrAnalyze:
		m.Counter("ptr.analyses").Add(1)
		m.Counter("ptr.facts").Add(e.N)
		m.Counter("ptr.hypotheses").Add(e.Hits)
		m.Histogram("ptr.wall").Observe(e.Wall)
	case KFactHit:
		m.Counter("ptr.hits").Add(1)
	case KSolver:
		m.Counter("solver.queries").Add(1)
		if e.Hit {
			m.Counter("solver.hits").Add(1)
		}
	case KObligation:
		m.Counter("obligations").Add(1)
	case KLiftFinish:
		m.Counter("lift." + e.Status).Add(1)
		m.Histogram("lift.wall").Observe(e.Wall)
	case KTaskFinish:
		m.Counter("task." + e.Status).Add(1)
		m.Histogram("task.wall").Observe(e.Wall)
	case KWatchdog:
		m.Counter("watchdog.abandoned").Add(1)
	case KTheorem:
		m.Counter("theorem." + e.Status).Add(1)
	case KLint:
		m.Counter("lint." + e.Status).Add(1)
	case KRetry:
		m.Counter("task.retries").Add(1)
	case KQuarantine:
		m.Counter("task.quarantined").Add(1)
	case KCheckpoint:
		m.Counter("checkpoint." + e.Status).Add(1)
	case KShardStart:
		m.Counter("dist.shards").Add(1)
		m.Counter("dist.units").Add(e.N)
	case KShardDone:
		m.Counter("dist.shard." + e.Status).Add(1)
		m.Counter("dist.solver.queries").Add(e.N)
		m.Counter("dist.solver.hits").Add(e.Hits)
		m.Histogram("dist.shard.wall").Observe(e.Wall)
	case KWorkerRestart:
		m.Counter("dist.worker.restarts").Add(1)
	case KStore:
		switch e.Status {
		case "hit":
			m.Counter("store.hits").Add(1)
			m.Counter("store.bytes").Add(e.N)
			m.Histogram("store.decode.wall").Observe(e.Wall)
		case "miss":
			m.Counter("store.misses").Add(1)
		case "write":
			m.Counter("store.writes").Add(1)
			m.Counter("store.bytes").Add(e.N)
		case "flush":
			m.Counter("store.flushes").Add(1)
			m.Histogram("store.flush.wall").Observe(e.Wall)
		default:
			m.Counter("store." + e.Status).Add(1)
		}
	case KServe:
		switch e.Status {
		case "admit":
			m.Counter("serve.admitted").Add(1)
		case "reject":
			m.Counter("serve.rejected").Add(1)
		default:
			m.Counter("serve.done." + e.Status).Add(1)
			m.Histogram("serve.request.wall").Observe(e.Wall)
		}
	}
}

// CounterSnapshot returns the current counter values by name.
func (m *Metrics) CounterSnapshot() map[string]uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]uint64, len(m.counters))
	for name, c := range m.counters {
		out[name] = c.Load()
	}
	return out
}

// Dump renders the registry as text: counters first, then the intern-table
// gauges, then histograms, each section sorted by name. Counter lines are
// deterministic in the workload (modulo solver.hits, see the type comment);
// the intern gauges read the process-global expression table live (they are
// not event-driven counters — emitting an event per interned node would
// swamp the trace — and are excluded from CounterSnapshot for the same
// reason); histogram lines report wall times and vary run to run.
func (m *Metrics) Dump() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.counters))
	for name := range m.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-24s %d\n", name, m.counters[name].Load())
	}
	ist := expr.TableStats()
	fmt.Fprintf(&b, "%-24s %d\n", "intern.entries", ist.Entries)
	fmt.Fprintf(&b, "%-24s %d\n", "intern.hits", ist.Hits)
	hnames := make([]string, 0, len(m.hists))
	for name := range m.hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		fmt.Fprintf(&b, "%-24s %s\n", name, m.hists[name].dump())
	}
	return b.String()
}
