package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// jsonEvent is the JSONL wire form of an Event: short keys, empties
// omitted, and a wall-clock timestamp stamped at emission (the Event
// itself carries none so that trace-free emission stays allocation-free
// and deterministic).
type jsonEvent struct {
	T      time.Time     `json:"t"`
	Kind   Kind          `json:"k"`
	Lift   string        `json:"lift,omitempty"`
	Func   string        `json:"func,omitempty"`
	Addr   uint64        `json:"addr,omitempty"`
	Vertex string        `json:"vertex,omitempty"`
	Status string        `json:"status,omitempty"`
	Detail string        `json:"detail,omitempty"`
	N      uint64        `json:"n,omitempty"`
	Hit    bool          `json:"hit,omitempty"`
	Wall   time.Duration `json:"wall_ns,omitempty"`
}

// JSONL writes one JSON object per event to an io.Writer — the `-trace
// out.jsonl` format of hglift and xenbench. Lines from concurrent lift
// workers interleave, so consumers must group by the "lift" label rather
// than assume contiguity; within one lift the order is the emission order.
//
// Emission is buffered (a corpus run emits millions of step and solver
// events; a write syscall per event would dominate the trace cost), so the
// tail of the trace lives in memory until Flush. Err and Flush both drain
// the buffer: every exit path of the batch commands — including a run
// cancelled mid-corpus by SIGINT — checks Err before closing the file, so
// a cancelled run keeps its tail.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink encoding onto w through an internal buffer;
// call Flush (or Err, which flushes too) before reading what was written.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 64<<10)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Emit encodes the event as one line. The first encoding error is kept
// and stops further output (a closed file mid-run must not wedge a lift).
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(jsonEvent{
		T: time.Now(), Kind: e.Kind, Lift: e.Lift, Func: e.Func,
		Addr: e.Addr, Vertex: e.Vertex, Status: e.Status, Detail: e.Detail,
		N: e.N, Hit: e.Hit, Wall: e.Wall,
	})
}

// Flush drains buffered events to the underlying writer and returns the
// first error seen (encoding or flushing).
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

func (j *JSONL) flushLocked() error {
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Err flushes buffered events and returns the first error, if any. Exit
// paths may therefore call Err alone; a nil return guarantees the full
// trace reached the writer.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

// Ring is a bounded in-memory sink holding the most recent events — the
// test harness's golden-trace buffer, and cheap enough to leave attached
// as a flight recorder.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// NewRing returns a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit records the event, evicting the oldest once full.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped reports how many events were evicted after the ring filled.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
