package emu

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/elf64"
	"repro/internal/expr"
	"repro/internal/image"
	"repro/internal/sem"
	"repro/internal/x86"
)

const textBase = 0x401000

func buildImage(t *testing.T, build func(a *x86.Asm)) *image.Image {
	t.Helper()
	a := x86.NewAsm(textBase)
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	b := elf64.NewExec(textBase)
	b.AddSection(".text", elf64.SHFExecinstr, textBase, code)
	img, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	im, err := image.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestFactorialLoop(t *testing.T) {
	// rax = rdi! computed with a cmp/jbe loop.
	im := buildImage(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 4))
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.ImmOp(1, 4))
		a.Label("loop")
		a.I(x86.CMP, x86.RegOp(x86.RCX, 8), x86.RegOp(x86.RDI, 8))
		a.Jcc(x86.CondA, "done")
		a.I(x86.IMUL, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 8))
		a.I(x86.ADD, x86.RegOp(x86.RCX, 8), x86.ImmOp(1, 1))
		a.Jmp("loop")
		a.Label("done")
		a.I(x86.RET)
	})
	c := New(im)
	c.Regs[x86.RDI] = 6
	if _, err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted || c.Regs[x86.RAX] != 720 {
		t.Fatalf("6! = %d (halted=%v)", c.Regs[x86.RAX], c.Halted)
	}
}

func TestCallReturn(t *testing.T) {
	im := buildImage(t, func(a *x86.Asm) {
		a.Call("double")
		a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 1))
		a.I(x86.RET)
		a.Label("double")
		a.I(x86.LEA, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RDI, x86.RDI, 1, 0, 8))
		a.I(x86.RET)
	})
	c := New(im)
	c.Regs[x86.RDI] = 21
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[x86.RAX] != 43 {
		t.Fatalf("2*21+1 = %d", c.Regs[x86.RAX])
	}
}

func TestStackArray(t *testing.T) {
	// Sum a 4-element stack array through a counted loop.
	im := buildImage(t, func(a *x86.Asm) {
		a.I(x86.PUSH, x86.RegOp(x86.RBP, 8))
		a.I(x86.MOV, x86.RegOp(x86.RBP, 8), x86.RegOp(x86.RSP, 8))
		a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x20, 4))
		for i := 0; i < 4; i++ {
			a.I(x86.MOV, x86.MemOp(x86.RBP, x86.RegNone, 1, int64(-32+8*i), 8), x86.ImmOp(int64(10+i), 4))
		}
		a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
		a.I(x86.XOR, x86.RegOp(x86.RCX, 4), x86.RegOp(x86.RCX, 4))
		a.Label("loop")
		a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RBP, x86.RCX, 8, -32, 8))
		a.I(x86.ADD, x86.RegOp(x86.RCX, 8), x86.ImmOp(1, 1))
		a.I(x86.CMP, x86.RegOp(x86.RCX, 8), x86.ImmOp(4, 1))
		a.Jcc(x86.CondB, "loop")
		a.I(x86.LEAVE)
		a.I(x86.RET)
	})
	c := New(im)
	if _, err := c.Run(200); err != nil {
		t.Fatal(err)
	}
	if c.Regs[x86.RAX] != 10+11+12+13 {
		t.Fatalf("sum = %d", c.Regs[x86.RAX])
	}
	if c.Regs[x86.RSP] != StackTop {
		t.Fatalf("stack not balanced: %#x", c.Regs[x86.RSP])
	}
}

func TestExternalCall(t *testing.T) {
	// .plt stub at a fixed address; a call into it runs the handler.
	a := x86.NewAsm(textBase)
	a.CallAbs(0x400500)
	a.I(x86.RET)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	plt := x86.NewAsm(0x400500)
	plt.I(x86.JMP, x86.MemOp(x86.RIP, x86.RegNone, 1, 0x100, 8))
	pltCode, _ := plt.Finish()
	b := elf64.NewExec(textBase)
	b.AddSection(".text", elf64.SHFExecinstr, textBase, code)
	b.AddSection(".plt", elf64.SHFExecinstr, 0x400500, pltCode)
	b.AddFunc("getval@plt", 0x400500, uint64(len(pltCode)))
	img, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	im, err := image.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	c := New(im)
	c.Externals["getval"] = func(c *CPU) { c.Regs[x86.RAX] = 0x77 }
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[x86.RAX] != 0x77 {
		t.Fatalf("external result: %#x", c.Regs[x86.RAX])
	}
	// Terminating externals halt the CPU.
	c2 := New(im)
	delete(c2.Externals, "getval")
	c2.Reset(textBase)
	c2.Externals = map[string]func(c *CPU){}
	// rename the stub's behaviour by calling the default path
	if _, err := c2.Run(10); err != nil {
		t.Fatal(err)
	}
	if c2.Regs[x86.RAX] != 0 {
		t.Fatalf("default external must zero rax: %#x", c2.Regs[x86.RAX])
	}
}

func TestTraceRecording(t *testing.T) {
	im := buildImage(t, func(a *x86.Asm) {
		a.I(x86.NOP)
		a.Jmp("end")
		a.I(x86.UD2)
		a.Label("end")
		a.I(x86.RET)
	})
	c := New(im)
	trace, err := c.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 2 {
		t.Fatalf("trace: %+v", trace)
	}
	if trace[0].From != textBase || trace[0].To != textBase+1 {
		t.Fatalf("first transition: %+v", trace[0])
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	im := buildImage(t, func(a *x86.Asm) {
		a.I(x86.XOR, x86.RegOp(x86.RCX, 4), x86.RegOp(x86.RCX, 4))
		a.I(x86.XOR, x86.RegOp(x86.RDX, 4), x86.RegOp(x86.RDX, 4))
		a.I(x86.DIV, x86.RegOp(x86.RCX, 8))
		a.I(x86.RET)
	})
	c := New(im)
	if _, err := c.Run(10); err == nil {
		t.Fatal("divide by zero must fault")
	}
}

// TestDifferentialSemVsEmu runs random straight-line ALU sequences both
// concretely (emulator) and symbolically from a fully concrete initial
// state: the symbolic semantics must fold to exactly the emulator's
// values. This validates the hand-written τ the way the paper validates
// machine-learned semantics against hardware.
func TestDifferentialSemVsEmu(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	regs := []x86.Reg{x86.RAX, x86.RBX, x86.RCX, x86.RDX, x86.RSI, x86.RDI, x86.R8, x86.R9}
	sizes := []int{1, 2, 4, 8}

	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(10)
		var instrs []func(a *x86.Asm)
		for i := 0; i < n; i++ {
			r1 := regs[rng.Intn(len(regs))]
			r2 := regs[rng.Intn(len(regs))]
			size := sizes[rng.Intn(len(sizes))]
			imm8 := int64(int8(rng.Intn(256)))
			switch rng.Intn(12) {
			case 0:
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.ADD, x86.RegOp(r1, size), x86.RegOp(r2, size)) })
			case 1:
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.SUB, x86.RegOp(r1, size), x86.RegOp(r2, size)) })
			case 2:
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.AND, x86.RegOp(r1, size), x86.RegOp(r2, size)) })
			case 3:
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.OR, x86.RegOp(r1, size), x86.RegOp(r2, size)) })
			case 4:
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.XOR, x86.RegOp(r1, size), x86.RegOp(r2, size)) })
			case 5:
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.MOV, x86.RegOp(r1, size), x86.RegOp(r2, size)) })
			case 6:
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.NOT, x86.RegOp(r1, size)) })
			case 7:
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.NEG, x86.RegOp(r1, size)) })
			case 8:
				sh := int64(rng.Intn(8))
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.SHL, x86.RegOp(r1, size), x86.ImmOp(sh, 1)) })
			case 9:
				sh := int64(rng.Intn(8))
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.SHR, x86.RegOp(r1, size), x86.ImmOp(sh, 1)) })
			case 10:
				if size > 1 {
					instrs = append(instrs, func(a *x86.Asm) { a.I(x86.MOVZX, x86.RegOp(r1, size), x86.RegOp(r2, 1)) })
				} else {
					instrs = append(instrs, func(a *x86.Asm) { a.I(x86.INC, x86.RegOp(r1, size)) })
				}
			default:
				instrs = append(instrs, func(a *x86.Asm) { a.I(x86.ADD, x86.RegOp(r1, size), x86.ImmOp(imm8, 1)) })
			}
		}
		im := buildImage(t, func(a *x86.Asm) {
			for _, f := range instrs {
				f(a)
			}
			a.I(x86.RET)
		})
		var asmText []string
		{
			addr := uint64(textBase)
			for {
				in, err := im.Fetch(addr)
				if err != nil {
					break
				}
				asmText = append(asmText, in.String())
				if in.Mn == x86.RET {
					break
				}
				addr = in.Next()
			}
		}

		// Concrete run.
		c := New(im)
		init := make([]uint64, len(regs))
		for i, r := range regs {
			init[i] = rng.Uint64()
			c.Regs[r] = init[i]
		}
		if _, err := c.Run(n + 2); err != nil {
			t.Fatal(err)
		}

		// Symbolic run from the same concrete state.
		mach := sem.NewMachine(im, sem.DefaultConfig())
		st := sem.NewState()
		for i, r := range regs {
			st.Pred.SetReg(r, expr.Word(init[i]))
		}
		addr := uint64(textBase)
		for i := 0; i < n; i++ {
			inst, err := im.Fetch(addr)
			if err != nil {
				t.Fatal(err)
			}
			outs, err := mach.Step(st, inst)
			if err != nil {
				t.Fatal(err)
			}
			if len(outs) != 1 {
				t.Fatalf("trial %d: %s forked %d ways on concrete state", trial, inst.String(), len(outs))
			}
			st = outs[0].State
			addr, _ = outs[0].Resolved()
		}
		for i, r := range regs {
			got := st.Pred.Reg(r)
			w, ok := got.AsWord()
			if !ok {
				t.Fatalf("trial %d: %s not concrete after symbolic run: %v", trial, r, got)
			}
			if w != c.Regs[r] {
				t.Fatalf("trial %d: %s symbolic %#x vs concrete %#x (init %#x)\n%s", trial, r, w, c.Regs[r], init[i], strings.Join(asmText, "\n"))
			}
		}
	}
}
