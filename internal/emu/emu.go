// Package emu is a concrete x86-64 emulator for the instruction subset the
// lifter supports. It provides ground truth: differential tests check the
// symbolic semantics against it on concrete inputs, and the Hoare-graph
// soundness tests check that every transition of a concrete run is
// simulated by an edge of the lifted graph (Definition 4.6).
package emu

import (
	"fmt"
	"math/bits"

	"repro/internal/image"
	"repro/internal/x86"
)

// StackTop is the initial stack pointer of a run.
const StackTop = 0x7ffffff000

// Sentinel is the return address pushed at startup; a ret to it halts.
const Sentinel = 0xdead0000dead

// CPU is a concrete machine state.
type CPU struct {
	Regs  [16]uint64
	RIP   uint64
	Flags [x86.NumFlags]bool
	mem   map[uint64]byte
	img   *image.Image
	// Externals maps external function names (PLT stubs) to handlers. A
	// nil handler entry or missing name uses the default: clobber
	// caller-saved registers and return 0.
	Externals map[string]func(c *CPU)
	// Halted is set when the CPU executed hlt/ud2 or returned to the
	// sentinel.
	Halted bool
	// Steps counts executed instructions.
	Steps int
}

// New returns a CPU at the image entry with an initialised stack.
func New(img *image.Image) *CPU {
	c := &CPU{img: img, mem: map[uint64]byte{}, Externals: map[string]func(c *CPU){}}
	c.Reset(img.Entry())
	return c
}

// Reset rewinds the CPU to a fresh state starting at addr.
func (c *CPU) Reset(addr uint64) {
	c.mem = map[uint64]byte{}
	c.Regs = [16]uint64{}
	c.Flags = [x86.NumFlags]bool{}
	c.Halted = false
	c.Steps = 0
	c.RIP = addr
	c.Regs[x86.RSP] = StackTop
	c.push(Sentinel)
}

// ReadMem reads size bytes little-endian, falling back to the image's
// initialised data.
func (c *CPU) ReadMem(addr uint64, size int) uint64 {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(c.readByte(addr+uint64(i)))
	}
	return v
}

func (c *CPU) readByte(addr uint64) byte {
	if b, ok := c.mem[addr]; ok {
		return b
	}
	if b, ok := c.img.File().ReadAt(addr, 1); ok {
		return b[0]
	}
	return 0
}

// WriteMem writes size bytes little-endian.
func (c *CPU) WriteMem(addr uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		c.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

func (c *CPU) push(v uint64) {
	c.Regs[x86.RSP] -= 8
	c.WriteMem(c.Regs[x86.RSP], 8, v)
}

func (c *CPU) pop() uint64 {
	v := c.ReadMem(c.Regs[x86.RSP], 8)
	c.Regs[x86.RSP] += 8
	return v
}

func maskFor(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(uint(size)*8) - 1
}

func signBit(size int) uint64 { return 1 << (uint(size)*8 - 1) }

// readOp evaluates an operand.
func (c *CPU) readOp(o x86.Operand) uint64 {
	switch o.Kind {
	case x86.OpImm:
		// Immediates are sign-extended to 64 bits at decode time; the
		// consuming operation masks to its own width.
		return uint64(o.Imm)
	case x86.OpReg:
		return c.Regs[o.Reg] & maskFor(o.Size)
	case x86.OpMem:
		return c.ReadMem(c.addrOf(o), o.Size)
	}
	return 0
}

// addrOf computes a memory operand's effective address.
func (c *CPU) addrOf(o x86.Operand) uint64 {
	if o.Base == x86.RIP {
		return uint64(o.Disp) // absolutised at decode time
	}
	a := uint64(o.Disp)
	if o.Base != x86.RegNone {
		a += c.Regs[o.Base]
	}
	if o.Index != x86.RegNone {
		a += c.Regs[o.Index] * uint64(o.Scale)
	}
	return a
}

// writeOp writes a value to an operand with x86 merge semantics.
func (c *CPU) writeOp(o x86.Operand, v uint64) {
	switch o.Kind {
	case x86.OpReg:
		switch o.Size {
		case 8:
			c.Regs[o.Reg] = v
		case 4:
			c.Regs[o.Reg] = v & maskFor(4)
		default:
			m := maskFor(o.Size)
			c.Regs[o.Reg] = c.Regs[o.Reg]&^m | v&m
		}
	case x86.OpMem:
		c.WriteMem(c.addrOf(o), o.Size, v)
	}
}

func (c *CPU) setFlagsZSP(res uint64, size int) {
	res &= maskFor(size)
	c.Flags[x86.ZF] = res == 0
	c.Flags[x86.SF] = res&signBit(size) != 0
	c.Flags[x86.PF] = bits.OnesCount8(uint8(res))%2 == 0
}

func (c *CPU) setFlagsAdd(a, b, carry uint64, size int) uint64 {
	m := maskFor(size)
	a &= m
	b &= m
	res := (a + b + carry) & m
	c.Flags[x86.CF] = res < a || (carry == 1 && res == a && b == m)
	sa, sb, sr := a&signBit(size) != 0, b&signBit(size) != 0, res&signBit(size) != 0
	c.Flags[x86.OF] = sa == sb && sr != sa
	c.setFlagsZSP(res, size)
	return res
}

func (c *CPU) setFlagsSub(a, b, borrow uint64, size int) uint64 {
	m := maskFor(size)
	a &= m
	b &= m
	res := (a - b - borrow) & m
	c.Flags[x86.CF] = a < b+borrow || (borrow == 1 && b == m)
	sa, sb, sr := a&signBit(size) != 0, b&signBit(size) != 0, res&signBit(size) != 0
	c.Flags[x86.OF] = sa != sb && sr != sa
	c.setFlagsZSP(res, size)
	return res
}

func (c *CPU) setFlagsLogic(res uint64, size int) uint64 {
	c.Flags[x86.CF] = false
	c.Flags[x86.OF] = false
	c.setFlagsZSP(res, size)
	return res & maskFor(size)
}

// Cond evaluates a condition code against the current flags.
func (c *CPU) Cond(cc x86.Cond) bool {
	var v bool
	switch cc &^ 1 {
	case x86.CondO:
		v = c.Flags[x86.OF]
	case x86.CondB:
		v = c.Flags[x86.CF]
	case x86.CondE:
		v = c.Flags[x86.ZF]
	case x86.CondBE:
		v = c.Flags[x86.CF] || c.Flags[x86.ZF]
	case x86.CondS:
		v = c.Flags[x86.SF]
	case x86.CondP:
		v = c.Flags[x86.PF]
	case x86.CondL:
		v = c.Flags[x86.SF] != c.Flags[x86.OF]
	case x86.CondLE:
		v = c.Flags[x86.ZF] || c.Flags[x86.SF] != c.Flags[x86.OF]
	}
	if cc&1 != 0 {
		v = !v
	}
	return v
}

// defaultExternal models an unknown external function: caller-saved
// registers are clobbered with a recognisable pattern and rax is zeroed.
func defaultExternal(c *CPU) {
	for _, r := range x86.CallerSaved {
		c.Regs[r] = 0xc10bbe7ed
	}
	c.Regs[x86.RAX] = 0
}

// Step executes one instruction. It returns the executed instruction so
// callers can record (from, to) transitions.
func (c *CPU) Step() (x86.Inst, error) {
	if c.Halted {
		return x86.Inst{}, fmt.Errorf("emu: cpu is halted")
	}
	// A PLT stub pending? Externals are handled at call time.
	inst, err := c.img.Fetch(c.RIP)
	if err != nil {
		return x86.Inst{}, fmt.Errorf("emu: at %#x: %w", c.RIP, err)
	}
	c.Steps++
	next := inst.Next()
	ops := inst.Ops
	size := 0
	if len(ops) > 0 {
		size = ops[0].Size
	}

	switch inst.Mn {
	case x86.NOP, x86.ENDBR64:
	case x86.HLT, x86.UD2, x86.INT3:
		c.Halted = true
		return inst, nil
	case x86.SYSCALL:
		defaultExternal(c)
	case x86.MOV:
		c.writeOp(ops[0], c.readOp(ops[1]))
	case x86.MOVZX:
		c.writeOp(ops[0], c.readOp(ops[1]))
	case x86.MOVSX, x86.MOVSXD:
		v := signExtend(c.readOp(ops[1]), ops[1].Size)
		c.writeOp(ops[0], v&maskFor(ops[0].Size))
	case x86.LEA:
		c.writeOp(ops[0], c.addrOf(ops[1])&maskFor(size))
	case x86.ADD:
		c.writeOp(ops[0], c.setFlagsAdd(c.readOp(ops[0]), c.readOp(ops[1]), 0, size))
	case x86.ADC:
		carry := uint64(0)
		if c.Flags[x86.CF] {
			carry = 1
		}
		c.writeOp(ops[0], c.setFlagsAdd(c.readOp(ops[0]), c.readOp(ops[1]), carry, size))
	case x86.SUB:
		c.writeOp(ops[0], c.setFlagsSub(c.readOp(ops[0]), c.readOp(ops[1]), 0, size))
	case x86.SBB:
		borrow := uint64(0)
		if c.Flags[x86.CF] {
			borrow = 1
		}
		c.writeOp(ops[0], c.setFlagsSub(c.readOp(ops[0]), c.readOp(ops[1]), borrow, size))
	case x86.CMP:
		c.setFlagsSub(c.readOp(ops[0]), c.readOp(ops[1]), 0, size)
	case x86.TEST:
		c.setFlagsLogic(c.readOp(ops[0])&c.readOp(ops[1]), size)
	case x86.AND:
		c.writeOp(ops[0], c.setFlagsLogic(c.readOp(ops[0])&c.readOp(ops[1]), size))
	case x86.OR:
		c.writeOp(ops[0], c.setFlagsLogic(c.readOp(ops[0])|c.readOp(ops[1]), size))
	case x86.XOR:
		c.writeOp(ops[0], c.setFlagsLogic(c.readOp(ops[0])^c.readOp(ops[1]), size))
	case x86.NOT:
		c.writeOp(ops[0], ^c.readOp(ops[0])&maskFor(size))
	case x86.NEG:
		c.writeOp(ops[0], c.setFlagsSub(0, c.readOp(ops[0]), 0, size))
	case x86.INC:
		cf := c.Flags[x86.CF] // inc preserves CF
		c.writeOp(ops[0], c.setFlagsAdd(c.readOp(ops[0]), 1, 0, size))
		c.Flags[x86.CF] = cf
	case x86.DEC:
		cf := c.Flags[x86.CF]
		c.writeOp(ops[0], c.setFlagsSub(c.readOp(ops[0]), 1, 0, size))
		c.Flags[x86.CF] = cf
	case x86.IMUL:
		if err := c.stepIMul(inst); err != nil {
			return inst, err
		}
	case x86.MUL:
		a := c.Regs[x86.RAX] & maskFor(size)
		b := c.readOp(ops[0])
		hi, lo := bits.Mul64(a, b)
		if size < 8 {
			full := a * b
			lo = full & maskFor(size)
			hi = (full >> (uint(size) * 8)) & maskFor(size)
		}
		c.writeOp(x86.RegOp(x86.RAX, size), lo)
		c.writeOp(x86.RegOp(x86.RDX, size), hi)
	case x86.DIV:
		b := c.readOp(ops[0])
		if b == 0 {
			return inst, fmt.Errorf("emu: divide by zero at %#x", inst.Addr)
		}
		a := c.Regs[x86.RAX] & maskFor(size)
		d := c.Regs[x86.RDX] & maskFor(size)
		if size == 8 && d == 0 {
			c.Regs[x86.RAX] = a / b
			c.Regs[x86.RDX] = a % b
		} else {
			full := d<<(uint(size)*8) | a
			c.writeOp(x86.RegOp(x86.RAX, size), full/b)
			c.writeOp(x86.RegOp(x86.RDX, size), full%b)
		}
	case x86.IDIV:
		b := int64(signExtend(c.readOp(ops[0]), size))
		if b == 0 {
			return inst, fmt.Errorf("emu: divide by zero at %#x", inst.Addr)
		}
		a := int64(signExtend(c.Regs[x86.RAX]&maskFor(size), size))
		if a == -1<<63 && b == -1 {
			return inst, fmt.Errorf("emu: idiv overflow at %#x", inst.Addr)
		}
		c.writeOp(x86.RegOp(x86.RAX, size), uint64(a/b)&maskFor(size))
		c.writeOp(x86.RegOp(x86.RDX, size), uint64(a%b)&maskFor(size))
	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		c.stepShift(inst)
	case x86.BT, x86.BTS, x86.BTR, x86.BTC:
		// Register/immediate offsets only (the decoder produces these);
		// memory forms take the offset modulo the operand width, as for
		// register destinations.
		v := c.readOp(ops[0])
		off := c.readOp(ops[1]) % (uint64(size) * 8)
		bit := v >> off & 1
		c.Flags[x86.CF] = bit == 1
		switch inst.Mn {
		case x86.BTS:
			c.writeOp(ops[0], v|1<<off)
		case x86.BTR:
			c.writeOp(ops[0], v&^(1<<off))
		case x86.BTC:
			c.writeOp(ops[0], v^1<<off)
		}
	case x86.BSF, x86.BSR:
		v := c.readOp(ops[1])
		c.Flags[x86.ZF] = v == 0
		if v != 0 {
			if inst.Mn == x86.BSF {
				c.writeOp(ops[0], uint64(bits.TrailingZeros64(v)))
			} else {
				c.writeOp(ops[0], uint64(bits.Len64(v)-1))
			}
		}
	case x86.POPCNT:
		v := c.readOp(ops[1])
		c.writeOp(ops[0], uint64(bits.OnesCount64(v)))
		c.Flags[x86.ZF] = v == 0
		c.Flags[x86.CF] = false
		c.Flags[x86.OF] = false
		c.Flags[x86.SF] = false
	case x86.XADD:
		a := c.readOp(ops[0])
		bv := c.readOp(ops[1])
		sum := c.setFlagsAdd(a, bv, 0, size)
		c.writeOp(ops[1], a)
		c.writeOp(ops[0], sum)
	case x86.CMPXCHG:
		dst := c.readOp(ops[0])
		acc := c.Regs[x86.RAX] & maskFor(size)
		c.setFlagsSub(acc, dst, 0, size)
		if acc == dst {
			c.writeOp(ops[0], c.readOp(ops[1]))
		} else {
			c.writeOp(x86.RegOp(x86.RAX, size), dst)
		}
	case x86.MOVS, x86.STOS:
		count := uint64(1)
		if inst.Rep {
			count = c.Regs[x86.RCX]
		}
		esz := uint64(size)
		for i := uint64(0); i < count; i++ {
			var v uint64
			if inst.Mn == x86.MOVS {
				v = c.ReadMem(c.Regs[x86.RSI], size)
				c.Regs[x86.RSI] += esz
			} else {
				v = c.Regs[x86.RAX] & maskFor(size)
			}
			c.WriteMem(c.Regs[x86.RDI], size, v)
			c.Regs[x86.RDI] += esz
		}
		if inst.Rep {
			c.Regs[x86.RCX] = 0
		}
	case x86.BSWAP:
		v := c.readOp(ops[0])
		if size == 8 {
			c.writeOp(ops[0], bits.ReverseBytes64(v))
		} else {
			c.writeOp(ops[0], uint64(bits.ReverseBytes32(uint32(v))))
		}
	case x86.PUSH:
		c.push(uint64(int64(signExtend(c.readOp(ops[0]), ops[0].Size))))
	case x86.POP:
		c.writeOp(ops[0], c.pop())
	case x86.LEAVE:
		c.Regs[x86.RSP] = c.Regs[x86.RBP]
		c.Regs[x86.RBP] = c.pop()
	case x86.XCHG:
		a, b := c.readOp(ops[0]), c.readOp(ops[1])
		c.writeOp(ops[0], b)
		c.writeOp(ops[1], a)
	case x86.CDQE:
		if len(inst.Bytes) > 0 && inst.Bytes[0] == 0x48 {
			c.Regs[x86.RAX] = signExtend(c.Regs[x86.RAX]&maskFor(4), 4)
		} else {
			c.writeOp(x86.RegOp(x86.RAX, 4), signExtend(c.Regs[x86.RAX]&maskFor(2), 2)&maskFor(4))
		}
	case x86.CDQ:
		c.writeOp(x86.RegOp(x86.RDX, 4), signExtend(c.Regs[x86.RAX]&maskFor(4), 4)>>32&maskFor(4))
	case x86.CQO:
		c.Regs[x86.RDX] = uint64(int64(c.Regs[x86.RAX]) >> 63)
	case x86.SETCC:
		v := uint64(0)
		if c.Cond(inst.Cond) {
			v = 1
		}
		c.writeOp(ops[0], v)
	case x86.CMOVCC:
		if c.Cond(inst.Cond) {
			c.writeOp(ops[0], c.readOp(ops[1]))
		}
	case x86.JMP:
		if tgt, ok := inst.Target(); ok {
			c.RIP = tgt
		} else {
			c.RIP = c.readOp(ops[0])
		}
		return inst, nil
	case x86.JCC:
		if c.Cond(inst.Cond) {
			tgt, _ := inst.Target()
			c.RIP = tgt
			return inst, nil
		}
	case x86.CALL:
		tgt, ok := inst.Target()
		if !ok {
			tgt = c.readOp(ops[0])
		}
		if name, isPLT := c.img.PLTName(tgt); isPLT {
			c.runExternal(name)
			break // fall through to next
		}
		c.push(next)
		c.RIP = tgt
		return inst, nil
	case x86.RET:
		ra := c.pop()
		if len(ops) == 1 {
			c.Regs[x86.RSP] += uint64(ops[0].Imm)
		}
		if ra == Sentinel {
			c.Halted = true
			c.RIP = ra
			return inst, nil
		}
		c.RIP = ra
		return inst, nil
	default:
		return inst, fmt.Errorf("emu: no semantics for %s", inst.String())
	}
	c.RIP = next
	return inst, nil
}

// runExternal dispatches a call into a PLT stub.
func (c *CPU) runExternal(name string) {
	if h, ok := c.Externals[name]; ok && h != nil {
		h(c)
		return
	}
	switch name {
	case "exit", "abort", "_exit", "err", "errx", "__stack_chk_fail", "pthread_exit":
		c.Halted = true
		return
	}
	defaultExternal(c)
}

func (c *CPU) stepIMul(inst x86.Inst) error {
	ops := inst.Ops
	switch len(ops) {
	case 1:
		size := ops[0].Size
		a := int64(signExtend(c.Regs[x86.RAX]&maskFor(size), size))
		b := int64(signExtend(c.readOp(ops[0]), size))
		hi, lo := bits.Mul64(uint64(a), uint64(b))
		if a < 0 {
			hi -= uint64(b)
		}
		if b < 0 {
			hi -= uint64(a)
		}
		if size < 8 {
			full := uint64(a * b)
			lo = full & maskFor(size)
			hi = (full >> (uint(size) * 8)) & maskFor(size)
		}
		c.writeOp(x86.RegOp(x86.RAX, size), lo&maskFor(size))
		c.writeOp(x86.RegOp(x86.RDX, size), hi&maskFor(size))
	case 2:
		size := ops[0].Size
		a := int64(signExtend(c.readOp(ops[0]), size))
		b := int64(signExtend(c.readOp(ops[1]), size))
		c.writeOp(ops[0], uint64(a*b)&maskFor(size))
	default:
		size := ops[0].Size
		a := int64(signExtend(c.readOp(ops[1]), size))
		c.writeOp(ops[0], uint64(a*ops[2].Imm)&maskFor(size))
	}
	return nil
}

func (c *CPU) stepShift(inst x86.Inst) {
	ops := inst.Ops
	size := ops[0].Size
	countMask := uint64(63)
	if size < 8 {
		countMask = 31
	}
	n := c.readOp(ops[1]) & countMask
	a := c.readOp(ops[0])
	bitsN := uint64(size) * 8
	var res uint64
	switch inst.Mn {
	case x86.SHL:
		res = a << n
	case x86.SHR:
		res = a >> n
	case x86.SAR:
		res = uint64(int64(signExtend(a, size)) >> n)
	case x86.ROL:
		n %= bitsN
		if n == 0 {
			res = a
		} else {
			res = a<<n | a>>(bitsN-n)
		}
	case x86.ROR:
		n %= bitsN
		if n == 0 {
			res = a
		} else {
			res = a>>n | a<<(bitsN-n)
		}
	}
	res &= maskFor(size)
	if n != 0 && (inst.Mn == x86.SHL || inst.Mn == x86.SHR || inst.Mn == x86.SAR) {
		c.setFlagsZSP(res, size)
	}
	c.writeOp(ops[0], res)
}

func signExtend(v uint64, size int) uint64 {
	switch size {
	case 1:
		return uint64(int64(int8(v)))
	case 2:
		return uint64(int64(int16(v)))
	case 4:
		return uint64(int64(int32(v)))
	}
	return v
}

// Transition is one executed control-flow edge (from, to).
type Transition struct {
	From, To uint64
}

// Run executes up to maxSteps instructions, recording every (from, to)
// transition between executable addresses. It stops at halts, sentinels or
// errors (the error is returned alongside the partial trace).
func (c *CPU) Run(maxSteps int) ([]Transition, error) {
	var trace []Transition
	for i := 0; i < maxSteps && !c.Halted; i++ {
		from := c.RIP
		_, err := c.Step()
		if err != nil {
			return trace, err
		}
		if !c.Halted {
			trace = append(trace, Transition{From: from, To: c.RIP})
		}
	}
	return trace, nil
}
