package emu

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/sem"
	"repro/internal/x86"
)

func TestBitOps(t *testing.T) {
	im := buildImage(t, func(a *x86.Asm) {
		a.I(x86.BTS, x86.RegOp(x86.RAX, 8), x86.ImmOp(5, 1)) // set bit 5
		a.I(x86.BTC, x86.RegOp(x86.RAX, 8), x86.ImmOp(0, 1)) // toggle bit 0
		a.I(x86.BTR, x86.RegOp(x86.RAX, 8), x86.ImmOp(5, 1)) // clear bit 5
		a.I(x86.BT, x86.RegOp(x86.RAX, 8), x86.ImmOp(0, 1))  // test bit 0 → CF
		a.Icc(x86.SETCC, x86.CondB, x86.RegOp(x86.RBX, 1))   // rbx = CF
		a.I(x86.RET)
	})
	c := New(im)
	c.Regs[x86.RAX] = 0
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[x86.RAX] != 1 {
		t.Fatalf("rax = %#x", c.Regs[x86.RAX])
	}
	if c.Regs[x86.RBX]&0xff != 1 {
		t.Fatalf("setc after bt: %#x", c.Regs[x86.RBX])
	}
}

func TestScanAndCount(t *testing.T) {
	im := buildImage(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(0x70, 4))
		a.I(x86.BSF, x86.RegOp(x86.RBX, 8), x86.RegOp(x86.RAX, 8))
		a.I(x86.BSR, x86.RegOp(x86.RCX, 8), x86.RegOp(x86.RAX, 8))
		a.I(x86.POPCNT, x86.RegOp(x86.RDX, 8), x86.RegOp(x86.RAX, 8))
		a.I(x86.BSWAP, x86.RegOp(x86.RAX, 8))
		a.I(x86.RET)
	})
	c := New(im)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[x86.RBX] != 4 || c.Regs[x86.RCX] != 6 || c.Regs[x86.RDX] != 3 {
		t.Fatalf("bsf=%d bsr=%d popcnt=%d", c.Regs[x86.RBX], c.Regs[x86.RCX], c.Regs[x86.RDX])
	}
	if c.Regs[x86.RAX] != 0x7000000000000000 {
		t.Fatalf("bswap: %#x", c.Regs[x86.RAX])
	}
}

func TestXaddCmpxchg(t *testing.T) {
	im := buildImage(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RBX, 8), x86.ImmOp(10, 4))
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.ImmOp(32, 4))
		a.I(x86.XADD, x86.RegOp(x86.RBX, 8), x86.RegOp(x86.RCX, 8)) // rbx=42, rcx=10
		// cmpxchg: rax == rbx? then rbx := rdx; else rax := rbx.
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(42, 4))
		a.I(x86.MOV, x86.RegOp(x86.RDX, 8), x86.ImmOp(7, 4))
		a.I(x86.CMPXCHG, x86.RegOp(x86.RBX, 8), x86.RegOp(x86.RDX, 8))
		a.I(x86.RET)
	})
	c := New(im)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[x86.RBX] != 7 || c.Regs[x86.RCX] != 10 {
		t.Fatalf("xadd/cmpxchg: rbx=%d rcx=%d", c.Regs[x86.RBX], c.Regs[x86.RCX])
	}
	if !c.Flags[x86.ZF] {
		t.Fatal("cmpxchg equal must set ZF")
	}
}

// TestDifferentialExtendedISA cross-checks the symbolic semantics of the
// bit-manipulation family against the emulator on concrete inputs.
func TestDifferentialExtendedISA(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	regs := []x86.Reg{x86.RAX, x86.RBX, x86.RCX, x86.RDX}
	for trial := 0; trial < 40; trial++ {
		r1 := regs[rng.Intn(len(regs))]
		r2 := regs[rng.Intn(len(regs))]
		mns := []x86.Mnemonic{x86.BTS, x86.BTR, x86.BTC, x86.BSF, x86.BSR, x86.POPCNT, x86.XADD, x86.BSWAP}
		mn := mns[rng.Intn(len(mns))]
		im := buildImage(t, func(a *x86.Asm) {
			switch mn {
			case x86.BTS, x86.BTR, x86.BTC:
				a.I(mn, x86.RegOp(r1, 8), x86.ImmOp(int64(rng.Intn(64)), 1))
			case x86.BSWAP:
				a.I(mn, x86.RegOp(r1, 8))
			default:
				if r1 == r2 {
					r2 = x86.RDX
					if r1 == x86.RDX {
						r1 = x86.RAX
					}
				}
				a.I(mn, x86.RegOp(r1, 8), x86.RegOp(r2, 8))
			}
			a.I(x86.RET)
		})
		init := map[x86.Reg]uint64{}
		for _, r := range regs {
			init[r] = rng.Uint64()
			if rng.Intn(4) == 0 {
				init[r] = 0 // exercise the zero cases of bsf/bsr
			}
		}

		c := New(im)
		for r, v := range init {
			c.Regs[r] = v
		}
		if _, err := c.Run(4); err != nil {
			t.Fatal(err)
		}

		mach := sem.NewMachine(im, sem.DefaultConfig())
		st := sem.NewState()
		for r, v := range init {
			st.Pred.SetReg(r, expr.Word(v))
		}
		inst, _ := im.Fetch(0x401000)
		outs, err := mach.Step(st, inst)
		if err != nil {
			t.Fatal(err)
		}
		// Undecided forks are allowed (cmpxchg); a concrete input makes
		// everything decided here, so expect one outcome.
		if len(outs) != 1 {
			t.Fatalf("trial %d (%s): %d outcomes", trial, inst.String(), len(outs))
		}
		srcZero := init[r2] == 0 && (mn == x86.BSF || mn == x86.BSR)
		for _, r := range regs {
			got := outs[0].State.Pred.Reg(r)
			w, ok := got.AsWord()
			if !ok {
				if srcZero && r == r1 {
					continue // dst undefined when the source is zero
				}
				t.Fatalf("trial %d (%s): %s symbolic: %v", trial, inst.String(), r, got)
			}
			if w != c.Regs[r] && !(srcZero && r == r1) {
				t.Fatalf("trial %d (%s): %s sem=%#x emu=%#x", trial, inst.String(), r, w, c.Regs[r])
			}
		}
	}
}

func TestStringOps(t *testing.T) {
	im := buildImage(t, func(a *x86.Asm) {
		// rep stosq: fill 4 qwords at [rdi] with rax.
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(0x11, 4))
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.ImmOp(4, 4))
		a.Raw(0xf3, 0x48, 0xab) // rep stosq
		// movsb once: copy a byte from [rsi] to [rdi].
		a.Raw(0xa4)
		a.I(x86.RET)
	})
	c := New(im)
	c.Regs[x86.RDI] = 0x7ffff000
	c.Regs[x86.RSI] = 0x7ffff000 // reads back the first fill byte
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := c.ReadMem(0x7ffff000+uint64(8*i), 8); got != 0x11 {
			t.Fatalf("stos fill at %d: %#x", i, got)
		}
	}
	if c.Regs[x86.RCX] != 0 {
		t.Fatalf("rcx after rep: %d", c.Regs[x86.RCX])
	}
	if c.Regs[x86.RDI] != 0x7ffff000+32+1 {
		t.Fatalf("rdi: %#x", c.Regs[x86.RDI])
	}
	if got := c.ReadMem(0x7ffff020, 1); got != 0x11 {
		t.Fatalf("movsb: %#x", got)
	}
}

func TestStringOpsDecode(t *testing.T) {
	cases := map[string][]byte{
		"rep stosq": {0xf3, 0x48, 0xab},
		"rep stosb": {0xf3, 0xaa},
		"stosd":     {0xab},
		"rep movsq": {0xf3, 0x48, 0xa5},
		"movsb":     {0xa4},
	}
	for want, bytes := range cases {
		inst, err := x86.Decode(bytes, 0)
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if inst.String() != want {
			t.Fatalf("% x: got %q want %q", bytes, inst.String(), want)
		}
		// Round trip through the encoder.
		enc, err := x86.Encode(inst)
		if err != nil {
			t.Fatalf("encode %s: %v", want, err)
		}
		again, err := x86.Decode(enc, 0)
		if err != nil || again.String() != want {
			t.Fatalf("re-decode %s: %q %v", want, again.String(), err)
		}
	}
}

// TestDifferentialMemoryOps cross-checks symbolic vs concrete execution on
// random sequences that traffic through stack slots with mixed widths. All
// state (registers and seeded slots) is established by instructions, so
// both engines interpret exactly the same program.
func TestDifferentialMemoryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	regs := []x86.Reg{x86.RAX, x86.RBX, x86.RCX, x86.RDX}
	sizes := []int{1, 2, 4, 8}
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		type op struct {
			load bool
			r    x86.Reg
			off  int64
			size int
		}
		var ops []op
		for i := 0; i < n; i++ {
			ops = append(ops, op{
				load: rng.Intn(2) == 0,
				r:    regs[rng.Intn(len(regs))],
				off:  -8 * int64(1+rng.Intn(6)),
				size: sizes[rng.Intn(len(sizes))],
			})
		}
		seeds := make([]int64, 8)
		for i := range seeds {
			seeds[i] = int64(rng.Uint64())
		}
		im := buildImage(t, func(a *x86.Asm) {
			// Seed slots -64..-8 and the four registers via instructions.
			for i, off := int64(0), int64(-64); off < 0; i, off = i+1, off+8 {
				a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(seeds[i], 8))
				a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, off, 8), x86.RegOp(x86.RAX, 8))
			}
			for i, r := range regs {
				a.I(x86.MOV, x86.RegOp(r, 8), x86.ImmOp(seeds[i]^0x5555, 8))
			}
			for _, o := range ops {
				if o.load {
					a.I(x86.MOV, x86.RegOp(o.r, o.size), x86.MemOp(x86.RSP, x86.RegNone, 1, o.off, o.size))
				} else {
					a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, o.off, o.size), x86.RegOp(o.r, o.size))
				}
			}
			a.I(x86.RET)
		})
		total := 16 + len(regs) + n

		c := New(im)
		if _, err := c.Run(total + 2); err != nil {
			t.Fatal(err)
		}

		mach := sem.NewMachine(im, sem.DefaultConfig())
		st := sem.NewState()
		st.Pred.SetReg(x86.RSP, expr.V("rsp0"))
		addr := uint64(0x401000)
		for i := 0; i < total; i++ {
			inst, err := im.Fetch(addr)
			if err != nil {
				t.Fatal(err)
			}
			outs, err := mach.Step(st, inst)
			if err != nil {
				t.Fatal(err)
			}
			if len(outs) != 1 {
				t.Fatalf("trial %d: %s forked %d ways", trial, inst.String(), len(outs))
			}
			st = outs[0].State
			addr, _ = outs[0].Resolved()
		}
		for _, r := range regs {
			got := st.Pred.Reg(r)
			w, ok := got.AsWord()
			if !ok {
				t.Fatalf("trial %d: %s symbolic after concrete program: %v", trial, r, got)
			}
			if w != c.Regs[r] {
				t.Fatalf("trial %d: %s sem=%#x emu=%#x", trial, r, w, c.Regs[r])
			}
		}
	}
}
