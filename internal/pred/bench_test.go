package pred

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/x86"
)

// benchPred builds a predicate of the shape the lifter produces mid-loop:
// register clauses, a handful of memory clauses, and interval clauses on
// join variables.
func benchPred(tag string) *Pred {
	p := New()
	rsp := expr.V("rsp0")
	p.SetReg(x86.RSP, expr.Sub(rsp, expr.Word(0x40)))
	p.SetReg(x86.RBP, expr.Sub(rsp, expr.Word(8)))
	p.SetReg(x86.RDI, expr.V("rdi0"))
	p.SetReg(x86.RAX, expr.V(expr.Var("jv_"+tag)))
	for i := 0; i < 6; i++ {
		addr := expr.Add(rsp, expr.Word(uint64(^uint64(0)-uint64(8*i)+1)))
		p.WriteMem(addr, 8, expr.V(expr.Var(fmt.Sprintf("m%d_%s", i, tag))))
	}
	for i := 0; i < 8; i++ {
		p.AddRange(expr.V(expr.Var(fmt.Sprintf("j%d_%s", i, tag))), Range{Lo: 0, Hi: uint64(16 << i)})
	}
	return p
}

// BenchmarkRangesKey measures deriving the solver-memo fingerprint of the
// interval clause set after a mutation (AddRange invalidates the cache, as
// every branch refinement does).
func BenchmarkRangesKey(b *testing.B) {
	p := benchPred("a")
	idx := expr.V("idx")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddRange(idx, Range{Lo: 0, Hi: 0xff})
		_ = p.RangesKey()
	}
}

// BenchmarkJoin measures the predicate join of Definition 3.3 on two
// predicates that share most clauses — the fixed-point iteration shape.
func BenchmarkJoin(b *testing.B) {
	p := benchPred("a")
	q := benchPred("a")
	q.SetReg(x86.RCX, expr.Word(0x10))
	p.SetReg(x86.RCX, expr.Word(0x20))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Join(p, q, "v1")
		if out.IsBot() {
			b.Fatal("join must not be bottom")
		}
	}
}

// BenchmarkLeq measures the fixed-point test itself (join + comparison with
// the stored state).
func BenchmarkLeq(b *testing.B) {
	p := benchPred("a")
	q := Join(p, benchPred("a"), "v1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Leq(p, q, "v1") {
			b.Fatal("p must be below its own join")
		}
	}
}
