package pred

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/x86"
)

// Join computes P ⊔ Q per Definition 3.3: clauses present in both operands
// are kept; pairs of equality clauses on the same state part with different
// constant words are merged into interval clauses by range abstraction
// (Example 3.4); clauses with no common abstraction are dropped. The result
// satisfies s ⊢ P ∨ Q ⟹ s ⊢ P ⊔ Q.
//
// Range abstraction introduces a deterministic join variable per state part,
// scoped by vid (the Hoare-graph vertex identity). Determinism makes the
// join idempotent up to predicate keys, so the exploration's fixed point
// (σ ⊑ σc ⟺ σ ⊔ σc = σc) is detectable by comparing keys. Intervals that
// keep growing across joins are widened away after a bounded number of
// growth steps, so there is no infinitely ascending chain.
func Join(p, q *Pred, vid string) *Pred {
	if p.bot {
		return q.Clone()
	}
	if q.bot {
		return p.Clone()
	}
	out := New()

	// Registers.
	for i := range p.regs {
		r := x86.Reg(i)
		jname := joinVarName(vid, r.String())
		e, ri, ok := joinValue(p, q, p.regs[i], q.regs[i], jname)
		if !ok {
			continue
		}
		out.regs[i] = e
		if ri != nil {
			out.ranges[e] = *ri
		}
	}

	// Flags: kept only when equal on both sides.
	for f := range p.flags {
		if p.flags[f] != nil && q.flags[f] != nil && p.flags[f].Equal(q.flags[f]) {
			out.flags[f] = p.flags[f]
		}
	}
	out.cmp = joinCmp(p, q, out)

	// Memory clauses: a region survives only if both operands constrain it.
	for k, pe := range p.mem {
		qe, ok := q.mem[k]
		if !ok {
			continue
		}
		// The join-variable name embeds the human-readable region key, as it
		// always has — names are part of the canonical output.
		jname := joinVarName(vid, "m"+sanitize(regionKey(pe.Addr, pe.Size)))
		e, ri, ok := joinValue(p, q, pe.Val, qe.Val, jname)
		if !ok {
			continue
		}
		out.mem[k] = MemEntry{Addr: pe.Addr, Size: pe.Size, Val: e}
		if ri != nil {
			out.ranges[e] = *ri
		}
	}

	// Interval clauses present in both sides: take the hull; widen away
	// intervals that keep growing.
	for k, pri := range p.ranges {
		qri, ok := q.ranges[k]
		if !ok {
			continue
		}
		if _, taken := out.ranges[k]; taken {
			continue // already produced by a join variable above
		}
		hull := Range{Lo: min(pri.r.Lo, qri.r.Lo), Hi: max(pri.r.Hi, qri.r.Hi)}
		widened, grows, ok := growHull(hull, qri.r, max(pri.grows, qri.grows))
		if !ok || widened.Lo == 0 && widened.Hi == ^uint64(0) {
			continue // dropped or vacuous
		}
		out.ranges[k] = rangeInfo{e: pri.e, r: widened, grows: grows}
	}
	return out
}

// joinCmp joins the flag-defining comparison descriptors. Identical
// descriptors are kept. When the left operands differ but both are the
// (width-masked) value of the same register, the descriptor is re-expressed
// over the joined register value — this is what lets a loop's bounds check
// keep refining the joined loop counter.
func joinCmp(p, q, out *Pred) *Cmp {
	pc, qc := p.cmp, q.cmp
	if pc == nil || qc == nil || pc.Kind != qc.Kind || pc.Size != qc.Size || !pc.Rhs.Equal(qc.Rhs) {
		return nil
	}
	if pc.Lhs.Equal(qc.Lhs) {
		return pc
	}
	matches := func(lhs, regVal *expr.Expr) bool {
		if regVal == nil {
			return false
		}
		return lhs.Equal(regVal) || lhs.Equal(expr.ZExt(regVal, pc.Size))
	}
	for i := range p.regs {
		if out.regs[i] == nil {
			continue
		}
		if matches(pc.Lhs, p.regs[i]) && matches(qc.Lhs, q.regs[i]) {
			return &Cmp{
				Kind: pc.Kind,
				Lhs:  expr.ZExt(out.regs[i], pc.Size),
				Rhs:  pc.Rhs,
				Size: pc.Size,
			}
		}
	}
	return nil
}

// joinValue merges the two equality clauses part = pe and part = qe.
// It returns the joined value, an optional interval on it, and whether any
// clause survives.
func joinValue(p, q *Pred, pe, qe *expr.Expr, jname expr.Var) (*expr.Expr, *rangeInfo, bool) {
	if pe == nil && qe == nil {
		return nil, nil, false
	}
	jv := expr.V(jname)
	if pe == nil || qe == nil {
		// One side is unconstrained: the join variable with no interval
		// stands for "some value" — keeping the state part named lets
		// later branch refinements re-bound it.
		return jv, nil, true
	}
	if pe.Equal(qe) {
		// Identical values are kept as-is — unless they are interval
		// abstractions (a stored clause constrains them), in which case
		// they are re-abstracted to this vertex's join variable so the
		// surviving value can never outlive its interval clause.
		_, pstored := p.ranges[pe]
		_, qstored := q.ranges[pe]
		if !pstored && !qstored {
			return pe, nil, true
		}
	}
	// Abstract each side to an interval: a word is a point interval; any
	// value with a derivable interval abstracts to it (Definition 3.3's
	// range abstraction). Sides with no derivable interval, and hulls
	// that keep growing past the widening stages, abstract to the
	// unconstrained join variable.
	pr, pok := sideRange(p, pe, jv)
	qr, qok := sideRange(q, qe, jv)
	if !pok || !qok {
		return jv, nil, true
	}
	hull := Range{Lo: min(pr.r.Lo, qr.r.Lo), Hi: max(pr.r.Hi, qr.r.Hi)}
	widened, grows, ok := growHull(hull, qr.r, max(pr.grows, qr.grows))
	if !ok || widened.Lo == 0 && widened.Hi == ^uint64(0) {
		return jv, nil, true
	}
	return jv, &rangeInfo{e: jv, r: widened, grows: grows}, true
}

// sideRange abstracts one operand's value to an interval: a word is a
// point interval, and any value with a derivable interval clause (the
// state part's own join variable, another vertex's join variable, a masked
// expression) abstracts to that interval — the range abstraction of
// Definition 3.3.
func sideRange(p *Pred, e, jv *expr.Expr) (rangeInfo, bool) {
	if w, ok := e.AsWord(); ok {
		return rangeInfo{e: jv, r: Range{w, w}}, true
	}
	if r, ok := p.RangeOf(e); ok {
		// The widening counter is per state part per vertex: it carries
		// over only through this part's own join variable. A foreign
		// value's ladder position (e.g. a loop counter joined at another
		// vertex) must not escalate this vertex's widening.
		grows := 0
		if e.Equal(jv) {
			if ri, stored := p.ranges[e]; stored {
				grows = ri.grows
			}
		}
		return rangeInfo{e: jv, r: r, grows: grows}, true
	}
	return rangeInfo{}, false
}

func joinVarName(vid, part string) expr.Var {
	return expr.Var(fmt.Sprintf("j%s_%s", vid, part))
}

// sanitize turns a region key into an identifier fragment.
func sanitize(k string) string {
	var b strings.Builder
	for _, r := range k {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Leq reports p ⊑ q, i.e. q is equally or more abstract: joining p into q
// at the same vertex changes nothing. Same compares the clause sets directly
// (pointer compares on interned clauses) instead of rendering both
// predicates to key strings.
func Leq(p, q *Pred, vid string) bool {
	return Join(p, q, vid).Same(q)
}
