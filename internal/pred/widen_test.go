package pred

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/x86"
)

// TestWideningLadder drives a join chain through its three stages: exact
// hulls, power-of-sixteen jumps, and the final drop.
func TestWideningLadder(t *testing.T) {
	cur := New()
	cur.SetReg(x86.RAX, expr.Word(0))
	sawExact, sawJump := false, false
	for i := 1; i < 60; i++ {
		next := New()
		next.SetReg(x86.RAX, expr.Word(uint64(i)))
		j := Join(next, cur, "vw")
		v := j.Reg(x86.RAX)
		if v == nil {
			t.Fatalf("iteration %d: clause dropped (never-nil join must keep it)", i)
		}
		r, ok := j.RangeOf(v)
		if !ok {
			// The ladder ended: the variable is unconstrained. Must only
			// happen after a jump stage.
			if !sawJump {
				t.Fatalf("iteration %d: dropped before any jump", i)
			}
			return
		}
		if r.Hi == uint64(i) {
			sawExact = true
		}
		if r.Hi > uint64(i) && (r.Hi+1)&r.Hi == 0 {
			sawJump = true // power-of-two-minus-one bound
		}
		cur = j
	}
	if !sawExact || !sawJump {
		t.Fatalf("ladder stages not observed: exact=%v jump=%v", sawExact, sawJump)
	}
	// With values within a jumped bound the chain is stable.
	stable := New()
	stable.SetReg(x86.RAX, expr.Word(3))
	j := Join(stable, cur, "vw")
	if j.Key() != cur.Key() {
		t.Fatal("in-bound value must not change the fixed point")
	}
}

func TestRangesIterator(t *testing.T) {
	p := New()
	p.AddRange(expr.V("b"), Range{1, 2})
	p.AddRange(expr.V("a"), Range{3, 4})
	var got []string
	p.Ranges(func(e *expr.Expr, r Range) {
		got = append(got, e.Key())
	})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("iteration order: %v", got)
	}
}

func TestCodePointerParts(t *testing.T) {
	p := New()
	p.SetReg(x86.RAX, expr.Word(0x401000))
	p.WriteMem(expr.V("rdi0"), 8, expr.Word(0x401020))
	p.WriteMem(expr.V("rsi0"), 8, expr.Word(0x99)) // not a code pointer
	parts := p.CodePointerParts(0x400000, 0x500000)
	if len(parts) != 2 {
		t.Fatalf("parts: %v", parts)
	}
}

func TestVacuousRangeSkipped(t *testing.T) {
	p := New()
	p.AddRange(expr.V("x"), Range{0, ^uint64(0)})
	if _, ok := p.RangeOf(expr.V("x")); ok {
		t.Fatal("vacuous interval must not be stored")
	}
}

func TestAddRangeShiftNormalisation(t *testing.T) {
	// A clause on x + 5 normalises to a clause on x.
	p := New()
	e := expr.Add(expr.V("x"), expr.Word(5))
	p.AddRange(e, Range{10, 20})
	if r, ok := p.RangeOf(expr.V("x")); !ok || r != (Range{5, 15}) {
		t.Fatalf("shifted clause: %+v %v", r, ok)
	}
}

func TestRangeOfCompositeClause(t *testing.T) {
	// A stored clause on (a + b) bounds 8·(a + b) + k.
	p := New()
	sum := expr.Add(expr.V("a"), expr.V("b"))
	p.AddRange(sum, Range{0, 7})
	e := expr.Add(expr.Mul(expr.Word(8), sum), expr.Word(0x100))
	r, ok := p.RangeOf(e)
	if !ok || r != (Range{0x100, 0x138}) {
		t.Fatalf("composite range: %+v %v", r, ok)
	}
}

func TestJoinCmpRebuild(t *testing.T) {
	// Two states with the same comparison shape over different rax values:
	// the joined descriptor re-expresses over the joined register.
	p, q := New(), New()
	p.SetReg(x86.RAX, expr.Word(3))
	p.SetCmp(&Cmp{Kind: CmpSub, Lhs: expr.Word(3), Rhs: expr.Word(7), Size: 8})
	q.SetReg(x86.RAX, expr.Word(5))
	q.SetCmp(&Cmp{Kind: CmpSub, Lhs: expr.Word(5), Rhs: expr.Word(7), Size: 8})
	j := Join(p, q, "vc")
	c := j.LastCmp()
	if c == nil {
		t.Fatal("descriptor must be rebuilt over the joined register")
	}
	if !c.Lhs.Equal(j.Reg(x86.RAX)) {
		t.Fatalf("rebuilt lhs: %v vs reg %v", c.Lhs, j.Reg(x86.RAX))
	}
}
