package pred

import (
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/x86"
)

func TestRegClauses(t *testing.T) {
	p := New()
	if p.Reg(x86.RAX) != nil {
		t.Fatal("fresh predicate must be ⊤")
	}
	p.SetReg(x86.RAX, expr.V("rdi0"))
	if got := p.Reg(x86.RAX); !got.Equal(expr.V("rdi0")) {
		t.Fatalf("rax = %v", got)
	}
	p.SetReg(x86.RAX, nil)
	if p.Reg(x86.RAX) != nil {
		t.Fatal("clearing failed")
	}
}

func TestMemClauses(t *testing.T) {
	p := New()
	addr := expr.Add(expr.V("rsp0"), expr.Word(0xfffffffffffffff8)) // rsp0 - 8
	p.WriteMem(addr, 8, expr.V("rbx0"))
	if v, ok := p.ReadMem(addr, 8); !ok || !v.Equal(expr.V("rbx0")) {
		t.Fatalf("read back: %v %v", v, ok)
	}
	// Different size is a different region clause.
	if _, ok := p.ReadMem(addr, 4); ok {
		t.Fatal("size must distinguish clauses")
	}
	p.DropMem(addr, 8)
	if _, ok := p.ReadMem(addr, 8); ok {
		t.Fatal("drop failed")
	}
}

func TestRanges(t *testing.T) {
	p := New()
	v := expr.V("x")
	p.AddRange(v, Range{0, 0xc3})
	r, ok := p.RangeOf(v)
	if !ok || r != (Range{0, 0xc3}) {
		t.Fatalf("range: %+v %v", r, ok)
	}
	// Intersection narrows.
	p.AddRange(v, Range{5, 0x200})
	r, _ = p.RangeOf(v)
	if r != (Range{5, 0xc3}) {
		t.Fatalf("narrowed: %+v", r)
	}
	// Contradiction ⇒ ⊥.
	p.AddRange(v, Range{0x300, 0x400})
	if !p.IsBot() {
		t.Fatal("contradictory ranges must give ⊥")
	}
}

func TestRangeOfLinear(t *testing.T) {
	p := New()
	v := expr.V("idx")
	p.AddRange(v, Range{0, 10})
	// 4·idx + 0x1000 ∈ [0x1000, 0x1028].
	e := expr.Add(expr.Mul(expr.Word(4), v), expr.Word(0x1000))
	r, ok := p.RangeOf(e)
	if !ok || r != (Range{0x1000, 0x1028}) {
		t.Fatalf("linear range: %+v %v", r, ok)
	}
	// Constant.
	if r, ok := p.RangeOf(expr.Word(7)); !ok || r != (Range{7, 7}) {
		t.Fatal("const range")
	}
	// Unconstrained term: no interval.
	if _, ok := p.RangeOf(expr.V("other")); ok {
		t.Fatal("unconstrained must have no interval")
	}
}

func TestAddRangeOnWord(t *testing.T) {
	p := New()
	p.AddRange(expr.Word(5), Range{0, 10}) // satisfied, no clause
	if p.IsBot() || len(p.ranges) != 0 {
		t.Fatal("in-range word must be a no-op")
	}
	p.AddRange(expr.Word(50), Range{0, 10})
	if !p.IsBot() {
		t.Fatal("out-of-range word must give ⊥")
	}
}

func TestJoinEqualClausesKept(t *testing.T) {
	p, q := New(), New()
	p.SetReg(x86.RBX, expr.V("rbx0"))
	q.SetReg(x86.RBX, expr.V("rbx0"))
	p.SetReg(x86.RAX, expr.V("a"))
	q.SetReg(x86.RAX, expr.V("b"))
	j := Join(p, q, "v1")
	if got := j.Reg(x86.RBX); !got.Equal(expr.V("rbx0")) {
		t.Fatalf("shared clause lost: %v", got)
	}
	// Incompatible values abstract to an unconstrained join variable.
	jv := j.Reg(x86.RAX)
	if jv == nil || jv.Kind() != expr.KindVar {
		t.Fatalf("incompatible clause must abstract to a join variable, got %v", jv)
	}
	if _, ok := j.RangeOf(jv); ok {
		t.Fatal("the abstraction of two unbounded values must be unconstrained")
	}
}

// TestJoinRangeAbstraction reproduces Example 3.4: {a=3} ⊔ {a=4} becomes
// an interval clause a ∈ [3,4].
func TestJoinRangeAbstraction(t *testing.T) {
	p, q := New(), New()
	p.SetReg(x86.RAX, expr.Word(3))
	q.SetReg(x86.RAX, expr.Word(4))
	j := Join(p, q, "v1")
	jv := j.Reg(x86.RAX)
	if jv == nil {
		t.Fatal("range abstraction must keep a clause")
	}
	r, ok := j.RangeOf(jv)
	if !ok || r != (Range{3, 4}) {
		t.Fatalf("joined range: %+v %v", r, ok)
	}
	// Joining the result with yet another word widens the interval.
	s := New()
	s.SetReg(x86.RAX, expr.Word(10))
	j2 := Join(s, j, "v1")
	r, ok = j2.RangeOf(j2.Reg(x86.RAX))
	if !ok || r != (Range{3, 10}) {
		t.Fatalf("re-joined range: %+v %v", r, ok)
	}
}

func TestJoinIdempotentFixedPoint(t *testing.T) {
	p, q := New(), New()
	p.SetReg(x86.RAX, expr.Word(3))
	q.SetReg(x86.RAX, expr.Word(4))
	j := Join(p, q, "v1")
	// p ⊑ j and q ⊑ j.
	if !Leq(p, j, "v1") || !Leq(q, j, "v1") {
		t.Fatal("operands must be below the join")
	}
	// j ⊔ j = j.
	if Join(j, j, "v1").Key() != j.Key() {
		t.Fatal("join must be idempotent")
	}
}

func TestJoinTermination(t *testing.T) {
	// Repeatedly joining ever-growing constants must reach a state where
	// the clause is widened away rather than growing forever.
	cur := New()
	cur.SetReg(x86.RAX, expr.Word(0))
	stable := 0
	for i := 1; i < 100; i++ {
		next := New()
		next.SetReg(x86.RAX, expr.Word(uint64(i)*7))
		j := Join(next, cur, "v9")
		if j.Key() == cur.Key() {
			stable++
			if stable > 2 {
				break
			}
		} else {
			stable = 0
		}
		cur = j
	}
	if stable == 0 {
		t.Fatal("join chain did not stabilise")
	}
}

func TestJoinMemory(t *testing.T) {
	addr := expr.Sub(expr.V("rsp0"), expr.Word(16))
	p, q := New(), New()
	p.WriteMem(addr, 8, expr.V("rdi0"))
	q.WriteMem(addr, 8, expr.V("rdi0"))
	q.WriteMem(addr, 4, expr.Word(1)) // only in q
	j := Join(p, q, "v1")
	if v, ok := j.ReadMem(addr, 8); !ok || !v.Equal(expr.V("rdi0")) {
		t.Fatal("shared memory clause lost")
	}
	if _, ok := j.ReadMem(addr, 4); ok {
		t.Fatal("one-sided memory clause must be dropped")
	}
	// Word values get range-abstracted.
	p2, q2 := New(), New()
	p2.WriteMem(addr, 8, expr.Word(100))
	q2.WriteMem(addr, 8, expr.Word(200))
	j2 := Join(p2, q2, "v1")
	v, ok := j2.ReadMem(addr, 8)
	if !ok {
		t.Fatal("abstracted memory clause missing")
	}
	if r, ok := j2.RangeOf(v); !ok || r != (Range{100, 200}) {
		t.Fatalf("memory range: %+v", r)
	}
}

func TestJoinFlagsAndCmp(t *testing.T) {
	p, q := New(), New()
	c := &Cmp{Kind: CmpSub, Lhs: expr.V("a"), Rhs: expr.Word(0xc3), Size: 4}
	p.SetCmp(c)
	q.SetCmp(&Cmp{Kind: CmpSub, Lhs: expr.V("a"), Rhs: expr.Word(0xc3), Size: 4})
	j := Join(p, q, "v1")
	if j.LastCmp() == nil {
		t.Fatal("matching comparison descriptor must survive")
	}
	q.SetCmp(&Cmp{Kind: CmpSub, Lhs: expr.V("b"), Rhs: expr.Word(1), Size: 4})
	if Join(p, q, "v1").LastCmp() != nil {
		t.Fatal("mismatched comparison must be dropped")
	}
	p2, q2 := New(), New()
	p2.SetFlag(x86.ZF, expr.Word(1))
	q2.SetFlag(x86.ZF, expr.Word(1))
	q2.SetFlag(x86.CF, expr.Word(0))
	j2 := Join(p2, q2, "v1")
	if j2.Flag(x86.ZF) == nil || j2.Flag(x86.CF) != nil {
		t.Fatal("flag join")
	}
}

func TestJoinBot(t *testing.T) {
	p := New()
	p.SetReg(x86.RAX, expr.Word(1))
	if j := Join(Bot(), p, "v"); j.Key() != p.Key() {
		t.Fatal("⊥ ⊔ P must be P")
	}
	if j := Join(p, Bot(), "v"); j.Key() != p.Key() {
		t.Fatal("P ⊔ ⊥ must be P")
	}
}

func TestClone(t *testing.T) {
	p := New()
	p.SetReg(x86.RAX, expr.Word(1))
	p.WriteMem(expr.V("rsp0"), 8, expr.V("ret"))
	p.AddRange(expr.V("x"), Range{1, 2})
	q := p.Clone()
	q.SetReg(x86.RAX, expr.Word(2))
	q.WriteMem(expr.V("rsp0"), 8, expr.Word(0))
	q.AddRange(expr.V("x"), Range{2, 2})
	if !p.Reg(x86.RAX).IsWord(1) {
		t.Fatal("clone aliases registers")
	}
	if v, _ := p.ReadMem(expr.V("rsp0"), 8); !v.Equal(expr.V("ret")) {
		t.Fatal("clone aliases memory")
	}
	if r, _ := p.RangeOf(expr.V("x")); r != (Range{1, 2}) {
		t.Fatal("clone aliases ranges")
	}
}

func TestRegsHoldingWordsIn(t *testing.T) {
	p := New()
	p.SetReg(x86.RAX, expr.Word(0x401000))
	p.SetReg(x86.RBX, expr.Word(0x10))
	p.SetReg(x86.RCX, expr.V("x"))
	m := p.RegsHoldingWordsIn(0x400000, 0x500000)
	if len(m) != 1 || m[x86.RAX] != 0x401000 {
		t.Fatalf("code pointers: %v", m)
	}
}

func TestClausesRendering(t *testing.T) {
	p := New()
	if p.String() != "⊤" {
		t.Fatalf("top: %q", p.String())
	}
	if Bot().String() != "⊥" {
		t.Fatal("bot rendering")
	}
	p.SetReg(x86.RSP, expr.V("rsp0"))
	p.WriteMem(expr.V("rsp0"), 8, expr.V("a_r"))
	p.AddRange(expr.V("i"), Range{0, 5})
	s := p.String()
	for _, want := range []string{"rsp == rsp0", "*[rsp0,8] == a_r", "i >= 0x0", "i <= 0x5"} {
		if !contains(s, want) {
			t.Errorf("clauses %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: the join soundness criterion on point values — any word
// satisfying either operand's register clause satisfies the join (it lies
// in the abstracted interval).
func TestQuickJoinSoundness(t *testing.T) {
	f := func(a, b uint64) bool {
		p, q := New(), New()
		p.SetReg(x86.RAX, expr.Word(a))
		q.SetReg(x86.RAX, expr.Word(b))
		j := Join(p, q, "vq")
		jv := j.Reg(x86.RAX)
		if jv == nil {
			return true // dropped clause is trivially sound
		}
		r, ok := j.RangeOf(jv)
		return ok && r.Contains(a) && r.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: join is commutative up to predicate keys.
func TestQuickJoinCommutative(t *testing.T) {
	f := func(a, b uint64, sameReg bool) bool {
		p, q := New(), New()
		p.SetReg(x86.RAX, expr.Word(a))
		if sameReg {
			q.SetReg(x86.RAX, expr.Word(b))
		} else {
			q.SetReg(x86.RBX, expr.Word(b))
		}
		return Join(p, q, "vc").Key() == Join(q, p, "vc").Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
