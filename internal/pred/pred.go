// Package pred implements the predicates P of the paper (Section 3.1).
//
// A predicate is a set of clauses E □ C relating state parts to constant
// expressions. This implementation stores the clause set in solved form:
//
//   - one equality clause per register whose value is known, e.g.
//     rax = rdi0 + 8;
//   - equality clauses for memory regions, e.g. ∗[rsp0-16, 8] = rbx0;
//   - the flag-defining comparison (what cmp/test/sub last related), from
//     which the individual flag clauses are derived on demand;
//   - interval clauses e ≥ lo, e ≤ hi for constant expressions, produced
//     by branch refinement and by the join's range abstraction.
//
// The special predicates ⊤ (no clauses) and ⊥ (unsatisfiable) are
// represented by the empty predicate and the Bot flag. The join of
// Definition 3.3 merges equality clauses into interval clauses (range
// abstraction, Example 3.4) and drops clauses with no common abstraction.
package pred

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/x86"
)

// Range is an unsigned interval clause lo ≤ e ≤ hi.
type Range struct {
	Lo, Hi uint64
}

// Contains reports whether w lies in the interval.
func (r Range) Contains(w uint64) bool { return r.Lo <= w && w <= r.Hi }

// Width returns the number of values in the interval minus one.
func (r Range) Width() uint64 { return r.Hi - r.Lo }

// CmpKind says how the last flag-setting instruction computed the flags.
type CmpKind uint8

// The flag-defining computations tracked symbolically.
const (
	CmpNone CmpKind = iota
	CmpSub          // cmp / sub: flags of lhs - rhs
	CmpAnd          // test / and / or / xor: flags of the logical result
)

// Cmp is the flag-defining comparison descriptor.
type Cmp struct {
	Kind CmpKind
	Lhs  *expr.Expr // already masked to Size
	Rhs  *expr.Expr
	Size int // operand size in bytes
}

// MemEntry is one memory equality clause ∗[Addr, Size] = Val.
type MemEntry struct {
	Addr *expr.Expr // a constant expression (address in C)
	Size int
	Val  *expr.Expr
}

// regionKey renders the canonical clause key of a region. It survives only
// for human-facing output (join-variable names embed it); the clause maps
// themselves key on interned pointers.
func regionKey(addr *expr.Expr, size int) string {
	return fmt.Sprintf("%s#%d", addr.Key(), size)
}

// memKey identifies a memory region exactly: addresses are interned
// expressions, so the pair (address pointer, size) is a comparable map key
// with the same equality as the old "addrKey#size" string — built for free.
type memKey struct {
	addr *expr.Expr
	size int
}

// Pred is a predicate over concrete states.
type Pred struct {
	bot    bool
	regs   [17]*expr.Expr // indexed by x86.Reg; nil = unconstrained
	flags  [x86.NumFlags]*expr.Expr
	cmp    *Cmp
	mem    map[memKey]MemEntry
	ranges map[*expr.Expr]rangeInfo

	// rkey/rfp cache RangesKey and RangesFingerprint; invalidated whenever
	// the interval clause set mutates (AddRange). Both are immutable values,
	// so Clone may share them.
	rkey   string
	rkeyOK bool
	rfp    uint64
	rfpOK  bool
}

type rangeInfo struct {
	e     *expr.Expr
	r     Range
	grows int // widening counter: how many times the interval grew in joins
}

// Interval widening during joins proceeds in stages: the first growths
// take the exact hull (precise for short case splits), later growths jump
// the upper bound to the next power of two (loop counters with constant
// bounds stabilise after logarithmically many joins), and a clause whose
// interval keeps growing past the saturation point is dropped. This
// guarantees there is no infinitely ascending chain of predicates, i.e.
// the fixed point of Algorithm 1 terminates.
const (
	exactGrows = 8  // growths that take the exact hull
	maxGrows   = 24 // beyond this the clause is dropped
	hiSaturate = uint64(1) << 48
)

// growHull merges a freshly computed hull with the previously stored
// interval: unchanged hulls keep their clause as-is; grown hulls pass
// through the widening stages (exact first, then power-of-sixteen jumps);
// saturated or endlessly growing clauses are dropped.
func growHull(hull, prev Range, grows int) (Range, int, bool) {
	if hull == prev {
		return hull, grows, true
	}
	grows++
	if grows <= exactGrows {
		return hull, grows, true
	}
	if grows > maxGrows || hull.Hi >= hiSaturate {
		return Range{}, grows, false
	}
	// Jump to the next power-of-sixteen bound so ladders stabilise in a
	// handful of joins even for large loop bounds.
	p := uint64(16)
	for p != 0 && p <= hull.Hi {
		p <<= 4
	}
	if p == 0 {
		return Range{}, grows, false
	}
	hull.Hi = p - 1
	return hull, grows, true
}

// New returns the predicate ⊤.
func New() *Pred {
	return &Pred{
		mem:    map[memKey]MemEntry{},
		ranges: map[*expr.Expr]rangeInfo{},
	}
}

// Bot returns the predicate ⊥.
func Bot() *Pred {
	p := New()
	p.bot = true
	return p
}

// IsBot reports whether the predicate is ⊥.
func (p *Pred) IsBot() bool { return p.bot }

// Clone returns a deep copy.
func (p *Pred) Clone() *Pred {
	q := &Pred{
		bot:    p.bot,
		regs:   p.regs,
		flags:  p.flags,
		cmp:    p.cmp,
		mem:    make(map[memKey]MemEntry, len(p.mem)),
		ranges: make(map[*expr.Expr]rangeInfo, len(p.ranges)),
		rkey:   p.rkey,
		rkeyOK: p.rkeyOK,
		rfp:    p.rfp,
		rfpOK:  p.rfpOK,
	}
	for k, v := range p.mem {
		q.mem[k] = v
	}
	for k, v := range p.ranges {
		q.ranges[k] = v
	}
	return q
}

// Reg returns the constant expression the predicate assigns to the full
// 64-bit register, or nil if unconstrained.
func (p *Pred) Reg(r x86.Reg) *expr.Expr {
	if int(r) >= len(p.regs) {
		return nil
	}
	return p.regs[r]
}

// SetReg installs the equality clause r = e (e nil clears the clause).
func (p *Pred) SetReg(r x86.Reg, e *expr.Expr) {
	if int(r) < len(p.regs) {
		p.regs[r] = e
	}
}

// Flag returns the 0/1-valued expression for the given flag, or nil.
func (p *Pred) Flag(f x86.Flag) *expr.Expr { return p.flags[f] }

// SetFlag installs the clause f = e.
func (p *Pred) SetFlag(f x86.Flag, e *expr.Expr) { p.flags[f] = e }

// ClearFlags removes all flag clauses and the comparison descriptor.
func (p *Pred) ClearFlags() {
	for i := range p.flags {
		p.flags[i] = nil
	}
	p.cmp = nil
}

// SetCmp records the flag-defining comparison and clears individual flag
// clauses (they are implied by the descriptor).
func (p *Pred) SetCmp(c *Cmp) {
	p.ClearFlags()
	p.cmp = c
}

// LastCmp returns the flag-defining comparison descriptor, if any.
func (p *Pred) LastCmp() *Cmp { return p.cmp }

// ReadMem returns the value clause for region [addr, size], if present.
func (p *Pred) ReadMem(addr *expr.Expr, size int) (*expr.Expr, bool) {
	e, ok := p.mem[memKey{addr, size}]
	if !ok {
		return nil, false
	}
	return e.Val, true
}

// WriteMem installs the clause ∗[addr, size] = val.
func (p *Pred) WriteMem(addr *expr.Expr, size int, val *expr.Expr) {
	p.mem[memKey{addr, size}] = MemEntry{Addr: addr, Size: size, Val: val}
}

// DropMem removes the value clause for the exact region, if present.
func (p *Pred) DropMem(addr *expr.Expr, size int) {
	delete(p.mem, memKey{addr, size})
}

// MemEntries calls f for every memory clause in canonical order: sorted by
// (address key, size), which coincides with the old "addrKey#size" string
// order because '#' sorts below every character a key can contain.
func (p *Pred) MemEntries(f func(MemEntry)) {
	entries := make([]MemEntry, 0, len(p.mem))
	for _, e := range p.mem {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		ki, kj := entries[i].Addr.Key(), entries[j].Addr.Key()
		if ki != kj {
			return ki < kj
		}
		return entries[i].Size < entries[j].Size
	})
	for _, e := range entries {
		f(e)
	}
}

// FilterMem keeps only the memory clauses for which keep returns true.
func (p *Pred) FilterMem(keep func(MemEntry) bool) {
	for k, e := range p.mem {
		if !keep(e) {
			delete(p.mem, k)
		}
	}
}

// NumMem returns the number of memory clauses.
func (p *Pred) NumMem() int { return len(p.mem) }

// AddRange installs (or narrows) the interval clause lo ≤ e ≤ hi. If e is a
// constant word outside the interval, the predicate becomes ⊥. A clause on
// an offset expression atom + k is normalised to a clause on the atom when
// the shift cannot wrap.
func (p *Pred) AddRange(e *expr.Expr, r Range) {
	if r.Lo == 0 && r.Hi == ^uint64(0) {
		return // vacuous
	}
	p.rkeyOK = false
	p.rfpOK = false
	if w, ok := e.AsWord(); ok {
		if !r.Contains(w) {
			p.bot = true
		}
		return
	}
	if l := expr.ToLinear(e); l.K != 0 && l.K < r.Lo && r.Lo <= r.Hi {
		if atom, coeff, ok := l.SingleTerm(); ok && coeff == 1 {
			p.AddRange(atom, Range{Lo: r.Lo - l.K, Hi: r.Hi - l.K})
			return
		}
	}
	if old, ok := p.ranges[e]; ok {
		// Intersect.
		if r.Lo > old.r.Lo {
			old.r.Lo = r.Lo
		}
		if r.Hi < old.r.Hi {
			old.r.Hi = r.Hi
		}
		if old.r.Lo > old.r.Hi {
			p.bot = true
			return
		}
		p.ranges[e] = old
		return
	}
	p.ranges[e] = rangeInfo{e: e, r: r}
}

// RangeOf computes an unsigned interval for e under the predicate's
// clauses: constants map to point intervals, constrained expressions to
// their stored intervals, and linear combinations to interval arithmetic
// over their parts (with overflow checked). The second result reports
// whether any interval could be derived.
func (p *Pred) RangeOf(e *expr.Expr) (Range, bool) {
	if w, ok := e.AsWord(); ok {
		return Range{w, w}, true
	}
	if ri, ok := p.ranges[e]; ok {
		return ri.r, true
	}
	if r, ok := intrinsicRange(e); ok {
		return r, true
	}
	// Interval arithmetic over the linear form: K + Σ cᵢ·tᵢ where each tᵢ
	// has a known interval and the total cannot wrap.
	l := expr.ToLinear(e)
	if l.NumTerms() == 0 {
		return Range{l.K, l.K}, true
	}
	lo, hi := l.K, l.K
	ok := true
	l.Terms(func(atom *expr.Expr, coeff uint64) {
		if !ok {
			return
		}
		ri, found := p.ranges[atom]
		if !found {
			if ir, irOK := intrinsicRange(atom); irOK {
				ri = rangeInfo{e: atom, r: ir}
			} else {
				ok = false
				return
			}
		}
		// Only handle positive "small" coefficients; anything else is
		// treated as underivable (sound: we just return no interval).
		if coeff == 0 || coeff > 1<<32 {
			ok = false
			return
		}
		nlo := lo + coeff*ri.r.Lo
		nhi := hi + coeff*ri.r.Hi
		if nlo < lo || nhi < hi || nlo > nhi {
			ok = false // wrapped
			return
		}
		lo, hi = nlo, nhi
	})
	if ok {
		return Range{lo, hi}, true
	}
	// Composite clause match: a stored interval on a compound expression
	// (e.g. rdi0 + rsi0, from a branch refinement) bounds any constant
	// multiple of it: e = scale·ek + K.
	for _, ri := range p.ranges {
		lk := expr.ToLinear(ri.e)
		scale, matches := linearRatio(l, lk)
		if !matches || scale == 0 || scale > 1<<23 || ri.r.Hi > 1<<40 {
			continue
		}
		base := l.K - scale*lk.K
		nlo := base + scale*ri.r.Lo
		nhi := base + scale*ri.r.Hi
		if nlo <= nhi && nhi >= base {
			return Range{nlo, nhi}, true
		}
	}
	return Range{}, false
}

// linearRatio reports whether the non-constant parts satisfy l = scale·m,
// returning the scale.
func linearRatio(l, m *expr.Linear) (uint64, bool) {
	if l.NumTerms() != m.NumTerms() || m.NumTerms() == 0 {
		return 0, false
	}
	var scale uint64
	ok := true
	m.Terms(func(atom *expr.Expr, mc uint64) {
		if !ok {
			return
		}
		lc := l.Coeff(atom)
		if lc == 0 || mc == 0 || lc%mc != 0 {
			ok = false
			return
		}
		s := lc / mc
		if scale == 0 {
			scale = s
		} else if s != scale {
			ok = false
		}
	})
	if !ok {
		return 0, false
	}
	return scale, true
}

// intrinsicRange derives an interval from the shape of an expression: a
// conjunction with a constant mask is bounded by the mask (this is how
// masked array indices x & (n-1) are proven in bounds).
func intrinsicRange(e *expr.Expr) (Range, bool) {
	if e.Kind() == expr.KindOp && e.OpKind() == expr.OpAnd {
		args := e.Args()
		if len(args) == 2 {
			if w, ok := args[1].AsWord(); ok && w <= 1<<40 {
				return Range{Lo: 0, Hi: w}, true
			}
		}
	}
	return Range{}, false
}

// sortedRanges returns the interval clauses in canonical key order.
func (p *Pred) sortedRanges() []rangeInfo {
	out := make([]rangeInfo, 0, len(p.ranges))
	for _, ri := range p.ranges {
		out = append(out, ri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].e.Key() < out[j].e.Key() })
	return out
}

// Ranges calls f for every interval clause in canonical key order.
func (p *Pred) Ranges(f func(e *expr.Expr, r Range)) {
	for _, ri := range p.sortedRanges() {
		f(ri.e, ri.r)
	}
}

// Eval is the expression evaluation function of Definition 4.1: it maps a
// state part to the constant expression the predicate assigns to it, or
// nil (⊥ in the paper) when the predicate has no equality clause for it.
// Registers evaluate through Reg; this form evaluates whole expressions
// that may mention registers by substituting their clauses.
func (p *Pred) Eval(e *expr.Expr) *expr.Expr {
	if e == nil {
		return nil
	}
	if e.IsConstExpr() {
		return e
	}
	return nil
}

// CodePointerParts returns a deterministic signature of every state part
// whose equality clause is an immediate word within [lo, hi) — registers
// and memory clauses alike. The lifter's compatibility extension refuses
// to join states whose signatures differ: immediate pointers into the
// text section will highly likely influence future control flow
// (Section 4).
func (p *Pred) CodePointerParts(lo, hi uint64) []string {
	var out []string
	for i, e := range p.regs {
		if e == nil {
			continue
		}
		if w, ok := e.AsWord(); ok && w >= lo && w < hi {
			out = append(out, fmt.Sprintf("%s=%x", x86.Reg(i), w))
		}
	}
	p.MemEntries(func(m MemEntry) {
		if w, ok := m.Val.AsWord(); ok && w >= lo && w < hi {
			out = append(out, fmt.Sprintf("m%s=%x", m.Addr.Key(), w))
		}
	})
	return out
}

// RegsHoldingWordsIn returns the registers whose equality clause is an
// immediate word within [lo, hi) — used by the lifter's compatibility
// extension to refuse joining states that disagree on code pointers.
func (p *Pred) RegsHoldingWordsIn(lo, hi uint64) map[x86.Reg]uint64 {
	var out map[x86.Reg]uint64
	for i, e := range p.regs {
		if e == nil {
			continue
		}
		if w, ok := e.AsWord(); ok && w >= lo && w < hi {
			if out == nil {
				out = map[x86.Reg]uint64{}
			}
			out[x86.Reg(i)] = w
		}
	}
	return out
}

// Clauses renders the clause set in a stable human-readable order, the
// form exported to the theory file.
func (p *Pred) Clauses() []string {
	if p.bot {
		return []string{"⊥"}
	}
	var out []string
	for i, e := range p.regs {
		if e != nil {
			out = append(out, fmt.Sprintf("%s == %s", x86.Reg(i), e))
		}
	}
	for f := x86.Flag(0); f < x86.NumFlags; f++ {
		if p.flags[f] != nil {
			out = append(out, fmt.Sprintf("%s == %s", f, p.flags[f]))
		}
	}
	if p.cmp != nil {
		kind := "sub"
		if p.cmp.Kind == CmpAnd {
			kind = "and"
		}
		out = append(out, fmt.Sprintf("flags == %s(%s, %s, %d)", kind, p.cmp.Lhs, p.cmp.Rhs, p.cmp.Size))
	}
	p.MemEntries(func(m MemEntry) {
		out = append(out, fmt.Sprintf("*[%s,%d] == %s", m.Addr, m.Size, m.Val))
	})
	for _, ri := range p.sortedRanges() {
		out = append(out, fmt.Sprintf("%s >= 0x%x", ri.e, ri.r.Lo))
		out = append(out, fmt.Sprintf("%s <= 0x%x", ri.e, ri.r.Hi))
	}
	return out
}

// Key returns a canonical fingerprint of the predicate, used to detect the
// fixed point (σ ⊑ σc iff σ ⊔ σc has the same key as σc).
func (p *Pred) Key() string {
	return strings.Join(p.Clauses(), ";")
}

// RangesKey returns a canonical fingerprint of the interval clause set
// alone. The solver's verdicts depend on the predicate only through RangeOf
// — i.e. through the interval clauses — so this key is sound for memoizing
// Compare while being far cheaper than Key. The result is cached until the
// next AddRange.
func (p *Pred) RangesKey() string {
	if p.rkeyOK {
		return p.rkey
	}
	var b strings.Builder
	for _, ri := range p.sortedRanges() {
		fmt.Fprintf(&b, "%s=%x:%x;", ri.e.Key(), ri.r.Lo, ri.r.Hi)
	}
	p.rkey = b.String()
	p.rkeyOK = true
	return p.rkey
}

// RangesFingerprint returns a 64-bit fingerprint of the interval clause set
// — the cheap form of RangesKey, used by the solver's memo table. Each
// clause hashes to MixFP(MixFP(fp(e), lo), hi) and the clauses combine by
// wrapping addition, so the fingerprint is independent of map iteration
// order without sorting anything. Cached until the next AddRange.
func (p *Pred) RangesFingerprint() uint64 {
	if p.rfpOK {
		return p.rfp
	}
	var h uint64
	for e, ri := range p.ranges {
		h += expr.MixFP(expr.MixFP(e.Fingerprint(), ri.r.Lo), ri.r.Hi)
	}
	p.rfp = h
	p.rfpOK = true
	return h
}

// Same reports exact semantic equality of two predicates: equal clause sets
// up to the canonical Key rendering, ignoring the widening counters (which
// Key also ignores). It is the allocation-free replacement for comparing
// Key() strings when detecting the exploration's fixed point: interning
// makes every clause compare a pointer or integer compare.
func (p *Pred) Same(q *Pred) bool {
	if p == q {
		return true
	}
	if p.bot || q.bot {
		return p.bot == q.bot
	}
	if p.regs != q.regs || p.flags != q.flags {
		return false
	}
	switch {
	case p.cmp == nil && q.cmp == nil:
	case p.cmp == nil || q.cmp == nil:
		return false
	default:
		pc, qc := p.cmp, q.cmp
		if pc.Kind != qc.Kind || pc.Size != qc.Size || pc.Lhs != qc.Lhs || pc.Rhs != qc.Rhs {
			return false
		}
	}
	if len(p.mem) != len(q.mem) || len(p.ranges) != len(q.ranges) {
		return false
	}
	for k, pe := range p.mem {
		if qe, ok := q.mem[k]; !ok || pe.Val != qe.Val {
			return false
		}
	}
	for e, pri := range p.ranges {
		if qri, ok := q.ranges[e]; !ok || pri.r != qri.r {
			return false
		}
	}
	return true
}

// String renders the predicate for humans.
func (p *Pred) String() string {
	c := p.Clauses()
	if len(c) == 0 {
		return "⊤"
	}
	return strings.Join(c, " ∧ ")
}
