// Package image wraps a parsed ELF binary as the fetch function of
// Definition 3.1: given an address it soundly retrieves a single decoded
// instruction, and it answers the read-only data and PLT queries the
// lifter needs (jump-table contents, external-function names).
//
// An Image is safe for concurrent readers: the parsed file and PLT map are
// immutable after construction, and the decode cache behind Fetch is
// guarded by a lock, so the pipeline's lift workers and the Step-2 triple
// checkers may share one image.
package image

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/elf64"
	"repro/internal/x86"
)

// ErrNotExecutable marks a Fetch at an address outside every executable
// section; callers dispatch with errors.Is instead of string-matching.
var ErrNotExecutable = errors.New("address not executable")

// Image is a loaded binary. The file and plt fields are read-only after
// FromFile returns; instCach is the only mutable state and is guarded by
// cacheMu (Step 2 checks vertices of one graph in parallel against a
// single image, and the pipeline shares images between lifts and checks).
type Image struct {
	file   *elf64.File
	textLo uint64
	textHi uint64
	plt    map[uint64]string
	raw    []byte

	cacheMu  sync.RWMutex
	instCach map[uint64]x86.Inst
}

// Load parses raw ELF bytes. Parse failures are returned wrapped, so the
// elf64 sentinels (elf64.ErrBadMagic, elf64.ErrTruncated) stay visible to
// errors.Is through this layer.
func Load(data []byte) (*Image, error) {
	f, err := elf64.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("image: load: %w", err)
	}
	im := FromFile(f)
	im.raw = data
	return im, nil
}

// FromFile wraps an already-parsed file.
func FromFile(f *elf64.File) *Image {
	im := &Image{file: f, plt: map[uint64]string{}, instCach: map[uint64]x86.Inst{}}
	for _, s := range f.Sections {
		if s.Flags&elf64.SHFExecinstr != 0 && s.Flags&elf64.SHFAlloc != 0 {
			if im.textLo == 0 || s.Addr < im.textLo {
				im.textLo = s.Addr
			}
			if s.Addr+s.Size > im.textHi {
				im.textHi = s.Addr + s.Size
			}
		}
	}
	for _, sym := range f.Symbols {
		if name, ok := strings.CutSuffix(sym.Name, "@plt"); ok {
			im.plt[sym.Value] = name
		}
	}
	return im
}

// File exposes the underlying parsed ELF.
func (im *Image) File() *elf64.File { return im.file }

// Raw returns the ELF bytes the image was loaded from, or nil for an
// image built with FromFile (which never saw the raw file). Distribution
// needs the bytes to re-load the image inside a worker subprocess.
func (im *Image) Raw() []byte { return im.raw }

// Entry returns the binary's entry point.
func (im *Image) Entry() uint64 { return im.file.Header.Entry }

// TextRange returns the executable address range [lo, hi).
func (im *Image) TextRange() (lo, hi uint64) { return im.textLo, im.textHi }

// InText reports whether addr lies in an executable section.
func (im *Image) InText(addr uint64) bool {
	s := im.file.SectionAt(addr)
	return s != nil && s.Flags&elf64.SHFExecinstr != 0
}

// Fetch decodes the single instruction at addr (Definition 3.1's fetch).
// Decoding is deterministic, so concurrent misses at the same address
// store the same instruction; the decode itself runs outside the lock.
func (im *Image) Fetch(addr uint64) (x86.Inst, error) {
	im.cacheMu.RLock()
	inst, ok := im.instCach[addr]
	im.cacheMu.RUnlock()
	if ok {
		return inst, nil
	}
	s := im.file.SectionAt(addr)
	if s == nil || s.Flags&elf64.SHFExecinstr == 0 || s.Data == nil {
		return x86.Inst{}, fmt.Errorf("image: %#x: %w", addr, ErrNotExecutable)
	}
	inst, err := x86.Decode(s.Data[addr-s.Addr:], addr)
	if err != nil {
		return x86.Inst{}, err
	}
	im.cacheMu.Lock()
	im.instCach[addr] = inst
	im.cacheMu.Unlock()
	return inst, nil
}

// IsReadOnly reports whether [addr, addr+size) lies entirely in mapped
// non-writable initialised data (e.g. .rodata or .text).
func (im *Image) IsReadOnly(addr uint64, size int) bool {
	s := im.file.SectionAt(addr)
	if s == nil || s.Data == nil || s.Flags&elf64.SHFWrite != 0 {
		return false
	}
	return addr+uint64(size) <= s.Addr+s.Size
}

// ReadRO reads a size-byte little-endian value from read-only data.
func (im *Image) ReadRO(addr uint64, size int) (uint64, bool) {
	if !im.IsReadOnly(addr, size) {
		return 0, false
	}
	b, ok := im.file.ReadAt(addr, size)
	if !ok {
		return 0, false
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, true
}

// IsMapped reports whether addr lies in any allocated section.
func (im *Image) IsMapped(addr uint64) bool { return im.file.SectionAt(addr) != nil }

// PLTName returns the external function name when addr is a PLT stub.
func (im *Image) PLTName(addr uint64) (string, bool) {
	name, ok := im.plt[addr]
	return name, ok
}

// FuncSymbols returns the exported function symbols (excluding PLT stubs).
func (im *Image) FuncSymbols() []elf64.Symbol {
	var out []elf64.Symbol
	for _, s := range im.file.FuncSymbols() {
		if _, isPLT := im.plt[s.Value]; !isPLT {
			out = append(out, s)
		}
	}
	return out
}

// SymbolName returns the symbol name at addr, if any.
func (im *Image) SymbolName(addr uint64) (string, bool) {
	s, ok := im.file.SymbolAt(addr)
	if !ok {
		return "", false
	}
	return s.Name, true
}
