package image

import (
	"errors"
	"testing"

	"repro/internal/elf64"
	"repro/internal/x86"
)

func sampleImage(t *testing.T) *Image {
	t.Helper()
	b := elf64.NewExec(0x401000)
	// text: push rbp; ret
	b.AddSection(".text", elf64.SHFExecinstr, 0x401000, []byte{0x55, 0xc3})
	b.AddSection(".plt", elf64.SHFExecinstr, 0x400800, []byte{0xff, 0x25, 0, 0, 0x10, 0, 0x90, 0x90})
	b.AddSection(".rodata", 0, 0x4a0000, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	b.AddSection(".data", elf64.SHFWrite, 0x4b0000, []byte{9, 9, 9, 9})
	b.AddFunc("main", 0x401000, 2)
	b.AddFunc("memset@plt", 0x400800, 8)
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	im, err := Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestFetchAndCache(t *testing.T) {
	im := sampleImage(t)
	inst, err := im.Fetch(0x401000)
	if err != nil || inst.Mn != x86.PUSH {
		t.Fatalf("fetch: %v %v", inst, err)
	}
	// Cached fetch returns the same decoding.
	inst2, err := im.Fetch(0x401000)
	if err != nil || inst2.Mn != x86.PUSH {
		t.Fatal("cached fetch")
	}
	if _, err := im.Fetch(0x4a0000); err == nil {
		t.Fatal("fetch from rodata must fail")
	}
	if _, err := im.Fetch(0x999999); err == nil {
		t.Fatal("fetch from unmapped must fail")
	}
}

func TestTextRangeAndInText(t *testing.T) {
	im := sampleImage(t)
	lo, hi := im.TextRange()
	if lo != 0x400800 || hi != 0x401002 {
		t.Fatalf("text range: %#x..%#x", lo, hi)
	}
	if !im.InText(0x401001) || im.InText(0x4a0000) || im.InText(0) {
		t.Fatal("InText")
	}
	if im.Entry() != 0x401000 {
		t.Fatalf("entry: %#x", im.Entry())
	}
}

func TestReadOnlyQueries(t *testing.T) {
	im := sampleImage(t)
	if !im.IsReadOnly(0x4a0000, 8) {
		t.Fatal("rodata must be read-only")
	}
	if im.IsReadOnly(0x4a0001, 8) {
		t.Fatal("overhanging range must not be read-only")
	}
	if im.IsReadOnly(0x4b0000, 4) {
		t.Fatal(".data is writable")
	}
	v, ok := im.ReadRO(0x4a0000, 4)
	if !ok || v != 0x04030201 {
		t.Fatalf("ReadRO: %#x %v", v, ok)
	}
	if _, ok := im.ReadRO(0x4b0000, 4); ok {
		t.Fatal("ReadRO from .data must fail")
	}
	// Text is also mapped read-only (constants can be read from it).
	if !im.IsMapped(0x4b0000) || im.IsMapped(0x700000) {
		t.Fatal("IsMapped")
	}
}

func TestPLTAndSymbols(t *testing.T) {
	im := sampleImage(t)
	name, ok := im.PLTName(0x400800)
	if !ok || name != "memset" {
		t.Fatalf("plt: %q %v", name, ok)
	}
	if _, ok := im.PLTName(0x401000); ok {
		t.Fatal("main is not a stub")
	}
	funcs := im.FuncSymbols()
	if len(funcs) != 1 || funcs[0].Name != "main" {
		t.Fatalf("func symbols must exclude PLT stubs: %+v", funcs)
	}
	if n, ok := im.SymbolName(0x401000); !ok || n != "main" {
		t.Fatalf("symbol name: %q %v", n, ok)
	}
	if _, ok := im.SymbolName(0xdead); ok {
		t.Fatal("bogus symbol lookup")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load([]byte("junk")); err == nil {
		t.Fatal("junk must fail")
	}
	// The elf64 sentinels survive the image wrapping.
	if _, err := Load(make([]byte, 100)); !errors.Is(err, elf64.ErrBadMagic) {
		t.Errorf("bad magic through Load: want elf64.ErrBadMagic, got %v", err)
	}
	if _, err := Load(nil); !errors.Is(err, elf64.ErrTruncated) {
		t.Errorf("empty image through Load: want elf64.ErrTruncated, got %v", err)
	}
}

func TestFetchNotExecutable(t *testing.T) {
	im := sampleImage(t)
	for _, addr := range []uint64{0x4a0000 /* .rodata */, 0x4b0000 /* .data */, 0xdead0000 /* unmapped */} {
		_, err := im.Fetch(addr)
		if !errors.Is(err, ErrNotExecutable) {
			t.Errorf("Fetch(%#x): want ErrNotExecutable, got %v", addr, err)
		}
	}
	if _, err := im.Fetch(0x401000); err != nil {
		t.Errorf("Fetch in .text: %v", err)
	}
}
