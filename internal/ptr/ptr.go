// Package ptr is the binary-level pointer-analysis pre-pass (after Verbeek
// et al.'s follow-up "Formally Verified Binary-level Pointer Analysis",
// arXiv 2501.17766): a whole-function abstract interpretation over the
// decoded CFG that classifies every statically addressable memory access by
// provenance base — the stack pointer, an argument/initial register, or a
// global constant — and turns the pairwise geometry of those accesses into
// a fact table (solver.Facts) the lifter consults before its decision
// procedure and before forking the memory model.
//
// The analysis produces two grades of fact:
//
//   - Proven facts: region pairs whose relation Compare decides under the
//     empty predicate. Only the constant-difference path decides there, and
//     that path never reads the predicate, so the verdict holds under every
//     predicate symbolic execution will ever carry — the soundness argument
//     is exactly "Compare is a pure function and we gave it strictly less
//     information".
//   - Separation hypotheses: pairs with provably distinct provenance bases
//     (rdi0 vs rsi0, global vs argument) that no sound procedure can decide.
//     These are the pairs that today fork the memory model to MaxModels or
//     destroy regions. A hypothesis is an assumption, not a theorem: the
//     semantics records it in the lifted graph's assumption list (the same
//     obligation format as AssumeBaseSeparation), and the whole table is
//     opt-in (core.Config.PointerFacts) because assuming rdi ⋈ rsi hides
//     deliberate aliasing like the Section 2 weird edge.
//
// The walker mirrors the fragment the semantics layer itself tracks: it
// follows registers holding initial-register-plus-constant or constant
// values through MOV/LEA/ADD/SUB/PUSH/POP/CALL and records index-free
// memory operands, because those are precisely the addresses sem.addrOf
// evaluates to insertable regions. Everything else soundly degrades to
// "unknown register", which records no region and claims nothing.
package ptr

import (
	"time"

	"repro/internal/expr"
	"repro/internal/image"
	"repro/internal/pred"
	"repro/internal/solver"
	"repro/internal/x86"
)

// Walk bounds: a function re-visits an instruction only when the abstract
// state at it weakened, so visits are bounded by insts × regs; the caps
// below are backstops for pathological inputs, far above anything the
// corpus reaches. maxRegions bounds the O(n²) pair stage.
const (
	maxVisits  = 65536
	maxRegions = 128
)

// Stats summarises one analysis for observability (obs.KPtrAnalyze).
type Stats struct {
	// Visits counts instruction visits of the fixpoint walk.
	Visits int
	// Regions counts distinct recorded regions.
	Regions int
	// Proven and Hypotheses count the facts by grade.
	Proven     int
	Hypotheses int
	// Truncated reports that the region cap was hit (facts remain sound —
	// coverage just stops growing).
	Truncated bool
	// Wall is the analysis time.
	Wall time.Duration
}

// Analysis is the result of the pre-pass for one function.
type Analysis struct {
	Facts *solver.Facts
	Stats Stats
}

// av is the abstract value of a register: unknown, a constant (base ==
// RegNone, value off), or initial-register-plus-constant (the initial value
// of register base, i.e. the symbol sem seeds as base.String()+"0").
type av struct {
	known bool
	base  x86.Reg
	off   int64
}

// absState maps the sixteen GPRs to abstract values. It is a comparable
// array so fixpoint detection is ==.
type absState [16]av

// initState seeds every register with its own initial value, mirroring
// sem.InitialState (rsp0, rdi0, …).
func initState() absState {
	var st absState
	for i := range st {
		st[i] = av{known: true, base: x86.Reg(i)}
	}
	return st
}

// join meets two abstract states: registers that disagree become unknown.
func join(a, b absState) absState {
	var out absState
	for i := range a {
		if a[i] == b[i] {
			out[i] = a[i]
		}
	}
	return out
}

// get reads a register's abstract value (unknown for RIP/RegNone).
func (s *absState) get(r x86.Reg) av {
	if int(r) < len(s) {
		return s[r]
	}
	return av{}
}

// set writes a register's abstract value.
func (s *absState) set(r x86.Reg, v av) {
	if int(r) < len(s) {
		s[r] = v
	}
}

// kill invalidates a register.
func (s *absState) kill(r x86.Reg) { s.set(r, av{}) }

// killAll invalidates every register — the sound default for instruction
// families the walker does not model.
func (s *absState) killAll() { *s = absState{} }

// walker carries the per-function analysis state.
type walker struct {
	img     *image.Image
	in      map[uint64]absState
	work    []uint64
	regions []solver.Region
	seen    map[regionID]bool
	stats   Stats
}

// regionID dedupes recorded regions by interned address identity.
type regionID struct {
	addr *expr.Expr
	size uint64
}

// Analyze runs the pre-pass over the function at entry and returns its fact
// table. The analysis never fails: undecodable or unmodelled code simply
// contributes no facts.
func Analyze(img *image.Image, entry uint64) *Analysis {
	start := time.Now()
	w := &walker{
		img:  img,
		in:   map[uint64]absState{entry: initState()},
		work: []uint64{entry},
		seen: map[regionID]bool{},
	}
	for len(w.work) > 0 && w.stats.Visits < maxVisits {
		addr := w.work[0]
		w.work = w.work[1:]
		st := w.in[addr]
		inst, err := img.Fetch(addr)
		if err != nil {
			continue
		}
		w.stats.Visits++
		w.record(&inst, &st)
		w.step(&inst, st)
	}

	facts := solver.NewFacts()
	p := pred.New()
	for i := 0; i < len(w.regions); i++ {
		for j := i + 1; j < len(w.regions); j++ {
			r0, r1 := w.regions[i], w.regions[j]
			res := solver.Compare(p, r0, r1)
			switch {
			case res.Decided():
				facts.Add(r0, r1, res, false)
			case disjointBases(r0.Addr, r1.Addr):
				facts.Add(r0, r1, solver.Result{Separate: solver.Yes,
					Alias: solver.No, Enclosed: solver.No, Encloses: solver.No,
					Partial: solver.No}, true)
			}
		}
	}
	w.stats.Regions = len(w.regions)
	w.stats.Proven = facts.Proven()
	w.stats.Hypotheses = facts.Hypotheses()
	w.stats.Wall = time.Since(start)
	return &Analysis{Facts: facts, Stats: w.stats}
}

// disjointBases reports whether the two single-base-or-constant addresses
// the walker builds have provably distinct provenance: different initial
// registers, or a global constant versus any register base. Same-base pairs
// never reach here (their difference is constant, so Compare decided them),
// but return false defensively.
func disjointBases(a0, a1 *expr.Expr) bool {
	b0, ok0 := solver.BaseAtom(a0)
	b1, ok1 := solver.BaseAtom(a1)
	switch {
	case ok0 && ok1:
		return b0 != b1
	case ok0 != ok1:
		// One symbolic base, one global constant: disjoint provenance.
		return true
	}
	return false
}

// addrAV evaluates a memory operand to an abstract address, mirroring the
// fragment of sem.addrOf that yields insertable regions: RIP-relative and
// absolute operands are constants; an index register is the eval-⊥ case.
func (w *walker) addrAV(st *absState, o x86.Operand) (av, bool) {
	if o.Base == x86.RIP {
		return av{known: true, base: x86.RegNone, off: o.Disp}, true
	}
	if o.Index != x86.RegNone {
		return av{}, false
	}
	if o.Base == x86.RegNone {
		return av{known: true, base: x86.RegNone, off: o.Disp}, true
	}
	b := st.get(o.Base)
	if !b.known {
		return av{}, false
	}
	return av{known: true, base: b.base, off: b.off + o.Disp}, true
}

// addRegion records one access at abstract address a of the given size.
func (w *walker) addRegion(a av, size int) {
	if !a.known || size <= 0 {
		return
	}
	if len(w.regions) >= maxRegions {
		w.stats.Truncated = true
		return
	}
	var addr *expr.Expr
	if a.base == x86.RegNone {
		addr = expr.Word(uint64(a.off))
	} else {
		addr = expr.Add(expr.V(expr.Var(a.base.String()+"0")), expr.Word(uint64(a.off)))
	}
	id := regionID{addr: addr, size: uint64(size)}
	if w.seen[id] {
		return
	}
	w.seen[id] = true
	w.regions = append(w.regions, solver.Region{Addr: addr, Size: uint64(size)})
}

// record collects the memory regions an instruction accesses: explicit
// index-free memory operands (LEA computes an address but accesses
// nothing), plus the implicit stack accesses of PUSH/POP/CALL/RET/LEAVE.
func (w *walker) record(inst *x86.Inst, st *absState) {
	if inst.Mn != x86.LEA && inst.Mn != x86.NOP {
		for _, o := range inst.Ops {
			if o.Kind != x86.OpMem {
				continue
			}
			if a, ok := w.addrAV(st, o); ok {
				w.addRegion(a, o.Size)
			}
		}
	}
	rsp := st.get(x86.RSP)
	switch inst.Mn {
	case x86.PUSH, x86.CALL:
		if rsp.known {
			w.addRegion(av{known: true, base: rsp.base, off: rsp.off - 8}, 8)
		}
	case x86.POP, x86.RET:
		w.addRegion(rsp, 8)
	case x86.LEAVE:
		if rbp := st.get(x86.RBP); rbp.known {
			w.addRegion(rbp, 8)
		}
	}
}

// step applies the transfer function and enqueues successors.
func (w *walker) step(inst *x86.Inst, st absState) {
	ops := inst.Ops
	op0 := func() x86.Operand {
		if len(ops) > 0 {
			return ops[0]
		}
		return x86.Operand{}
	}
	op1 := func() x86.Operand {
		if len(ops) > 1 {
			return ops[1]
		}
		return x86.Operand{}
	}
	// killDst invalidates the destination register of a reg-writing form.
	killDst := func() {
		if o := op0(); o.Kind == x86.OpReg {
			st.kill(o.Reg)
		}
	}

	switch inst.Mn {
	case x86.NOP, x86.ENDBR64, x86.CMP, x86.TEST:
		// No register effects.
	case x86.MOV:
		d, s := op0(), op1()
		if d.Kind != x86.OpReg {
			break // memory destination: no register effect
		}
		switch {
		case s.Kind == x86.OpImm && d.Size >= 4 && s.Imm >= 0:
			// mov r64, imm / mov r32, imm≥0: full value known (32-bit
			// writes zero-extend, which matches for non-negative
			// immediates).
			st.set(d.Reg, av{known: true, base: x86.RegNone, off: s.Imm})
		case s.Kind == x86.OpReg && d.Size == 8 && s.Size == 8:
			st.set(d.Reg, st.get(s.Reg))
		default:
			st.kill(d.Reg)
		}
	case x86.LEA:
		d, s := op0(), op1()
		if d.Kind != x86.OpReg {
			break
		}
		if a, ok := w.addrAV(&st, s); ok && d.Size == 8 {
			st.set(d.Reg, a)
		} else {
			st.kill(d.Reg)
		}
	case x86.ADD, x86.SUB:
		d, s := op0(), op1()
		if d.Kind != x86.OpReg {
			break
		}
		v := st.get(d.Reg)
		var delta int64
		okDelta := false
		if s.Kind == x86.OpImm {
			delta, okDelta = s.Imm, true
		} else if s.Kind == x86.OpReg && s.Size == 8 {
			if sv := st.get(s.Reg); sv.known && sv.base == x86.RegNone {
				delta, okDelta = sv.off, true
			}
		}
		if v.known && okDelta && d.Size == 8 {
			if inst.Mn == x86.SUB {
				delta = -delta
			}
			st.set(d.Reg, av{known: true, base: v.base, off: v.off + delta})
		} else {
			st.kill(d.Reg)
		}
	case x86.INC, x86.DEC:
		d := op0()
		if d.Kind != x86.OpReg {
			break
		}
		if v := st.get(d.Reg); v.known && d.Size == 8 {
			delta := int64(1)
			if inst.Mn == x86.DEC {
				delta = -1
			}
			st.set(d.Reg, av{known: true, base: v.base, off: v.off + delta})
		} else {
			st.kill(d.Reg)
		}
	case x86.XOR:
		d, s := op0(), op1()
		if d.Kind == x86.OpReg && s.Kind == x86.OpReg && d.Reg == s.Reg && d.Size >= 4 {
			st.set(d.Reg, av{known: true, base: x86.RegNone}) // xor r, r ⇒ 0
		} else {
			killDst()
		}
	case x86.AND, x86.OR, x86.ADC, x86.SBB, x86.NOT, x86.NEG,
		x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR,
		x86.MOVZX, x86.MOVSX, x86.MOVSXD, x86.SETCC, x86.CMOVCC,
		x86.BT, x86.BTS, x86.BTR, x86.BTC, x86.BSF, x86.BSR,
		x86.POPCNT, x86.BSWAP:
		killDst()
	case x86.IMUL:
		if len(ops) >= 2 {
			killDst() // 2/3-operand form writes ops[0]
		} else {
			st.kill(x86.RAX)
			st.kill(x86.RDX)
		}
	case x86.MUL, x86.DIV, x86.IDIV:
		st.kill(x86.RAX)
		st.kill(x86.RDX)
	case x86.CDQE:
		st.kill(x86.RAX)
	case x86.CDQ, x86.CQO:
		st.kill(x86.RDX)
	case x86.XCHG:
		d, s := op0(), op1()
		if d.Kind == x86.OpReg && s.Kind == x86.OpReg && d.Size == 8 && s.Size == 8 {
			dv, sv := st.get(d.Reg), st.get(s.Reg)
			st.set(d.Reg, sv)
			st.set(s.Reg, dv)
		} else {
			if d.Kind == x86.OpReg {
				st.kill(d.Reg)
			}
			if s.Kind == x86.OpReg {
				st.kill(s.Reg)
			}
		}
	case x86.XADD, x86.CMPXCHG:
		killDst()
		st.kill(x86.RAX)
	case x86.PUSH:
		if rsp := st.get(x86.RSP); rsp.known {
			st.set(x86.RSP, av{known: true, base: rsp.base, off: rsp.off - 8})
		}
	case x86.POP:
		killDst() // the loaded value is not statically tracked
		if rsp := st.get(x86.RSP); rsp.known {
			st.set(x86.RSP, av{known: true, base: rsp.base, off: rsp.off + 8})
		}
	case x86.LEAVE:
		// mov rsp, rbp; pop rbp.
		if rbp := st.get(x86.RBP); rbp.known {
			st.set(x86.RSP, av{known: true, base: rbp.base, off: rbp.off + 8})
		} else {
			st.kill(x86.RSP)
		}
		st.kill(x86.RBP)
	case x86.MOVS, x86.STOS:
		st.kill(x86.RSI)
		st.kill(x86.RDI)
		st.kill(x86.RCX)
		st.kill(x86.RAX)
	case x86.CALL, x86.SYSCALL:
		// Across a call the caller-saved registers are unknown; rsp and the
		// callee-saved registers are preserved by the convention the lifter
		// itself verifies (CheckReturn).
		for _, r := range x86.CallerSaved {
			st.kill(r)
		}
	case x86.RET, x86.HLT, x86.UD2, x86.INT3:
		return // path ends
	case x86.JMP:
		if tgt, ok := inst.Target(); ok && w.img.InText(tgt) {
			w.flow(tgt, st)
		}
		return // direct out-of-text (PLT tail call) or indirect: path ends
	case x86.JCC:
		if tgt, ok := inst.Target(); ok && w.img.InText(tgt) {
			w.flow(tgt, st)
		}
		w.flow(inst.Next(), st)
		return
	default:
		// Unmodelled family: assume nothing survives.
		st.killAll()
	}
	w.flow(inst.Next(), st)
}

// flow propagates an abstract state into a successor, joining with any
// previous in-state and re-enqueueing on change.
func (w *walker) flow(addr uint64, st absState) {
	old, ok := w.in[addr]
	if !ok {
		w.in[addr] = st
		w.work = append(w.work, addr)
		return
	}
	j := join(old, st)
	if j != old {
		w.in[addr] = j
		w.work = append(w.work, addr)
	}
}
