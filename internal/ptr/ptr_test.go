package ptr

import (
	"testing"

	"repro/internal/elf64"
	"repro/internal/expr"
	"repro/internal/image"
	"repro/internal/solver"
	"repro/internal/x86"
)

const testText = 0x401000

// assemble builds a one-function image from the emitted code.
func assemble(t *testing.T, emit func(a *x86.Asm)) *image.Image {
	t.Helper()
	a := x86.NewAsm(testText)
	emit(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	eb := elf64.NewExec(testText)
	eb.AddSection(".text", elf64.SHFExecinstr, testText, code)
	raw, err := eb.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	img, err := image.Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func reg(base string, off int64, size uint64) solver.Region {
	addr := expr.Add(expr.V(expr.Var(base)), expr.Word(uint64(off)))
	return solver.Region{Addr: addr, Size: size}
}

func TestAnalyzeStraightLine(t *testing.T) {
	img := assemble(t, func(a *x86.Asm) {
		a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x18, 1))
		a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, 8, 8), x86.ImmOp(1, 4))
		a.I(x86.MOV, x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8), x86.ImmOp(2, 4))
		a.I(x86.MOV, x86.MemOp(x86.RSI, x86.RegNone, 1, 8, 8), x86.ImmOp(3, 4))
		a.I(x86.ADD, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x18, 1))
		a.I(x86.RET)
	})
	an := Analyze(img, testText)
	// Regions: [rsp0-0x10,8], [rdi0,8], [rsi0+8,8], [rsp0,8] (the ret read).
	if an.Stats.Regions != 4 {
		t.Fatalf("regions = %d, want 4 (stats: %+v)", an.Stats.Regions, an.Stats)
	}
	// Same-base stack pair is proven; every cross-base pair is a hypothesis.
	if an.Stats.Proven != 1 || an.Stats.Hypotheses != 5 {
		t.Fatalf("proven=%d hypotheses=%d, want 1/5", an.Stats.Proven, an.Stats.Hypotheses)
	}
	f, ok := an.Facts.Lookup(reg("rsp0", -0x10, 8), reg("rsp0", 0, 8))
	if !ok || f.Assumed || f.Res.Separate != solver.Yes {
		t.Fatalf("stack pair must be proven separate: %+v ok=%v", f, ok)
	}
	f, ok = an.Facts.Lookup(reg("rdi0", 0, 8), reg("rsi0", 8, 8))
	if !ok || !f.Assumed || f.Res.Separate != solver.Yes {
		t.Fatalf("rdi/rsi pair must be a separation hypothesis: %+v ok=%v", f, ok)
	}
	if an.Stats.Truncated {
		t.Fatal("tiny function must not truncate")
	}
}

func TestAnalyzeProvenEnclosure(t *testing.T) {
	img := assemble(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8), x86.ImmOp(1, 4))
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.MemOp(x86.RDI, x86.RegNone, 1, 4, 4))
		a.I(x86.RET)
	})
	an := Analyze(img, testText)
	f, ok := an.Facts.Lookup(reg("rdi0", 4, 4), reg("rdi0", 0, 8))
	if !ok || f.Assumed || f.Res.Enclosed != solver.Yes {
		t.Fatalf("[rdi0+4,4] must be proven enclosed in [rdi0,8]: %+v ok=%v", f, ok)
	}
	if rev, ok := an.Facts.Lookup(reg("rdi0", 0, 8), reg("rdi0", 4, 4)); !ok || rev.Res.Encloses != solver.Yes {
		t.Fatalf("reversed orientation: %+v ok=%v", rev, ok)
	}
}

func TestAnalyzeJoinKillsDisagreeingRegisters(t *testing.T) {
	img := assemble(t, func(a *x86.Asm) {
		a.I(x86.CMP, x86.RegOp(x86.RDX, 8), x86.ImmOp(0, 1))
		a.Jcc(x86.CondE, "other")
		a.I(x86.MOV, x86.RegOp(x86.RBX, 8), x86.RegOp(x86.RDI, 8))
		a.Jmp("store")
		a.Label("other")
		a.I(x86.MOV, x86.RegOp(x86.RBX, 8), x86.RegOp(x86.RSI, 8))
		a.Label("store")
		a.I(x86.MOV, x86.MemOp(x86.RBX, x86.RegNone, 1, 0, 8), x86.ImmOp(7, 4))
		a.I(x86.RET)
	})
	an := Analyze(img, testText)
	// rbx disagrees at the join, so the store through it records nothing.
	// Recorded regions are only the two single-path [rbx,8] views — one per
	// predecessor visit order — no: the store is only reached through the
	// join, so the walker sees rbx as rdi0 on the first visit and unknown
	// after the join weakens it. Only ret's [rsp0,8] read is guaranteed.
	for _, r := range []solver.Region{reg("rdi0", 0, 8), reg("rsi0", 0, 8)} {
		if f, ok := an.Facts.Lookup(r, reg("rsp0", 0, 8)); ok && !f.Assumed && f.Res.Separate == solver.Yes {
			t.Fatalf("no proven separation may exist for unjoined base %s: %+v", r.Addr, f)
		}
	}
	if an.Stats.Visits == 0 {
		t.Fatal("walker did not run")
	}
}

func TestAnalyzeCallClobbersCallerSaved(t *testing.T) {
	img := assemble(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RBX, 8), x86.RegOp(x86.RDI, 8))
		a.Call("leaf")
		a.I(x86.MOV, x86.MemOp(x86.RBX, x86.RegNone, 1, 0, 8), x86.ImmOp(1, 4)) // rbx = rdi0: recorded
		a.I(x86.MOV, x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 4), x86.ImmOp(2, 4)) // rdi clobbered: not recorded
		a.I(x86.RET)
		a.Label("leaf")
		a.I(x86.RET)
	})
	an := Analyze(img, testText)
	if _, ok := an.Facts.Lookup(reg("rdi0", 0, 8), reg("rsp0", -8, 8)); !ok {
		t.Fatalf("callee-saved rbx (= rdi0) store vs call return slot must yield a fact; stats %+v", an.Stats)
	}
	// The post-call [rdi] store must not appear as a 4-byte rdi0 region
	// paired with anything: rdi is unknown after the call.
	if f, ok := an.Facts.Lookup(reg("rdi0", 0, 4), reg("rsp0", 0, 8)); ok {
		t.Fatalf("clobbered rdi must record no region: %+v", f)
	}
}

func TestAnalyzeLoadInvalidates(t *testing.T) {
	img := assemble(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RDI, 8), x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8))
		a.I(x86.MOV, x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8), x86.ImmOp(1, 4))
		a.I(x86.RET)
	})
	an := Analyze(img, testText)
	// The load itself reads [rdi0,8]; the store through the loaded pointer
	// is untracked. So regions = {[rdi0,8], [rsp0,8]} → 1 hypothesis.
	if an.Stats.Regions != 2 || an.Stats.Hypotheses != 1 {
		t.Fatalf("stats: %+v, want 2 regions / 1 hypothesis", an.Stats)
	}
}

func TestAnalyzeLoopTerminates(t *testing.T) {
	img := assemble(t, func(a *x86.Asm) {
		a.Label("loop")
		a.I(x86.MOV, x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8), x86.ImmOp(1, 4))
		a.I(x86.ADD, x86.RegOp(x86.RDI, 8), x86.ImmOp(8, 1))
		a.I(x86.DEC, x86.RegOp(x86.RSI, 8))
		a.Jcc(x86.CondNE, "loop")
		a.I(x86.RET)
	})
	an := Analyze(img, testText)
	if an.Stats.Visits >= maxVisits {
		t.Fatalf("loop did not reach a fixpoint: %+v", an.Stats)
	}
	// Around the back edge rdi disagrees (rdi0 vs rdi0+8), so after the
	// join the store records only the first-visit region [rdi0,8].
	if _, ok := an.Facts.Lookup(reg("rdi0", 0, 8), reg("rsp0", 0, 8)); !ok {
		t.Fatalf("first-iteration region must be recorded; stats %+v", an.Stats)
	}
}

// TestAnalyzeDeterministic pins that repeated analyses agree — the fact
// table feeds cache keys and assumption lists, so run-to-run stability
// matters.
func TestAnalyzeDeterministic(t *testing.T) {
	img := assemble(t, func(a *x86.Asm) {
		a.I(x86.PUSH, x86.RegOp(x86.RBX, 8))
		a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x20, 1))
		a.I(x86.MOV, x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8), x86.ImmOp(1, 4))
		a.I(x86.MOV, x86.MemOp(x86.RSI, x86.RegNone, 1, 0, 8), x86.ImmOp(2, 4))
		a.I(x86.MOV, x86.MemOp(x86.RDX, x86.RegNone, 1, 0, 8), x86.ImmOp(3, 4))
		a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, 8, 8), x86.ImmOp(4, 4))
		a.I(x86.ADD, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x20, 1))
		a.I(x86.POP, x86.RegOp(x86.RBX, 8))
		a.I(x86.RET)
	})
	a1 := Analyze(img, testText)
	a2 := Analyze(img, testText)
	if a1.Stats.Regions != a2.Stats.Regions || a1.Stats.Proven != a2.Stats.Proven ||
		a1.Stats.Hypotheses != a2.Stats.Hypotheses {
		t.Fatalf("nondeterministic stats: %+v vs %+v", a1.Stats, a2.Stats)
	}
	if a1.Facts.Len() != a2.Facts.Len() {
		t.Fatalf("nondeterministic table size: %d vs %d", a1.Facts.Len(), a2.Facts.Len())
	}
}
