package faultinject

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDeterministic requires two injectors with the same seed to make
// identical decisions on identical keys, and a different seed to disagree
// somewhere.
func TestDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, PanicRate: 0.3, StallRate: 0.3, WriteErrRate: 0.3}
	a, b := New(cfg), New(cfg)
	cfg.Seed = 8
	c := New(cfg)
	diverged := false
	for _, task := range []string{"bin_000", "bin_001", "lib_017", "xen_bin_004"} {
		for attempt := 0; attempt < 4; attempt++ {
			if a.LiftPanic(task, attempt) != b.LiftPanic(task, attempt) {
				t.Fatalf("same-seed panic decisions diverge for %s/%d", task, attempt)
			}
			_, sa := a.LiftStall(task, attempt)
			_, sb := b.LiftStall(task, attempt)
			if sa != sb {
				t.Fatalf("same-seed stall decisions diverge for %s/%d", task, attempt)
			}
			if (a.CheckpointWriteErr(task) == nil) != (b.CheckpointWriteErr(task) == nil) {
				t.Fatalf("same-seed write-error decisions diverge for %s", task)
			}
			if a.LiftPanic(task, attempt) != c.LiftPanic(task, attempt) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("different seeds never diverged (suspicious hash)")
	}
}

// TestRates checks the empirical fire rate lands near the configured rate
// and that a zero config injects nothing.
func TestRates(t *testing.T) {
	inj := New(Config{Seed: 1, PanicRate: 0.2})
	fired := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if inj.LiftPanic(taskName(i), 0) {
			fired++
		}
	}
	if got := float64(fired) / n; got < 0.15 || got > 0.25 {
		t.Fatalf("empirical rate %.3f far from configured 0.2", got)
	}
	var zero *Injector
	if zero.LiftPanic("x", 0) || zero.CheckpointWriteErr("x") != nil {
		t.Fatal("nil injector fired")
	}
	if _, ok := zero.LiftStall("x", 0); ok {
		t.Fatal("nil injector stalled")
	}
	zero.TaskCompleted() // must not panic
	if zero.Fired() != (Counts{}) {
		t.Fatal("nil injector reported fired faults")
	}
}

func taskName(i int) string {
	return "task_" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

// TestAttemptsDecorrelated requires per-attempt decisions for one task to
// be roughly independent: at rate 0.3 with three attempts, the fraction
// of tasks panicking on every attempt must be near 0.3³ ≈ 2.7%, not near
// 30%. Raw FNV failed this badly — consecutive attempt numbers landed on
// the same side of the threshold — which made retries useless against
// sub-unity panic rates; the avalanche finalizer is what fixes it.
func TestAttemptsDecorrelated(t *testing.T) {
	inj := New(Config{Seed: 1, PanicRate: 0.3})
	const n = 2000
	allThree := 0
	for i := 0; i < n; i++ {
		if inj.LiftPanic(taskName(i), 0) && inj.LiftPanic(taskName(i), 1) && inj.LiftPanic(taskName(i), 2) {
			allThree++
		}
	}
	if got := float64(allThree) / n; got > 0.06 {
		t.Fatalf("%.1f%% of tasks panic on all three attempts; independence predicts ~2.7%%", 100*got)
	}
}

// TestNeighbourTasksDecorrelated requires decisions for consecutive task
// names (the shape corpus generators produce) to be roughly independent:
// the empirical rate over a consecutive run must sit near the configured
// rate rather than collapsing to all-or-nothing per seed.
func TestNeighbourTasksDecorrelated(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		inj := New(Config{Seed: seed, PanicRate: 0.5})
		fired := 0
		const n = 200
		for i := 0; i < n; i++ {
			if inj.LiftPanic(fmt.Sprintf("pipetest_%03d", i), 0) {
				fired++
			}
		}
		if got := float64(fired) / n; got < 0.35 || got > 0.65 {
			t.Fatalf("seed %d: empirical rate %.2f over consecutive names, want ≈0.5", seed, got)
		}
	}
}

// TestMaxAttemptFaults caps faults to the first attempt: rate 1 fires on
// attempt 0 and never after.
func TestMaxAttemptFaults(t *testing.T) {
	inj := New(Config{Seed: 3, PanicRate: 1, MaxAttemptFaults: 1})
	if !inj.LiftPanic("t", 0) {
		t.Fatal("attempt 0 must fire at rate 1")
	}
	if inj.LiftPanic("t", 1) || inj.LiftPanic("t", 2) {
		t.Fatal("attempts past MaxAttemptFaults must not fire")
	}
}

// TestKillAfter fires OnKill exactly once at the threshold, also under
// concurrent completions.
func TestKillAfter(t *testing.T) {
	inj := New(Config{Seed: 1, KillAfter: 5})
	var kills int32
	var mu sync.Mutex
	inj.OnKill(func() { mu.Lock(); kills++; mu.Unlock() })
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); inj.TaskCompleted() }()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if kills != 1 {
		t.Fatalf("OnKill fired %d times, want 1", kills)
	}
	if !inj.Fired().Killed {
		t.Fatal("Fired().Killed not set")
	}
}

// TestStallDefault fills in the default stall duration.
func TestStallDefault(t *testing.T) {
	inj := New(Config{Seed: 1, StallRate: 1})
	d, ok := inj.LiftStall("t", 0)
	if !ok || d != 30*time.Second {
		t.Fatalf("stall = %v/%v, want 30s/true", d, ok)
	}
}
