// Package faultinject is a deterministic, seeded fault injector for the
// lifting pipeline's robustness machinery. Production-scale corpus runs
// must survive worker panics, wedged lifts and checkpoint I/O errors; this
// package lets tests and CI *prove* that they do, by injecting exactly
// those faults at decision points the pipeline already owns (the start of
// a lift attempt, a checkpoint append, the completion of a task).
//
// Every decision is a pure function of (seed, site, key, attempt): an FNV
// hash mapped to [0,1) and compared against the configured rate. Nothing
// depends on wall-clock time, scheduling order or previous decisions, so a
// faulted corpus run is as reproducible as a clean one — the property the
// checkpoint/resume determinism tests rely on: a run that is killed and
// resumed re-derives the same faults for the tasks it replays, and
// therefore the same statuses.
//
// An *Injector is nil-safe in the style of obs.Tracer: every method is
// free to call on a nil receiver, so the pipeline consults it
// unconditionally and a production run (nil injector) pays one pointer
// check per site.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Config seeds an Injector. Rates are probabilities in [0,1] evaluated
// independently at each site; the zero value injects nothing.
type Config struct {
	// Seed drives every decision; two injectors with the same Seed and
	// rates make identical decisions on identical keys.
	Seed int64
	// PanicRate is the probability that a lift attempt panics on its
	// worker goroutine before exploring.
	PanicRate float64
	// StallRate is the probability that a lift attempt stalls for
	// StallFor before exploring — long enough stalls trip the pipeline's
	// watchdog and exercise the abandon path.
	StallRate float64
	// StallFor is how long a stalled attempt blocks (default 30s, far
	// beyond any test watchdog budget). Stalls end early when the
	// attempt's context is cancelled, so abandoned goroutines drain.
	StallFor time.Duration
	// WriteErrRate is the probability that a checkpoint append for a
	// given task reports an injected I/O error instead of persisting.
	WriteErrRate float64
	// MaxAttemptFaults caps lift faults per task to the first n attempts
	// (0 = every attempt is eligible). MaxAttemptFaults=1 with
	// PanicRate=1 makes every task fail exactly once and then recover —
	// the shape the retry-accounting regression tests want.
	MaxAttemptFaults int
	// KillAfter, when > 0, invokes the OnKill callback (typically a
	// context cancel) once that many tasks have completed — the
	// "kill a run after K of N tasks" primitive of the resume tests.
	KillAfter int
}

// Counts tallies the faults an injector actually fired.
type Counts struct {
	Panics, Stalls, WriteErrs uint64
	Killed                    bool
}

// Injector makes deterministic fault decisions. The zero value (or nil)
// injects nothing.
type Injector struct {
	cfg       Config
	completed atomic.Int64
	panics    atomic.Uint64
	stalls    atomic.Uint64
	writeErrs atomic.Uint64
	killed    atomic.Bool

	mu     sync.Mutex
	onKill func()
}

// New returns an injector over the configuration.
func New(cfg Config) *Injector {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 30 * time.Second
	}
	return &Injector{cfg: cfg}
}

// OnKill registers the callback KillAfter fires (at most once).
func (i *Injector) OnKill(fn func()) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.onKill = fn
	i.mu.Unlock()
}

// decide is the deterministic coin flip: FNV-1a over the seed, site, key
// and attempt, avalanched and mapped to [0,1), compared against rate.
// FNV alone correlates strongly on near-identical inputs (consecutive
// task names or attempt numbers land on the same side of the threshold
// far more often than the rate predicts), so the hash is pushed through a
// splitmix64-style finalizer to decorrelate neighbouring keys.
func (i *Injector) decide(site, key string, attempt int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", i.cfg.Seed, site, key, attempt)
	return float64(mix(h.Sum64()))/float64(1<<64) < rate
}

// mix is the splitmix64 finalizer: a bijective avalanche so that inputs
// differing in a few bits yield uncorrelated outputs.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// attemptEligible applies MaxAttemptFaults.
func (i *Injector) attemptEligible(attempt int) bool {
	return i.cfg.MaxAttemptFaults == 0 || attempt < i.cfg.MaxAttemptFaults
}

// LiftPanic reports whether the given lift attempt should panic, counting
// fired decisions.
func (i *Injector) LiftPanic(task string, attempt int) bool {
	if i == nil || !i.attemptEligible(attempt) {
		return false
	}
	if !i.decide("lift-panic", task, attempt, i.cfg.PanicRate) {
		return false
	}
	i.panics.Add(1)
	return true
}

// LiftStall reports whether the given lift attempt should stall, and for
// how long.
func (i *Injector) LiftStall(task string, attempt int) (time.Duration, bool) {
	if i == nil || !i.attemptEligible(attempt) {
		return 0, false
	}
	if !i.decide("lift-stall", task, attempt, i.cfg.StallRate) {
		return 0, false
	}
	i.stalls.Add(1)
	return i.cfg.StallFor, true
}

// CheckpointWriteErr returns an injected error for the given task's
// checkpoint append, or nil. The decision is keyed by task name, not write
// order, so it is identical regardless of worker interleaving.
func (i *Injector) CheckpointWriteErr(task string) error {
	if i == nil || !i.decide("checkpoint-write", task, 0, i.cfg.WriteErrRate) {
		return nil
	}
	i.writeErrs.Add(1)
	return fmt.Errorf("faultinject: injected checkpoint write error for %q", task)
}

// TaskCompleted records one completed (non-restored) task and fires the
// OnKill callback when the KillAfter threshold is reached.
func (i *Injector) TaskCompleted() {
	if i == nil {
		return
	}
	n := i.completed.Add(1)
	if i.cfg.KillAfter > 0 && n == int64(i.cfg.KillAfter) && i.killed.CompareAndSwap(false, true) {
		i.mu.Lock()
		fn := i.onKill
		i.mu.Unlock()
		if fn != nil {
			fn()
		}
	}
}

// Fired reports the faults the injector actually injected.
func (i *Injector) Fired() Counts {
	if i == nil {
		return Counts{}
	}
	return Counts{
		Panics:    i.panics.Load(),
		Stalls:    i.stalls.Load(),
		WriteErrs: i.writeErrs.Load(),
		Killed:    i.killed.Load(),
	}
}
