package memmodel

import (
	"repro/internal/pred"
	"repro/internal/solver"
)

// Join computes M0 ⊔ M1 per Definition 3.12. Memory trees from both models
// are partitioned into equivalence classes by the transitive closure of
// "shares a top-level region"; each class joins into one tree whose node is
// the intersection of the class's region sets and whose children are the
// join of the class's child models. Classes with an empty intersection are
// dropped, and — the sound reading of the definition that Lemma 3.14's
// proof relies on — so are classes represented in only one of the two
// operands: a relation survives the join only if both disjuncts established
// it.
func Join(m0, m1 Forest) Forest {
	trees := append(append([]*Tree{}, m0...), m1...)
	if len(trees) == 0 {
		return nil
	}

	// Union-find over trees keyed by shared top-level regions.
	parent := make([]int, len(trees))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	byRegion := map[RegionID]int{}
	for i, t := range trees {
		for _, r := range t.Regions {
			id := IDOf(r)
			if j, ok := byRegion[id]; ok {
				union(i, j)
			} else {
				byRegion[id] = i
			}
		}
	}

	classes := map[int][]*Tree{}
	fromBoth := map[int][2]bool{}
	for i, t := range trees {
		root := find(i)
		classes[root] = append(classes[root], t)
		sides := fromBoth[root]
		if i < len(m0) {
			sides[0] = true
		} else {
			sides[1] = true
		}
		fromBoth[root] = sides
	}

	var out Forest
	var oneSided []*Tree
	for root, class := range classes {
		if sides := fromBoth[root]; !sides[0] || !sides[1] {
			// A class backed by only one operand encodes contingent
			// relations the other disjunct need not satisfy — unless the
			// relations are geometric tautologies (Example 3.13's two
			// same-base children), in which case they hold in every
			// state and may be kept.
			if t := joinClass(class); t != nil && treeNecessary(t) {
				oneSided = append(oneSided, t)
			}
			continue
		}
		if t := joinClass(class); t != nil {
			out = append(out, t)
		}
	}
	for _, t := range oneSided {
		ok := true
		for _, u := range append(append(Forest{}, out...), oneSided...) {
			if u == t {
				continue
			}
			if !necessarilySeparate(t, u) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// emptyPred answers relation queries with no predicate knowledge: only
// geometric tautologies (same-base constant offsets, global constants)
// decide.
var emptyPred = pred.New()

// treeNecessary reports whether every relation the tree encodes is
// necessarily true in all states: top regions pairwise alias, children
// enclosed in the top, sibling children separate, recursively.
func treeNecessary(t *Tree) bool {
	for i := 0; i < len(t.Regions); i++ {
		for j := i + 1; j < len(t.Regions); j++ {
			if solver.Compare(emptyPred, t.Regions[i], t.Regions[j]).Alias != solver.Yes {
				return false
			}
		}
	}
	for i, kid := range t.Kids {
		enc := false
		for _, kr := range kid.Regions {
			v := solver.Compare(emptyPred, kr, t.Regions[0])
			if v.Enclosed == solver.Yes || v.Alias == solver.Yes {
				enc = true
			}
		}
		if !enc || !treeNecessary(kid) {
			return false
		}
		for j := i + 1; j < len(t.Kids); j++ {
			if !necessarilySeparate(kid, t.Kids[j]) {
				return false
			}
		}
	}
	return true
}

// necessarilySeparate reports whether every region of t is geometrically
// separate from every region of u.
func necessarilySeparate(t, u *Tree) bool {
	tr := t.Kids.AllRegions(append([]solver.Region(nil), t.Regions...))
	ur := u.Kids.AllRegions(append([]solver.Region(nil), u.Regions...))
	for _, a := range tr {
		for _, b := range ur {
			if solver.Compare(emptyPred, a, b).Separate != solver.Yes {
				return false
			}
		}
	}
	return true
}

// joinClass implements joint(T): intersect the region sets, join the child
// models pairwise.
func joinClass(class []*Tree) *Tree {
	// Intersection of the region sets.
	counts := map[RegionID]int{}
	repr := map[RegionID]solver.Region{}
	for _, t := range class {
		seen := map[RegionID]bool{}
		for _, r := range t.Regions {
			id := IDOf(r)
			if !seen[id] {
				seen[id] = true
				counts[id]++
				repr[id] = r
			}
		}
	}
	var node []solver.Region
	for id, c := range counts {
		if c == len(class) {
			node = append(node, repr[id])
		}
	}
	if len(node) == 0 {
		return nil
	}
	kids := class[0].Kids.Clone()
	for _, t := range class[1:] {
		kids = Join(kids, t.Kids)
	}
	return &Tree{Regions: node, Kids: kids}
}
