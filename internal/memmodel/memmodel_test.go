package memmodel

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/pred"
	"repro/internal/solver"
)

// predOracle adapts the solver over a predicate to the Oracle interface.
type predOracle struct{ p *pred.Pred }

func (o predOracle) Compare(r0, r1 solver.Region) solver.Result {
	return solver.Compare(o.p, r0, r1)
}

func topOracle() Oracle { return predOracle{pred.New()} }

func rsp(off int64) *expr.Expr {
	return expr.Add(expr.V("rsp0"), expr.Word(uint64(off)))
}

func reg(e *expr.Expr, size uint64) solver.Region { return solver.Region{Addr: e, Size: size} }

func TestInsEmpty(t *testing.T) {
	r := reg(rsp(-8), 8)
	res := Ins(r, nil, topOracle(), DefaultConfig())
	if len(res) != 1 || res[0].Forest.NumRegions() != 1 {
		t.Fatalf("insert into empty: %v", res)
	}
	if !res[0].Forest.HasRegion(r) {
		t.Fatal("region missing")
	}
}

func TestInsSeparateStackSlots(t *testing.T) {
	cfg := DefaultConfig()
	o := topOracle()
	var f Forest
	for _, off := range []int64{-8, -16, -24} {
		res := Ins(reg(rsp(off), 8), f, o, cfg)
		if len(res) != 1 {
			t.Fatalf("stack slot insert must be deterministic, got %d models", len(res))
		}
		f = res[0].Forest
	}
	if len(f) != 3 || f.NumRegions() != 3 {
		t.Fatalf("three separate siblings expected: %v", f)
	}
	// Relations of the last insert: others separate.
	res := Ins(reg(rsp(-24), 8), f, o, cfg)
	if len(res) != 1 {
		t.Fatal("re-insert of present region must be deterministic")
	}
	for k, v := range res[0].Rel {
		if v != RelSeparate {
			t.Errorf("slot %s relation %v", k, v)
		}
	}
}

func TestInsAlias(t *testing.T) {
	o := topOracle()
	cfg := DefaultConfig()
	f := Forest{Leaf(reg(rsp(-8), 8))}
	// Same region, different syntactic address with same canonical form.
	res := Ins(reg(expr.Sub(expr.V("rsp0"), expr.Word(8)), 8), f, o, cfg)
	if len(res) != 1 {
		t.Fatalf("alias insert: %d models", len(res))
	}
	if res[0].Forest.NumRegions() != 1 {
		t.Fatalf("alias must not add a region: %v", res[0].Forest)
	}
}

func TestInsEnclosure(t *testing.T) {
	o := topOracle()
	cfg := DefaultConfig()
	f := Forest{Leaf(reg(rsp(-16), 8))}
	res := Ins(reg(rsp(-12), 4), f, o, cfg)
	if len(res) != 1 {
		t.Fatalf("enclosed insert: %d models", len(res))
	}
	nf := res[0].Forest
	if len(nf) != 1 || len(nf[0].Kids) != 1 {
		t.Fatalf("expected child: %v", nf)
	}
	if res[0].Rel[IDOf(reg(rsp(-16), 8))] != RelEnclosedIn {
		t.Fatalf("parent relation: %v", res[0].Rel)
	}
	// The converse: inserting the big region into a model with the small one.
	f2 := Forest{Leaf(reg(rsp(-12), 4))}
	res2 := Ins(reg(rsp(-16), 8), f2, o, cfg)
	if len(res2) != 1 {
		t.Fatalf("encloses insert: %d models", len(res2))
	}
	nf2 := res2[0].Forest
	if len(nf2) != 1 || len(nf2[0].Kids) != 1 {
		t.Fatalf("expected containment: %v", nf2)
	}
	if res2[0].Rel[IDOf(reg(rsp(-12), 4))] != RelEncloses {
		t.Fatalf("child relation: %v", res2[0].Rel)
	}
}

// TestInsForkUnknownAlias reproduces the Section 2 situation: two same-size
// regions with unknown bases fork into an aliasing and a separate model.
func TestInsForkUnknownAlias(t *testing.T) {
	o := topOracle()
	cfg := DefaultConfig()
	f := Forest{Leaf(reg(expr.V("rdi0"), 4))}
	res := Ins(reg(expr.V("rsi0"), 4), f, o, cfg)
	if len(res) != 2 {
		t.Fatalf("unknown same-size relation must fork into 2 models, got %d", len(res))
	}
	var sawAlias, sawSep bool
	for _, r := range res {
		switch r.Rel[IDOf(reg(expr.V("rdi0"), 4))] {
		case RelAlias:
			sawAlias = true
			if r.Forest.NumRegions() != 2 || len(r.Forest) != 1 {
				t.Fatalf("alias model shape: %v", r.Forest)
			}
		case RelSeparate:
			sawSep = true
			if len(r.Forest) != 2 {
				t.Fatalf("separate model shape: %v", r.Forest)
			}
		}
	}
	if !sawAlias || !sawSep {
		t.Fatalf("fork must cover alias and separate")
	}
}

// TestExample38 replays Example 3.8 / Figure 2: the three stores produce
// models including the two of Figure 2.
func TestExample38(t *testing.T) {
	o := topOracle()
	cfg := DefaultConfig()
	rdi := reg(expr.V("rdi0"), 8)
	rsi4 := reg(expr.Add(expr.V("rsi0"), expr.Word(4)), 4)
	rsi := reg(expr.V("rsi0"), 8)

	models := []Forest{nil}
	insert := func(r solver.Region) {
		var next []Forest
		seen := map[string]bool{}
		for _, m := range models {
			for _, res := range Ins(r, m, o, cfg) {
				k := res.Forest.Key()
				if !seen[k] {
					seen[k] = true
					next = append(next, res.Forest)
				}
			}
		}
		models = next
	}
	insert(rdi)
	insert(rsi4)
	insert(rsi)

	// Figure 2a: one tree, node {rdi0, rsi0}, child [rsi0+4,4].
	var saw2a, saw2b bool
	for _, m := range models {
		rels := m.Relations()
		aliasTop := rels[relKeyStr(rdi, rsi, "≡")]
		childIn := rels[relKeyStr2(rsi4, rsi, "⪯")]
		sepTop := rels[relKeyStr(rdi, rsi, "⋈")]
		if aliasTop && childIn {
			saw2a = true
		}
		if sepTop && childIn {
			saw2b = true
		}
	}
	if !saw2a {
		t.Errorf("Figure 2a model not produced; models: %v", models)
	}
	if !saw2b {
		t.Errorf("Figure 2b model not produced; models: %v", models)
	}
	if len(models) > 6 {
		t.Errorf("state explosion: %d models", len(models))
	}
}

// relKeyStr2 is relKeyStr for the asymmetric ⪯.
func relKeyStr2(a, b solver.Region, op string) string {
	return regionKey(a) + " " + op + " " + regionKey(b)
}

func TestDestroyOnNoForkConfig(t *testing.T) {
	o := topOracle()
	cfg := DefaultConfig()
	cfg.ForkUnknown = false
	f := Forest{Leaf(reg(expr.V("rdi0"), 4)), Leaf(reg(rsp(-8), 8))}
	res := Ins(reg(expr.V("rsi0"), 4), f, o, cfg)
	if len(res) != 1 {
		t.Fatalf("no-fork config must produce exactly one model, got %d", len(res))
	}
	rel := res[0].Rel
	if rel[IDOf(reg(expr.V("rdi0"), 4))] != RelDestroyed {
		t.Fatalf("unknown-relation region must be destroyed: %v", rel)
	}
	if rel[IDOf(reg(rsp(-8), 8))] != RelDestroyed {
		// rsp0-8 vs rsi0 is also unknown; it must be destroyed as well.
		t.Fatalf("stack region vs unknown pointer: %v", rel)
	}
}

func TestRelationsOf(t *testing.T) {
	o := topOracle()
	cfg := DefaultConfig()
	var f Forest
	for _, r := range []solver.Region{reg(rsp(-16), 8), reg(rsp(-12), 4), reg(rsp(-24), 8)} {
		res := Ins(r, f, o, cfg)
		if len(res) != 1 {
			t.Fatalf("deterministic insert expected")
		}
		f = res[0].Forest
	}
	rel := RelationsOf(f, reg(rsp(-12), 4))
	if rel[IDOf(reg(rsp(-16), 8))] != RelEnclosedIn {
		t.Errorf("parent: %v", rel)
	}
	if rel[IDOf(reg(rsp(-24), 8))] != RelSeparate {
		t.Errorf("sibling: %v", rel)
	}
	rel = RelationsOf(f, reg(rsp(-16), 8))
	if rel[IDOf(reg(rsp(-12), 4))] != RelEncloses {
		t.Errorf("child: %v", rel)
	}
}

func TestJoinIdentical(t *testing.T) {
	f := Forest{Leaf(reg(rsp(-8), 8)), Leaf(reg(rsp(-16), 8))}
	j := Join(f, f.Clone())
	if j.Key() != f.Key() {
		t.Fatalf("join of identical models: %v vs %v", j, f)
	}
}

// TestJoinExample313 replays Example 3.13: two models with top [rdi0,8] and
// different enclosed children join into one tree with both children.
func TestJoinExample313(t *testing.T) {
	top := reg(expr.V("rdi0"), 8)
	m0 := Forest{{Regions: []solver.Region{top}, Kids: Forest{Leaf(reg(expr.V("rdi0"), 4))}}}
	m1 := Forest{{Regions: []solver.Region{top}, Kids: Forest{Leaf(reg(expr.Add(expr.V("rdi0"), expr.Word(4)), 4))}}}
	j := Join(m0, m1)
	if len(j) != 1 {
		t.Fatalf("one tree expected: %v", j)
	}
	if len(j[0].Regions) != 1 || regionKey(j[0].Regions[0]) != regionKey(top) {
		t.Fatalf("top node: %v", j)
	}
	if len(j[0].Kids) != 2 {
		t.Fatalf("both children expected as siblings: %v", j)
	}
}

func TestJoinIntersectsAliasSets(t *testing.T) {
	a, b, c := reg(expr.V("a"), 8), reg(expr.V("b"), 8), reg(expr.V("c"), 8)
	m0 := Forest{{Regions: []solver.Region{a, b}}}
	m1 := Forest{{Regions: []solver.Region{a, c}}}
	j := Join(m0, m1)
	if len(j) != 1 || len(j[0].Regions) != 1 || regionKey(j[0].Regions[0]) != regionKey(a) {
		t.Fatalf("intersection must keep only the shared region: %v", j)
	}
}

func TestJoinDisjointModels(t *testing.T) {
	// Same-base one-sided trees encode geometric tautologies (stack slots
	// at constant offsets are separate in every state) and survive the
	// join.
	m0 := Forest{Leaf(reg(rsp(-8), 8))}
	m1 := Forest{Leaf(reg(rsp(-16), 8))}
	j := Join(m0, m1)
	if len(j) != 2 {
		t.Fatalf("tautological stack regions must survive: %v", j)
	}
	// Contingent one-sided trees (cross-base relations) are dropped: a
	// relation survives only when it holds in both disjuncts.
	m2 := Forest{Leaf(reg(expr.V("rdi0"), 8)), Leaf(reg(rsp(-8), 8))}
	m3 := Forest{Leaf(reg(rsp(-8), 8))}
	j2 := Join(m2, m3)
	if j2.HasRegion(reg(expr.V("rdi0"), 8)) {
		t.Fatalf("contingent one-sided tree must be dropped: %v", j2)
	}
	if !j2.HasRegion(reg(rsp(-8), 8)) {
		t.Fatalf("shared tree must survive: %v", j2)
	}
}

func TestHoldsConcrete(t *testing.T) {
	// Build {[rsp0-16,8] with child [rsp0-12,4], [rsp0-8,8]} and check it
	// holds under a concrete rsp0.
	o := topOracle()
	cfg := DefaultConfig()
	var f Forest
	for _, r := range []solver.Region{reg(rsp(-16), 8), reg(rsp(-12), 4), reg(rsp(-8), 8)} {
		res := Ins(r, f, o, cfg)
		f = res[0].Forest
	}
	eval := func(e *expr.Expr) (uint64, bool) {
		v := expr.Subst(e, "rsp0", expr.Word(0x7fff0000))
		return v.AsWord()
	}
	if !f.Holds(eval) {
		t.Fatalf("structured stack model must hold: %v", f)
	}
	// An inconsistent model: two "separate" siblings that concretely alias.
	bad := Forest{Leaf(reg(expr.V("p"), 8)), Leaf(reg(expr.V("q"), 8))}
	evalSame := func(e *expr.Expr) (uint64, bool) {
		v := expr.Subst(expr.Subst(e, "p", expr.Word(0x1000)), "q", expr.Word(0x1000))
		return v.AsWord()
	}
	if bad.Holds(evalSame) {
		t.Fatal("aliasing siblings must not hold")
	}
}

// TestQuickInsCompleteness is Lemma 3.11 in property form: for random
// same-base stack layouts (where every relation is decided), insertion is
// deterministic and the produced model's relations agree with concrete
// geometry.
func TestQuickInsCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	o := topOracle()
	cfg := DefaultConfig()
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		var regions []solver.Region
		var f Forest
		ok := true
		for i := 0; i < n && ok; i++ {
			off := -8 * int64(1+rng.Intn(8))
			size := uint64(1) << uint(rng.Intn(4))
			r := reg(rsp(off), size)
			res := Ins(r, f, o, cfg)
			if len(res) != 1 {
				t.Fatalf("same-base insert must be deterministic: %d models for %v into %v", len(res), r, f)
			}
			f = res[0].Forest
			regions = append(regions, r)
		}
		// The model must hold under a concrete valuation.
		eval := func(e *expr.Expr) (uint64, bool) {
			return expr.Subst(e, "rsp0", expr.Word(0x7ffff000)).AsWord()
		}
		if !f.Holds(eval) {
			t.Fatalf("model does not hold concretely: %v (inserted %v)", f, regions)
		}
	}
}

func TestRelKindString(t *testing.T) {
	kinds := []RelKind{RelSeparate, RelAlias, RelEnclosedIn, RelEncloses, RelDestroyed}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty relation name")
		}
	}
}

// TestQuickJoinSoundnessLemma314 is Lemma 3.14 in property form: any
// concrete state satisfying either operand also satisfies the join.
func TestQuickJoinSoundnessLemma314(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	o := topOracle()
	cfg := DefaultConfig()
	buildModel := func() Forest {
		var f Forest
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			off := -8 * int64(1+rng.Intn(8))
			size := uint64(4) << uint(rng.Intn(2))
			res := Ins(reg(rsp(off), size), f, o, cfg)
			f = res[0].Forest
		}
		return f
	}
	eval := func(e *expr.Expr) (uint64, bool) {
		return expr.Subst(e, "rsp0", expr.Word(0x7ffff000)).AsWord()
	}
	for trial := 0; trial < 150; trial++ {
		m0 := buildModel()
		m1 := buildModel()
		j := Join(m0, m1)
		// Same-base models always hold concretely; so must their join.
		if !m0.Holds(eval) || !m1.Holds(eval) {
			t.Fatalf("trial %d: operand model does not hold", trial)
		}
		if !j.Holds(eval) {
			t.Fatalf("trial %d: join does not hold:\n m0=%v\n m1=%v\n j=%v", trial, m0, m1, j)
		}
		// Join is commutative up to keys.
		if Join(m1, m0).Key() != j.Key() {
			t.Fatalf("trial %d: join not commutative", trial)
		}
	}
}

// TestInsCountedFallback pins the observable MaxModels fallback: inserting a
// same-size region whose relation to every existing tree is undecided forks
// into (trees+1) models, so nine undecided trees exceed MaxModels=8 and the
// insertion must destroy — now reported instead of silent.
func TestInsCountedFallback(t *testing.T) {
	o := topOracle()
	cfg := DefaultConfig()
	var f Forest
	names := []expr.Var{"a0", "b0", "c0", "d0", "e0", "f0", "g0", "h0"}
	for _, v := range names {
		f = append(f, Leaf(reg(expr.V(v), 8)))
	}
	res, fellBack := InsCounted(reg(expr.V("p0"), 8), f, o, cfg)
	if !fellBack {
		t.Fatalf("inserting into %d undecided trees must exceed MaxModels=%d", len(f), cfg.MaxModels)
	}
	if len(res) != 1 {
		t.Fatalf("fallback must produce exactly the destroy model, got %d", len(res))
	}
	for _, v := range names {
		if res[0].Rel[IDOf(reg(expr.V(v), 8))] != RelDestroyed {
			t.Fatalf("fallback must destroy %s: %v", v, res[0].Rel)
		}
	}

	// Below the cap: no fallback, and Ins agrees with InsCounted.
	small := Forest{Leaf(reg(expr.V("a0"), 8))}
	res2, fellBack2 := InsCounted(reg(expr.V("p0"), 8), small, o, cfg)
	if fellBack2 {
		t.Fatal("two-model fork is within the cap")
	}
	if got := Ins(reg(expr.V("p0"), 8), small, o, cfg); len(got) != len(res2) {
		t.Fatalf("Ins must match InsCounted: %d vs %d", len(got), len(res2))
	}

	// ForkUnknown=false hits the len==0 branch of the same fallback.
	nofork := cfg
	nofork.ForkUnknown = false
	_, fellBack3 := InsCounted(reg(expr.V("p0"), 8), small, o, nofork)
	if !fellBack3 {
		t.Fatal("no-fork undecided insertion is a fallback destroy")
	}

	// Re-inserting a present region is clean.
	_, fellBack4 := InsCounted(reg(expr.V("a0"), 8), small, o, cfg)
	if fellBack4 {
		t.Fatal("present-region insert must not fall back")
	}
}
