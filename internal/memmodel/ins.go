package memmodel

import (
	"repro/internal/solver"
)

// RelKind describes, for one model produced by insertion, how an existing
// region relates to the inserted region. The semantics layer uses it to
// update or invalidate the memory equality clauses of the predicate.
type RelKind uint8

// The relation kinds recorded per produced model.
const (
	RelSeparate   RelKind = iota // contents unaffected
	RelAlias                     // same region: contents replaced by the write
	RelEnclosedIn                // inserted region lies inside the existing one
	RelEncloses                  // existing region lies inside the inserted one
	RelDestroyed                 // possibly partially overlapping: contents unknown
)

// String renders the relation kind.
func (k RelKind) String() string {
	switch k {
	case RelSeparate:
		return "separate"
	case RelAlias:
		return "alias"
	case RelEnclosedIn:
		return "enclosed-in"
	case RelEncloses:
		return "encloses"
	default:
		return "destroyed"
	}
}

// InsResult is one nondeterministically produced memory model plus the
// relation of every pre-existing region to the inserted region in that
// model, keyed by the regions' interned identities.
type InsResult struct {
	Forest Forest
	Rel    map[RegionID]RelKind
}

// Oracle answers necessarily-relation queries between regions; the lifter
// implements it with the solver over the current predicate (the paper uses
// Z3 there).
type Oracle interface {
	Compare(r0, r1 solver.Region) solver.Result
}

// Config tunes the nondeterminism of insertion.
type Config struct {
	// ForkUnknown makes insertion produce one model per possible clean
	// relation when nothing is decided (the paper's nondeterministic
	// exploration). When false, undecided insertions destroy instead —
	// the ablation of Section "Design choices" in DESIGN.md.
	ForkUnknown bool
	// AssumePartialImpossible reflects the paper's observation that
	// compiler-generated code accesses structured regions: possible
	// partial overlaps do not generate an extra destroyed model when a
	// clean relation is also possible. Setting it to false adds the
	// destroy model whenever partial overlap cannot be excluded.
	AssumePartialImpossible bool
	// MaxModels bounds the fan-out of one insertion; beyond it the
	// insertion falls back to destroying (state-space control).
	MaxModels int
}

// DefaultConfig returns the configuration used by the paper's algorithm.
func DefaultConfig() Config {
	return Config{ForkUnknown: true, AssumePartialImpossible: true, MaxModels: 8}
}

// RelationsOf derives the relation of region r to every other region from
// the structure of a model that already contains r. Same node: alias;
// ancestor: r is enclosed in it; descendant: encloses; otherwise separate.
func RelationsOf(f Forest, r solver.Region) map[RegionID]RelKind {
	want := IDOf(r)
	rel := map[RegionID]RelKind{}
	for _, reg := range f.AllRegions(nil) {
		if id := IDOf(reg); id != want {
			rel[id] = RelSeparate
		}
	}
	var walk func(f Forest, ancestors []RegionID) bool
	walk = func(f Forest, ancestors []RegionID) bool {
		for _, t := range f {
			inNode := false
			var nodeIDs []RegionID
			for _, reg := range t.Regions {
				id := IDOf(reg)
				nodeIDs = append(nodeIDs, id)
				if id == want {
					inNode = true
				}
			}
			if inNode {
				for _, id := range nodeIDs {
					if id != want {
						rel[id] = RelAlias
					}
				}
				for _, a := range ancestors {
					rel[a] = RelEnclosedIn
				}
				for _, kid := range t.Kids.AllRegions(nil) {
					rel[IDOf(kid)] = RelEncloses
				}
				return true
			}
			if walk(t.Kids, append(ancestors, nodeIDs...)) {
				return true
			}
		}
		return false
	}
	walk(f, nil)
	return rel
}

// Ins inserts region r into memory model f per Definition 3.7, returning
// the nondeterministic set of produced models. If the region is already
// present the model is unchanged and its relations are read off the
// structure.
func Ins(r solver.Region, f Forest, o Oracle, cfg Config) []InsResult {
	results, _ := InsCounted(r, f, o, cfg)
	return results
}

// InsCounted is Ins with the fallback made observable: the second result
// reports whether the insertion abandoned its forked models — either
// because nothing clean was derivable with forking disabled, or because the
// fan-out exceeded cfg.MaxModels — and destroyed instead. The fallback used
// to be silent, which made "why did this read degrade to unknown?"
// unanswerable from the outside; the semantics layer now counts it
// (sem.Counters.Fallbacks, obs memmodel.fallback).
func InsCounted(r solver.Region, f Forest, o Oracle, cfg Config) ([]InsResult, bool) {
	if f.HasRegion(r) {
		return []InsResult{{Forest: f, Rel: RelationsOf(f, r)}}, false
	}
	results := insTree(Leaf(r), f, o, cfg)
	if len(results) == 0 || len(results) > cfg.MaxModels {
		return []InsResult{destroy(Leaf(r), f, o)}, true
	}
	return results, false
}

// treeRel aggregates solver verdicts between the top nodes of t0 and t1.
type treeRel struct {
	alias, separate, enclosed, encloses, partial solver.Verdict
}

func compareTrees(t0, t1 *Tree, o Oracle) treeRel {
	// Start from the strongest claims and weaken per pair.
	agg := treeRel{
		alias: solver.No, separate: solver.Yes,
		enclosed: solver.No, encloses: solver.Yes, partial: solver.No,
	}
	anyEnclosedYes := false
	for _, r0 := range t0.Regions {
		for _, r1 := range t1.Regions {
			v := o.Compare(r0, r1)
			// alias: Yes if any pair necessarily aliases.
			if v.Alias == solver.Yes {
				agg.alias = solver.Yes
			} else if v.Alias == solver.Maybe && agg.alias == solver.No {
				agg.alias = solver.Maybe
			}
			// separate: needs all pairs separate.
			if v.Separate != solver.Yes && agg.separate == solver.Yes {
				agg.separate = v.Separate
			} else if v.Separate == solver.No {
				agg.separate = solver.No
			}
			// enclosed: Yes if necessarily inside some top region.
			if v.Enclosed == solver.Yes {
				anyEnclosedYes = true
			} else if v.Enclosed == solver.Maybe && agg.enclosed == solver.No {
				agg.enclosed = solver.Maybe
			}
			// encloses: needs all of t1's top inside t0.
			if v.Encloses != solver.Yes && agg.encloses == solver.Yes {
				agg.encloses = v.Encloses
			} else if v.Encloses == solver.No {
				agg.encloses = solver.No
			}
			if v.Partial == solver.Yes {
				agg.partial = solver.Yes
			} else if v.Partial == solver.Maybe && agg.partial == solver.No {
				agg.partial = solver.Maybe
			}
		}
	}
	if anyEnclosedYes {
		agg.enclosed = solver.Yes
	}
	return agg
}

// insTree is the recursive ins of Definition 3.7 extended with relation
// recording. t0 is the tree being inserted; f the current (sub-)model.
func insTree(t0 *Tree, f Forest, o Oracle, cfg Config) []InsResult {
	if len(f) == 0 {
		return []InsResult{{Forest: Forest{t0.Clone()}, Rel: map[RegionID]RelKind{}}}
	}
	t1, rest := f[0], f[1:]
	rel := compareTrees(t0, t1, o)

	switch {
	case rel.alias == solver.Yes:
		return []InsResult{insAlias(t0, t1, rest)}
	case rel.separate == solver.Yes:
		return insSep(t0, t1, rest, o, cfg)
	case rel.enclosed == solver.Yes:
		return []InsResult{insEnc(t0, t1, rest, o, cfg)}
	case rel.encloses == solver.Yes:
		return insCon(t0, t1, rest, o, cfg)
	}

	if !cfg.ForkUnknown {
		return nil // caller falls back to destroy
	}

	// Nondeterministic fork: one model per possible clean relation.
	var out []InsResult
	if rel.alias == solver.Maybe {
		out = append(out, insAlias(t0, t1, rest))
	}
	if rel.separate == solver.Maybe {
		out = append(out, insSep(t0, t1, rest, o, cfg)...)
	}
	if rel.enclosed == solver.Maybe {
		out = append(out, insEnc(t0, t1, rest, o, cfg))
	}
	if rel.encloses == solver.Maybe {
		out = append(out, insCon(t0, t1, rest, o, cfg)...)
	}
	if rel.partial == solver.Maybe && !cfg.AssumePartialImpossible || rel.partial == solver.Yes {
		out = append(out, destroy(t0, f, o))
	}
	return out
}

// insAlias merges the nodes of t0 and t1; the children of both become
// children of the merged node. Existing top regions alias the write;
// existing children are enclosed by it.
func insAlias(t0, t1 *Tree, rest Forest) InsResult {
	rel := map[RegionID]RelKind{}
	merged := &Tree{}
	seen := map[RegionID]bool{}
	for _, r := range append(append([]solver.Region{}, t0.Regions...), t1.Regions...) {
		if id := IDOf(r); !seen[id] {
			seen[id] = true
			merged.Regions = append(merged.Regions, r)
		}
	}
	for _, r := range t1.Regions {
		rel[IDOf(r)] = RelAlias
	}
	merged.Kids = append(t0.Kids.Clone(), t1.Kids.Clone()...)
	for _, kid := range t1.Kids.AllRegions(nil) {
		rel[IDOf(kid)] = RelEncloses
	}
	out := append(Forest{merged}, rest.Clone()...)
	for _, r := range rest.AllRegions(nil) {
		rel[IDOf(r)] = RelSeparate
	}
	return InsResult{Forest: out, Rel: rel}
}

// insSep keeps t1 untouched and recursively inserts t0 into the rest.
func insSep(t0, t1 *Tree, rest Forest, o Oracle, cfg Config) []InsResult {
	subResults := insTree(t0, rest, o, cfg)
	out := make([]InsResult, 0, len(subResults))
	for _, sub := range subResults {
		rel := map[RegionID]RelKind{}
		for k, v := range sub.Rel {
			rel[k] = v
		}
		for _, r := range t1.Regions {
			rel[IDOf(r)] = RelSeparate
		}
		for _, r := range t1.Kids.AllRegions(nil) {
			rel[IDOf(r)] = RelSeparate
		}
		out = append(out, InsResult{
			Forest: append(Forest{t1.Clone()}, sub.Forest...),
			Rel:    rel,
		})
	}
	return out
}

// insEnc inserts t0 into the sub-forest of t1. To keep the model count
// linear we commit to the first produced sub-model here; enclosure writes
// invalidate the enclosing region's contents anyway, so extra sub-models
// add no precision for the predicate.
func insEnc(t0, t1 *Tree, rest Forest, o Oracle, cfg Config) InsResult {
	subResults := insTree(t0, t1.Kids, o, cfg)
	sub := subResults[0]
	rel := map[RegionID]RelKind{}
	for k, v := range sub.Rel {
		rel[k] = v
	}
	for _, r := range t1.Regions {
		rel[IDOf(r)] = RelEnclosedIn
	}
	nt := &Tree{Regions: append([]solver.Region(nil), t1.Regions...), Kids: sub.Forest}
	for _, r := range rest.AllRegions(nil) {
		rel[IDOf(r)] = RelSeparate
	}
	return InsResult{Forest: append(Forest{nt}, rest.Clone()...), Rel: rel}
}

// insCon makes t1 a child of t0 and recursively inserts the grown t0 into
// the rest of the model.
func insCon(t0, t1 *Tree, rest Forest, o Oracle, cfg Config) []InsResult {
	grown := t0.Clone()
	grown.Kids = append(grown.Kids, t1.Clone())
	inner := map[RegionID]RelKind{}
	for _, r := range t1.Regions {
		inner[IDOf(r)] = RelEncloses
	}
	for _, r := range t1.Kids.AllRegions(nil) {
		inner[IDOf(r)] = RelEncloses
	}
	subResults := insTree(grown, rest, o, cfg)
	out := make([]InsResult, 0, len(subResults))
	for _, sub := range subResults {
		rel := map[RegionID]RelKind{}
		for k, v := range sub.Rel {
			rel[k] = v
		}
		for k, v := range inner {
			rel[k] = v
		}
		out = append(out, InsResult{Forest: sub.Forest, Rel: rel})
	}
	return out
}

// destroy removes every tree that is not necessarily separate from t0 and
// marks its regions destroyed, then adds t0 as a fresh top-level tree
// (Section 1: partially overlapping regions are destroyed, reads from them
// produce unconstrained symbolic values).
func destroy(t0 *Tree, f Forest, o Oracle) InsResult {
	rel := map[RegionID]RelKind{}
	var kept Forest
	for _, t := range f {
		r := compareTrees(t0, t, o)
		if r.separate == solver.Yes {
			kept = append(kept, t.Clone())
			for _, reg := range t.Regions {
				rel[IDOf(reg)] = RelSeparate
			}
			for _, reg := range t.Kids.AllRegions(nil) {
				rel[IDOf(reg)] = RelSeparate
			}
			continue
		}
		for _, reg := range t.Regions {
			rel[IDOf(reg)] = RelDestroyed
		}
		for _, reg := range t.Kids.AllRegions(nil) {
			rel[IDOf(reg)] = RelDestroyed
		}
	}
	return InsResult{Forest: append(kept, t0.Clone()), Rel: rel}
}
