// Package memmodel implements the memory models M of the paper
// (Section 3.2): forests of memory trees recording aliasing, separation and
// enclosure relations between symbolic memory regions.
//
//	MemTree ≔ {C × N} × Mem        Mem ≔ {MemTree}
//
// Two regions in the same node alias; children are enclosed in their
// parents; siblings are separate. Insertion (Definition 3.7) is
// nondeterministic: when the relation between the inserted region and an
// existing tree cannot be decided, one model per possible clean relation is
// produced, and regions that may partially overlap are destroyed
// (overapproximated to unknown contents).
package memmodel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/solver"
)

// Tree is one memory tree: a node of mutually aliasing regions plus a
// sub-forest of enclosed children.
type Tree struct {
	Regions []solver.Region
	Kids    Forest
}

// Forest is a memory model: a set of mutually separate trees.
type Forest []*Tree

// NewRegion is a convenience constructor.
func NewRegion(addr *expr.Expr, size uint64) solver.Region {
	return solver.Region{Addr: addr, Size: size}
}

// regionKey renders a region for the canonical string forms (Forest.Key,
// Relations); identity checks and relation maps use RegionID instead.
func regionKey(r solver.Region) string {
	return fmt.Sprintf("%s#%d", r.Addr.Key(), r.Size)
}

// RegionID identifies a region exactly. Addresses are interned expressions,
// so the (address pointer, size) pair is a comparable value with the same
// equality as the rendered "addrKey#size" string, at no rendering cost. The
// semantics layer builds the same IDs from its predicate clauses to look up
// relation verdicts.
type RegionID struct {
	Addr *expr.Expr
	Size uint64
}

// IDOf returns the identity of a region.
func IDOf(r solver.Region) RegionID { return RegionID{Addr: r.Addr, Size: r.Size} }

// String renders the identity in the canonical "addrKey#size" form.
func (id RegionID) String() string {
	return fmt.Sprintf("%s#%d", id.Addr.Key(), id.Size)
}

// Leaf returns a single-region tree with no children.
func Leaf(r solver.Region) *Tree { return &Tree{Regions: []solver.Region{r}} }

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	nt := &Tree{Regions: append([]solver.Region(nil), t.Regions...)}
	nt.Kids = t.Kids.Clone()
	return nt
}

// Clone returns a deep copy of the forest.
func (f Forest) Clone() Forest {
	if f == nil {
		return nil
	}
	nf := make(Forest, len(f))
	for i, t := range f {
		nf[i] = t.Clone()
	}
	return nf
}

// Key returns a canonical fingerprint of the forest (order-independent).
func (f Forest) Key() string {
	keys := make([]string, len(f))
	for i, t := range f {
		keys[i] = t.key()
	}
	sort.Strings(keys)
	return "{" + strings.Join(keys, " ") + "}"
}

func (t *Tree) key() string {
	rs := make([]string, len(t.Regions))
	for i, r := range t.Regions {
		rs[i] = regionKey(r)
	}
	sort.Strings(rs)
	s := "[" + strings.Join(rs, "≡")
	if len(t.Kids) > 0 {
		s += " " + t.Kids.Key()
	}
	return s + "]"
}

// String renders the model in the paper's notation.
func (f Forest) String() string { return f.Key() }

// Same reports whether two forests encode the same model. Structurally
// identical forests (same trees in the same order, regions pointer-equal —
// the common case at the exploration's fixed point, since cloning preserves
// order) are detected without rendering anything; otherwise it falls back to
// the order-independent canonical Key.
func (f Forest) Same(g Forest) bool {
	if sameOrdered(f, g) {
		return true
	}
	return f.Key() == g.Key()
}

func sameOrdered(f, g Forest) bool {
	if len(f) != len(g) {
		return false
	}
	for i, t := range f {
		u := g[i]
		if len(t.Regions) != len(u.Regions) {
			return false
		}
		for j, r := range t.Regions {
			if IDOf(r) != IDOf(u.Regions[j]) {
				return false
			}
		}
		if !sameOrdered(t.Kids, u.Kids) {
			return false
		}
	}
	return true
}

// AllRegions appends every region in the forest to dst and returns it.
func (f Forest) AllRegions(dst []solver.Region) []solver.Region {
	for _, t := range f {
		dst = append(dst, t.Regions...)
		dst = t.Kids.AllRegions(dst)
	}
	return dst
}

// HasRegion reports whether the forest contains a region with the same
// address and size.
func (f Forest) HasRegion(r solver.Region) bool {
	want := IDOf(r)
	for _, existing := range f.AllRegions(nil) {
		if IDOf(existing) == want {
			return true
		}
	}
	return false
}

// NumRegions counts the regions in the forest.
func (f Forest) NumRegions() int { return len(f.AllRegions(nil)) }

// Relation is one entry of R(M): an ordered pair of regions and the
// relation the model asserts between them.
type Relation struct {
	A, B solver.Region
	Op   string // "≡", "⋈" or "⪯"
}

// String renders the relation in the canonical key form used by
// Relations().
func (r Relation) String() string {
	if r.Op == "⪯" {
		return fmt.Sprintf("%s ⪯ %s", regionKey(r.A), regionKey(r.B))
	}
	return relKeyStr(r.A, r.B, r.Op)
}

// RelationsDetailed returns R(M) with structured entries.
func (f Forest) RelationsDetailed() []Relation {
	var out []Relation
	var walk func(f Forest)
	walk = func(f Forest) {
		for i, t := range f {
			for a := 0; a < len(t.Regions); a++ {
				for b := a + 1; b < len(t.Regions); b++ {
					out = append(out, Relation{A: t.Regions[a], B: t.Regions[b], Op: "≡"})
				}
			}
			for _, kid := range t.Kids.AllRegions(nil) {
				for _, top := range t.Regions {
					out = append(out, Relation{A: kid, B: top, Op: "⪯"})
				}
			}
			for j := i + 1; j < len(f); j++ {
				for _, a := range t.Kids.AllRegions(append([]solver.Region(nil), t.Regions...)) {
					for _, b := range f[j].Kids.AllRegions(append([]solver.Region(nil), f[j].Regions...)) {
						out = append(out, Relation{A: a, B: b, Op: "⋈"})
					}
				}
			}
			walk(t.Kids)
		}
	}
	walk(f)
	return out
}

// GeometricallyNecessary reports whether the relation holds in every
// concrete state regardless of any predicate — e.g. two stack slots at
// constant offsets are always separate.
func GeometricallyNecessary(r Relation) bool {
	v := solver.Compare(emptyPred, r.A, r.B)
	switch r.Op {
	case "≡":
		return v.Alias == solver.Yes
	case "⋈":
		return v.Separate == solver.Yes
	case "⪯":
		return v.Enclosed == solver.Yes || v.Alias == solver.Yes
	}
	return false
}

// Relations returns the set R(M) of region relations encoded by the model,
// as strings "a ≡ b", "a ⋈ b", "a ⪯ b" with operands in canonical order.
// It is used by tests of Lemma 3.11 (completeness of insertion).
func (f Forest) Relations() map[string]bool {
	out := map[string]bool{}
	var walk func(f Forest)
	walk = func(f Forest) {
		for i, t := range f {
			// Aliasing within a node.
			for a := 0; a < len(t.Regions); a++ {
				for b := a + 1; b < len(t.Regions); b++ {
					out[relKeyStr(t.Regions[a], t.Regions[b], "≡")] = true
				}
			}
			// Children enclosed in parents (any top region).
			for _, kid := range t.Kids.AllRegions(nil) {
				for _, top := range t.Regions {
					out[fmt.Sprintf("%s ⪯ %s", regionKey(kid), regionKey(top))] = true
				}
			}
			// Siblings separate (all regions pairwise).
			for j := i + 1; j < len(f); j++ {
				for _, a := range append(append([]solver.Region{}, t.Regions...), t.Kids.AllRegions(nil)...) {
					for _, b := range append(append([]solver.Region{}, f[j].Regions...), f[j].Kids.AllRegions(nil)...) {
						out[relKeyStr(a, b, "⋈")] = true
					}
				}
			}
			// Sibling children within the same parent are separate.
			walk(t.Kids)
		}
	}
	walk(f)
	return out
}

func relKeyStr(a, b solver.Region, op string) string {
	ka, kb := regionKey(a), regionKey(b)
	if ka > kb {
		ka, kb = kb, ka
	}
	return fmt.Sprintf("%s %s %s", ka, op, kb)
}

// Holds implements Definition 3.9 for a concrete valuation: eval maps an
// address expression to a concrete address. Used by the soundness property
// tests. Returns false if some address cannot be evaluated.
func (f Forest) Holds(eval func(*expr.Expr) (uint64, bool)) bool {
	conc := func(r solver.Region) (lo, hi uint64, ok bool) {
		a, ok := eval(r.Addr)
		if !ok {
			return 0, 0, false
		}
		return a, a + r.Size, true
	}
	var treeHolds func(t *Tree) bool
	var forestHolds func(f Forest) bool
	treeHolds = func(t *Tree) bool {
		// All node regions alias.
		for i := 1; i < len(t.Regions); i++ {
			a0, h0, ok0 := conc(t.Regions[0])
			ai, hi2, oki := conc(t.Regions[i])
			if !ok0 || !oki || a0 != ai || h0 != hi2 {
				return false
			}
		}
		// Children enclosed.
		p0, p1, ok := conc(t.Regions[0])
		if !ok {
			return false
		}
		for _, kid := range t.Kids {
			k0, k1, ok := conc(kid.Regions[0])
			if !ok || k0 < p0 || k1 > p1 {
				return false
			}
		}
		return forestHolds(t.Kids)
	}
	forestHolds = func(f Forest) bool {
		for i, t := range f {
			if len(t.Regions) == 0 || !treeHolds(t) {
				return false
			}
			for j := i + 1; j < len(f); j++ {
				a0, h0, ok0 := conc(t.Regions[0])
				a1, h1, ok1 := conc(f[j].Regions[0])
				if !ok0 || !ok1 {
					return false
				}
				if !(h0 <= a1 || h1 <= a0) {
					return false
				}
			}
		}
		return true
	}
	return forestHolds(f)
}
