package hoare

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/sem"
	"repro/internal/x86"
)

func sampleGraph() *Graph {
	g := NewGraph(0x401000, "f", "S_401000")
	g.EntryID = "401000"
	st := sem.InitialState("S_401000")
	g.Vertices["401000"] = &Vertex{ID: "401000", Addr: 0x401000, State: st}
	g.Vertices["401005"] = &Vertex{ID: "401005", Addr: 0x401005, State: st.Clone()}
	g.Vertices[ExitID] = &Vertex{ID: ExitID}
	mov := x86.Inst{Addr: 0x401000, Mn: x86.MOV, Ops: []x86.Operand{
		x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 4)}}
	ret := x86.Inst{Addr: 0x401005, Mn: x86.RET}
	g.Instrs[0x401000] = mov
	g.Instrs[0x401005] = ret
	g.AddEdge(Edge{From: "401000", To: "401005", Inst: mov, Kind: sem.KFall})
	g.AddEdge(Edge{From: "401005", To: ExitID, Inst: ret, Kind: sem.KRet})
	return g
}

func TestEdgeDedup(t *testing.T) {
	g := sampleGraph()
	n := len(g.Edges)
	g.AddEdge(g.Edges[0])
	if len(g.Edges) != n {
		t.Fatal("duplicate edge inserted")
	}
}

func TestAnnotateDedup(t *testing.T) {
	g := sampleGraph()
	g.Annotate(0x401000, AnnUnresolvedJump, "first")
	g.Annotate(0x401000, AnnUnresolvedJump, "second")
	g.Annotate(0x401000, AnnUnresolvedCall, "different kind")
	if len(g.Annotations) != 2 {
		t.Fatalf("annotations: %+v", g.Annotations)
	}
}

func TestStats(t *testing.T) {
	g := sampleGraph()
	g.Resolved[0x401000] = true
	g.Annotate(0x401010, AnnUnresolvedJump, "b")
	g.Annotate(0x401020, AnnUnresolvedCall, "c")
	g.Obligations = append(g.Obligations, "ob")
	g.Assumptions = append(g.Assumptions, "as")
	s := g.Stats()
	if s.Instructions != 2 || s.States != 3 || s.Edges != 2 {
		t.Fatalf("stats: %+v", s)
	}
	if s.ResolvedInd != 1 || s.UnresolvedJump != 1 || s.UnresolvedCall != 1 {
		t.Fatalf("indirection stats: %+v", s)
	}
	if s.Obligations != 1 || s.Assumptions != 1 {
		t.Fatalf("obligation stats: %+v", s)
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.Instructions != 4 || sum.ResolvedInd != 2 {
		t.Fatalf("sum: %+v", sum)
	}
}

func TestSortedAndQueries(t *testing.T) {
	g := sampleGraph()
	vs := g.SortedVertices()
	if len(vs) != 3 {
		t.Fatalf("vertices: %d", len(vs))
	}
	// Terminal vertices have address 0 and sort first.
	if vs[len(vs)-1].Addr != 0x401005 {
		t.Fatalf("sort order: %+v", vs)
	}
	es := g.SortedEdges()
	if es[0].Inst.Addr != 0x401000 {
		t.Fatalf("edge order: %+v", es)
	}
	succ := g.Successors("401000")
	if len(succ) != 1 || succ[0] != "401005" {
		t.Fatalf("successors: %v", succ)
	}
	if !g.HasEdge("401005", ExitID) || g.HasEdge("401000", ExitID) {
		t.Fatal("HasEdge")
	}
	at := g.VerticesAt(0x401005)
	if len(at) != 1 || at[0].ID != "401005" {
		t.Fatalf("vertices at: %+v", at)
	}
}

func TestDump(t *testing.T) {
	g := sampleGraph()
	g.Vertices["401000"].State.Pred.SetReg(x86.RAX, expr.Word(7))
	g.Annotate(0x401010, AnnUnresolvedJump, "why")
	g.Obligations = append(g.Obligations, "@1 : f(...) MUST PRESERVE [...]")
	g.Assumptions = append(g.Assumptions, "@2 : ASSUMED SEPARATE")
	d := g.Dump()
	for _, want := range []string{
		"hoare graph of f",
		"vertex 401000",
		"inv rax == 0x7",
		"edge 401000 -> 401005 : mov rax, 0x1",
		"edge 401005 -> exit : ret",
		"annotation @0x401010 unresolved-jump: why",
		"obligation @1",
		"assumption @2",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestAnnKindStrings(t *testing.T) {
	for _, k := range []AnnKind{AnnUnresolvedJump, AnnUnresolvedCall, AnnFetchError} {
		if k.String() == "" {
			t.Fatal("empty annotation kind")
		}
	}
}
