// Package hoare defines the Hoare Graph of Definition 3.2: a transition
// system ⟨Σ, σI, →Σ⟩ whose vertices are symbolic states (predicate ×
// memory model) and whose edges are labelled with disassembled
// instructions. Every edge is one-step-inductive — a Hoare triple — which
// is what the independent checker of package triple re-verifies.
package hoare

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/sem"
	"repro/internal/x86"
)

// VertexID identifies a vertex. Vertices are keyed by instruction address
// plus a code-pointer signature (the compatibility extension of Section 4:
// states holding different code-pointer immediates are not joined).
type VertexID string

// The synthetic terminal vertices.
const (
	ExitID VertexID = "exit" // function returned to its symbolic return address
	HaltID VertexID = "halt" // execution terminated (hlt/ud2/exit-call)
)

// Vertex is one vertex: an invariant (symbolic state) at an address.
type Vertex struct {
	ID    VertexID
	Addr  uint64
	State *sem.State
	// Joins counts how many times the invariant was weakened by joining.
	Joins int
}

// Edge is one labelled transition. For terminal edges To is ExitID/HaltID.
type Edge struct {
	From VertexID
	To   VertexID
	Inst x86.Inst
	Kind sem.OutKind
	// Callee names the called function for call edges ("" otherwise).
	Callee string
}

// AnnKind classifies unsoundness annotations (Line 13 of Algorithm 1).
type AnnKind uint8

// The annotation kinds reported in Table 1.
const (
	AnnUnresolvedJump AnnKind = iota // column B
	AnnUnresolvedCall                // column C
	AnnFetchError
)

// String renders the annotation kind.
func (k AnnKind) String() string {
	switch k {
	case AnnUnresolvedJump:
		return "unresolved-jump"
	case AnnUnresolvedCall:
		return "unresolved-call"
	default:
		return "fetch-error"
	}
}

// Annotation marks an instruction whose successors could not be bounded.
type Annotation struct {
	Addr uint64
	Kind AnnKind
	Text string
}

// Graph is the extracted Hoare graph of one function (or binary entry).
type Graph struct {
	FuncAddr uint64
	FuncName string
	// RetSym is the symbolic return address a_r pushed at entry.
	RetSym expr.Var
	// EntryID is σI's vertex.
	EntryID VertexID

	Vertices map[VertexID]*Vertex
	Edges    []Edge

	Annotations []Annotation
	// Obligations are the generated proof obligations over external
	// functions (Section 5.3).
	Obligations []string
	// Assumptions are the implicit separation assumptions (Section 5.2).
	Assumptions []string

	// Instrs is the recovered disassembly: every instruction lifted.
	Instrs map[uint64]x86.Inst
	// Resolved counts indirect control transfers whose target sets were
	// bounded (column A of Table 1), keyed by instruction address.
	Resolved map[uint64]bool

	edgeSet map[string]bool
}

// NewGraph returns an empty graph for a function at addr.
func NewGraph(addr uint64, name string, retSym expr.Var) *Graph {
	return &Graph{
		FuncAddr: addr,
		FuncName: name,
		RetSym:   retSym,
		Vertices: map[VertexID]*Vertex{},
		Instrs:   map[uint64]x86.Inst{},
		Resolved: map[uint64]bool{},
		edgeSet:  map[string]bool{},
	}
}

// AddEdge inserts an edge if not already present.
func (g *Graph) AddEdge(e Edge) {
	key := fmt.Sprintf("%s→%s@%x", e.From, e.To, e.Inst.Addr)
	if g.edgeSet[key] {
		return
	}
	g.edgeSet[key] = true
	g.Edges = append(g.Edges, e)
}

// Annotate records an unsoundness annotation.
func (g *Graph) Annotate(addr uint64, kind AnnKind, text string) {
	for _, a := range g.Annotations {
		if a.Addr == addr && a.Kind == kind {
			return
		}
	}
	g.Annotations = append(g.Annotations, Annotation{Addr: addr, Kind: kind, Text: text})
}

// Stats summarises a graph in the shape of Table 1's columns, plus the
// count of "weird" vertices — instruction addresses inside the interior of
// other lifted instructions (overlapping instructions, Section 2).
type Stats struct {
	Instructions   int
	States         int
	ResolvedInd    int // A
	UnresolvedJump int // B
	UnresolvedCall int // C
	Edges          int
	Obligations    int
	Assumptions    int
	WeirdVertices  int
	// Joins counts invariant weakenings: how many times some vertex's
	// state was joined with an incoming state during exploration.
	Joins int
}

// Stats computes the summary.
func (g *Graph) Stats() Stats {
	s := Stats{
		Instructions: len(g.Instrs),
		States:       len(g.Vertices),
		Edges:        len(g.Edges),
		Obligations:  len(g.Obligations),
		Assumptions:  len(g.Assumptions),
	}
	for _, v := range g.Vertices {
		s.Joins += v.Joins
	}
	for _, ok := range g.Resolved {
		if ok {
			s.ResolvedInd++
		}
	}
	for _, a := range g.Annotations {
		switch a.Kind {
		case AnnUnresolvedJump:
			s.UnresolvedJump++
		case AnnUnresolvedCall:
			s.UnresolvedCall++
		}
	}
	for _, addr := range g.WeirdAddresses() {
		s.WeirdVertices += len(g.VerticesAt(addr))
	}
	return s
}

// WeirdAddresses returns the lifted instruction addresses that lie
// strictly inside another lifted instruction — overlapping instructions,
// the hallmark of "weird" control flow (Section 2).
func (g *Graph) WeirdAddresses() []uint64 {
	var out []uint64
	for addr := range g.Instrs {
		for a, inst := range g.Instrs {
			if addr > a && addr < a+uint64(inst.Len) {
				out = append(out, addr)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Add accumulates another stats record (per-directory totals of Table 1).
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.States += o.States
	s.ResolvedInd += o.ResolvedInd
	s.UnresolvedJump += o.UnresolvedJump
	s.UnresolvedCall += o.UnresolvedCall
	s.Edges += o.Edges
	s.Obligations += o.Obligations
	s.Assumptions += o.Assumptions
	s.WeirdVertices += o.WeirdVertices
	s.Joins += o.Joins
}

// SortedVertices returns the vertices ordered by address then ID.
func (g *Graph) SortedVertices() []*Vertex {
	out := make([]*Vertex, 0, len(g.Vertices))
	for _, v := range g.Vertices {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SortedEdges returns edges ordered by source address then target.
func (g *Graph) SortedEdges() []Edge {
	out := append([]Edge(nil), g.Edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Inst.Addr != out[j].Inst.Addr {
			return out[i].Inst.Addr < out[j].Inst.Addr
		}
		return out[i].To < out[j].To
	})
	return out
}

// Successors returns the target vertex IDs of edges leaving from.
func (g *Graph) Successors(from VertexID) []VertexID {
	var out []VertexID
	for _, e := range g.Edges {
		if e.From == from {
			out = append(out, e.To)
		}
	}
	return out
}

// HasEdge reports whether an edge from→to exists.
func (g *Graph) HasEdge(from, to VertexID) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to {
			return true
		}
	}
	return false
}

// VerticesAt returns the vertices whose address is addr (several when the
// code-pointer compatibility extension kept states apart).
func (g *Graph) VerticesAt(addr uint64) []*Vertex {
	var out []*Vertex
	for _, v := range g.Vertices {
		if v.Addr == addr && v.ID != ExitID && v.ID != HaltID {
			out = append(out, v)
		}
	}
	return out
}

// Dump renders the graph as text: vertices with their invariants, then
// edges. The format is stable, suitable for golden tests and export.
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hoare graph of %s @ %#x (retsym %s)\n", g.FuncName, g.FuncAddr, g.RetSym)
	for _, v := range g.SortedVertices() {
		fmt.Fprintf(&b, "vertex %s @ %#x\n", v.ID, v.Addr)
		if v.State != nil {
			for _, c := range v.State.Pred.Clauses() {
				fmt.Fprintf(&b, "  inv %s\n", c)
			}
			fmt.Fprintf(&b, "  mem %s\n", v.State.Mem)
		}
	}
	for _, e := range g.SortedEdges() {
		label := e.Inst.String()
		if e.Callee != "" {
			label += " ; " + e.Callee
		}
		fmt.Fprintf(&b, "edge %s -> %s : %s\n", e.From, e.To, label)
	}
	for _, a := range g.Annotations {
		fmt.Fprintf(&b, "annotation @%#x %s: %s\n", a.Addr, a.Kind, a.Text)
	}
	for _, o := range g.Obligations {
		fmt.Fprintf(&b, "obligation %s\n", o)
	}
	for _, a := range g.Assumptions {
		fmt.Fprintf(&b, "assumption %s\n", a)
	}
	return b.String()
}
