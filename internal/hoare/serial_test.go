package hoare

import (
	"strings"
	"testing"

	"repro/internal/elf64"
	"repro/internal/expr"
	"repro/internal/image"
	"repro/internal/pred"
	"repro/internal/x86"
)

func TestExprParseRoundTrip(t *testing.T) {
	keys := []string{
		"0x0",
		"0xdeadbeef",
		"rdi0",
		"S_401000",
		"add(rdi0,0x8)",
		"add(mul(0x8,j401064_rcx),rsp0,0xffffffffffffffc0)",
		"*[rsp0,8]",
		"*[add(rsp0,0xfffffffffffffff8),8]",
		"and(rax0,0xffffffff)",
		"sext32(and(rax0,0xffffffff))",
		"not(v401000_0)",
		"udiv(rax0,0x7)",
	}
	for _, k := range keys {
		e, err := expr.Parse(k)
		if err != nil {
			t.Errorf("parse %q: %v", k, err)
			continue
		}
		if e.Key() != k {
			t.Errorf("round trip %q → %q", k, e.Key())
		}
	}
}

func TestExprParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "(", "0x", "add(", "add(a,", "*[a]", "*[a,b]", "frob(a)", "a b",
	} {
		if _, err := expr.Parse(bad); err == nil {
			t.Errorf("parse %q must fail", bad)
		}
	}
}

func TestMarshalContainsClauses(t *testing.T) {
	g := sampleGraph()
	data := string(Marshal(g))
	for _, want := range []string{
		"hg 0x401000 f S_401000",
		"entry 401000",
		"vertex 401000 0x401000",
		" reg rsp rsp0",
		" mem rsp0 8 S_401000",
		" model (rsp0#8 ())",
		"edge 401000 401005 0 0x401000 -",
		"edge 401005 exit 3 0x401005 -",
	} {
		if !strings.Contains(data, want) {
			t.Errorf("marshal missing %q:\n%s", want, data)
		}
	}
}

// buildTestImage assembles a two-instruction image for Load tests.
func buildTestImage(t *testing.T) *image.Image {
	t.Helper()
	a := x86.NewAsm(0x401000)
	a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 4))
	a.I(x86.RET)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	b := elf64.NewExec(0x401000)
	b.AddSection(".text", elf64.SHFExecinstr, 0x401000, code)
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	im, err := image.Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestMarshalLoadRoundTrip(t *testing.T) {
	im := buildTestImage(t)
	g := sampleGraph()
	// Decorate with every clause kind.
	v := g.Vertices["401000"]
	v.State.Pred.SetFlag(x86.CF, expr.Word(1))
	v.State.Pred.SetCmp(&pred.Cmp{Kind: pred.CmpSub,
		Lhs: expr.V("rdi0"), Rhs: expr.Word(7), Size: 8})
	v.State.Pred.SetFlag(x86.CF, expr.Word(1)) // re-set after SetCmp cleared it
	v.State.Pred.AddRange(expr.V("idx"), pred.Range{Lo: 1, Hi: 9})
	g.Annotate(0x401005, AnnUnresolvedCall, "some callback")
	g.Obligations = append(g.Obligations, "@1 : f(rdi := rsp0 - 0x8) MUST PRESERVE [x]")
	g.Assumptions = append(g.Assumptions, "@2 : [a, 8] ASSUMED SEPARATE FROM [b, 8]")

	data := Marshal(g)
	loaded, err := Load(im, data)
	if err != nil {
		t.Fatal(err)
	}
	lv := loaded.Vertices["401000"]
	if lv == nil || lv.State == nil {
		t.Fatal("vertex lost")
	}
	if lv.State.Pred.Key() != v.State.Pred.Key() {
		t.Fatalf("predicate mismatch:\n%s\nvs\n%s", lv.State.Pred.Key(), v.State.Pred.Key())
	}
	if lv.State.Mem.Key() != v.State.Mem.Key() {
		t.Fatalf("model mismatch: %s vs %s", lv.State.Mem, v.State.Mem)
	}
	if len(loaded.Obligations) != 1 || len(loaded.Assumptions) != 1 || len(loaded.Annotations) != 1 {
		t.Fatalf("metadata: %d/%d/%d", len(loaded.Obligations), len(loaded.Assumptions), len(loaded.Annotations))
	}
	if string(Marshal(loaded)) != string(data) {
		t.Fatal("marshal not idempotent")
	}
}

func TestLoadErrors(t *testing.T) {
	im := buildTestImage(t)
	cases := []string{
		"",
		"bogus header",
		"hg 0x1 f S\nvertex",
		"hg 0x1 f S\n reg rax rdi0", // clause before vertex
		"hg 0x1 f S\nvertex v 0x401000\n reg zz rdi0",
		"hg 0x1 f S\nvertex v 0x401000\n flag qq 0x1",
		"hg 0x1 f S\nvertex v 0x401000\n model (broken",
		"hg 0x1 f S\nedge a b 0 0xdead -", // unmapped instruction
		"hg 0x1 f S\nfrobnicate",
	}
	for _, c := range cases {
		if _, err := Load(im, []byte(c)); err == nil {
			t.Errorf("Load(%q) must fail", c)
		}
	}
}

func TestDOTFromSample(t *testing.T) {
	g := sampleGraph()
	dot := g.ToDOT()
	for _, want := range []string{"digraph", "mov rax, 0x1", "exit", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q", want)
		}
	}
}
