package hoare

import (
	"fmt"
	"strings"
)

// ToDOT renders the graph in Graphviz syntax: one node per symbolic state
// (weird vertices — targets of indirect jumps into instruction interiors —
// are highlighted), edges labelled with their instructions.
func (g *Graph) ToDOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n", g.FuncName)

	weird := map[uint64]bool{}
	for _, a := range g.WeirdAddresses() {
		weird[a] = true
	}
	isWeird := func(addr uint64) bool { return weird[addr] }

	for _, v := range g.SortedVertices() {
		label := string(v.ID)
		attrs := ""
		switch v.ID {
		case ExitID:
			label = "exit\\n(ret to " + string(g.RetSym) + ")"
			attrs = ", shape=doublecircle"
		case HaltID:
			label = "halt"
			attrs = ", shape=doublecircle"
		default:
			if inst, ok := g.Instrs[v.Addr]; ok {
				label = fmt.Sprintf("%#x\\n%s", v.Addr, inst.String())
			}
			if isWeird(v.Addr) {
				attrs = ", style=filled, fillcolor=salmon, color=red"
				label += "\\nWEIRD"
			}
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\"%s];\n", v.ID, label, attrs)
	}
	for _, e := range g.SortedEdges() {
		style := ""
		if to, ok := g.Vertices[e.To]; ok && to != nil && isWeird(to.Addr) && e.To != ExitID && e.To != HaltID {
			style = ", color=red, penwidth=2"
		}
		label := e.Kind.String()
		if e.Callee != "" {
			label += " " + e.Callee
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", e.From, e.To, label, style)
	}
	b.WriteString("}\n")
	return b.String()
}
