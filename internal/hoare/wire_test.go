package hoare

import (
	"bytes"
	"testing"

	"repro/internal/expr"
	"repro/internal/pred"
	"repro/internal/sem"
	"repro/internal/wire"
	"repro/internal/x86"
)

// decoratedGraph is sampleGraph carrying every clause kind the record
// serializes: registers, flags, a comparison descriptor, memory entries,
// interval clauses, model regions, annotations, obligations, assumptions.
func decoratedGraph() *Graph {
	g := sampleGraph()
	v := g.Vertices["401000"]
	v.State.Pred.SetCmp(&pred.Cmp{Kind: pred.CmpSub,
		Lhs: expr.V("rdi0"), Rhs: expr.Word(7), Size: 8})
	v.State.Pred.SetFlag(x86.CF, expr.Word(1)) // after SetCmp, which clears flags
	v.State.Pred.AddRange(expr.V("idx"), pred.Range{Lo: 1, Hi: 9})
	g.Annotate(0x401005, AnnUnresolvedCall, "some callback")
	g.Obligations = append(g.Obligations, "@1 : f(rdi := rsp0 - 0x8) MUST PRESERVE [x]")
	g.Assumptions = append(g.Assumptions, "@2 : [a, 8] ASSUMED SEPARATE FROM [b, 8]")
	return g
}

// encodeGraph runs the collect-then-append protocol of one graph,
// returning the table bytes and record bytes separately.
func encodeGraph(g *Graph) (table, record []byte) {
	t := expr.NewTable()
	CollectWireExprs(t, g)
	return expr.AppendTable(nil, t), AppendWire(nil, t, g)
}

func TestWireRoundTrip(t *testing.T) {
	im := buildTestImage(t)
	g := decoratedGraph()
	table, record := encodeGraph(g)

	d := wire.NewDecoder(append(append([]byte(nil), table...), record...))
	nodes, err := expr.DecodeTable(d)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeWire(d, nodes, im)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rest()) != 0 {
		t.Fatalf("trailing bytes: %d", len(d.Rest()))
	}

	if loaded.FuncAddr != g.FuncAddr || loaded.FuncName != g.FuncName ||
		loaded.RetSym != g.RetSym || loaded.EntryID != g.EntryID {
		t.Fatalf("header mismatch: %+v", loaded)
	}
	if len(loaded.Vertices) != len(g.Vertices) || len(loaded.Edges) != len(g.Edges) {
		t.Fatalf("shape: %d/%d vertices, %d/%d edges",
			len(loaded.Vertices), len(g.Vertices), len(loaded.Edges), len(g.Edges))
	}
	for id, v := range g.Vertices {
		lv := loaded.Vertices[id]
		if lv == nil {
			t.Fatalf("vertex %s lost", id)
		}
		if (lv.State == nil) != (v.State == nil) {
			t.Fatalf("vertex %s state presence", id)
		}
		if v.State == nil {
			continue
		}
		if lv.State.Pred.Key() != v.State.Pred.Key() {
			t.Fatalf("vertex %s predicate:\n%s\nvs\n%s", id, lv.State.Pred.Key(), v.State.Pred.Key())
		}
		if lv.State.Mem.Key() != v.State.Mem.Key() {
			t.Fatalf("vertex %s model: %s vs %s", id, lv.State.Mem, v.State.Mem)
		}
		// Interned pointer identity, not just textual equality: the
		// decoded register values are the same canonical nodes.
		for _, r := range x86.GPRs {
			if e := v.State.Pred.Reg(r); e != nil && lv.State.Pred.Reg(r) != e {
				t.Fatalf("vertex %s register %s not pointer-identical", id, r)
			}
		}
	}
	if len(loaded.Annotations) != 1 || len(loaded.Obligations) != 1 || len(loaded.Assumptions) != 1 {
		t.Fatalf("metadata: %d/%d/%d",
			len(loaded.Annotations), len(loaded.Obligations), len(loaded.Assumptions))
	}
	// Instructions were re-fetched from the image, not deserialized.
	if _, ok := loaded.Instrs[0x401000]; !ok {
		t.Fatal("edge instruction not re-fetched")
	}

	// Serialize → deserialize → re-serialize is the byte identity, for
	// the table and the record both.
	table2, record2 := encodeGraph(loaded)
	if !bytes.Equal(table, table2) {
		t.Fatal("expression table re-serialization differs")
	}
	if !bytes.Equal(record, record2) {
		t.Fatal("graph record re-serialization differs")
	}
}

func TestDecodeWireRejectsCorruption(t *testing.T) {
	im := buildTestImage(t)
	g := decoratedGraph()
	table, record := encodeGraph(g)
	full := append(append([]byte(nil), table...), record...)

	decode := func(data []byte) error {
		d := wire.NewDecoder(data)
		nodes, err := expr.DecodeTable(d)
		if err != nil {
			return err
		}
		_, err = DecodeWire(d, nodes, im)
		return err
	}
	if err := decode(full); err != nil {
		t.Fatalf("pristine input: %v", err)
	}
	// Truncating anywhere inside the record must error, never panic.
	for n := len(table); n < len(full); n++ {
		if err := decode(full[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDecodeWireRejectsUnmappedInstruction(t *testing.T) {
	im := buildTestImage(t)
	g := sampleGraph()
	// Point an edge at an address outside the image's text section.
	bogus := x86.Inst{Addr: 0xdead, Mn: x86.RET}
	g.Instrs[0xdead] = bogus
	g.AddEdge(Edge{From: "401005", To: HaltID, Inst: bogus, Kind: sem.KHalt})
	g.Vertices[HaltID] = &Vertex{ID: HaltID}

	table, record := encodeGraph(g)
	d := wire.NewDecoder(append(table, record...))
	nodes, err := expr.DecodeTable(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWire(d, nodes, im); err == nil {
		t.Fatal("edge at unmapped address accepted")
	}
}
