package hoare_test

// Fuzz target for the .hg serial format, seeded with the marshals of
// every lifted corpus scenario. For any input that parses, the format
// must round-trip byte-identically (Marshal ∘ Load is idempotent) and
// the hglint analyzer must be a deterministic, panic-free function of
// the loaded graph. Seed inputs additionally must lint clean: a graph
// the lifter produced and the serializer round-tripped carries no
// well-formedness errors.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hglint"
	"repro/internal/hoare"
)

func FuzzSerialRoundTripLintClean(f *testing.F) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		f.Fatal(err)
	}
	seeds := map[string]bool{}
	for _, s := range scenarios {
		l := core.New(s.Image, core.DefaultConfig())
		fr := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
		if fr.Status != core.StatusLifted || fr.Graph == nil {
			continue
		}
		data := hoare.Marshal(fr.Graph)
		seeds[string(data)] = true
		f.Add(data)
	}
	if len(seeds) == 0 {
		f.Fatal("no scenario lifted — no seeds")
	}
	// All graphs are loaded against one fixed image: the format carries
	// addresses, and instruction bytes are re-fetched from the binary.
	ret2win, err := corpus.Ret2Win()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := hoare.Load(ret2win.Image, data)
		if err != nil {
			return // rejected inputs are fine; crashes are not
		}
		out := hoare.Marshal(g)
		g2, err := hoare.Load(ret2win.Image, out)
		if err != nil {
			t.Fatalf("re-load of own marshal failed: %v\n%s", err, out)
		}
		out2 := hoare.Marshal(g2)
		if !bytes.Equal(out, out2) {
			t.Fatalf("marshal not idempotent:\n--- first\n%s\n--- second\n%s", out, out2)
		}
		rep, rep2 := hglint.Lint(g), hglint.Lint(g2)
		if !bytes.Equal(rep.JSON(), rep2.JSON()) {
			t.Fatalf("lint differs across round-trip:\n--- first\n%s\n--- second\n%s", rep.JSON(), rep2.JSON())
		}
		if seeds[string(data)] && rep.HasErrors() {
			t.Fatalf("lifted seed graph must lint clean:\n%s", rep)
		}
	})
}
