// This file implements the binary Hoare-graph record used by the
// distributed Step-2 shard format (internal/dist): the same graph content
// as the .hg text form of serial.go, but with every expression replaced by
// an index into a shared interned-expression table (expr.Table), so shared
// subterms are emitted once per shard rather than re-rendered at every
// occurrence. Like the text form, instructions are stored by address only
// and re-fetched from the binary image on decode, so a serialised graph
// cannot silently drift from its binary.
//
// Record format (integers are uvarints; EXPR is a table index; clause
// order is canonical — registers in GPR order, then flags, cmp, memory,
// ranges, model; vertices and edges sorted — so Append∘Decode∘Append is
// the byte identity):
//
//	graph  = funcaddr funcname retsym entry
//	         vertex-count vertex* edge-count edge*
//	         ann-count annotation* obl-count TEXT* asm-count TEXT*
//	vertex = id addr has-state state?
//	state  = reg-count   (gpr-index EXPR)*
//	         flag-count  (flag EXPR)*
//	         has-cmp     (cmp-kind size EXPR EXPR)?
//	         mem-count   (EXPR size EXPR)*
//	         range-count (EXPR lo64 hi64)*       lo/hi raw little-endian
//	         forest
//	forest = tree-count tree*
//	tree   = region-count (EXPR size)* kid-count tree*
//	edge   = from to out-kind addr callee
//
// The encoder's callers (dist) first collect every expression of the
// shard's graphs into one expr.Table via CollectWireExprs, append the
// table once, then append each graph record against it.

package hoare

import (
	"repro/internal/expr"
	"repro/internal/image"
	"repro/internal/memmodel"
	"repro/internal/pred"
	"repro/internal/sem"
	"repro/internal/solver"
	"repro/internal/wire"
	"repro/internal/x86"
)

// CollectWireExprs adds every expression reachable from the graph's vertex
// invariants (equality, flag, comparison, memory and interval clauses, and
// memory-model regions) to the table, in the canonical clause order, so
// the table layout is deterministic in the graph.
func CollectWireExprs(t *expr.Table, g *Graph) {
	for _, v := range g.SortedVertices() {
		if v.State == nil {
			continue
		}
		p := v.State.Pred
		for _, r := range x86.GPRs {
			if e := p.Reg(r); e != nil {
				t.Add(e)
			}
		}
		for f := x86.Flag(0); f < x86.NumFlags; f++ {
			if e := p.Flag(f); e != nil {
				t.Add(e)
			}
		}
		if c := p.LastCmp(); c != nil {
			t.Add(c.Lhs)
			t.Add(c.Rhs)
		}
		p.MemEntries(func(e pred.MemEntry) {
			t.Add(e.Addr)
			t.Add(e.Val)
		})
		p.Ranges(func(e *expr.Expr, r pred.Range) {
			t.Add(e)
		})
		collectForest(t, v.State.Mem)
	}
}

func collectForest(t *expr.Table, f memmodel.Forest) {
	for _, tree := range f {
		for _, r := range tree.Regions {
			t.Add(r.Addr)
		}
		collectForest(t, tree.Kids)
	}
}

// AppendWire appends the graph's binary record to buf. Every expression of
// the graph must already be in the table (see CollectWireExprs).
func AppendWire(buf []byte, t *expr.Table, g *Graph) []byte {
	idx := func(e *expr.Expr) uint64 { return uint64(t.Index(e)) }
	buf = wire.AppendUvarint(buf, g.FuncAddr)
	buf = wire.AppendString(buf, g.FuncName)
	buf = wire.AppendString(buf, string(g.RetSym))
	buf = wire.AppendString(buf, string(g.EntryID))

	vertices := g.SortedVertices()
	buf = wire.AppendUvarint(buf, uint64(len(vertices)))
	for _, v := range vertices {
		buf = wire.AppendString(buf, string(v.ID))
		buf = wire.AppendUvarint(buf, v.Addr)
		if v.State == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		p := v.State.Pred

		var regs []uint64
		for ri, r := range x86.GPRs {
			if e := p.Reg(r); e != nil {
				regs = append(regs, uint64(ri), idx(e))
			}
		}
		buf = wire.AppendUvarint(buf, uint64(len(regs)/2))
		for _, u := range regs {
			buf = wire.AppendUvarint(buf, u)
		}

		var flags []uint64
		for f := x86.Flag(0); f < x86.NumFlags; f++ {
			if e := p.Flag(f); e != nil {
				flags = append(flags, uint64(f), idx(e))
			}
		}
		buf = wire.AppendUvarint(buf, uint64(len(flags)/2))
		for _, u := range flags {
			buf = wire.AppendUvarint(buf, u)
		}

		if c := p.LastCmp(); c != nil {
			buf = append(buf, 1)
			buf = wire.AppendUvarint(buf, uint64(c.Kind))
			buf = wire.AppendUvarint(buf, uint64(c.Size))
			buf = wire.AppendUvarint(buf, idx(c.Lhs))
			buf = wire.AppendUvarint(buf, idx(c.Rhs))
		} else {
			buf = append(buf, 0)
		}

		var mems []pred.MemEntry
		p.MemEntries(func(e pred.MemEntry) { mems = append(mems, e) })
		buf = wire.AppendUvarint(buf, uint64(len(mems)))
		for _, e := range mems {
			buf = wire.AppendUvarint(buf, idx(e.Addr))
			buf = wire.AppendUvarint(buf, uint64(e.Size))
			buf = wire.AppendUvarint(buf, idx(e.Val))
		}

		type rangeClause struct {
			e *expr.Expr
			r pred.Range
		}
		var ranges []rangeClause
		p.Ranges(func(e *expr.Expr, r pred.Range) { ranges = append(ranges, rangeClause{e, r}) })
		buf = wire.AppendUvarint(buf, uint64(len(ranges)))
		for _, rc := range ranges {
			buf = wire.AppendUvarint(buf, idx(rc.e))
			buf = wire.AppendUint64(buf, rc.r.Lo)
			buf = wire.AppendUint64(buf, rc.r.Hi)
		}

		buf = appendForest(buf, t, v.State.Mem)
	}

	edges := g.SortedEdges()
	buf = wire.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = wire.AppendString(buf, string(e.From))
		buf = wire.AppendString(buf, string(e.To))
		buf = wire.AppendUvarint(buf, uint64(e.Kind))
		buf = wire.AppendUvarint(buf, e.Inst.Addr)
		buf = wire.AppendString(buf, e.Callee)
	}

	buf = wire.AppendUvarint(buf, uint64(len(g.Annotations)))
	for _, a := range g.Annotations {
		buf = wire.AppendUvarint(buf, a.Addr)
		buf = wire.AppendUvarint(buf, uint64(a.Kind))
		buf = wire.AppendString(buf, a.Text)
	}
	buf = wire.AppendUvarint(buf, uint64(len(g.Obligations)))
	for _, o := range g.Obligations {
		buf = wire.AppendString(buf, o)
	}
	buf = wire.AppendUvarint(buf, uint64(len(g.Assumptions)))
	for _, a := range g.Assumptions {
		buf = wire.AppendString(buf, a)
	}
	return buf
}

func appendForest(buf []byte, t *expr.Table, f memmodel.Forest) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(f)))
	for _, tree := range f {
		buf = wire.AppendUvarint(buf, uint64(len(tree.Regions)))
		for _, r := range tree.Regions {
			buf = wire.AppendUvarint(buf, uint64(t.Index(r.Addr)))
			buf = wire.AppendUvarint(buf, r.Size)
		}
		buf = appendForest(buf, t, tree.Kids)
	}
	return buf
}

// DecodeWire decodes one binary graph record from the cursor against the
// decoded expression table, re-fetching every edge's instruction from the
// image (exactly like the text loader, the record stores addresses only).
func DecodeWire(d *wire.Decoder, nodes []*expr.Expr, img *image.Image) (*Graph, error) {
	node := func(what string) *expr.Expr {
		i := d.Uvarint(what)
		if d.Err() != nil {
			return nil
		}
		if i >= uint64(len(nodes)) {
			d.Failf("%s expression index %d out of range (table has %d)", what, i, len(nodes))
			return nil
		}
		return nodes[i]
	}

	funcAddr := d.Uvarint("function address")
	funcName := d.String("function name")
	retSym := d.String("return symbol")
	entry := d.String("entry id")
	if d.Err() != nil {
		return nil, d.Err()
	}
	g := NewGraph(funcAddr, funcName, expr.Var(retSym))
	g.EntryID = VertexID(entry)

	nVertices := d.Len("vertex")
	for i := 0; i < nVertices && d.Err() == nil; i++ {
		id := VertexID(d.String("vertex id"))
		addr := d.Uvarint("vertex address")
		v := &Vertex{ID: id, Addr: addr}
		if d.Byte("vertex state flag") == 1 {
			v.State = sem.NewState()
			decodeState(d, v.State, node)
		}
		if d.Err() == nil {
			g.Vertices[id] = v
		}
	}

	nEdges := d.Len("edge")
	for i := 0; i < nEdges && d.Err() == nil; i++ {
		from := VertexID(d.String("edge from"))
		to := VertexID(d.String("edge to"))
		kind := d.Uvarint("edge kind")
		addr := d.Uvarint("edge address")
		callee := d.String("edge callee")
		if d.Err() != nil {
			break
		}
		inst, err := img.Fetch(addr)
		if err != nil {
			d.Failf("edge instruction: %v", err)
			break
		}
		g.Instrs[addr] = inst
		g.AddEdge(Edge{From: from, To: to, Inst: inst, Kind: sem.OutKind(kind), Callee: callee})
	}

	nAnns := d.Len("annotation")
	for i := 0; i < nAnns && d.Err() == nil; i++ {
		addr := d.Uvarint("annotation address")
		kind := d.Uvarint("annotation kind")
		text := d.String("annotation text")
		if d.Err() == nil {
			g.Annotate(addr, AnnKind(kind), text)
		}
	}
	nObl := d.Len("obligation")
	for i := 0; i < nObl && d.Err() == nil; i++ {
		g.Obligations = append(g.Obligations, d.String("obligation"))
	}
	nAsm := d.Len("assumption")
	for i := 0; i < nAsm && d.Err() == nil; i++ {
		g.Assumptions = append(g.Assumptions, d.String("assumption"))
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if g.EntryID == "" {
		d.Failf("graph has no entry vertex")
		return nil, d.Err()
	}
	return g, nil
}

// decodeState reads one vertex state's clauses.
func decodeState(d *wire.Decoder, st *sem.State, node func(string) *expr.Expr) {
	nRegs := d.Len("register clause")
	for i := 0; i < nRegs && d.Err() == nil; i++ {
		ri := d.Uvarint("register index")
		e := node("register value")
		if d.Err() != nil {
			return
		}
		if ri >= uint64(len(x86.GPRs)) {
			d.Failf("register index %d out of range", ri)
			return
		}
		st.Pred.SetReg(x86.GPRs[ri], e)
	}
	nFlags := d.Len("flag clause")
	for i := 0; i < nFlags && d.Err() == nil; i++ {
		f := d.Uvarint("flag")
		e := node("flag value")
		if d.Err() != nil {
			return
		}
		if f >= uint64(x86.NumFlags) {
			d.Failf("flag %d out of range", f)
			return
		}
		st.Pred.SetFlag(x86.Flag(f), e)
	}
	if d.Byte("cmp flag") == 1 {
		kind := d.Uvarint("cmp kind")
		size := d.Uvarint("cmp size")
		lhs := node("cmp lhs")
		rhs := node("cmp rhs")
		if d.Err() != nil {
			return
		}
		c := &pred.Cmp{Kind: pred.CmpKind(kind), Lhs: lhs, Rhs: rhs, Size: int(size)}
		// SetCmp clears the flag clauses; the record stores flags before
		// cmp (canonical clause order), so snapshot and restore them,
		// exactly like the text loader.
		flags := snapshotFlags(st)
		st.Pred.SetCmp(c)
		restoreFlags(st, flags)
	}
	nMems := d.Len("memory clause")
	for i := 0; i < nMems && d.Err() == nil; i++ {
		addr := node("memory address")
		size := d.Uvarint("memory size")
		val := node("memory value")
		if d.Err() != nil {
			return
		}
		st.Pred.WriteMem(addr, int(size), val)
	}
	nRanges := d.Len("range clause")
	for i := 0; i < nRanges && d.Err() == nil; i++ {
		e := node("range expression")
		lo := d.Uint64("range lo")
		hi := d.Uint64("range hi")
		if d.Err() != nil {
			return
		}
		st.Pred.AddRange(e, pred.Range{Lo: lo, Hi: hi})
	}
	st.Mem = decodeForest(d, node)
}

func decodeForest(d *wire.Decoder, node func(string) *expr.Expr) memmodel.Forest {
	n := d.Len("memory-model tree")
	var out memmodel.Forest
	for i := 0; i < n && d.Err() == nil; i++ {
		t := &memmodel.Tree{}
		nRegions := d.Len("memory-model region")
		for j := 0; j < nRegions && d.Err() == nil; j++ {
			addr := node("region address")
			size := d.Uvarint("region size")
			if d.Err() != nil {
				return nil
			}
			t.Regions = append(t.Regions, solver.Region{Addr: addr, Size: size})
		}
		t.Kids = decodeForest(d, node)
		if d.Err() == nil {
			out = append(out, t)
		}
	}
	return out
}
