// This file implements the .hg interchange format: Marshal writes a Hoare
// graph as line-oriented text, Load reads it back against the binary image
// it was extracted from (instructions are stored by address only and
// re-fetched, so a .hg file cannot silently drift from its binary).
//
// Grammar (one record per line; indented lines are clauses of the most
// recent vertex; blank lines are ignored; EXPR is the canonical expression
// syntax of expr.Parse, e.g. "(add rsp0 0xfffffffffffffff8)"):
//
//	file       = header entry vertex* edge* annotation* obligation* assumption*
//	header     = "hg" ADDR NAME RETSYM
//	entry      = "entry" VERTEXID
//	vertex     = "vertex" VERTEXID ADDR clause*
//	clause     = " reg"   REGNAME EXPR
//	           | " flag"  FLAGNAME EXPR
//	           | " cmp"   ("sub"|"and") SIZE EXPR EXPR
//	           | " mem"   EXPR SIZE EXPR
//	           | " range" EXPR LO HI
//	           | " model" forest
//	forest     = tree*
//	tree       = "(" region+ "(" forest ")" ")"
//	region     = EXPR "#" SIZE
//	edge       = "edge" FROM TO KIND ADDR (CALLEE | "-")
//	annotation = "annotation" ADDR KIND TEXT
//	obligation = "obligation" TEXT
//	assumption = "assumption" TEXT
//
// Worked example — a two-instruction function "push rbp; ret" at 0x401000
// (the entry vertex binds rsp and the saved rbp; the ret vertex has popped
// the stack back and still satisfies return address integrity):
//
//	hg 0x401000 f retsym
//	entry 401000
//	vertex 401000 0x401000
//	 reg rbp rbp0
//	 reg rsp rsp0
//	 range rsp0 0x10000 0x7fffffffffff
//	 model ((add rsp0 -8)#8 ())
//	vertex 401001 0x401001
//	 reg rbp rbp0
//	 reg rsp (add rsp0 -8)
//	 mem (add rsp0 -8) 8 rbp0
//	 model ((add rsp0 -8)#8 ())
//	vertex exit 0x0
//	edge 401000 401001 0 0x401000 -
//	edge 401001 exit 3 0x401001 -
//	assumption @401000 : [rsp0, 8] READABLE
//
// Vertex clause order is canonical (registers in GPR order, then flags,
// cmp, memory, ranges, model), so Marshal∘Load∘Marshal is the identity on
// the textual form.

package hoare

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/image"
	"repro/internal/memmodel"
	"repro/internal/pred"
	"repro/internal/sem"
	"repro/internal/solver"
	"repro/internal/x86"
)

// Marshal serialises the graph to the .hg text format: a line-oriented,
// machine-readable encoding of every vertex invariant (register, flag,
// comparison, memory and interval clauses in canonical expression syntax),
// the memory models, the labelled edges, annotations, obligations and
// assumptions. Instructions are stored by address and length only; Load
// re-fetches them from the binary, keeping the file self-checking against
// the image it is loaded with.
func Marshal(g *Graph) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "hg %#x %s %s\n", g.FuncAddr, g.FuncName, g.RetSym)
	fmt.Fprintf(&b, "entry %s\n", g.EntryID)
	for _, v := range g.SortedVertices() {
		fmt.Fprintf(&b, "vertex %s %#x\n", v.ID, v.Addr)
		if v.State == nil {
			continue
		}
		p := v.State.Pred
		for _, r := range x86.GPRs {
			if e := p.Reg(r); e != nil {
				fmt.Fprintf(&b, " reg %s %s\n", r, e.Key())
			}
		}
		for f := x86.Flag(0); f < x86.NumFlags; f++ {
			if e := p.Flag(f); e != nil {
				fmt.Fprintf(&b, " flag %s %s\n", f, e.Key())
			}
		}
		if c := p.LastCmp(); c != nil {
			kind := "sub"
			if c.Kind == pred.CmpAnd {
				kind = "and"
			}
			fmt.Fprintf(&b, " cmp %s %d %s %s\n", kind, c.Size, c.Lhs.Key(), c.Rhs.Key())
		}
		p.MemEntries(func(e pred.MemEntry) {
			fmt.Fprintf(&b, " mem %s %d %s\n", e.Addr.Key(), e.Size, e.Val.Key())
		})
		p.Ranges(func(e *expr.Expr, r pred.Range) {
			fmt.Fprintf(&b, " range %s %#x %#x\n", e.Key(), r.Lo, r.Hi)
		})
		fmt.Fprintf(&b, " model %s\n", marshalForest(v.State.Mem))
	}
	for _, e := range g.SortedEdges() {
		callee := e.Callee
		if callee == "" {
			callee = "-"
		}
		fmt.Fprintf(&b, "edge %s %s %d %#x %s\n", e.From, e.To, e.Kind, e.Inst.Addr, callee)
	}
	for _, a := range g.Annotations {
		fmt.Fprintf(&b, "annotation %#x %d %s\n", a.Addr, a.Kind, a.Text)
	}
	for _, o := range g.Obligations {
		fmt.Fprintf(&b, "obligation %s\n", o)
	}
	for _, a := range g.Assumptions {
		fmt.Fprintf(&b, "assumption %s\n", a)
	}
	return []byte(b.String())
}

// marshalForest encodes a memory model as nested parentheses:
// forest = tree*, tree = "(" region+ "(" forest ")" ")", region = key#size.
func marshalForest(f memmodel.Forest) string {
	var b strings.Builder
	for i, t := range f {
		if i > 0 {
			b.WriteByte(' ')
		}
		marshalTree(&b, t)
	}
	return b.String()
}

func marshalTree(b *strings.Builder, t *memmodel.Tree) {
	b.WriteByte('(')
	for i, r := range t.Regions {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "%s#%d", r.Addr.Key(), r.Size)
	}
	b.WriteString(" (")
	for i, kid := range t.Kids {
		if i > 0 {
			b.WriteByte(' ')
		}
		marshalTree(b, kid)
	}
	b.WriteString("))")
}

// Load parses a .hg file produced by Marshal, re-fetching every edge's
// instruction from the image.
func Load(img *image.Image, data []byte) (*Graph, error) {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *Graph
	var cur *Vertex
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		indent := strings.HasPrefix(line, " ")
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("hg: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if g == nil {
			if fields[0] != "hg" || len(fields) != 4 {
				return nil, fail("missing hg header")
			}
			addr, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return nil, fail("bad address: %v", err)
			}
			g = NewGraph(addr, fields[2], expr.Var(fields[3]))
			continue
		}
		if indent {
			if cur == nil || cur.State == nil {
				return nil, fail("clause outside a vertex")
			}
			if err := loadClause(cur.State, fields); err != nil {
				return nil, fail("%v", err)
			}
			continue
		}
		switch fields[0] {
		case "entry":
			if len(fields) < 2 {
				return nil, fail("short entry")
			}
			g.EntryID = VertexID(fields[1])
		case "vertex":
			if len(fields) < 3 {
				return nil, fail("short vertex")
			}
			addr, err := strconv.ParseUint(fields[2], 0, 64)
			if err != nil {
				return nil, fail("bad vertex address: %v", err)
			}
			id := VertexID(fields[1])
			cur = &Vertex{ID: id, Addr: addr}
			if id != ExitID && id != HaltID {
				cur.State = sem.NewState()
			}
			g.Vertices[id] = cur
		case "edge":
			if len(fields) < 6 {
				return nil, fail("short edge")
			}
			kind, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fail("bad edge kind: %v", err)
			}
			addr, err := strconv.ParseUint(fields[4], 0, 64)
			if err != nil {
				return nil, fail("bad edge address: %v", err)
			}
			inst, err := img.Fetch(addr)
			if err != nil {
				return nil, fail("edge instruction: %v", err)
			}
			g.Instrs[addr] = inst
			callee := fields[5]
			if callee == "-" {
				callee = ""
			}
			g.AddEdge(Edge{From: VertexID(fields[1]), To: VertexID(fields[2]),
				Inst: inst, Kind: sem.OutKind(kind), Callee: callee})
		case "annotation":
			if len(fields) < 3 {
				return nil, fail("short annotation")
			}
			addr, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return nil, fail("bad annotation address: %v", err)
			}
			kind, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fail("bad annotation kind: %v", err)
			}
			g.Annotate(addr, AnnKind(kind), strings.Join(fields[3:], " "))
		case "obligation":
			g.Obligations = append(g.Obligations, strings.Join(fields[1:], " "))
		case "assumption":
			g.Assumptions = append(g.Assumptions, strings.Join(fields[1:], " "))
		default:
			return nil, fail("unknown record %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("hg: empty input")
	}
	if g.EntryID == "" {
		return nil, fmt.Errorf("hg: no entry record")
	}
	return g, nil
}

// clauseArity gives the minimum field count per clause record.
var clauseArity = map[string]int{
	"reg": 3, "flag": 3, "cmp": 5, "mem": 4, "range": 4, "model": 1,
}

// loadClause parses one indented clause line into a vertex state.
func loadClause(st *sem.State, fields []string) error {
	if need, ok := clauseArity[fields[0]]; !ok || len(fields) < need {
		return fmt.Errorf("short or unknown clause %q", strings.Join(fields, " "))
	}
	switch fields[0] {
	case "reg":
		r, ok := regByName(fields[1])
		if !ok {
			return fmt.Errorf("unknown register %q", fields[1])
		}
		e, err := expr.Parse(fields[2])
		if err != nil {
			return err
		}
		st.Pred.SetReg(r, e)
	case "flag":
		f, ok := flagByName(fields[1])
		if !ok {
			return fmt.Errorf("unknown flag %q", fields[1])
		}
		e, err := expr.Parse(fields[2])
		if err != nil {
			return err
		}
		st.Pred.SetFlag(f, e)
	case "cmp":
		size, err := strconv.Atoi(fields[2])
		if err != nil {
			return err
		}
		lhs, err := expr.Parse(fields[3])
		if err != nil {
			return err
		}
		rhs, err := expr.Parse(fields[4])
		if err != nil {
			return err
		}
		kind := pred.CmpSub
		if fields[1] == "and" {
			kind = pred.CmpAnd
		}
		c := &pred.Cmp{Kind: kind, Lhs: lhs, Rhs: rhs, Size: size}
		// SetCmp clears flags; restore order by setting cmp before flags
		// would be wrong — instead install without clearing.
		flags := snapshotFlags(st)
		st.Pred.SetCmp(c)
		restoreFlags(st, flags)
	case "mem":
		addr, err := expr.Parse(fields[1])
		if err != nil {
			return err
		}
		size, err := strconv.Atoi(fields[2])
		if err != nil {
			return err
		}
		val, err := expr.Parse(fields[3])
		if err != nil {
			return err
		}
		st.Pred.WriteMem(addr, size, val)
	case "range":
		e, err := expr.Parse(fields[1])
		if err != nil {
			return err
		}
		lo, err := strconv.ParseUint(fields[2], 0, 64)
		if err != nil {
			return err
		}
		hi, err := strconv.ParseUint(fields[3], 0, 64)
		if err != nil {
			return err
		}
		st.Pred.AddRange(e, pred.Range{Lo: lo, Hi: hi})
	case "model":
		f, err := parseForest(strings.Join(fields[1:], " "))
		if err != nil {
			return err
		}
		st.Mem = f
	default:
		return fmt.Errorf("unknown clause %q", fields[0])
	}
	return nil
}

func snapshotFlags(st *sem.State) map[x86.Flag]*expr.Expr {
	out := map[x86.Flag]*expr.Expr{}
	for f := x86.Flag(0); f < x86.NumFlags; f++ {
		if e := st.Pred.Flag(f); e != nil {
			out[f] = e
		}
	}
	return out
}

func restoreFlags(st *sem.State, fl map[x86.Flag]*expr.Expr) {
	for f, e := range fl {
		st.Pred.SetFlag(f, e)
	}
}

func regByName(name string) (x86.Reg, bool) {
	for _, r := range x86.GPRs {
		if r.String() == name {
			return r, true
		}
	}
	return 0, false
}

func flagByName(name string) (x86.Flag, bool) {
	for f := x86.Flag(0); f < x86.NumFlags; f++ {
		if f.String() == name {
			return f, true
		}
	}
	return 0, false
}

// parseForest parses the nested-parentheses model encoding.
func parseForest(s string) (memmodel.Forest, error) {
	p := &forestParser{s: s}
	f, err := p.forest()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("model: trailing input %q", p.s[p.pos:])
	}
	return f, nil
}

type forestParser struct {
	s   string
	pos int
}

func (p *forestParser) skip() {
	for p.pos < len(p.s) && p.s[p.pos] == ' ' {
		p.pos++
	}
}

func (p *forestParser) forest() (memmodel.Forest, error) {
	var out memmodel.Forest
	for {
		p.skip()
		if p.pos >= len(p.s) || p.s[p.pos] != '(' {
			return out, nil
		}
		t, err := p.tree()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

func (p *forestParser) tree() (*memmodel.Tree, error) {
	p.pos++ // (
	t := &memmodel.Tree{}
	for {
		p.skip()
		if p.pos >= len(p.s) {
			return nil, fmt.Errorf("model: unterminated tree")
		}
		if p.s[p.pos] == '(' {
			kids, err := p.kids()
			if err != nil {
				return nil, err
			}
			t.Kids = kids
			p.skip()
			if p.pos >= len(p.s) || p.s[p.pos] != ')' {
				return nil, fmt.Errorf("model: missing tree close")
			}
			p.pos++
			return t, nil
		}
		// region: key#size — expression keys contain balanced parentheses
		// and no spaces, so scan with a depth counter.
		start := p.pos
		depth := 0
		for p.pos < len(p.s) {
			switch p.s[p.pos] {
			case '(':
				depth++
			case ')':
				if depth == 0 {
					goto tokEnd
				}
				depth--
			case ' ':
				if depth == 0 {
					goto tokEnd
				}
			}
			p.pos++
		}
	tokEnd:
		tok := p.s[start:p.pos]
		hash := strings.LastIndexByte(tok, '#')
		if hash < 0 {
			return nil, fmt.Errorf("model: bad region %q", tok)
		}
		addr, err := expr.Parse(tok[:hash])
		if err != nil {
			return nil, err
		}
		size, err := strconv.ParseUint(tok[hash+1:], 10, 64)
		if err != nil {
			return nil, err
		}
		t.Regions = append(t.Regions, solver.Region{Addr: addr, Size: size})
	}
}

func (p *forestParser) kids() (memmodel.Forest, error) {
	p.pos++ // (
	f, err := p.forest()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos >= len(p.s) || p.s[p.pos] != ')' {
		return nil, fmt.Errorf("model: missing kids close")
	}
	p.pos++
	return f, nil
}
