package cgen

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/x86"
)

// runMain compiles the program, executes its entry function concretely
// with the given first argument, and returns the exit code (the value
// passed to exit).
func runMain(t *testing.T, p *Program, arg uint64) uint64 {
	t.Helper()
	res, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	c := emu.New(res.Image)
	c.Regs[x86.RDI] = arg
	var exitCode uint64
	c.Externals["exit"] = func(c *emu.CPU) {
		exitCode = c.Regs[x86.RDI]
		c.Halted = true
	}
	if _, err := c.Run(100000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("program did not terminate")
	}
	return exitCode
}

func TestCompileArithmetic(t *testing.T) {
	// f(x) = (x + 3) * 2 - 1
	p := &Program{Funcs: []*Func{{
		Name: "main", Params: 1, Locals: 1,
		Body: []Stmt{
			Assign{Dst: 0, Src: Bin{Op: OpAdd, L: Param(0), R: Const(3)}},
			Return{X: Bin{Op: OpSub, L: Bin{Op: OpMul, L: Local(0), R: Const(2)}, R: Const(1)}},
		},
	}}}
	if got := runMain(t, p, 10); got != 25 {
		t.Fatalf("got %d", got)
	}
}

func TestCompileControlFlow(t *testing.T) {
	// f(x) = sum of 0..x-1 via while loop, but 99 if x > 100.
	p := &Program{Funcs: []*Func{{
		Name: "main", Params: 1, Locals: 2,
		Body: []Stmt{
			If{Cond: Cond{Op: CondGt, L: Param(0), R: Const(100)},
				Then: []Stmt{Return{X: Const(99)}}},
			Assign{Dst: 0, Src: Const(0)}, // sum
			Assign{Dst: 1, Src: Const(0)}, // i
			While{Cond: Cond{Op: CondLt, L: Local(1), R: Param(0)},
				Body: []Stmt{
					Assign{Dst: 0, Src: Bin{Op: OpAdd, L: Local(0), R: Local(1)}},
					Assign{Dst: 1, Src: Bin{Op: OpAdd, L: Local(1), R: Const(1)}},
				}},
			Return{X: Local(0)},
		},
	}}}
	if got := runMain(t, p, 10); got != 45 {
		t.Fatalf("sum: %d", got)
	}
	if got := runMain(t, p, 200); got != 99 {
		t.Fatalf("guard: %d", got)
	}
}

func TestCompileSwitch(t *testing.T) {
	p := &Program{Funcs: []*Func{{
		Name: "main", Params: 1, Locals: 1,
		Body: []Stmt{
			Switch{X: Param(0),
				Cases: [][]Stmt{
					{Assign{Dst: 0, Src: Const(10)}},
					{Assign{Dst: 0, Src: Const(20)}},
					{Assign{Dst: 0, Src: Const(30)}},
				},
				Default: []Stmt{Assign{Dst: 0, Src: Const(77)}}},
			Return{X: Local(0)},
		},
	}}}
	for arg, want := range map[uint64]uint64{0: 10, 1: 20, 2: 30, 5: 77, 1000: 77} {
		if got := runMain(t, p, arg); got != want {
			t.Fatalf("switch(%d) = %d, want %d", arg, got, want)
		}
	}
}

func TestCompileArraysAndGlobals(t *testing.T) {
	p := &Program{
		Globals: []Global{{Name: "g0", Size: 8}},
		Funcs: []*Func{{
			Name: "main", Params: 1, Locals: 1 + 4, // one scalar + 4-slot array
			Body: []Stmt{
				ArrayStore{Arr: 1, Len: 4, Index: Const(0), Src: Const(5), Guarded: true},
				ArrayStore{Arr: 1, Len: 4, Index: Const(3), Src: Const(7), Guarded: true},
				ArrayStore{Arr: 1, Len: 4, Index: Param(0), Src: Const(100), Guarded: true},
				StoreGlobal{Name: "g0", Src: ArrayLoad{Arr: 1, Len: 4, Index: Const(0)}},
				Return{X: Bin{Op: OpAdd,
					L: LoadGlobal{Name: "g0"},
					R: ArrayLoad{Arr: 1, Len: 4, Index: Const(3)}}},
			},
		}},
	}
	// In-bounds overwrite of slot 0.
	if got := runMain(t, p, 0); got != 107 {
		t.Fatalf("got %d", got)
	}
	// Out-of-bounds index: the guard skips the store.
	if got := runMain(t, p, 9999); got != 12 {
		t.Fatalf("guarded store leaked: %d", got)
	}
}

func TestCompileCalls(t *testing.T) {
	p := &Program{
		Entry: "main",
		Funcs: []*Func{
			{Name: "twice", Params: 1, Locals: 0,
				Body: []Stmt{Return{X: Bin{Op: OpMul, L: Param(0), R: Const(2)}}}},
			{Name: "main", Params: 1, Locals: 1,
				Body: []Stmt{
					Assign{Dst: 0, Src: Call{Name: "twice", Args: []Expr{Param(0)}}},
					Return{X: Bin{Op: OpAdd, L: Local(0), R: Const(1)}},
				}},
		},
	}
	if got := runMain(t, p, 21); got != 43 {
		t.Fatalf("got %d", got)
	}
}

func TestCompileDivMod(t *testing.T) {
	p := &Program{Funcs: []*Func{{
		Name: "main", Params: 2, Locals: 0,
		Body: []Stmt{
			Return{X: Bin{Op: OpAdd,
				L: Bin{Op: OpDiv, L: Param(0), R: Const(7)},
				R: Bin{Op: OpMod, L: Param(0), R: Const(7)}}},
		},
	}}}
	if got := runMain(t, p, 100); got != 14+2 {
		t.Fatalf("got %d", got)
	}
}

func TestCompiledProgramLifts(t *testing.T) {
	p := &Program{
		Globals: []Global{{Name: "g0", Size: 8}},
		Funcs: []*Func{{
			Name: "main", Params: 1, Locals: 2 + 4,
			Body: []Stmt{
				Assign{Dst: 0, Src: Const(0)},
				Assign{Dst: 1, Src: Const(0)},
				While{Cond: Cond{Op: CondLt, L: Local(1), R: Const(4)},
					Body: []Stmt{
						ArrayStore{Arr: 2, Len: 4, Index: Local(1), Src: Local(1), Guarded: true},
						Assign{Dst: 1, Src: Bin{Op: OpAdd, L: Local(1), R: Const(1)}},
					}},
				Switch{X: Param(0),
					Cases: [][]Stmt{
						{Assign{Dst: 0, Src: Const(1)}},
						{Assign{Dst: 0, Src: ArrayLoad{Arr: 2, Len: 4, Index: Param(0)}}},
					},
					Default: []Stmt{StoreGlobal{Name: "g0", Src: Const(9)}}},
				Return{X: Local(0)},
			},
		}},
	}
	res, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	l := core.New(res.Image, core.DefaultConfig())
	r := l.LiftBinaryCtx(context.Background(), "compiled")
	if r.Status != core.StatusLifted {
		for _, fr := range r.Funcs {
			t.Logf("%s: %s %v", fr.Name, fr.Status, fr.Reasons)
		}
		t.Fatalf("binary status: %s", r.Status)
	}
	if r.Stats.ResolvedInd == 0 {
		t.Fatal("the switch's jump table must be resolved")
	}
	if r.Stats.UnresolvedJump != 0 {
		t.Fatalf("unexpected unresolved jumps: %+v", r.Stats)
	}
}

func TestGenProgramDeterministic(t *testing.T) {
	a := GenProgram(rand.New(rand.NewSource(11)), 4, DefaultFeatures())
	b := GenProgram(rand.New(rand.NewSource(11)), 4, DefaultFeatures())
	ra, err := Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.ELF) != len(rb.ELF) {
		t.Fatal("generator not deterministic")
	}
	for i := range ra.ELF {
		if ra.ELF[i] != rb.ELF[i] {
			t.Fatalf("generator not deterministic at byte %d", i)
		}
	}
}

func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		p := GenProgram(rng, 1+rng.Intn(4), DefaultFeatures())
		res, err := Compile(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c := emu.New(res.Image)
		c.Regs[x86.RDI] = uint64(rng.Intn(50))
		c.Externals["exit"] = func(c *emu.CPU) { c.Halted = true }
		if _, err := c.Run(200000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !c.Halted {
			t.Fatalf("trial %d: did not terminate", trial)
		}
	}
}

func TestGeneratedFeatureStatuses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))

	lift := func(fe Features) core.Status {
		p := &Program{
			Globals: []Global{{Name: "g0", Size: 8}},
			Funcs:   []*Func{GenFunc(rng, "f", nil, fe)},
			Entry:   "f",
		}
		res, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		l := core.New(res.Image, core.DefaultConfig())
		return l.LiftFuncCtx(context.Background(), res.Funcs["f"], "f").Status
	}

	fe := DefaultFeatures()
	fe.Pthread = true
	if got := lift(fe); got != core.StatusConcurrency {
		t.Fatalf("pthread feature: %s", got)
	}
	fe = DefaultFeatures()
	fe.Overflow = true
	if got := lift(fe); got != core.StatusUnprovableRet {
		t.Fatalf("overflow feature: %s", got)
	}
}
