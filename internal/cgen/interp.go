package cgen

import "fmt"

// Interp is a reference interpreter for the IR: the compiler's ground
// truth. Differential tests run random programs both interpreted and
// compiled-then-emulated and require identical results, which pins down
// the compiler, the encoder, the decoder and the emulator against each
// other.
type Interp struct {
	prog    *Program
	globals map[string]uint64
	// Externs supplies return values for external calls; missing names
	// return 0.
	Externs map[string]func(args []uint64) uint64
	// steps guards against runaway loops.
	steps int
}

// NewInterp returns an interpreter over the program with zeroed globals.
func NewInterp(p *Program) *Interp {
	in := &Interp{prog: p, globals: map[string]uint64{}, Externs: map[string]func([]uint64) uint64{}}
	for _, g := range p.Globals {
		var v uint64
		for i := 0; i < len(g.Init) && i < 8; i++ {
			v |= uint64(g.Init[i]) << (8 * i)
		}
		in.globals[g.Name] = v
	}
	return in
}

// maxInterpSteps bounds total interpreted statements.
const maxInterpSteps = 1 << 20

type frame struct {
	f      *Func
	params []uint64
	locals []uint64
}

// errReturn carries a function's return value through the statement walk.
type errReturn struct{ v uint64 }

func (errReturn) Error() string { return "return" }

// Call runs the named function with the given arguments.
func (in *Interp) Call(name string, args ...uint64) (uint64, error) {
	var fn *Func
	for _, f := range in.prog.Funcs {
		if f.Name == name {
			fn = f
		}
	}
	if fn == nil {
		return 0, fmt.Errorf("cgen: no function %q", name)
	}
	fr := &frame{f: fn, params: make([]uint64, fn.Params), locals: make([]uint64, fn.Locals)}
	copy(fr.params, args)
	err := in.stmts(fr, fn.Body)
	if r, ok := err.(errReturn); ok {
		return r.v, nil
	}
	if err != nil {
		return 0, err
	}
	return 0, nil // fall off the end: the compiler returns 0 too
}

func (in *Interp) stmts(fr *frame, ss []Stmt) error {
	for _, s := range ss {
		if err := in.stmt(fr, s); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) stmt(fr *frame, s Stmt) error {
	in.steps++
	if in.steps > maxInterpSteps {
		return fmt.Errorf("cgen: interpreter step budget exhausted")
	}
	switch s := s.(type) {
	case Assign:
		v, err := in.eval(fr, s.Src)
		if err != nil {
			return err
		}
		fr.locals[s.Dst] = v
	case StoreGlobal:
		v, err := in.eval(fr, s.Src)
		if err != nil {
			return err
		}
		in.globals[s.Name] = v
	case ArrayStore:
		idx, err := in.eval(fr, s.Index)
		if err != nil {
			return err
		}
		v, err := in.eval(fr, s.Src)
		if err != nil {
			return err
		}
		if s.Guarded && idx > uint64(s.Len-1) {
			return nil // the compiled guard skips the store
		}
		if idx < uint64(s.Len) {
			// Element i lives at slot Arr+Len-1-i (see arrayBase).
			fr.locals[int(s.Arr)+s.Len-1-int(idx)] = v
		}
	case If:
		c, err := in.cond(fr, s.Cond)
		if err != nil {
			return err
		}
		if c {
			return in.stmts(fr, s.Then)
		}
		return in.stmts(fr, s.Else)
	case While:
		for {
			c, err := in.cond(fr, s.Cond)
			if err != nil {
				return err
			}
			if !c {
				return nil
			}
			if err := in.stmts(fr, s.Body); err != nil {
				return err
			}
		}
	case Switch:
		x, err := in.eval(fr, s.X)
		if err != nil {
			return err
		}
		if x < uint64(len(s.Cases)) {
			return in.stmts(fr, s.Cases[x])
		}
		return in.stmts(fr, s.Default)
	case Return:
		v, err := in.eval(fr, s.X)
		if err != nil {
			return err
		}
		return errReturn{v}
	case ExprStmt:
		_, err := in.eval(fr, s.X)
		return err
	case Memset:
		for i := 0; i < s.Len; i++ {
			fr.locals[int(s.Arr)+i] = 0
		}
	case CallPtr, TailJump:
		return fmt.Errorf("cgen: %T is not interpretable (requires concrete code addresses)", s)
	}
	return nil
}

func (in *Interp) cond(fr *frame, c Cond) (bool, error) {
	l, err := in.eval(fr, c.L)
	if err != nil {
		return false, err
	}
	r, err := in.eval(fr, c.R)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case CondEq:
		return l == r, nil
	case CondNe:
		return l != r, nil
	case CondLt:
		return l < r, nil
	case CondLe:
		return l <= r, nil
	case CondGt:
		return l > r, nil
	case CondGe:
		return l >= r, nil
	}
	return false, fmt.Errorf("cgen: bad cond op %d", c.Op)
}

func (in *Interp) eval(fr *frame, e Expr) (uint64, error) {
	switch e := e.(type) {
	case Const:
		return uint64(e), nil
	case Param:
		if int(e) >= len(fr.params) {
			return 0, fmt.Errorf("cgen: param %d out of range", e)
		}
		return fr.params[e], nil
	case Local:
		return fr.locals[e], nil
	case LoadGlobal:
		return in.globals[e.Name], nil
	case Un:
		v, err := in.eval(fr, e.X)
		if err != nil {
			return 0, err
		}
		if e.Op == OpNeg {
			return -v, nil
		}
		return ^v, nil
	case Bin:
		l, err := in.eval(fr, e.L)
		if err != nil {
			return 0, err
		}
		r, err := in.eval(fr, e.R)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case OpAdd:
			return l + r, nil
		case OpSub:
			return l - r, nil
		case OpMul:
			return l * r, nil
		case OpAnd:
			return l & r, nil
		case OpOr:
			return l | r, nil
		case OpXor:
			return l ^ r, nil
		case OpShl:
			return l << (r & 63), nil
		case OpShr:
			return l >> (r & 63), nil
		case OpDiv, OpMod:
			d := int64(r)
			if d == 0 {
				d = 1 // the compiled guard substitutes 1
			}
			n := int64(l)
			if n == -1<<63 && d == -1 {
				// idiv would fault; the corpus never generates this, and
				// the emulator reports it as a fault.
				return 0, fmt.Errorf("cgen: idiv overflow")
			}
			if e.Op == OpDiv {
				return uint64(n / d), nil
			}
			return uint64(n % d), nil
		}
	case ArrayLoad:
		idx, err := in.eval(fr, e.Index)
		if err != nil {
			return 0, err
		}
		idx &= uint64(e.Len - 1)
		return fr.locals[int(e.Arr)+e.Len-1-int(idx)], nil
	case Call:
		args := make([]uint64, len(e.Args))
		for i, a := range e.Args {
			v, err := in.eval(fr, a)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		if e.Extern {
			if h, ok := in.Externs[e.Name]; ok {
				return h(args), nil
			}
			return 0, nil
		}
		return in.Call(e.Name, args...)
	case FuncAddr:
		return 0, fmt.Errorf("cgen: FuncAddr is not interpretable")
	}
	return 0, fmt.Errorf("cgen: bad expression %T", e)
}
