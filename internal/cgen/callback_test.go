package cgen

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/x86"
)

// TestFuncAddrCallback compiles a callback pattern: main passes &cb to a
// dispatcher that calls through the pointer. Concretely the callback runs;
// the lifter, being context-free, annotates the indirect call (column C)
// and still lifts the binary.
func TestFuncAddrCallback(t *testing.T) {
	p := &Program{
		Entry: "main",
		Funcs: []*Func{
			{Name: "cb", Params: 1, Locals: 0,
				Body: []Stmt{Return{X: Bin{Op: OpMul, L: Param(0), R: Const(5)}}}},
			{Name: "dispatch", Params: 2, Locals: 0,
				Body: []Stmt{
					CallPtr{Ptr: Param(0), Args: []Expr{Param(1)}},
					Return{X: Const(0)},
				}},
			{Name: "main", Params: 1, Locals: 1,
				Body: []Stmt{
					Assign{Dst: 0, Src: FuncAddr{Name: "cb"}},
					ExprStmt{X: Call{Name: "dispatch", Args: []Expr{Local(0), Param(0)}}},
					Return{X: Const(7)},
				}},
		},
	}
	res, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}

	// Concrete run: the callback executes (observable via the trace
	// reaching cb's entry).
	c := emu.New(res.Image)
	c.Regs[x86.RDI] = 3
	var exit uint64
	c.Externals["exit"] = func(c *emu.CPU) { exit = c.Regs[x86.RDI]; c.Halted = true }
	trace, err := c.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 7 {
		t.Fatalf("exit code %d", exit)
	}
	reachedCb := false
	for _, tr := range trace {
		if tr.To == res.Funcs["cb"] {
			reachedCb = true
		}
	}
	if !reachedCb {
		t.Fatal("concrete run never reached the callback")
	}

	// Lift: the callback's call site is an unresolved indirect call.
	l := core.New(res.Image, core.DefaultConfig())
	br := l.LiftBinaryCtx(context.Background(), "cbdemo")
	if br.Status != core.StatusLifted {
		t.Fatalf("status: %s", br.Status)
	}
	if br.Stats.UnresolvedCall == 0 {
		t.Fatalf("context-free lifting must annotate the callback: %+v", br.Stats)
	}
}

// TestInterpRejectsCallbacks documents that the reference interpreter
// cannot evaluate code-address constructs.
func TestInterpRejectsCallbacks(t *testing.T) {
	p := &Program{Funcs: []*Func{{
		Name: "f", Params: 1, Locals: 1,
		Body: []Stmt{
			Assign{Dst: 0, Src: FuncAddr{Name: "f"}},
			Return{X: Const(0)},
		},
	}}}
	in := NewInterp(p)
	if _, err := in.Call("f", 0); err == nil {
		t.Fatal("FuncAddr must not be interpretable")
	}
}

// TestMemsetIdiom compiles the inline rep-stos memset: the interpreter,
// the emulator and the lifter all agree the construct is benign.
func TestMemsetIdiom(t *testing.T) {
	p := &Program{
		Entry: "main",
		Funcs: []*Func{{
			Name: "main", Params: 1, Locals: 1 + 8,
			Body: []Stmt{
				ArrayStore{Arr: 1, Len: 8, Index: Const(3), Src: Const(99), Guarded: true},
				Memset{Arr: 1, Len: 8},
				Return{X: Bin{Op: OpAdd,
					L: ArrayLoad{Arr: 1, Len: 8, Index: Const(3)},
					R: Param(0)}},
			},
		}},
	}
	res, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp(p)
	want, err := in.Call("main", 5)
	if err != nil {
		t.Fatal(err)
	}
	if want != 5 { // the memset cleared slot 3
		t.Fatalf("interp: %d", want)
	}
	c := emu.New(res.Image)
	c.Regs[x86.RDI] = 5
	var got uint64
	c.Externals["exit"] = func(c *emu.CPU) { got = c.Regs[x86.RDI]; c.Halted = true }
	if _, err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("compiled %d vs interpreted %d", got, want)
	}
	l := core.New(res.Image, core.DefaultConfig())
	br := l.LiftBinaryCtx(context.Background(), "memset-idiom")
	if br.Status != core.StatusLifted {
		for _, fr := range br.Funcs {
			t.Logf("%s: %s %v", fr.Name, fr.Status, fr.Reasons)
		}
		t.Fatalf("status: %s", br.Status)
	}
}
