// Package cgen is a small C-like intermediate representation and a
// compiler from it to real x86-64 machine code in real ELF images. It
// stands in for the paper's GCC-compiled corpus (Xen, CoreUtils): the
// lifter consumes raw bytes either way, and the generator exercises every
// analysis path — stack frames, bounded and unbounded array accesses,
// switch statements compiled to jump tables, direct/external/indirect
// calls, globals — with controlled ground truth.
package cgen

// Program is a compilation unit.
type Program struct {
	Funcs   []*Func
	Globals []Global
	// Entry optionally names the function that the ELF entry point wraps
	// (the wrapper calls it and then calls exit). Empty: first function.
	Entry string
}

// Global is a named .data object.
type Global struct {
	Name string
	Size int // bytes
	Init []byte
}

// Func is one C-like function. Parameters arrive in the System V integer
// registers and are spilled to the frame; locals are 8-byte slots; arrays
// occupy runs of consecutive slots.
type Func struct {
	Name   string
	Params int // ≤ 4
	Locals int // 8-byte slots, including array storage
	Body   []Stmt
}

// Expr is an IR expression (64-bit values).
type Expr interface{ isExpr() }

// Const is an integer literal.
type Const int64

// Param reads the n-th parameter.
type Param int

// Local reads a local slot.
type Local int

// BinOp enumerates binary operators.
type BinOp uint8

// The binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpDiv // signed
	OpMod // signed
)

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp uint8

// The unary operators.
const (
	OpNeg UnOp = iota
	OpNot
)

// Un applies a unary operator.
type Un struct {
	Op UnOp
	X  Expr
}

// LoadGlobal reads 8 bytes from a named global.
type LoadGlobal struct{ Name string }

// ArrayLoad reads slot Arr+Index of a local array (Index is masked to the
// array bound, mirroring defensive C).
type ArrayLoad struct {
	Arr   Local
	Len   int // power of two
	Index Expr
}

// Call invokes a function and yields its return value. Extern calls go
// through the PLT.
type Call struct {
	Name   string
	Args   []Expr
	Extern bool
}

// FuncAddr yields the address of a function (for callbacks).
type FuncAddr struct{ Name string }

func (Const) isExpr()      {}
func (Param) isExpr()      {}
func (Local) isExpr()      {}
func (Bin) isExpr()        {}
func (Un) isExpr()         {}
func (LoadGlobal) isExpr() {}
func (ArrayLoad) isExpr()  {}
func (Call) isExpr()       {}
func (FuncAddr) isExpr()   {}

// CondOp enumerates comparison operators (unsigned unless noted).
type CondOp uint8

// The comparison operators.
const (
	CondEq CondOp = iota
	CondNe
	CondLt
	CondLe
	CondGt
	CondGe
)

// Cond is a branch condition L op R.
type Cond struct {
	Op   CondOp
	L, R Expr
}

// Stmt is an IR statement.
type Stmt interface{ isStmt() }

// Assign stores into a local slot.
type Assign struct {
	Dst Local
	Src Expr
}

// StoreGlobal stores 8 bytes into a named global.
type StoreGlobal struct {
	Name string
	Src  Expr
}

// ArrayStore writes slot Arr+Index of a local array. When Guarded, the
// compiler emits a bounds check (cmp/ja) that skips the store — the
// pattern the lifter proves safe. Unguarded stores reproduce the buffer
// overflow of Section 5.1's rejected binary.
type ArrayStore struct {
	Arr     Local
	Len     int
	Index   Expr
	Src     Expr
	Guarded bool
}

// If branches on a condition.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// While loops while the condition holds.
type While struct {
	Cond Cond
	Body []Stmt
}

// Switch dispatches on X over cases 0..len(Cases)-1 through a jump table
// in .rodata; out-of-range values fall to Default.
type Switch struct {
	X       Expr
	Cases   [][]Stmt
	Default []Stmt
}

// Return returns a value.
type Return struct{ X Expr }

// ExprStmt evaluates an expression for effect (typically a Call).
type ExprStmt struct{ X Expr }

// CallPtr calls through a function pointer value (a callback: the
// unresolved indirect calls of Table 1's column C).
type CallPtr struct {
	Ptr  Expr
	Args []Expr
}

// TailJump transfers control to a computed address (jmp reg). When the
// target is loaded from writable data the lifter cannot bound it — the
// unresolved indirect jumps of Table 1's column B.
type TailJump struct{ Target Expr }

// Memset zeroes a whole local array with rep stosq — the inline memset
// idiom compilers emit, which the lifter must prove frame-bounded.
type Memset struct {
	Arr Local
	Len int
}

func (Assign) isStmt()      {}
func (StoreGlobal) isStmt() {}
func (ArrayStore) isStmt()  {}
func (If) isStmt()          {}
func (While) isStmt()       {}
func (Switch) isStmt()      {}
func (Return) isStmt()      {}
func (ExprStmt) isStmt()    {}
func (CallPtr) isStmt()     {}
func (TailJump) isStmt()    {}
func (Memset) isStmt()      {}
