package cgen

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/x86"
)

func TestInterpBasics(t *testing.T) {
	p := &Program{
		Globals: []Global{{Name: "g0", Size: 8, Init: []byte{5}}},
		Funcs: []*Func{
			{Name: "add3", Params: 1, Locals: 0,
				Body: []Stmt{Return{X: Bin{Op: OpAdd, L: Param(0), R: Const(3)}}}},
			{Name: "main", Params: 1, Locals: 2 + 4,
				Body: []Stmt{
					Assign{Dst: 0, Src: Call{Name: "add3", Args: []Expr{Param(0)}}},
					ArrayStore{Arr: 2, Len: 4, Index: Const(1), Src: Local(0), Guarded: true},
					StoreGlobal{Name: "g0", Src: Bin{Op: OpAdd, L: LoadGlobal{Name: "g0"}, R: Const(1)}},
					Return{X: Bin{Op: OpAdd,
						L: ArrayLoad{Arr: 2, Len: 4, Index: Const(1)},
						R: LoadGlobal{Name: "g0"}}},
				}},
		},
	}
	in := NewInterp(p)
	got, err := in.Call("main", 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 13+6 {
		t.Fatalf("interp: %d", got)
	}
}

func TestInterpControlFlow(t *testing.T) {
	p := &Program{Funcs: []*Func{{
		Name: "f", Params: 1, Locals: 2,
		Body: []Stmt{
			Assign{Dst: 0, Src: Const(0)},
			Assign{Dst: 1, Src: Const(0)},
			While{Cond: Cond{Op: CondLt, L: Local(1), R: Param(0)},
				Body: []Stmt{
					Assign{Dst: 0, Src: Bin{Op: OpAdd, L: Local(0), R: Local(1)}},
					Assign{Dst: 1, Src: Bin{Op: OpAdd, L: Local(1), R: Const(1)}},
				}},
			Switch{X: Local(0),
				Cases:   [][]Stmt{{Return{X: Const(1000)}}, {Return{X: Const(2000)}}},
				Default: []Stmt{}},
			Return{X: Local(0)},
		},
	}}}
	in := NewInterp(p)
	if v, _ := in.Call("f", 2); v != 2000 { // sum 0+1 = 1 → case 1
		t.Fatalf("got %d", v)
	}
	if v, _ := in.Call("f", 4); v != 6 { // sum = 6 → default, returns local
		t.Fatalf("got %d", v)
	}
}

// TestDifferentialInterpVsCompiled runs random programs both interpreted
// and compiled-then-emulated; the exit values must agree. This pins the
// compiler, encoder, decoder and emulator against the IR semantics.
func TestDifferentialInterpVsCompiled(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	trials := 40
	for trial := 0; trial < trials; trial++ {
		fe := DefaultFeatures()
		fe.ExternCalls = 0 // externals differ between the two executions
		p := GenProgram(rng, 1+rng.Intn(3), fe)
		res, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 4; run++ {
			arg := uint64(rng.Intn(64))

			in := NewInterp(p)
			want, err := in.Call(p.Entry, arg)
			if err != nil {
				t.Fatalf("trial %d: interp: %v", trial, err)
			}

			c := emu.New(res.Image)
			c.Regs[x86.RDI] = arg
			var got uint64
			exited := false
			c.Externals["exit"] = func(c *emu.CPU) {
				got = c.Regs[x86.RDI]
				exited = true
				c.Halted = true
			}
			if _, err := c.Run(2_000_000); err != nil {
				t.Fatalf("trial %d: emu: %v", trial, err)
			}
			if !exited {
				t.Fatalf("trial %d: compiled program did not exit", trial)
			}
			if got != want {
				t.Fatalf("trial %d arg %d: interpreted %d, compiled %d", trial, arg, want, got)
			}
		}
	}
}

// TestDifferentialHandWritten runs the differential on deterministic
// programs covering each construct individually.
func TestDifferentialHandWritten(t *testing.T) {
	programs := []*Program{
		{Funcs: []*Func{{Name: "m", Params: 2, Locals: 1, Body: []Stmt{
			Assign{Dst: 0, Src: Bin{Op: OpDiv, L: Param(0), R: Param(1)}},
			Return{X: Bin{Op: OpAdd, L: Local(0), R: Bin{Op: OpMod, L: Param(0), R: Param(1)}}},
		}}}},
		{Funcs: []*Func{{Name: "m", Params: 1, Locals: 1, Body: []Stmt{
			Assign{Dst: 0, Src: Un{Op: OpNot, X: Un{Op: OpNeg, X: Param(0)}}},
			Return{X: Bin{Op: OpXor, L: Local(0), R: Bin{Op: OpShl, L: Param(0), R: Const(5)}}},
		}}}},
		{Globals: []Global{{Name: "g0", Size: 8}}, Funcs: []*Func{{Name: "m", Params: 1, Locals: 1 + 8, Body: []Stmt{
			ArrayStore{Arr: 1, Len: 8, Index: Param(0), Src: Const(41), Guarded: true},
			StoreGlobal{Name: "g0", Src: ArrayLoad{Arr: 1, Len: 8, Index: Param(0)}},
			Return{X: LoadGlobal{Name: "g0"}},
		}}}},
	}
	for pi, p := range programs {
		p.Entry = "m"
		res, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, arg := range []uint64{0, 1, 3, 7, 9, 100} {
			in := NewInterp(p)
			args := []uint64{arg, 7}
			want, err := in.Call("m", args[:p.Funcs[0].Params]...)
			if err != nil {
				t.Fatal(err)
			}
			c := emu.New(res.Image)
			c.Regs[x86.RDI] = arg
			c.Regs[x86.RSI] = 7
			var got uint64
			c.Externals["exit"] = func(c *emu.CPU) { got = c.Regs[x86.RDI]; c.Halted = true }
			if _, err := c.Run(100000); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("program %d arg %d: interp %d vs compiled %d", pi, arg, want, got)
			}
		}
	}
}
