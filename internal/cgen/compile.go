package cgen

import (
	"fmt"
	"sort"

	"repro/internal/elf64"
	"repro/internal/image"
	"repro/internal/x86"
)

// Layout fixes the virtual addresses of the produced image's sections.
type Layout struct {
	PLTBase    uint64
	TextBase   uint64
	RodataBase uint64
	DataBase   uint64
}

// DefaultLayout mirrors a small static Linux executable.
func DefaultLayout() Layout {
	return Layout{
		PLTBase:    0x400800,
		TextBase:   0x401000,
		RodataBase: 0x4a0000,
		DataBase:   0x4b0000,
	}
}

// Result is a compiled program.
type Result struct {
	ELF    []byte
	Image  *image.Image
	Funcs  map[string]uint64 // function name → address
	Stubs  map[string]uint64 // external name → PLT stub address
	Layout Layout
}

// compiler carries the per-program compilation state.
type compiler struct {
	p       *Program
	lay     Layout
	asm     *x86.Asm
	stubs   map[string]uint64
	globals map[string]uint64
	rodata  []byte
	// switch jump tables to patch after label resolution:
	// rodata offset → case labels.
	tables []tablePatch
	nlabel int
	err    error
}

type tablePatch struct {
	off    int
	labels []string
}

// Compile translates the program into an ELF executable image.
func Compile(p *Program) (*Result, error) {
	return CompileWithLayout(p, DefaultLayout())
}

// CompileWithLayout compiles with explicit section addresses.
func CompileWithLayout(p *Program, lay Layout) (*Result, error) {
	c := &compiler{
		p: p, lay: lay,
		asm:     x86.NewAsm(lay.TextBase),
		stubs:   map[string]uint64{},
		globals: map[string]uint64{},
	}

	// Assign PLT stubs for every external referenced (exit is always
	// present: the entry wrapper terminates through it).
	externs := collectExterns(p)
	externs = append(externs, "exit")
	seen := map[string]bool{}
	for _, e := range externs {
		if !seen[e] {
			seen[e] = true
			c.stubs[e] = lay.PLTBase + uint64(16*(len(c.stubs)))
		}
	}

	// Assign global addresses.
	dataAddr := lay.DataBase
	var dataBytes []byte
	for _, g := range p.Globals {
		c.globals[g.Name] = dataAddr
		buf := make([]byte, g.Size)
		copy(buf, g.Init)
		dataBytes = append(dataBytes, buf...)
		dataAddr += uint64(g.Size)
		// 8-byte align.
		for dataAddr%8 != 0 {
			dataBytes = append(dataBytes, 0)
			dataAddr++
		}
	}

	// Entry wrapper: call the designated function, then exit(rax).
	entry := p.Entry
	if entry == "" && len(p.Funcs) > 0 {
		entry = p.Funcs[0].Name
	}
	c.asm.Label("_start")
	c.asm.Call("fn_" + entry)
	c.asm.I(x86.MOV, x86.RegOp(x86.RDI, 8), x86.RegOp(x86.RAX, 8))
	c.asm.CallAbs(c.stubs["exit"])
	c.asm.I(x86.UD2)

	funcSize := map[string]uint64{}
	for _, f := range p.Funcs {
		start := c.asm.PC()
		c.compileFunc(f)
		funcSize[f.Name] = c.asm.PC() - start
	}
	if c.err != nil {
		return nil, c.err
	}
	code, err := c.asm.Finish()
	if err != nil {
		return nil, err
	}

	// Patch jump tables now that labels are bound.
	for _, tp := range c.tables {
		for i, lbl := range tp.labels {
			addr, ok := c.asm.LabelAddr(lbl)
			if !ok {
				return nil, fmt.Errorf("cgen: unresolved case label %q", lbl)
			}
			for j := 0; j < 8; j++ {
				c.rodata[tp.off+8*i+j] = byte(addr >> (8 * j))
			}
		}
	}

	// PLT stubs: jmp [rip+got] shapes, 16 bytes each.
	plt := x86.NewAsm(lay.PLTBase)
	names := make([]string, 0, len(c.stubs))
	for n := range c.stubs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return c.stubs[names[i]] < c.stubs[names[j]] })
	for _, n := range names {
		start := plt.PC()
		if start != c.stubs[n] {
			return nil, fmt.Errorf("cgen: stub layout drift for %s", n)
		}
		plt.I(x86.JMP, x86.MemOp(x86.RIP, x86.RegNone, 1, int64(lay.DataBase)+0x10000, 8))
		for plt.PC() < start+16 {
			plt.I(x86.NOP)
		}
	}
	pltCode, err := plt.Finish()
	if err != nil {
		return nil, err
	}

	eb := elf64.NewExec(lay.TextBase)
	eb.AddSection(".plt", elf64.SHFExecinstr, lay.PLTBase, pltCode)
	eb.AddSection(".text", elf64.SHFExecinstr, lay.TextBase, code)
	if len(c.rodata) > 0 {
		eb.AddSection(".rodata", 0, lay.RodataBase, c.rodata)
	}
	if len(dataBytes) > 0 {
		eb.AddSection(".data", elf64.SHFWrite, lay.DataBase, dataBytes)
	}
	for _, n := range names {
		eb.AddFunc(n+"@plt", c.stubs[n], 16)
	}
	funcs := map[string]uint64{}
	for _, f := range p.Funcs {
		addr, _ := c.asm.LabelAddr("fn_" + f.Name)
		funcs[f.Name] = addr
		eb.AddFunc(f.Name, addr, funcSize[f.Name])
	}
	for _, g := range p.Globals {
		eb.AddObject(g.Name, c.globals[g.Name], uint64(g.Size))
	}
	img, err := eb.Bytes()
	if err != nil {
		return nil, err
	}
	im, err := image.Load(img)
	if err != nil {
		return nil, err
	}
	return &Result{ELF: img, Image: im, Funcs: funcs, Stubs: c.stubs, Layout: lay}, nil
}

// collectExterns walks the IR for external call names.
func collectExterns(p *Program) []string {
	var out []string
	var walkExpr func(e Expr)
	var walkStmts func(ss []Stmt)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		case Un:
			walkExpr(e.X)
		case ArrayLoad:
			walkExpr(e.Index)
		case Call:
			if e.Extern {
				out = append(out, e.Name)
			}
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	walkStmts = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case Assign:
				walkExpr(s.Src)
			case StoreGlobal:
				walkExpr(s.Src)
			case ArrayStore:
				walkExpr(s.Index)
				walkExpr(s.Src)
			case If:
				walkExpr(s.Cond.L)
				walkExpr(s.Cond.R)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case While:
				walkExpr(s.Cond.L)
				walkExpr(s.Cond.R)
				walkStmts(s.Body)
			case Switch:
				walkExpr(s.X)
				for _, cs := range s.Cases {
					walkStmts(cs)
				}
				walkStmts(s.Default)
			case Return:
				walkExpr(s.X)
			case ExprStmt:
				walkExpr(s.X)
			case CallPtr:
				walkExpr(s.Ptr)
				for _, a := range s.Args {
					walkExpr(a)
				}
			case TailJump:
				walkExpr(s.Target)
			case Memset:
			}
		}
	}
	for _, f := range p.Funcs {
		walkStmts(f.Body)
	}
	return out
}

// fresh returns a unique local label.
func (c *compiler) fresh(prefix string) string {
	c.nlabel++
	return fmt.Sprintf(".%s%d", prefix, c.nlabel)
}

// slotOff returns the rbp-relative offset of a local slot.
func (f *Func) slotOff(slot int) int64 { return -8 * int64(f.Params+slot+1) }

// paramOff returns the rbp-relative offset of a spilled parameter.
func (f *Func) paramOff(i int) int64 { return -8 * int64(i+1) }

// arrayBase returns the rbp-relative offset of element 0 of an array that
// occupies slots [arr, arr+len).
func (f *Func) arrayBase(arr Local, n int) int64 {
	return -8 * int64(f.Params+int(arr)+n)
}

// compileFunc emits one function.
func (c *compiler) compileFunc(f *Func) {
	a := c.asm
	a.Label("fn_" + f.Name)
	epilogue := c.fresh("ep")

	frame := 8 * int64(f.Params+f.Locals)
	if frame%16 != 0 {
		frame += 8
	}
	a.I(x86.PUSH, x86.RegOp(x86.RBP, 8))
	a.I(x86.MOV, x86.RegOp(x86.RBP, 8), x86.RegOp(x86.RSP, 8))
	if frame > 0 {
		a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(frame, 4))
	}
	argRegs := []x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX}
	for i := 0; i < f.Params && i < len(argRegs); i++ {
		a.I(x86.MOV, x86.MemOp(x86.RBP, x86.RegNone, 1, f.paramOff(i), 8), x86.RegOp(argRegs[i], 8))
	}

	c.compileStmts(f, f.Body, epilogue)

	// Fall-off-the-end returns 0.
	a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
	a.Label(epilogue)
	a.I(x86.LEAVE)
	a.I(x86.RET)
}

func (c *compiler) compileStmts(f *Func, ss []Stmt, epilogue string) {
	for _, s := range ss {
		c.compileStmt(f, s, epilogue)
	}
}

func (c *compiler) compileStmt(f *Func, s Stmt, epilogue string) {
	a := c.asm
	switch s := s.(type) {
	case Assign:
		c.compileExpr(f, s.Src)
		a.I(x86.MOV, x86.MemOp(x86.RBP, x86.RegNone, 1, f.slotOff(int(s.Dst)), 8), x86.RegOp(x86.RAX, 8))

	case StoreGlobal:
		c.compileExpr(f, s.Src)
		addr, ok := c.globals[s.Name]
		if !ok {
			c.fail("unknown global %q", s.Name)
			return
		}
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.ImmOp(int64(addr), 4))
		a.I(x86.MOV, x86.MemOp(x86.RCX, x86.RegNone, 1, 0, 8), x86.RegOp(x86.RAX, 8))

	case ArrayStore:
		c.compileExpr(f, s.Src)
		a.I(x86.PUSH, x86.RegOp(x86.RAX, 8))
		c.compileExpr(f, s.Index)
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.RegOp(x86.RAX, 8))
		a.I(x86.POP, x86.RegOp(x86.RDX, 8))
		skip := c.fresh("sk")
		if s.Guarded {
			a.I(x86.CMP, x86.RegOp(x86.RCX, 8), x86.ImmOp(int64(s.Len-1), 4))
			a.Jcc(x86.CondA, skip)
		}
		a.I(x86.MOV, x86.MemOp(x86.RBP, x86.RCX, 8, f.arrayBase(s.Arr, s.Len), 8), x86.RegOp(x86.RDX, 8))
		if s.Guarded {
			a.Label(skip)
		}

	case If:
		elseL := c.fresh("el")
		endL := c.fresh("fi")
		c.compileCond(f, s.Cond, elseL)
		c.compileStmts(f, s.Then, epilogue)
		a.Jmp(endL)
		a.Label(elseL)
		c.compileStmts(f, s.Else, epilogue)
		a.Label(endL)

	case While:
		top := c.fresh("wh")
		out := c.fresh("od")
		a.Label(top)
		c.compileCond(f, s.Cond, out)
		c.compileStmts(f, s.Body, epilogue)
		a.Jmp(top)
		a.Label(out)

	case Switch:
		c.compileSwitch(f, s, epilogue)

	case Return:
		c.compileExpr(f, s.X)
		a.Jmp(epilogue)

	case ExprStmt:
		c.compileExpr(f, s.X)

	case TailJump:
		c.compileExpr(f, s.Target)
		a.I(x86.JMP, x86.RegOp(x86.RAX, 8))

	case Memset:
		a.I(x86.LEA, x86.RegOp(x86.RDI, 8),
			x86.MemOp(x86.RBP, x86.RegNone, 1, f.arrayBase(s.Arr, s.Len), 8))
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.ImmOp(int64(s.Len), 4))
		a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
		a.Raw(0xf3, 0x48, 0xab) // rep stosq

	case CallPtr:
		c.compileExpr(f, s.Ptr)
		a.I(x86.PUSH, x86.RegOp(x86.RAX, 8))
		c.compileArgs(f, s.Args)
		a.I(x86.POP, x86.RegOp(x86.RAX, 8))
		a.I(x86.CALL, x86.RegOp(x86.RAX, 8))
	}
}

// compileSwitch emits a bounds check plus a jump through an 8-byte-entry
// table in .rodata — the construct of Section 2.
func (c *compiler) compileSwitch(f *Func, s Switch, epilogue string) {
	a := c.asm
	dflt := c.fresh("sd")
	end := c.fresh("se")
	n := len(s.Cases)
	caseLabels := make([]string, n)
	for i := range caseLabels {
		caseLabels[i] = c.fresh("sc")
	}

	c.compileExpr(f, s.X)
	a.I(x86.CMP, x86.RegOp(x86.RAX, 8), x86.ImmOp(int64(n-1), 4))
	a.Jcc(x86.CondA, dflt)
	tblAddr := c.lay.RodataBase + uint64(len(c.rodata))
	c.tables = append(c.tables, tablePatch{off: len(c.rodata), labels: caseLabels})
	c.rodata = append(c.rodata, make([]byte, 8*n)...)
	a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RegNone, x86.RAX, 8, int64(tblAddr), 8))
	a.I(x86.JMP, x86.RegOp(x86.RAX, 8))

	for i, cs := range s.Cases {
		a.Label(caseLabels[i])
		c.compileStmts(f, cs, epilogue)
		a.Jmp(end)
	}
	a.Label(dflt)
	c.compileStmts(f, s.Default, epilogue)
	a.Label(end)
}

// compileCond emits the comparison and jumps to notTaken when the
// condition is false.
func (c *compiler) compileCond(f *Func, cond Cond, notTaken string) {
	a := c.asm
	c.compileExpr(f, cond.R)
	a.I(x86.PUSH, x86.RegOp(x86.RAX, 8))
	c.compileExpr(f, cond.L)
	a.I(x86.POP, x86.RegOp(x86.RCX, 8))
	a.I(x86.CMP, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 8))
	var cc x86.Cond
	switch cond.Op {
	case CondEq:
		cc = x86.CondNE
	case CondNe:
		cc = x86.CondE
	case CondLt:
		cc = x86.CondAE
	case CondLe:
		cc = x86.CondA
	case CondGt:
		cc = x86.CondBE
	case CondGe:
		cc = x86.CondB
	}
	a.Jcc(cc, notTaken)
}

// compileArgs evaluates call arguments onto the stack and pops them into
// the System V argument registers.
func (c *compiler) compileArgs(f *Func, args []Expr) {
	a := c.asm
	argRegs := []x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX}
	if len(args) > len(argRegs) {
		c.fail("too many arguments (%d)", len(args))
		return
	}
	for _, arg := range args {
		c.compileExpr(f, arg)
		a.I(x86.PUSH, x86.RegOp(x86.RAX, 8))
	}
	for i := len(args) - 1; i >= 0; i-- {
		a.I(x86.POP, x86.RegOp(argRegs[i], 8))
	}
}

// compileExpr leaves the expression's value in rax.
func (c *compiler) compileExpr(f *Func, e Expr) {
	a := c.asm
	switch e := e.(type) {
	case Const:
		if int64(e) >= -1<<31 && int64(e) < 1<<31 {
			a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(int64(e), 4))
		} else {
			a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(int64(e), 8))
		}
	case Param:
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RBP, x86.RegNone, 1, f.paramOff(int(e)), 8))
	case Local:
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RBP, x86.RegNone, 1, f.slotOff(int(e)), 8))
	case LoadGlobal:
		addr, ok := c.globals[e.Name]
		if !ok {
			c.fail("unknown global %q", e.Name)
			return
		}
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.ImmOp(int64(addr), 4))
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RCX, x86.RegNone, 1, 0, 8))
	case Un:
		c.compileExpr(f, e.X)
		if e.Op == OpNeg {
			a.I(x86.NEG, x86.RegOp(x86.RAX, 8))
		} else {
			a.I(x86.NOT, x86.RegOp(x86.RAX, 8))
		}
	case Bin:
		c.compileExpr(f, e.R)
		a.I(x86.PUSH, x86.RegOp(x86.RAX, 8))
		c.compileExpr(f, e.L)
		a.I(x86.POP, x86.RegOp(x86.RCX, 8))
		switch e.Op {
		case OpAdd:
			a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 8))
		case OpSub:
			a.I(x86.SUB, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 8))
		case OpMul:
			a.I(x86.IMUL, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 8))
		case OpAnd:
			a.I(x86.AND, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 8))
		case OpOr:
			a.I(x86.OR, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 8))
		case OpXor:
			a.I(x86.XOR, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 8))
		case OpShl:
			a.I(x86.AND, x86.RegOp(x86.RCX, 8), x86.ImmOp(63, 1))
			a.I(x86.SHL, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 1))
		case OpShr:
			a.I(x86.AND, x86.RegOp(x86.RCX, 8), x86.ImmOp(63, 1))
			a.I(x86.SHR, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 1))
		case OpDiv, OpMod:
			// Guard against the two faulting divisors.
			safe := c.fresh("dv")
			a.I(x86.TEST, x86.RegOp(x86.RCX, 8), x86.RegOp(x86.RCX, 8))
			a.Jcc(x86.CondNE, safe)
			a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.ImmOp(1, 4))
			a.Label(safe)
			a.I(x86.CQO)
			a.I(x86.IDIV, x86.RegOp(x86.RCX, 8))
			if e.Op == OpMod {
				a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RDX, 8))
			}
		}
	case ArrayLoad:
		c.compileExpr(f, e.Index)
		a.I(x86.AND, x86.RegOp(x86.RAX, 8), x86.ImmOp(int64(e.Len-1), 4))
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RBP, x86.RAX, 8, f.arrayBase(e.Arr, e.Len), 8))
	case Call:
		c.compileArgs(f, e.Args)
		if e.Extern {
			stub, ok := c.stubs[e.Name]
			if !ok {
				c.fail("unknown extern %q", e.Name)
				return
			}
			a.CallAbs(stub)
		} else {
			a.Call("fn_" + e.Name)
		}
	case FuncAddr:
		a.LeaLabel(x86.RAX, "fn_"+e.Name)
	default:
		c.fail("cgen: unknown expression %T", e)
	}
}

func (c *compiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("cgen: "+format, args...)
	}
}
