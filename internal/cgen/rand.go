package cgen

import "math/rand"

// Features controls which constructs the random generator emits; the
// corpus uses it to shape suites after Table 1's directories (callbacks
// drive unresolved calls, switches drive resolved indirections, pthread
// calls drive concurrency rejections, unguarded stores drive
// unprovable-return-address rejections).
type Features struct {
	// StmtsPerFunc bounds the top-level statement count.
	StmtsPerFunc int
	// MaxDepth bounds statement nesting.
	MaxDepth int
	// Switches, Loops, Ifs, Arrays, Globals, ExternCalls, InternCalls are
	// per-mille probabilities of picking each construct.
	Switches, Loops, Ifs, Arrays, Globals, ExternCalls, InternCalls int
	// Callback inserts a call through a function-pointer parameter
	// (unresolvable, column C) somewhere in the function.
	Callback bool
	// CompJump inserts a computed jump through writable data on one
	// branch (unresolvable, column B).
	CompJump bool
	// Pthread inserts a pthread_create call (concurrency rejection).
	Pthread bool
	// Overflow inserts an unguarded array store with an unbounded index
	// (unprovable return address).
	Overflow bool
	// Externs lists external functions the generator may call.
	Externs []string
}

// DefaultFeatures returns a benign mix.
func DefaultFeatures() Features {
	return Features{
		StmtsPerFunc: 6,
		MaxDepth:     2,
		Switches:     120,
		Loops:        200,
		Ifs:          300,
		Arrays:       200,
		Globals:      150,
		ExternCalls:  120,
		InternCalls:  150,
		Externs:      []string{"malloc", "free", "printf", "memcpy", "strlen"},
	}
}

// generator carries per-function random state.
type generator struct {
	rng         *rand.Rand
	fe          Features
	f           *Func
	others      []string // callable sibling functions
	arrays      []arrayDecl
	counterBase Local // per-depth loop counters, never randomly assigned
}

type arrayDecl struct {
	base Local
	n    int
}

// GenFunc generates one random function. others names sibling functions
// that may be called (direct internal calls).
func GenFunc(rng *rand.Rand, name string, others []string, fe Features) *Func {
	g := &generator{rng: rng, fe: fe, others: others}
	f := &Func{Name: name, Params: 1 + rng.Intn(3)}
	g.f = f

	// A few scalar locals.
	nScalars := 2 + rng.Intn(3)
	f.Locals = nScalars

	// Optionally an array (power-of-two length), sometimes zero-filled
	// with the inline memset idiom (rep stosq).
	if g.pick(fe.Arrays) || fe.Overflow {
		n := 4 << rng.Intn(2) // 4 or 8 slots
		g.arrays = append(g.arrays, arrayDecl{base: Local(f.Locals), n: n})
		f.Locals += n
	}

	// Initialise scalars from parameters.
	for i := 0; i < nScalars; i++ {
		f.Body = append(f.Body, Assign{Dst: Local(i), Src: g.leafExpr()})
	}
	// Reserve one loop-counter slot per nesting depth, outside the
	// randomly assignable scalars, so generated loops always terminate:
	// a loop's body can only reset deeper counters, never its own.
	g.counterBase = Local(f.Locals)
	f.Locals += fe.MaxDepth + 1

	if len(g.arrays) > 0 && rng.Intn(2) == 0 {
		a := g.arrays[0]
		f.Body = append(f.Body, Memset{Arr: a.base, Len: a.n})
	}

	n := 1 + rng.Intn(fe.StmtsPerFunc)
	for i := 0; i < n; i++ {
		f.Body = append(f.Body, g.stmt(fe.MaxDepth, nScalars))
	}

	if fe.Pthread {
		f.Body = append(f.Body, ExprStmt{X: Call{Name: "pthread_create", Args: []Expr{Param(0)}, Extern: true}})
	}
	if fe.Callback {
		f.Body = append(f.Body, CallPtr{Ptr: Param(0), Args: []Expr{Const(1)}})
	}
	if fe.CompJump {
		f.Body = append(f.Body, If{
			Cond: Cond{Op: CondEq, L: Param(0), R: Const(0x5a5a)},
			Then: []Stmt{TailJump{Target: LoadGlobal{Name: "g1"}}},
		})
	}
	if fe.Overflow {
		arr := g.arrays[0]
		f.Body = append(f.Body, ArrayStore{Arr: arr.base, Len: arr.n, Index: Param(0), Src: Const(0), Guarded: false})
	}
	f.Body = append(f.Body, Return{X: g.valueExpr(1)})
	return f
}

func (g *generator) pick(permille int) bool { return g.rng.Intn(1000) < permille }

// leafExpr yields a parameter, local or constant.
func (g *generator) leafExpr() Expr {
	switch g.rng.Intn(3) {
	case 0:
		return Param(g.rng.Intn(g.f.Params))
	case 1:
		if g.f.Locals > 0 {
			return Local(g.rng.Intn(minInt(g.f.Locals, 4)))
		}
		return Const(int64(g.rng.Intn(100)))
	default:
		return Const(int64(g.rng.Intn(1000)))
	}
}

// valueExpr yields an expression of bounded depth.
func (g *generator) valueExpr(depth int) Expr {
	if depth <= 0 {
		return g.leafExpr()
	}
	switch g.rng.Intn(8) {
	case 0:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
		return Bin{Op: ops[g.rng.Intn(len(ops))], L: g.valueExpr(depth - 1), R: g.leafExpr()}
	case 1:
		return Un{Op: UnOp(g.rng.Intn(2)), X: g.valueExpr(depth - 1)}
	case 2:
		if len(g.arrays) > 0 {
			a := g.arrays[0]
			return ArrayLoad{Arr: a.base, Len: a.n, Index: g.leafExpr()}
		}
		return g.leafExpr()
	case 3:
		if g.pick(g.fe.Globals) {
			return LoadGlobal{Name: "g0"}
		}
		return g.leafExpr()
	case 4:
		return Bin{Op: OpDiv, L: g.leafExpr(), R: Const(int64(2 + g.rng.Intn(9)))}
	default:
		return g.leafExpr()
	}
}

func (g *generator) cond() Cond {
	return Cond{
		Op: CondOp(g.rng.Intn(6)),
		L:  g.leafExpr(),
		R:  Const(int64(g.rng.Intn(32))),
	}
}

// stmt yields a random statement of bounded depth; nScalars is the count
// of assignable scalar slots.
func (g *generator) stmt(depth, nScalars int) Stmt {
	r := g.rng.Intn(1000)
	fe := g.fe
	switch {
	case depth > 0 && r < fe.Switches:
		nCases := 2 + g.rng.Intn(3)
		cases := make([][]Stmt, nCases)
		for i := range cases {
			cases[i] = []Stmt{g.assign(nScalars)}
		}
		return Switch{X: g.leafExpr(), Cases: cases, Default: []Stmt{g.assign(nScalars)}}
	case depth > 0 && r < fe.Switches+fe.Loops:
		// A bounded counting loop over this depth's reserved counter:
		// counter = 0; while counter < k { body; counter++ }.
		iv := g.counterBase + Local(depth)
		k := int64(2 + g.rng.Intn(6))
		body := []Stmt{
			g.stmt(depth-1, nScalars),
			Assign{Dst: iv, Src: Bin{Op: OpAdd, L: Local(iv), R: Const(1)}},
		}
		return If{ // reset then loop, wrapped to keep the counter fresh
			Cond: Cond{Op: CondGe, L: Const(1), R: Const(0)},
			Then: []Stmt{
				Assign{Dst: iv, Src: Const(0)},
				While{Cond: Cond{Op: CondLt, L: Local(iv), R: Const(k)}, Body: body},
			},
		}
	case depth > 0 && r < fe.Switches+fe.Loops+fe.Ifs:
		return If{
			Cond: g.cond(),
			Then: []Stmt{g.stmt(depth-1, nScalars)},
			Else: []Stmt{g.assign(nScalars)},
		}
	case r < fe.Switches+fe.Loops+fe.Ifs+fe.Arrays && len(g.arrays) > 0:
		a := g.arrays[0]
		return ArrayStore{
			Arr: a.base, Len: a.n,
			Index:   g.leafExpr(),
			Src:     g.valueExpr(1),
			Guarded: true,
		}
	case r < fe.Switches+fe.Loops+fe.Ifs+fe.Arrays+fe.Globals:
		return StoreGlobal{Name: "g0", Src: g.valueExpr(1)}
	case r < fe.Switches+fe.Loops+fe.Ifs+fe.Arrays+fe.Globals+fe.ExternCalls && len(fe.Externs) > 0:
		name := fe.Externs[g.rng.Intn(len(fe.Externs))]
		return ExprStmt{X: Call{Name: name, Args: []Expr{g.leafExpr()}, Extern: true}}
	case r < fe.Switches+fe.Loops+fe.Ifs+fe.Arrays+fe.Globals+fe.ExternCalls+fe.InternCalls && len(g.others) > 0:
		callee := g.others[g.rng.Intn(len(g.others))]
		return Assign{Dst: Local(g.rng.Intn(nScalars)),
			Src: Call{Name: callee, Args: []Expr{g.leafExpr()}}}
	default:
		return g.assign(nScalars)
	}
}

func (g *generator) assign(nScalars int) Stmt {
	if nScalars < 1 {
		nScalars = 1
	}
	return Assign{Dst: Local(g.rng.Intn(nScalars)), Src: g.valueExpr(2)}
}

// GenProgram generates a program of n functions. Later functions may call
// earlier ones (no recursion), keeping the call graph a DAG as in the
// paper's context-free exploration.
func GenProgram(rng *rand.Rand, n int, fe Features) *Program {
	p := &Program{
		Globals: []Global{{Name: "g0", Size: 8}},
	}
	var names []string
	for i := 0; i < n; i++ {
		name := "f" + itoa(i)
		f := GenFunc(rng, name, names, fe)
		p.Funcs = append(p.Funcs, f)
		names = append(names, name)
	}
	// The entry calls the last (deepest) function.
	p.Entry = names[len(names)-1]
	return p
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
