// Package wire holds the low-level primitives shared by the repo's binary
// serialization formats (the interned-expression table of package expr,
// the Hoare-graph records of package hoare, and the shard/result
// containers of package dist): uvarint-based append helpers and a
// first-error-sticky Decoder cursor. Formats built on it are
// deterministic byte-for-byte — no maps are iterated, no pointers or
// timestamps are written — which is what lets re-serialization be the
// byte identity and lets coordinators diff worker output directly.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendString appends a length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// AppendUint64 appends v as 8 raw little-endian bytes (fixed width, for
// checksums and fingerprints where varint compression would obscure the
// format).
func AppendUint64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// Decoder is a cursor over wire bytes. The first malformed read records an
// error and turns every later read into a no-op returning zero values, so
// decode loops check Err once instead of once per field.
type Decoder struct {
	data []byte
	pos  int
	err  error
}

// NewDecoder returns a cursor over data, starting at offset 0.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Pos returns the current offset (the number of bytes consumed).
func (d *Decoder) Pos() int { return d.pos }

// Rest returns the unconsumed remainder of the input.
func (d *Decoder) Rest() []byte {
	if d.err != nil {
		return nil
	}
	return d.data[d.pos:]
}

// Skip advances the cursor by n bytes (a sub-decoder consumed them).
func (d *Decoder) Skip(n int) {
	if d.err != nil {
		return
	}
	if n < 0 || d.pos+n > len(d.data) {
		d.Failf("skip of %d bytes out of range", n)
		return
	}
	d.pos += n
}

// Failf records a decoding error at the current offset (sticky: only the
// first error is kept).
func (d *Decoder) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: offset %d: %s", d.pos, fmt.Sprintf(format, args...))
	}
}

// Byte reads one byte; what names the field in error messages.
func (d *Decoder) Byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.Failf("truncated %s", what)
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

// Uvarint reads one unsigned varint.
func (d *Decoder) Uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.Failf("bad uvarint %s", what)
		return 0
	}
	d.pos += n
	return v
}

// Len reads a uvarint that counts items or bytes still to come, rejecting
// values larger than the unconsumed input (each item costs at least one
// byte, so a larger count is corruption — caught here, before a decode
// loop allocates for it).
func (d *Decoder) Len(what string) int {
	v := d.Uvarint(what)
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.data)-d.pos) {
		d.Failf("%s count %d exceeds remaining input", what, v)
		return 0
	}
	return int(v)
}

// Bytes reads n raw bytes. The returned slice aliases the input.
func (d *Decoder) Bytes(n uint64, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n > math.MaxInt32 || d.pos+int(n) > len(d.data) {
		d.Failf("truncated %s (%d bytes)", what, n)
		return nil
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b
}

// String reads a length-prefixed string.
func (d *Decoder) String(what string) string {
	return string(d.Bytes(d.Uvarint(what+" length"), what))
}

// ByteSlice reads a length-prefixed byte slice, copied out of the input.
func (d *Decoder) ByteSlice(what string) []byte {
	b := d.Bytes(d.Uvarint(what+" length"), what)
	if d.err != nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Uint64 reads 8 raw little-endian bytes.
func (d *Decoder) Uint64(what string) uint64 {
	b := d.Bytes(8, what)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
