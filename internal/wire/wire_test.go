package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, 1<<63)
	buf = AppendString(buf, "hello")
	buf = AppendString(buf, "")
	buf = AppendBytes(buf, []byte{1, 2, 3})
	buf = AppendUint64(buf, 0xdeadbeefcafef00d)

	d := NewDecoder(buf)
	if v := d.Uvarint("a"); v != 0 {
		t.Fatalf("uvarint: %d", v)
	}
	if v := d.Uvarint("b"); v != 1<<63 {
		t.Fatalf("uvarint: %#x", v)
	}
	if s := d.String("c"); s != "hello" {
		t.Fatalf("string: %q", s)
	}
	if s := d.String("d"); s != "" {
		t.Fatalf("string: %q", s)
	}
	if b := d.ByteSlice("e"); !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("bytes: %v", b)
	}
	if v := d.Uint64("f"); v != 0xdeadbeefcafef00d {
		t.Fatalf("uint64: %#x", v)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if len(d.Rest()) != 0 {
		t.Fatalf("rest: %d bytes", len(d.Rest()))
	}
}

func TestDecoderTruncation(t *testing.T) {
	cases := map[string]func(d *Decoder){
		"byte":    func(d *Decoder) { d.Byte("x") },
		"uvarint": func(d *Decoder) { d.Uvarint("x") },
		"string":  func(d *Decoder) { d.String("x") },
		"uint64":  func(d *Decoder) { d.Uint64("x") },
	}
	for name, read := range cases {
		d := NewDecoder(nil)
		read(d)
		if d.Err() == nil {
			t.Errorf("%s on empty input must fail", name)
		}
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0x05}) // string length 5, but no bytes follow
	_ = d.String("s")
	first := d.Err()
	if first == nil {
		t.Fatal("truncated string must fail")
	}
	// Later reads are no-ops returning zero values, error unchanged.
	if v := d.Uvarint("later"); v != 0 {
		t.Fatalf("read after error: %d", v)
	}
	if b := d.Byte("later"); b != 0 {
		t.Fatalf("read after error: %d", b)
	}
	if d.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, d.Err())
	}
}

func TestDecoderLenGuard(t *testing.T) {
	// A count claiming more items than there are input bytes is rejected
	// before any decode loop trusts it.
	buf := AppendUvarint(nil, 1<<40)
	d := NewDecoder(buf)
	if n := d.Len("items"); n != 0 || d.Err() == nil {
		t.Fatalf("oversized count accepted: n=%d err=%v", n, d.Err())
	}
	// A plausible count passes.
	buf = AppendUvarint(nil, 3)
	buf = append(buf, 1, 2, 3)
	d = NewDecoder(buf)
	if n := d.Len("items"); n != 3 || d.Err() != nil {
		t.Fatalf("count: n=%d err=%v", n, d.Err())
	}
}

func TestDecoderSkipAndPos(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3, 4})
	d.Skip(3)
	if d.Pos() != 3 || d.Err() != nil {
		t.Fatalf("pos=%d err=%v", d.Pos(), d.Err())
	}
	d.Skip(2)
	if d.Err() == nil {
		t.Fatal("skip past end must fail")
	}
}

func TestFailfMentionsOffset(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	d.Byte("a")
	d.Failf("boom %d", 7)
	if err := d.Err(); err == nil || !strings.Contains(err.Error(), "offset 1") ||
		!strings.Contains(err.Error(), "boom 7") {
		t.Fatalf("error: %v", err)
	}
}
