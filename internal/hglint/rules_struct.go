// Structural rules: the graph-shape half of Definition 3.2. A Hoare graph
// is a transition system, so every edge must connect existing vertices,
// the initial state must exist and reach its vertices, terminal vertices
// must be terminal, and every non-terminal vertex must either continue or
// carry an unsoundness annotation explaining why exploration stopped.

package hglint

import (
	"repro/internal/hoare"
	"repro/internal/sem"
	"repro/internal/x86"
)

func init() {
	Register(Rule{
		Name:     "hg-entry",
		Severity: SevError,
		Doc:      "the entry vertex σI exists in the vertex set",
		Check:    checkEntry,
	})
	Register(Rule{
		Name:     "hg-dangling-edge",
		Severity: SevError,
		Doc:      "every edge's From and To name existing vertices",
		Check:    checkDanglingEdges,
	})
	Register(Rule{
		Name:     "hg-terminal-out-edge",
		Severity: SevError,
		Doc:      "the terminal vertices exit/halt have no out-edges",
		Check:    checkTerminalOutEdges,
	})
	Register(Rule{
		Name:     "hg-call-callee",
		Severity: SevError,
		Doc:      "call edges carry a callee name",
		Check:    checkCallCallee,
	})
	Register(Rule{
		Name:     "hg-edge-inst",
		Severity: SevError,
		Doc:      "edge instructions are recorded in the disassembly and match their source vertex",
		Check:    checkEdgeInst,
	})
	Register(Rule{
		Name:     "hg-no-successor",
		Severity: SevError,
		Doc:      "every non-terminal vertex has an out-edge or an unsoundness annotation",
		Check:    checkNoSuccessor,
	})
	Register(Rule{
		Name:     "hg-unreachable",
		Severity: SevWarn,
		Doc:      "every non-terminal vertex is reachable from the entry vertex",
		Check:    checkUnreachable,
	})
}

func checkEntry(ctx *Ctx) {
	g := ctx.Graph
	if g.EntryID == "" {
		ctx.Reportf("", g.FuncAddr, "graph has no entry vertex ID")
		return
	}
	if _, ok := g.Vertices[g.EntryID]; !ok {
		ctx.Reportf(g.EntryID, g.FuncAddr, "entry vertex %q is not in the vertex set", g.EntryID)
	}
}

func checkDanglingEdges(ctx *Ctx) {
	g := ctx.Graph
	for _, e := range g.SortedEdges() {
		if _, ok := g.Vertices[e.From]; !ok {
			ctx.Reportf(e.From, e.Inst.Addr, "edge %s -> %s leaves a vertex that does not exist", e.From, e.To)
		}
		if _, ok := g.Vertices[e.To]; !ok {
			ctx.Reportf(e.To, e.Inst.Addr, "edge %s -> %s ends at a vertex that does not exist", e.From, e.To)
		}
	}
}

func checkTerminalOutEdges(ctx *Ctx) {
	for _, e := range ctx.Graph.SortedEdges() {
		if e.From == hoare.ExitID || e.From == hoare.HaltID {
			ctx.Reportf(e.From, e.Inst.Addr, "terminal vertex %s has an out-edge to %s", e.From, e.To)
		}
	}
}

func checkCallCallee(ctx *Ctx) {
	for _, e := range ctx.Graph.SortedEdges() {
		if e.Kind == sem.KCall && e.Callee == "" {
			ctx.Reportf(e.From, e.Inst.Addr, "call edge %s -> %s has no callee name", e.From, e.To)
		}
	}
}

func checkEdgeInst(ctx *Ctx) {
	g := ctx.Graph
	for _, e := range g.SortedEdges() {
		if _, ok := g.Instrs[e.Inst.Addr]; !ok {
			ctx.Reportf(e.From, e.Inst.Addr, "edge instruction @%#x is not in the recovered disassembly", e.Inst.Addr)
		}
		if v, ok := g.Vertices[e.From]; ok && !isTerminal(e.From) && v.Addr != e.Inst.Addr {
			ctx.Reportf(e.From, e.Inst.Addr,
				"edge instruction @%#x does not match its source vertex address %#x", e.Inst.Addr, v.Addr)
		}
	}
}

// checkNoSuccessor enforces the progress half of overapproximation: a
// non-terminal vertex with no out-edge means exploration silently dropped
// a path. That is sound only when annotated (Line 13 of Algorithm 1).
func checkNoSuccessor(ctx *Ctx) {
	g := ctx.Graph
	annotated := map[uint64]bool{}
	for _, a := range g.Annotations {
		annotated[a.Addr] = true
	}
	succs := ctx.successors()
	for _, v := range g.SortedVertices() {
		if isTerminal(v.ID) {
			continue
		}
		if len(succs[v.ID]) == 0 && !annotated[v.Addr] {
			ctx.Reportf(v.ID, v.Addr, "non-terminal vertex has no out-edge and no unsoundness annotation")
		}
	}
}

func checkUnreachable(ctx *Ctx) {
	reach := ctx.Reachable()
	for _, v := range ctx.Graph.SortedVertices() {
		// exit/halt are created eagerly and may legitimately be isolated
		// (e.g. a function that never returns leaves exit unreachable).
		if isTerminal(v.ID) {
			continue
		}
		if !reach[v.ID] {
			ctx.Reportf(v.ID, v.Addr, "vertex is unreachable from the entry vertex")
		}
	}
}

func isTerminal(id hoare.VertexID) bool {
	return id == hoare.ExitID || id == hoare.HaltID
}

// isIndirect mirrors the explorer's classification: a jmp/call through a
// register or memory operand (not an immediate).
func isIndirect(inst x86.Inst) bool {
	if inst.Mn != x86.JMP && inst.Mn != x86.CALL {
		return false
	}
	return len(inst.Ops) == 1 && inst.Ops[0].Kind != x86.OpImm
}
