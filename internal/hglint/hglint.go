// Package hglint statically analyses extracted Hoare graphs for
// well-formedness — the "typechecker before the prover". The expensive
// Step-2 Hoare-triple check assumes a structurally sound graph: every
// edge ends at a real vertex, terminal vertices are terminal, the memory
// forests encode satisfiable region relations, and the invariants carry
// the clauses the sanity properties rest on (the return-address clause,
// bounded indirect control flow). A graph violating any of these would
// surface deep inside triple.Check as an opaque theorem failure; hglint
// catches it first, cheaply, with a named diagnostic.
//
// The analyzer is a pluggable rule registry. Each Rule inspects one
// aspect of the graph through a shared Ctx (which lazily computes
// reachability and memoizes solver verdicts) and reports Diagnostics with
// a severity. Lint runs every enabled rule and returns a Report whose
// diagnostic order is deterministic: errors first, then warnings, then
// info, each sorted by rule name, vertex, address and message — so a
// report is directly comparable across runs and serializations.
//
// Rule catalog at a glance (see the rules_*.go files):
//
//	structural    hg-entry hg-dangling-edge hg-terminal-out-edge
//	              hg-call-callee hg-no-successor hg-edge-inst
//	              hg-unreachable(warn)
//	memory model  mm-empty-tree mm-dup-region mm-cycle
//	              mm-partial-overlap mm-relation-refuted
//	predicate     pred-range-inverted pred-range-vacuous(warn)
//	              pred-noncanonical pred-bot(warn)
//	              hg-ret-integrity hg-unbounded-jump
//	solver        pred-inconsistent
package hglint

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/hoare"
	"repro/internal/pred"
	"repro/internal/solver"
)

// Severity classifies a diagnostic. Errors make a graph unfit for Step 2;
// warnings flag suspicious-but-sound shapes; info is advisory.
type Severity uint8

// The severities, ordered so higher is more severe.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarn:
		return "warn"
	default:
		return "info"
	}
}

// MarshalText renders the severity for JSON encoding.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a severity name.
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "error":
		*s = SevError
	case "warn":
		*s = SevWarn
	case "info":
		*s = SevInfo
	default:
		return fmt.Errorf("hglint: unknown severity %q", b)
	}
	return nil
}

// Diagnostic is one finding: a named rule violation at a vertex or
// instruction address.
type Diagnostic struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Vertex   string   `json:"vertex,omitempty"`
	Addr     uint64   `json:"addr,omitempty"`
	Msg      string   `json:"msg"`
}

// String renders the diagnostic in a grep-friendly single line.
func (d Diagnostic) String() string {
	loc := ""
	if d.Vertex != "" {
		loc = " vertex " + d.Vertex
	}
	if d.Addr != 0 {
		loc += fmt.Sprintf(" @%#x", d.Addr)
	}
	return fmt.Sprintf("%s: %s:%s %s", d.Severity, d.Rule, loc, d.Msg)
}

// Rule is one registered well-formedness check.
type Rule struct {
	// Name identifies the rule in diagnostics and in Options.Rules.
	Name string
	// Severity is the severity every diagnostic of this rule carries.
	Severity Severity
	// Doc is a one-line description for the rule catalog.
	Doc string
	// Check inspects the graph via ctx and reports violations.
	Check func(ctx *Ctx)
}

// registry holds the rules in registration order (the rules_*.go files'
// init functions, which Go runs in file-name order — deterministic).
var registry []Rule

// Register adds a rule to the registry. It panics on a duplicate name —
// rules are registered from init functions, so a duplicate is a
// programming error.
func Register(r Rule) {
	for _, have := range registry {
		if have.Name == r.Name {
			panic("hglint: duplicate rule " + r.Name)
		}
	}
	registry = append(registry, r)
}

// Rules returns the registered rule catalog sorted by name.
func Rules() []Rule {
	out := append([]Rule(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// options is the resolved option set of one Lint call.
type options struct {
	cache *solver.Cache
	only  map[string]bool
}

// Option tunes a Lint call.
type Option func(*options)

// WithCache memoizes the solver-backed rules' Compare calls in the given
// cache — pass the pipeline's shared cache so lint verdicts reuse (and
// warm) the same memo table as the lift itself.
func WithCache(c *solver.Cache) Option {
	return func(o *options) { o.cache = c }
}

// Only restricts the run to the named rules (unknown names are ignored;
// an empty list means all rules).
func Only(names ...string) Option {
	return func(o *options) {
		if len(names) == 0 {
			return
		}
		o.only = map[string]bool{}
		for _, n := range names {
			o.only[n] = true
		}
	}
}

// Ctx is the shared analysis context one rule set runs in. Rules read the
// graph and report through it; reachability sets are computed lazily and
// shared across rules.
type Ctx struct {
	// Graph is the graph under analysis.
	Graph *hoare.Graph

	cache   *solver.Cache
	rule    *Rule
	diags   []Diagnostic
	fwd     map[hoare.VertexID]bool
	toExit  map[hoare.VertexID]bool
	succs   map[hoare.VertexID][]hoare.VertexID
	succsOK bool
}

// Reportf records one diagnostic for the running rule. vertex and addr
// may be zero when the finding is graph-global.
func (c *Ctx) Reportf(vertex hoare.VertexID, addr uint64, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Rule:     c.rule.Name,
		Severity: c.rule.Severity,
		Vertex:   string(vertex),
		Addr:     addr,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Compare answers a solver query, through the shared memo cache when one
// was supplied.
func (c *Ctx) Compare(p *pred.Pred, r0, r1 solver.Region) solver.Result {
	if c.cache != nil {
		res, _ := c.cache.Compare(p, r0, r1)
		return res
	}
	return solver.Compare(p, r0, r1)
}

// successors builds (once) the forward adjacency of the graph.
func (c *Ctx) successors() map[hoare.VertexID][]hoare.VertexID {
	if !c.succsOK {
		c.succs = map[hoare.VertexID][]hoare.VertexID{}
		for _, e := range c.Graph.Edges {
			c.succs[e.From] = append(c.succs[e.From], e.To)
		}
		c.succsOK = true
	}
	return c.succs
}

// Reachable returns the set of vertices reachable from the entry vertex
// along edges (computed once, shared by rules).
func (c *Ctx) Reachable() map[hoare.VertexID]bool {
	if c.fwd == nil {
		c.fwd = map[hoare.VertexID]bool{}
		if _, ok := c.Graph.Vertices[c.Graph.EntryID]; ok {
			work := []hoare.VertexID{c.Graph.EntryID}
			c.fwd[c.Graph.EntryID] = true
			succs := c.successors()
			for len(work) > 0 {
				v := work[len(work)-1]
				work = work[:len(work)-1]
				for _, t := range succs[v] {
					if !c.fwd[t] {
						c.fwd[t] = true
						work = append(work, t)
					}
				}
			}
		}
	}
	return c.fwd
}

// ReachesExit returns the set of vertices from which ExitID is reachable
// (reverse reachability, computed once).
func (c *Ctx) ReachesExit() map[hoare.VertexID]bool {
	if c.toExit == nil {
		c.toExit = map[hoare.VertexID]bool{}
		preds := map[hoare.VertexID][]hoare.VertexID{}
		for _, e := range c.Graph.Edges {
			preds[e.To] = append(preds[e.To], e.From)
		}
		work := []hoare.VertexID{hoare.ExitID}
		c.toExit[hoare.ExitID] = true
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]
			for _, p := range preds[v] {
				if !c.toExit[p] {
					c.toExit[p] = true
					work = append(work, p)
				}
			}
		}
	}
	return c.toExit
}

// Report is the outcome of linting one graph.
type Report struct {
	// Func and Addr identify the analysed graph.
	Func string `json:"func"`
	Addr uint64 `json:"addr"`
	// Diagnostics holds every finding in deterministic order: by severity
	// (errors first), then rule name, vertex, address, message.
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Count returns the number of diagnostics at exactly the given severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Errors returns the number of error-severity diagnostics.
func (r *Report) Errors() int { return r.Count(SevError) }

// HasErrors reports whether any diagnostic is an error — the fail-fast
// signal the pipeline and Step 2 precheck act on.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

// Clean reports whether the graph produced no diagnostics at all.
func (r *Report) Clean() bool { return len(r.Diagnostics) == 0 }

// JSON renders the report as indented JSON (the -json output of
// cmd/hglint).
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// A Report contains only marshalable fields; this is unreachable.
		panic("hglint: " + err.Error())
	}
	return b
}

// String renders the report as human-readable lines, one per diagnostic.
func (r *Report) String() string {
	if r.Clean() {
		return fmt.Sprintf("%s: clean\n", r.Func)
	}
	out := ""
	for _, d := range r.Diagnostics {
		out += fmt.Sprintf("%s: %s\n", r.Func, d)
	}
	return out
}

// Lint runs every registered (or selected) rule over the graph and
// returns the report. A nil graph yields a single hg-entry error rather
// than a panic, so callers may lint unconditionally.
func Lint(g *hoare.Graph, opts ...Option) *Report {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	if g == nil {
		return &Report{Diagnostics: []Diagnostic{{
			Rule: "hg-entry", Severity: SevError, Msg: "no graph",
		}}}
	}
	ctx := &Ctx{Graph: g, cache: o.cache}
	for i := range registry {
		r := &registry[i]
		if o.only != nil && !o.only[r.Name] {
			continue
		}
		ctx.rule = r
		r.Check(ctx)
	}
	sort.SliceStable(ctx.diags, func(i, j int) bool {
		a, b := ctx.diags[i], ctx.diags[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Vertex != b.Vertex {
			return a.Vertex < b.Vertex
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Msg < b.Msg
	})
	return &Report{Func: g.FuncName, Addr: g.FuncAddr, Diagnostics: ctx.diags}
}
