// Predicate rules: the invariants must carry the clauses the sanity
// properties rest on, in canonical form. Return-address integrity is
// witnessed by the equality clause ∗[…] = a_r (the symbolic return
// address) on every vertex that can still reach exit — without it the
// Step-2 theorem for the returning vertex cannot be proven. Bounded
// control flow is witnessed per indirect transfer: either its target set
// was resolved or the graph says so with an unsoundness annotation.

package hglint

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/hoare"
	"repro/internal/pred"
)

func init() {
	Register(Rule{
		Name:     "pred-range-inverted",
		Severity: SevError,
		Doc:      "no interval clause has lo > hi",
		Check:    perVertexModel(checkRangeInverted),
	})
	Register(Rule{
		Name:     "pred-range-vacuous",
		Severity: SevWarn,
		Doc:      "no interval clause spans the full 64-bit domain",
		Check:    perVertexModel(checkRangeVacuous),
	})
	Register(Rule{
		Name:     "pred-noncanonical",
		Severity: SevError,
		Doc:      "clauses are in canonical form (no interval on a constant, no empty memory region)",
		Check:    perVertexModel(checkNoncanonical),
	})
	Register(Rule{
		Name:     "pred-bot",
		Severity: SevWarn,
		Doc:      "no vertex invariant is ⊥ (an unsatisfiable invariant marks dead exploration)",
		Check:    perVertexModel(checkBot),
	})
	Register(Rule{
		Name:     "hg-ret-integrity",
		Severity: SevError,
		Doc:      "every vertex that can reach exit carries the return-address clause ∗[…] = a_r",
		Check:    checkRetIntegrity,
	})
	Register(Rule{
		Name:     "hg-unbounded-jump",
		Severity: SevError,
		Doc:      "every indirect control transfer is resolved or carries an unsoundness annotation",
		Check:    checkUnboundedJump,
	})
}

func checkRangeInverted(ctx *Ctx, v *hoare.Vertex) {
	v.State.Pred.Ranges(func(e *expr.Expr, r pred.Range) {
		if r.Lo > r.Hi {
			ctx.Reportf(v.ID, v.Addr, "interval clause on %s is inverted: %#x > %#x", e, r.Lo, r.Hi)
		}
	})
}

func checkRangeVacuous(ctx *Ctx, v *hoare.Vertex) {
	v.State.Pred.Ranges(func(e *expr.Expr, r pred.Range) {
		if r.Lo == 0 && r.Hi == ^uint64(0) {
			ctx.Reportf(v.ID, v.Addr, "interval clause on %s is vacuous (full domain)", e)
		}
	})
}

// checkNoncanonical flags clause shapes pred's own constructors never
// produce: an interval on a constant word (AddRange folds those into ⊥ or
// drops them) and a memory clause over an empty region. A graph carrying
// one was built or deserialized outside the canonical path.
func checkNoncanonical(ctx *Ctx, v *hoare.Vertex) {
	v.State.Pred.Ranges(func(e *expr.Expr, r pred.Range) {
		if _, ok := e.AsWord(); ok {
			ctx.Reportf(v.ID, v.Addr, "interval clause on constant %s is non-canonical", e)
		}
	})
	v.State.Pred.MemEntries(func(m pred.MemEntry) {
		if m.Size < 1 {
			ctx.Reportf(v.ID, v.Addr, "memory clause on [%s,%d] has a non-positive size", m.Addr, m.Size)
		}
	})
}

func checkBot(ctx *Ctx, v *hoare.Vertex) {
	if v.State.Pred.IsBot() {
		ctx.Reportf(v.ID, v.Addr, "vertex invariant is ⊥")
	}
}

// checkRetIntegrity requires, on every non-terminal vertex from which
// exit is reachable, some memory-equality clause whose value is the
// symbolic return address a_r. That clause is what CheckReturn consumes
// when the path's ret finally pops the stack; losing it anywhere on the
// way makes return-address integrity unprovable.
func checkRetIntegrity(ctx *Ctx) {
	g := ctx.Graph
	if g.RetSym == "" {
		return
	}
	want := expr.V(g.RetSym).Key()
	reachesExit := ctx.ReachesExit()
	for _, v := range g.SortedVertices() {
		if isTerminal(v.ID) || v.State == nil || !reachesExit[v.ID] {
			continue
		}
		found := false
		v.State.Pred.MemEntries(func(m pred.MemEntry) {
			if m.Val.Key() == want {
				found = true
			}
		})
		if !found {
			ctx.Reportf(v.ID, v.Addr,
				"vertex reaches exit but carries no return-address clause ∗[…] = %s", g.RetSym)
		}
	}
}

// checkUnboundedJump enforces bounded control flow per instruction:
// every indirect jmp/call in the recovered disassembly either had its
// target set bounded (g.Resolved) or the graph admits the unsoundness
// with an annotation at that address.
func checkUnboundedJump(ctx *Ctx) {
	g := ctx.Graph
	annotated := map[uint64]bool{}
	for _, a := range g.Annotations {
		annotated[a.Addr] = true
	}
	addrs := make([]uint64, 0, len(g.Instrs))
	for a := range g.Instrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		inst := g.Instrs[a]
		if !isIndirect(inst) {
			continue
		}
		if !g.Resolved[a] && !annotated[a] {
			ctx.Reportf("", a, "indirect %s @%#x is neither resolved nor annotated", inst.Mn, a)
		}
	}
}
