// Memory-model rules: forest well-formedness (Section 3.2). A memory
// model is a forest of trees — nodes of mutually aliasing regions with
// enclosed children, siblings separate. Well-formedness means: no empty
// nodes, no region recorded twice (a region has exactly one position in
// R(M)), enclosure is acyclic, no two live regions may necessarily
// partially overlap (Definition 3.7 destroys such regions at insertion),
// and no relation the model asserts is refuted by the solver under the
// vertex's own predicate.

package hglint

import (
	"fmt"

	"repro/internal/hoare"
	"repro/internal/memmodel"
	"repro/internal/solver"
)

func init() {
	Register(Rule{
		Name:     "mm-empty-tree",
		Severity: SevError,
		Doc:      "no memory tree node is empty",
		Check:    perVertexModel(checkEmptyTree),
	})
	Register(Rule{
		Name:     "mm-dup-region",
		Severity: SevError,
		Doc:      "no region occurs twice in a memory forest",
		Check:    perVertexModel(checkDupRegion),
	})
	Register(Rule{
		Name:     "mm-cycle",
		Severity: SevError,
		Doc:      "enclosure is acyclic: no region encloses itself",
		Check:    perVertexModel(checkCycle),
	})
	Register(Rule{
		Name:     "mm-partial-overlap",
		Severity: SevError,
		Doc:      "no two live regions necessarily partially overlap",
		Check:    perVertexModel(checkPartialOverlap),
	})
	Register(Rule{
		Name:     "mm-relation-refuted",
		Severity: SevError,
		Doc:      "no asserted region relation is refuted by the solver",
		Check:    perVertexModel(checkRelationRefuted),
	})
}

// perVertexModel lifts a per-vertex forest check over every vertex that
// carries a state, in deterministic vertex order.
func perVertexModel(check func(ctx *Ctx, v *hoare.Vertex)) func(*Ctx) {
	return func(ctx *Ctx) {
		for _, v := range ctx.Graph.SortedVertices() {
			if v.State == nil {
				continue
			}
			check(ctx, v)
		}
	}
}

// regionKey mirrors the forest's canonical region identity.
func regionKey(r solver.Region) string {
	return fmt.Sprintf("%s#%d", r.Addr.Key(), r.Size)
}

func checkEmptyTree(ctx *Ctx, v *hoare.Vertex) {
	var walk func(f memmodel.Forest)
	walk = func(f memmodel.Forest) {
		for _, t := range f {
			if len(t.Regions) == 0 {
				ctx.Reportf(v.ID, v.Addr, "memory tree node has no regions")
			}
			walk(t.Kids)
		}
	}
	walk(v.State.Mem)
}

func checkDupRegion(ctx *Ctx, v *hoare.Vertex) {
	seen := map[string]bool{}
	for _, r := range v.State.Mem.AllRegions(nil) {
		k := regionKey(r)
		if seen[k] {
			ctx.Reportf(v.ID, v.Addr, "region %s occurs twice in the memory forest", k)
		}
		seen[k] = true
	}
}

// checkCycle walks each tree with its ancestor path: a region key that
// reappears below itself would make enclosure cyclic (a region enclosed
// in itself), which no concrete state can satisfy.
func checkCycle(ctx *Ctx, v *hoare.Vertex) {
	path := map[string]bool{}
	var walk func(f memmodel.Forest)
	walk = func(f memmodel.Forest) {
		for _, t := range f {
			var keys []string
			cyclic := false
			for _, r := range t.Regions {
				k := regionKey(r)
				if path[k] {
					ctx.Reportf(v.ID, v.Addr, "region %s is enclosed in itself", k)
					cyclic = true
				}
				keys = append(keys, k)
			}
			if cyclic {
				continue // don't recurse through an already-reported cycle
			}
			for _, k := range keys {
				path[k] = true
			}
			walk(t.Kids)
			for _, k := range keys {
				delete(path, k)
			}
		}
	}
	walk(v.State.Mem)
}

// checkPartialOverlap asks the solver, under the vertex's own predicate,
// whether any pair of live regions necessarily partially overlaps.
// Definition 3.7 destroys possibly-partially-overlapping regions at
// insertion, so a surviving necessary overlap means the model tracks two
// regions no concrete state can hold simultaneously as separate objects.
func checkPartialOverlap(ctx *Ctx, v *hoare.Vertex) {
	regions := v.State.Mem.AllRegions(nil)
	p := v.State.Pred
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			res := ctx.Compare(p, regions[i], regions[j])
			if res.Partial == solver.Yes {
				ctx.Reportf(v.ID, v.Addr, "live regions %s and %s necessarily partially overlap",
					regionKey(regions[i]), regionKey(regions[j]))
			}
		}
	}
}

// checkRelationRefuted verifies every relation the model asserts is at
// least possible: an aliasing pair the solver proves non-aliasing, a
// separate pair it proves overlapping, or an enclosure it proves outside
// makes the model unsatisfiable — R(M) would hold in no concrete state.
func checkRelationRefuted(ctx *Ctx, v *hoare.Vertex) {
	p := v.State.Pred
	for _, rel := range v.State.Mem.RelationsDetailed() {
		res := ctx.Compare(p, rel.A, rel.B)
		refuted := false
		switch rel.Op {
		case "≡":
			refuted = res.Alias == solver.No
		case "⋈":
			refuted = res.Separate == solver.No
		case "⪯":
			// A child may sit anywhere inside its parent, including
			// exactly on top of it, so enclosure is refuted only when
			// both strict enclosure and aliasing are impossible.
			refuted = res.Enclosed == solver.No && res.Alias == solver.No
		}
		if refuted {
			ctx.Reportf(v.ID, v.Addr, "model asserts %s %s %s but the solver refutes it",
				regionKey(rel.A), rel.Op, regionKey(rel.B))
		}
	}
}
