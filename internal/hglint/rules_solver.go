// Solver-backed quick-checks: per-vertex clause consistency. The
// predicate's memory-equality clauses name regions; when the solver
// proves two of those regions necessarily alias, their value clauses
// must agree — otherwise the invariant assigns two different values to
// one concrete region and is unsatisfiable, which would make the vertex's
// Step-2 theorem vacuous rather than meaningful. The queries go through
// Ctx.Compare, so a supplied memo cache (the pipeline's shared one) is
// both consulted and warmed.

package hglint

import (
	"repro/internal/hoare"
	"repro/internal/pred"
	"repro/internal/solver"
)

func init() {
	Register(Rule{
		Name:     "pred-inconsistent",
		Severity: SevError,
		Doc:      "no two memory-equality clauses assign different values to necessarily aliasing regions",
		Check:    perVertexModel(checkPredConsistent),
	})
}

func checkPredConsistent(ctx *Ctx, v *hoare.Vertex) {
	p := v.State.Pred
	var entries []pred.MemEntry
	p.MemEntries(func(m pred.MemEntry) { entries = append(entries, m) })
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			a, b := entries[i], entries[j]
			res := ctx.Compare(p,
				solver.Region{Addr: a.Addr, Size: uint64(a.Size)},
				solver.Region{Addr: b.Addr, Size: uint64(b.Size)})
			if res.Alias == solver.Yes && a.Val.Key() != b.Val.Key() {
				ctx.Reportf(v.ID, v.Addr,
					"aliasing regions [%s,%d] and [%s,%d] carry different values %s and %s",
					a.Addr, a.Size, b.Addr, b.Size, a.Val, b.Val)
			}
		}
	}
}
