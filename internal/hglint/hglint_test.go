package hglint

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/expr"
	"repro/internal/hoare"
	"repro/internal/memmodel"
	"repro/internal/pred"
	"repro/internal/sem"
	"repro/internal/solver"
	"repro/internal/x86"
)

// liftScenario lifts one named corpus scenario and returns its graph.
func liftScenario(t *testing.T, name string) *hoare.Graph {
	t.Helper()
	scens, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scens {
		if s.Name != name {
			continue
		}
		l := core.New(s.Image, core.DefaultConfig())
		fr := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
		if fr.Graph == nil {
			t.Fatalf("scenario %s: no graph (status %s)", name, fr.Status)
		}
		return fr.Graph
	}
	t.Fatalf("no scenario %q", name)
	return nil
}

// TestScenariosLintClean is the acceptance gate: every graph produced by
// lifting the corpus scenarios is hglint-clean at severity error.
func TestScenariosLintClean(t *testing.T) {
	scens, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	cache := solver.NewCache()
	for _, s := range scens {
		l := core.New(s.Image, core.DefaultConfig())
		fr := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
		if fr.Status != core.StatusLifted || fr.Graph == nil {
			// A failed lift stops exploring mid-graph (Line 13's fail
			// path), so its partial graph is not expected to be clean.
			t.Logf("%s: status %s — skipped", s.Name, fr.Status)
			continue
		}
		rep := Lint(fr.Graph, WithCache(cache))
		for _, d := range rep.Diagnostics {
			if d.Severity == SevError {
				t.Errorf("%s: %s", s.Name, d)
			} else {
				t.Logf("%s: %s", s.Name, d)
			}
		}
	}
}

// hasDiag reports whether the report contains a diagnostic of the named
// rule (optionally also matching a message substring).
func hasDiag(rep *Report, rule, msgContains string) bool {
	for _, d := range rep.Diagnostics {
		if d.Rule == rule && strings.Contains(d.Msg, msgContains) {
			return true
		}
	}
	return false
}

// TestCorruptionsFire deliberately corrupts a lifted graph and asserts
// the matching named diagnostic fires.
func TestCorruptionsFire(t *testing.T) {
	t.Run("dangling-edge", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		g.Edges = append(g.Edges, hoare.Edge{From: "nosuch", To: "alsonosuch"})
		rep := Lint(g)
		if !hasDiag(rep, "hg-dangling-edge", "does not exist") {
			t.Fatalf("expected hg-dangling-edge, got:\n%s", rep)
		}
	})

	t.Run("terminal-out-edge", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		g.Edges = append(g.Edges, hoare.Edge{From: hoare.ExitID, To: g.EntryID})
		rep := Lint(g)
		if !hasDiag(rep, "hg-terminal-out-edge", "out-edge") {
			t.Fatalf("expected hg-terminal-out-edge, got:\n%s", rep)
		}
	})

	t.Run("call-without-callee", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		for i := range g.Edges {
			if g.Edges[i].Kind == sem.KCall {
				g.Edges[i].Callee = ""
			}
		}
		// Even if the scenario had no call edge, synthesize one between
		// existing vertices so the rule has something to bite on.
		entry := g.Vertices[g.EntryID]
		g.Edges = append(g.Edges, hoare.Edge{
			From: g.EntryID, To: hoare.HaltID, Kind: sem.KCall,
			Inst: g.Instrs[entry.Addr],
		})
		rep := Lint(g)
		if !hasDiag(rep, "hg-call-callee", "no callee") {
			t.Fatalf("expected hg-call-callee, got:\n%s", rep)
		}
	})

	t.Run("stripped-ret-clause", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		want := expr.V(g.RetSym).Key()
		stripped := 0
		for _, v := range g.Vertices {
			if v.State == nil {
				continue
			}
			var drop []pred.MemEntry
			v.State.Pred.MemEntries(func(m pred.MemEntry) {
				if m.Val.Key() == want {
					drop = append(drop, m)
				}
			})
			for _, m := range drop {
				v.State.Pred.DropMem(m.Addr, m.Size)
				stripped++
			}
		}
		if stripped == 0 {
			t.Fatal("no return-address clause found to strip")
		}
		rep := Lint(g)
		if !hasDiag(rep, "hg-ret-integrity", "no return-address clause") {
			t.Fatalf("expected hg-ret-integrity, got:\n%s", rep)
		}
	})

	t.Run("overlapping-live-regions", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		v := g.Vertices[g.EntryID]
		rsp0 := expr.V("rsp0")
		// Two sibling (claimed-separate) regions at constant offsets 0 and
		// 4, both 8 bytes: they necessarily partially overlap.
		v.State.Mem = memmodel.Forest{
			memmodel.Leaf(memmodel.NewRegion(rsp0, 8)),
			memmodel.Leaf(memmodel.NewRegion(expr.Add(rsp0, expr.Word(4)), 8)),
		}
		rep := Lint(g)
		if !hasDiag(rep, "mm-partial-overlap", "partially overlap") {
			t.Fatalf("expected mm-partial-overlap, got:\n%s", rep)
		}
		if !hasDiag(rep, "mm-relation-refuted", "refutes") {
			t.Fatalf("expected mm-relation-refuted, got:\n%s", rep)
		}
	})

	t.Run("missing-entry", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		g.EntryID = "nonexistent"
		rep := Lint(g)
		if !hasDiag(rep, "hg-entry", "not in the vertex set") {
			t.Fatalf("expected hg-entry, got:\n%s", rep)
		}
	})

	t.Run("no-successor", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		g.Vertices["stranded"] = &hoare.Vertex{ID: "stranded", Addr: 0xdead}
		rep := Lint(g)
		if !hasDiag(rep, "hg-no-successor", "no out-edge") {
			t.Fatalf("expected hg-no-successor, got:\n%s", rep)
		}
		if !hasDiag(rep, "hg-unreachable", "unreachable") {
			t.Fatalf("expected hg-unreachable warn, got:\n%s", rep)
		}
	})

	t.Run("dup-region-and-cycle", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		v := g.Vertices[g.EntryID]
		rsp0 := expr.V("rsp0")
		parent := memmodel.Leaf(memmodel.NewRegion(rsp0, 8))
		parent.Kids = memmodel.Forest{memmodel.Leaf(memmodel.NewRegion(rsp0, 8))}
		v.State.Mem = memmodel.Forest{parent}
		rep := Lint(g)
		if !hasDiag(rep, "mm-cycle", "enclosed in itself") {
			t.Fatalf("expected mm-cycle, got:\n%s", rep)
		}
		if !hasDiag(rep, "mm-dup-region", "twice") {
			t.Fatalf("expected mm-dup-region, got:\n%s", rep)
		}
	})

	t.Run("inverted-range", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		v := g.Vertices[g.EntryID]
		v.State.Pred.AddRange(expr.V("rdi0"), pred.Range{Lo: 5, Hi: 2})
		rep := Lint(g)
		if !hasDiag(rep, "pred-range-inverted", "inverted") {
			t.Fatalf("expected pred-range-inverted, got:\n%s", rep)
		}
	})

	t.Run("inconsistent-aliasing-values", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		v := g.Vertices[g.EntryID]
		p := v.State.Pred
		// x is pinned to 4, so rsp0+x necessarily aliases rsp0+4 — but the
		// two clauses disagree on the region's value.
		x := expr.V("x")
		p.AddRange(x, pred.Range{Lo: 4, Hi: 4})
		p.WriteMem(expr.Add(expr.V("rsp0"), x), 8, expr.Word(1))
		p.WriteMem(expr.Add(expr.V("rsp0"), expr.Word(4)), 8, expr.Word(2))
		rep := Lint(g, WithCache(solver.NewCache()))
		if !hasDiag(rep, "pred-inconsistent", "different values") {
			t.Fatalf("expected pred-inconsistent, got:\n%s", rep)
		}
	})

	t.Run("unbounded-indirect-jump", func(t *testing.T) {
		g := liftScenario(t, "ret2win")
		// Record an indirect jmp through rax in the disassembly with
		// neither a Resolved entry nor an annotation.
		g.Instrs[0xbad0] = x86.Inst{
			Addr: 0xbad0, Mn: x86.JMP,
			Ops: []x86.Operand{x86.RegOp(x86.RAX, 8)},
		}
		rep := Lint(g)
		if !hasDiag(rep, "hg-unbounded-jump", "neither resolved nor annotated") {
			t.Fatalf("expected hg-unbounded-jump, got:\n%s", rep)
		}
	})
}

// TestAnnotatedStopIsClean checks the other half of hg-no-successor and
// hg-unbounded-jump: an annotated unsoundness is an accepted stop, not a
// diagnostic.
func TestAnnotatedStopIsClean(t *testing.T) {
	g := liftScenario(t, "ret2win")
	g.Vertices["stopped"] = &hoare.Vertex{ID: "stopped", Addr: 0xbad0}
	g.Instrs[0xbad0] = x86.Inst{
		Addr: 0xbad0, Mn: x86.JMP,
		Ops: []x86.Operand{x86.RegOp(x86.RAX, 8)},
	}
	g.Annotate(0xbad0, hoare.AnnUnresolvedJump, "rip evaluates to rax0")
	rep := Lint(g, Only("hg-no-successor", "hg-unbounded-jump"))
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("annotated stop should be clean, got:\n%s", rep)
	}
}

func TestLintNilGraph(t *testing.T) {
	rep := Lint(nil)
	if !rep.HasErrors() || !hasDiag(rep, "hg-entry", "no graph") {
		t.Fatalf("nil graph should yield an hg-entry error, got:\n%s", rep)
	}
}

func TestRulesCatalog(t *testing.T) {
	want := []string{
		"hg-entry", "hg-dangling-edge", "hg-terminal-out-edge",
		"hg-call-callee", "hg-no-successor", "hg-unreachable", "hg-edge-inst",
		"mm-empty-tree", "mm-dup-region", "mm-cycle", "mm-partial-overlap",
		"mm-relation-refuted",
		"pred-range-inverted", "pred-range-vacuous", "pred-noncanonical",
		"pred-bot", "hg-ret-integrity", "hg-unbounded-jump",
		"pred-inconsistent",
	}
	have := map[string]Rule{}
	for _, r := range Rules() {
		have[r.Name] = r
		if r.Doc == "" {
			t.Errorf("rule %s has no doc line", r.Name)
		}
		if r.Check == nil {
			t.Errorf("rule %s has no check", r.Name)
		}
	}
	for _, name := range want {
		if _, ok := have[name]; !ok {
			t.Errorf("rule %s not registered", name)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d rules, want %d", len(have), len(want))
	}
}

// TestReportDeterministicJSON checks the diagnostic ordering contract
// (errors first, then by rule/vertex/addr/msg) and the JSON shape.
func TestReportDeterministicJSON(t *testing.T) {
	g := liftScenario(t, "ret2win")
	g.Edges = append(g.Edges, hoare.Edge{From: "nosuch", To: "alsonosuch"})
	g.Vertices["stranded"] = &hoare.Vertex{ID: "stranded", Addr: 0xdead}

	rep1 := Lint(g)
	rep2 := Lint(g)
	j1, j2 := rep1.JSON(), rep2.JSON()
	if string(j1) != string(j2) {
		t.Fatal("lint reports of the same graph differ across runs")
	}
	for i := 1; i < len(rep1.Diagnostics); i++ {
		if rep1.Diagnostics[i-1].Severity < rep1.Diagnostics[i].Severity {
			t.Fatalf("diagnostics not ordered by severity:\n%s", rep1)
		}
	}

	var decoded Report
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if decoded.Func != g.FuncName || len(decoded.Diagnostics) != len(rep1.Diagnostics) {
		t.Fatalf("decoded report mismatch: %+v", decoded)
	}
	for i, d := range decoded.Diagnostics {
		if d != rep1.Diagnostics[i] {
			t.Fatalf("diagnostic %d changed across JSON round-trip: %+v != %+v", i, d, rep1.Diagnostics[i])
		}
	}
}

func TestOnlyFilter(t *testing.T) {
	g := liftScenario(t, "ret2win")
	g.Edges = append(g.Edges, hoare.Edge{From: "nosuch", To: "alsonosuch"})
	rep := Lint(g, Only("hg-terminal-out-edge"))
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("filtered lint should not report other rules, got:\n%s", rep)
	}
}

func TestSeverityText(t *testing.T) {
	for _, s := range []Severity{SevError, SevWarn, SevInfo} {
		b, err := s.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := back.UnmarshalText(b); err != nil || back != s {
			t.Fatalf("severity %v does not round-trip (%q, %v)", s, b, err)
		}
	}
	var bad Severity
	if err := bad.UnmarshalText([]byte("fatal")); err == nil {
		t.Fatal("unknown severity should not parse")
	}
}
