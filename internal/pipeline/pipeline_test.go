package pipeline

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hglint"
	"repro/internal/obs"
	"repro/internal/solver"
)

// smallDir builds a small deterministic corpus directory for scheduling
// tests.
func smallDir(t *testing.T) []Task {
	t.Helper()
	shape := corpus.DirShape{
		Name: "pipetest", Kind: corpus.KindLibFunc, Lifted: 6,
		MinStmts: 2, MaxStmts: 8, Helpers: 1,
	}
	dir, err := corpus.BuildDirectory(shape, 42)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]Task, 0, len(dir.Units))
	for _, u := range dir.Units {
		cfg := core.DefaultConfig()
		if u.Budget > 0 {
			cfg.MaxStates = u.Budget
		}
		tasks = append(tasks, Task{
			Name:   u.Name,
			Img:    u.Image,
			Addr:   u.FuncAddr,
			Binary: u.Kind == corpus.KindBinary,
			Cfg:    &cfg,
		})
	}
	return tasks
}

// TestForEach checks the pool primitive: every index runs exactly once, at
// any worker count, including the inline jobs==1 path and empty input.
func TestForEach(t *testing.T) {
	for _, jobs := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 53
		var counts [n]atomic.Int32
		ForEach(jobs, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("jobs=%d: fn(%d) ran %d times", jobs, i, got)
			}
		}
	}
	ForEach(4, 0, func(i int) { t.Fatalf("fn called for n=0") })
}

// TestRunDeterministic lifts the same corpus at one and at eight workers
// and requires identical statuses, counts and graph statistics — the
// Table 1 acceptance criterion. The memo cache must see hits in both runs.
func TestRunDeterministic(t *testing.T) {
	tasks := smallDir(t)
	serial := RunCtx(context.Background(), tasks, Options{Jobs: 1})
	wide := RunCtx(context.Background(), tasks, Options{Jobs: 8})

	if serial.Lifted != wide.Lifted || serial.Unprovable != wide.Unprovable ||
		serial.Concurrency != wide.Concurrency || serial.Timeouts != wide.Timeouts ||
		serial.Errors != wide.Errors || serial.Panics != wide.Panics {
		t.Fatalf("status counts differ: jobs=1 %+v jobs=8 %+v", serial, wide)
	}
	for i := range serial.Results {
		s, w := serial.Results[i], wide.Results[i]
		if s.Name != w.Name || s.Status != w.Status {
			t.Fatalf("result %d differs: jobs=1 %s/%s jobs=8 %s/%s",
				i, s.Name, s.Status, w.Name, w.Status)
		}
		if s.Stats.Graph != w.Stats.Graph {
			t.Fatalf("%s: graph stats differ: jobs=1 %+v jobs=8 %+v",
				s.Name, s.Stats.Graph, w.Stats.Graph)
		}
	}
	if serial.Stats.Sem.SolverQueries != wide.Stats.Sem.SolverQueries {
		t.Fatalf("solver query counts differ: %d vs %d",
			serial.Stats.Sem.SolverQueries, wide.Stats.Sem.SolverQueries)
	}
	for _, sum := range []*Summary{serial, wide} {
		if sum.Stats.Sem.SolverHits == 0 {
			t.Fatalf("expected memo cache hits, got none (of %d queries)",
				sum.Stats.Sem.SolverQueries)
		}
	}
}

// TestRunSharedImageRace lifts many tasks that share one image with a wide
// pool: under -race this is the regression test for the concurrent decode
// cache in internal/image.
func TestRunSharedImageRace(t *testing.T) {
	s, err := corpus.WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]Task, 12)
	for i := range tasks {
		tasks[i] = Task{Name: s.Name, Img: s.Image, Addr: s.FuncAddr}
	}
	sum := RunCtx(context.Background(), tasks, Options{Jobs: 4})
	if sum.Lifted != len(tasks) {
		t.Fatalf("lifted %d of %d: %+v", sum.Lifted, len(tasks), sum)
	}
}

// TestRunCooperativeTimeout gives a real lift a vanishing wall-clock
// budget: the lifter's own per-step check must report the timeout (the
// deterministic path — the watchdog's budget is far larger).
func TestRunCooperativeTimeout(t *testing.T) {
	s, err := corpus.WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{{Name: s.Name, Img: s.Image, Addr: s.FuncAddr}}
	sum := RunCtx(context.Background(), tasks, Options{Jobs: 1, Timeout: time.Nanosecond})
	r := sum.Results[0]
	if r.Status != core.StatusTimeout {
		t.Fatalf("status = %s, want %s", r.Status, core.StatusTimeout)
	}
	if sum.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", sum.Timeouts)
	}
	// The cooperative path still returns the function result it abandoned.
	if r.Func == nil {
		t.Fatalf("cooperative timeout lost the function result")
	}
}

// TestRunWatchdogTimeout wedges the lift goroutine before it can make any
// exploration step (so the cooperative check never runs) and requires the
// watchdog to abandon it.
func TestRunWatchdogTimeout(t *testing.T) {
	s, err := corpus.WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	hook := func(string) { <-release }
	testHookLiftStart.Store(&hook)
	defer func() { testHookLiftStart.Store(nil); close(release) }()

	tasks := []Task{{Name: s.Name, Img: s.Image, Addr: s.FuncAddr}}
	start := time.Now()
	sum := RunCtx(context.Background(), tasks, Options{Jobs: 1, Timeout: 10 * time.Millisecond})
	if got := sum.Results[0].Status; got != core.StatusTimeout {
		t.Fatalf("status = %s, want %s", got, core.StatusTimeout)
	}
	// The watchdog budget is 2*Timeout + 250ms of slack; well under the
	// blocked lift's (infinite) runtime but comfortably above zero.
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("watchdog took %s", e)
	}
}

// TestRunPanicRecovery panics inside a lift and requires the scheduler to
// convert it into a StatusPanic result without losing the other tasks.
func TestRunPanicRecovery(t *testing.T) {
	s, err := corpus.WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	hook := func(name string) {
		if name == "boom" {
			panic("lift exploded")
		}
	}
	testHookLiftStart.Store(&hook)
	defer testHookLiftStart.Store(nil)

	tasks := []Task{
		{Name: s.Name, Img: s.Image, Addr: s.FuncAddr},
		{Name: "boom", Img: s.Image, Addr: s.FuncAddr},
		{Name: s.Name, Img: s.Image, Addr: s.FuncAddr},
	}
	sum := RunCtx(context.Background(), tasks, Options{Jobs: 2})
	if sum.Panics != 1 || sum.Lifted != 2 {
		t.Fatalf("panics=%d lifted=%d, want 1 and 2", sum.Panics, sum.Lifted)
	}
	r := sum.Results[1]
	if r.Status != core.StatusPanic {
		t.Fatalf("status = %s, want %s", r.Status, core.StatusPanic)
	}
	if !strings.Contains(r.PanicMsg, "lift exploded") {
		t.Fatalf("PanicMsg = %q", r.PanicMsg)
	}
}

// TestRunSharedCache shares one cache across two Runs: the second run over
// the same corpus must answer almost every query from the memo.
func TestRunSharedCache(t *testing.T) {
	tasks := smallDir(t)
	cache := solver.NewCache()
	first := RunCtx(context.Background(), tasks, Options{Jobs: 2, Cache: cache})
	second := RunCtx(context.Background(), tasks, Options{Jobs: 2, Cache: cache})
	if second.Cache != cache || first.Cache != cache {
		t.Fatalf("Run did not adopt the provided cache")
	}
	if q := second.Stats.Sem.SolverQueries; q == 0 || second.Stats.Sem.SolverHits != q {
		t.Fatalf("second run: %d hits of %d queries, want all hits",
			second.Stats.Sem.SolverHits, q)
	}
	cs := cache.Stats()
	if cs.Queries == 0 || cs.Hits == 0 || cs.Entries == 0 {
		t.Fatalf("cache stats empty: %+v", cs)
	}
	if cs.HitRate() <= 0 || cs.HitRate() > 1 {
		t.Fatalf("hit rate %v out of range", cs.HitRate())
	}
}

// TestRunCtxCancelBeforeStart cancels the context before RunCtx: every
// task must report StatusCancelled without a single lift running.
func TestRunCtxCancelBeforeStart(t *testing.T) {
	tasks := smallDir(t)
	var started atomic.Int32
	hook := func(string) { started.Add(1) }
	testHookLiftStart.Store(&hook)
	defer testHookLiftStart.Store(nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum := RunCtx(ctx, tasks, Options{Jobs: 2})
	if sum.Cancelled != len(tasks) {
		t.Fatalf("Cancelled = %d, want %d", sum.Cancelled, len(tasks))
	}
	for i, r := range sum.Results {
		if r.Status != core.StatusCancelled {
			t.Fatalf("task %d: status %s, want %s", i, r.Status, core.StatusCancelled)
		}
	}
	if n := started.Load(); n != 0 {
		t.Fatalf("%d lifts started after cancellation", n)
	}
}

// TestRunCtxCancelInFlight cancels the context from inside the first lift:
// the in-flight lift must observe the cancellation cooperatively (or be
// abandoned by the scheduler's select) and report StatusCancelled, and no
// later task may report success.
func TestRunCtxCancelInFlight(t *testing.T) {
	tasks := smallDir(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := func(string) { cancel() }
	testHookLiftStart.Store(&hook)
	defer testHookLiftStart.Store(nil)

	sum := RunCtx(ctx, tasks, Options{Jobs: 1})
	if sum.Cancelled != len(tasks) {
		t.Fatalf("Cancelled = %d of %d; statuses: %v", sum.Cancelled, len(tasks), statuses(sum))
	}
	if sum.Lifted != 0 {
		t.Fatalf("%d tasks lifted after cancellation", sum.Lifted)
	}
}

func statuses(sum *Summary) []core.Status {
	out := make([]core.Status, len(sum.Results))
	for i, r := range sum.Results {
		out[i] = r.Status
	}
	return out
}

// TestRunLint turns on the scheduler's hglint pass: every successfully
// lifted graph gets a report, the corpus graphs are error-free, and the
// diagnostics ride the tracer as lint events.
func TestRunLint(t *testing.T) {
	tasks := smallDir(t)
	ring := obs.NewRing(4096)
	sum := RunCtx(context.Background(), tasks, Options{
		Jobs: 2, Lint: true, Tracer: obs.NewTracer(ring),
	})
	if sum.LintErrors != 0 {
		for _, r := range sum.Results {
			for _, rep := range r.Lint {
				t.Errorf("%s:\n%s", r.Name, rep)
			}
		}
		t.Fatalf("corpus graphs should be hglint-clean, got %d errors", sum.LintErrors)
	}
	reports := 0
	for _, r := range sum.Results {
		if r.Status == core.StatusLifted && len(r.Lint) == 0 {
			t.Errorf("%s: lifted but no lint report", r.Name)
		}
		reports += len(r.Lint)
	}
	if reports == 0 {
		t.Fatal("no lint reports at all")
	}
	// Error diagnostics would have been mirrored onto the tracer.
	for _, e := range ring.Events() {
		if e.Kind == obs.KLint && e.Status == hglint.SevError.String() {
			t.Errorf("lint event: %s %s", e.Func, e.Detail)
		}
	}
}

// TestRunLintOff is the default-off contract: without Options.Lint no
// result carries a report.
func TestRunLintOff(t *testing.T) {
	tasks := smallDir(t)[:2]
	sum := RunCtx(context.Background(), tasks, Options{Jobs: 1})
	for _, r := range sum.Results {
		if r.Lint != nil {
			t.Fatalf("%s: lint report without Options.Lint", r.Name)
		}
	}
	if sum.LintErrors != 0 {
		t.Fatalf("LintErrors = %d without Options.Lint", sum.LintErrors)
	}
}
