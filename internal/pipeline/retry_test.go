package pipeline

// Tests for the retry policy: rescheduling of panicked and wedged lifts,
// quarantine on budget exhaustion, escalating per-attempt timeouts, and —
// the accounting regression — that retried lifts never double-count into
// Summary totals.

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestRetryRecoversInjectedPanics makes every task panic on its first
// attempt: with one retry the corpus must end exactly as an untroubled
// run, with the retries visible only in the accounting.
func TestRetryRecoversInjectedPanics(t *testing.T) {
	tasks := smallDir(t)
	baseline := RunCtx(context.Background(), tasks, Options{Jobs: 1})

	inj := faultinject.New(faultinject.Config{Seed: 5, PanicRate: 1, MaxAttemptFaults: 1})
	ring := obs.NewRing(1 << 16)
	sum := RunCtx(context.Background(), tasks, Options{
		Jobs:   2,
		Retry:  RetryPolicy{MaxAttempts: 2},
		Faults: inj,
		Tracer: obs.NewTracer(ring),
	})
	if sum.Panics != 0 || sum.Quarantined != 0 {
		t.Fatalf("panics=%d quarantined=%d after recovery, want 0/0", sum.Panics, sum.Quarantined)
	}
	if sum.Retried != len(tasks) {
		t.Fatalf("Retried = %d, want %d (every task's first attempt panicked)", sum.Retried, len(tasks))
	}
	for i, r := range sum.Results {
		if r.Attempts != 2 {
			t.Fatalf("result %d: attempts = %d, want 2", i, r.Attempts)
		}
		if r.Status != baseline.Results[i].Status {
			t.Fatalf("result %d: status %s, baseline %s", i, r.Status, baseline.Results[i].Status)
		}
	}
	// Aggregates carry only the final attempts.
	if sum.Stats.Graph != baseline.Stats.Graph {
		t.Fatalf("graph totals differ from the untroubled run:\n retried %+v\nbaseline %+v",
			sum.Stats.Graph, baseline.Stats.Graph)
	}
	if sum.Stats.Sem.SolverQueries != baseline.Stats.Sem.SolverQueries {
		t.Fatalf("solver query totals differ: %d vs baseline %d",
			sum.Stats.Sem.SolverQueries, baseline.Stats.Sem.SolverQueries)
	}
	// The retries rode the tracer.
	retries := 0
	for _, e := range ring.Events() {
		if e.Kind == obs.KRetry {
			retries++
		}
	}
	if retries != len(tasks) {
		t.Fatalf("%d retry events, want %d", retries, len(tasks))
	}
}

// TestRetryNoDoubleCount is the accounting regression test: attempt 0
// runs under an already-expired deadline (cooperative timeout, with a
// nonzero partial Stats record), the escalated attempt 1 succeeds. The
// Summary totals must be identical to an untroubled run — the abandoned
// attempts' statistics land in RetryStats, never in Stats.
func TestRetryNoDoubleCount(t *testing.T) {
	tasks := smallDir(t)
	baseline := RunCtx(context.Background(), tasks, Options{Jobs: 1})

	sum := RunCtx(context.Background(), tasks, Options{
		Jobs:    1,
		Timeout: time.Nanosecond,
		// Attempt 1 runs under 1ns * 3e10 = 30s — effectively unbounded.
		Retry: RetryPolicy{MaxAttempts: 2, TimeoutScale: 3e10},
	})
	if sum.Timeouts != 0 {
		t.Fatalf("timeouts = %d after escalation, want 0", sum.Timeouts)
	}
	if sum.Retried != len(tasks) {
		t.Fatalf("Retried = %d, want %d (every first attempt's deadline was expired)",
			sum.Retried, len(tasks))
	}
	if sum.Stats.Graph != baseline.Stats.Graph {
		t.Fatalf("graph totals double-counted:\n retried %+v\nbaseline %+v",
			sum.Stats.Graph, baseline.Stats.Graph)
	}
	if sum.Stats.Sem.SolverQueries != baseline.Stats.Sem.SolverQueries {
		t.Fatalf("solver query totals differ: %d vs baseline %d",
			sum.Stats.Sem.SolverQueries, baseline.Stats.Sem.SolverQueries)
	}
	// The abandoned attempts really happened and are reported separately.
	if sum.RetryStats.Wall == 0 {
		t.Fatal("RetryStats.Wall = 0: abandoned attempts lost their accounting")
	}
	for i, r := range sum.Results {
		if r.Attempts != 2 {
			t.Fatalf("result %d: attempts = %d, want 2", i, r.Attempts)
		}
		if r.RetryStats.Wall == 0 {
			t.Fatalf("result %d: abandoned attempt has no wall time", i)
		}
	}
}

// TestRetryQuarantine exhausts the budget: every attempt panics, so the
// task must surface its final status, be flagged quarantined, and emit
// retry + quarantine events.
func TestRetryQuarantine(t *testing.T) {
	s, err := corpus.WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{{Name: s.Name, Img: s.Image, Addr: s.FuncAddr}}
	inj := faultinject.New(faultinject.Config{Seed: 1, PanicRate: 1})
	ring := obs.NewRing(256)
	sum := RunCtx(context.Background(), tasks, Options{
		Jobs:   1,
		Retry:  RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
		Faults: inj,
		Tracer: obs.NewTracer(ring),
	})
	r := sum.Results[0]
	if r.Status != core.StatusPanic || !r.Quarantined || r.Attempts != 3 {
		t.Fatalf("status=%s quarantined=%t attempts=%d, want panic/true/3",
			r.Status, r.Quarantined, r.Attempts)
	}
	if sum.Quarantined != 1 || sum.Panics != 1 {
		t.Fatalf("Quarantined=%d Panics=%d, want 1/1", sum.Quarantined, sum.Panics)
	}
	var retries, quarantines int
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.KRetry:
			retries++
		case obs.KQuarantine:
			quarantines++
		}
	}
	if retries != 2 || quarantines != 1 {
		t.Fatalf("retry events=%d quarantine events=%d, want 2/1", retries, quarantines)
	}
}

// TestRetryRecoversStalledLift wedges the first attempt (an injected
// stall, no exploration steps at all) so only the watchdog can abandon
// it; the retry must then lift normally.
func TestRetryRecoversStalledLift(t *testing.T) {
	s, err := corpus.WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{{Name: s.Name, Img: s.Image, Addr: s.FuncAddr}}
	inj := faultinject.New(faultinject.Config{
		Seed: 1, StallRate: 1, MaxAttemptFaults: 1, StallFor: time.Minute,
	})
	sum := RunCtx(context.Background(), tasks, Options{
		Jobs:    1,
		Timeout: 20 * time.Millisecond,
		Retry:   RetryPolicy{MaxAttempts: 2},
		Faults:  inj,
	})
	r := sum.Results[0]
	if r.Status != core.StatusLifted || r.Attempts != 2 {
		t.Fatalf("status=%s attempts=%d, want lifted after 2 attempts", r.Status, r.Attempts)
	}
	if sum.Timeouts != 0 || sum.Retried != 1 {
		t.Fatalf("Timeouts=%d Retried=%d, want 0/1", sum.Timeouts, sum.Retried)
	}
	if inj.Fired().Stalls != 1 {
		t.Fatalf("stalls fired = %d, want 1", inj.Fired().Stalls)
	}
}

// TestRetryDisabledByDefault keeps the zero policy inert: a panicking
// lift fails once, with no retries and no quarantine flag.
func TestRetryDisabledByDefault(t *testing.T) {
	s, err := corpus.WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{{Name: s.Name, Img: s.Image, Addr: s.FuncAddr}}
	inj := faultinject.New(faultinject.Config{Seed: 1, PanicRate: 1})
	sum := RunCtx(context.Background(), tasks, Options{Jobs: 1, Faults: inj})
	r := sum.Results[0]
	if r.Status != core.StatusPanic || r.Attempts != 1 || r.Quarantined {
		t.Fatalf("status=%s attempts=%d quarantined=%t, want panic/1/false",
			r.Status, r.Attempts, r.Quarantined)
	}
	if sum.Retried != 0 || sum.Quarantined != 0 {
		t.Fatalf("Retried=%d Quarantined=%d without a policy", sum.Retried, sum.Quarantined)
	}
}

// TestRetryBackoffHonoursCancellation cancels the run while a task sits
// in its retry backoff: the task must come back cancelled promptly, not
// after the full backoff.
func TestRetryBackoffHonoursCancellation(t *testing.T) {
	s, err := corpus.WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{{Name: s.Name, Img: s.Image, Addr: s.FuncAddr}}
	inj := faultinject.New(faultinject.Config{Seed: 1, PanicRate: 1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	sum := RunCtx(ctx, tasks, Options{
		Jobs:   1,
		Retry:  RetryPolicy{MaxAttempts: 2, Backoff: time.Hour},
		Faults: inj,
	})
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("backoff ignored cancellation: run took %s", e)
	}
	if got := sum.Results[0].Status; got != core.StatusCancelled {
		t.Fatalf("status = %s, want %s", got, core.StatusCancelled)
	}
}
