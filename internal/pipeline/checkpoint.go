// Checkpoint/resume for corpus runs. Every completed lift is an
// independent theorem, so a corpus run is a set of per-unit outcomes with
// no cross-unit state beyond the (semantics-free) solver memo cache — a
// crashed run loses nothing but the units it had not finished. The
// Checkpoint journal makes that concrete: an append-only JSONL file of
// completed Results, rewritten atomically (tmp + rename) on every append,
// so the on-disk journal is a valid prefix of the run at every instant and
// a kill at any point leaves either the old or the new journal, never a
// torn one. Resuming a run restores journalled results by task name and
// lifts only the remainder; the merged Summary is byte-identical (in its
// Canonical rendering) to an uninterrupted run's.
package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hoare"
	"repro/internal/sem"
)

// journalRecord is the JSONL wire form of one completed Result. Statuses
// are stored as their table-legend strings so journals stay readable and
// stable across enum reorderings.
type journalRecord struct {
	Scope       string      `json:"scope,omitempty"`
	Name        string      `json:"name"`
	Status      string      `json:"status"`
	PanicMsg    string      `json:"panic,omitempty"`
	Attempts    int         `json:"attempts,omitempty"`
	Quarantined bool        `json:"quarantined,omitempty"`
	LintErrors  int         `json:"lint_errors,omitempty"`
	Stats       statsRecord `json:"stats"`
	RetryStats  statsRecord `json:"retry_stats,omitempty"`
}

// statsRecord serialises a Stats (graph statistics, machine counters and
// wall time) with explicit keys.
type statsRecord struct {
	Graph  hoare.Stats  `json:"graph"`
	Sem    sem.Counters `json:"sem"`
	WallNS int64        `json:"wall_ns"`
}

func toStatsRecord(s Stats) statsRecord {
	return statsRecord{Graph: s.Graph, Sem: s.Sem, WallNS: int64(s.Wall)}
}

func (sr statsRecord) stats() Stats {
	return Stats{Graph: sr.Graph, Sem: sr.Sem, Wall: time.Duration(sr.WallNS)}
}

// statusFromString inverts core.Status.String for journal loading.
func statusFromString(s string) (core.Status, bool) {
	for _, st := range []core.Status{
		core.StatusLifted, core.StatusUnprovableRet, core.StatusConcurrency,
		core.StatusTimeout, core.StatusError, core.StatusPanic, core.StatusCancelled,
	} {
		if st.String() == s {
			return st, true
		}
	}
	return 0, false
}

// Checkpoint is a crash-safe journal of completed pipeline Results.
// Concurrent workers append through one mutex; each append rewrites the
// whole journal to <path>.tmp and renames it over <path>, so readers (and
// a resuming run) always see a complete, parseable file. An append that
// fails to persist keeps its record in memory and is retried by the next
// append — the journal on disk is always a prefix of the completed work.
//
// A Checkpoint may be shared by several Runs (a Table 1 sweep runs one
// per directory); Scoped gives each run a namespace so equal task names
// in different runs do not collide.
type Checkpoint struct {
	mu      sync.Mutex
	path    string
	scope   string // set on scoped views; "" on the root
	root    *Checkpoint
	records []journalRecord
	byKey   map[string]int
	skipped int
	wErr    error
	faults  *faultinject.Injector
}

// OpenCheckpoint opens the journal at path: an existing file is resumed
// (completed results restore without lifting), a missing one starts a
// fresh journal. This is the single entrypoint the batch commands use —
// callers that want a guaranteed-fresh run delete the file first, which
// keeps the create/resume decision with the file rather than a flag.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	if _, err := os.Stat(path); err == nil {
		return resumeCheckpoint(path)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return createCheckpoint(path)
}

// createCheckpoint starts a fresh journal at path, truncating any
// existing one.
func createCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, byKey: map[string]int{}}
	if err := c.flushLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// resumeCheckpoint loads the journal at path, tolerating a missing file
// (an interrupted run may have died before its first append) and a
// truncated or corrupt tail (a crash mid-write of a non-atomic copy):
// loading stops at the first unparseable line and Skipped reports how
// many lines were dropped.
func resumeCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, byKey: map[string]int{}}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			c.skipped++
			break
		}
		if _, ok := statusFromString(rec.Status); !ok {
			c.skipped++
			break
		}
		c.addLocked(rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return c, nil
}

// Scoped returns a view of the journal whose lookups and appends are
// namespaced under the given scope. Views share the parent's file,
// records and lock.
func (c *Checkpoint) Scoped(scope string) *Checkpoint {
	if c == nil {
		return nil
	}
	root := c.rootCheckpoint()
	return &Checkpoint{scope: scope, root: root}
}

func (c *Checkpoint) rootCheckpoint() *Checkpoint {
	if c.root != nil {
		return c.root
	}
	return c
}

// SetFaults installs a fault injector whose CheckpointWriteErr decisions
// are consulted on every append (tests and the CI smoke job).
func (c *Checkpoint) SetFaults(inj *faultinject.Injector) {
	if c == nil {
		return
	}
	root := c.rootCheckpoint()
	root.mu.Lock()
	root.faults = inj
	root.mu.Unlock()
}

// Skipped reports how many journal lines were dropped as unparseable
// while resuming an existing journal.
func (c *Checkpoint) Skipped() int {
	if c == nil {
		return 0
	}
	root := c.rootCheckpoint()
	root.mu.Lock()
	defer root.mu.Unlock()
	return root.skipped
}

// Len reports how many results the journal holds.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	root := c.rootCheckpoint()
	root.mu.Lock()
	defer root.mu.Unlock()
	return len(root.records)
}

// Err returns the first append error, if any. Append failures do not fail
// the run (the record is retried on the next append), so batch commands
// surface this at exit.
func (c *Checkpoint) Err() error {
	if c == nil {
		return nil
	}
	root := c.rootCheckpoint()
	root.mu.Lock()
	defer root.mu.Unlock()
	return root.wErr
}

func key(scope, name string) string { return scope + "\x00" + name }

func (c *Checkpoint) addLocked(rec journalRecord) {
	k := key(rec.Scope, rec.Name)
	if i, ok := c.byKey[k]; ok {
		c.records[i] = rec
		return
	}
	c.byKey[k] = len(c.records)
	c.records = append(c.records, rec)
}

// Lookup restores the journalled result for the named task, if present.
// Restored results carry the recorded status, statistics and retry
// accounting, but no graphs or lint reports.
func (c *Checkpoint) Lookup(name string) (Result, bool) {
	if c == nil {
		return Result{}, false
	}
	root := c.rootCheckpoint()
	root.mu.Lock()
	defer root.mu.Unlock()
	i, ok := root.byKey[key(c.scope, name)]
	if !ok {
		return Result{}, false
	}
	rec := root.records[i]
	status, ok := statusFromString(rec.Status)
	if !ok {
		return Result{}, false
	}
	return Result{
		Name:              rec.Name,
		Status:            status,
		PanicMsg:          rec.PanicMsg,
		Attempts:          rec.Attempts,
		Quarantined:       rec.Quarantined,
		Stats:             rec.Stats.stats(),
		RetryStats:        rec.RetryStats.stats(),
		Restored:          true,
		JournalLintErrors: rec.LintErrors,
	}, true
}

// Append journals one completed result and atomically persists the
// journal. On a write error the record stays in memory (a later append
// retries it) and the error is both returned and remembered for Err.
func (c *Checkpoint) Append(r Result) error {
	root := c.rootCheckpoint()
	root.mu.Lock()
	defer root.mu.Unlock()
	root.addLocked(journalRecord{
		Scope:       c.scope,
		Name:        r.Name,
		Status:      r.Status.String(),
		PanicMsg:    r.PanicMsg,
		Attempts:    r.Attempts,
		Quarantined: r.Quarantined,
		LintErrors:  r.LintErrors(),
		Stats:       toStatsRecord(r.Stats),
		RetryStats:  toStatsRecord(r.RetryStats),
	})
	if root.faults != nil {
		if err := root.faults.CheckpointWriteErr(r.Name); err != nil {
			root.wErr = err
			return err
		}
	}
	if err := root.flushLocked(); err != nil {
		root.wErr = err
		return err
	}
	return nil
}

// flushLocked writes the full journal to <path>.tmp, syncs it and renames
// it over <path>. The rename is atomic on POSIX filesystems, so a crash
// at any point leaves a complete journal (old or new) behind.
func (c *Checkpoint) flushLocked() error {
	tmp := c.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range c.records {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Path returns the journal's file path.
func (c *Checkpoint) Path() string {
	if c == nil {
		return ""
	}
	return filepath.Clean(c.rootCheckpoint().path)
}

// Canonical renders the Summary as a deterministic byte string: results
// in task order with their status, retry accounting and
// scheduling-independent statistics, then the corpus totals. Wall-clock
// fields, memo-cache hit counts and the statistics of abandoned attempts
// are excluded — time varies run to run, hits depend on how warm the
// shared cache was when each lift ran (a resumed run replays part of the
// corpus from the journal), and a cooperatively timed-out attempt's
// partial statistics depend on where the deadline landed. Everything
// included is a pure function of the inputs, so an interrupted-and-
// resumed run renders byte-identically to an uninterrupted one.
func (s *Summary) Canonical() string {
	var b []byte
	app := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	for _, r := range s.Results {
		g := r.Stats.Graph
		app("%s status=%s attempts=%d quarantined=%t lint=%d instrs=%d states=%d joins=%d edges=%d A=%d B=%d C=%d obl=%d asm=%d weird=%d queries=%d forks=%d destroys=%d\n",
			r.Name, r.Status, r.Attempts, r.Quarantined, r.LintErrors(),
			g.Instructions, g.States, g.Joins, g.Edges,
			g.ResolvedInd, g.UnresolvedJump, g.UnresolvedCall,
			g.Obligations, g.Assumptions, g.WeirdVertices,
			r.Stats.Sem.SolverQueries, r.Stats.Sem.Forks, r.Stats.Sem.Destroys)
	}
	tg := s.Stats.Graph
	app("total lifted=%d unprovable=%d concurrency=%d timeouts=%d errors=%d panics=%d cancelled=%d retried=%d quarantined=%d lint=%d\n",
		s.Lifted, s.Unprovable, s.Concurrency, s.Timeouts, s.Errors, s.Panics,
		s.Cancelled, s.Retried, s.Quarantined, s.LintErrors)
	app("stats instrs=%d states=%d joins=%d edges=%d A=%d B=%d C=%d obl=%d asm=%d weird=%d queries=%d forks=%d destroys=%d\n",
		tg.Instructions, tg.States, tg.Joins, tg.Edges,
		tg.ResolvedInd, tg.UnresolvedJump, tg.UnresolvedCall,
		tg.Obligations, tg.Assumptions, tg.WeirdVertices,
		s.Stats.Sem.SolverQueries, s.Stats.Sem.Forks, s.Stats.Sem.Destroys)
	return string(b)
}
