package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0) … fn(n−1) across a bounded pool of workers and waits
// for all of them. jobs ≤ 0 selects runtime.NumCPU(). With jobs == 1 the
// calls run in order on the calling goroutine (no scheduling overhead, and
// a deterministic execution order for debugging).
//
// This is the one worker-pool implementation shared by the lift scheduler
// (Run) and the Step-2 triple checker: both workloads are embarrassingly
// parallel — per-lift and per-vertex obligations are mutually independent —
// so a work-stealing counter over a fixed index range is all that is
// needed. fn must confine writes to its own index's slot; panics are NOT
// recovered here (Run layers per-lift recovery on top).
func ForEach(jobs, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	if jobs > n {
		jobs = n
	}
	if jobs == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
