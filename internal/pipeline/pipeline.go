// Package pipeline schedules whole-corpus lifting across a bounded pool of
// worker goroutines. The paper's observation that Step-2 Hoare triples are
// "mutually independent (parallelisable)" holds one level up as well: each
// function is lifted context-free exactly once, from the exact same initial
// state, so the lifts of a corpus (Table 1's eight directories, Table 2's
// six binaries, Figure 3's size sweep) are embarrassingly parallel.
//
// Run fans a slice of Tasks out across runtime.NumCPU() workers (ForEach is
// the shared pool primitive, also used by the Step-2 checker). Each lift
// runs under a wall-clock watchdog and a panic guard: a pathological
// function reports core.StatusTimeout or core.StatusPanic instead of
// wedging a worker or killing the run — this is how the paper's Table 1
// "timeout" column (z) arises under a wall-clock budget. Per lift, a Stats
// record collects the extracted graph's statistics (instructions decoded,
// vertices, joins, edges) alongside the machine's solver and memory-model
// counters (queries, memo-cache hits, forks, destroys) and the wall time;
// the Summary aggregates them corpus-wide in deterministic input order, so
// counts are identical at -jobs 1 and -jobs N.
//
// Workers share a single solver memo cache (solver.Cache): verdicts on
// compiler-generated linear address forms repeat heavily across vertices of
// the same function and, for stack-relative regions, across functions, and
// the verdict is a pure function of the cache key, so sharing the cache
// changes no result. The key is a three-word fingerprint struct (the
// predicate's range-clause fingerprint plus one per region, built on the
// expression intern table's per-node hashes), so a probe allocates nothing
// and never renders an expression to text.
package pipeline

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hglint"
	"repro/internal/hgstore"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/sem"
	"repro/internal/solver"
)

// Task is one lift to schedule: a whole binary from its entry point
// (Binary true — Table 1's upper part) or a single function at Addr
// (Table 1's lower part, the shared-object workflow).
type Task struct {
	Name   string
	Img    *image.Image
	Addr   uint64 // function entry; ignored when Binary
	Binary bool
	// Cfg overrides the lifter configuration (nil = core.DefaultConfig()).
	// The scheduler copies it before installing the shared solver cache
	// and the per-lift timeout.
	Cfg *core.Config
}

// Options tunes a Run.
type Options struct {
	// Jobs is the worker count; ≤ 0 selects runtime.NumCPU().
	Jobs int
	// Timeout is the per-lift wall-clock budget (0 = none). It is enforced
	// twice: cooperatively, as a context deadline the explorer checks at
	// every exploration step, and by a watchdog that abandons a lift which
	// stops making steps at all; either way the lift reports
	// StatusTimeout.
	Timeout time.Duration
	// Cache is the shared solver memo cache (nil = one fresh cache per
	// Run). Pass an explicit cache to share verdicts across several Runs,
	// e.g. across the directories of a Table 1 sweep.
	Cache *solver.Cache
	// Tracer, when non-nil, observes the run: per-task spans, watchdog
	// abandons, and — relabelled per task — every exploration, solver and
	// memory-model event the lift emits. nil disables observation for the
	// cost of a pointer check per event site.
	Tracer *obs.Tracer
	// Lint, when true, runs the hglint static analyzer over every
	// successfully lifted graph right after its lift, through the run's
	// shared solver cache. Reports land on each Result (and their
	// diagnostics on the tracer as lint events); the Summary counts the
	// error-severity findings, so schedulers and tests can fail fast on a
	// malformed graph without paying for Step 2.
	Lint bool
	// Retry re-schedules lifts that end in StatusPanic or StatusTimeout —
	// the two statuses that can arise from infrastructure faults rather
	// than properties of the binary. Every lift is context-free and starts
	// from the same initial state, so retrying one is sound: a retry can
	// only reproduce the outcome or replace a fault with the real result.
	// The zero policy disables retrying.
	Retry RetryPolicy
	// Checkpoint, when non-nil, makes the run crash-safe: every completed
	// (non-cancelled) result is appended to the journal, and tasks whose
	// results the journal already holds are restored without running.
	Checkpoint *Checkpoint
	// Faults, when non-nil, is the deterministic fault injector consulted
	// at the start of every lift attempt and at kill-after thresholds.
	// Production runs leave it nil; tests and the CI smoke job use it to
	// prove the retry and resume machinery.
	Faults *faultinject.Injector
	// PointerFacts enables the pointer-analysis pre-pass
	// (core.Config.PointerFacts) on every task of the run, overriding the
	// per-task configuration. The flag participates in the store's
	// configuration fingerprint — the same task with and without facts
	// occupies two distinct store entries — because the pre-pass changes
	// which functions lift and what assumptions their graphs carry.
	PointerFacts bool
	// Store, when non-nil, is the content-addressed Hoare-graph cache: a
	// task whose (code hash, config fingerprint, lifter version) key has a
	// valid entry skips Step-1 lifting entirely — the result (graphs,
	// statistics replay) is decoded from the store, optionally re-linted,
	// and reported with FromStore set. Misses lift as usual and append
	// their outcome when Storable. Unlike Checkpoint, a store survives
	// corpus changes: only the tasks whose code bytes drifted re-lift.
	Store *hgstore.Store
}

// RetryPolicy tunes the pipeline's rescheduling of faulted lifts.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per task (≤ 1 disables
	// retrying). A task still failing with a retryable status on its last
	// attempt is quarantined.
	MaxAttempts int
	// Backoff is the delay before the second attempt; it doubles on each
	// further retry, capped by MaxBackoff when set.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff (0 = uncapped).
	MaxBackoff time.Duration
	// TimeoutScale multiplies the per-attempt timeout on each retry
	// (values ≤ 1 keep Options.Timeout constant), so a lift that timed
	// out under a tight budget gets an escalating one.
	TimeoutScale float64
}

// Attempts normalises MaxAttempts: the total number of attempts a task
// gets, at least 1. Exported so other schedulers with the same
// retry-then-quarantine semantics (the dist coordinator's worker
// subprocesses) share the policy's interpretation.
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the backoff before the retry that follows the given
// failed attempt (0-based index): Backoff doubled per retry, capped by
// MaxBackoff when set.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	d := p.Backoff << attempt
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// timeout escalates the base per-lift budget for the given attempt.
func (p RetryPolicy) timeout(base time.Duration, attempt int) time.Duration {
	if base <= 0 || p.TimeoutScale <= 1 {
		return base
	}
	d := base
	for i := 0; i < attempt; i++ {
		d = time.Duration(float64(d) * p.TimeoutScale)
	}
	return d
}

// retryable reports whether a status is worth another attempt: panics and
// timeouts can be transient (a fault, a cold cache, scheduling pressure),
// while the analysis outcomes (lifted, unprovable, concurrency, error)
// are properties of the binary and deterministic.
func retryable(s core.Status) bool {
	return s == core.StatusPanic || s == core.StatusTimeout
}

// Stats is the per-lift statistics record, also used for corpus totals.
type Stats struct {
	// Graph summarises the extracted Hoare graph(s): instructions decoded,
	// vertices (states), joins, edges, Table 1's A/B/C columns.
	Graph hoare.Stats
	// Sem tallies the machine's solver queries, memo-cache hits, memory-
	// model forks and destroys during the lift.
	Sem sem.Counters
	// Wall is the lift's wall-clock time (for totals: the sum over lifts,
	// which exceeds the Run's Wall when jobs > 1).
	Wall time.Duration
}

// Add accumulates another record.
func (s *Stats) Add(o Stats) {
	s.Graph.Add(o.Graph)
	s.Sem.Add(o.Sem)
	s.Wall += o.Wall
}

// SolverHitRate returns the fraction of solver queries answered from the
// memo cache.
func (s Stats) SolverHitRate() float64 {
	if s.Sem.SolverQueries == 0 {
		return 0
	}
	return float64(s.Sem.SolverHits) / float64(s.Sem.SolverQueries)
}

// Result is the outcome of one scheduled lift.
type Result struct {
	Name   string
	Index  int // position in the input task slice
	Status core.Status
	// Func is set for function tasks, Binary for whole-binary tasks; both
	// are nil when the lift panicked or was abandoned by the watchdog.
	Func   *core.FuncResult
	Binary *core.BinaryResult
	Stats  Stats
	// PanicMsg carries the recovered panic value for StatusPanic results.
	PanicMsg string
	// Lint holds one hglint report per successfully lifted graph (in
	// Funcs order for binary tasks); nil unless Options.Lint was set.
	Lint []*hglint.Report
	// Attempts is the number of attempts this task consumed (1 = no
	// retry; 0 = cancelled before its first attempt started).
	Attempts int
	// Quarantined marks a task that exhausted its retry budget while
	// still failing with a retryable status; Status is the final
	// attempt's outcome.
	Quarantined bool
	// RetryStats aggregates the statistics of the abandoned (retried)
	// attempts. They are reported separately and never folded into Stats
	// or the Summary totals: a corpus's counts must not depend on how
	// many times its lifts were retried.
	RetryStats Stats
	// Restored marks a result restored from a checkpoint journal rather
	// than executed in this run. Restored results carry Status, Stats and
	// retry accounting but no Func/Binary/Lint payloads (the journal
	// persists outcomes, not graphs).
	Restored bool
	// JournalLintErrors carries the journal-recorded lint error count of
	// a restored result, whose Lint reports are not persisted.
	JournalLintErrors int
	// FromStore marks a result decoded from the Hoare-graph store instead
	// of lifted. Unlike Restored results it carries full Func/Binary
	// payloads (the store persists graphs); Stats replay the cold lift's
	// record, so warm summaries aggregate identically to cold ones.
	FromStore bool
}

// LintErrors sums the error-severity diagnostics across the result's
// lint reports (for restored results: the journal-recorded count).
func (r *Result) LintErrors() int {
	n := r.JournalLintErrors
	for _, rep := range r.Lint {
		n += rep.Errors()
	}
	return n
}

// Summary aggregates a Run. Results are in task order regardless of the
// execution interleaving, and every counter is summed in that order, so a
// Summary is deterministic in the inputs.
type Summary struct {
	Results []Result
	// Per-status counts in the shape of Table 1's w + x + y + z
	// decomposition (Errors and Panics are reported separately but belong
	// to the x column when printed in table form). Cancelled counts tasks
	// stopped by the Run's context, in flight or before starting.
	Lifted, Unprovable, Concurrency, Timeouts, Errors, Panics, Cancelled int
	// Stats sums every lift's record (all statuses) — final attempts
	// only; abandoned attempts accumulate into RetryStats instead.
	Stats Stats
	// RetryStats sums the abandoned attempts' records across the run,
	// kept out of Stats so retried corpora aggregate identically to
	// untroubled ones.
	RetryStats Stats
	// Retried counts tasks that needed more than one attempt;
	// Quarantined counts those that exhausted the retry budget. Restored
	// counts results replayed from the checkpoint journal.
	Retried, Quarantined, Restored int
	// StoreHits counts tasks answered from the Hoare-graph store,
	// StoreMisses tasks that consulted it and had to lift (0 unless
	// Options.Store was set). A fully warm run has StoreMisses == 0: it
	// performed no lifts at all.
	StoreHits, StoreMisses int
	// LintErrors sums error-severity hglint diagnostics across every
	// result (0 unless Options.Lint was set).
	LintErrors int
	// Wall is the wall-clock time of the whole Run.
	Wall time.Duration
	// Cache is the Run's solver cache (shared or per-Run), for corpus-wide
	// hit-rate reporting.
	Cache *solver.Cache
}

// testHookLiftStart, when set, runs at the start of every lift on the
// worker's lift goroutine. Tests use it to wedge a lift and exercise the
// watchdog path; it is atomic because an abandoned lift may still read it
// after its Run returned.
var testHookLiftStart atomic.Pointer[func(name string)]

// RunCtx lifts every task and aggregates the outcomes. Cancelling the
// context stops the run cooperatively: in-flight lifts observe the
// cancellation at their next exploration step and report StatusCancelled,
// and tasks not yet started are marked cancelled without running. The
// per-lift timeout (Options.Timeout) is a deadline derived from the same
// context, so budget expiry and caller cancellation flow through one
// mechanism; the watchdog remains as the last resort for lifts that stop
// making steps entirely.
func RunCtx(ctx context.Context, tasks []Task, opts Options) *Summary {
	if opts.Cache == nil {
		opts.Cache = solver.NewCache()
	}
	sum := &Summary{Results: make([]Result, len(tasks)), Cache: opts.Cache}
	// Resume: restore journalled results up front so workers skip them.
	// Per-unit independence makes this sound — a restored result is the
	// outcome of the exact same lift the journal's run performed.
	var restored []bool
	if opts.Checkpoint != nil {
		restored = make([]bool, len(tasks))
		for i, t := range tasks {
			if r, ok := opts.Checkpoint.Lookup(t.Name); ok {
				r.Index = i
				sum.Results[i] = r
				restored[i] = true
			}
		}
	}
	start := time.Now()
	ForEach(opts.Jobs, len(tasks), func(i int) {
		if restored != nil && restored[i] {
			opts.Tracer.CheckpointSkip(tasks[i].Name)
			return
		}
		r := runOne(ctx, tasks[i], i, opts)
		sum.Results[i] = r
		// Cancelled tasks are not journalled: they produced no outcome
		// and must rerun on resume.
		if opts.Checkpoint != nil && r.Status != core.StatusCancelled {
			if err := opts.Checkpoint.Append(r); err != nil {
				opts.Tracer.CheckpointError(r.Name, err)
			}
		}
		opts.Faults.TaskCompleted()
	})
	sum.Wall = time.Since(start)
	for i := range sum.Results {
		r := &sum.Results[i]
		sum.Stats.Add(r.Stats)
		sum.RetryStats.Add(r.RetryStats)
		sum.LintErrors += r.LintErrors()
		if r.Attempts > 1 {
			sum.Retried++
		}
		if r.Quarantined {
			sum.Quarantined++
		}
		if r.Restored {
			sum.Restored++
		}
		if opts.Store != nil && !r.Restored {
			if r.FromStore {
				sum.StoreHits++
			} else if r.Status != core.StatusCancelled {
				sum.StoreMisses++
			}
		}
		switch r.Status {
		case core.StatusLifted:
			sum.Lifted++
		case core.StatusUnprovableRet:
			sum.Unprovable++
		case core.StatusConcurrency:
			sum.Concurrency++
		case core.StatusTimeout:
			sum.Timeouts++
		case core.StatusPanic:
			sum.Panics++
		case core.StatusCancelled:
			sum.Cancelled++
		default:
			sum.Errors++
		}
	}
	return sum
}

// runOne executes a single task under the retry policy: attempts run
// until one ends in a non-retryable status or the budget is exhausted.
// Only the final attempt's Result (and Stats) is returned; abandoned
// attempts accumulate into RetryStats so corpus totals never double-count
// a retried lift. A task still failing retryably on its last attempt is
// quarantined.
func runOne(ctx context.Context, t Task, idx int, opts Options) Result {
	tr := opts.Tracer.WithLift(t.Name)
	start := time.Now()
	var storeKey hgstore.Key
	finish := func(r Result) Result {
		if opts.Store != nil && !r.FromStore &&
			hgstore.Storable(r.Status, opts.Timeout > 0) &&
			(r.Func != nil || r.Binary != nil) {
			if n, err := opts.Store.Put(storeKey, entryFromResult(r), t.Img); err != nil {
				tr.StoreError(t.Name, err)
			} else {
				tr.StoreWrite(t.Name, uint64(n))
			}
		}
		tr.TaskFinish(t.Name, r.Status.String(), time.Since(start))
		return r
	}
	if ctx.Err() != nil {
		// The run was cancelled before this task started.
		return finish(Result{Name: t.Name, Index: idx, Status: core.StatusCancelled, Attempts: 0})
	}
	tr.TaskStart(t.Name)
	if opts.Store != nil {
		addr := t.Addr
		if t.Binary {
			addr = 0
		}
		// Key on the effective configuration — the one lift() will run
		// under, with run-level options folded in — never on the raw task
		// override, or a -ptr run could answer from (and poison) the
		// factless entries.
		cfg := effectiveConfig(t, opts)
		storeKey = hgstore.TaskKey(t.Img, addr, t.Binary, &cfg)
		if e, n, wall, reason := opts.Store.Lookup(storeKey, t.Img); e != nil {
			tr.StoreHit(t.Name, uint64(n), wall)
			return finish(resultFromEntry(t, idx, e, opts, tr))
		} else {
			tr.StoreMiss(t.Name, reason)
		}
	}
	maxAttempts := opts.Retry.Attempts()
	var retryStats Stats
	for attempt := 0; ; attempt++ {
		r := runAttempt(ctx, t, idx, opts, tr, attempt)
		r.Attempts = attempt + 1
		r.RetryStats = retryStats
		if !retryable(r.Status) {
			return finish(r)
		}
		if attempt+1 >= maxAttempts {
			if maxAttempts > 1 {
				r.Quarantined = true
				tr.Quarantine(t.Name, r.Status.String(), r.Attempts)
			}
			return finish(r)
		}
		retryStats.Add(r.Stats)
		backoff := opts.Retry.Delay(attempt)
		tr.Retry(t.Name, r.Status.String(), attempt, backoff)
		if backoff > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				r.Status = core.StatusCancelled
				r.Quarantined = false
				return finish(r)
			}
		}
	}
}

// runAttempt executes one lift attempt under the watchdog and panic
// guard. The lift itself runs on a child goroutine; if it exceeds the
// watchdog budget the worker abandons it (the cooperative deadline will
// terminate the orphan at its next exploration step) and reports a
// timeout, so one wedged lift can never stall the whole corpus.
// Cancelling ctx likewise abandons a lift that does not return promptly
// on its own.
func runAttempt(ctx context.Context, t Task, idx int, opts Options, tr *obs.Tracer, attempt int) Result {
	budget := opts.Retry.timeout(opts.Timeout, attempt)
	lctx := ctx
	if budget > 0 {
		var cancel context.CancelFunc
		lctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	done := make(chan Result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- Result{
					Name:     t.Name,
					Index:    idx,
					Status:   core.StatusPanic,
					PanicMsg: fmt.Sprint(r),
				}
			}
		}()
		if hook := testHookLiftStart.Load(); hook != nil {
			(*hook)(t.Name)
		}
		if d, ok := opts.Faults.LiftStall(t.Name, attempt); ok {
			// An injected stall blocks without stepping — the shape of a
			// wedged lift — but drains promptly once the attempt's
			// context is cancelled (watchdog abandon or run cancel).
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-lctx.Done():
				timer.Stop()
			}
		}
		if opts.Faults.LiftPanic(t.Name, attempt) {
			panic(fmt.Sprintf("faultinject: injected panic in lift %q attempt %d", t.Name, attempt))
		}
		done <- lift(lctx, t, idx, opts, tr)
	}()
	var watchdog <-chan time.Time
	if budget > 0 {
		// The watchdog allows double the cooperative budget plus
		// scheduling slack before abandoning: a lift that is merely slow
		// still reports its own (cooperative, deterministic) timeout
		// result.
		timer := time.NewTimer(2*budget + 250*time.Millisecond)
		defer timer.Stop()
		watchdog = timer.C
	}
	select {
	case r := <-done:
		return r
	case <-watchdog:
		tr.Watchdog(t.Name, budget)
		return Result{Name: t.Name, Index: idx, Status: core.StatusTimeout}
	case <-ctx.Done():
		// The caller cancelled the whole run: abandon the lift rather
		// than wait for its next cooperative check.
		return Result{Name: t.Name, Index: idx, Status: core.StatusCancelled}
	}
}

// effectiveConfig materialises the lifter configuration a task runs under:
// the task's override (or the default) with the run-level semantic options
// folded in. Both the store key and the lift use this one function, so a
// store entry is always keyed on the configuration that produced it.
func effectiveConfig(t Task, opts Options) core.Config {
	cfg := core.DefaultConfig()
	if t.Cfg != nil {
		cfg = *t.Cfg
	}
	if opts.PointerFacts {
		cfg.PointerFacts = true
	}
	return cfg
}

// lift runs the task's lifter and collects its statistics.
func lift(ctx context.Context, t Task, idx int, opts Options, tr *obs.Tracer) Result {
	cfg := effectiveConfig(t, opts)
	cfg.Sem.SolverCache = opts.Cache
	cfg.Sem.Tracer = tr
	l := core.New(t.Img, cfg)
	res := Result{Name: t.Name, Index: idx}
	start := time.Now()
	if t.Binary {
		br := l.LiftBinaryCtx(ctx, t.Name)
		res.Binary = br
		res.Status = br.Status
		res.Stats.Graph = br.Stats
	} else {
		fr := l.LiftFuncCtx(ctx, t.Addr, t.Name)
		res.Func = fr
		res.Status = fr.Status
		res.Stats.Graph = fr.Stats()
	}
	res.Stats.Wall = time.Since(start)
	res.Stats.Sem = l.Counters()
	if opts.Lint {
		lintResult(&res, opts.Cache, tr)
	}
	return res
}

// resultFromEntry reconstructs the Result a cold lift would have produced
// from a decoded store entry: statuses and statistics replay the recorded
// values, the graphs are the decoded (pointer-canonical) ones, and — like
// a fresh lift — the result is re-linted when the run asks for it, so a
// corrupted-but-checksum-valid graph cannot sneak past the analyzer.
func resultFromEntry(t Task, idx int, e *hgstore.Entry, opts Options, tr *obs.Tracer) Result {
	res := Result{
		Name:      t.Name,
		Index:     idx,
		Status:    e.Status,
		Stats:     Stats{Graph: e.Graph, Sem: e.Sem, Wall: e.Wall},
		Attempts:  1,
		FromStore: true,
	}
	if t.Binary {
		br := &core.BinaryResult{
			Name:     t.Name,
			Status:   e.Status,
			Funcs:    e.Funcs,
			Stats:    e.Graph,
			Duration: e.Duration,
		}
		if e.EntryIndex >= 0 {
			br.Entry = e.Funcs[e.EntryIndex]
		}
		res.Binary = br
	} else if len(e.Funcs) > 0 {
		res.Func = e.Funcs[0]
	}
	if opts.Lint {
		lintResult(&res, opts.Cache, tr)
	}
	return res
}

// entryFromResult converts a completed lift into its store entry.
func entryFromResult(r Result) *hgstore.Entry {
	e := &hgstore.Entry{
		Status:     r.Status,
		Graph:      r.Stats.Graph,
		Sem:        r.Stats.Sem,
		Wall:       r.Stats.Wall,
		EntryIndex: -1,
	}
	switch {
	case r.Binary != nil:
		e.Duration = r.Binary.Duration
		e.Funcs = r.Binary.Funcs
		for i, fr := range r.Binary.Funcs {
			if fr == r.Binary.Entry {
				e.EntryIndex = i
			}
		}
	case r.Func != nil:
		e.Duration = r.Func.Duration
		e.Funcs = []*core.FuncResult{r.Func}
	}
	return e
}

// lintResult runs the static analyzer over every successfully lifted
// graph of one result, through the run's shared solver memo cache, and
// forwards each diagnostic to the tracer. Failed lifts stop exploring
// mid-graph, so only StatusLifted graphs are expected to be well-formed.
func lintResult(res *Result, cache *solver.Cache, tr *obs.Tracer) {
	var frs []*core.FuncResult
	switch {
	case res.Binary != nil:
		frs = res.Binary.Funcs
	case res.Func != nil:
		frs = []*core.FuncResult{res.Func}
	}
	for _, fr := range frs {
		if fr.Status != core.StatusLifted || fr.Graph == nil {
			continue
		}
		rep := hglint.Lint(fr.Graph, hglint.WithCache(cache))
		res.Lint = append(res.Lint, rep)
		for _, d := range rep.Diagnostics {
			tr.Lint(fr.Name, d.Vertex, d.Addr, d.Severity.String(), d.Rule, d.Msg)
		}
	}
}
