package pipeline

// Tests for the checkpoint journal: round-trip restore, resilience to
// write faults and corrupt tails, and the acceptance criterion — a run
// killed mid-corpus under injected faults and then resumed renders a
// Summary byte-identical to an uninterrupted run's.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// checkpointDir builds a mid-sized corpus with status diversity (lifted
// and unprovable units) so a journal carries more than one outcome kind.
func checkpointDir(t *testing.T) []Task {
	t.Helper()
	shape := corpus.DirShape{
		Name: "ckpttest", Kind: corpus.KindLibFunc, Lifted: 12, Unprovable: 3,
		MinStmts: 2, MaxStmts: 6, Helpers: 1,
	}
	dir, err := corpus.BuildDirectory(shape, 7)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]Task, 0, len(dir.Units))
	for _, u := range dir.Units {
		cfg := core.DefaultConfig()
		if u.Budget > 0 {
			cfg.MaxStates = u.Budget
		}
		tasks = append(tasks, Task{
			Name:   u.Name,
			Img:    u.Image,
			Addr:   u.FuncAddr,
			Binary: u.Kind == corpus.KindBinary,
			Cfg:    &cfg,
		})
	}
	return tasks
}

// TestCheckpointRoundTrip journals a full run, resumes from the journal,
// and checks the second run restores everything without lifting.
func TestCheckpointRoundTrip(t *testing.T) {
	tasks := checkpointDir(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp, err := createCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	first := RunCtx(context.Background(), tasks, Options{Jobs: 2, Checkpoint: cp})
	if err := cp.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}
	if cp.Len() != len(tasks) {
		t.Fatalf("journal holds %d results, want %d", cp.Len(), len(tasks))
	}

	resumed, err := resumeCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Skipped() != 0 || resumed.Len() != len(tasks) {
		t.Fatalf("resumed journal: len=%d skipped=%d, want %d/0",
			resumed.Len(), resumed.Skipped(), len(tasks))
	}
	ring := obs.NewRing(1 << 12)
	second := RunCtx(context.Background(), tasks, Options{
		Jobs: 2, Checkpoint: resumed, Tracer: obs.NewTracer(ring),
	})
	if second.Restored != len(tasks) {
		t.Fatalf("Restored = %d, want %d", second.Restored, len(tasks))
	}
	if got, want := second.Canonical(), first.Canonical(); got != want {
		t.Fatalf("restored summary diverges:\n--- restored ---\n%s--- original ---\n%s", got, want)
	}
	skips := 0
	for _, e := range ring.Events() {
		if e.Kind == obs.KCheckpoint && e.Status == "skip" {
			skips++
		}
	}
	if skips != len(tasks) {
		t.Fatalf("%d checkpoint-skip events, want %d", skips, len(tasks))
	}
}

// TestCheckpointScoped checks that equal task names in different scopes
// do not collide (xenbench's fig3 sweep reuses one shape name across
// eight size classes).
func TestCheckpointScoped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp, err := createCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := cp.Scoped("fig3/64"), cp.Scoped("fig3/128")
	if err := a.Append(Result{Name: "fig3", Status: core.StatusLifted, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(Result{Name: "fig3", Status: core.StatusTimeout, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	resumed, err := resumeCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ra, oka := resumed.Scoped("fig3/64").Lookup("fig3")
	rb, okb := resumed.Scoped("fig3/128").Lookup("fig3")
	if !oka || !okb {
		t.Fatalf("lookups: a=%t b=%t, want both", oka, okb)
	}
	if ra.Status != core.StatusLifted || rb.Status != core.StatusTimeout {
		t.Fatalf("scoped statuses %s/%s, want lifted/timeout", ra.Status, rb.Status)
	}
	if _, ok := resumed.Lookup("fig3"); ok {
		t.Fatal("unscoped lookup found a scoped record")
	}
}

// TestCheckpointWriteErrorResilience injects write faults on half the
// appends: the run must complete, report the fault through Err, and the
// journal left on disk must still parse — each successful append rewrites
// the whole journal, so earlier failures heal.
func TestCheckpointWriteErrorResilience(t *testing.T) {
	tasks := smallDir(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp, err := createCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{Seed: 26, WriteErrRate: 0.5})
	cp.SetFaults(inj)
	ring := obs.NewRing(1 << 12)
	sum := RunCtx(context.Background(), tasks, Options{
		Jobs: 1, Checkpoint: cp, Tracer: obs.NewTracer(ring),
	})
	if sum.Lifted != len(tasks) {
		t.Fatalf("lifted %d of %d under journal write faults", sum.Lifted, len(tasks))
	}
	wErrs := int(inj.Fired().WriteErrs)
	if wErrs == 0 {
		t.Fatal("no write faults fired at rate 0.5 — seed needs changing")
	}
	if cp.Err() == nil {
		t.Fatal("Err() = nil after injected write faults")
	}
	errEvents := 0
	for _, e := range ring.Events() {
		if e.Kind == obs.KCheckpoint && e.Status == "write-error" {
			errEvents++
		}
	}
	if errEvents != wErrs {
		t.Fatalf("%d write-error events, %d faults fired", errEvents, wErrs)
	}
	resumed, err := resumeCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Skipped() != 0 {
		t.Fatalf("journal has %d unparseable lines after atomic writes", resumed.Skipped())
	}
	// Every record up to the last successful append is on disk (failed
	// appends are retried by the next one), so at most the trailing
	// failures are missing.
	if resumed.Len() < len(tasks)-wErrs {
		t.Fatalf("journal holds %d results, want ≥ %d", resumed.Len(), len(tasks)-wErrs)
	}
}

// TestCheckpointCorruptTail truncates the journal mid-line: resume must
// keep the intact prefix and report the dropped tail via Skipped.
func TestCheckpointCorruptTail(t *testing.T) {
	tasks := smallDir(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp, err := createCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	RunCtx(context.Background(), tasks, Options{Jobs: 1, Checkpoint: cp})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != len(tasks) {
		t.Fatalf("journal has %d lines, want %d", len(lines), len(tasks))
	}
	// Keep all but the last line intact, then half of the last line.
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := resumeCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Len() != len(tasks)-1 || resumed.Skipped() != 1 {
		t.Fatalf("len=%d skipped=%d, want %d/1", resumed.Len(), resumed.Skipped(), len(tasks)-1)
	}
}

// TestCheckpointMissingFile resumes from a path that does not exist — an
// interrupted run may have died before its first append.
func TestCheckpointMissingFile(t *testing.T) {
	cp, err := resumeCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 0 || cp.Skipped() != 0 {
		t.Fatalf("len=%d skipped=%d on missing file", cp.Len(), cp.Skipped())
	}
}

// TestResumeDeterminism is the acceptance criterion: with seeded faults
// injected into well over 10% of the tasks, a checkpointed run killed
// mid-corpus and then resumed must produce a Summary byte-identical (in
// its Canonical rendering) to an uninterrupted run's.
func TestResumeDeterminism(t *testing.T) {
	tasks := checkpointDir(t)
	faultCfg := faultinject.Config{Seed: 11, PanicRate: 0.25, MaxAttemptFaults: 1}
	retry := RetryPolicy{MaxAttempts: 3}

	// Uninterrupted reference run, same faults and retry policy.
	baseline := RunCtx(context.Background(), tasks, Options{
		Jobs: 1, Retry: retry, Faults: faultinject.New(faultCfg),
	})
	if baseline.Retried == 0 {
		t.Fatal("no task faulted at rate 0.25 — seed needs changing")
	}
	if baseline.Panics != 0 {
		t.Fatalf("baseline has %d unrecovered panics; retries should absorb all", baseline.Panics)
	}

	// Run 1: same faults plus a kill switch that cancels the run after
	// half the tasks completed.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp, err := createCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	killCfg := faultCfg
	killCfg.KillAfter = len(tasks) / 2
	killInj := faultinject.New(killCfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killInj.OnKill(cancel)
	killed := RunCtx(ctx, tasks, Options{
		Jobs: 2, Retry: retry, Checkpoint: cp, Faults: killInj,
	})
	if killed.Cancelled == 0 {
		t.Fatal("kill switch cancelled nothing — the run finished before the threshold")
	}
	if killed.Cancelled == len(tasks) {
		t.Fatal("every task cancelled — nothing journalled before the kill")
	}

	// Run 2: resume from the journal with the same fault seed (no kill).
	resumedCP, err := resumeCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumedCP.Len() == 0 {
		t.Fatal("journal empty after the killed run")
	}
	resumed := RunCtx(context.Background(), tasks, Options{
		Jobs: 1, Retry: retry, Checkpoint: resumedCP, Faults: faultinject.New(faultCfg),
	})
	if resumed.Restored == 0 {
		t.Fatal("resumed run restored nothing")
	}
	if resumed.Restored >= len(tasks) {
		t.Fatalf("resumed run restored all %d tasks but %d were cancelled", resumed.Restored, killed.Cancelled)
	}
	if got, want := resumed.Canonical(), baseline.Canonical(); got != want {
		t.Fatalf("resumed summary diverges from uninterrupted run:\n--- resumed ---\n%s--- baseline ---\n%s", got, want)
	}
}

// TestOpenCheckpointCreatesOrResumes covers the unified entrypoint: a
// missing file starts a fresh journal (and creates the file immediately,
// so a crash before the first append still resumes cleanly), an existing
// one restores every completed result.
func TestOpenCheckpointCreatesOrResumes(t *testing.T) {
	tasks := checkpointDir(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 0 || cp.Skipped() != 0 {
		t.Fatalf("fresh journal: len=%d skipped=%d", cp.Len(), cp.Skipped())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("create did not write the journal file: %v", err)
	}
	first := RunCtx(context.Background(), tasks, Options{Jobs: 2, Checkpoint: cp})
	if cp.Err() != nil || cp.Len() != len(tasks) {
		t.Fatalf("journal after run: len=%d err=%v", cp.Len(), cp.Err())
	}

	resumed, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Len() != len(tasks) {
		t.Fatalf("resumed journal holds %d results, want %d", resumed.Len(), len(tasks))
	}
	second := RunCtx(context.Background(), tasks, Options{Checkpoint: resumed})
	if second.Restored != len(tasks) {
		t.Fatalf("Restored = %d, want %d", second.Restored, len(tasks))
	}
	if got, want := second.Canonical(), first.Canonical(); got != want {
		t.Fatalf("resumed summary diverges:\n--- resumed ---\n%s--- first ---\n%s", got, want)
	}
}
