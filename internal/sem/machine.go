package sem

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/image"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/pred"
	"repro/internal/solver"
	"repro/internal/x86"
)

// Config tunes the predicate transformer.
type Config struct {
	// MM configures memory-model insertion (forking / destroying).
	MM memmodel.Config
	// MaxTableEntries bounds jump-table enumeration: a bounded read from
	// read-only data produces one successor per entry up to this count.
	MaxTableEntries int
	// AssumeBaseSeparation enables the paper's implicit assumptions:
	// regions whose addresses share no symbolic base (stack vs arguments
	// vs globals) are assumed separate, and each such assumption is
	// recorded and exported as a proof obligation.
	AssumeBaseSeparation bool
	// SolverCache, when non-nil, memoizes solver verdicts across machines
	// (and, being concurrency-safe, across the pipeline's lift workers).
	// Caching is exact: verdicts are pure in the predicate's interval
	// clauses and the region pair. The separation assumptions layered on
	// top of the raw verdict are applied after the cache, so the recorded
	// assumption side effects are never skipped.
	SolverCache *solver.Cache
	// Facts, when non-nil, is the per-function fact table of the pointer
	// pre-pass (internal/ptr), consulted before the cache and the decision
	// procedure. Facts are scoped to one function's initial-state symbols
	// (rsp0, rdi0, …), so they live here — in the per-lift config — and
	// never in the cross-function SolverCache. Assumed facts (separation
	// hypotheses) are recorded as assumptions exactly like the machine's
	// own AssumeBaseSeparation ones.
	Facts *solver.Facts
	// Tracer, when non-nil, receives a structured event per solver query
	// and per memory-model fork/destroy. Emission is nil-safe, so the
	// disabled (nil) tracer costs one pointer check per event site.
	Tracer *obs.Tracer
}

// DefaultConfig returns the configuration matching the paper's algorithm.
func DefaultConfig() Config {
	return Config{
		MM:                   memmodel.DefaultConfig(),
		MaxTableEntries:      256,
		AssumeBaseSeparation: true,
	}
}

// Machine symbolically executes instructions over symbolic states. It
// accumulates the implicit assumptions made (separation between pointer
// provenances) — "each and any implicit assumption made during HG
// generation is formalized and exported" (§5.2).
type Machine struct {
	Img *image.Image
	Cfg Config

	assumptions map[string]bool
	curAddr     uint64
	nfresh      int
	counters    Counters
}

// Counters tallies the solver and memory-model activity of one machine —
// the per-lift half of the pipeline's statistics record. A machine is used
// by a single goroutine, so the fields are plain integers; cross-worker
// totals are summed by the pipeline after each lift completes.
type Counters struct {
	// SolverQueries counts oracle comparisons issued during symbolic
	// execution; SolverHits counts those answered from the shared memo
	// cache (0 when no cache is configured).
	SolverQueries uint64
	SolverHits    uint64
	// Forks counts extra memory models produced by undecided insertions
	// (each Ins returning n models adds n−1); Destroys counts produced
	// models in which some region was destroyed.
	Forks    uint64
	Destroys uint64
	// FactHits counts oracle comparisons answered from the pointer
	// pre-pass fact table (0 without Config.Facts); Fallbacks counts
	// insertions that abandoned their forked models (fan-out past
	// MaxModels) and destroyed instead.
	FactHits  uint64
	Fallbacks uint64
}

// Add accumulates another counter record.
func (c *Counters) Add(o Counters) {
	c.SolverQueries += o.SolverQueries
	c.SolverHits += o.SolverHits
	c.Forks += o.Forks
	c.Destroys += o.Destroys
	c.FactHits += o.FactHits
	c.Fallbacks += o.Fallbacks
}

// Counters returns the machine's activity counters.
func (m *Machine) Counters() Counters { return m.counters }

// compare answers a solver query through the memo cache when one is
// configured, counting queries and hits.
func (m *Machine) compare(p *pred.Pred, r0, r1 solver.Region) solver.Result {
	m.counters.SolverQueries++
	var res solver.Result
	var hit bool
	if c := m.Cfg.SolverCache; c != nil {
		res, hit = c.Compare(p, r0, r1)
		if hit {
			m.counters.SolverHits++
		}
	} else {
		res = solver.Compare(p, r0, r1)
	}
	m.Cfg.Tracer.Solver(m.curAddr, hit)
	return res
}

// noteIns records the fork/destroy fan-out of one memory-model insertion,
// and whether the insertion fell back to destroying past MaxModels.
func (m *Machine) noteIns(results []memmodel.InsResult, fellBack bool) {
	if fellBack {
		m.counters.Fallbacks++
		m.Cfg.Tracer.Fallback(m.curAddr)
	}
	if len(results) > 1 {
		extra := uint64(len(results) - 1)
		m.counters.Forks += extra
		m.Cfg.Tracer.Fork(m.curAddr, extra)
	}
	for _, res := range results {
		for _, rel := range res.Rel {
			if rel == memmodel.RelDestroyed {
				m.counters.Destroys++
				m.Cfg.Tracer.Destroy(m.curAddr)
				break
			}
		}
	}
}

// NewMachine returns a machine over the image.
func NewMachine(img *image.Image, cfg Config) *Machine {
	return &Machine{Img: img, Cfg: cfg, assumptions: map[string]bool{}}
}

// Assumptions returns the recorded separation assumptions, sorted.
func (m *Machine) Assumptions() []string {
	out := make([]string, 0, len(m.assumptions))
	for a := range m.assumptions {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ResetAssumptions clears the recorded assumptions (used between
// functions).
func (m *Machine) ResetAssumptions() { m.assumptions = map[string]bool{} }

func (m *Machine) assume(text string) { m.assumptions[text] = true }

// fresh returns a deterministic fresh variable: names depend only on the
// instruction address and the allocation sequence within the step, so an
// independent re-execution of the same instruction on the same state (the
// Step-2 triple checker) produces identical postconditions.
func (m *Machine) fresh() *expr.Expr {
	v := expr.V(expr.Var(fmt.Sprintf("v%x_%d", m.curAddr, m.nfresh)))
	m.nfresh++
	return v
}

// oracle adapts the solver to memory-model insertion, adding the
// provenance-separation assumptions of the paper.
type oracle struct {
	m *Machine
	s *State
}

// Compare answers a necessarily-relation query; undecided cross-provenance
// pairs are assumed separate (recorded as a proof obligation). The pointer
// pre-pass fact table, when present, is consulted first: proven facts are
// predicate-independent (they short-circuit the cache and the decision
// procedure), and assumed facts record the same separation-assumption
// obligation AssumeBaseSeparation would, so the graph's assumption list
// stays honest about every hypothesis the lift rests on.
func (o oracle) Compare(r0, r1 solver.Region) solver.Result {
	if f, ok := o.m.Cfg.Facts.Lookup(r0, r1); ok {
		o.m.counters.FactHits++
		o.m.Cfg.Tracer.FactHit(o.m.curAddr)
		if f.Assumed {
			o.m.assume(fmt.Sprintf("@%x : [%s, %d] ASSUMED SEPARATE FROM [%s, %d]",
				o.m.curAddr, r0.Addr, r0.Size, r1.Addr, r1.Size))
		}
		return f.Res
	}
	res := o.m.compare(o.s.Pred, r0, r1)
	if res.Decided() || !o.m.Cfg.AssumeBaseSeparation {
		return res
	}
	// The paper's implicit assumption covers only the local stack frame:
	// pointers not derived from rsp0 (arguments, globals, loaded values)
	// are assumed not to reach into it. Two non-stack pointers (e.g. the
	// rdi/rsi pair of Section 2) are never assumed apart — their unknown
	// relation forks the memory model.
	if stackBased(r0.Addr) != stackBased(r1.Addr) && disjointAtoms(r0.Addr, r1.Addr) {
		o.m.assume(fmt.Sprintf("@%x : [%s, %d] ASSUMED SEPARATE FROM [%s, %d]",
			o.m.curAddr, r0.Addr, r0.Size, r1.Addr, r1.Size))
		return solver.Result{Separate: solver.Yes,
			Alias: solver.No, Enclosed: solver.No, Encloses: solver.No, Partial: solver.No}
	}
	return res
}

// disjointAtoms reports whether the linear forms of the two addresses share
// no symbolic atom. Addresses sharing a base (e.g. rsp0 and rsp0+8·i) are
// never assumed apart — that is exactly the unknown-stack-offset case the
// paper rejects functions for. An address with no atoms (a global
// constant) counts as the distinguished "global" provenance.
func disjointAtoms(a0, a1 *expr.Expr) bool {
	atoms := func(a *expr.Expr) map[*expr.Expr]bool {
		s := map[*expr.Expr]bool{}
		expr.ToLinear(a).Terms(func(atom *expr.Expr, _ uint64) {
			s[atom] = true
		})
		return s
	}
	s0, s1 := atoms(a0), atoms(a1)
	for k := range s0 {
		if s1[k] {
			return false
		}
	}
	return true
}

// valState pairs a forked state with the value read in it.
type valState struct {
	st *State
	v  *expr.Expr
}

// regVal reads a register at the given width, materialising a deterministic
// fresh variable for unconstrained registers so later reads agree.
func (m *Machine) regVal(st *State, r x86.Reg, size int) *expr.Expr {
	full := st.Pred.Reg(r)
	if full == nil {
		full = m.fresh()
		st.Pred.SetReg(r, full)
	}
	return expr.ZExt(full, size)
}

// writeReg writes a value of the given width into a register with x86
// merge semantics: 64-bit replaces, 32-bit zero-extends, 8/16-bit merges
// into the low bits.
func (m *Machine) writeReg(st *State, r x86.Reg, size int, val *expr.Expr) {
	switch size {
	case 8:
		st.Pred.SetReg(r, val)
	case 4:
		st.Pred.SetReg(r, expr.ZExt(val, 4))
	default:
		old := m.regVal(st, r, 8)
		mask := expr.Mask8
		if size == 2 {
			mask = expr.Mask16
		}
		merged := expr.Or(expr.And(old, expr.Word(^mask)), expr.And(val, expr.Word(mask)))
		st.Pred.SetReg(r, merged)
	}
}

// addrOf evaluates a memory operand's address to a constant expression
// (never ⊥ thanks to register materialisation; cf. Definition 4.2's eval).
func (m *Machine) addrOf(st *State, o x86.Operand) *expr.Expr {
	if o.Base == x86.RIP {
		return expr.Word(uint64(o.Disp))
	}
	parts := []*expr.Expr{expr.Word(uint64(o.Disp))}
	if o.Base != x86.RegNone {
		parts = append(parts, m.regVal(st, o.Base, 8))
	}
	if o.Index != x86.RegNone {
		idx := m.regVal(st, o.Index, 8)
		parts = append(parts, expr.Mul(expr.Word(uint64(o.Scale)), idx))
	}
	return expr.Add(parts...)
}

// rval evaluates an operand, forking the state on memory reads.
func (m *Machine) rval(st *State, o x86.Operand) []valState {
	switch o.Kind {
	case x86.OpImm:
		// Immediates were sign-extended to 64 bits at decode time, which
		// matches x86 semantics for every consumer; width masking happens
		// at the operation.
		return []valState{{st, expr.Word(uint64(o.Imm))}}
	case x86.OpReg:
		return []valState{{st, m.regVal(st, o.Reg, o.Size)}}
	case x86.OpMem:
		addr := m.addrOf(st, o)
		return m.readMem(st, addr, o.Size)
	}
	return []valState{{st, m.fresh()}}
}

// writeOp writes a value to an operand, forking the state on memory
// writes.
func (m *Machine) writeOp(st *State, o x86.Operand, val *expr.Expr) []*State {
	switch o.Kind {
	case x86.OpReg:
		m.writeReg(st, o.Reg, o.Size, val)
		return []*State{st}
	case x86.OpMem:
		addr := m.addrOf(st, o)
		return m.writeMem(st, addr, o.Size, val)
	}
	return []*State{st}
}
