package sem

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/memmodel"
	"repro/internal/pred"
	"repro/internal/solver"
	"repro/internal/x86"
)

// stackBased reports whether an address is derived from the initial stack
// pointer (the caller's local frame).
func stackBased(a *expr.Expr) bool { return a.ContainsVar("rsp0") }

// CleanAfterCall implements the paper's treatment of (unknown external and
// summarised internal) function calls under the 64-bit System V calling
// convention (Section 4.2.1): caller-saved registers, flags, and all heap
// and global memory clauses are destroyed (assigned fresh unknowns); the
// local stack frame and the callee-saved registers are kept. The memory
// model drops every tree not rooted in the stack frame. The returned state
// is the continuation state after the call.
func (m *Machine) CleanAfterCall(st *State, callAddr uint64) *State {
	m.curAddr = callAddr
	m.nfresh = 100 // distinct namespace from the call instruction's own step
	s := st.Clone()
	for _, r := range x86.CallerSaved {
		s.Pred.SetReg(r, m.fresh())
	}
	s.Pred.ClearFlags()
	s.Pred.FilterMem(func(e pred.MemEntry) bool { return stackBased(e.Addr) })
	var kept memmodel.Forest
	for _, t := range s.Mem {
		all := true
		for _, r := range t.Kids.AllRegions(append([]solver.Region(nil), t.Regions...)) {
			if !stackBased(r.Addr) {
				all = false
				break
			}
		}
		if all {
			kept = append(kept, t)
		}
	}
	s.Mem = kept
	return s
}

// CallObligations generates the proof obligations of Section 5.3 for a
// call to an unknown external function: any argument register holding a
// pointer into the caller's stack frame obliges the callee not to touch
// the region around the stored return address. The obligations are
// rendered in the paper's format:
//
//	@400701 : memset(RDI := RSP0 - 40) MUST PRESERVE [RSP0 - 8 TO RSP0 + 8]
func (m *Machine) CallObligations(st *State, name string, callAddr uint64) []string {
	var out []string
	for _, r := range x86.ArgRegs {
		v := st.Pred.Reg(r)
		if v == nil || !stackBased(v) {
			continue
		}
		out = append(out, fmt.Sprintf("@%x : %s(%s := %s) MUST PRESERVE [rsp0 - 8 TO rsp0 + 8]",
			callAddr, name, r.Name(8), v))
	}
	return out
}

// RetCheck holds the outcome of verifying the three sanity properties at a
// ret instruction (return address integrity, stack pointer restoration and
// calling convention adherence).
type RetCheck struct {
	OK      bool
	Reasons []string
}

// CheckReturn verifies, on a KRet outcome, that the function returns to
// its symbolic return address with the stack pointer restored to rsp0+8
// and every callee-saved register restored to its initial value — the
// sanity properties the paper proves per function. retSym is the symbolic
// return address pushed at function entry.
func CheckReturn(o Outcome, retSym expr.Var) RetCheck {
	chk := RetCheck{OK: true}
	failf := func(format string, args ...any) {
		chk.OK = false
		chk.Reasons = append(chk.Reasons, fmt.Sprintf(format, args...))
	}
	if o.Target == nil || !o.Target.Equal(expr.V(retSym)) {
		failf("return address integrity: popped %v, want %s", o.Target, retSym)
	}
	rsp := o.State.Pred.Reg(x86.RSP)
	want := expr.Add(expr.V("rsp0"), expr.Word(8))
	if rsp == nil || !rsp.Equal(want) {
		failf("stack pointer not restored: rsp = %v, want rsp0 + 8", rsp)
	}
	for _, r := range x86.CalleeSaved {
		v := o.State.Pred.Reg(r)
		if v == nil || !v.Equal(expr.V(expr.Var(r.String()+"0"))) {
			failf("calling convention: %s = %v, want %s0", r, v, r)
		}
	}
	return chk
}
