package sem

import (
	"strings"
	"testing"

	"repro/internal/elf64"
	"repro/internal/expr"
	"repro/internal/image"
	"repro/internal/pred"
	"repro/internal/x86"
)

const (
	textBase   = 0x401000
	rodataBase = 0x4a0000
)

// buildImage assembles code at textBase with optional rodata.
func buildImage(t *testing.T, build func(a *x86.Asm), rodata []byte) *image.Image {
	t.Helper()
	a := x86.NewAsm(textBase)
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	b := elf64.NewExec(textBase)
	b.AddSection(".text", elf64.SHFExecinstr, textBase, code)
	if rodata != nil {
		b.AddSection(".rodata", 0, rodataBase, rodata)
	}
	img, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	im, err := image.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// run steps through straight-line code from the entry, following single
// fall-through outcomes, and returns the final single state.
func run(t *testing.T, m *Machine, st *State, addr uint64, n int) *State {
	t.Helper()
	for i := 0; i < n; i++ {
		inst, err := m.Img.Fetch(addr)
		if err != nil {
			t.Fatalf("fetch at %#x: %v", addr, err)
		}
		outs, err := m.Step(st, inst)
		if err != nil {
			t.Fatalf("step %s: %v", inst.String(), err)
		}
		if len(outs) != 1 {
			t.Fatalf("%s: expected single outcome, got %d", inst.String(), len(outs))
		}
		st = outs[0].State
		tgt, ok := outs[0].Resolved()
		if !ok {
			t.Fatalf("%s: unresolved", inst.String())
		}
		addr = tgt
	}
	return st
}

func newMachine(t *testing.T, build func(a *x86.Asm), rodata []byte) *Machine {
	return NewMachine(buildImage(t, build, rodata), DefaultConfig())
}

func TestMovAddTracking(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(5, 4))
		a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.ImmOp(3, 1))
		a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RDI, 8))
		a.I(x86.RET)
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 3)
	want := expr.Add(expr.V("rdi0"), expr.Word(8))
	if got := st.Pred.Reg(x86.RAX); !got.Equal(want) {
		t.Fatalf("rax = %v, want %v", got, want)
	}
}

func TestSubRegisterWrites(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(0x1122334455667788, 8))
		a.I(x86.MOV, x86.RegOp(x86.RAX, 1), x86.ImmOp(0x99, 1)) // al
		a.I(x86.MOV, x86.RegOp(x86.RBX, 8), x86.ImmOp(-1, 4))   // sign-extended
		a.I(x86.MOV, x86.RegOp(x86.RBX, 4), x86.ImmOp(7, 4))    // 32-bit zero-extends
	}, nil)
	st := run(t, m, NewState(), textBase, 4)
	if got := st.Pred.Reg(x86.RAX); !got.IsWord(0x1122334455667799) {
		t.Fatalf("al merge: %v", got)
	}
	if got := st.Pred.Reg(x86.RBX); !got.IsWord(7) {
		t.Fatalf("32-bit zero extension: %v", got)
	}
}

func TestPushPop(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.PUSH, x86.RegOp(x86.RBP, 8))
		a.I(x86.MOV, x86.RegOp(x86.RBP, 8), x86.RegOp(x86.RSP, 8))
		a.I(x86.POP, x86.RegOp(x86.RBP, 8))
	}, nil)
	st := InitialState("a_r")
	mid := run(t, m, st, textBase, 2)
	// rsp = rsp0 - 8, [rsp0-8] = rbp0, rbp = rsp0 - 8.
	wantRSP := expr.Sub(expr.V("rsp0"), expr.Word(8))
	if got := mid.Pred.Reg(x86.RSP); !got.Equal(wantRSP) {
		t.Fatalf("rsp = %v", got)
	}
	if v, ok := mid.Pred.ReadMem(wantRSP, 8); !ok || !v.Equal(expr.V("rbp0")) {
		t.Fatalf("saved rbp: %v %v", v, ok)
	}
	end := run(t, m, mid, textBase+4, 1)
	if got := end.Pred.Reg(x86.RBP); !got.Equal(expr.V("rbp0")) {
		t.Fatalf("restored rbp: %v", got)
	}
	if got := end.Pred.Reg(x86.RSP); !got.Equal(expr.V("rsp0")) {
		t.Fatalf("restored rsp: %v", got)
	}
}

func TestFullFunctionReturn(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.PUSH, x86.RegOp(x86.RBP, 8))
		a.I(x86.MOV, x86.RegOp(x86.RBP, 8), x86.RegOp(x86.RSP, 8))
		a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x20, 4))
		a.I(x86.MOV, x86.MemOp(x86.RBP, x86.RegNone, 1, -8, 8), x86.RegOp(x86.RDI, 8))
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RBP, x86.RegNone, 1, -8, 8))
		a.I(x86.LEAVE)
		a.I(x86.RET)
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 6)
	inst, _ := m.Img.Fetch(textBase + 4 + 4 + 4 + 4 + 4 + 1) // after the first 6
	// Fetch the ret directly: find it by stepping from the state.
	_ = inst
	ret, err := m.Img.Fetch(stRIP(t, m, st))
	if err != nil {
		t.Fatal(err)
	}
	outs, err := m.Step(st, ret)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Kind != KRet {
		t.Fatalf("outcomes: %+v", outs)
	}
	chk := CheckReturn(outs[0], "a_r")
	if !chk.OK {
		t.Fatalf("return check failed: %v", chk.Reasons)
	}
	// rax holds the argument round-tripped through the stack.
	if got := outs[0].State.Pred.Reg(x86.RAX); !got.Equal(expr.V("rdi0")) {
		t.Fatalf("rax = %v", got)
	}
}

// stRIP finds the instruction following the executed prefix; test helper
// that re-runs the function to the last state, tracking the address.
func stRIP(t *testing.T, m *Machine, st *State) uint64 {
	t.Helper()
	// The straight-line helpers above end right before ret; compute it by
	// scanning forward from textBase.
	addr := uint64(textBase)
	for {
		inst, err := m.Img.Fetch(addr)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Mn == x86.RET {
			return addr
		}
		addr = inst.Next()
	}
}

func TestBranchForkAndRefinement(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.CMP, x86.RegOp(x86.RAX, 4), x86.ImmOp(0xc3, 4))
		a.Jcc(x86.CondA, "high")
		a.I(x86.NOP)
		a.Label("high")
		a.I(x86.RET)
	}, nil)
	st := InitialState("a_r")
	cmp, _ := m.Img.Fetch(textBase)
	outs, err := m.Step(st, cmp)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := m.Img.Fetch(cmp.Next())
	outs, err = m.Step(outs[0].State, ja)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("ja must fork: %d", len(outs))
	}
	eax := expr.ZExt(expr.V("rax0"), 4)
	for _, o := range outs {
		r, ok := o.State.Pred.RangeOf(eax)
		if o.Kind == KFall {
			if !ok || r.Hi != 0xc3 || r.Lo != 0 {
				t.Fatalf("fall-through range: %+v %v", r, ok)
			}
		} else {
			if !ok || r.Lo != 0xc4 {
				t.Fatalf("taken range: %+v %v", r, ok)
			}
		}
	}
}

func TestJumpTableEnumeration(t *testing.T) {
	// rodata: 4 dword entries with 3 distinct values.
	table := make([]byte, 16)
	vals := []uint32{0x401100, 0x401200, 0x401100, 0x401300}
	for i, v := range vals {
		le := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
		copy(table[i*4:], le)
	}
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.MemOp(x86.RegNone, x86.RAX, 4, rodataBase, 4))
		a.I(x86.JMP, x86.RegOp(x86.RAX, 8))
	}, table)
	st := InitialState("a_r")
	st.Pred.SetReg(x86.RAX, expr.V("i"))
	st.Pred.AddRange(expr.V("i"), pred.Range{Lo: 0, Hi: 3})
	ld, _ := m.Img.Fetch(textBase)
	outs, err := m.Step(st, ld)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("expected 3 distinct table values, got %d", len(outs))
	}
	seen := map[uint64]bool{}
	for _, o := range outs {
		jmp, _ := m.Img.Fetch(textBase + 7)
		jouts, err := m.Step(o.State, jmp)
		if err != nil {
			t.Fatal(err)
		}
		if len(jouts) != 1 || jouts[0].Kind != KJump {
			t.Fatalf("jmp outcomes: %+v", jouts)
		}
		tgt, ok := jouts[0].Resolved()
		if !ok {
			t.Fatal("table jump must resolve")
		}
		seen[tgt] = true
	}
	if !seen[0x401100] || !seen[0x401200] || !seen[0x401300] {
		t.Fatalf("targets: %v", seen)
	}
}

// TestWeirdAliasFork reproduces the core of Section 2: two stores through
// possibly-aliasing pointers make a subsequent load fork into both the
// overwritten and the preserved value.
func TestWeirdAliasFork(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8), x86.RegOp(x86.RAX, 8))
		a.I(x86.MOV, x86.MemOp(x86.RSI, x86.RegNone, 1, 0, 8), x86.ImmOp(1, 4))
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8))
	}, nil)
	st := InitialState("a_r")
	s1, _ := m.Img.Fetch(textBase)
	outs, err := m.Step(st, s1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("first store: %d outcomes", len(outs))
	}
	s2, _ := m.Img.Fetch(textBase + uint64(s1.Len))
	outs, err = m.Step(outs[0].State, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("second store must fork on aliasing: %d", len(outs))
	}
	var got []string
	for _, o := range outs {
		s3, _ := m.Img.Fetch(textBase + uint64(s1.Len) + uint64(s2.Len))
		louts, err := m.Step(o.State, s3)
		if err != nil {
			t.Fatal(err)
		}
		for _, lo := range louts {
			got = append(got, lo.State.Pred.Reg(x86.RCX).String())
		}
	}
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "0x1") {
		t.Fatalf("aliasing branch must read the overwriting store: %v", got)
	}
	if !strings.Contains(joined, "rax0") {
		t.Fatalf("separate branch must preserve the first store: %v", got)
	}
}

func TestCleanAfterCall(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) { a.I(x86.RET) }, nil)
	st := InitialState("a_r")
	// A stack clause, a heap clause, callee- and caller-saved registers.
	stack := expr.Sub(expr.V("rsp0"), expr.Word(16))
	heap := expr.V("rdi0")
	msts := m.writeMem(st, stack, 8, expr.Word(42))
	st = msts[0]
	msts = m.writeMem(st, heap, 8, expr.Word(7))
	st = msts[0]
	st.Pred.SetReg(x86.RBX, expr.V("rbx0"))
	st.Pred.SetReg(x86.RCX, expr.Word(9))

	clean := m.CleanAfterCall(st, 0x401000)
	if v, ok := clean.Pred.ReadMem(stack, 8); !ok || !v.IsWord(42) {
		t.Fatalf("stack clause must survive: %v %v", v, ok)
	}
	if _, ok := clean.Pred.ReadMem(heap, 8); ok {
		t.Fatal("heap clause must be destroyed")
	}
	if got := clean.Pred.Reg(x86.RBX); !got.Equal(expr.V("rbx0")) {
		t.Fatalf("callee-saved clobbered: %v", got)
	}
	if got := clean.Pred.Reg(x86.RCX); got.IsWord(9) {
		t.Fatal("caller-saved must be havocked")
	}
	// The memory model keeps only stack trees.
	for _, r := range clean.Mem.AllRegions(nil) {
		if !stackBased(r.Addr) {
			t.Fatalf("non-stack region survived: %v", r.Addr)
		}
	}
	// The original state is untouched.
	if _, ok := st.Pred.ReadMem(heap, 8); !ok {
		t.Fatal("input state mutated")
	}
}

func TestCallObligations(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) { a.I(x86.RET) }, nil)
	st := InitialState("a_r")
	st.Pred.SetReg(x86.RDI, expr.Sub(expr.V("rsp0"), expr.Word(40)))
	obs := m.CallObligations(st, "memset", 0x400701)
	if len(obs) != 1 {
		t.Fatalf("obligations: %v", obs)
	}
	want := "@400701 : memset(rdi := rsp0 - 0x28) MUST PRESERVE [rsp0 - 8 TO rsp0 + 8]"
	if obs[0] != want {
		t.Fatalf("obligation text:\n got %q\nwant %q", obs[0], want)
	}
	// Non-stack pointer arguments generate no obligation.
	st.Pred.SetReg(x86.RDI, expr.V("rdi0"))
	if obs := m.CallObligations(st, "memset", 0x400701); len(obs) != 0 {
		t.Fatalf("unexpected obligations: %v", obs)
	}
}

func TestLeaAndShifts(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.LEA, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RDI, x86.RSI, 4, 8, 8))
		a.I(x86.SHL, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 1))
		a.I(x86.MOV, x86.RegOp(x86.RBX, 8), x86.ImmOp(0x10, 4))
		a.I(x86.SHR, x86.RegOp(x86.RBX, 8), x86.ImmOp(4, 1))
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 4)
	want := expr.Mul(expr.Word(2), expr.Add(expr.V("rdi0"), expr.Mul(expr.Word(4), expr.V("rsi0")), expr.Word(8)))
	if got := st.Pred.Reg(x86.RAX); !got.Equal(want) {
		t.Fatalf("lea/shl: %v want %v", got, want)
	}
	if got := st.Pred.Reg(x86.RBX); !got.IsWord(1) {
		t.Fatalf("shr: %v", got)
	}
}

func TestDivWithCqo(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(-100, 4))
		a.I(x86.CQO)
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.ImmOp(7, 4))
		a.I(x86.IDIV, x86.RegOp(x86.RCX, 8))
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 4)
	if got := st.Pred.Reg(x86.RAX); !got.IsWord(^uint64(13)) { // -14
		t.Fatalf("idiv quotient: %v", got)
	}
	if got := st.Pred.Reg(x86.RDX); !got.IsWord(^uint64(1)) { // -2
		t.Fatalf("idiv remainder: %v", got)
	}
}

func TestXorZeroIdiom(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 1)
	if got := st.Pred.Reg(x86.RAX); !got.IsWord(0) {
		t.Fatalf("xor-zero: %v", got)
	}
}

func TestCmovForkAndSetcc(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.ImmOp(5, 1))
		a.Icc(x86.CMOVCC, x86.CondE, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RSI, 8))
	}, nil)
	st := InitialState("a_r")
	c, _ := m.Img.Fetch(textBase)
	outs, _ := m.Step(st, c)
	cm, _ := m.Img.Fetch(c.Next())
	outs, err := m.Step(outs[0].State, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("undecided cmov must fork: %d", len(outs))
	}
	// Decided setcc.
	m2 := newMachine(t, func(a *x86.Asm) {
		a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.RegOp(x86.RDI, 8))
		a.Icc(x86.SETCC, x86.CondE, x86.RegOp(x86.RAX, 1))
	}, nil)
	st2 := InitialState("a_r")
	c2, _ := m2.Img.Fetch(textBase)
	o2, _ := m2.Step(st2, c2)
	s2, _ := m2.Img.Fetch(c2.Next())
	o2, err = m2.Step(o2[0].State, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(o2) != 1 {
		t.Fatalf("sete after cmp x,x: %d outcomes", len(o2))
	}
	if got := expr.ZExt(o2[0].State.Pred.Reg(x86.RAX), 1); !got.IsWord(1) {
		t.Fatalf("sete: %v", got)
	}
}

func TestAssumptionsRecorded(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8), x86.ImmOp(1, 4))
	}, nil)
	st := InitialState("a_r") // memory model already has [rsp0, 8]
	inst, _ := m.Img.Fetch(textBase)
	outs, err := m.Step(st, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("assumed-separate write must not fork: %d", len(outs))
	}
	found := false
	for _, a := range m.Assumptions() {
		if strings.Contains(a, "ASSUMED SEPARATE") && strings.Contains(a, "rdi0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("assumption not recorded: %v", m.Assumptions())
	}
	m.ResetAssumptions()
	if len(m.Assumptions()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestUnknownStackOffsetWriteForksOrDestroys(t *testing.T) {
	// Write to rsp0 + unknown offset: the relation to [rsp0, 8] (return
	// address) is genuinely unknown — never assumed separate. After the
	// write, the return-address clause must be gone in at least one
	// produced state (the paper rejects such functions).
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RAX, 1, 0, 8), x86.ImmOp(0, 4))
	}, nil)
	st := InitialState("a_r")
	inst, _ := m.Img.Fetch(textBase)
	outs, err := m.Step(st, inst)
	if err != nil {
		t.Fatal(err)
	}
	clobbered := false
	for _, o := range outs {
		v, ok := o.State.Pred.ReadMem(expr.V("rsp0"), 8)
		if !ok || !v.Equal(expr.V("a_r")) {
			clobbered = true
		}
	}
	if !clobbered {
		t.Fatalf("unknown stack write must clobber the return address in some model (%d outcomes)", len(outs))
	}
}
