package sem

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/solver"
	"repro/internal/x86"
)

// Step is stepΣ(σ) for a single instruction (Definition 4.2): it applies
// the predicate transformer τ to the state and inserts the instruction's
// memory regions into the memory model, returning the nondeterministic set
// of successor symbolic states with their control effects. The input state
// is never mutated.
func (m *Machine) Step(st *State, inst x86.Inst) ([]Outcome, error) {
	m.curAddr = inst.Addr
	m.nfresh = 0
	st = st.Clone()
	ops := inst.Ops

	fall := func(states ...*State) []Outcome {
		out := make([]Outcome, len(states))
		for i, s := range states {
			out[i] = Outcome{State: s, Kind: KFall, Target: expr.Word(inst.Next())}
		}
		return out
	}

	// binaryALU implements dst ← f(dst, src) with flag policy.
	binaryALU := func(f func(a, b *expr.Expr, size int) *expr.Expr, setFlags func(s *State, a, b, res *expr.Expr, size int)) ([]Outcome, error) {
		size := ops[0].Size
		var out []Outcome
		for _, sv := range m.rval(st, ops[1]) {
			for _, dv := range m.rval(sv.st, ops[0]) {
				res := f(dv.v, sv.v, size)
				for _, ns := range m.writeOp(dv.st, ops[0], res) {
					if setFlags != nil {
						setFlags(ns, dv.v, sv.v, res, size)
					}
					out = append(out, fall(ns)...)
				}
			}
		}
		return out, nil
	}

	switch inst.Mn {
	case x86.NOP, x86.ENDBR64:
		return fall(st), nil

	case x86.HLT, x86.UD2, x86.INT3:
		return []Outcome{{State: st, Kind: KHalt}}, nil

	case x86.SYSCALL:
		// Linux syscall: rax, rcx, r11 clobbered; flags destroyed.
		st.Pred.SetReg(x86.RAX, m.fresh())
		st.Pred.SetReg(x86.RCX, m.fresh())
		st.Pred.SetReg(x86.R11, m.fresh())
		st.Pred.ClearFlags()
		return fall(st), nil

	case x86.MOV:
		var out []Outcome
		for _, sv := range m.rval(st, ops[1]) {
			out = append(out, fall(m.writeOp(sv.st, ops[0], sv.v)...)...)
		}
		return out, nil

	case x86.MOVZX:
		var out []Outcome
		for _, sv := range m.rval(st, ops[1]) {
			out = append(out, fall(m.writeOp(sv.st, ops[0], sv.v)...)...)
		}
		return out, nil

	case x86.MOVSX, x86.MOVSXD:
		var out []Outcome
		for _, sv := range m.rval(st, ops[1]) {
			v := expr.ZExt(expr.SExt(sv.v, ops[1].Size), ops[0].Size)
			out = append(out, fall(m.writeOp(sv.st, ops[0], v)...)...)
		}
		return out, nil

	case x86.LEA:
		addr := m.addrOf(st, ops[1])
		return fall(m.writeOp(st, ops[0], expr.ZExt(addr, ops[0].Size))...), nil

	case x86.ADD:
		return binaryALU(
			func(a, b *expr.Expr, size int) *expr.Expr { return expr.ZExt(expr.Add(a, b), size) },
			func(s *State, a, b, res *expr.Expr, size int) { s.Pred.ClearFlags() })

	case x86.SUB:
		return binaryALU(
			func(a, b *expr.Expr, size int) *expr.Expr { return expr.ZExt(expr.Sub(a, b), size) },
			func(s *State, a, b, res *expr.Expr, size int) { setFlagsCmp(s, a, b, size) })

	case x86.CMP:
		size := ops[0].Size
		var out []Outcome
		for _, sv := range m.rval(st, ops[1]) {
			for _, dv := range m.rval(sv.st, ops[0]) {
				setFlagsCmp(dv.st, dv.v, sv.v, size)
				out = append(out, fall(dv.st)...)
			}
		}
		return out, nil

	case x86.TEST:
		size := ops[0].Size
		var out []Outcome
		for _, sv := range m.rval(st, ops[1]) {
			for _, dv := range m.rval(sv.st, ops[0]) {
				setFlagsLogic(dv.st, expr.And(dv.v, sv.v), size)
				out = append(out, fall(dv.st)...)
			}
		}
		return out, nil

	case x86.AND:
		return binaryALU(
			func(a, b *expr.Expr, size int) *expr.Expr { return expr.And(a, b) },
			func(s *State, a, b, res *expr.Expr, size int) { setFlagsLogic(s, res, size) })

	case x86.OR:
		return binaryALU(
			func(a, b *expr.Expr, size int) *expr.Expr { return expr.Or(a, b) },
			func(s *State, a, b, res *expr.Expr, size int) { setFlagsLogic(s, res, size) })

	case x86.XOR:
		return binaryALU(
			func(a, b *expr.Expr, size int) *expr.Expr { return expr.Xor(a, b) },
			func(s *State, a, b, res *expr.Expr, size int) { setFlagsLogic(s, res, size) })

	case x86.ADC, x86.SBB:
		cf := evalCond(st.Pred, x86.CondB)
		return binaryALU(
			func(a, b *expr.Expr, size int) *expr.Expr {
				carry := expr.Word(0)
				switch cf {
				case solver.Yes:
					carry = expr.Word(1)
				case solver.Maybe:
					return m.fresh()
				}
				if inst.Mn == x86.ADC {
					return expr.ZExt(expr.Add(a, b, carry), size)
				}
				return expr.ZExt(expr.Sub(expr.Sub(a, b), carry), size)
			},
			func(s *State, a, b, res *expr.Expr, size int) { s.Pred.ClearFlags() })

	case x86.NOT:
		var out []Outcome
		for _, dv := range m.rval(st, ops[0]) {
			res := expr.ZExt(expr.Not(dv.v), ops[0].Size)
			out = append(out, fall(m.writeOp(dv.st, ops[0], res)...)...)
		}
		return out, nil

	case x86.NEG:
		var out []Outcome
		for _, dv := range m.rval(st, ops[0]) {
			res := expr.ZExt(expr.Neg(dv.v), ops[0].Size)
			for _, ns := range m.writeOp(dv.st, ops[0], res) {
				setFlagsCmp(ns, expr.Word(0), dv.v, ops[0].Size)
				out = append(out, fall(ns)...)
			}
		}
		return out, nil

	case x86.INC, x86.DEC:
		var out []Outcome
		delta := expr.Word(1)
		for _, dv := range m.rval(st, ops[0]) {
			var res *expr.Expr
			if inst.Mn == x86.INC {
				res = expr.ZExt(expr.Add(dv.v, delta), ops[0].Size)
			} else {
				res = expr.ZExt(expr.Sub(dv.v, delta), ops[0].Size)
			}
			for _, ns := range m.writeOp(dv.st, ops[0], res) {
				ns.Pred.ClearFlags()
				out = append(out, fall(ns)...)
			}
		}
		return out, nil

	case x86.IMUL:
		return m.stepIMul(st, inst, fall)

	case x86.MUL, x86.DIV, x86.IDIV:
		return m.stepMulDiv(st, inst, fall)

	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		return m.stepShift(st, inst, fall)

	case x86.BT, x86.BTS, x86.BTR, x86.BTC, x86.BSF, x86.BSR,
		x86.POPCNT, x86.XADD, x86.CMPXCHG, x86.BSWAP:
		return m.stepBits(st, inst, fall)

	case x86.MOVS, x86.STOS:
		return m.stepString(st, inst, fall)

	case x86.PUSH:
		var out []Outcome
		for _, sv := range m.rval(st, ops[0]) {
			s := sv.st
			rsp := expr.Sub(m.regVal(s, x86.RSP, 8), expr.Word(8))
			s.Pred.SetReg(x86.RSP, rsp)
			out = append(out, fall(m.writeMem(s, rsp, 8, sv.v)...)...)
		}
		return out, nil

	case x86.POP:
		rsp := m.regVal(st, x86.RSP, 8)
		var out []Outcome
		for _, sv := range m.readMem(st, rsp, 8) {
			s := sv.st
			s.Pred.SetReg(x86.RSP, expr.Add(rsp, expr.Word(8)))
			out = append(out, fall(m.writeOp(s, ops[0], sv.v)...)...)
		}
		return out, nil

	case x86.LEAVE:
		// mov rsp, rbp; pop rbp.
		rbp := m.regVal(st, x86.RBP, 8)
		st.Pred.SetReg(x86.RSP, rbp)
		var out []Outcome
		for _, sv := range m.readMem(st, rbp, 8) {
			s := sv.st
			s.Pred.SetReg(x86.RSP, expr.Add(rbp, expr.Word(8)))
			s.Pred.SetReg(x86.RBP, sv.v)
			out = append(out, fall(s)...)
		}
		return out, nil

	case x86.XCHG:
		var out []Outcome
		for _, av := range m.rval(st, ops[0]) {
			for _, bv := range m.rval(av.st, ops[1]) {
				for _, s1 := range m.writeOp(bv.st, ops[0], bv.v) {
					out = append(out, fall(m.writeOp(s1, ops[1], av.v)...)...)
				}
			}
		}
		return out, nil

	case x86.CDQE:
		// cdqe (REX.W) sign-extends eax into rax; cwde extends ax into eax.
		if len(inst.Bytes) > 0 && inst.Bytes[0] == 0x48 {
			eax := m.regVal(st, x86.RAX, 4)
			st.Pred.SetReg(x86.RAX, expr.SExt(eax, 4))
		} else {
			ax := m.regVal(st, x86.RAX, 2)
			m.writeReg(st, x86.RAX, 4, expr.ZExt(expr.SExt(ax, 2), 4))
		}
		return fall(st), nil

	case x86.CDQ:
		eax := m.regVal(st, x86.RAX, 4)
		m.writeReg(st, x86.RDX, 4, expr.ZExt(expr.Sar(expr.SExt(eax, 4), expr.Word(63)), 4))
		return fall(st), nil

	case x86.CQO:
		rax := m.regVal(st, x86.RAX, 8)
		st.Pred.SetReg(x86.RDX, expr.Sar(rax, expr.Word(63)))
		return fall(st), nil

	case x86.SETCC:
		var v *expr.Expr
		switch evalCond(st.Pred, inst.Cond) {
		case solver.Yes:
			v = expr.Word(1)
		case solver.No:
			v = expr.Word(0)
		default:
			v = m.fresh()
			st.Pred.AddRange(v, boolRange)
		}
		return fall(m.writeOp(st, ops[0], v)...), nil

	case x86.CMOVCC:
		switch evalCond(st.Pred, inst.Cond) {
		case solver.No:
			return fall(st), nil
		case solver.Yes:
			var out []Outcome
			for _, sv := range m.rval(st, ops[1]) {
				out = append(out, fall(m.writeOp(sv.st, ops[0], sv.v)...)...)
			}
			return out, nil
		}
		// Undecided: fork, refining each side.
		moved := st.Clone()
		refineBranch(moved, inst.Cond, true)
		refineBranch(st, inst.Cond, false)
		out := fall(st)
		for _, sv := range m.rval(moved, ops[1]) {
			out = append(out, fall(m.writeOp(sv.st, ops[0], sv.v)...)...)
		}
		return out, nil

	case x86.JMP:
		if tgt, ok := inst.Target(); ok {
			return []Outcome{{State: st, Kind: KJump, Target: expr.Word(tgt)}}, nil
		}
		var out []Outcome
		for _, sv := range m.rval(st, ops[0]) {
			out = append(out, Outcome{State: sv.st, Kind: KJump, Target: sv.v})
		}
		return out, nil

	case x86.JCC:
		tgt, _ := inst.Target()
		switch evalCond(st.Pred, inst.Cond) {
		case solver.Yes:
			return []Outcome{{State: st, Kind: KJump, Target: expr.Word(tgt)}}, nil
		case solver.No:
			return fall(st), nil
		}
		taken := st.Clone()
		refineBranch(taken, inst.Cond, true)
		refineBranch(st, inst.Cond, false)
		return []Outcome{
			{State: taken, Kind: KJump, Target: expr.Word(tgt)},
			{State: st, Kind: KFall, Target: expr.Word(inst.Next())},
		}, nil

	case x86.CALL:
		if tgt, ok := inst.Target(); ok {
			return []Outcome{{State: st, Kind: KCall, Target: expr.Word(tgt)}}, nil
		}
		var out []Outcome
		for _, sv := range m.rval(st, ops[0]) {
			out = append(out, Outcome{State: sv.st, Kind: KCall, Target: sv.v})
		}
		return out, nil

	case x86.RET:
		rsp := m.regVal(st, x86.RSP, 8)
		extra := uint64(0)
		if len(ops) == 1 {
			extra = uint64(ops[0].Imm)
		}
		var out []Outcome
		for _, sv := range m.readMem(st, rsp, 8) {
			s := sv.st
			s.Pred.SetReg(x86.RSP, expr.Add(rsp, expr.Word(8+extra)))
			out = append(out, Outcome{State: s, Kind: KRet, Target: sv.v})
		}
		return out, nil
	}
	return nil, fmt.Errorf("sem: no semantics for %s at %#x", inst.String(), inst.Addr)
}
