package sem

import (
	"fmt"
	"os"

	"repro/internal/expr"
	"repro/internal/memmodel"
	"repro/internal/pred"
	"repro/internal/solver"
)

var dbgKills = os.Getenv("HGDBG") != ""

// readMem reads the region [addr, size], forking the state per produced
// memory model. Reads of bounded symbolic addresses into read-only data
// enumerate the possible values ("one edge per read value" — the
// jump-table case of Section 2); unresolvable reads produce a fresh
// symbolic value recorded as a new memory clause.
func (m *Machine) readMem(st *State, addr *expr.Expr, size int) []valState {
	// Exact clause hit.
	if v, ok := st.Pred.ReadMem(addr, size); ok {
		return []valState{{st, v}}
	}

	// Concrete address in read-only data: the binary's bytes are the value.
	if w, ok := addr.AsWord(); ok {
		if v, ok := m.Img.ReadRO(w, size); ok {
			return []valState{{st, expr.Word(v)}}
		}
	}

	// Bounded symbolic address over read-only data: enumerate (jump
	// tables, switch dispatch).
	if vals, ok := m.enumerateTable(st.Pred, addr, size); ok {
		out := make([]valState, 0, len(vals))
		for i, v := range vals {
			s := st
			if i < len(vals)-1 {
				s = st.Clone()
			}
			out = append(out, valState{s, expr.Word(v)})
		}
		return out
	}

	// Non-evaluable region (the eval-⊥ case of Definition 4.2): the
	// region is not inserted into the memory model; the read produces a
	// fresh symbolic value, recorded so repeated reads agree.
	if !insertable(addr) {
		v := m.fresh()
		st.Pred.WriteMem(addr, size, v)
		return []valState{{st, v}}
	}

	// General case: insert the region into the memory model; derive the
	// value per produced model.
	results, fellBack := memmodel.InsCounted(memmodel.NewRegion(addr, uint64(size)), st.Mem, oracle{m, st}, m.Cfg.MM)
	m.noteIns(results, fellBack)
	out := make([]valState, 0, len(results))
	freshVal := m.fresh() // same variable in every fork: deterministic
	for i, res := range results {
		s := st
		if i < len(results)-1 {
			s = st.Clone()
		}
		s.Mem = res.Forest
		v := m.valueUnder(s.Pred, addr, size, res.Rel)
		if v == nil {
			v = freshVal
		}
		s.Pred.WriteMem(addr, size, v)
		out = append(out, valState{s, v})
	}
	return out
}

// valueUnder derives the read value from existing memory clauses given the
// relations of this model: an aliasing clause supplies its value directly;
// an enclosing clause with a computable offset supplies the byte slice.
func (m *Machine) valueUnder(p *pred.Pred, addr *expr.Expr, size int, rel map[memmodel.RegionID]memmodel.RelKind) *expr.Expr {
	var found *expr.Expr
	p.MemEntries(func(e pred.MemEntry) {
		if found != nil {
			return
		}
		switch rel[entryID(e)] {
		case memmodel.RelAlias:
			if e.Size == size {
				found = e.Val
			}
		case memmodel.RelEnclosedIn:
			// The read lies inside a region with a known value: slice
			// the little-endian bytes when the offset is constant.
			if off, ok := solver.SameBaseDistance(addr, e.Addr); ok && off >= 0 &&
				off+int64(size) <= int64(e.Size) {
				found = expr.ZExt(expr.Shr(e.Val, expr.Word(uint64(off)*8)), size)
			}
		}
	})
	return found
}

// writeMem writes val into [addr, size], forking the state per produced
// memory model and invalidating or updating the memory clauses according to
// each model's relations (aliasing clauses take the new value, enclosing or
// destroyed clauses are dropped, separate clauses survive).
func (m *Machine) writeMem(st *State, addr *expr.Expr, size int, val *expr.Expr) []*State {
	// Non-evaluable destination (eval ⊥, Definition 4.2): the region is
	// not inserted; the write overapproximates any relation it may have
	// with the current model by invalidating every clause not necessarily
	// separate from it. An unbounded stack write therefore destroys the
	// return-address clause, and the function is later rejected at ret —
	// exactly the paper's treatment of unprovable stack writes.
	if !insertable(addr) {
		w := solver.Region{Addr: addr, Size: uint64(size)}
		o := oracle{m, st}
		st.Pred.FilterMem(func(e pred.MemEntry) bool {
			sep := o.Compare(w, solver.Region{Addr: e.Addr, Size: uint64(e.Size)}).Separate == solver.Yes
			if !sep && dbgKills {
				fmt.Printf("DBGW @%x [%s,%d] kills [%s,%d]\n", m.curAddr, addr, size, e.Addr, e.Size)
				expr.ToLinear(addr).Terms(func(atom *expr.Expr, c uint64) {
					r, ok := st.Pred.RangeOf(atom)
					fmt.Printf("   atom %s c=%d r=%+v ok=%v\n", atom, c, r, ok)
				})
			}
			return sep
		})
		st.Pred.WriteMem(addr, size, val)
		return []*State{st}
	}
	results, fellBack := memmodel.InsCounted(memmodel.NewRegion(addr, uint64(size)), st.Mem, oracle{m, st}, m.Cfg.MM)
	m.noteIns(results, fellBack)
	out := make([]*State, 0, len(results))
	for i, res := range results {
		s := st
		if i < len(results)-1 {
			s = st.Clone()
		}
		s.Mem = res.Forest
		// Update or invalidate each clause per its relation to the write:
		// aliases take the new value; enclosing clauses at constant
		// offsets are spliced byte-precisely; enclosed clauses become
		// slices of the new value; everything else is dropped.
		type update struct {
			e   pred.MemEntry
			val *expr.Expr
		}
		var updates []update
		s.Pred.MemEntries(func(e pred.MemEntry) {
			rel, known := res.Rel[entryID(e)]
			if !known {
				return // no region in the model: treated as destroyed
			}
			switch rel {
			case memmodel.RelAlias:
				if e.Size == size {
					updates = append(updates, update{e, val})
				}
			case memmodel.RelEnclosedIn:
				// The write lands inside clause e.
				if off, ok := solver.SameBaseDistance(addr, e.Addr); ok &&
					off >= 0 && off+int64(size) <= int64(e.Size) {
					updates = append(updates, update{e, splice(e.Val, val, off, size, e.Size)})
				}
			case memmodel.RelEncloses:
				// Clause e lies inside the written region.
				if off, ok := solver.SameBaseDistance(e.Addr, addr); ok &&
					off >= 0 && off+int64(e.Size) <= int64(size) {
					updates = append(updates,
						update{e, expr.ZExt(expr.Shr(val, expr.Word(uint64(off)*8)), e.Size)})
				}
			}
		})
		byID := map[memmodel.RegionID]*expr.Expr{}
		for _, u := range updates {
			byID[entryID(u.e)] = u.val
		}
		s.Pred.FilterMem(func(e pred.MemEntry) bool {
			if rel, known := res.Rel[entryID(e)]; known && rel == memmodel.RelSeparate {
				return true
			}
			_, updated := byID[entryID(e)]
			return updated
		})
		for _, u := range updates {
			s.Pred.WriteMem(u.e.Addr, u.e.Size, u.val)
		}
		s.Pred.WriteMem(addr, size, val)
		out = append(out, s)
	}
	return out
}

// splice replaces size bytes at byte offset off within the outer-byte-wide
// value old by val (little endian).
func splice(old, val *expr.Expr, off int64, size, outer int) *expr.Expr {
	mask := uint64(1)<<(uint(size)*8) - 1
	if size >= 8 {
		mask = ^uint64(0)
	}
	shifted := expr.Shl(expr.And(val, expr.Word(mask)), expr.Word(uint64(off)*8))
	kept := expr.And(old, expr.Word(^(mask << (uint(off) * 8))))
	return expr.ZExt(expr.Or(kept, shifted), outer)
}

// insertable reports whether an address evaluates to a region the memory
// model tracks: a constant, or a single unscaled symbolic base plus a
// constant offset. Anything else (scaled indices, multiple bases) is the
// paper's eval-⊥ case.
func insertable(addr *expr.Expr) bool {
	l := expr.ToLinear(addr)
	if l.NumTerms() == 0 {
		return true
	}
	_, coeff, ok := l.SingleTerm()
	return ok && coeff == 1
}

// entryID maps a predicate memory clause to its region identity in the
// memory model. Both sides hold the same interned address expression, so
// the lookup is exact without rendering a key string.
func entryID(e pred.MemEntry) memmodel.RegionID {
	return memmodel.RegionID{Addr: e.Addr, Size: uint64(e.Size)}
}

// enumerateTable recognises reads at K + c·atom where the atom is interval
// bounded and every slot lies in read-only data, returning the distinct
// values in slot order.
func (m *Machine) enumerateTable(p *pred.Pred, addr *expr.Expr, size int) ([]uint64, bool) {
	l := expr.ToLinear(addr)
	atom, coeff, ok := l.SingleTerm()
	if !ok || coeff == 0 || coeff > 64 {
		return nil, false
	}
	r, ok := p.RangeOf(atom)
	if !ok {
		return nil, false
	}
	count := r.Width() + 1
	if count > uint64(m.Cfg.MaxTableEntries) {
		return nil, false
	}
	base := l.K + coeff*r.Lo
	if !m.Img.IsReadOnly(base, int(coeff*(count-1))+size) {
		return nil, false
	}
	seen := map[uint64]bool{}
	var vals []uint64
	for i := uint64(0); i < count; i++ {
		v, ok := m.Img.ReadRO(base+coeff*i, size)
		if !ok {
			return nil, false
		}
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	return vals, true
}
