package sem

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/pred"
	"repro/internal/x86"
)

func TestJumpTableBoundRespected(t *testing.T) {
	// A table larger than MaxTableEntries is not enumerated: the read
	// produces a symbolic value instead.
	table := make([]byte, 8*64)
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RegNone, x86.RAX, 8, rodataBase, 8))
	}, table)
	m.Cfg.MaxTableEntries = 16
	st := InitialState("a_r")
	st.Pred.SetReg(x86.RAX, expr.V("i"))
	st.Pred.AddRange(expr.V("i"), pred.Range{Lo: 0, Hi: 63})
	inst, _ := m.Img.Fetch(textBase)
	outs, err := m.Step(st, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("oversized table must not fork: %d", len(outs))
	}
	if _, ok := outs[0].State.Pred.Reg(x86.RAX).AsWord(); ok {
		t.Fatal("oversized table read must stay symbolic")
	}
}

func TestTableReadOutsideRodata(t *testing.T) {
	// Reads indexed into writable .data are never enumerated.
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RegNone, x86.RAX, 8, 0x4b0000, 8))
	}, nil)
	st := InitialState("a_r")
	st.Pred.SetReg(x86.RAX, expr.V("i"))
	st.Pred.AddRange(expr.V("i"), pred.Range{Lo: 0, Hi: 3})
	inst, _ := m.Img.Fetch(textBase)
	outs, err := m.Step(st, inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if _, ok := o.State.Pred.Reg(x86.RAX).AsWord(); ok {
			t.Fatal("unmapped/writable table read must stay symbolic")
		}
	}
}

func TestMultipleObligations(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) { a.I(x86.RET) }, nil)
	st := InitialState("a_r")
	st.Pred.SetReg(x86.RDI, expr.Sub(expr.V("rsp0"), expr.Word(0x20)))
	st.Pred.SetReg(x86.RSI, expr.Sub(expr.V("rsp0"), expr.Word(0x40)))
	st.Pred.SetReg(x86.RDX, expr.Word(48))
	obs := m.CallObligations(st, "memcpy", 0x400900)
	if len(obs) != 2 {
		t.Fatalf("obligations: %v", obs)
	}
	for _, o := range obs {
		if !strings.Contains(o, "memcpy") || !strings.Contains(o, "MUST PRESERVE") {
			t.Fatalf("obligation text: %q", o)
		}
	}
}

func TestDeterministicFreshNames(t *testing.T) {
	// Re-running the same instruction on the same state produces identical
	// fresh names — the property the Step-2 checker relies on.
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8))
	}, nil)
	st := InitialState("a_r")
	inst, _ := m.Img.Fetch(textBase)
	o1, err := m.Step(st, inst)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := m.Step(st, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(o1) != len(o2) {
		t.Fatalf("outcome counts differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i].State.Key() != o2[i].State.Key() {
			t.Fatalf("outcome %d keys differ:\n%s\nvs\n%s", i, o1[i].State.Key(), o2[i].State.Key())
		}
	}
}

func TestStepDoesNotMutateInput(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 1))
	}, nil)
	st := InitialState("a_r")
	key := st.Key()
	inst, _ := m.Img.Fetch(textBase)
	if _, err := m.Step(st, inst); err != nil {
		t.Fatal(err)
	}
	if st.Key() != key {
		t.Fatal("Step mutated its input state")
	}
}

func TestEnclosedReadSlicesValue(t *testing.T) {
	// Store 8 bytes, read 4 at offset 4: the value is the sliced bytes.
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.MemOp(x86.RBP, x86.RegNone, 1, -8, 8), x86.ImmOp(0x11223344, 4))
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.MemOp(x86.RBP, x86.RegNone, 1, -4, 4))
	}, nil)
	st := InitialState("a_r")
	st.Pred.SetReg(x86.RBP, expr.Sub(expr.V("rsp0"), expr.Word(0x10)))
	s2 := run(t, m, st, textBase, 2)
	// The qword value 0x11223344 has zero upper bytes; the dword read at
	// +4 must therefore be 0.
	if got := s2.Pred.Reg(x86.RAX); !got.IsWord(0) {
		t.Fatalf("sliced read: %v", got)
	}
}

func TestSyscallClobbers(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.SYSCALL)
	}, nil)
	st := InitialState("a_r")
	s2 := run(t, m, st, textBase, 1)
	for _, r := range []x86.Reg{x86.RAX, x86.RCX, x86.R11} {
		v := s2.Pred.Reg(r)
		if v != nil {
			if _, isWord := v.AsWord(); isWord {
				t.Fatalf("%s must be havocked", r)
			}
			if v.Equal(expr.V(expr.Var(r.String() + "0"))) {
				t.Fatalf("%s must not keep its initial value", r)
			}
		}
	}
	// Callee-saved registers survive.
	if got := s2.Pred.Reg(x86.RBX); !got.Equal(expr.V("rbx0")) {
		t.Fatalf("rbx: %v", got)
	}
}

func TestRepStosBounded(t *testing.T) {
	// rep stosq with a constant count inside the frame: the return-address
	// clause survives; the filled slots' clauses are invalidated.
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, -0x20, 8), x86.ImmOp(7, 4))
		a.I(x86.LEA, x86.RegOp(x86.RDI, 8), x86.MemOp(x86.RSP, x86.RegNone, 1, -0x40, 8))
		a.I(x86.MOV, x86.RegOp(x86.RCX, 8), x86.ImmOp(2, 4))
		a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
		a.Raw(0xf3, 0x48, 0xab) // rep stosq: fills [rsp0-0x40, rsp0-0x30)
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 5)
	if v, ok := st.Pred.ReadMem(expr.V("rsp0"), 8); !ok || !v.Equal(expr.V("a_r")) {
		t.Fatalf("return address clause lost: %v %v", v, ok)
	}
	if v, ok := st.Pred.ReadMem(expr.Sub(expr.V("rsp0"), expr.Word(0x20)), 8); !ok || !v.IsWord(7) {
		t.Fatalf("out-of-extent clause must survive: %v %v", v, ok)
	}
	if got := st.Pred.Reg(x86.RCX); !got.IsWord(0) {
		t.Fatalf("rcx after rep: %v", got)
	}
	want := expr.Sub(expr.V("rsp0"), expr.Word(0x30))
	if got := st.Pred.Reg(x86.RDI); !got.Equal(want) {
		t.Fatalf("rdi after rep: %v want %v", got, want)
	}
}

func TestRepStosUnboundedKillsFrame(t *testing.T) {
	// rep stos with an unknown count through a frame pointer: every memory
	// clause may be hit, including the return address — the function would
	// be rejected at ret, like the paper's memset-through-frame case when
	// inlined.
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.LEA, x86.RegOp(x86.RDI, 8), x86.MemOp(x86.RSP, x86.RegNone, 1, -0x40, 8))
		a.Raw(0xf3, 0x48, 0xab)
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 2)
	if st.Pred.NumMem() != 0 {
		t.Fatalf("unbounded block write must clear all memory clauses, %d left", st.Pred.NumMem())
	}
}

// TestQuickSpliceMatchesConcrete: the byte-splice used for enclosed writes
// agrees with concrete little-endian memory semantics.
func TestQuickSpliceMatchesConcrete(t *testing.T) {
	f := func(old, val uint64, off8, size8 uint8) bool {
		size := []int{1, 2, 4}[size8%3]
		off := int64(off8) % int64(8-size)
		got := splice(expr.Word(old), expr.Word(val), off, size, 8)
		w, ok := got.AsWord()
		if !ok {
			return false
		}
		mask := uint64(1)<<(uint(size)*8) - 1
		want := old&^(mask<<(uint(off)*8)) | (val&mask)<<(uint(off)*8)
		return w == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdcSbbWithKnownCarry(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.RegOp(x86.RDI, 8)) // CF = 0
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(10, 4))
		a.I(x86.ADC, x86.RegOp(x86.RAX, 8), x86.ImmOp(5, 1)) // flags cleared after
		a.I(x86.MOV, x86.RegOp(x86.RBX, 8), x86.ImmOp(10, 4))
		a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.RegOp(x86.RDI, 8)) // CF = 0 again
		a.I(x86.SBB, x86.RegOp(x86.RBX, 8), x86.ImmOp(5, 1))
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 6)
	if got := st.Pred.Reg(x86.RAX); !got.IsWord(15) {
		t.Fatalf("adc with CF=0: %v", got)
	}
	if got := st.Pred.Reg(x86.RBX); !got.IsWord(5) {
		t.Fatalf("sbb with CF=0: %v", got)
	}
}

func TestRetWithImmediate(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.RET, x86.ImmOp(0x10, 2))
	}, nil)
	st := InitialState("a_r")
	inst, _ := m.Img.Fetch(textBase)
	outs, err := m.Step(st, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Kind != KRet {
		t.Fatalf("outcomes: %+v", outs)
	}
	want := expr.Add(expr.V("rsp0"), expr.Word(0x18))
	if got := outs[0].State.Pred.Reg(x86.RSP); !got.Equal(want) {
		t.Fatalf("ret imm16 rsp: %v want %v", got, want)
	}
}

func TestPushMemAndMovzxMem(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, -8, 8), x86.ImmOp(0x1ff, 4))
		a.I(x86.PUSH, x86.MemOp(x86.RSP, x86.RegNone, 1, -8, 8))
		a.I(x86.MOVZX, x86.RegOp(x86.RBX, 4), x86.MemOp(x86.RSP, x86.RegNone, 1, 0, 1))
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 3)
	if v, ok := st.Pred.ReadMem(expr.Sub(expr.V("rsp0"), expr.Word(8)), 8); !ok || !v.IsWord(0x1ff) {
		t.Fatalf("pushed value: %v %v", v, ok)
	}
	if got := st.Pred.Reg(x86.RBX); !got.IsWord(0xff) {
		t.Fatalf("movzx low byte: %v", got)
	}
}

func TestCmovTakenAndRolSymbolic(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.RegOp(x86.RDI, 8)) // ZF = 1
		a.Icc(x86.CMOVCC, x86.CondE, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RSI, 8))
		a.I(x86.ROL, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 1)) // symbolic count
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 3)
	if got := st.Pred.Reg(x86.RAX); got == nil {
		t.Fatal("rol result must stay named")
	} else if _, isW := got.AsWord(); isW {
		t.Fatal("symbolic rotate cannot be concrete")
	}
}

func TestXchgMem(t *testing.T) {
	m := newMachine(t, func(a *x86.Asm) {
		a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, -8, 8), x86.ImmOp(3, 4))
		a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(4, 4))
		a.I(x86.XCHG, x86.MemOp(x86.RSP, x86.RegNone, 1, -8, 8), x86.RegOp(x86.RAX, 8))
	}, nil)
	st := run(t, m, InitialState("a_r"), textBase, 3)
	if got := st.Pred.Reg(x86.RAX); !got.IsWord(3) {
		t.Fatalf("xchg reg: %v", got)
	}
	if v, ok := st.Pred.ReadMem(expr.Sub(expr.V("rsp0"), expr.Word(8)), 8); !ok || !v.IsWord(4) {
		t.Fatalf("xchg mem: %v %v", v, ok)
	}
}
