// Package sem implements the predicate transformer τ of the paper: the
// symbolic execution of one x86-64 instruction over a symbolic state
// ⟨P, M⟩ (predicate × memory model), per Definition 4.2. Memory operands
// insert their regions into the memory model, nondeterministically forking
// the state when pointer relations are unknown; bounded reads from
// read-only data enumerate jump tables ("one edge per read value", §2).
package sem

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/memmodel"
	"repro/internal/pred"
	"repro/internal/x86"
)

// State is a symbolic state σ = ⟨P, M⟩: a vertex of the Hoare graph.
type State struct {
	Pred *pred.Pred
	Mem  memmodel.Forest
}

// NewState returns σ with predicate ⊤ and the empty memory model.
func NewState() *State {
	return &State{Pred: pred.New()}
}

// InitialState returns the paper's initial symbolic state for exploring a
// function: every register holds its initial-value variable (rax0, rdi0,
// …), and the top of the stack frame holds the symbolic return address
// retSym, with [rsp0, 8] inserted into the memory model
// (P0 = {∗[rsp,8] == a_r}, M0 = {[rsp0,8]} in Figure 1).
func InitialState(retSym expr.Var) *State {
	st := NewState()
	for _, r := range x86.GPRs {
		st.Pred.SetReg(r, expr.V(expr.Var(r.String()+"0")))
	}
	rsp0 := expr.V("rsp0")
	st.Pred.WriteMem(rsp0, 8, expr.V(retSym))
	st.Mem = memmodel.Forest{memmodel.Leaf(memmodel.NewRegion(rsp0, 8))}
	return st
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	return &State{Pred: s.Pred.Clone(), Mem: s.Mem.Clone()}
}

// Key returns the canonical fingerprint of the state (predicate and
// memory model), used where a string identity is needed (NoJoin dedup,
// diagnostics).
func (s *State) Key() string {
	return s.Pred.Key() + "|" + s.Mem.Key()
}

// Same reports semantic equality of two states without rendering keys: the
// predicates compare clause-by-clause (pointer compares on interned
// expressions) and the memory models compare structurally with a canonical
// Key fallback. It is the fixed-point test of the exploration.
func (s *State) Same(o *State) bool {
	return s.Pred.Same(o.Pred) && s.Mem.Same(o.Mem)
}

// String renders the state.
func (s *State) String() string {
	return fmt.Sprintf("⟨%s, %s⟩", s.Pred, s.Mem)
}

// OutKind classifies the control effect of one symbolic step.
type OutKind uint8

// The control effects a step can have.
const (
	KFall OutKind = iota // fall through to the next instruction
	KJump                // rip set to Target (resolved or not)
	KCall                // call with Target (resolved or not); state is at the call site
	KRet                 // return; Target is the popped value
	KHalt                // no successor (hlt / ud2 / int3)
)

// String renders the kind.
func (k OutKind) String() string {
	switch k {
	case KFall:
		return "fall"
	case KJump:
		return "jump"
	case KCall:
		return "call"
	case KRet:
		return "ret"
	default:
		return "halt"
	}
}

// Outcome is one element of stepΣ(σ): a successor symbolic state plus its
// control effect. For KJump/KCall, Target is the symbolic branch target
// (a Word when resolved). For KRet, Target is the popped return value and
// the state has rsp already incremented.
type Outcome struct {
	State  *State
	Kind   OutKind
	Target *expr.Expr
}

// Resolved returns the concrete target address if Target is a word.
func (o Outcome) Resolved() (uint64, bool) {
	if o.Target == nil {
		return 0, false
	}
	return o.Target.AsWord()
}
