package sem

import (
	"math/bits"

	"repro/internal/solver"

	"repro/internal/expr"
	"repro/internal/pred"
	"repro/internal/x86"
)

// boolRange constrains an unknown boolean to {0, 1}.
var boolRange = pred.Range{Lo: 0, Hi: 1}

// stepIMul handles the one-, two- and three-operand imul forms.
func (m *Machine) stepIMul(st *State, inst x86.Inst, fall func(...*State) []Outcome) ([]Outcome, error) {
	ops := inst.Ops
	switch len(ops) {
	case 1:
		// rdx:rax ← rax · r/m (signed widening). The upper half is
		// overapproximated symbolically.
		size := ops[0].Size
		var out []Outcome
		for _, sv := range m.rval(st, ops[0]) {
			s := sv.st
			rax := m.regVal(s, x86.RAX, size)
			lo := expr.ZExt(expr.Mul(rax, sv.v), size)
			m.writeReg(s, x86.RAX, size, lo)
			m.writeReg(s, x86.RDX, size, m.fresh())
			s.Pred.ClearFlags()
			out = append(out, fall(s)...)
		}
		return out, nil
	case 2:
		size := ops[0].Size
		var out []Outcome
		for _, sv := range m.rval(st, ops[1]) {
			s := sv.st
			dst := m.regVal(s, ops[0].Reg, size)
			res := expr.ZExt(expr.Mul(dst, sv.v), size)
			m.writeReg(s, ops[0].Reg, size, res)
			s.Pred.ClearFlags()
			out = append(out, fall(s)...)
		}
		return out, nil
	default: // 3-operand: dst ← src · imm
		size := ops[0].Size
		imm := expr.Word(uint64(ops[2].Imm))
		var out []Outcome
		for _, sv := range m.rval(st, ops[1]) {
			s := sv.st
			res := expr.ZExt(expr.Mul(sv.v, imm), size)
			m.writeReg(s, ops[0].Reg, size, res)
			s.Pred.ClearFlags()
			out = append(out, fall(s)...)
		}
		return out, nil
	}
}

// stepMulDiv handles the one-operand mul/div/idiv forms over rdx:rax.
func (m *Machine) stepMulDiv(st *State, inst x86.Inst, fall func(...*State) []Outcome) ([]Outcome, error) {
	size := inst.Ops[0].Size
	var out []Outcome
	for _, sv := range m.rval(st, inst.Ops[0]) {
		s := sv.st
		rax := m.regVal(s, x86.RAX, size)
		rdx := m.regVal(s, x86.RDX, size)
		switch inst.Mn {
		case x86.MUL:
			lo := expr.ZExt(expr.Mul(rax, sv.v), size)
			m.writeReg(s, x86.RAX, size, lo)
			m.writeReg(s, x86.RDX, size, m.fresh())
		case x86.DIV:
			// Precise when the dividend's upper half is zero (the common
			// xor edx, edx; div pattern).
			if rdx.IsWord(0) {
				m.writeReg(s, x86.RAX, size, expr.ZExt(expr.UDiv(rax, sv.v), size))
				m.writeReg(s, x86.RDX, size, expr.ZExt(expr.URem(rax, sv.v), size))
			} else {
				m.writeReg(s, x86.RAX, size, m.fresh())
				m.writeReg(s, x86.RDX, size, m.fresh())
			}
		case x86.IDIV:
			// Precise when rdx holds the sign extension of rax (the
			// cqo/cdq; idiv pattern).
			sext := expr.ZExt(expr.Sar(expr.SExt(rax, size), expr.Word(63)), size)
			if rdx.Equal(sext) {
				a := expr.SExt(rax, size)
				b := expr.SExt(sv.v, size)
				m.writeReg(s, x86.RAX, size, expr.ZExt(expr.SDiv(a, b), size))
				m.writeReg(s, x86.RDX, size, expr.ZExt(expr.SRem(a, b), size))
			} else {
				m.writeReg(s, x86.RAX, size, m.fresh())
				m.writeReg(s, x86.RDX, size, m.fresh())
			}
		}
		s.Pred.ClearFlags()
		out = append(out, fall(s)...)
	}
	return out, nil
}

// stepShift handles shl/shr/sar/rol/ror.
func (m *Machine) stepShift(st *State, inst x86.Inst, fall func(...*State) []Outcome) ([]Outcome, error) {
	ops := inst.Ops
	size := ops[0].Size
	countMask := uint64(63)
	if size < 8 {
		countMask = 31
	}
	var out []Outcome
	for _, cv := range m.rval(st, ops[1]) {
		for _, dv := range m.rval(cv.st, ops[0]) {
			var res *expr.Expr
			if c, ok := cv.v.AsWord(); ok {
				c &= countMask
				cw := expr.Word(c)
				switch inst.Mn {
				case x86.SHL:
					res = expr.ZExt(expr.Shl(dv.v, cw), size)
				case x86.SHR:
					res = expr.Shr(dv.v, cw) // operand already masked
				case x86.SAR:
					res = expr.ZExt(expr.Sar(expr.SExt(dv.v, size), cw), size)
				case x86.ROL:
					res = rotateSized(dv.v, c, size, true)
				case x86.ROR:
					res = rotateSized(dv.v, c, size, false)
				}
			} else {
				res = m.fresh()
			}
			for _, ns := range m.writeOp(dv.st, ops[0], res) {
				ns.Pred.ClearFlags()
				out = append(out, fall(ns)...)
			}
		}
	}
	return out, nil
}

// rotateSized rotates a size-byte value by c bits.
func rotateSized(v *expr.Expr, c uint64, size int, left bool) *expr.Expr {
	bits := uint64(size) * 8
	c %= bits
	if c == 0 {
		return v
	}
	if !left {
		c = bits - c
	}
	hi := expr.Shl(v, expr.Word(c))
	lo := expr.Shr(v, expr.Word(bits-c))
	return expr.ZExt(expr.Or(hi, lo), size)
}

// stepBits handles the bit-manipulation family: precise on constant
// operands, soundly havocked otherwise (the written part becomes a fresh
// unknown and the flags are cleared).
func (m *Machine) stepBits(st *State, inst x86.Inst, fall func(...*State) []Outcome) ([]Outcome, error) {
	ops := inst.Ops
	size := ops[0].Size
	var out []Outcome
	switch inst.Mn {
	case x86.BT, x86.BTS, x86.BTR, x86.BTC:
		for _, ov := range m.rval(st, ops[1]) {
			for _, dv := range m.rval(ov.st, ops[0]) {
				s := dv.st
				s.Pred.ClearFlags()
				v, vok := dv.v.AsWord()
				o, ook := ov.v.AsWord()
				var res *expr.Expr
				if vok && ook {
					off := o % (uint64(size) * 8)
					s.Pred.SetFlag(x86.CF, expr.Word(v>>off&1))
					switch inst.Mn {
					case x86.BTS:
						res = expr.Word(v | 1<<off)
					case x86.BTR:
						res = expr.Word(v &^ (1 << off))
					case x86.BTC:
						res = expr.Word(v ^ 1<<off)
					}
				} else if inst.Mn != x86.BT {
					res = m.fresh()
				}
				if inst.Mn == x86.BT {
					out = append(out, fall(s)...)
					continue
				}
				if res == nil {
					res = m.fresh()
				}
				out = append(out, fall(m.writeOp(s, ops[0], res)...)...)
			}
		}
		return out, nil

	case x86.BSF, x86.BSR:
		for _, sv := range m.rval(st, ops[1]) {
			s := sv.st
			var res *expr.Expr
			if w, ok := sv.v.AsWord(); ok && w != 0 {
				if inst.Mn == x86.BSF {
					res = expr.Word(uint64(bits.TrailingZeros64(w)))
				} else {
					res = expr.Word(uint64(bits.Len64(w) - 1))
				}
			} else {
				res = m.fresh()
				s.Pred.AddRange(res, pred.Range{Lo: 0, Hi: uint64(size)*8 - 1})
			}
			s.Pred.ClearFlags()
			m.writeReg(s, ops[0].Reg, size, res)
			out = append(out, fall(s)...)
		}
		return out, nil

	case x86.POPCNT:
		for _, sv := range m.rval(st, ops[1]) {
			s := sv.st
			var res *expr.Expr
			if w, ok := sv.v.AsWord(); ok {
				res = expr.Word(uint64(bits.OnesCount64(w)))
			} else {
				res = m.fresh()
				s.Pred.AddRange(res, pred.Range{Lo: 0, Hi: uint64(size) * 8})
			}
			s.Pred.ClearFlags()
			m.writeReg(s, ops[0].Reg, size, res)
			out = append(out, fall(s)...)
		}
		return out, nil

	case x86.XADD:
		for _, bv := range m.rval(st, ops[1]) {
			for _, av := range m.rval(bv.st, ops[0]) {
				s := av.st
				sum := expr.ZExt(expr.Add(av.v, bv.v), size)
				m.writeReg(s, ops[1].Reg, size, av.v)
				s.Pred.ClearFlags()
				out = append(out, fall(m.writeOp(s, ops[0], sum)...)...)
			}
		}
		return out, nil

	case x86.CMPXCHG:
		for _, sv := range m.rval(st, ops[1]) {
			for _, dv := range m.rval(sv.st, ops[0]) {
				s := dv.st
				acc := m.regVal(s, x86.RAX, size)
				aw, aok := acc.AsWord()
				dw, dok := dv.v.AsWord()
				if aok && dok {
					setFlagsCmp(s, acc, dv.v, size)
					if aw == dw {
						out = append(out, fall(m.writeOp(s, ops[0], sv.v)...)...)
					} else {
						m.writeReg(s, x86.RAX, size, dv.v)
						out = append(out, fall(s)...)
					}
					continue
				}
				// Undecided: fork both outcomes (overapproximation).
				eq := s.Clone()
				setFlagsCmp(eq, acc, dv.v, size)
				out = append(out, fall(m.writeOp(eq, ops[0], sv.v)...)...)
				ne := s
				setFlagsCmp(ne, acc, dv.v, size)
				m.writeReg(ne, x86.RAX, size, dv.v)
				out = append(out, fall(ne)...)
			}
		}
		return out, nil

	default: // BSWAP
		for _, dv := range m.rval(st, ops[0]) {
			s := dv.st
			var res *expr.Expr
			if w, ok := dv.v.AsWord(); ok {
				if size == 8 {
					res = expr.Word(bits.ReverseBytes64(w))
				} else {
					res = expr.Word(uint64(bits.ReverseBytes32(uint32(w))))
				}
			} else {
				res = m.fresh()
			}
			m.writeReg(s, ops[0].Reg, size, res)
			out = append(out, fall(s)...)
		}
		return out, nil
	}
}

// stepString handles movs/stos with and without rep (the direction flag is
// assumed clear, as the System V ABI requires at function entry). A
// one-element form is an ordinary read/write pair. The rep forms write a
// block [rdi, rcx·size): soundly, every memory clause not provably
// separate from the block's maximal extent is invalidated — the inline
// memset/memcpy treatment. rsi/rdi/rcx are updated symbolically.
func (m *Machine) stepString(st *State, inst x86.Inst, fall func(...*State) []Outcome) ([]Outcome, error) {
	size := inst.Ops[0].Size
	esz := uint64(size)
	if !inst.Rep {
		var out []Outcome
		rdi := m.regVal(st, x86.RDI, 8)
		step := func(s *State, v *expr.Expr) {
			for _, ns := range m.writeMem(s, rdi, size, v) {
				ns.Pred.SetReg(x86.RDI, expr.Add(rdi, expr.Word(esz)))
				if inst.Mn == x86.MOVS {
					rsi := m.regVal(ns, x86.RSI, 8)
					ns.Pred.SetReg(x86.RSI, expr.Add(rsi, expr.Word(esz)))
				}
				out = append(out, fall(ns)...)
			}
		}
		if inst.Mn == x86.STOS {
			step(st, m.regVal(st, x86.RAX, size))
			return out, nil
		}
		rsi := m.regVal(st, x86.RSI, 8)
		for _, sv := range m.readMem(st, rsi, size) {
			step(sv.st, sv.v)
		}
		return out, nil
	}

	// rep movs/stos: bound the extent via the count's interval.
	rdi := m.regVal(st, x86.RDI, 8)
	rcx := m.regVal(st, x86.RCX, 8)
	extent, bounded := uint64(0), false
	if w, ok := rcx.AsWord(); ok {
		extent, bounded = w*esz, true
	} else if r, ok := st.Pred.RangeOf(rcx); ok && r.Hi < 1<<24 {
		extent, bounded = r.Hi*esz, true
	}
	switch {
	case bounded && extent == 0:
		// rcx = 0: no bytes move.
	case bounded:
		w := solver.Region{Addr: rdi, Size: extent}
		o := oracle{m, st}
		st.Pred.FilterMem(func(e pred.MemEntry) bool {
			return o.Compare(w, solver.Region{Addr: e.Addr, Size: uint64(e.Size)}).Separate == solver.Yes
		})
	default:
		// Unbounded block write: every clause may be hit.
		st.Pred.FilterMem(func(pred.MemEntry) bool { return false })
	}
	st.Pred.SetReg(x86.RDI, expr.Add(rdi, expr.Mul(rcx, expr.Word(esz))))
	if inst.Mn == x86.MOVS {
		rsi := m.regVal(st, x86.RSI, 8)
		st.Pred.SetReg(x86.RSI, expr.Add(rsi, expr.Mul(rcx, expr.Word(esz))))
	}
	st.Pred.SetReg(x86.RCX, expr.Word(0))
	return fall(st), nil
}
