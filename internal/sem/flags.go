package sem

import (
	"math/bits"

	"repro/internal/expr"
	"repro/internal/pred"
	"repro/internal/solver"
	"repro/internal/x86"
)

// setFlagsCmp installs the flag-defining comparison for cmp/sub: the flags
// are those of lhs − rhs at the given width.
func setFlagsCmp(st *State, lhs, rhs *expr.Expr, size int) {
	st.Pred.SetCmp(&pred.Cmp{Kind: pred.CmpSub, Lhs: lhs, Rhs: rhs, Size: size})
}

// setFlagsLogic installs the flag-defining comparison for test/and/or/xor:
// the flags are those of the logical result (CF = OF = 0).
func setFlagsLogic(st *State, res *expr.Expr, size int) {
	st.Pred.SetCmp(&pred.Cmp{Kind: pred.CmpAnd, Lhs: res, Rhs: expr.Word(0), Size: size})
}

// signBit returns the sign-bit mask for a width in bytes.
func signBit(size int) uint64 { return 1 << (uint(size)*8 - 1) }

// maxU returns the maximum unsigned value for a width in bytes.
func maxU(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(uint(size)*8) - 1
}

// concreteFlags evaluates the five flags of a concrete comparison.
func concreteFlags(c *pred.Cmp, a, b uint64) map[x86.Flag]bool {
	mask := maxU(c.Size)
	a &= mask
	b &= mask
	var res uint64
	fl := map[x86.Flag]bool{}
	switch c.Kind {
	case pred.CmpSub:
		res = (a - b) & mask
		fl[x86.CF] = a < b
		sa, sb, sr := a&signBit(c.Size) != 0, b&signBit(c.Size) != 0, res&signBit(c.Size) != 0
		fl[x86.OF] = sa != sb && sr != sa
	default: // logical: CF = OF = 0, value compared against zero
		res = a & mask
		fl[x86.CF] = false
		fl[x86.OF] = false
	}
	fl[x86.ZF] = res == 0
	fl[x86.SF] = res&signBit(c.Size) != 0
	fl[x86.PF] = bits.OnesCount8(uint8(res))%2 == 0
	return fl
}

// condFromFlags evaluates a condition code from concrete flags.
func condFromFlags(cc x86.Cond, fl map[x86.Flag]bool) bool {
	var v bool
	switch cc &^ 1 {
	case x86.CondO:
		v = fl[x86.OF]
	case x86.CondB:
		v = fl[x86.CF]
	case x86.CondE:
		v = fl[x86.ZF]
	case x86.CondBE:
		v = fl[x86.CF] || fl[x86.ZF]
	case x86.CondS:
		v = fl[x86.SF]
	case x86.CondP:
		v = fl[x86.PF]
	case x86.CondL:
		v = fl[x86.SF] != fl[x86.OF]
	case x86.CondLE:
		v = fl[x86.ZF] || fl[x86.SF] != fl[x86.OF]
	}
	if cc&1 != 0 {
		v = !v
	}
	return v
}

// evalCond decides a condition code under the predicate: Yes (always
// taken), No (never), or Maybe.
func evalCond(p *pred.Pred, cc x86.Cond) solver.Verdict {
	// Individual flag clauses (e.g. CF set by bt) decide directly.
	if v, ok := condFromFlagClauses(p, cc); ok {
		if v {
			return solver.Yes
		}
		return solver.No
	}
	c := p.LastCmp()
	if c == nil {
		return solver.Maybe
	}
	// Fully concrete comparison.
	if a, ok := c.Lhs.AsWord(); ok {
		if b, ok := c.Rhs.AsWord(); ok {
			if condFromFlags(cc, concreteFlags(c, a, b)) {
				return solver.Yes
			}
			return solver.No
		}
	}
	// Syntactically identical operands: the comparison is x ⊖ x = 0, so
	// every flag is known even though x itself is not.
	if c.Kind == pred.CmpSub && c.Lhs.Equal(c.Rhs) {
		if condFromFlags(cc, concreteFlags(c, 1, 1)) {
			return solver.Yes
		}
		return solver.No
	}
	// Interval left operand vs constant right operand.
	b, ok := c.Rhs.AsWord()
	if !ok {
		return solver.Maybe
	}
	b &= maxU(c.Size)
	r, ok := p.RangeOf(c.Lhs)
	if !ok || r.Hi > maxU(c.Size) {
		return solver.Maybe
	}
	type iv = pred.Range
	decide := func(yes, no bool) solver.Verdict {
		switch {
		case yes:
			return solver.Yes
		case no:
			return solver.No
		default:
			return solver.Maybe
		}
	}
	if c.Kind == pred.CmpSub {
		switch cc {
		case x86.CondA:
			return decide(r.Lo > b, r.Hi <= b)
		case x86.CondAE:
			return decide(r.Lo >= b, r.Hi < b)
		case x86.CondB:
			return decide(r.Hi < b, r.Lo >= b)
		case x86.CondBE:
			return decide(r.Hi <= b, r.Lo > b)
		case x86.CondE:
			return decide(r == iv{Lo: b, Hi: b}, !r.Contains(b))
		case x86.CondNE:
			return decide(!r.Contains(b), r == iv{Lo: b, Hi: b})
		}
		// Signed comparisons agree with unsigned ones when both sides
		// stay below the sign bit.
		if r.Hi < signBit(c.Size) && b < signBit(c.Size) {
			switch cc {
			case x86.CondG:
				return decide(r.Lo > b, r.Hi <= b)
			case x86.CondGE:
				return decide(r.Lo >= b, r.Hi < b)
			case x86.CondL:
				return decide(r.Hi < b, r.Lo >= b)
			case x86.CondLE:
				return decide(r.Hi <= b, r.Lo > b)
			case x86.CondS:
				return solver.No
			case x86.CondNS:
				return solver.Yes
			}
		}
		return solver.Maybe
	}
	// Logical comparison against zero.
	switch cc {
	case x86.CondE:
		return decide(r == iv{}, !r.Contains(0))
	case x86.CondNE:
		return decide(!r.Contains(0), r == iv{})
	case x86.CondS:
		return decide(r.Lo >= signBit(c.Size), r.Hi < signBit(c.Size))
	case x86.CondNS:
		return decide(r.Hi < signBit(c.Size), r.Lo >= signBit(c.Size))
	}
	return solver.Maybe
}

// condFlagDeps lists the flags each base condition reads.
var condFlagDeps = map[x86.Cond][]x86.Flag{
	x86.CondO:  {x86.OF},
	x86.CondB:  {x86.CF},
	x86.CondE:  {x86.ZF},
	x86.CondBE: {x86.CF, x86.ZF},
	x86.CondS:  {x86.SF},
	x86.CondP:  {x86.PF},
	x86.CondL:  {x86.SF, x86.OF},
	x86.CondLE: {x86.ZF, x86.SF, x86.OF},
}

// condFromFlagClauses decides a condition from individual constant flag
// clauses, when all flags the condition reads are known.
func condFromFlagClauses(p *pred.Pred, cc x86.Cond) (bool, bool) {
	fl := map[x86.Flag]bool{}
	for _, f := range condFlagDeps[cc&^1] {
		e := p.Flag(f)
		if e == nil {
			return false, false
		}
		w, ok := e.AsWord()
		if !ok {
			return false, false
		}
		fl[f] = w != 0
	}
	return condFromFlags(cc, fl), true
}

// refineBranch strengthens the predicate with the knowledge that condition
// cc evaluated to taken — the branch refinement that lets the successor of
// "cmp eax, 0xc3; ja" prove the jump-table bound (Section 2). Only
// interval-expressible constraints are added; everything else is soundly
// skipped.
func refineBranch(st *State, cc x86.Cond, taken bool) {
	c := st.Pred.LastCmp()
	if c == nil {
		return
	}
	if !taken {
		cc = cc.Negate()
	}
	b, ok := c.Rhs.AsWord()
	if !ok {
		return
	}
	b &= maxU(c.Size)
	e := c.Lhs
	if _, isConst := e.AsWord(); isConst {
		return
	}
	add := func(lo, hi uint64) { st.Pred.AddRange(e, pred.Range{Lo: lo, Hi: hi}) }
	if c.Kind == pred.CmpSub {
		switch cc {
		case x86.CondA:
			if b < maxU(c.Size) {
				add(b+1, maxU(c.Size))
			}
		case x86.CondAE:
			add(b, maxU(c.Size))
		case x86.CondB:
			if b > 0 {
				add(0, b-1)
			}
		case x86.CondBE:
			add(0, b)
		case x86.CondE:
			add(b, b)
		case x86.CondG:
			if b < signBit(c.Size)-1 {
				add(b+1, signBit(c.Size)-1)
			}
		case x86.CondGE:
			if b < signBit(c.Size) {
				add(b, signBit(c.Size)-1)
			}
		}
		return
	}
	// test x, x; je — the equal branch knows x = 0.
	if cc == x86.CondE && c.Lhs.Equal(c.Rhs) || cc == x86.CondE && b == 0 {
		add(0, 0)
	}
}
