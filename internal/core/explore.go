package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/hoare"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/pred"
	"repro/internal/sem"
	"repro/internal/x86"
)

// workItem is one entry of Algorithm 1's bag: a symbolic state to explore
// at an instruction address.
type workItem struct {
	rip uint64
	st  *sem.State
}

// explorer holds the per-function exploration state.
type explorer struct {
	l      *Lifter
	ctx    context.Context
	tr     *obs.Tracer
	g      *hoare.Graph
	res    *FuncResult
	bag    []workItem
	seen   map[string]bool // NoJoin ablation: vertexID+stateKey dedup
	fatal  bool
	t0     time.Time
	before map[string]bool // machine assumptions snapshot
}

// explore runs Algorithm 1 from a function entry.
func (l *Lifter) explore(ctx context.Context, addr uint64, name string) *FuncResult {
	retSym := RetSymFor(addr)
	g := hoare.NewGraph(addr, name, retSym)
	res := &FuncResult{Name: name, Addr: addr, Status: StatusLifted, Graph: g}
	e := &explorer{
		l: l, ctx: ctx, tr: l.Cfg.Sem.Tracer,
		g: g, res: res,
		seen:   map[string]bool{},
		t0:     time.Now(),
		before: map[string]bool{},
	}
	e.tr.LiftStart(name, addr)
	for _, a := range l.mach.Assumptions() {
		e.before[a] = true
	}

	// Pointer pre-pass: install this function's fact table for the duration
	// of the exploration. Facts are keyed on the function's own initial-state
	// symbols (rsp0, rdi0, …), so a callee explored through handleCall swaps
	// in its own table and the defer restores the caller's on return.
	if l.Cfg.PointerFacts {
		prev := l.mach.Cfg.Facts
		l.mach.Cfg.Facts = l.pointerAnalysis(addr, name).Facts
		defer func() { l.mach.Cfg.Facts = prev }()
	}

	init := sem.InitialState(retSym)
	g.EntryID = l.vertexID(addr, init)
	g.Vertices[hoare.ExitID] = &hoare.Vertex{ID: hoare.ExitID}
	g.Vertices[hoare.HaltID] = &hoare.Vertex{ID: hoare.HaltID}
	e.bag = []workItem{{rip: addr, st: init}}

	for len(e.bag) > 0 && !e.fatal {
		if err := e.ctxErr(); err != nil {
			st := StatusCancelled
			if errors.Is(err, context.DeadlineExceeded) {
				st = StatusTimeout
			}
			e.fail(st, fmt.Sprintf("after %d steps: %v", res.Steps, err))
			break
		}
		if res.Steps >= l.Cfg.MaxStates ||
			(l.Cfg.Timeout > 0 && time.Since(e.t0) > l.Cfg.Timeout) {
			e.fail(StatusTimeout, fmt.Sprintf("exploration budget exhausted after %d steps", res.Steps))
			break
		}
		item := e.bag[len(e.bag)-1]
		e.bag = e.bag[:len(e.bag)-1]
		e.exploreOne(item)
	}

	// Per-function assumptions: everything the machine recorded that was
	// not present before this exploration.
	for _, a := range l.mach.Assumptions() {
		if !e.before[a] {
			g.Assumptions = append(g.Assumptions, a)
		}
	}
	sort.Strings(g.Assumptions)
	res.Duration = time.Since(e.t0)
	e.tr.LiftFinish(name, addr, res.Status.String(), res.Steps, res.Duration)
	return res
}

// ctxErr reports the exploration context's cancellation cause, nil while
// it is live (or when no context was threaded — the deprecated
// entrypoints pass context.Background()).
func (e *explorer) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	select {
	case <-e.ctx.Done():
		return e.ctx.Err()
	default:
		return nil
	}
}

// fail records a verification failure; the function is rejected and no
// (complete) HG is produced.
func (e *explorer) fail(st Status, reason string) {
	if e.res.Status == StatusLifted {
		e.res.Status = st
	}
	e.res.Reasons = append(e.res.Reasons, reason)
	e.fatal = true
}

// vertexID keys a vertex: the instruction address plus, unless the
// ablation disables it, the code-pointer signature of the state (states
// holding different immediate pointers into the text section are
// incompatible and kept apart; Section 4).
func (l *Lifter) vertexID(rip uint64, st *sem.State) hoare.VertexID {
	id := fmt.Sprintf("%x", rip)
	if l.Cfg.JoinCodePointers {
		return hoare.VertexID(id)
	}
	lo, hi := l.Img.TextRange()
	parts := st.Pred.CodePointerParts(lo, hi)
	if len(parts) == 0 {
		return hoare.VertexID(id)
	}
	sort.Strings(parts)
	for _, p := range parts {
		id += "/" + p
	}
	return hoare.VertexID(id)
}

// exploreOne is the body of Algorithm 1's explore function: join with a
// compatible state if one exists, stop at the fixed point, otherwise step
// and enqueue the successors.
func (e *explorer) exploreOne(item workItem) {
	vid := e.l.vertexID(item.rip, item.st)
	v, exists := e.g.Vertices[vid]
	var cur *sem.State
	switch {
	case exists && !e.l.Cfg.NoJoin:
		joined := &sem.State{
			Pred: pred.Join(item.st.Pred, v.State.Pred, string(vid)),
			Mem:  memmodel.Join(item.st.Mem, v.State.Mem),
		}
		if joined.Same(v.State) {
			return // σ ⊑ σc: no further exploration necessary
		}
		v.State = joined
		v.Joins++
		e.tr.Join(item.rip, string(vid))
		cur = joined
	case exists: // NoJoin ablation
		k := string(vid) + "|" + item.st.Key()
		if e.seen[k] {
			return
		}
		e.seen[k] = true
		cur = item.st
	default:
		v = &hoare.Vertex{ID: vid, Addr: item.rip, State: item.st}
		e.g.Vertices[vid] = v
		cur = item.st
	}
	e.res.Steps++
	e.tr.Step(item.rip)

	inst, err := e.l.Img.Fetch(item.rip)
	if err != nil {
		e.g.Annotate(item.rip, hoare.AnnFetchError, err.Error())
		e.fail(StatusError, fmt.Sprintf("fetch at %#x: %v", item.rip, err))
		return
	}
	e.g.Instrs[item.rip] = inst

	outs, err := e.l.mach.Step(cur, inst)
	if err != nil {
		e.g.Annotate(item.rip, hoare.AnnFetchError, err.Error())
		e.fail(StatusError, err.Error())
		return
	}
	for _, o := range outs {
		e.handleOutcome(v, inst, o)
		if e.fatal {
			return
		}
	}
}

// isIndirect reports whether the instruction computes its target
// dynamically (r/m operand rather than an immediate).
func isIndirect(inst x86.Inst) bool {
	return len(inst.Ops) == 1 && inst.Ops[0].Kind != x86.OpImm
}

// handleOutcome processes one element of stepΣ(σ).
func (e *explorer) handleOutcome(v *hoare.Vertex, inst x86.Inst, o sem.Outcome) {
	switch o.Kind {
	case sem.KHalt:
		e.g.AddEdge(hoare.Edge{From: v.ID, To: hoare.HaltID, Inst: inst, Kind: o.Kind})

	case sem.KFall, sem.KJump:
		tgt, ok := o.Resolved()
		if !ok {
			// Bounded control flow violated: annotate, stop this path
			// (Line 13 of Algorithm 1).
			e.g.Annotate(inst.Addr, hoare.AnnUnresolvedJump,
				fmt.Sprintf("rip evaluates to %v", o.Target))
			return
		}
		if !e.l.Img.InText(tgt) {
			e.g.Annotate(inst.Addr, hoare.AnnUnresolvedJump,
				fmt.Sprintf("target %#x outside executable sections", tgt))
			return
		}
		if o.Kind == sem.KJump && isIndirect(inst) {
			e.g.Resolved[inst.Addr] = true
		}
		tid := e.l.vertexID(tgt, o.State)
		e.g.AddEdge(hoare.Edge{From: v.ID, To: tid, Inst: inst, Kind: o.Kind})
		e.bag = append(e.bag, workItem{rip: tgt, st: o.State})

	case sem.KRet:
		chk := sem.CheckReturn(o, e.g.RetSym)
		if !chk.OK {
			e.fail(StatusUnprovableRet, fmt.Sprintf("@%x: %v", inst.Addr, chk.Reasons))
			return
		}
		e.res.Returns = true
		e.g.AddEdge(hoare.Edge{From: v.ID, To: hoare.ExitID, Inst: inst, Kind: o.Kind})

	case sem.KCall:
		e.handleCall(v, inst, o)
	}
}

// handleCall implements the Section 4.2 call treatment.
func (e *explorer) handleCall(v *hoare.Vertex, inst x86.Inst, o sem.Outcome) {
	l := e.l
	tgt, ok := o.Resolved()
	if !ok {
		// Unresolved indirect call (column C): treated
		// overapproximatively as an unknown external function.
		e.g.Annotate(inst.Addr, hoare.AnnUnresolvedCall,
			fmt.Sprintf("call target evaluates to %v", o.Target))
		e.continueAfterCall(v, inst, o, "<unresolved>")
		return
	}
	if isIndirect(inst) {
		e.g.Resolved[inst.Addr] = true
	}

	if name, isPLT := l.Img.PLTName(tgt); isPLT {
		switch {
		case l.isConcurrency(name):
			e.fail(StatusConcurrency, fmt.Sprintf("@%x: call to %s", inst.Addr, name))
		case l.isTerminating(name):
			e.g.AddEdge(hoare.Edge{From: v.ID, To: hoare.HaltID, Inst: inst, Kind: o.Kind, Callee: name})
		default:
			obls := l.mach.CallObligations(o.State, name, inst.Addr)
			for _, obl := range obls {
				e.tr.Obligation(inst.Addr, obl)
			}
			e.g.Obligations = append(e.g.Obligations, obls...)
			e.continueAfterCall(v, inst, o, name)
		}
		return
	}

	if !l.Img.InText(tgt) {
		e.g.Annotate(inst.Addr, hoare.AnnUnresolvedCall,
			fmt.Sprintf("call target %#x outside executable sections", tgt))
		e.continueAfterCall(v, inst, o, "<unmapped>")
		return
	}

	// Internal call: context-free exploration, once per callee.
	name := fmt.Sprintf("sub_%x", tgt)
	if sname, ok := l.Img.SymbolName(tgt); ok {
		name = sname
	}
	if l.inProgress[tgt] {
		// (Mutual) recursion: the callee's summary is being computed.
		// Assume it adheres to the calling convention and may return —
		// recorded as an explicit assumption.
		e.g.Assumptions = append(e.g.Assumptions,
			fmt.Sprintf("@%x : recursive call to %s assumed to return per calling convention", inst.Addr, name))
		e.continueAfterCall(v, inst, o, name)
		return
	}
	sum := l.LiftFuncCtx(e.ctx, tgt, name)
	if sum.Status != StatusLifted {
		st := sum.Status
		if st == StatusError {
			st = StatusUnprovableRet
		}
		e.fail(st, fmt.Sprintf("@%x: callee %s: %s", inst.Addr, name, sum.Status))
		return
	}
	if !sum.Returns {
		// The callee never returns normally; the continuation is not
		// reachable (Section 4.2.2's reachability field).
		e.g.AddEdge(hoare.Edge{From: v.ID, To: hoare.HaltID, Inst: inst, Kind: o.Kind, Callee: name})
		return
	}
	e.continueAfterCall(v, inst, o, name)
}

// continueAfterCall cleans the state per the System V ABI and enqueues the
// call-site continuation.
func (e *explorer) continueAfterCall(v *hoare.Vertex, inst x86.Inst, o sem.Outcome, callee string) {
	cont := e.l.mach.CleanAfterCall(o.State, inst.Addr)
	next := inst.Next()
	tid := e.l.vertexID(next, cont)
	e.g.AddEdge(hoare.Edge{From: v.ID, To: tid, Inst: inst, Kind: o.Kind, Callee: callee})
	e.bag = append(e.bag, workItem{rip: next, st: cont})
}
