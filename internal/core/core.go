// Package core implements the paper's primary contribution: Hoare Graph
// extraction from x86-64 binaries (Algorithm 1) with the extensions of
// Section 4.2 — context-free internal function calls with symbolic return
// addresses, System V cleaning for unknown external functions, reachability
// of call-site continuations, and the compatibility refinement that keeps
// states with different code-pointer immediates apart. While extracting,
// the lifter verifies the three sanity properties: return address
// integrity, bounded control flow and calling convention adherence.
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/expr"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/ptr"
	"repro/internal/sem"
)

// Status classifies the outcome of lifting one function or binary, in the
// shape of Table 1's w + x + y + z decomposition.
type Status uint8

// The lifting outcomes.
const (
	StatusLifted        Status = iota // an HG was produced (w)
	StatusUnprovableRet               // return address integrity or calling convention failed (x)
	StatusConcurrency                 // calls multithreading primitives, out of scope (y)
	StatusTimeout                     // exploration budget exhausted (z)
	StatusError                       // decode/fetch failure
	StatusPanic                       // the lift panicked (recovered by the pipeline)
	StatusCancelled                   // the lift's context was cancelled mid-exploration
)

// String renders the status as in Table 1's legend.
func (s Status) String() string {
	switch s {
	case StatusLifted:
		return "lifted"
	case StatusUnprovableRet:
		return "unprovable-return-address"
	case StatusConcurrency:
		return "concurrency"
	case StatusTimeout:
		return "timeout"
	case StatusPanic:
		return "panic"
	case StatusCancelled:
		return "cancelled"
	default:
		return "error"
	}
}

// Config tunes the lifter.
type Config struct {
	// Sem configures the predicate transformer.
	Sem sem.Config
	// MaxStates bounds the number of exploration steps per function; when
	// exceeded the function is reported as a timeout (the paper used a
	// 4-hour wall-clock limit; a step budget is deterministic).
	MaxStates int
	// Timeout is an optional wall-clock limit per function.
	Timeout time.Duration
	// NoJoin disables state joining entirely (ablation: every visit
	// explores a fresh state; MaxStates then bounds the blow-up).
	NoJoin bool
	// JoinCodePointers disables the compatibility extension and joins
	// states even when they hold different code-pointer immediates
	// (ablation: loses indirection resolution).
	JoinCodePointers bool
	// PointerFacts enables the pointer-analysis pre-pass (internal/ptr):
	// before exploring a function the lifter runs a whole-function abstract
	// interpretation and feeds the resulting per-function fact table to the
	// semantics, so region pairs the pre-pass already related are answered
	// without consulting the decision procedure and without forking the
	// memory model. Separation hypotheses the pre-pass emits are recorded
	// in the graph's assumption list like any other separation assumption.
	// Opt-in: hypotheses deliberately assume apart distinct argument
	// pointers (rdi vs rsi), which hides intentional aliasing.
	PointerFacts bool
	// Terminating lists external functions that never return.
	Terminating []string
	// ConcurrencyPrefixes lists external-name prefixes that put a
	// function out of scope (multithreading).
	ConcurrencyPrefixes []string
}

// DefaultConfig returns the configuration used for the paper's
// experiments.
func DefaultConfig() Config {
	return Config{
		Sem:       sem.DefaultConfig(),
		MaxStates: 40000,
		Terminating: []string{
			"exit", "_exit", "abort", "err", "errx",
			"__stack_chk_fail", "__assert_fail", "pthread_exit",
		},
		ConcurrencyPrefixes: []string{"pthread_"},
	}
}

// FuncResult is the outcome of lifting one function.
type FuncResult struct {
	Name     string
	Addr     uint64
	Status   Status
	Reasons  []string
	Graph    *hoare.Graph
	Returns  bool
	Duration time.Duration
	Steps    int
}

// Stats returns the graph statistics (zero value when lifting failed).
func (r *FuncResult) Stats() hoare.Stats {
	if r.Graph == nil {
		return hoare.Stats{}
	}
	return r.Graph.Stats()
}

// Lifter extracts Hoare graphs from one binary image. Internal functions
// are explored context-free, each exactly once, with results cached as
// summaries (Section 4.2.2).
type Lifter struct {
	Img  *image.Image
	Cfg  Config
	mach *sem.Machine

	summaries  map[uint64]*FuncResult
	inProgress map[uint64]bool
	ptrCache   map[uint64]*ptr.Analysis
}

// New returns a lifter over the image.
func New(img *image.Image, cfg Config) *Lifter {
	return &Lifter{
		Img:        img,
		Cfg:        cfg,
		mach:       sem.NewMachine(img, cfg.Sem),
		summaries:  map[uint64]*FuncResult{},
		inProgress: map[uint64]bool{},
		ptrCache:   map[uint64]*ptr.Analysis{},
	}
}

// pointerAnalysis returns the pre-pass result for the function at addr,
// computing it on first use (one analysis per function, like the summary
// cache — callees re-entered through later call sites reuse their table).
func (l *Lifter) pointerAnalysis(addr uint64, name string) *ptr.Analysis {
	if an, ok := l.ptrCache[addr]; ok {
		return an
	}
	an := ptr.Analyze(l.Img, addr)
	l.ptrCache[addr] = an
	l.Cfg.Sem.Tracer.PtrAnalyze(name, addr, an.Stats.Proven, an.Stats.Hypotheses, an.Stats.Wall)
	return an
}

// isTerminating reports whether the named external never returns.
func (l *Lifter) isTerminating(name string) bool {
	for _, t := range l.Cfg.Terminating {
		if t == name {
			return true
		}
	}
	return false
}

// isConcurrency reports whether the named external puts the caller out of
// scope.
func (l *Lifter) isConcurrency(name string) bool {
	for _, p := range l.Cfg.ConcurrencyPrefixes {
		if strings.HasPrefix(name, p) && !l.isTerminating(name) {
			return true
		}
	}
	return false
}

// RetSymFor returns the symbolic return address variable for a function.
func RetSymFor(addr uint64) expr.Var {
	return expr.Var(fmt.Sprintf("S_%x", addr))
}

// LiftFuncCtx lifts the function at addr, reusing a cached summary if the
// function was already explored (context-free treatment: "it will always
// start in the exact same state and therefore exploration happens only
// once"). Cancelling the context stops the exploration cooperatively at
// its next step: a cancelled context yields StatusCancelled, an expired
// deadline StatusTimeout — the same mechanism the pipeline's per-lift
// budget uses.
func (l *Lifter) LiftFuncCtx(ctx context.Context, addr uint64, name string) *FuncResult {
	if r, ok := l.summaries[addr]; ok {
		return r
	}
	l.inProgress[addr] = true
	r := l.explore(ctx, addr, name)
	delete(l.inProgress, addr)
	l.summaries[addr] = r
	return r
}

// BinaryResult aggregates lifting a whole binary from its entry point,
// including all internal functions reached through calls.
type BinaryResult struct {
	Name     string
	Status   Status
	Entry    *FuncResult
	Funcs    []*FuncResult
	Stats    hoare.Stats
	Duration time.Duration
}

// LiftBinaryCtx lifts the binary from its entry point, exploring all
// reachable instructions including internal function calls (Table 1,
// upper part). Cancellation propagates into every callee exploration.
func (l *Lifter) LiftBinaryCtx(ctx context.Context, name string) *BinaryResult {
	start := time.Now()
	entry := l.LiftFuncCtx(ctx, l.Img.Entry(), name)
	res := &BinaryResult{Name: name, Status: entry.Status, Entry: entry, Duration: time.Since(start)}
	for _, fr := range l.Summaries() {
		res.Funcs = append(res.Funcs, fr)
		res.Stats.Add(fr.Stats())
		if fr.Status != StatusLifted && res.Status == StatusLifted {
			res.Status = fr.Status
		}
	}
	return res
}

// Counters returns the machine's solver and memory-model activity counters
// accumulated across every function this lifter explored.
func (l *Lifter) Counters() sem.Counters { return l.mach.Counters() }

// Summaries returns all function results computed so far, ordered by
// address.
func (l *Lifter) Summaries() []*FuncResult {
	out := make([]*FuncResult, 0, len(l.summaries))
	for _, fr := range l.summaries {
		out = append(out, fr)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Addr < out[i].Addr {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
