package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/elf64"
	"repro/internal/emu"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/x86"
)

const (
	textBase   = 0x401000
	pltBase    = 0x400500
	rodataBase = 0x4a0000
)

// builder assembles a test binary with optional PLT externals and rodata.
type builder struct {
	t        *testing.T
	asm      *x86.Asm
	externs  []string
	rodata   []byte
	funcSyms map[string]uint64
}

func newBuilder(t *testing.T) *builder {
	return &builder{t: t, asm: x86.NewAsm(textBase), funcSyms: map[string]uint64{}}
}

// Func labels a function start.
func (b *builder) Func(name string) *x86.Asm {
	b.asm.Label(name)
	addr, _ := b.asm.LabelAddr(name)
	b.funcSyms[name] = addr
	return b.asm
}

// Extern registers an external and returns its PLT stub address.
func (b *builder) Extern(name string) uint64 {
	for i, e := range b.externs {
		if e == name {
			return pltBase + uint64(16*i)
		}
	}
	b.externs = append(b.externs, name)
	return pltBase + uint64(16*(len(b.externs)-1))
}

// CallExtern emits a call to the named external's stub.
func (b *builder) CallExtern(name string) {
	b.asm.CallAbs(b.Extern(name))
}

// Image finalises the binary.
func (b *builder) Image() *image.Image {
	b.t.Helper()
	code, err := b.asm.Finish()
	if err != nil {
		b.t.Fatal(err)
	}
	eb := elf64.NewExec(textBase)
	eb.AddSection(".text", elf64.SHFExecinstr, textBase, code)
	if len(b.externs) > 0 {
		plt := x86.NewAsm(pltBase)
		for range b.externs {
			p := plt.PC()
			plt.I(x86.JMP, x86.MemOp(x86.RIP, x86.RegNone, 1, 0x10000, 8))
			for plt.PC() < p+16 {
				plt.I(x86.NOP)
			}
		}
		pltCode, err := plt.Finish()
		if err != nil {
			b.t.Fatal(err)
		}
		eb.AddSection(".plt", elf64.SHFExecinstr, pltBase, pltCode)
		for i, name := range b.externs {
			eb.AddFunc(name+"@plt", pltBase+uint64(16*i), 16)
		}
	}
	if b.rodata != nil {
		eb.AddSection(".rodata", 0, rodataBase, b.rodata)
	}
	for name, addr := range b.funcSyms {
		eb.AddFunc(name, addr, 0)
	}
	img, err := eb.Bytes()
	if err != nil {
		b.t.Fatal(err)
	}
	im, err := image.Load(img)
	if err != nil {
		b.t.Fatal(err)
	}
	return im
}

func lift(t *testing.T, b *builder, fn string) *FuncResult {
	t.Helper()
	im := b.Image()
	l := New(im, DefaultConfig())
	addr := b.funcSyms[fn]
	return l.LiftFuncCtx(context.Background(), addr, fn)
}

func TestLiftLeafFunction(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.PUSH, x86.RegOp(x86.RBP, 8))
	a.I(x86.MOV, x86.RegOp(x86.RBP, 8), x86.RegOp(x86.RSP, 8))
	a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RDI, 8))
	a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 1))
	a.I(x86.POP, x86.RegOp(x86.RBP, 8))
	a.I(x86.RET)
	r := lift(t, b, "f")
	if r.Status != StatusLifted {
		t.Fatalf("status %s: %v", r.Status, r.Reasons)
	}
	if !r.Returns {
		t.Fatal("function must be proven to return")
	}
	st := r.Stats()
	if st.Instructions != 6 {
		t.Fatalf("instructions: %d", st.Instructions)
	}
	// One vertex per instruction plus exit/halt.
	if st.States < 6 || st.States > 8 {
		t.Fatalf("states: %d", st.States)
	}
	if !r.Graph.HasEdge(r.Graph.EntryID, hoare.VertexID("401001")) {
		t.Fatalf("missing entry edge; edges:\n%s", r.Graph.Dump())
	}
}

func TestLiftBranchAndJoin(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.ImmOp(0, 1))
	a.Jcc(x86.CondE, "zero")
	a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 4))
	a.Jmp("end")
	a.Label("zero")
	a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(2, 4))
	a.Label("end")
	a.I(x86.RET)
	r := lift(t, b, "f")
	if r.Status != StatusLifted {
		t.Fatalf("status %s: %v", r.Status, r.Reasons)
	}
	// The merge vertex joined rax=1 and rax=2 into an interval.
	endAddr, _ := b.asm.LabelAddr("end")
	vs := r.Graph.VerticesAt(endAddr)
	if len(vs) != 1 {
		t.Fatalf("merge vertices: %d", len(vs))
	}
	v := vs[0]
	rax := v.State.Pred.Reg(x86.RAX)
	if rax == nil {
		t.Fatal("joined rax clause dropped")
	}
	if rg, ok := v.State.Pred.RangeOf(rax); !ok || rg.Lo != 1 || rg.Hi != 2 {
		t.Fatalf("joined range: %+v %v", rg, ok)
	}
	if v.Joins == 0 {
		t.Fatal("join must have happened")
	}
}

func TestLiftLoopTerminates(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
	a.Label("loop")
	a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 1))
	a.I(x86.CMP, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RDI, 8))
	a.Jcc(x86.CondB, "loop")
	a.I(x86.RET)
	r := lift(t, b, "f")
	if r.Status != StatusLifted {
		t.Fatalf("status %s: %v", r.Status, r.Reasons)
	}
	if r.Steps > 200 {
		t.Fatalf("loop exploration did not stabilise quickly: %d steps", r.Steps)
	}
}

func TestLiftInternalCall(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("main")
	a.Call("helper")
	a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 1))
	a.I(x86.RET)
	h := b.Func("helper")
	h.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(41, 4))
	h.I(x86.RET)
	im := b.Image()
	l := New(im, DefaultConfig())
	r := l.LiftFuncCtx(context.Background(), b.funcSyms["main"], "main")
	if r.Status != StatusLifted || !r.Returns {
		t.Fatalf("main: %s %v", r.Status, r.Reasons)
	}
	// The callee was explored exactly once, context-free.
	sums := l.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries: %d", len(sums))
	}
	// Lifting again reuses the cache.
	r2 := l.LiftFuncCtx(context.Background(), b.funcSyms["helper"], "helper")
	if !r2.Returns || r2.Status != StatusLifted {
		t.Fatalf("helper: %s", r2.Status)
	}
	// The call edge names the callee.
	found := false
	for _, e := range r.Graph.Edges {
		if e.Callee == "helper" {
			found = true
		}
	}
	if !found {
		t.Fatal("call edge must name the callee")
	}
}

func TestCalleeNeverReturns(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("main")
	a.Call("dies")
	a.I(x86.UD2) // would be unreachable
	b.Func("dies")
	b.CallExtern("exit")
	b.asm.I(x86.UD2)
	im := b.Image()
	l := New(im, DefaultConfig())
	r := l.LiftFuncCtx(context.Background(), b.funcSyms["main"], "main")
	if r.Status != StatusLifted {
		t.Fatalf("status: %s %v", r.Status, r.Reasons)
	}
	if r.Returns {
		t.Fatal("main cannot be proven to return")
	}
	// The continuation after the call must not have been explored: the
	// ud2 at main+5 is unreachable.
	if _, ok := r.Graph.Instrs[b.funcSyms["main"]+5]; ok {
		t.Fatal("unreachable continuation was explored")
	}
}

func TestConcurrencyRejected(t *testing.T) {
	b := newBuilder(t)
	b.Func("main")
	b.CallExtern("pthread_create")
	b.asm.I(x86.RET)
	r := lift(t, b, "main")
	if r.Status != StatusConcurrency {
		t.Fatalf("status: %s", r.Status)
	}
}

func TestExternalCallCleansAndContinues(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("main")
	a.I(x86.PUSH, x86.RegOp(x86.RBX, 8))
	a.I(x86.MOV, x86.RegOp(x86.RBX, 8), x86.ImmOp(7, 4))
	b.CallExtern("malloc")
	a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RBX, 8))
	a.I(x86.POP, x86.RegOp(x86.RBX, 8))
	a.I(x86.RET)
	r := lift(t, b, "main")
	// rbx (callee-saved) survived the call, so the calling-convention
	// check fails: rbx = 7, not rbx0... but rbx was pushed and restored.
	if r.Status != StatusLifted {
		t.Fatalf("status: %s %v", r.Status, r.Reasons)
	}
	if !r.Returns {
		t.Fatal("must return")
	}
}

func TestUnprovableReturnOnOverflow(t *testing.T) {
	// A write at an unknown offset from rsp: the relation with the stored
	// return address cannot be established and the function is rejected.
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RDI, 1, -64, 8), x86.ImmOp(0, 4))
	a.I(x86.RET)
	r := lift(t, b, "f")
	if r.Status != StatusUnprovableRet {
		t.Fatalf("status: %s (%v)", r.Status, r.Reasons)
	}
	if len(r.Reasons) == 0 || !strings.Contains(strings.Join(r.Reasons, " "), "return") {
		t.Fatalf("reasons: %v", r.Reasons)
	}
}

func TestCallingConventionViolation(t *testing.T) {
	// Clobbering rbx without restoring violates the calling convention.
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.MOV, x86.RegOp(x86.RBX, 8), x86.ImmOp(1, 4))
	a.I(x86.RET)
	r := lift(t, b, "f")
	if r.Status != StatusUnprovableRet {
		t.Fatalf("status: %s", r.Status)
	}
	if !strings.Contains(strings.Join(r.Reasons, " "), "calling convention") {
		t.Fatalf("reasons: %v", r.Reasons)
	}
}

func TestNonStandardRSPRestore(t *testing.T) {
	// Section 5.3's /usr/bin/ssh case: rsp restored from memory.
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.MOV, x86.RegOp(x86.RSP, 8), x86.MemOp(x86.RDI, x86.RegNone, 1, 0, 8))
	a.I(x86.RET)
	r := lift(t, b, "f")
	if r.Status != StatusUnprovableRet {
		t.Fatalf("status: %s", r.Status)
	}
}

func TestStackProbing(t *testing.T) {
	// Section 5.3's zip case: an internal call followed by sub rsp, rax.
	// rax is havocked by the call, so rsp becomes untrackable.
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(0x1400, 4))
	a.Call("probe")
	a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.RegOp(x86.RAX, 8))
	a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, 0, 8), x86.ImmOp(0, 4))
	a.I(x86.ADD, x86.RegOp(x86.RSP, 8), x86.RegOp(x86.RAX, 8))
	a.I(x86.RET)
	p := b.Func("probe")
	p.I(x86.RET)
	im := b.Image()
	l := New(im, DefaultConfig())
	r := l.LiftFuncCtx(context.Background(), b.funcSyms["f"], "f")
	if r.Status != StatusUnprovableRet {
		t.Fatalf("stack probing must be rejected: %s %v", r.Status, r.Reasons)
	}
}

func TestJumpTableResolved(t *testing.T) {
	// switch(rdi) with a 4-entry jump table in rodata.
	b := newBuilder(t)
	table := make([]byte, 32)
	b.rodata = table // patched below once labels are known
	a := b.Func("f")
	a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.ImmOp(3, 1))
	a.Jcc(x86.CondA, "default")
	a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RegNone, x86.RDI, 8, rodataBase, 8))
	a.I(x86.JMP, x86.RegOp(x86.RAX, 8))
	for i := 0; i < 4; i++ {
		a.Label([]string{"c0", "c1", "c2", "c3"}[i])
		a.I(x86.MOV, x86.RegOp(x86.RAX, 4), x86.ImmOp(int64(10*i), 4))
		a.Jmp("end")
	}
	a.Label("default")
	a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
	a.Label("end")
	a.I(x86.RET)
	for i, lbl := range []string{"c0", "c1", "c2", "c3"} {
		addr, ok := a.LabelAddr(lbl)
		if !ok {
			t.Fatal("label missing")
		}
		for j := 0; j < 8; j++ {
			table[8*i+j] = byte(addr >> (8 * j))
		}
	}
	r := lift(t, b, "f")
	if r.Status != StatusLifted {
		t.Fatalf("status: %s %v", r.Status, r.Reasons)
	}
	st := r.Stats()
	if st.ResolvedInd != 1 {
		t.Fatalf("resolved indirections: %d", st.ResolvedInd)
	}
	if st.UnresolvedJump != 0 || st.UnresolvedCall != 0 {
		t.Fatalf("annotations: %+v", st)
	}
	// All four cases plus the default were explored.
	for _, lbl := range []string{"c0", "c1", "c2", "c3", "default"} {
		addr, _ := a.LabelAddr(lbl)
		if _, ok := r.Graph.Instrs[addr]; !ok {
			t.Fatalf("case %s at %#x not explored", lbl, addr)
		}
	}
}

func TestCallbackUnresolved(t *testing.T) {
	// A call through a function-pointer parameter: context-free lifting
	// cannot resolve it (column C), but the function still lifts.
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.CALL, x86.RegOp(x86.RDI, 8))
	a.I(x86.RET)
	r := lift(t, b, "f")
	if r.Status != StatusLifted {
		t.Fatalf("status: %s %v", r.Status, r.Reasons)
	}
	st := r.Stats()
	if st.UnresolvedCall != 1 {
		t.Fatalf("unresolved calls: %d", st.UnresolvedCall)
	}
	if !r.Returns {
		t.Fatal("the continuation after the unknown call must be explored")
	}
}

func TestTimeoutBudget(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("f")
	// A counted loop with a growing value that joins slowly.
	a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
	a.Label("loop")
	a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 1))
	a.I(x86.CMP, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RDI, 8))
	a.Jcc(x86.CondB, "loop")
	a.I(x86.RET)
	im := b.Image()
	cfg := DefaultConfig()
	cfg.MaxStates = 3
	l := New(im, cfg)
	r := l.LiftFuncCtx(context.Background(), b.funcSyms["f"], "f")
	if r.Status != StatusTimeout {
		t.Fatalf("status: %s", r.Status)
	}
}

func TestRecursionAssumed(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.ImmOp(0, 1))
	a.Jcc(x86.CondE, "base")
	a.I(x86.SUB, x86.RegOp(x86.RDI, 8), x86.ImmOp(1, 1))
	a.Call("f")
	a.Label("base")
	a.I(x86.RET)
	r := lift(t, b, "f")
	if r.Status != StatusLifted {
		t.Fatalf("status: %s %v", r.Status, r.Reasons)
	}
	found := false
	for _, as := range r.Graph.Assumptions {
		if strings.Contains(as, "recursive call") {
			found = true
		}
	}
	if !found {
		t.Fatalf("recursion assumption missing: %v", r.Graph.Assumptions)
	}
}

func TestObligationsForStackPointerArgs(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x28, 1))
	a.I(x86.LEA, x86.RegOp(x86.RDI, 8), x86.MemOp(x86.RSP, x86.RegNone, 1, 0, 8))
	b.CallExtern("memset")
	a.I(x86.ADD, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x28, 1))
	a.I(x86.RET)
	r := lift(t, b, "f")
	if r.Status != StatusLifted {
		t.Fatalf("status: %s %v", r.Status, r.Reasons)
	}
	if len(r.Graph.Obligations) != 1 {
		t.Fatalf("obligations: %v", r.Graph.Obligations)
	}
	if !strings.Contains(r.Graph.Obligations[0], "memset") ||
		!strings.Contains(r.Graph.Obligations[0], "MUST PRESERVE") {
		t.Fatalf("obligation text: %q", r.Graph.Obligations[0])
	}
}

func TestAblationJoinCodePointers(t *testing.T) {
	// With the compatibility extension disabled, the jump-table values
	// join into an abstract interval and the indirect jump cannot be
	// resolved.
	b := newBuilder(t)
	table := make([]byte, 16)
	a := b.Func("f")
	a.I(x86.CMP, x86.RegOp(x86.RDI, 8), x86.ImmOp(1, 1))
	a.Jcc(x86.CondA, "default")
	a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RegNone, x86.RDI, 8, rodataBase, 8))
	a.I(x86.NOP) // join point between the two loaded pointers
	a.I(x86.JMP, x86.RegOp(x86.RAX, 8))
	a.Label("c0")
	a.Jmp("end")
	a.Label("c1")
	a.Jmp("end")
	a.Label("default")
	a.Label("end")
	a.I(x86.RET)
	b.rodata = table
	for i, lbl := range []string{"c0", "c1"} {
		addr, _ := a.LabelAddr(lbl)
		for j := 0; j < 8; j++ {
			table[8*i+j] = byte(addr >> (8 * j))
		}
	}
	im := b.Image()

	// Default: resolved.
	l := New(im, DefaultConfig())
	r := l.LiftFuncCtx(context.Background(), b.funcSyms["f"], "f")
	if r.Stats().ResolvedInd != 1 || r.Stats().UnresolvedJump != 0 {
		t.Fatalf("default config: %+v (%s)", r.Stats(), r.Status)
	}

	// Ablation: join code pointers → unresolved.
	cfg := DefaultConfig()
	cfg.JoinCodePointers = true
	l2 := New(im, cfg)
	r2 := l2.LiftFuncCtx(context.Background(), b.funcSyms["f"], "f")
	if r2.Stats().UnresolvedJump == 0 {
		t.Fatalf("ablation should lose the indirection: %+v", r2.Stats())
	}
}

// TestSoundnessAgainstEmulator is Definition 4.6 in property form: every
// transition of a concrete run is simulated by an edge of the HG.
func TestSoundnessAgainstEmulator(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("f")
	// A function with a branch, a loop, and stack traffic.
	a.I(x86.PUSH, x86.RegOp(x86.RBP, 8))
	a.I(x86.MOV, x86.RegOp(x86.RBP, 8), x86.RegOp(x86.RSP, 8))
	a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x10, 1))
	a.I(x86.MOV, x86.MemOp(x86.RBP, x86.RegNone, 1, -8, 8), x86.RegOp(x86.RDI, 8))
	a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
	a.I(x86.XOR, x86.RegOp(x86.RCX, 4), x86.RegOp(x86.RCX, 4))
	a.Label("loop")
	a.I(x86.CMP, x86.RegOp(x86.RCX, 8), x86.MemOp(x86.RBP, x86.RegNone, 1, -8, 8))
	a.Jcc(x86.CondAE, "done")
	a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RCX, 8))
	a.I(x86.ADD, x86.RegOp(x86.RCX, 8), x86.ImmOp(1, 1))
	a.Jmp("loop")
	a.Label("done")
	a.I(x86.LEAVE)
	a.I(x86.RET)
	im := b.Image()
	l := New(im, DefaultConfig())
	r := l.LiftFuncCtx(context.Background(), b.funcSyms["f"], "f")
	if r.Status != StatusLifted {
		t.Fatalf("status: %s %v", r.Status, r.Reasons)
	}

	// Edge relation on addresses.
	allowed := map[[2]uint64]bool{}
	addrOf := map[hoare.VertexID]uint64{}
	for id, v := range r.Graph.Vertices {
		addrOf[id] = v.Addr
	}
	var retSites []uint64
	for _, e := range r.Graph.Edges {
		if e.To == hoare.ExitID {
			retSites = append(retSites, e.Inst.Addr)
			continue
		}
		if e.To == hoare.HaltID {
			continue
		}
		allowed[[2]uint64{e.Inst.Addr, addrOf[e.To]}] = true
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		c := emu.New(im)
		c.Reset(b.funcSyms["f"])
		c.Regs[x86.RDI] = uint64(rng.Intn(6))
		trace, err := c.Run(500)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Halted {
			t.Fatal("run did not finish")
		}
		for _, tr := range trace {
			if allowed[[2]uint64{tr.From, tr.To}] {
				continue
			}
			// ret transitions exit the function.
			isRet := false
			for _, rs := range retSites {
				if rs == tr.From {
					isRet = true
				}
			}
			if !isRet {
				t.Fatalf("trial %d: concrete transition %#x→%#x not simulated by the HG",
					trial, tr.From, tr.To)
			}
		}
	}
}

func TestLiftBinaryAggregates(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("start")
	a.Call("work")
	b.CallExtern("exit")
	a.I(x86.UD2)
	w := b.Func("work")
	w.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 4))
	w.I(x86.RET)
	im := b.Image()
	l := New(im, DefaultConfig())
	// Entry is textBase (start).
	res := l.LiftBinaryCtx(context.Background(), "test-bin")
	if res.Status != StatusLifted {
		t.Fatalf("binary status: %s", res.Status)
	}
	if len(res.Funcs) != 2 {
		t.Fatalf("functions: %d", len(res.Funcs))
	}
	if res.Stats.Instructions < 4 {
		t.Fatalf("aggregate instructions: %d", res.Stats.Instructions)
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{StatusLifted, StatusUnprovableRet, StatusConcurrency, StatusTimeout, StatusError} {
		if s.String() == "" {
			t.Fatal("empty status name")
		}
	}
}

func TestSummariesSortedAndCached(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("zmain")
	a.Call("aaa")
	a.Call("bbb")
	a.I(x86.RET)
	f1 := b.Func("bbb")
	f1.I(x86.RET)
	f2 := b.Func("aaa")
	f2.I(x86.RET)
	im := b.Image()
	l := New(im, DefaultConfig())
	r := l.LiftFuncCtx(context.Background(), b.funcSyms["zmain"], "zmain")
	if r.Status != StatusLifted {
		t.Fatal(r.Status)
	}
	sums := l.Summaries()
	if len(sums) != 3 {
		t.Fatalf("summaries: %d", len(sums))
	}
	for i := 1; i < len(sums); i++ {
		if sums[i].Addr < sums[i-1].Addr {
			t.Fatal("summaries must be address-ordered")
		}
	}
	// Cached: a second lift returns the same pointer.
	if l.LiftFuncCtx(context.Background(), b.funcSyms["aaa"], "aaa") != l.LiftFuncCtx(context.Background(), b.funcSyms["aaa"], "aaa") {
		t.Fatal("summary caching broken")
	}
}

func TestExploitCandidatesEmptyForBenign(t *testing.T) {
	b := newBuilder(t)
	a := b.Func("f")
	a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RDI, 8))
	a.I(x86.RET)
	r := lift(t, b, "f")
	if got := ExploitCandidates(r); len(got) != 0 {
		t.Fatalf("benign function must yield no candidates: %+v", got)
	}
	// Nil graph tolerated.
	if got := ExploitCandidates(&FuncResult{}); got != nil {
		t.Fatal("nil graph")
	}
}
