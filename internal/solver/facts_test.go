package solver

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/pred"
)

func TestFactsNilSafe(t *testing.T) {
	var f *Facts
	if _, ok := f.Lookup(Region{rsp(0), 8}, Region{rsp(8), 8}); ok {
		t.Fatal("nil table must not report facts")
	}
	if f.Len() != 0 || f.Proven() != 0 || f.Hypotheses() != 0 {
		t.Fatal("nil table must report zero sizes")
	}
}

func TestFactsAddLookupOrientation(t *testing.T) {
	f := NewFacts()
	small := Region{rsp(4), 4}
	big := Region{rsp(0), 8}
	res := Compare(pred.New(), small, big)
	if res.Enclosed != Yes {
		t.Fatalf("fixture: %+v", res)
	}
	f.Add(small, big, res, false)

	got, ok := f.Lookup(small, big)
	if !ok || got.Res != res || got.Assumed {
		t.Fatalf("same-order lookup: %+v ok=%v", got, ok)
	}
	// Reversed probe must re-orient: big encloses small.
	rev, ok := f.Lookup(big, small)
	if !ok || rev.Res.Encloses != Yes || rev.Res.Enclosed != No {
		t.Fatalf("reversed lookup must swap enclosure: %+v ok=%v", rev, ok)
	}
	if rev.Res.Alias != res.Alias || rev.Res.Separate != res.Separate || rev.Res.Partial != res.Partial {
		t.Fatalf("symmetric verdicts must be unchanged: %+v vs %+v", rev.Res, res)
	}

	if f.Len() != 1 || f.Proven() != 1 || f.Hypotheses() != 0 {
		t.Fatalf("counts: len=%d proven=%d hyp=%d", f.Len(), f.Proven(), f.Hypotheses())
	}

	// Hypotheses count separately; re-adding a pair overwrites, not grows.
	hyp := Result{Separate: Yes, Alias: No, Enclosed: No, Encloses: No, Partial: No}
	f.Add(Region{expr.V("rdi0"), 8}, Region{expr.V("rsi0"), 8}, hyp, true)
	f.Add(Region{expr.V("rsi0"), 8}, Region{expr.V("rdi0"), 8}, hyp, true)
	if f.Len() != 2 || f.Hypotheses() != 1 {
		t.Fatalf("hypothesis counts: len=%d hyp=%d", f.Len(), f.Hypotheses())
	}
	g, ok := f.Lookup(Region{expr.V("rsi0"), 8}, Region{expr.V("rdi0"), 8})
	if !ok || !g.Assumed || g.Res.Separate != Yes {
		t.Fatalf("hypothesis lookup: %+v ok=%v", g, ok)
	}
}

// randRegion builds a random region whose address is drawn from the linear
// fragment the lifter actually produces: an optional symbolic base, an
// optional scaled index term, and a constant offset.
func randRegion(rng *rand.Rand, idx *expr.Expr) Region {
	bases := []*expr.Expr{
		expr.V("rsp0"), expr.V("rdi0"), expr.V("rsi0"), expr.V("rdx0"), nil,
	}
	addr := expr.Word(uint64(int64(rng.Intn(64) - 32)))
	if b := bases[rng.Intn(len(bases))]; b != nil {
		addr = expr.Add(b, addr)
	} else {
		// Pure constant: bias into a plausible global address range.
		addr = expr.Add(addr, expr.Word(0x4a0000))
	}
	if rng.Intn(3) == 0 {
		coeff := uint64(1) << uint(rng.Intn(4))
		addr = expr.Add(addr, expr.Mul(expr.Word(coeff), idx))
	}
	sizes := []uint64{1, 2, 4, 8, 16}
	return Region{Addr: addr, Size: sizes[rng.Intn(len(sizes))]}
}

// checkSwap verifies the unordered-pair contract the fact table stores one
// verdict under: symmetric relations agree and enclosure swaps.
func checkSwap(t *testing.T, p *pred.Pred, a, b Region) {
	t.Helper()
	ab := Compare(p, a, b)
	ba := Compare(p, b, a)
	if ab.Alias != ba.Alias {
		t.Fatalf("Alias not symmetric: %v vs %v (a=%s/%d b=%s/%d)",
			ab.Alias, ba.Alias, a.Addr, a.Size, b.Addr, b.Size)
	}
	if ab.Separate != ba.Separate {
		t.Fatalf("Separate not symmetric: %v vs %v (a=%s/%d b=%s/%d)",
			ab.Separate, ba.Separate, a.Addr, a.Size, b.Addr, b.Size)
	}
	if ab.Partial != ba.Partial {
		t.Fatalf("Partial not symmetric: %v vs %v (a=%s/%d b=%s/%d)",
			ab.Partial, ba.Partial, a.Addr, a.Size, b.Addr, b.Size)
	}
	if ab.Enclosed != ba.Encloses || ab.Encloses != ba.Enclosed {
		t.Fatalf("enclosure must swap: %+v vs %+v (a=%s/%d b=%s/%d)",
			ab, ba, a.Addr, a.Size, b.Addr, b.Size)
	}
	if swapResult(ab) != ba {
		t.Fatalf("swapResult(Compare(a,b)) != Compare(b,a): %+v vs %+v", swapResult(ab), ba)
	}
}

func TestCompareSwapConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	idx := expr.V("i")
	for trial := 0; trial < 2000; trial++ {
		p := pred.New()
		switch rng.Intn(3) {
		case 0:
			// No interval clause: only the constant path decides.
		case 1:
			p.AddRange(idx, pred.Range{Lo: 0, Hi: uint64(rng.Intn(16))})
		default:
			lo := uint64(rng.Intn(8))
			p.AddRange(idx, pred.Range{Lo: lo, Hi: lo + uint64(rng.Intn(16))})
		}
		checkSwap(t, p, randRegion(rng, idx), randRegion(rng, idx))
	}
}

func FuzzCompareSwap(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(42), uint8(0))
	f.Add(int64(-7), uint8(15))
	f.Fuzz(func(t *testing.T, seed int64, hi uint8) {
		rng := rand.New(rand.NewSource(seed))
		idx := expr.V(expr.Var(fmt.Sprintf("i%d", seed&3)))
		p := pred.New()
		if hi%2 == 0 {
			p.AddRange(idx, pred.Range{Lo: 0, Hi: uint64(hi)})
		}
		a, b := randRegion(rng, idx), randRegion(rng, idx)
		checkSwap(t, p, a, b)

		// Round-trip through the table in both orientations.
		facts := NewFacts()
		facts.Add(a, b, Compare(p, a, b), false)
		got, ok := facts.Lookup(b, a)
		if !ok {
			t.Fatal("stored pair must be found in reversed order")
		}
		if got.Res != Compare(p, b, a) {
			t.Fatalf("reversed lookup %+v != direct Compare %+v", got.Res, Compare(p, b, a))
		}
	})
}
