package solver

import "repro/internal/expr"

// Fact is one stored relation verdict between a pair of regions. Proven
// facts (Assumed=false) were decided by Compare under the empty predicate:
// only the constant-difference path of Compare decides there, and that path
// never consults the predicate, so the verdict holds under every predicate
// the lifter will ever carry. Assumed facts are separation hypotheses
// (distinct symbolic provenance bases) in the same spirit as the machine's
// AssumeBaseSeparation; consumers must record them as assumptions so they
// surface in the lifted graph's assumption list.
type Fact struct {
	Res     Result
	Assumed bool
}

// Facts is an immutable-after-build table of region-pair facts computed by
// a pre-pass (internal/ptr) and consulted by the semantics before the
// decision procedure. One verdict is stored per unordered pair — sound
// because Compare is swap-consistent: Alias/Separate/Partial are symmetric
// and Enclosed/Encloses swap under argument exchange (pinned by
// TestCompareSwapConsistency) — and Lookup re-orients the stored Result to
// the probe's argument order.
//
// Keys are the same MixFP(address fingerprint, size) region fingerprints the
// solver memo cache uses, so probing allocates nothing. Facts are
// per-function: initial-state register symbols (rsp0, rdi0, …) are reused
// across functions, so a table must never outlive the function whose entry
// state named its bases — which is also why facts must never be written into
// the cross-function solver.Cache.
type Facts struct {
	m          map[factKey]factEntry
	proven     int
	hypotheses int
}

// factKey identifies an unordered region pair by fingerprints, lower first.
type factKey struct {
	lo, hi uint64
}

// factEntry stores the fact oriented lo-region-first.
type factEntry struct {
	f Fact
}

// NewFacts returns an empty table.
func NewFacts() *Facts {
	return &Facts{m: map[factKey]factEntry{}}
}

// regionFP fingerprints a region exactly like the solver memo cache.
func regionFP(r Region) uint64 {
	return expr.MixFP(r.Addr.Fingerprint(), r.Size)
}

// Add records res as the fact for the unordered pair {r0, r1}, normalizing
// the orientation so the stored Result reads (lower-fingerprint region,
// higher-fingerprint region). A later Add for the same pair overwrites.
func (f *Facts) Add(r0, r1 Region, res Result, assumed bool) {
	fp0, fp1 := regionFP(r0), regionFP(r1)
	if fp0 > fp1 {
		fp0, fp1 = fp1, fp0
		res = swapResult(res)
	}
	key := factKey{lo: fp0, hi: fp1}
	if _, dup := f.m[key]; !dup {
		if assumed {
			f.hypotheses++
		} else {
			f.proven++
		}
	}
	f.m[key] = factEntry{f: Fact{Res: res, Assumed: assumed}}
}

// Lookup returns the stored fact for (r0, r1), re-oriented to that argument
// order. Nil-safe: a nil table never has facts.
func (f *Facts) Lookup(r0, r1 Region) (Fact, bool) {
	if f == nil {
		return Fact{}, false
	}
	fp0, fp1 := regionFP(r0), regionFP(r1)
	swapped := false
	if fp0 > fp1 {
		fp0, fp1 = fp1, fp0
		swapped = true
	}
	e, ok := f.m[factKey{lo: fp0, hi: fp1}]
	if !ok {
		return Fact{}, false
	}
	fact := e.f
	if swapped {
		fact.Res = swapResult(fact.Res)
	}
	return fact, true
}

// Len returns the number of stored pair facts. Nil-safe.
func (f *Facts) Len() int {
	if f == nil {
		return 0
	}
	return len(f.m)
}

// Proven returns the number of predicate-independent proven facts. Nil-safe.
func (f *Facts) Proven() int {
	if f == nil {
		return 0
	}
	return f.proven
}

// Hypotheses returns the number of assumed separation facts. Nil-safe.
func (f *Facts) Hypotheses() int {
	if f == nil {
		return 0
	}
	return f.hypotheses
}

// swapResult re-orients a Result for exchanged arguments: aliasing,
// separation and partial overlap are symmetric, the two enclosure relations
// exchange.
func swapResult(r Result) Result {
	r.Enclosed, r.Encloses = r.Encloses, r.Enclosed
	return r
}
