package solver

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/pred"
)

// CacheStats reports the query/hit counters of a Cache.
type CacheStats struct {
	Queries uint64
	Hits    uint64
	Entries int
}

// HitRate returns the fraction of queries answered from the cache.
func (s CacheStats) HitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Queries)
}

// Cache memoizes Compare verdicts. Compiler-generated address arithmetic is
// linear in a handful of symbolic bases, so the same (predicate, region
// pair) query recurs heavily across the vertices of a function — and, for
// stack-relative regions, across functions of a whole corpus. The key is a
// triple of 64-bit fingerprints: the predicate's interval fingerprint
// (pred.RangesFingerprint — Compare consults the predicate only through
// RangeOf, i.e. only through the interval clauses, so it is exact) and one
// fingerprint per region mixing the interned address fingerprint with the
// size. Probing allocates nothing: the key is a comparable struct of three
// words, not a freshly built string.
//
// Fingerprints can collide, returning a stale verdict for a distinct query.
// Each component collides with probability ~2⁻⁶⁴ per pair; by the birthday
// bound a table of 10⁶ entries mis-keys with probability ≈ 3·10⁻⁸ over the
// whole run, far below the noise floor of everything else (and the triple
// checker independently re-proves every Hoare triple downstream).
//
// A Cache is safe for concurrent use by the pipeline's lift workers.
type Cache struct {
	mu      sync.RWMutex
	m       map[memoKey]Result
	queries atomic.Uint64
	hits    atomic.Uint64
}

// memoKey is the comparable three-fingerprint memo key.
type memoKey struct {
	ranges uint64
	r0, r1 uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: map[memoKey]Result{}}
}

// Compare answers like the package-level Compare, consulting the memo
// first. The second result reports whether the verdict was a cache hit.
func (c *Cache) Compare(p *pred.Pred, r0, r1 Region) (Result, bool) {
	c.queries.Add(1)
	key := cacheKey(p, r0, r1)
	c.mu.RLock()
	res, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return res, true
	}
	res = Compare(p, r0, r1)
	c.mu.Lock()
	c.m[key] = res
	c.mu.Unlock()
	return res, false
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return CacheStats{
		Queries: c.queries.Load(),
		Hits:    c.hits.Load(),
		Entries: n,
	}
}

// cacheKey builds the memo key from precomputed fingerprints.
func cacheKey(p *pred.Pred, r0, r1 Region) memoKey {
	return memoKey{
		ranges: p.RangesFingerprint(),
		r0:     expr.MixFP(r0.Addr.Fingerprint(), r0.Size),
		r1:     expr.MixFP(r1.Addr.Fingerprint(), r1.Size),
	}
}
