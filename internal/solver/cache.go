package solver

import (
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/pred"
)

// CacheStats reports the query/hit counters of a Cache.
type CacheStats struct {
	Queries uint64
	Hits    uint64
	Entries int
}

// HitRate returns the fraction of queries answered from the cache.
func (s CacheStats) HitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Queries)
}

// Cache memoizes Compare verdicts. Compiler-generated address arithmetic is
// linear in a handful of symbolic bases, so the same (predicate, region
// pair) query recurs heavily across the vertices of a function — and, for
// stack-relative regions, across functions of a whole corpus. The key is
// the pair of region keys plus the predicate's interval fingerprint
// (pred.RangesKey): Compare consults the predicate only through RangeOf,
// i.e. only through the interval clauses, so the fingerprint is exact.
//
// A Cache is safe for concurrent use by the pipeline's lift workers.
type Cache struct {
	mu      sync.RWMutex
	m       map[string]Result
	queries atomic.Uint64
	hits    atomic.Uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: map[string]Result{}}
}

// Compare answers like the package-level Compare, consulting the memo
// first. The second result reports whether the verdict was a cache hit.
func (c *Cache) Compare(p *pred.Pred, r0, r1 Region) (Result, bool) {
	c.queries.Add(1)
	key := cacheKey(p, r0, r1)
	c.mu.RLock()
	res, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return res, true
	}
	res = Compare(p, r0, r1)
	c.mu.Lock()
	c.m[key] = res
	c.mu.Unlock()
	return res, false
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return CacheStats{
		Queries: c.queries.Load(),
		Hits:    c.hits.Load(),
		Entries: n,
	}
}

// cacheKey builds the memo key. The separator byte cannot occur in
// expression keys, keeping the concatenation unambiguous.
func cacheKey(p *pred.Pred, r0, r1 Region) string {
	var b []byte
	b = append(b, p.RangesKey()...)
	b = append(b, 0)
	b = append(b, r0.Addr.Key()...)
	b = append(b, '#')
	b = strconv.AppendUint(b, r0.Size, 10)
	b = append(b, 0)
	b = append(b, r1.Addr.Key()...)
	b = append(b, '#')
	b = strconv.AppendUint(b, r1.Size, 10)
	return string(b)
}
