package solver

import (
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/pred"
)

func rsp(off int64) *expr.Expr {
	return expr.Add(expr.V("rsp0"), expr.Word(uint64(off)))
}

func TestExactSameBase(t *testing.T) {
	p := pred.New()
	cases := []struct {
		name   string
		r0, r1 Region
		check  func(Result) bool
	}{
		{"alias", Region{rsp(-8), 8}, Region{rsp(-8), 8},
			func(r Result) bool { return r.Alias == Yes && r.Separate == No }},
		{"separate-below", Region{rsp(-16), 8}, Region{rsp(-8), 8},
			func(r Result) bool { return r.Separate == Yes }},
		{"separate-above", Region{rsp(0), 8}, Region{rsp(-8), 8},
			func(r Result) bool { return r.Separate == Yes }},
		{"adjacent", Region{rsp(-4), 4}, Region{rsp(0), 4},
			func(r Result) bool { return r.Separate == Yes }},
		{"enclosed", Region{rsp(4), 4}, Region{rsp(0), 8},
			func(r Result) bool { return r.Enclosed == Yes }},
		{"enclosed-prefix", Region{rsp(0), 4}, Region{rsp(0), 8},
			func(r Result) bool { return r.Enclosed == Yes && r.Alias == No }},
		{"encloses", Region{rsp(0), 8}, Region{rsp(4), 4},
			func(r Result) bool { return r.Encloses == Yes }},
		{"partial", Region{rsp(4), 8}, Region{rsp(0), 8},
			func(r Result) bool { return r.Partial == Yes && r.Separate == No }},
	}
	for _, c := range cases {
		got := Compare(p, c.r0, c.r1)
		if !c.check(got) {
			t.Errorf("%s: %+v", c.name, got)
		}
	}
}

func TestUnknownBases(t *testing.T) {
	p := pred.New()
	// rdi0 vs rsi0: nothing derivable.
	r := Compare(p, Region{expr.V("rdi0"), 8}, Region{expr.V("rsi0"), 8})
	if r.Alias != Maybe || r.Separate != Maybe || r.Partial != Maybe {
		t.Fatalf("cross-base must be undecided: %+v", r)
	}
	if r.Decided() {
		t.Fatal("Decided must be false")
	}
}

func TestIntervalDifference(t *testing.T) {
	p := pred.New()
	idx := expr.V("i")
	p.AddRange(idx, pred.Range{Lo: 0, Hi: 3})
	// [rsp0 - 0x40 + 8·i, 8] vs the return address slot [rsp0, 8]:
	// the write stays within [rsp0-0x40, rsp0-0x28], necessarily separate.
	w := Region{expr.Add(rsp(-0x40), expr.Mul(expr.Word(8), idx)), 8}
	ra := Region{rsp(0), 8}
	r := Compare(p, w, ra)
	if r.Separate != Yes {
		t.Fatalf("bounded array write must be separate from return address: %+v", r)
	}
	// With i ∈ [0, 8] the write at i=8 reaches rsp0 exactly: not separate.
	p2 := pred.New()
	p2.AddRange(idx, pred.Range{Lo: 0, Hi: 8})
	r = Compare(p2, w, ra)
	if r.Separate == Yes {
		t.Fatalf("out-of-bounds index must not be proven separate: %+v", r)
	}
	// Unbounded index: everything Maybe.
	p3 := pred.New()
	r = Compare(p3, w, ra)
	if r.Separate != Maybe {
		t.Fatalf("unbounded index: %+v", r)
	}
}

func TestIntervalEnclosure(t *testing.T) {
	p := pred.New()
	idx := expr.V("i")
	p.AddRange(idx, pred.Range{Lo: 0, Hi: 3})
	// 1-byte accesses at rsp0-16+i are enclosed in [rsp0-16, 8].
	b := Region{expr.Add(rsp(-16), idx), 1}
	buf := Region{rsp(-16), 8}
	r := Compare(p, b, buf)
	if r.Enclosed != Yes {
		t.Fatalf("bounded byte access must be enclosed: %+v", r)
	}
	if got := Compare(p, buf, b); got.Encloses != Yes {
		t.Fatalf("converse enclosure: %+v", got)
	}
}

func TestNegativeCoefficient(t *testing.T) {
	p := pred.New()
	idx := expr.V("i")
	p.AddRange(idx, pred.Range{Lo: 0, Hi: 2})
	// rsp0 - 8·i for i ∈ [0,2] spans [rsp0-16, rsp0]; vs [rsp0+8, 8]:
	// separate (hi = 0, 0 + 8 ≤ 8).
	w := Region{expr.Sub(expr.V("rsp0"), expr.Mul(expr.Word(8), idx)), 8}
	r := Compare(p, w, Region{rsp(8), 8})
	if r.Separate != Yes {
		t.Fatalf("negative coefficient separation: %+v", r)
	}
	// vs [rsp0, 8]: i=0 aliases, i>0 separate — undecided.
	r = Compare(p, w, Region{rsp(0), 8})
	if r.Separate == Yes || r.Alias == Yes {
		t.Fatalf("must be undecided: %+v", r)
	}
}

func TestGlobalVsGlobal(t *testing.T) {
	p := pred.New()
	r := Compare(p, Region{expr.Word(0x601000), 8}, Region{expr.Word(0x601010), 16})
	if r.Separate != Yes {
		t.Fatalf("distinct globals: %+v", r)
	}
	r = Compare(p, Region{expr.Word(0x601004), 4}, Region{expr.Word(0x601000), 8})
	if r.Enclosed != Yes {
		t.Fatalf("global enclosure: %+v", r)
	}
}

func TestHelpers(t *testing.T) {
	if d, ok := SameBaseDistance(rsp(-8), rsp(-32)); !ok || d != 24 {
		t.Fatalf("distance: %d %v", d, ok)
	}
	if _, ok := SameBaseDistance(expr.V("rdi0"), expr.V("rsi0")); ok {
		t.Fatal("cross-base distance must fail")
	}
	if b, ok := BaseAtom(rsp(-8)); !ok || !b.Equal(expr.V("rsp0")) {
		t.Fatalf("base atom: %v %v", b, ok)
	}
	if _, ok := BaseAtom(expr.Mul(expr.Word(2), expr.V("x"))); ok {
		t.Fatal("scaled atom is not a base")
	}
	if _, ok := BaseAtom(expr.Word(5)); ok {
		t.Fatal("constant has no base atom")
	}
	if Yes.String() != "yes" || No.String() != "no" || Maybe.String() != "maybe" {
		t.Fatal("verdict strings")
	}
}

// Property: for same-base constant offsets, the solver verdict matches a
// concrete evaluation of Definition 3.6 — and exactly one relation is Yes.
func TestQuickExactMatchesConcrete(t *testing.T) {
	f := func(off0, off1 int16, s0, s1 uint8) bool {
		n0 := uint64(s0%32) + 1
		n1 := uint64(s1%32) + 1
		r0 := Region{rsp(int64(off0)), n0}
		r1 := Region{rsp(int64(off1)), n1}
		got := Compare(pred.New(), r0, r1)

		e0, e1 := int64(off0), int64(off1)
		sep := e0+int64(n0) <= e1 || e1+int64(n1) <= e0
		alias := e0 == e1 && n0 == n1
		encd := !alias && e0 >= e1 && e0+int64(n0) <= e1+int64(n1)
		encs := !alias && e1 >= e0 && e1+int64(n1) <= e0+int64(n0)
		partial := !sep && !alias && !encd && !encs

		count := 0
		for _, v := range []Verdict{got.Alias, got.Separate, got.Enclosed, got.Encloses, got.Partial} {
			if v == Yes {
				count++
			}
		}
		return count == 1 &&
			(got.Separate == Yes) == sep &&
			(got.Alias == Yes) == alias &&
			(got.Enclosed == Yes) == encd &&
			(got.Encloses == Yes) == encs &&
			(got.Partial == Yes) == partial
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: interval verdicts are sound — a Yes/No never contradicts any
// concrete index in the interval.
func TestQuickIntervalSoundness(t *testing.T) {
	f := func(lo8, width8 uint8, base int16) bool {
		lo := uint64(lo8 % 16)
		hi := lo + uint64(width8%8)
		p := pred.New()
		idx := expr.V("i")
		p.AddRange(idx, pred.Range{Lo: lo, Hi: hi})
		r0 := Region{expr.Add(rsp(int64(base)), expr.Mul(expr.Word(4), idx)), 4}
		r1 := Region{rsp(0), 8}
		got := Compare(p, r0, r1)

		for i := lo; i <= hi; i++ {
			e0 := int64(base) + 4*int64(i)
			sep := e0+4 <= 0 || 8 <= e0
			if got.Separate == Yes && !sep {
				return false
			}
			if got.Separate == No && sep {
				return false
			}
			encd := e0 >= 0 && e0+4 <= 8
			if got.Enclosed == Yes && !encd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeRefinementOnUnknownBases(t *testing.T) {
	p := pred.New()
	// 4-byte vs 8-byte regions with unknown bases: aliasing requires equal
	// sizes, and an 8-byte region cannot be enclosed in a 4-byte one.
	r := Compare(p, Region{expr.V("a"), 4}, Region{expr.V("b"), 8})
	if r.Alias != No {
		t.Fatalf("alias with different sizes: %v", r.Alias)
	}
	if r.Encloses != No {
		t.Fatalf("larger inside smaller: %v", r.Encloses)
	}
	if r.Enclosed != Maybe || r.Separate != Maybe {
		t.Fatalf("undecided relations: %+v", r)
	}
	// Same sizes: strict enclosure is impossible either way.
	r = Compare(p, Region{expr.V("a"), 8}, Region{expr.V("b"), 8})
	if r.Enclosed != No || r.Encloses != No {
		t.Fatalf("same-size enclosure: %+v", r)
	}
	if r.Alias != Maybe || r.Separate != Maybe || r.Partial != Maybe {
		t.Fatalf("same-size unknown: %+v", r)
	}
}

func TestCompareWithMaskedIndex(t *testing.T) {
	// Masked index: addr = rsp0 - 0x40 + 8·(i & 7) is bounded by the
	// intrinsic mask range even without explicit clauses.
	p := pred.New()
	masked := expr.And(expr.V("i"), expr.Word(7))
	w := Region{expr.Add(rsp(-0x40), expr.Mul(expr.Word(8), masked)), 8}
	r := Compare(p, w, Region{rsp(0), 8})
	if r.Separate != Yes {
		t.Fatalf("masked write must be separate from the return address: %+v", r)
	}
}

func TestDecidedHelper(t *testing.T) {
	p := pred.New()
	if !Compare(p, Region{rsp(0), 8}, Region{rsp(-8), 8}).Decided() {
		t.Fatal("exact geometry must be decided")
	}
	if Compare(p, Region{expr.V("p"), 8}, Region{expr.V("q"), 8}).Decided() {
		t.Fatal("cross-base must be undecided")
	}
}
