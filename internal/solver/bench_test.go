package solver

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/pred"
)

// BenchmarkSolverCompareCached measures the memo-hit path of the cached
// Compare — the operation Step-2 performs thousands of times per function
// once the cache is warm.
func BenchmarkSolverCompareCached(b *testing.B) {
	p := pred.New()
	p.AddRange(expr.V("i"), pred.Range{Lo: 0, Hi: 15})
	p.AddRange(expr.V("j4_rax"), pred.Range{Lo: 0, Hi: 0xff})
	rsp := expr.V("rsp0")
	r0 := Region{Addr: expr.Add(rsp, expr.Word(^uint64(0)-15)), Size: 8}
	r1 := Region{Addr: expr.Add(rsp, expr.Add(expr.Mul(expr.Word(8), expr.V("i")), expr.Word(^uint64(0)-63))), Size: 8}
	c := NewCache()
	if _, hit := c.Compare(p, r0, r1); hit {
		b.Fatal("first query cannot hit")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit := c.Compare(p, r0, r1); !hit {
			b.Fatal("warm query must hit")
		}
	}
}
