// Package solver decides the "necessarily" pointer relations of
// Definition 3.6 — aliasing (≡), separation (⋈) and enclosure (⪯) — between
// symbolic memory regions under a predicate. It stands in for the Z3 SMT
// solver of the paper: compiler-generated address arithmetic is linear in a
// handful of symbolic bases (rsp0, argument registers, section addresses),
// so the solver subtracts linear normal forms and reasons over the constant
// or interval-valued difference. Anything outside that fragment yields
// Maybe, which soundly forces the lifter onto its fork/destroy paths.
//
// Compare is a pure function of the predicate's interval clauses and the
// two regions, which makes its verdicts memoizable: Cache wraps it with a
// concurrency-safe memo table keyed on that exact input fingerprint
// (pred.RangesKey plus the regions' canonical keys), shared by the
// pipeline's lift workers.
package solver

import (
	"repro/internal/expr"
	"repro/internal/pred"
)

// Verdict is a three-valued answer about a relation between two regions.
type Verdict int8

// The three truth values: No (necessarily false), Yes (necessarily true)
// and Maybe (not decided).
const (
	No Verdict = iota
	Yes
	Maybe
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case No:
		return "no"
	case Yes:
		return "yes"
	default:
		return "maybe"
	}
}

// Region is a memory region ⟨address, size⟩ with a constant-expression
// address.
type Region struct {
	Addr *expr.Expr
	Size uint64
}

// Key returns the canonical key of the region.
func (r Region) Key() string { return r.Addr.Key() }

// Result reports, for an ordered pair of regions (r0, r1), the verdict of
// each of the five possible geometric relations. Exactly one relation holds
// in any concrete state, so at most one verdict is Yes, and if four are No
// the fifth is Yes.
type Result struct {
	Alias    Verdict // r0 ≡ r1
	Separate Verdict // r0 ⋈ r1
	Enclosed Verdict // r0 ⪯ r1 (strictly: enclosed, not alias)
	Encloses Verdict // r1 ⪯ r0 (strictly)
	Partial  Verdict // partially overlapping
}

// Decided reports whether some relation is necessarily true.
func (r Result) Decided() bool {
	return r.Alias == Yes || r.Separate == Yes || r.Enclosed == Yes ||
		r.Encloses == Yes || r.Partial == Yes
}

// Compare decides the relations between r0 and r1 under predicate p. The
// difference d = addr(r0) − addr(r1) is computed in linear normal form; if
// it is constant the geometry is exact, if it has interval-bounded terms
// the relations are decided over the interval, otherwise everything is
// Maybe. Offsets are interpreted as signed quantities (the paper's
// no-wraparound domain assumption for object addresses).
func Compare(p *pred.Pred, r0, r1 Region) Result {
	d := expr.ToLinear(r0.Addr).Sub(expr.ToLinear(r1.Addr))
	n0, n1 := int64(r0.Size), int64(r1.Size)

	if c, ok := d.Const(); ok {
		return exact(int64(c), n0, n1)
	}

	// Interval-valued difference: d = K + Σ c·t with every t bounded.
	lo, hi, ok := diffInterval(p, d)
	if !ok {
		// Nothing derivable about the offset; only the sizes refine.
		res := Result{Alias: Maybe, Separate: Maybe, Enclosed: Maybe, Encloses: Maybe, Partial: Maybe}
		switch {
		case n0 == n1:
			res.Enclosed, res.Encloses = No, No
		case n0 > n1:
			res.Enclosed = No
			res.Alias = No
		default:
			res.Encloses = No
			res.Alias = No
		}
		return res
	}
	res := Result{}
	// Separation: d + n0 ≤ 0 ∨ d ≥ n1.
	switch {
	case hi+n0 <= 0 || lo >= n1:
		res.Separate = Yes
	case lo+n0 > 0 && hi < n1:
		res.Separate = No
	default:
		res.Separate = Maybe
	}
	// Aliasing: d = 0 ∧ n0 = n1.
	switch {
	case n0 == n1 && lo == 0 && hi == 0:
		res.Alias = Yes
	case n0 != n1 || lo > 0 || hi < 0:
		res.Alias = No
	default:
		res.Alias = Maybe
	}
	// Enclosure r0 ⪯ r1 (excluding exact alias): d ≥ 0 ∧ d + n0 ≤ n1.
	switch {
	case lo >= 0 && hi+n0 <= n1 && !(n0 == n1 && lo == 0 && hi == 0):
		res.Enclosed = Yes
	case hi < 0 || lo+n0 > n1:
		res.Enclosed = No
	default:
		res.Enclosed = Maybe
	}
	// Converse enclosure: −d ≥ 0 ∧ −d + n1 ≤ n0.
	switch {
	case hi <= 0 && n1-lo <= n0 && !(n0 == n1 && lo == 0 && hi == 0):
		res.Encloses = Yes
	case lo > 0 || n1-hi > n0:
		res.Encloses = No
	default:
		res.Encloses = Maybe
	}
	// Equal sizes: non-trivial enclosure is impossible (it would be the
	// alias case), which sharpens the undecided verdicts.
	if n0 == n1 {
		res.Enclosed = No
		res.Encloses = No
	}
	// Exactly one relation holds concretely, so four No's imply the fifth.
	switch {
	case res.Alias == No && res.Separate == No && res.Enclosed == No && res.Encloses == No:
		res.Partial = Yes
	case res.Alias == Yes || res.Separate == Yes || res.Enclosed == Yes || res.Encloses == Yes:
		res.Partial = No
	default:
		res.Partial = Maybe
	}
	return res
}

// exact decides the relations for a constant signed difference.
func exact(c, n0, n1 int64) Result {
	r := Result{}
	switch {
	case c+n0 <= 0 || c >= n1:
		r.Separate = Yes
	case c == 0 && n0 == n1:
		r.Alias = Yes
	case c >= 0 && c+n0 <= n1:
		r.Enclosed = Yes
	case c <= 0 && n1-c <= n0:
		r.Encloses = Yes
	default:
		r.Partial = Yes
	}
	return r
}

// diffInterval bounds the linear difference d as a signed interval using
// the predicate's interval clauses on its terms. The constant K is read as
// signed; term contributions must be small enough not to overflow.
func diffInterval(p *pred.Pred, d *expr.Linear) (lo, hi int64, ok bool) {
	lo = int64(d.K)
	hi = lo
	ok = true
	d.Terms(func(atom *expr.Expr, coeff uint64) {
		if !ok {
			return
		}
		r, found := p.RangeOf(atom)
		if !found || r.Hi > 1<<40 {
			ok = false
			return
		}
		sc := int64(coeff)
		if sc > 0 && sc < 1<<23 {
			lo += sc * int64(r.Lo)
			hi += sc * int64(r.Hi)
			return
		}
		// Negative coefficient (stored modulo 2⁶⁴).
		nc := -sc
		if nc > 0 && nc < 1<<23 {
			lo -= nc * int64(r.Hi)
			hi -= nc * int64(r.Lo)
			return
		}
		ok = false
	})
	if !ok {
		return 0, 0, false
	}
	return lo, hi, true
}

// SameBaseDistance reports the exact signed distance between two addresses
// when their non-constant parts coincide, e.g. (rsp0−8) and (rsp0−32).
func SameBaseDistance(a0, a1 *expr.Expr) (int64, bool) {
	d := expr.ToLinear(a0).Sub(expr.ToLinear(a1))
	c, ok := d.Const()
	return int64(c), ok
}

// BaseAtom returns the single non-constant atom of an address when its
// linear form is base + constant (coefficient 1), which is how the lifter
// classifies pointer provenance (stack pointer, argument register, global).
func BaseAtom(a *expr.Expr) (*expr.Expr, bool) {
	l := expr.ToLinear(a)
	atom, coeff, ok := l.SingleTerm()
	if !ok || coeff != 1 {
		return nil, false
	}
	return atom, true
}
