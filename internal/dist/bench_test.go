package dist

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/sem"
	"repro/internal/triple"
)

// benchCorpus lifts a scaled-down Table 2 corpus once and shares the work
// units across the worker-count benchmarks, so each benchmark measures
// Step-2 checking only, never lifting.
var benchCorpus struct {
	once  sync.Once
	units []Unit
	err   error
}

func benchUnits(b *testing.B) []Unit {
	benchCorpus.once.Do(func() {
		cus, err := corpus.CoreUtilsSuite(0.5)
		if err != nil {
			benchCorpus.err = err
			return
		}
		for _, cu := range cus {
			l := core.New(cu.Image, core.DefaultConfig())
			res := l.LiftBinaryCtx(context.Background(), cu.Name)
			for _, fr := range res.Funcs {
				if fr.Status != core.StatusLifted || fr.Graph == nil {
					continue
				}
				benchCorpus.units = append(benchCorpus.units, Unit{
					Name:  cu.Name + "/" + fr.Name,
					Img:   cu.Image,
					Graph: fr.Graph,
				})
			}
		}
	})
	if benchCorpus.err != nil {
		b.Fatal(benchCorpus.err)
	}
	if len(benchCorpus.units) == 0 {
		b.Fatal("no lifted units")
	}
	return benchCorpus.units
}

// BenchmarkStep2InProcess is the distribution-free baseline: the same
// units checked serially in this process, the way a dist worker checks
// its shard. The gap to BenchmarkStep2Workers/workers=1 is the whole
// per-shard protocol overhead (serialize, spawn, re-load, merge).
func BenchmarkStep2InProcess(b *testing.B) {
	units := benchUnits(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			triple.Check(context.Background(), u.Img, u.Graph, sem.DefaultConfig())
		}
	}
}

// BenchmarkStep2Workers measures distributed Step-2 wall time as the
// worker subprocess count grows (Threads fixed at 1, so the speedup is
// attributable to distribution alone). bench.sh records the workers=1 vs
// workers=2 pair as the scaling datapoint of BENCH_PR6.json.
func BenchmarkStep2Workers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			units := benchUnits(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reports, err := Check(context.Background(), units, Options{
					Workers: workers,
					Threads: 1,
					Cfg:     sem.DefaultConfig(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(reports) != len(units) {
					b.Fatalf("reports: %d", len(reports))
				}
			}
		})
	}
}
