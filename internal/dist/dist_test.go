package dist

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/elf64"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sem"
	"repro/internal/triple"
	"repro/internal/x86"
)

// TestMain lets the coordinator re-execute this test binary as a shard
// worker: MaybeWorker hijacks the process when the coordinator's
// environment is set and never returns.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

const textBase = 0x401000

// buildUnit assembles one function, wraps it in a minimal ELF, lifts it,
// and returns it as a dist work unit.
func buildUnit(t *testing.T, name string, build func(a *x86.Asm)) Unit {
	t.Helper()
	a := x86.NewAsm(textBase)
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	eb := elf64.NewExec(textBase)
	eb.AddSection(".text", elf64.SHFExecinstr, textBase, code)
	raw, err := eb.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	im, err := image.Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	l := core.New(im, core.DefaultConfig())
	r := l.LiftFuncCtx(context.Background(), textBase, name)
	if r.Status != core.StatusLifted {
		t.Fatalf("lift %s: %s %v", name, r.Status, r.Reasons)
	}
	return Unit{Name: name, Img: im, Graph: r.Graph}
}

// testUnits builds a small corpus exercising straight-line code, a loop
// with flags and comparisons, and stack memory traffic.
func testUnits(t *testing.T) []Unit {
	t.Helper()
	return []Unit{
		buildUnit(t, "straight", func(a *x86.Asm) {
			a.I(x86.PUSH, x86.RegOp(x86.RBP, 8))
			a.I(x86.MOV, x86.RegOp(x86.RBP, 8), x86.RegOp(x86.RSP, 8))
			a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.RegOp(x86.RDI, 8))
			a.I(x86.POP, x86.RegOp(x86.RBP, 8))
			a.I(x86.RET)
		}),
		buildUnit(t, "loop", func(a *x86.Asm) {
			a.I(x86.XOR, x86.RegOp(x86.RAX, 4), x86.RegOp(x86.RAX, 4))
			a.Label("loop")
			a.I(x86.ADD, x86.RegOp(x86.RAX, 8), x86.ImmOp(1, 1))
			a.I(x86.CMP, x86.RegOp(x86.RAX, 8), x86.ImmOp(10, 1))
			a.Jcc(x86.CondB, "loop")
			a.I(x86.RET)
		}),
		buildUnit(t, "spill", func(a *x86.Asm) {
			a.I(x86.SUB, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x18, 1))
			a.I(x86.MOV, x86.MemOp(x86.RSP, x86.RegNone, 1, 8, 8), x86.RegOp(x86.RDI, 8))
			a.I(x86.MOV, x86.RegOp(x86.RAX, 8), x86.MemOp(x86.RSP, x86.RegNone, 1, 8, 8))
			a.I(x86.ADD, x86.RegOp(x86.RSP, 8), x86.ImmOp(0x18, 1))
			a.I(x86.RET)
		}),
	}
}

// oracle checks every unit in-process, exactly as the worker does
// (serial, default config), giving the distributed runs their expected
// verdicts.
func oracle(units []Unit) []*triple.Report {
	out := make([]*triple.Report, len(units))
	for i, u := range units {
		out[i] = triple.Check(context.Background(), u.Img, u.Graph, sem.DefaultConfig())
	}
	return out
}

func TestShardRoundTrip(t *testing.T) {
	units := testUnits(t)
	s := &Shard{Cfg: sem.DefaultConfig(), Threads: 2, Units: units}
	buf, err := EncodeShard(s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeShard(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Threads != 2 {
		t.Fatalf("threads: %d", dec.Threads)
	}
	if dec.Cfg.MM != s.Cfg.MM || dec.Cfg.MaxTableEntries != s.Cfg.MaxTableEntries ||
		dec.Cfg.AssumeBaseSeparation != s.Cfg.AssumeBaseSeparation {
		t.Fatalf("config mismatch: %+v vs %+v", dec.Cfg, s.Cfg)
	}
	if len(dec.Units) != len(units) {
		t.Fatalf("units: %d", len(dec.Units))
	}
	for i, u := range dec.Units {
		if u.Name != units[i].Name {
			t.Fatalf("unit %d name %q", i, u.Name)
		}
		for id, v := range units[i].Graph.Vertices {
			lv := u.Graph.Vertices[id]
			if v.State == nil {
				continue
			}
			if lv == nil || lv.State == nil || lv.State.Pred.Key() != v.State.Pred.Key() {
				t.Fatalf("unit %d vertex %s predicate drift", i, id)
			}
		}
	}
	// serialize → deserialize → re-serialize is the byte identity.
	buf2, err := EncodeShard(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("shard re-serialization differs")
	}
}

func TestShardDecodeRejectsCorruption(t *testing.T) {
	units := testUnits(t)[:1]
	buf, err := EncodeShard(&Shard{Cfg: sem.DefaultConfig(), Threads: 1, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeShard(buf[:len(buf)/2]); err == nil {
		t.Fatal("truncated shard accepted")
	}
	if _, err := DecodeShard(append(append([]byte(nil), buf...), 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xff
	if _, err := DecodeShard(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestEncodeShardRequiresRawBytes(t *testing.T) {
	u := testUnits(t)[0]
	u.Img = image.FromFile(u.Img.File()) // strips the raw bytes
	if _, err := EncodeShard(&Shard{Cfg: sem.DefaultConfig(), Units: []Unit{u}}); err == nil {
		t.Fatal("unit without raw ELF accepted")
	}
	if _, err := Check(context.Background(), []Unit{u}, Options{Workers: 1}); err == nil {
		t.Fatal("Check without raw ELF accepted")
	}
}

func TestResultRoundTrip(t *testing.T) {
	units := testUnits(t)
	r := &Result{Queries: 42, Hits: 17, Reports: oracle(units)}
	dec, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, dec) {
		t.Fatalf("result drift:\n%+v\nvs\n%+v", r, dec)
	}
}

// TestDistMatchesOracle is the end-to-end determinism property: the
// merged verdicts of a multi-process run equal the single-process run's,
// report for report, theorem for theorem.
func TestDistMatchesOracle(t *testing.T) {
	units := testUnits(t)
	want := oracle(units)
	got, err := Check(context.Background(), units, Options{
		Workers: 2,
		Cfg:     sem.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("distributed verdicts differ from oracle:\n%+v\nvs\n%+v", want, got)
	}
}

// TestWorkerCrashRecovery injects one crash per shard attempt below the
// threshold: every worker dies once, every shard retries, and the merged
// verdicts still match the single-process oracle exactly.
func TestWorkerCrashRecovery(t *testing.T) {
	units := testUnits(t)
	want := oracle(units)
	ring := obs.NewRing(256)
	got, err := Check(context.Background(), units, Options{
		Workers: 2,
		Cfg:     sem.DefaultConfig(),
		Retry:   pipeline.RetryPolicy{MaxAttempts: 2},
		Tracer:  obs.NewTracer(ring),
		Env:     []string{fmt.Sprintf("%s=1", crashEnv)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("verdicts after crash recovery differ from oracle")
	}
	restarts := 0
	for _, e := range ring.Events() {
		if e.Kind == obs.KWorkerRestart {
			restarts++
		}
	}
	if restarts == 0 {
		t.Fatal("no worker restarts observed despite injected crashes")
	}
}

// TestWorkerQuarantine exhausts the retry budget: the run degrades to
// explicit Skipped verdicts instead of failing or claiming success.
func TestWorkerQuarantine(t *testing.T) {
	units := testUnits(t)
	ring := obs.NewRing(256)
	got, err := Check(context.Background(), units, Options{
		Workers: 2,
		Cfg:     sem.DefaultConfig(),
		Retry:   pipeline.RetryPolicy{MaxAttempts: 2},
		Tracer:  obs.NewTracer(ring),
		Env:     []string{fmt.Sprintf("%s=99", crashEnv)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range got {
		if rep.AllProven() {
			t.Fatalf("quarantined unit %d claims success", i)
		}
		if rep.Skipped != len(rep.Theorems) || rep.Skipped == 0 {
			t.Fatalf("unit %d: %d skipped of %d", i, rep.Skipped, len(rep.Theorems))
		}
		for _, th := range rep.Theorems {
			if !strings.Contains(th.Reason, "quarantined") {
				t.Fatalf("reason %q lacks quarantine context", th.Reason)
			}
		}
	}
	quarantines := 0
	for _, e := range ring.Events() {
		if e.Kind == obs.KQuarantine {
			quarantines++
		}
	}
	if quarantines == 0 {
		t.Fatal("no quarantine events observed")
	}
}

// TestRunWorkerInProcess drives the worker entry point directly (no
// subprocess): shard in, result out, verdicts equal to the oracle.
func TestRunWorkerInProcess(t *testing.T) {
	units := testUnits(t)
	buf, err := EncodeShard(&Shard{Cfg: sem.DefaultConfig(), Threads: 2, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := RunWorker(bytes.NewReader(buf), &out); err != nil {
		t.Fatal(err)
	}
	res, err := DecodeResult(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oracle(units), res.Reports) {
		t.Fatal("worker verdicts differ from oracle")
	}
	if res.Queries == 0 {
		t.Fatal("worker reported no solver queries")
	}
}

func TestCheckEmptyUnits(t *testing.T) {
	got, err := Check(context.Background(), nil, Options{Workers: 2})
	if err != nil || got != nil {
		t.Fatalf("empty check: %v, %v", got, err)
	}
}
