// Package dist distributes Step-2 verification across worker subprocesses.
// The paper's central scaling property — every vertex of the extracted
// Hoare graph is one mutually independent theorem — is exploited
// intra-process by package triple (a goroutine pool over the vertices of
// one graph); this package lifts the same independence one level up, to
// whole graphs fanned out across processes, the way distributed
// proof-checking frontends shard per-theorem work over machines.
//
// The coordinator (Check) partitions the work units into contiguous
// shards, serializes each shard into the compact binary container of
// wire.go — the ELF bytes of every referenced binary, one
// fingerprint-deduplicated interned-expression table shared by all of the
// shard's graphs, and the graph records themselves — and hands each shard
// to a worker subprocess on stdin. Workers are this same executable,
// re-executed with REPRO_HG_WORKER=1 (any binary that calls MaybeWorker
// first thing in main is a valid worker; hgprove also exposes the mode as
// the hidden -worker flag). A worker rebuilds the images and graphs,
// re-checks every vertex with package triple — batching all of the
// shard's solver queries through one solver.Cache, so memoized verdicts
// amortize across the shard's edges rather than being recomputed per
// graph — and writes the verdicts back on stdout.
//
// Verdict merging is deterministic: reports land in work-unit input
// order, and each report's theorems are in the graph's canonical vertex
// order, so the merged output is byte-identical to a single-process run
// over the same units — the coordinator adds distribution, never
// reordering. Worker crashes and timeouts reuse the pipeline's
// retry-then-quarantine semantics (pipeline.RetryPolicy): a failed shard
// is re-scheduled with backoff, and a shard that exhausts its budget
// degrades to explicit Skipped verdicts for every vertex it covered —
// like a cancelled triple.Check, a degraded run never silently claims
// success. Shard lifecycle, worker restarts, and per-shard solver cache
// hit rates are reported through internal/obs.
package dist

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"time"

	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sem"
	"repro/internal/triple"
)

// Unit is one work unit: re-verify one function's Hoare graph against the
// binary it was lifted from. Distribution re-loads the image inside the
// worker from its raw ELF bytes, so Img must have been built by
// image.Load (Img.Raw() non-nil).
type Unit struct {
	Name  string
	Img   *image.Image
	Graph *hoare.Graph
}

// Options tunes a distributed Check.
type Options struct {
	// Workers is the number of concurrently running worker subprocesses
	// (< 1 = 1).
	Workers int
	// ShardsPerWorker over-partitions the units into Workers×this many
	// shards (≤ 0 = 4) so a slow shard does not straggle a whole worker
	// slot: smaller shards load-balance better, larger ones amortize the
	// per-shard solver cache further.
	ShardsPerWorker int
	// Threads is the intra-worker vertex parallelism (triple.Workers)
	// each subprocess checks with (< 1 = 1).
	Threads int
	// Cfg is the semantic configuration workers check under. The
	// SolverCache and Tracer fields are not shipped: each worker installs
	// one fresh cache per shard (the query-batching this package exists
	// for), and tracing stays coordinator-side.
	Cfg sem.Config
	// Retry is the worker crash/timeout policy, with the pipeline's
	// retry-then-quarantine semantics: a shard whose worker exits
	// non-zero, times out, or returns an unparseable result is re-run up
	// to Retry.Attempts() times with Retry.Delay backoff, then
	// quarantined — every vertex it covered reports Skipped.
	Retry pipeline.RetryPolicy
	// Timeout bounds one shard attempt's wall clock (0 = none); on
	// expiry the worker subprocess is killed and the attempt counts as
	// failed.
	Timeout time.Duration
	// Tracer observes shard lifecycle (obs.KShardStart/KShardDone),
	// worker restarts (obs.KWorkerRestart), and quarantines.
	Tracer *obs.Tracer
	// Command builds the worker subprocess (a test hook). nil re-executes
	// this binary, relying on MaybeWorker at the top of its main.
	Command func(ctx context.Context) *exec.Cmd
	// Env appends extra environment variables to every worker (tests use
	// it for deterministic crash injection; see MaybeWorker).
	Env []string
}

// Check re-verifies every unit's graph across worker subprocesses and
// returns one report per unit, in input order, each identical to what a
// local triple.Check of that unit would produce. Quarantined shards
// yield all-Skipped reports rather than an error; only malformed input
// (a unit without raw ELF bytes) fails the whole call.
func Check(ctx context.Context, units []Unit, opts Options) ([]*triple.Report, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.ShardsPerWorker <= 0 {
		opts.ShardsPerWorker = 4
	}
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	for i := range units {
		if units[i].Graph == nil {
			return nil, fmt.Errorf("dist: unit %q has no graph", units[i].Name)
		}
		if units[i].Img == nil || units[i].Img.Raw() == nil {
			return nil, fmt.Errorf("dist: unit %q has no raw ELF bytes (image not built by image.Load)", units[i].Name)
		}
	}
	if len(units) == 0 {
		return nil, nil
	}

	nShards := opts.Workers * opts.ShardsPerWorker
	if nShards > len(units) {
		nShards = len(units)
	}
	reports := make([]*triple.Report, len(units))
	shardErr := make([]error, nShards)
	pipeline.ForEach(opts.Workers, nShards, func(s int) {
		lo := s * len(units) / nShards
		hi := (s + 1) * len(units) / nShards
		shardErr[s] = runShard(ctx, s, units[lo:hi], reports[lo:hi], opts)
	})
	for _, err := range shardErr {
		if err != nil {
			return nil, err
		}
	}
	// Re-emit one obs.KTheorem per merged verdict, as a local
	// triple.Check with the same tracer would have: the theorem event
	// stream (and the metrics aggregated from it) stays identical whether
	// Step 2 ran in-process or distributed.
	for _, rep := range reports {
		for i := range rep.Theorems {
			th := &rep.Theorems[i]
			opts.Tracer.Theorem(rep.Func, string(th.Vertex), th.Addr, th.Verdict.String())
		}
	}
	return reports, nil
}

// runShard serializes one shard, drives its worker through the retry
// policy, and writes the merged reports into out (parallel to units).
// Only encoding errors are returned; worker failures degrade to
// quarantine.
func runShard(ctx context.Context, s int, units []Unit, out []*triple.Report, opts Options) error {
	name := fmt.Sprintf("shard-%d", s)
	payload, err := EncodeShard(&Shard{Cfg: opts.Cfg, Threads: opts.Threads, Units: units})
	if err != nil {
		return fmt.Errorf("dist: %s: %w", name, err)
	}
	opts.Tracer.ShardStart(name, len(units))

	start := time.Now()
	attempts := opts.Retry.Attempts()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx.Err() != nil {
			lastErr = ctx.Err()
			break
		}
		if attempt > 0 {
			opts.Tracer.WorkerRestart(name, lastErr.Error(), attempt-1)
			select {
			case <-time.After(opts.Retry.Delay(attempt - 1)):
			case <-ctx.Done():
			}
		}
		res, err := runWorkerOnce(ctx, payload, attempt, opts)
		if err != nil {
			lastErr = err
			continue
		}
		if len(res.Reports) != len(units) {
			lastErr = fmt.Errorf("worker returned %d reports for %d units", len(res.Reports), len(units))
			continue
		}
		copy(out, res.Reports)
		opts.Tracer.ShardDone(name, "ok", res.Queries, res.Hits, time.Since(start))
		return nil
	}

	// Quarantine: every vertex the shard covered reports Skipped, so the
	// merged output is explicit about the gap (AllProven stays false).
	reason := fmt.Sprintf("not checked: shard quarantined after %d attempts: %v", attempts, lastErr)
	for i := range units {
		out[i] = skippedReport(units[i].Graph, reason)
	}
	opts.Tracer.Quarantine(name, "worker-failure", attempts)
	opts.Tracer.ShardDone(name, "quarantined", 0, 0, time.Since(start))
	return nil
}

// runWorkerOnce spawns one worker subprocess for one shard attempt.
func runWorkerOnce(ctx context.Context, payload []byte, attempt int, opts Options) (*Result, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	var cmd *exec.Cmd
	if opts.Command != nil {
		cmd = opts.Command(ctx)
	} else {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("locate worker executable: %w", err)
		}
		cmd = exec.CommandContext(ctx, exe)
	}
	cmd.Env = append(append(cmd.Environ(),
		workerEnv+"=1",
		fmt.Sprintf("%s=%d", attemptEnv, attempt)),
		opts.Env...)
	cmd.Stdin = bytes.NewReader(payload)
	cmd.Stderr = os.Stderr
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("worker timed out: %w", ctx.Err())
		}
		return nil, fmt.Errorf("worker: %w", err)
	}
	res, err := DecodeResult(stdout.Bytes())
	if err != nil {
		return nil, fmt.Errorf("worker result: %w", err)
	}
	return res, nil
}

// skippedReport builds the explicit degraded report of a quarantined
// shard: the same vertices, in the same canonical order, a local
// triple.Check would have covered, every one Skipped.
func skippedReport(g *hoare.Graph, reason string) *triple.Report {
	vertices := g.SortedVertices()
	rep := &triple.Report{Func: g.FuncName, Theorems: make([]triple.Theorem, len(vertices)),
		Skipped: len(vertices)}
	for i, v := range vertices {
		rep.Theorems[i] = triple.Theorem{Vertex: v.ID, Addr: v.Addr, Verdict: triple.Skipped, Reason: reason}
	}
	return rep
}
