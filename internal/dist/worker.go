// Worker side of the coordinator↔worker protocol: a shard container on
// stdin, a result container on stdout. Anything human-readable goes to
// stderr, keeping stdout a pure protocol stream.

package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/solver"
	"repro/internal/triple"
)

// The coordinator's worker environment. workerEnv selects worker mode in
// MaybeWorker; attemptEnv carries the shard attempt's 0-based index
// (diagnostics, and the crash-injection hook below).
const (
	workerEnv  = "REPRO_HG_WORKER"
	attemptEnv = "REPRO_HG_ATTEMPT"
	// crashEnv is a test hook for deterministic fault injection: when set
	// to n, a worker whose attempt index is < n exits with status 3
	// before reading its shard, so retry and quarantine paths are
	// exercised without real faults (the same philosophy as
	// internal/faultinject).
	crashEnv = "REPRO_HG_WORKER_CRASH_BELOW"
)

// MaybeWorker turns the current process into a shard worker when the
// coordinator's environment variable is set, never returning in that
// case. Every binary that may act as a worker (xenbench, hgprove, test
// binaries) calls it first thing in main — before flag parsing, so a
// worker re-exec never trips over the parent's command line.
func MaybeWorker() {
	if os.Getenv(workerEnv) != "1" {
		return
	}
	if n, err := strconv.Atoi(os.Getenv(crashEnv)); err == nil {
		attempt, _ := strconv.Atoi(os.Getenv(attemptEnv))
		if attempt < n {
			fmt.Fprintf(os.Stderr, "hg worker: injected crash (attempt %d < %d)\n", attempt, n)
			os.Exit(3)
		}
	}
	if err := RunWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hg worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunWorker executes one worker lifetime: decode the shard from r, check
// every unit, write the result container to w. All of the shard's checks
// share one solver cache — the per-shard query batching the coordinator
// shards for — whose totals are returned in the result. The cache is
// exact (verdicts are pure in the cache key), so batching never changes a
// verdict, only the time to reach it.
func RunWorker(r io.Reader, w io.Writer) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("read shard: %w", err)
	}
	s, err := DecodeShard(data)
	if err != nil {
		return fmt.Errorf("decode shard: %w", err)
	}
	cache := solver.NewCache()
	cfg := s.Cfg
	cfg.SolverCache = cache
	cfg.Tracer = nil

	res := &Result{Reports: make([]*triple.Report, len(s.Units))}
	for i := range s.Units {
		res.Reports[i] = triple.Check(context.Background(), s.Units[i].Img, s.Units[i].Graph,
			cfg, triple.Workers(s.Threads))
	}
	st := cache.Stats()
	res.Queries = st.Queries
	res.Hits = st.Hits
	if _, err := w.Write(EncodeResult(res)); err != nil {
		return fmt.Errorf("write result: %w", err)
	}
	return nil
}
