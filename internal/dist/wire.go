// This file defines the two containers of the coordinator↔worker
// protocol. Both are built on internal/wire and are deterministic
// byte-for-byte; ARCHITECTURE.md ("Distributed verification") is the
// normative description.
//
// Shard container (coordinator → worker stdin; integers are uvarints):
//
//	shard  = magic "HGSD" version
//	         threads
//	         cfg                             semantic configuration
//	         binary-count (elf-bytes)*       length-prefixed raw ELFs
//	         expr-table                      expr.AppendTable
//	         unit-count unit*
//	cfg    = fork-unknown assume-partial max-models max-table base-sep
//	unit   = name binary-index graph-record  hoare.AppendWire
//
// Binaries are deduplicated by image identity — units of the same binary
// reference one ELF blob — and the expression table is shared by every
// graph record in the shard, so subterms common across graphs (stack
// frames, globals) are emitted once, by fingerprint-backed pointer
// identity.
//
// Result container (worker stdout → coordinator):
//
//	result  = magic "HGRS" version
//	          queries hits                   shard solver-cache totals
//	          report-count report*
//	report  = func theorem-count theorem*
//	theorem = vertex addr verdict reason
//
// Per-verdict counts are not transmitted; the decoder recomputes them
// from the theorems, so the two can never disagree.

package dist

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/sem"
	"repro/internal/triple"
	"repro/internal/wire"
)

// Version is the protocol version stamped into (and required of) both
// containers; coordinator and worker are always the same executable, so a
// mismatch means stream corruption, not skew — but the check makes the
// failure crisp either way.
const Version = 1

const (
	shardMagic  = "HGSD"
	resultMagic = "HGRS"
)

// Shard is the decoded form of one shard container: the work units a
// worker checks, the semantic configuration to check them under, and the
// intra-worker vertex parallelism.
type Shard struct {
	Cfg     sem.Config // SolverCache and Tracer are never serialized
	Threads int
	Units   []Unit
}

// Result is the decoded form of one result container: per-unit reports in
// shard order plus the shard solver cache's totals (for the coordinator's
// obs.KShardDone metrics).
type Result struct {
	Queries uint64
	Hits    uint64
	Reports []*triple.Report
}

// EncodeShard serializes the shard. Every unit's image must carry its raw
// ELF bytes. Encoding is deterministic in the units, and decode followed
// by re-encode is the byte identity.
func EncodeShard(s *Shard) ([]byte, error) {
	buf := append([]byte(nil), shardMagic...)
	buf = wire.AppendUvarint(buf, Version)
	buf = wire.AppendUvarint(buf, uint64(s.Threads))
	buf = appendBool(buf, s.Cfg.MM.ForkUnknown)
	buf = appendBool(buf, s.Cfg.MM.AssumePartialImpossible)
	buf = wire.AppendUvarint(buf, uint64(s.Cfg.MM.MaxModels))
	buf = wire.AppendUvarint(buf, uint64(s.Cfg.MaxTableEntries))
	buf = appendBool(buf, s.Cfg.AssumeBaseSeparation)

	// Binaries, deduplicated by image identity in first-seen unit order.
	binIdx := map[*image.Image]uint64{}
	var bins [][]byte
	for i := range s.Units {
		img := s.Units[i].Img
		if _, ok := binIdx[img]; ok {
			continue
		}
		raw := img.Raw()
		if raw == nil {
			return nil, fmt.Errorf("unit %q: image has no raw ELF bytes", s.Units[i].Name)
		}
		binIdx[img] = uint64(len(bins))
		bins = append(bins, raw)
	}
	buf = wire.AppendUvarint(buf, uint64(len(bins)))
	for _, b := range bins {
		buf = wire.AppendBytes(buf, b)
	}

	t := expr.NewTable()
	for i := range s.Units {
		hoare.CollectWireExprs(t, s.Units[i].Graph)
	}
	buf = expr.AppendTable(buf, t)

	buf = wire.AppendUvarint(buf, uint64(len(s.Units)))
	for i := range s.Units {
		buf = wire.AppendString(buf, s.Units[i].Name)
		buf = wire.AppendUvarint(buf, binIdx[s.Units[i].Img])
		buf = hoare.AppendWire(buf, t, s.Units[i].Graph)
	}
	return buf, nil
}

// DecodeShard parses one shard container, re-loading every binary and
// rebuilding every graph (with interned, pointer-canonical expressions).
func DecodeShard(data []byte) (*Shard, error) {
	d := wire.NewDecoder(data)
	if string(d.Bytes(uint64(len(shardMagic)), "shard magic")) != shardMagic {
		d.Failf("bad shard magic")
	}
	if v := d.Uvarint("shard version"); d.Err() == nil && v != Version {
		d.Failf("shard version %d, want %d", v, Version)
	}
	s := &Shard{}
	s.Threads = int(d.Uvarint("threads"))
	s.Cfg.MM.ForkUnknown = decodeBool(d, "fork-unknown")
	s.Cfg.MM.AssumePartialImpossible = decodeBool(d, "assume-partial")
	s.Cfg.MM.MaxModels = int(d.Uvarint("max-models"))
	s.Cfg.MaxTableEntries = int(d.Uvarint("max-table"))
	s.Cfg.AssumeBaseSeparation = decodeBool(d, "base-separation")
	if err := d.Err(); err != nil {
		return nil, err
	}

	nBins := d.Len("binary")
	imgs := make([]*image.Image, 0, nBins)
	for i := 0; i < nBins && d.Err() == nil; i++ {
		raw := d.ByteSlice("binary")
		if d.Err() != nil {
			break
		}
		img, err := image.Load(raw)
		if err != nil {
			d.Failf("binary %d: %v", i, err)
			break
		}
		imgs = append(imgs, img)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}

	nodes, err := expr.DecodeTable(d)
	if err != nil {
		return nil, err
	}

	nUnits := d.Len("unit")
	s.Units = make([]Unit, 0, nUnits)
	for i := 0; i < nUnits && d.Err() == nil; i++ {
		name := d.String("unit name")
		bi := d.Uvarint("unit binary index")
		if d.Err() != nil {
			break
		}
		if bi >= uint64(len(imgs)) {
			d.Failf("unit %q: binary index %d out of range", name, bi)
			break
		}
		g, err := hoare.DecodeWire(d, nodes, imgs[bi])
		if err != nil {
			return nil, err
		}
		s.Units = append(s.Units, Unit{Name: name, Img: imgs[bi], Graph: g})
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if rest := d.Rest(); len(rest) != 0 {
		d.Failf("%d trailing bytes after shard", len(rest))
		return nil, d.Err()
	}
	return s, nil
}

// EncodeResult serializes a worker's verdicts.
func EncodeResult(r *Result) []byte {
	buf := append([]byte(nil), resultMagic...)
	buf = wire.AppendUvarint(buf, Version)
	buf = wire.AppendUvarint(buf, r.Queries)
	buf = wire.AppendUvarint(buf, r.Hits)
	buf = wire.AppendUvarint(buf, uint64(len(r.Reports)))
	for _, rep := range r.Reports {
		buf = wire.AppendString(buf, rep.Func)
		buf = wire.AppendUvarint(buf, uint64(len(rep.Theorems)))
		for _, th := range rep.Theorems {
			buf = wire.AppendString(buf, string(th.Vertex))
			buf = wire.AppendUvarint(buf, th.Addr)
			buf = append(buf, byte(th.Verdict))
			buf = wire.AppendString(buf, th.Reason)
		}
	}
	return buf
}

// DecodeResult parses one result container, recomputing each report's
// per-verdict counts from its theorems.
func DecodeResult(data []byte) (*Result, error) {
	d := wire.NewDecoder(data)
	if string(d.Bytes(uint64(len(resultMagic)), "result magic")) != resultMagic {
		d.Failf("bad result magic")
	}
	if v := d.Uvarint("result version"); d.Err() == nil && v != Version {
		d.Failf("result version %d, want %d", v, Version)
	}
	r := &Result{}
	r.Queries = d.Uvarint("solver queries")
	r.Hits = d.Uvarint("solver hits")
	nReports := d.Len("report")
	for i := 0; i < nReports && d.Err() == nil; i++ {
		rep := &triple.Report{Func: d.String("report func")}
		nThs := d.Len("theorem")
		for j := 0; j < nThs && d.Err() == nil; j++ {
			th := triple.Theorem{
				Vertex: hoare.VertexID(d.String("theorem vertex")),
				Addr:   d.Uvarint("theorem addr"),
			}
			verdict := d.Byte("theorem verdict")
			th.Reason = d.String("theorem reason")
			if d.Err() != nil {
				break
			}
			if verdict > byte(triple.Skipped) {
				d.Failf("theorem verdict %d out of range", verdict)
				break
			}
			th.Verdict = triple.Verdict(verdict)
			rep.Theorems = append(rep.Theorems, th)
			switch th.Verdict {
			case triple.Proven:
				rep.Proven++
			case triple.Assumed:
				rep.Assumed++
			case triple.Skipped:
				rep.Skipped++
			default:
				rep.Failed++
			}
		}
		if d.Err() == nil {
			r.Reports = append(r.Reports, rep)
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if rest := d.Rest(); len(rest) != 0 {
		d.Failf("%d trailing bytes after result", len(rest))
		return nil, d.Err()
	}
	return r, nil
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func decodeBool(d *wire.Decoder, what string) bool {
	switch d.Byte(what) {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Failf("bad %s flag", what)
		return false
	}
}
