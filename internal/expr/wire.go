package expr

// Compact binary serialization of the interned-expression DAG. The text
// formats (Key, the .hg grammar) re-render every occurrence of a shared
// subterm; at corpus scale that dominates export size, because compiler-
// generated address arithmetic reuses a handful of symbolic bases
// everywhere. The wire form instead serialises a Table: a deduplicated,
// topologically-ordered list of nodes in which every interned node appears
// exactly once — children strictly before parents — and consumers
// reference nodes by dense index. Dedup keys on interned pointer identity,
// which by the hash-consing invariant coincides with structural
// (fingerprint) identity: shared subterms are emitted once.
//
// Table wire format (integers are uvarints unless noted):
//
//	table = node-count node* checksum
//	node  = 0x00 word-value                  KindWord
//	      | 0x01 name-len name-bytes         KindVar
//	      | 0x02 size child-index            KindDeref
//	      | 0x03 op argc child-index*        KindOp
//
// checksum is 8 raw little-endian bytes: the MixFP-fold of every node's
// structural fingerprint in index order. The decoder recomputes the fold
// over the nodes it rebuilt and rejects a mismatch, so truncation, bit
// corruption, or a table whose nodes do not canonicalise to themselves
// cannot silently produce a wrong (but well-formed) DAG.
//
// Decoding rebuilds each node bottom-up through the same smart
// constructors the lifter uses (Word, V, Deref, App). Serialised nodes
// came out of those constructors, so they are fixed points of them, and
// the decoder therefore restores interned pointer identity: decoding a
// table in a process that already holds the expressions yields
// pointer-equal nodes, and Append∘Decode∘Append is the byte identity.

import (
	"repro/internal/wire"
)

// Table assigns dense indices to a set of interned expressions, children
// before parents, each node exactly once. The zero value is not ready;
// use NewTable.
type Table struct {
	idx   map[*Expr]uint32
	nodes []*Expr
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{idx: map[*Expr]uint32{}}
}

// Add inserts e and (recursively) its subterms, returning e's index.
// Adding an already-present node is a map probe, no allocation.
func (t *Table) Add(e *Expr) uint32 {
	if i, ok := t.idx[e]; ok {
		return i
	}
	for _, a := range e.args {
		t.Add(a)
	}
	i := uint32(len(t.nodes))
	t.idx[e] = i
	t.nodes = append(t.nodes, e)
	return i
}

// Index returns the index previously assigned to e by Add. It panics on a
// node that was never added: encoders collect before they emit, so a miss
// is a bug, not an input error.
func (t *Table) Index(e *Expr) uint32 {
	i, ok := t.idx[e]
	if !ok {
		panic("expr: Table.Index: expression was never added")
	}
	return i
}

// Len returns the number of nodes in the table.
func (t *Table) Len() int { return len(t.nodes) }

// The node tags of the wire format.
const (
	tagWord  = 0x00
	tagVar   = 0x01
	tagDeref = 0x02
	tagOp    = 0x03
)

// AppendTable appends the wire encoding of the table to buf.
func AppendTable(buf []byte, t *Table) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(t.nodes)))
	sum := uint64(0)
	for _, e := range t.nodes {
		sum = MixFP(sum, e.fp)
		switch e.kind {
		case KindWord:
			buf = append(buf, tagWord)
			buf = wire.AppendUvarint(buf, e.word)
		case KindVar:
			buf = append(buf, tagVar)
			buf = wire.AppendString(buf, string(e.v))
		case KindDeref:
			buf = append(buf, tagDeref)
			buf = wire.AppendUvarint(buf, uint64(e.size))
			buf = wire.AppendUvarint(buf, uint64(t.Index(e.args[0])))
		case KindOp:
			buf = append(buf, tagOp)
			buf = wire.AppendUvarint(buf, uint64(e.op))
			buf = wire.AppendUvarint(buf, uint64(len(e.args)))
			for _, a := range e.args {
				buf = wire.AppendUvarint(buf, uint64(t.Index(a)))
			}
		}
	}
	return wire.AppendUint64(buf, sum)
}

// DecodeTable decodes one table from the cursor, returning the rebuilt
// (pointer-canonical) nodes in index order.
func DecodeTable(d *wire.Decoder) ([]*Expr, error) {
	n := d.Len("expression node")
	nodes := make([]*Expr, 0, n)
	child := func(what string) *Expr {
		i := d.Uvarint(what)
		if d.Err() != nil {
			return nil
		}
		if i >= uint64(len(nodes)) {
			d.Failf("%s index %d out of range (have %d nodes)", what, i, len(nodes))
			return nil
		}
		return nodes[i]
	}
	for len(nodes) < n && d.Err() == nil {
		switch tag := d.Byte("node tag"); tag {
		case tagWord:
			w := d.Uvarint("word value")
			if d.Err() == nil {
				nodes = append(nodes, Word(w))
			}
		case tagVar:
			name := d.String("var name")
			if d.Err() == nil {
				nodes = append(nodes, V(Var(name)))
			}
		case tagDeref:
			size := d.Uvarint("deref size")
			addr := child("deref child")
			if d.Err() == nil {
				if size == 0 || size > 8 {
					d.Failf("deref size %d out of range", size)
					break
				}
				nodes = append(nodes, Deref(addr, int(size)))
			}
		case tagOp:
			op := Op(d.Uvarint("op"))
			argc := d.Uvarint("op arity")
			if d.Err() != nil {
				break
			}
			if _, ok := opNames[op]; !ok {
				d.Failf("unknown operator %d", op)
				break
			}
			if min, max := opArity(op); argc < uint64(min) || (max >= 0 && argc > uint64(max)) {
				d.Failf("operator %s applied to %d arguments", op, argc)
				break
			}
			args := make([]*Expr, 0, argc)
			for j := uint64(0); j < argc && d.Err() == nil; j++ {
				args = append(args, child("op child"))
			}
			if d.Err() == nil {
				nodes = append(nodes, App(op, args...))
			}
		default:
			d.Failf("unknown node tag %#x", tag)
		}
	}
	want := d.Uint64("table checksum")
	if err := d.Err(); err != nil {
		return nil, err
	}
	sum := uint64(0)
	for _, e := range nodes {
		sum = MixFP(sum, e.fp)
	}
	if want != sum {
		d.Failf("table checksum mismatch (corrupt or non-canonical table)")
		return nil, d.Err()
	}
	return nodes, nil
}
