package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads an expression in the canonical Key() syntax:
//
//	0x1f               word
//	rdi0               variable
//	add(rdi0,0x8)      operator application
//	*[rsp0,8]          region read
//
// Parsing re-applies the smart constructors, so Parse(e.Key()).Key() ==
// e.Key(): the serialised form round-trips.
func Parse(s string) (*Expr, error) {
	p := &parser{s: s}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("expr: trailing input %q", p.s[p.pos:])
	}
	return e, nil
}

type parser struct {
	s   string
	pos int
}

func (p *parser) fail(format string, args ...any) error {
	return fmt.Errorf("expr: %s at offset %d of %q", fmt.Sprintf(format, args...), p.pos, p.s)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.s) {
		return p.s[p.pos]
	}
	return 0
}

func (p *parser) eat(c byte) error {
	if p.peek() != c {
		return p.fail("expected %q", string(c))
	}
	p.pos++
	return nil
}

// opByName resolves operator mnemonics.
var opByName = func() map[string]Op {
	m := map[string]Op{}
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func (p *parser) expr() (*Expr, error) {
	p.skipSpace()
	switch {
	case p.peek() == '*':
		p.pos++
		if err := p.eat('['); err != nil {
			return nil, err
		}
		addr, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.eat(','); err != nil {
			return nil, err
		}
		start := p.pos
		for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
			p.pos++
		}
		size, err := strconv.Atoi(p.s[start:p.pos])
		if err != nil {
			return nil, p.fail("bad region size")
		}
		if err := p.eat(']'); err != nil {
			return nil, err
		}
		return Deref(addr, size), nil

	case strings.HasPrefix(p.s[p.pos:], "0x"):
		start := p.pos + 2
		end := start
		for end < len(p.s) && isHex(p.s[end]) {
			end++
		}
		w, err := strconv.ParseUint(p.s[start:end], 16, 64)
		if err != nil {
			return nil, p.fail("bad word: %v", err)
		}
		p.pos = end
		return Word(w), nil

	case isIdent(p.peek()):
		start := p.pos
		for p.pos < len(p.s) && isIdent(p.s[p.pos]) {
			p.pos++
		}
		name := p.s[start:p.pos]
		if p.peek() != '(' {
			return V(Var(name)), nil
		}
		op, ok := opByName[name]
		if !ok {
			return nil, p.fail("unknown operator %q", name)
		}
		p.pos++ // (
		var args []*Expr
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.eat(')'); err != nil {
			return nil, err
		}
		if min, max := opArity(op); len(args) < min || (max >= 0 && len(args) > max) {
			return nil, p.fail("operator %q applied to %d arguments", name, len(args))
		}
		return App(op, args...), nil
	}
	return nil, p.fail("unexpected input")
}

// opArity gives the argument counts the canonical syntax allows per
// operator (max -1 = unbounded). App assumes these hold; inputs from
// outside must be checked here before reaching it.
func opArity(op Op) (min, max int) {
	switch op {
	case OpAdd, OpMul:
		return 1, -1
	case OpNot, OpNeg, OpSExt8, OpSExt16, OpSExt32:
		return 1, 1
	default:
		return 2, 2
	}
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
}
