package expr

import (
	"testing"
	"testing/quick"
)

func TestWordFolding(t *testing.T) {
	cases := []struct {
		name string
		got  *Expr
		want uint64
	}{
		{"add", Add(Word(3), Word(4)), 7},
		{"add-wrap", Add(Word(^uint64(0)), Word(1)), 0},
		{"sub", Sub(Word(10), Word(3)), 7},
		{"sub-wrap", Sub(Word(0), Word(1)), ^uint64(0)},
		{"mul", Mul(Word(6), Word(7)), 42},
		{"neg", Neg(Word(5)), ^uint64(0) - 4},
		{"and", And(Word(0xff0), Word(0x0ff)), 0x0f0},
		{"or", Or(Word(0xf00), Word(0x00f)), 0xf0f},
		{"xor", Xor(Word(0xff), Word(0x0f)), 0xf0},
		{"not", Not(Word(0)), ^uint64(0)},
		{"shl", Shl(Word(1), Word(12)), 1 << 12},
		{"shr", Shr(Word(1<<12), Word(12)), 1},
		{"sar-neg", Sar(Word(^uint64(0)), Word(63)), ^uint64(0)},
		{"udiv", UDiv(Word(100), Word(7)), 14},
		{"urem", URem(Word(100), Word(7)), 2},
		{"sdiv", SDiv(Word(^uint64(99)), Word(7)), ^uint64(13)},
		{"srem", SRem(Word(^uint64(99)), Word(7)), ^uint64(1)},
		{"sext8", SExt(Word(0x80), 1), (^uint64(0) - 127)},
		{"sext16", SExt(Word(0x8000), 2), (^uint64(0) - 32767)},
		{"sext32", SExt(Word(0x80000000), 4), (^uint64(0) - (1 << 31) + 1)},
		{"zext1", ZExt(Word(0x1234), 1), 0x34},
		{"rol", Rol(Word(0x8000000000000001), Word(1)), 3},
		{"ror", Ror(Word(3), Word(1)), 0x8000000000000001},
	}
	for _, c := range cases {
		w, ok := c.got.AsWord()
		if !ok || w != c.want {
			t.Errorf("%s: got %v, want 0x%x", c.name, c.got, c.want)
		}
	}
}

func TestSumNormalisation(t *testing.T) {
	x, y := V("x"), V("y")
	// x + y + 3 == y + 3 + x (canonical keys equal).
	a := Add(x, y, Word(3))
	b := Add(y, Word(3), x)
	if !a.Equal(b) {
		t.Fatalf("sum not canonical: %v vs %v", a, b)
	}
	// x + x == 2·x.
	if got := Add(x, x); got.Key() != Mul(Word(2), x).Key() {
		t.Fatalf("x+x = %v", got)
	}
	// x - x == 0.
	if !Sub(x, x).IsWord(0) {
		t.Fatalf("x-x = %v", Sub(x, x))
	}
	// (x + 5) - (x + 3) == 2.
	if d := Sub(Add(x, Word(5)), Add(x, Word(3))); !d.IsWord(2) {
		t.Fatalf("offset diff = %v", d)
	}
	// 4·x via shl: x << 2 is linear.
	if got := Shl(x, Word(2)); got.Key() != Mul(Word(4), x).Key() {
		t.Fatalf("x<<2 = %v", got)
	}
	// 2·x + 2·x == 4·x.
	if got := Add(Mul(Word(2), x), Mul(Word(2), x)); got.Key() != Mul(Word(4), x).Key() {
		t.Fatalf("2x+2x = %v", got)
	}
}

func TestNestedLinear(t *testing.T) {
	rsp := V("rsp0")
	// (rsp0 - 8) - 16 + 24 == rsp0.
	e := Add(Sub(Sub(rsp, Word(8)), Word(16)), Word(24))
	if !e.Equal(rsp) {
		t.Fatalf("got %v", e)
	}
	// 3·(rsp0 + 2) == 3·rsp0 + 6.
	e = Mul(Word(3), Add(rsp, Word(2)))
	l := ToLinear(e)
	if l.K != 6 || l.Coeff(rsp) != 3 {
		t.Fatalf("linear of %v: K=%d coeff=%d", e, l.K, l.Coeff(rsp))
	}
}

func TestBooleanIdentities(t *testing.T) {
	x := V("x")
	if !And(x, Word(0)).IsWord(0) {
		t.Error("x & 0")
	}
	if got := And(x, Word(^uint64(0))); !got.Equal(x) {
		t.Error("x & ~0")
	}
	if got := Or(x, Word(0)); !got.Equal(x) {
		t.Error("x | 0")
	}
	if !Xor(x, x).IsWord(0) {
		t.Error("x ^ x")
	}
	if got := Not(Not(x)); !got.Equal(x) {
		t.Error("~~x")
	}
	if got := And(x, x); !got.Equal(x) {
		t.Error("x & x")
	}
	// Re-masking is idempotent: (x & 0xff) & 0xffff == x & 0xff.
	m := And(x, Word(Mask8))
	if got := And(m, Word(Mask16)); !got.Equal(m) {
		t.Errorf("remask: %v", got)
	}
}

func TestDerefKeys(t *testing.T) {
	a := Deref(Add(V("rsp0"), Word(8)), 8)
	b := Deref(Add(Word(8), V("rsp0")), 8)
	if a.Key() != b.Key() {
		t.Fatalf("deref keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := Deref(Add(V("rsp0"), Word(8)), 4)
	if a.Key() == c.Key() {
		t.Fatal("size must distinguish regions")
	}
	if a.IsConstExpr() {
		t.Fatal("deref is not a constant expression")
	}
	if !Add(V("rdi0"), Word(8)).IsConstExpr() {
		t.Fatal("rdi0+8 is a constant expression")
	}
}

func TestSubst(t *testing.T) {
	x, y := Var("x"), V("y")
	e := Add(Mul(Word(4), V(x)), Word(10))
	got := Subst(e, x, y)
	want := Add(Mul(Word(4), y), Word(10))
	if !got.Equal(want) {
		t.Fatalf("subst: %v", got)
	}
	// Substituting a constant folds.
	got = Subst(e, x, Word(2))
	if !got.IsWord(18) {
		t.Fatalf("subst const: %v", got)
	}
	// Inside a deref.
	d := Deref(V(x), 8)
	if got := Subst(d, x, Word(0x600000)); got.Key() != Deref(Word(0x600000), 8).Key() {
		t.Fatalf("subst deref: %v", got)
	}
}

func TestVars(t *testing.T) {
	e := Add(V("a"), Deref(Add(V("b"), Word(4)), 8))
	vs := e.Vars(nil)
	if len(vs) != 2 {
		t.Fatalf("vars: %v", vs)
	}
	if !e.ContainsVar("b") || e.ContainsVar("c") {
		t.Fatal("ContainsVar")
	}
	if !e.ContainsDeref() {
		t.Fatal("ContainsDeref")
	}
}

// Property: Add is a homomorphism from machine addition on constants.
func TestQuickAddHomomorphism(t *testing.T) {
	f := func(a, b uint64) bool {
		w, ok := Add(Word(a), Word(b)).AsWord()
		return ok && w == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for any constants, Sub(Add(x,a),Add(x,b)) folds to a-b
// regardless of the shared symbolic base.
func TestQuickBaseCancellation(t *testing.T) {
	x := V("base")
	f := func(a, b uint64) bool {
		d := Sub(Add(x, Word(a)), Add(x, Word(b)))
		w, ok := d.AsWord()
		return ok && w == a-b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: linear round-trip — ToLinear(e).Expr() has the same key as e for
// canonically built sums.
func TestQuickLinearRoundTrip(t *testing.T) {
	x, y := V("x"), V("y")
	f := func(cx, cy uint8, k uint64) bool {
		e := Add(Mul(Word(uint64(cx)), x), Mul(Word(uint64(cy)), y), Word(k))
		return ToLinear(e).Expr().Equal(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shifts by constant amounts agree with machine shifts.
func TestQuickShifts(t *testing.T) {
	f := func(a uint64, k uint8) bool {
		k %= 64
		shl, ok1 := Shl(Word(a), Word(uint64(k))).AsWord()
		shr, ok2 := Shr(Word(a), Word(uint64(k))).AsWord()
		sar, ok3 := Sar(Word(a), Word(uint64(k))).AsWord()
		return ok1 && ok2 && ok3 &&
			shl == a<<k && shr == a>>k && sar == uint64(int64(a)>>k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyStability(t *testing.T) {
	e := Add(V("rdi0"), Word(16))
	k1 := e.Key()
	k2 := e.Key()
	if k1 != k2 || k1 == "" {
		t.Fatal("key caching broken")
	}
	if e.String() != "rdi0 + 0x10" {
		t.Fatalf("pretty rendering: %q", e.String())
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpSExt32.String() != "sext32" {
		t.Fatal("op names")
	}
	if Op(200).String() == "" {
		t.Fatal("unknown op name")
	}
}

func TestPrettyPrinting(t *testing.T) {
	rsp := V("rsp0")
	cases := []struct {
		e    *Expr
		want string
	}{
		{Sub(rsp, Word(0x28)), "rsp0 - 0x28"},
		{Add(rsp, Word(8)), "rsp0 + 0x8"},
		{Add(Mul(Word(8), V("i")), rsp, Word(0xffffffffffffffc0)), "0x8*i + rsp0 - 0x40"},
		{Deref(Sub(rsp, Word(8)), 8), "*[rsp0 - 0x8,8]"},
		{Neg(V("x")), "0xffffffffffffffff*x"},
		{UDiv(V("a"), Word(4)), "udiv(a, 0x4)"},
		{Mul(Word(3), Add(V("a"), Word(1))), "0x3*a + 0x3"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("pretty %s: got %q want %q", c.e.Key(), got, c.want)
		}
	}
}

func TestParseLocal(t *testing.T) {
	for _, k := range []string{
		"0x2a", "rsp0", "add(rdi0,0x8)", "*[rsp0,8]",
		"mul(0x8,j401064_rcx)", "sar(sext32(and(rax0,0xffffffff)),0x3f)",
	} {
		e, err := Parse(k)
		if err != nil {
			t.Fatalf("parse %q: %v", k, err)
		}
		if e.Key() != k {
			t.Fatalf("round trip %q → %q", k, e.Key())
		}
	}
	if _, err := Parse("nope("); err == nil {
		t.Fatal("unterminated call must fail")
	}
	if _, err := Parse("0xzz"); err == nil {
		t.Fatal("bad hex must fail")
	}
}

// Property: Parse inverts Key on randomly built expressions.
func TestQuickParseRoundTrip(t *testing.T) {
	f := func(a, b uint64, pick uint8) bool {
		var e *Expr
		switch pick % 5 {
		case 0:
			e = Add(V("x"), Word(a))
		case 1:
			e = Mul(Word(a|1), V("y"))
		case 2:
			e = Deref(Add(V("rsp0"), Word(b)), 8)
		case 3:
			e = And(V("z"), Word(a))
		default:
			e = SExt(V("w"), 4)
		}
		got, err := Parse(e.Key())
		return err == nil && got.Key() == e.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
