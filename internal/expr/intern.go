package expr

// Hash-consing. Every expression is interned: the constructors route
// through a process-global table keyed by a 64-bit structural fingerprint,
// so structurally equal expressions are pointer-identical and equality,
// map keys and cache keys reduce to integer (pointer) compares. Because
// arguments are interned before the node that holds them, the table only
// ever compares one level deep: two candidate nodes are the same term iff
// their scalar fields match and their argument pointers match.
//
// The table is append-only and never invalidated: expressions are
// immutable, so a canonical node stays valid for the life of the process,
// and eviction would break the pointer-identity invariant that the rest of
// the lifter now relies on (pointer-keyed maps in pred, fingerprint memo
// keys in solver). The corpus working set — compiler-generated address
// arithmetic over a handful of symbolic bases — is small and heavily
// repeated, which is what makes hash-consing pay in the first place.
//
// Sharding: the table is split into 64 shards selected by the low bits of
// the fingerprint, each guarded by its own mutex, so concurrent lift
// workers (the tier-1 -race pass runs the pipeline at 4+ workers) rarely
// contend. Per-shard hit/miss counters feed the intern.* gauges of the
// obs metrics dump.

import (
	"os"
	"sync"
)

const numShards = 64

type internShard struct {
	mu      sync.Mutex
	buckets map[uint64][]*Expr
	hits    uint64
	misses  uint64
}

var shards [numShards]internShard

// smallWords short-circuits the table for the constants the semantics
// layer builds constantly (0, 1, 8, masks' low bytes, small offsets).
var smallWords [256]*Expr

func init() {
	for i := range shards {
		shards[i].buckets = map[uint64][]*Expr{}
	}
	for i := range smallWords {
		smallWords[i] = intern(KindWord, uint64(i), "", 0, 0, nil, fpWord(uint64(i)))
	}
}

// debugEqual enables the structural cross-check in Equal: interning makes
// structural equality coincide with pointer identity, and under
// EXPRDEBUG=1 every Equal verifies that invariant and panics on mismatch.
var debugEqual = os.Getenv("EXPRDEBUG") != ""

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on 64-bit
// words. Raw FNV-style folding correlates structured inputs (constant
// offsets differing in one byte); the finalizer de-correlates them.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MixFP combines a running fingerprint with another 64-bit quantity. It is
// exported for fingerprint-derived cache keys outside this package (the
// solver's memo key mixes region fingerprints with sizes).
func MixFP(h, x uint64) uint64 { return mix64(h ^ mix64(x)) }

// Per-kind fingerprint seeds: arbitrary odd constants, distinct so that
// e.g. Word(0) and V("") cannot collide structurally.
const (
	seedWord  = 0xa0761d6478bd642f
	seedVar   = 0xe7037ed1a0b428db
	seedDeref = 0x8ebc6af09c88c6e3
	seedOp    = 0x589965cc75374cc3
)

func fpWord(w uint64) uint64 { return MixFP(seedWord, w) }

func fpVar(name Var) uint64 {
	// FNV-1a over the name bytes, then avalanche through the finalizer.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return MixFP(seedVar, h)
}

func fpDeref(size uint8, addrFP uint64) uint64 {
	return MixFP(MixFP(seedDeref, uint64(size)), addrFP)
}

func fpOp(op Op, args []*Expr) uint64 {
	h := MixFP(seedOp, uint64(op))
	for _, a := range args {
		h = MixFP(h, a.fp)
	}
	return h
}

// shallowEq reports whether the interned node e is the term described by
// the constructor arguments. Argument expressions are already interned, so
// one level of pointer compares decides deep structural equality.
func (e *Expr) shallowEq(kind Kind, word uint64, v Var, op Op, size uint8, args []*Expr) bool {
	if e.kind != kind || e.word != word || e.v != v || e.op != op ||
		e.size != size || len(e.args) != len(args) {
		return false
	}
	for i, a := range args {
		if e.args[i] != a {
			return false
		}
	}
	return true
}

// intern returns the canonical node for the described term, allocating it
// on first sight. Fingerprint collisions are resolved by the per-bucket
// list: shallowEq decides exactly, so a collision costs a few pointer
// compares, never a wrong node.
func intern(kind Kind, word uint64, v Var, op Op, size uint8, args []*Expr, fp uint64) *Expr {
	s := &shards[fp&(numShards-1)]
	s.mu.Lock()
	for _, e := range s.buckets[fp] {
		if e.shallowEq(kind, word, v, op, size, args) {
			s.hits++
			s.mu.Unlock()
			return e
		}
	}
	s.misses++
	if len(args) > 0 {
		// Defensive copy: the node is immortal, the caller's slice is not
		// necessarily private. Only paid on first interning.
		args = append([]*Expr(nil), args...)
	}
	e := &Expr{kind: kind, word: word, v: v, op: op, size: size, args: args, fp: fp}
	s.buckets[fp] = append(s.buckets[fp], e)
	s.mu.Unlock()
	return e
}

// InternStats is a snapshot of the process-global intern table.
type InternStats struct {
	Hits    uint64 // constructor calls answered by an existing node
	Misses  uint64 // constructor calls that allocated a new node
	Entries uint64 // live interned nodes (the table never evicts)
}

// TableStats sums the per-shard counters. Entries equals Misses by
// construction (append-only table).
func TableStats() InternStats {
	var st InternStats
	for i := range shards {
		s := &shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		s.mu.Unlock()
	}
	st.Entries = st.Misses
	return st
}

// structuralEq is the pre-interning equality: a full recursive walk. It
// survives as the debug-mode cross-check (EXPRDEBUG=1) and as the oracle
// of FuzzInternCanonical.
func structuralEq(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.kind != b.kind || a.word != b.word || a.v != b.v || a.op != b.op ||
		a.size != b.size || len(a.args) != len(b.args) {
		return false
	}
	for i := range a.args {
		if !structuralEq(a.args[i], b.args[i]) {
			return false
		}
	}
	return true
}
