package expr

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// wireSamples builds a DAG with heavy sharing: compiler-style address
// arithmetic where a handful of symbolic bases recur everywhere.
func wireSamples() []*Expr {
	rsp := V("rsp0")
	rdi := V("rdi0")
	frame := App(OpAdd, rsp, Word(0xffffffffffffffc0))
	idx := App(OpMul, Word(8), V("j401064_rcx"))
	slot := App(OpAdd, frame, idx)
	return []*Expr{
		rsp, rdi, frame, idx, slot,
		Deref(slot, 8),
		Deref(frame, 4),
		App(OpAnd, rdi, Word(0xffffffff)),
		App(OpSExt32, App(OpAnd, rdi, Word(0xffffffff))),
		Word(0),
		Word(1 << 62),
	}
}

func TestTableDedupsSharedSubterms(t *testing.T) {
	exprs := wireSamples()
	tab := NewTable()
	for _, e := range exprs {
		tab.Add(e)
	}
	// rsp0, the frame sum, and the and() node each appear under several
	// parents; dedup keeps the table strictly smaller than the sum of the
	// trees' sizes.
	total := 0
	var count func(e *Expr) int
	count = func(e *Expr) int {
		n := 1
		for _, a := range e.args {
			n += count(a)
		}
		return n
	}
	for _, e := range exprs {
		total += count(e)
	}
	if tab.Len() >= total {
		t.Fatalf("no dedup: table %d nodes, naive %d", tab.Len(), total)
	}
	// Children precede parents: every argument index is smaller.
	for i, e := range exprs {
		_ = i
		for _, a := range e.args {
			if tab.Index(a) >= tab.Index(e) {
				t.Fatalf("child %s not before parent %s", a.Key(), e.Key())
			}
		}
	}
}

func TestTableRoundTripRestoresPointerIdentity(t *testing.T) {
	exprs := wireSamples()
	tab := NewTable()
	idx := make([]uint32, len(exprs))
	for i, e := range exprs {
		idx[i] = tab.Add(e)
	}
	buf := AppendTable(nil, tab)

	d := wire.NewDecoder(buf)
	nodes, err := DecodeTable(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rest()) != 0 {
		t.Fatalf("trailing bytes: %d", len(d.Rest()))
	}
	if len(nodes) != tab.Len() {
		t.Fatalf("node count %d, want %d", len(nodes), tab.Len())
	}
	// Interned pointer identity is restored, not just structural equality.
	for i, e := range exprs {
		if nodes[idx[i]] != e {
			t.Fatalf("node %d (%s) decoded to a different pointer", idx[i], e.Key())
		}
	}
}

func TestTableReserializeByteIdentical(t *testing.T) {
	tab := NewTable()
	for _, e := range wireSamples() {
		tab.Add(e)
	}
	buf := AppendTable(nil, tab)

	nodes, err := DecodeTable(wire.NewDecoder(buf))
	if err != nil {
		t.Fatal(err)
	}
	tab2 := NewTable()
	for _, e := range nodes {
		tab2.Add(e)
	}
	buf2 := AppendTable(nil, tab2)
	if !bytes.Equal(buf, buf2) {
		t.Fatalf("re-serialization differs:\n%x\nvs\n%x", buf, buf2)
	}
}

func TestDecodeTableRejectsCorruption(t *testing.T) {
	tab := NewTable()
	for _, e := range wireSamples() {
		tab.Add(e)
	}
	good := AppendTable(nil, tab)

	// Checksum flip.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x01
	if _, err := DecodeTable(wire.NewDecoder(bad)); err == nil {
		t.Fatal("flipped checksum accepted")
	}
	// Truncations at every prefix must error, never panic or succeed.
	for n := 0; n < len(good); n++ {
		if _, err := DecodeTable(wire.NewDecoder(good[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDecodeTableRejectsMalformedNodes(t *testing.T) {
	cases := map[string][]byte{
		// count 1, unknown tag 0x7f
		"unknown tag": append(wire.AppendUvarint(nil, 1), 0x7f),
		// count 1, deref of size 9
		"deref size": func() []byte {
			b := wire.AppendUvarint(nil, 1)
			b = append(b, tagDeref)
			b = wire.AppendUvarint(b, 9)
			return wire.AppendUvarint(b, 0)
		}(),
		// count 1, deref referencing itself (index 0 not yet defined)
		"forward ref": func() []byte {
			b := wire.AppendUvarint(nil, 1)
			b = append(b, tagDeref)
			b = wire.AppendUvarint(b, 8)
			return wire.AppendUvarint(b, 0)
		}(),
		// count 1, op with absurd arity
		"op arity": func() []byte {
			b := wire.AppendUvarint(nil, 1)
			b = append(b, tagOp)
			b = wire.AppendUvarint(b, uint64(OpNot))
			return wire.AppendUvarint(b, 5)
		}(),
		// count 1, unknown operator id
		"unknown op": func() []byte {
			b := wire.AppendUvarint(nil, 1)
			b = append(b, tagOp)
			b = wire.AppendUvarint(b, 0xffff)
			return wire.AppendUvarint(b, 1)
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeTable(wire.NewDecoder(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
