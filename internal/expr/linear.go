package expr

import "sort"

// Linear is the linear normal form of an expression:
//
//	K + Σᵢ Cᵢ·tᵢ
//
// where the tᵢ are non-linear atoms (variables, region reads or opaque
// operator applications) and arithmetic is modulo 2⁶⁴. The solver decides
// pointer relations by subtracting linear forms; the simplifier uses it to
// canonicalise sums. Atoms are interned expressions, so the term map keys
// directly on the canonical pointer — merging coefficients never builds or
// hashes a key string.
type Linear struct {
	K     uint64
	terms map[*Expr]uint64 // atom → coefficient, modulo 2^64
}

// NumTerms returns the number of distinct non-constant terms.
func (l *Linear) NumTerms() int { return len(l.terms) }

// Coeff returns the coefficient of atom t (0 if absent).
func (l *Linear) Coeff(t *Expr) uint64 { return l.terms[t] }

// Terms calls f for each (atom, coefficient) pair in canonical key order.
func (l *Linear) Terms(f func(atom *Expr, coeff uint64)) {
	for _, e := range l.sortedAtoms() {
		f(e, l.terms[e])
	}
}

// sortedAtoms returns the atoms ordered by canonical key — the same order
// the string-keyed map produced, so rendered sums are byte-identical.
func (l *Linear) sortedAtoms() []*Expr {
	atoms := make([]*Expr, 0, len(l.terms))
	for e := range l.terms {
		atoms = append(atoms, e)
	}
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].Key() < atoms[j].Key() })
	return atoms
}

// SingleTerm returns the unique (atom, coefficient) pair if the linear form
// has exactly one non-constant term, and reports whether it does.
func (l *Linear) SingleTerm() (atom *Expr, coeff uint64, ok bool) {
	if len(l.terms) != 1 {
		return nil, 0, false
	}
	for e, c := range l.terms {
		return e, c, true
	}
	return nil, 0, false
}

func (l *Linear) add(e *Expr, c uint64) {
	if c == 0 {
		return
	}
	if old, ok := l.terms[e]; ok {
		if old+c == 0 {
			delete(l.terms, e)
		} else {
			l.terms[e] = old + c
		}
		return
	}
	if l.terms == nil {
		l.terms = map[*Expr]uint64{}
	}
	l.terms[e] = c
}

// AddLinear accumulates scale·m into l.
func (l *Linear) AddLinear(m *Linear, scale uint64) {
	l.K += m.K * scale
	for e, c := range m.terms {
		l.add(e, c*scale)
	}
}

// ToLinear decomposes e into linear normal form, flattening nested sums,
// differences, negations and multiplications by constants.
func ToLinear(e *Expr) *Linear {
	l := &Linear{}
	linearInto(l, e, 1)
	return l
}

func linearInto(l *Linear, e *Expr, scale uint64) {
	switch e.kind {
	case KindWord:
		l.K += e.word * scale
	case KindOp:
		switch e.op {
		case OpAdd:
			for _, a := range e.args {
				linearInto(l, a, scale)
			}
			return
		case OpNeg:
			linearInto(l, e.args[0], -scale)
			return
		case OpMul:
			// Fold the constant factors; if at most one non-constant
			// factor remains the product is linear in it.
			k := uint64(1)
			var rest []*Expr
			for _, a := range e.args {
				if w, ok := a.AsWord(); ok {
					k *= w
				} else {
					rest = append(rest, a)
				}
			}
			switch len(rest) {
			case 0:
				l.K += k * scale
				return
			case 1:
				linearInto(l, rest[0], k*scale)
				return
			}
		}
		l.add(e, scale)
	default:
		l.add(e, scale)
	}
}

// Expr re-emits the linear form as a canonical expression: terms sorted by
// key, the constant last, coefficient-1 terms bare, ±k coefficients chosen
// to print subtractions where natural.
func (l *Linear) Expr() *Expr {
	if len(l.terms) == 0 {
		return Word(l.K)
	}
	atoms := l.sortedAtoms()
	args := make([]*Expr, 0, len(atoms)+1)
	for _, e := range atoms {
		if c := l.terms[e]; c == 1 {
			args = append(args, e)
		} else {
			args = append(args, newOp(OpMul, Word(c), e))
		}
	}
	if l.K != 0 {
		args = append(args, Word(l.K))
	}
	if len(args) == 1 {
		return args[0]
	}
	return newOp(OpAdd, args...)
}

// Sub returns l - m as a fresh linear form.
func (l *Linear) Sub(m *Linear) *Linear {
	d := &Linear{K: l.K - m.K}
	for e, c := range l.terms {
		d.add(e, c)
	}
	for e, c := range m.terms {
		d.add(e, -c)
	}
	return d
}

// Const returns the constant value of the linear form and whether it has no
// non-constant terms.
func (l *Linear) Const() (uint64, bool) {
	if len(l.terms) == 0 {
		return l.K, true
	}
	return 0, false
}
