package expr

import "sort"

// Linear is the linear normal form of an expression:
//
//	K + Σᵢ Cᵢ·tᵢ
//
// where the tᵢ are non-linear atoms (variables, region reads or opaque
// operator applications) and arithmetic is modulo 2⁶⁴. The solver decides
// pointer relations by subtracting linear forms; the simplifier uses it to
// canonicalise sums.
type Linear struct {
	K     uint64
	terms map[string]*term
}

type term struct {
	e *Expr
	c uint64 // coefficient, modulo 2^64 (negative coefficients wrap)
}

// NumTerms returns the number of distinct non-constant terms.
func (l *Linear) NumTerms() int { return len(l.terms) }

// Coeff returns the coefficient of atom t (0 if absent).
func (l *Linear) Coeff(t *Expr) uint64 {
	if tt, ok := l.terms[t.Key()]; ok {
		return tt.c
	}
	return 0
}

// Terms calls f for each (atom, coefficient) pair in canonical key order.
func (l *Linear) Terms(f func(atom *Expr, coeff uint64)) {
	keys := make([]string, 0, len(l.terms))
	for k := range l.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f(l.terms[k].e, l.terms[k].c)
	}
}

// SingleTerm returns the unique (atom, coefficient) pair if the linear form
// has exactly one non-constant term, and reports whether it does.
func (l *Linear) SingleTerm() (atom *Expr, coeff uint64, ok bool) {
	if len(l.terms) != 1 {
		return nil, 0, false
	}
	for _, t := range l.terms {
		return t.e, t.c, true
	}
	return nil, 0, false
}

func (l *Linear) add(e *Expr, c uint64) {
	if c == 0 {
		return
	}
	k := e.Key()
	if t, ok := l.terms[k]; ok {
		t.c += c
		if t.c == 0 {
			delete(l.terms, k)
		}
		return
	}
	if l.terms == nil {
		l.terms = map[string]*term{}
	}
	l.terms[k] = &term{e: e, c: c}
}

// AddLinear accumulates scale·m into l.
func (l *Linear) AddLinear(m *Linear, scale uint64) {
	l.K += m.K * scale
	for _, t := range m.terms {
		l.add(t.e, t.c*scale)
	}
}

// ToLinear decomposes e into linear normal form, flattening nested sums,
// differences, negations and multiplications by constants.
func ToLinear(e *Expr) *Linear {
	l := &Linear{}
	linearInto(l, e, 1)
	return l
}

func linearInto(l *Linear, e *Expr, scale uint64) {
	switch e.kind {
	case KindWord:
		l.K += e.word * scale
	case KindOp:
		switch e.op {
		case OpAdd:
			for _, a := range e.args {
				linearInto(l, a, scale)
			}
			return
		case OpNeg:
			linearInto(l, e.args[0], -scale)
			return
		case OpMul:
			// Fold the constant factors; if at most one non-constant
			// factor remains the product is linear in it.
			k := uint64(1)
			var rest []*Expr
			for _, a := range e.args {
				if w, ok := a.AsWord(); ok {
					k *= w
				} else {
					rest = append(rest, a)
				}
			}
			switch len(rest) {
			case 0:
				l.K += k * scale
				return
			case 1:
				linearInto(l, rest[0], k*scale)
				return
			}
		}
		l.add(e, scale)
	default:
		l.add(e, scale)
	}
}

// Expr re-emits the linear form as a canonical expression: terms sorted by
// key, the constant last, coefficient-1 terms bare, ±k coefficients chosen
// to print subtractions where natural.
func (l *Linear) Expr() *Expr {
	if len(l.terms) == 0 {
		return Word(l.K)
	}
	keys := make([]string, 0, len(l.terms))
	for k := range l.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	args := make([]*Expr, 0, len(l.terms)+1)
	for _, k := range keys {
		t := l.terms[k]
		if t.c == 1 {
			args = append(args, t.e)
		} else {
			args = append(args, newOp(OpMul, Word(t.c), t.e))
		}
	}
	if l.K != 0 {
		args = append(args, Word(l.K))
	}
	if len(args) == 1 {
		return args[0]
	}
	return newOp(OpAdd, args...)
}

// Sub returns l - m as a fresh linear form.
func (l *Linear) Sub(m *Linear) *Linear {
	d := &Linear{K: l.K - m.K}
	for _, t := range l.terms {
		d.add(t.e, t.c)
	}
	for _, t := range m.terms {
		d.add(t.e, -t.c)
	}
	return d
}

// Const returns the constant value of the linear form and whether it has no
// non-constant terms.
func (l *Linear) Const() (uint64, bool) {
	if len(l.terms) == 0 {
		return l.K, true
	}
	return 0, false
}
