package expr

import (
	"testing"
)

// buildDeep returns a deeply nested constant expression: a chain of region
// reads whose addresses are offset sums, the shape compiler-generated
// pointer chasing produces. Two independent builds are structurally equal,
// so they exercise the equality path on terms whose canonical keys are
// kilobytes long.
func buildDeep(depth int) *Expr {
	e := V("rsp0")
	for i := 0; i < depth; i++ {
		e = Deref(Add(e, Word(uint64(8+i))), 8)
	}
	return e
}

// BenchmarkEqual measures structural equality of two independently built,
// structurally identical deep terms — the dominant comparison shape in
// predicate joins and solver queries.
func BenchmarkEqual(b *testing.B) {
	x := buildDeep(256)
	y := buildDeep(256)
	if !x.Equal(y) {
		b.Fatal("deep terms must be equal")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Equal(y) {
			b.Fatal("equality lost")
		}
	}
}

// BenchmarkKeyShared measures Key() on a fresh sum over subterms that were
// built (and therefore key-cached) elsewhere — the MemEntries/Clauses
// rendering shape.
func BenchmarkKeyShared(b *testing.B) {
	base := buildDeep(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Add(base, Word(uint64(i)|1))
		_ = e.Key()
	}
}

// BenchmarkSubstAbsent measures substitution for a variable that does not
// occur in the term (the common case when re-binding join variables).
func BenchmarkSubstAbsent(b *testing.B) {
	e := buildDeep(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Subst(e, "absent", Word(1)) != e {
			b.Fatal("substitution of an absent variable must be identity")
		}
	}
}
