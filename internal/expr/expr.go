// Package expr implements the symbolic expression language E of the paper
// (Section 3.1):
//
//	E ≔ R | F | W | V | E × N | Op × [E]
//
// Expressions are immutable trees built through smart constructors that
// perform light canonicalisation (constant folding, sum normalisation).
// A distinguished subset of expressions, the constant expressions C, contain
// no registers, flags or memory regions: they are built from machine words,
// variables such as rdi0 (the initial value of register rdi) and operator
// applications over those. Predicates map state parts to constant
// expressions, so most expressions manipulated by the lifter are in C.
package expr

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Var is a symbolic variable V: an opaque 64-bit unknown. By convention the
// lifter uses names like "rdi0" (initial register values), "v17" (fresh
// unknowns introduced by overapproximation), "S_401000" (the symbolic return
// address of the function at 0x401000) and "mem0_601000_8" (the initial
// contents of a global region).
type Var string

// Kind discriminates the expression forms of E.
type Kind uint8

// The expression forms.
const (
	KindWord  Kind = iota // a 64-bit machine word W
	KindVar               // a symbolic variable V
	KindDeref             // a memory region read  *[addr, size]
	KindOp                // an operator application Op × [E]
)

// Op enumerates the operators available in operator applications. All
// arithmetic is 64-bit two's complement; narrower x86 operations are
// expressed by composing an operator with a zero- or sign-extension.
type Op uint8

// The operator alphabet.
const (
	OpInvalid Op = iota
	OpAdd        // n-ary sum
	OpMul        // n-ary product
	OpUDiv       // unsigned division
	OpURem       // unsigned remainder
	OpSDiv       // signed division
	OpSRem       // signed remainder
	OpAnd        // bitwise and
	OpOr         // bitwise or
	OpXor        // bitwise xor
	OpShl        // logical shift left
	OpShr        // logical shift right
	OpSar        // arithmetic shift right
	OpNot        // bitwise complement
	OpNeg        // two's complement negation
	OpSExt8      // sign extension of the low 8 bits
	OpSExt16     // sign extension of the low 16 bits
	OpSExt32     // sign extension of the low 32 bits
	OpRol        // rotate left (64-bit)
	OpRor        // rotate right (64-bit)
)

var opNames = map[Op]string{
	OpAdd: "add", OpMul: "mul", OpUDiv: "udiv", OpURem: "urem",
	OpSDiv: "sdiv", OpSRem: "srem", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSar: "sar",
	OpNot: "not", OpNeg: "neg", OpSExt8: "sext8", OpSExt16: "sext16",
	OpSExt32: "sext32", OpRol: "rol", OpRor: "ror",
}

// String returns the lower-case mnemonic of the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Expr is an immutable symbolic expression. Use the package-level
// constructors; the zero value is not a valid expression. Every Expr is
// hash-consed (see intern.go): structurally equal expressions returned by
// the constructors are pointer-identical, each node carries a precomputed
// structural fingerprint, and the canonical Key and String renderings are
// computed at most once per node (atomically, since interned nodes are
// shared across the pipeline's lift workers).
type Expr struct {
	kind Kind
	word uint64
	v    Var
	op   Op
	size uint8 // KindDeref: region size in bytes
	args []*Expr
	fp   uint64 // structural fingerprint, fixed at interning

	key atomic.Pointer[string] // canonical key, built at most once
	str atomic.Pointer[string] // String rendering, built at most once
}

// Word returns the expression denoting the 64-bit constant w.
func Word(w uint64) *Expr {
	if w < uint64(len(smallWords)) {
		if e := smallWords[w]; e != nil {
			return e
		}
	}
	return intern(KindWord, w, "", 0, 0, nil, fpWord(w))
}

// V returns the expression denoting the symbolic variable name.
func V(name Var) *Expr {
	return intern(KindVar, 0, name, 0, 0, nil, fpVar(name))
}

// Deref returns the expression *[addr, size]: the value read from the
// size-byte little-endian memory region starting at addr.
func Deref(addr *Expr, size int) *Expr {
	var argv [1]*Expr
	argv[0] = addr
	return intern(KindDeref, 0, "", 0, uint8(size), argv[:], fpDeref(uint8(size), addr.fp))
}

// Kind reports the form of the expression.
func (e *Expr) Kind() Kind { return e.kind }

// WordVal returns the constant word of a KindWord expression.
func (e *Expr) WordVal() uint64 { return e.word }

// VarName returns the variable of a KindVar expression.
func (e *Expr) VarName() Var { return e.v }

// OpKind returns the operator of a KindOp expression.
func (e *Expr) OpKind() Op { return e.op }

// Size returns the region size in bytes of a KindDeref expression.
func (e *Expr) Size() int { return int(e.size) }

// Args returns the operand list of a KindOp or KindDeref expression.
// Callers must not mutate the returned slice.
func (e *Expr) Args() []*Expr { return e.args }

// IsWord reports whether e is the constant w.
func (e *Expr) IsWord(w uint64) bool { return e.kind == KindWord && e.word == w }

// AsWord returns the constant value of e and whether e is a constant.
func (e *Expr) AsWord() (uint64, bool) {
	if e.kind == KindWord {
		return e.word, true
	}
	return 0, false
}

// Fingerprint returns the precomputed 64-bit structural fingerprint of the
// expression. Pointer-identical expressions have equal fingerprints;
// distinct interned expressions collide with probability ~2⁻⁶⁴ per pair.
// Exact keying should use the pointer itself; fingerprints are for
// composite cache keys (see solver.Cache).
func (e *Expr) Fingerprint() uint64 { return e.fp }

// Key returns a canonical string key for the expression, suitable for use as
// a map key. Structurally equal expressions have equal keys. The key is
// built on first use and cached on the node; subterm keys are reused, so a
// deep term costs only its top layer once its children have been rendered.
func (e *Expr) Key() string {
	if k := e.key.Load(); k != nil {
		return *k
	}
	var b strings.Builder
	e.writeKey(&b)
	s := b.String()
	if e.key.CompareAndSwap(nil, &s) {
		return s
	}
	// A concurrent builder won the race; both built the same bytes.
	return *e.key.Load()
}

func (e *Expr) writeKey(b *strings.Builder) {
	switch e.kind {
	case KindWord:
		fmt.Fprintf(b, "0x%x", e.word)
	case KindVar:
		b.WriteString(string(e.v))
	case KindDeref:
		b.WriteString("*[")
		b.WriteString(e.args[0].Key())
		fmt.Fprintf(b, ",%d]", e.size)
	case KindOp:
		b.WriteString(e.op.String())
		b.WriteByte('(')
		for i, a := range e.args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(a.Key())
		}
		b.WriteByte(')')
	}
}

// String renders the expression for humans, following the paper's notation:
// sums print infix with two's-complement constants shown as subtractions
// (rsp0 - 0x28), products as 0x4*x, and region reads as *[a,n]. The
// rendering is deterministic, so it is safe inside canonical clause text.
// Like Key, it is built at most once per interned node.
func (e *Expr) String() string {
	if s := e.str.Load(); s != nil {
		return *s
	}
	s := e.render()
	if e.str.CompareAndSwap(nil, &s) {
		return s
	}
	return *e.str.Load()
}

func (e *Expr) render() string {
	switch e.kind {
	case KindWord:
		return fmt.Sprintf("0x%x", e.word)
	case KindVar:
		return string(e.v)
	case KindDeref:
		return fmt.Sprintf("*[%s,%d]", e.args[0], e.size)
	case KindOp:
		switch e.op {
		case OpAdd:
			var b strings.Builder
			for i, a := range e.args {
				w, isW := a.AsWord()
				neg := isW && w >= 1<<63
				switch {
				case i == 0 && neg:
					fmt.Fprintf(&b, "-0x%x", -w)
				case i == 0:
					b.WriteString(a.String())
				case neg:
					fmt.Fprintf(&b, " - 0x%x", -w)
				default:
					b.WriteString(" + ")
					b.WriteString(a.String())
				}
			}
			return b.String()
		case OpMul:
			var b strings.Builder
			for i, a := range e.args {
				if i > 0 {
					b.WriteByte('*')
				}
				if a.kind == KindOp && (a.op == OpAdd || a.op == OpMul) {
					fmt.Fprintf(&b, "(%s)", a)
				} else {
					b.WriteString(a.String())
				}
			}
			return b.String()
		}
		var b strings.Builder
		b.WriteString(e.op.String())
		b.WriteByte('(')
		for i, a := range e.args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteByte(')')
		return b.String()
	}
	return e.Key()
}

// Equal reports structural equality. Interning makes this a pointer
// compare: the constructors return the canonical node for every term, so
// distinct pointers are distinct terms. The recursive structural walk
// survives only as a debug-mode cross-check (EXPRDEBUG=1) that panics if
// the intern invariant is ever violated.
func (e *Expr) Equal(o *Expr) bool {
	if debugEqual {
		if structuralEq(e, o) != (e == o) {
			panic("expr: intern invariant violated: structural equality disagrees with pointer identity")
		}
	}
	return e == o
}

// IsConstExpr reports whether e lies in the constant-expression subset C:
// no registers, flags or region reads occur in e. Variables denote fixed
// (if unknown) values, so they are constant in the paper's sense.
func (e *Expr) IsConstExpr() bool {
	switch e.kind {
	case KindWord, KindVar:
		return true
	case KindDeref:
		return false
	case KindOp:
		for _, a := range e.args {
			if !a.IsConstExpr() {
				return false
			}
		}
		return true
	}
	return false
}

// Vars appends the set of variables occurring in e to dst and returns it.
func (e *Expr) Vars(dst []Var) []Var {
	switch e.kind {
	case KindVar:
		return append(dst, e.v)
	case KindOp, KindDeref:
		for _, a := range e.args {
			dst = a.Vars(dst)
		}
	}
	return dst
}

// ContainsVar reports whether variable v occurs in e.
func (e *Expr) ContainsVar(v Var) bool {
	switch e.kind {
	case KindVar:
		return e.v == v
	case KindOp, KindDeref:
		for _, a := range e.args {
			if a.ContainsVar(v) {
				return true
			}
		}
	}
	return false
}

// ContainsDeref reports whether any region read occurs in e.
func (e *Expr) ContainsDeref() bool {
	switch e.kind {
	case KindDeref:
		return true
	case KindOp:
		for _, a := range e.args {
			if a.ContainsDeref() {
				return true
			}
		}
	}
	return false
}

// newOp builds a raw operator application without simplification.
func newOp(op Op, args ...*Expr) *Expr {
	return intern(KindOp, 0, "", op, 0, args, fpOp(op, args))
}

// sortArgs returns args sorted by canonical key (for commutative
// operators). Already-sorted slices — the common case, since most
// operands arrive from previously canonicalised terms — are returned
// as-is without copying.
func sortArgs(args []*Expr) []*Expr {
	sorted := true
	for i := 1; i < len(args); i++ {
		if args[i-1].Key() > args[i].Key() {
			sorted = false
			break
		}
	}
	if sorted {
		return args
	}
	s := make([]*Expr, len(args))
	copy(s, args)
	sort.Slice(s, func(i, j int) bool { return s[i].Key() < s[j].Key() })
	return s
}
