// Package expr implements the symbolic expression language E of the paper
// (Section 3.1):
//
//	E ≔ R | F | W | V | E × N | Op × [E]
//
// Expressions are immutable trees built through smart constructors that
// perform light canonicalisation (constant folding, sum normalisation).
// A distinguished subset of expressions, the constant expressions C, contain
// no registers, flags or memory regions: they are built from machine words,
// variables such as rdi0 (the initial value of register rdi) and operator
// applications over those. Predicates map state parts to constant
// expressions, so most expressions manipulated by the lifter are in C.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Var is a symbolic variable V: an opaque 64-bit unknown. By convention the
// lifter uses names like "rdi0" (initial register values), "v17" (fresh
// unknowns introduced by overapproximation), "S_401000" (the symbolic return
// address of the function at 0x401000) and "mem0_601000_8" (the initial
// contents of a global region).
type Var string

// Kind discriminates the expression forms of E.
type Kind uint8

// The expression forms.
const (
	KindWord  Kind = iota // a 64-bit machine word W
	KindVar               // a symbolic variable V
	KindDeref             // a memory region read  *[addr, size]
	KindOp                // an operator application Op × [E]
)

// Op enumerates the operators available in operator applications. All
// arithmetic is 64-bit two's complement; narrower x86 operations are
// expressed by composing an operator with a zero- or sign-extension.
type Op uint8

// The operator alphabet.
const (
	OpInvalid Op = iota
	OpAdd        // n-ary sum
	OpMul        // n-ary product
	OpUDiv       // unsigned division
	OpURem       // unsigned remainder
	OpSDiv       // signed division
	OpSRem       // signed remainder
	OpAnd        // bitwise and
	OpOr         // bitwise or
	OpXor        // bitwise xor
	OpShl        // logical shift left
	OpShr        // logical shift right
	OpSar        // arithmetic shift right
	OpNot        // bitwise complement
	OpNeg        // two's complement negation
	OpSExt8      // sign extension of the low 8 bits
	OpSExt16     // sign extension of the low 16 bits
	OpSExt32     // sign extension of the low 32 bits
	OpRol        // rotate left (64-bit)
	OpRor        // rotate right (64-bit)
)

var opNames = map[Op]string{
	OpAdd: "add", OpMul: "mul", OpUDiv: "udiv", OpURem: "urem",
	OpSDiv: "sdiv", OpSRem: "srem", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSar: "sar",
	OpNot: "not", OpNeg: "neg", OpSExt8: "sext8", OpSExt16: "sext16",
	OpSExt32: "sext32", OpRol: "rol", OpRor: "ror",
}

// String returns the lower-case mnemonic of the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Expr is an immutable symbolic expression. Use the package-level
// constructors; the zero value is not a valid expression.
type Expr struct {
	kind Kind
	word uint64
	v    Var
	op   Op
	size uint8 // KindDeref: region size in bytes
	args []*Expr
	key  string
}

// Word returns the expression denoting the 64-bit constant w.
func Word(w uint64) *Expr {
	return &Expr{kind: KindWord, word: w}
}

// V returns the expression denoting the symbolic variable name.
func V(name Var) *Expr {
	return &Expr{kind: KindVar, v: name}
}

// Deref returns the expression *[addr, size]: the value read from the
// size-byte little-endian memory region starting at addr.
func Deref(addr *Expr, size int) *Expr {
	return &Expr{kind: KindDeref, size: uint8(size), args: []*Expr{addr}}
}

// Kind reports the form of the expression.
func (e *Expr) Kind() Kind { return e.kind }

// WordVal returns the constant word of a KindWord expression.
func (e *Expr) WordVal() uint64 { return e.word }

// VarName returns the variable of a KindVar expression.
func (e *Expr) VarName() Var { return e.v }

// OpKind returns the operator of a KindOp expression.
func (e *Expr) OpKind() Op { return e.op }

// Size returns the region size in bytes of a KindDeref expression.
func (e *Expr) Size() int { return int(e.size) }

// Args returns the operand list of a KindOp or KindDeref expression.
// Callers must not mutate the returned slice.
func (e *Expr) Args() []*Expr { return e.args }

// IsWord reports whether e is the constant w.
func (e *Expr) IsWord(w uint64) bool { return e.kind == KindWord && e.word == w }

// AsWord returns the constant value of e and whether e is a constant.
func (e *Expr) AsWord() (uint64, bool) {
	if e.kind == KindWord {
		return e.word, true
	}
	return 0, false
}

// Key returns a canonical string key for the expression, suitable for use as
// a map key. Structurally equal expressions have equal keys.
func (e *Expr) Key() string {
	if e.key == "" {
		var b strings.Builder
		e.writeKey(&b)
		e.key = b.String()
	}
	return e.key
}

func (e *Expr) writeKey(b *strings.Builder) {
	switch e.kind {
	case KindWord:
		fmt.Fprintf(b, "0x%x", e.word)
	case KindVar:
		b.WriteString(string(e.v))
	case KindDeref:
		b.WriteString("*[")
		e.args[0].writeKey(b)
		fmt.Fprintf(b, ",%d]", e.size)
	case KindOp:
		b.WriteString(e.op.String())
		b.WriteByte('(')
		for i, a := range e.args {
			if i > 0 {
				b.WriteByte(',')
			}
			a.writeKey(b)
		}
		b.WriteByte(')')
	}
}

// String renders the expression for humans, following the paper's notation:
// sums print infix with two's-complement constants shown as subtractions
// (rsp0 - 0x28), products as 0x4*x, and region reads as *[a,n]. The
// rendering is deterministic, so it is safe inside canonical clause text.
func (e *Expr) String() string {
	switch e.kind {
	case KindWord:
		return fmt.Sprintf("0x%x", e.word)
	case KindVar:
		return string(e.v)
	case KindDeref:
		return fmt.Sprintf("*[%s,%d]", e.args[0], e.size)
	case KindOp:
		switch e.op {
		case OpAdd:
			var b strings.Builder
			for i, a := range e.args {
				w, isW := a.AsWord()
				neg := isW && w >= 1<<63
				switch {
				case i == 0 && neg:
					fmt.Fprintf(&b, "-0x%x", -w)
				case i == 0:
					b.WriteString(a.String())
				case neg:
					fmt.Fprintf(&b, " - 0x%x", -w)
				default:
					b.WriteString(" + ")
					b.WriteString(a.String())
				}
			}
			return b.String()
		case OpMul:
			var b strings.Builder
			for i, a := range e.args {
				if i > 0 {
					b.WriteByte('*')
				}
				if a.kind == KindOp && (a.op == OpAdd || a.op == OpMul) {
					fmt.Fprintf(&b, "(%s)", a)
				} else {
					b.WriteString(a.String())
				}
			}
			return b.String()
		}
		var b strings.Builder
		b.WriteString(e.op.String())
		b.WriteByte('(')
		for i, a := range e.args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteByte(')')
		return b.String()
	}
	return e.Key()
}

// Equal reports structural equality.
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e == nil || o == nil {
		return false
	}
	return e.Key() == o.Key()
}

// IsConstExpr reports whether e lies in the constant-expression subset C:
// no registers, flags or region reads occur in e. Variables denote fixed
// (if unknown) values, so they are constant in the paper's sense.
func (e *Expr) IsConstExpr() bool {
	switch e.kind {
	case KindWord, KindVar:
		return true
	case KindDeref:
		return false
	case KindOp:
		for _, a := range e.args {
			if !a.IsConstExpr() {
				return false
			}
		}
		return true
	}
	return false
}

// Vars appends the set of variables occurring in e to dst and returns it.
func (e *Expr) Vars(dst []Var) []Var {
	switch e.kind {
	case KindVar:
		return append(dst, e.v)
	case KindOp, KindDeref:
		for _, a := range e.args {
			dst = a.Vars(dst)
		}
	}
	return dst
}

// ContainsVar reports whether variable v occurs in e.
func (e *Expr) ContainsVar(v Var) bool {
	switch e.kind {
	case KindVar:
		return e.v == v
	case KindOp, KindDeref:
		for _, a := range e.args {
			if a.ContainsVar(v) {
				return true
			}
		}
	}
	return false
}

// ContainsDeref reports whether any region read occurs in e.
func (e *Expr) ContainsDeref() bool {
	switch e.kind {
	case KindDeref:
		return true
	case KindOp:
		for _, a := range e.args {
			if a.ContainsDeref() {
				return true
			}
		}
	}
	return false
}

// newOp builds a raw operator application without simplification.
func newOp(op Op, args ...*Expr) *Expr {
	return &Expr{kind: KindOp, op: op, args: args}
}

// sortArgs returns args sorted by canonical key (for commutative operators).
func sortArgs(args []*Expr) []*Expr {
	s := make([]*Expr, len(args))
	copy(s, args)
	sort.Slice(s, func(i, j int) bool { return s[i].Key() < s[j].Key() })
	return s
}
