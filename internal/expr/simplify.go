package expr

// Smart constructors. Each returns a lightly canonicalised expression:
// constants are folded, sums are flattened through the linear normal form,
// and a handful of algebraic identities that matter for pointer arithmetic
// (x+0, x*1, x&~0, double negation, shifts by constants, extensions of
// constants) are applied. Simplification is deliberately local and cheap —
// deep rewriting is the solver's job.

// Add returns the canonical sum of the operands.
func Add(args ...*Expr) *Expr {
	l := &Linear{}
	for _, a := range args {
		linearInto(l, a, 1)
	}
	return l.Expr()
}

// Sub returns a - b.
func Sub(a, b *Expr) *Expr {
	l := ToLinear(a)
	linearInto(l, b, ^uint64(0)) // scale -1
	return l.Expr()
}

// Neg returns two's complement negation of a.
func Neg(a *Expr) *Expr {
	l := &Linear{}
	linearInto(l, a, ^uint64(0))
	return l.Expr()
}

// Mul returns the canonical product of the operands.
func Mul(args ...*Expr) *Expr {
	k := uint64(1)
	var rest []*Expr
	for _, a := range args {
		if w, ok := a.AsWord(); ok {
			k *= w
		} else if a.kind == KindOp && a.op == OpMul {
			for _, sub := range a.args {
				if w, ok := sub.AsWord(); ok {
					k *= w
				} else {
					rest = append(rest, sub)
				}
			}
		} else {
			rest = append(rest, a)
		}
	}
	if k == 0 {
		return Word(0)
	}
	if len(rest) == 0 {
		return Word(k)
	}
	if len(rest) == 1 {
		if k == 1 {
			return rest[0]
		}
		// k·(linear) distributes.
		l := &Linear{}
		linearInto(l, rest[0], k)
		return l.Expr()
	}
	rest = sortArgs(rest)
	if k != 1 {
		rest = append([]*Expr{Word(k)}, rest...)
	}
	return newOp(OpMul, rest...)
}

// And returns the bitwise conjunction a & b.
func And(a, b *Expr) *Expr {
	aw, aok := a.AsWord()
	bw, bok := b.AsWord()
	switch {
	case aok && bok:
		return Word(aw & bw)
	case aok && aw == 0, bok && bw == 0:
		return Word(0)
	case aok && aw == ^uint64(0):
		return b
	case bok && bw == ^uint64(0):
		return a
	}
	if a.Equal(b) {
		return a
	}
	if bok && a.kind == KindOp && a.op == OpAnd {
		// Mask intersection: (x & m1) & m2 = x & (m1 & m2).
		if w, ok := a.args[1].AsWord(); ok {
			if w&bw == w {
				return a // idempotent re-masking
			}
			return And(a.args[0], Word(w&bw))
		}
	}
	// Distribute a constant mask over a two-way disjunction, which
	// collapses the sub-register merge patterns the semantics produce:
	// ((x & ~0xff) | (v & 0xff)) & 0xff = v & 0xff.
	if bok && a.kind == KindOp && a.op == OpOr && len(a.args) == 2 {
		return Or(And(a.args[0], b), And(a.args[1], b))
	}
	args := sortArgs([]*Expr{a, b})
	// Keep constant masks in second position for readability.
	if _, ok := args[0].AsWord(); ok {
		args[0], args[1] = args[1], args[0]
	}
	return newOp(OpAnd, args...)
}

// Or returns the bitwise disjunction a | b.
func Or(a, b *Expr) *Expr {
	aw, aok := a.AsWord()
	bw, bok := b.AsWord()
	switch {
	case aok && bok:
		return Word(aw | bw)
	case aok && aw == 0:
		return b
	case bok && bw == 0:
		return a
	case aok && aw == ^uint64(0), bok && bw == ^uint64(0):
		return Word(^uint64(0))
	}
	if a.Equal(b) {
		return a
	}
	return newOp(OpOr, sortArgs([]*Expr{a, b})...)
}

// Xor returns the bitwise exclusive-or a ^ b.
func Xor(a, b *Expr) *Expr {
	aw, aok := a.AsWord()
	bw, bok := b.AsWord()
	switch {
	case aok && bok:
		return Word(aw ^ bw)
	case aok && aw == 0:
		return b
	case bok && bw == 0:
		return a
	}
	if a.Equal(b) {
		return Word(0)
	}
	return newOp(OpXor, sortArgs([]*Expr{a, b})...)
}

// Not returns the bitwise complement of a.
func Not(a *Expr) *Expr {
	if w, ok := a.AsWord(); ok {
		return Word(^w)
	}
	if a.kind == KindOp && a.op == OpNot {
		return a.args[0]
	}
	return newOp(OpNot, a)
}

// Shl returns a << b (64-bit logical left shift; shifts ≥ 64 yield 0, as a
// symbolic convention — the semantics layer masks x86 shift counts first).
func Shl(a, b *Expr) *Expr {
	if bw, ok := b.AsWord(); ok {
		if bw == 0 {
			return a
		}
		if bw >= 64 {
			return Word(0)
		}
		if aw, ok := a.AsWord(); ok {
			return Word(aw << bw)
		}
		// x << k  =  x · 2^k keeps pointer arithmetic linear.
		return Mul(a, Word(uint64(1)<<bw))
	}
	return newOp(OpShl, a, b)
}

// Shr returns a >> b (logical).
func Shr(a, b *Expr) *Expr {
	if bw, ok := b.AsWord(); ok {
		if bw == 0 {
			return a
		}
		if bw >= 64 {
			return Word(0)
		}
		if aw, ok := a.AsWord(); ok {
			return Word(aw >> bw)
		}
	}
	return newOp(OpShr, a, b)
}

// Sar returns a >> b (arithmetic).
func Sar(a, b *Expr) *Expr {
	if bw, ok := b.AsWord(); ok {
		if bw == 0 {
			return a
		}
		if aw, ok := a.AsWord(); ok {
			if bw >= 64 {
				bw = 63
			}
			return Word(uint64(int64(aw) >> bw))
		}
	}
	return newOp(OpSar, a, b)
}

// UDiv returns the unsigned quotient a / b (b = 0 left symbolic).
func UDiv(a, b *Expr) *Expr {
	if bw, ok := b.AsWord(); ok && bw != 0 {
		if aw, ok := a.AsWord(); ok {
			return Word(aw / bw)
		}
		if bw == 1 {
			return a
		}
	}
	return newOp(OpUDiv, a, b)
}

// URem returns the unsigned remainder a % b.
func URem(a, b *Expr) *Expr {
	if bw, ok := b.AsWord(); ok && bw != 0 {
		if aw, ok := a.AsWord(); ok {
			return Word(aw % bw)
		}
		if bw == 1 {
			return Word(0)
		}
	}
	return newOp(OpURem, a, b)
}

// SDiv returns the signed quotient.
func SDiv(a, b *Expr) *Expr {
	if bw, ok := b.AsWord(); ok && bw != 0 {
		if aw, ok := a.AsWord(); ok && !(int64(aw) == -1<<63 && int64(bw) == -1) {
			return Word(uint64(int64(aw) / int64(bw)))
		}
	}
	return newOp(OpSDiv, a, b)
}

// SRem returns the signed remainder.
func SRem(a, b *Expr) *Expr {
	if bw, ok := b.AsWord(); ok && bw != 0 {
		if aw, ok := a.AsWord(); ok && !(int64(aw) == -1<<63 && int64(bw) == -1) {
			return Word(uint64(int64(aw) % int64(bw)))
		}
	}
	return newOp(OpSRem, a, b)
}

// masks for the sized extensions.
const (
	Mask8  = uint64(0xff)
	Mask16 = uint64(0xffff)
	Mask32 = uint64(0xffffffff)
)

// ZExt returns the zero extension of the low size bytes of a (size ∈
// {1, 2, 4, 8}). Zero extension is canonically an And with the mask.
func ZExt(a *Expr, size int) *Expr {
	switch size {
	case 1:
		return And(a, Word(Mask8))
	case 2:
		return And(a, Word(Mask16))
	case 4:
		return And(a, Word(Mask32))
	default:
		return a
	}
}

// SExt returns the sign extension of the low size bytes of a.
func SExt(a *Expr, size int) *Expr {
	if w, ok := a.AsWord(); ok {
		switch size {
		case 1:
			return Word(uint64(int64(int8(w))))
		case 2:
			return Word(uint64(int64(int16(w))))
		case 4:
			return Word(uint64(int64(int32(w))))
		default:
			return a
		}
	}
	switch size {
	case 1:
		return newOp(OpSExt8, a)
	case 2:
		return newOp(OpSExt16, a)
	case 4:
		return newOp(OpSExt32, a)
	default:
		return a
	}
}

// Rol returns a rotated left by b bits (64-bit).
func Rol(a, b *Expr) *Expr {
	if bw, ok := b.AsWord(); ok {
		bw &= 63
		if bw == 0 {
			return a
		}
		if aw, ok := a.AsWord(); ok {
			return Word(aw<<bw | aw>>(64-bw))
		}
	}
	return newOp(OpRol, a, b)
}

// Ror returns a rotated right by b bits (64-bit).
func Ror(a, b *Expr) *Expr {
	if bw, ok := b.AsWord(); ok {
		bw &= 63
		if bw == 0 {
			return a
		}
		if aw, ok := a.AsWord(); ok {
			return Word(aw>>bw | aw<<(64-bw))
		}
	}
	return newOp(OpRor, a, b)
}

// App applies op to args through the corresponding smart constructor. It is
// the generic entry point used by the independent triple checker so that it
// canonicalises exactly like the lifter.
func App(op Op, args ...*Expr) *Expr {
	switch op {
	case OpAdd:
		return Add(args...)
	case OpMul:
		return Mul(args...)
	case OpUDiv:
		return UDiv(args[0], args[1])
	case OpURem:
		return URem(args[0], args[1])
	case OpSDiv:
		return SDiv(args[0], args[1])
	case OpSRem:
		return SRem(args[0], args[1])
	case OpAnd:
		return And(args[0], args[1])
	case OpOr:
		return Or(args[0], args[1])
	case OpXor:
		return Xor(args[0], args[1])
	case OpShl:
		return Shl(args[0], args[1])
	case OpShr:
		return Shr(args[0], args[1])
	case OpSar:
		return Sar(args[0], args[1])
	case OpNot:
		return Not(args[0])
	case OpNeg:
		return Neg(args[0])
	case OpSExt8:
		return SExt(args[0], 1)
	case OpSExt16:
		return SExt(args[0], 2)
	case OpSExt32:
		return SExt(args[0], 4)
	case OpRol:
		return Rol(args[0], args[1])
	case OpRor:
		return Ror(args[0], args[1])
	}
	return newOp(op, args...)
}

// Subst returns e with every occurrence of variable v replaced by r,
// re-simplifying along the way. When v does not occur in e the original
// (interned) pointer is returned without rebuilding anything.
func Subst(e *Expr, v Var, r *Expr) *Expr {
	switch e.kind {
	case KindWord:
		return e
	case KindVar:
		if e.v == v {
			return r
		}
		return e
	case KindDeref:
		a := Subst(e.args[0], v, r)
		if a == e.args[0] {
			return e
		}
		return Deref(a, int(e.size))
	case KindOp:
		if !e.ContainsVar(v) {
			return e
		}
		changed := false
		args := make([]*Expr, len(e.args))
		for i, a := range e.args {
			args[i] = Subst(a, v, r)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return e
		}
		return App(e.op, args...)
	}
	return e
}
