package expr

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternPointerIdentity checks the core hash-consing invariant on a few
// hand-built terms: constructing the same term twice yields the same pointer.
func TestInternPointerIdentity(t *testing.T) {
	mk := func() *Expr {
		return Deref(Add(V("rsp0"), Word(^uint64(0x27))), 8)
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("structurally equal terms interned to distinct pointers:\n%s\n%s", a, b)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same pointer, different fingerprint")
	}
	if !a.Equal(b) {
		t.Fatal("Equal false on identical pointer")
	}
	if Word(7) != Word(7) || V("x") != V("x") {
		t.Fatal("leaf constructors not interned")
	}
	if Word(7) == Word(8) || V("x") == V("y") {
		t.Fatal("distinct leaves share a node")
	}
}

// TestInternDistinctTerms checks that near-miss terms (differing in one
// scalar field) get distinct nodes even if fingerprints were to collide.
func TestInternDistinctTerms(t *testing.T) {
	a := Deref(V("p"), 8)
	b := Deref(V("p"), 4)
	if a == b {
		t.Fatal("derefs of different sizes share a node")
	}
	c := newOp(OpShl, V("x"), V("y"))
	d := newOp(OpShr, V("x"), V("y"))
	if c == d {
		t.Fatal("different operators share a node")
	}
}

// TestInternConcurrent hammers the table from many goroutines building the
// same working set, then checks canonicality. Run under -race this also
// exercises the shard locking and the atomic Key/String caches.
func TestInternConcurrent(t *testing.T) {
	const workers = 8
	results := make([][]*Expr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out []*Expr
			base := V("rsp0")
			for i := 0; i < 200; i++ {
				e := Deref(Add(base, Word(uint64(i*8))), 8)
				out = append(out, e, Add(e, Word(1)))
				_ = e.Key()
				_ = e.String()
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(results[w]) != len(results[0]) {
			t.Fatal("worker result length mismatch")
		}
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d term %d not canonical", w, i)
			}
		}
	}
}

// TestTableStats checks the hit/miss accounting on a term the test owns.
func TestTableStats(t *testing.T) {
	before := TableStats()
	fresh := fmt.Sprintf("stats_probe_%d", before.Misses)
	V(Var(fresh)) // miss: new node
	V(Var(fresh)) // hit: same node
	after := TableStats()
	if after.Misses < before.Misses+1 {
		t.Fatalf("miss not counted: before %+v after %+v", before, after)
	}
	if after.Hits < before.Hits+1 {
		t.Fatalf("hit not counted: before %+v after %+v", before, after)
	}
	if after.Entries != after.Misses {
		t.Fatalf("entries %d != misses %d in append-only table", after.Entries, after.Misses)
	}
}

// FuzzInternCanonical is the tentpole's canonicality oracle: for
// constructor-built pairs, structural equality (the pre-interning
// definition), pointer identity and fingerprint equality must all coincide,
// and the canonical renderings must agree with structural equality.
func FuzzInternCanonical(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(0), uint8(1), "rsp0", "rdi0")
	f.Add(uint64(0x28), uint64(0x28), uint8(3), uint8(3), "v17", "v17")
	f.Add(^uint64(0), uint64(1<<40), uint8(7), uint8(2), "a", "b")
	f.Fuzz(func(t *testing.T, w1, w2 uint64, sel1, sel2 uint8, n1, n2 string) {
		build := func(w uint64, sel uint8, name string) *Expr {
			base := V(Var(name))
			switch sel % 8 {
			case 0:
				return Word(w)
			case 1:
				return base
			case 2:
				return Add(base, Word(w))
			case 3:
				return Deref(Add(base, Word(w)), 8)
			case 4:
				return Mul(Word(w|2), base)
			case 5:
				return And(base, Word(w))
			case 6:
				return SExt(Xor(base, Word(w)), 4)
			default:
				return Deref(Sub(base, Word(w%512)), 4)
			}
		}
		a := build(w1, sel1, n1)
		b := build(w2, sel2, n2)
		structural := structuralEq(a, b)
		if (a == b) != structural {
			t.Fatalf("pointer identity %v != structural equality %v\na=%s\nb=%s",
				a == b, structural, a, b)
		}
		if structural && a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("equal terms, different fingerprints: %s", a)
		}
		if (a.Key() == b.Key()) != structural {
			t.Fatalf("Key agreement %v != structural equality %v\na=%s\nb=%s",
				a.Key() == b.Key(), structural, a.Key(), b.Key())
		}
		if structural && a.String() != b.String() {
			t.Fatalf("equal terms render differently: %q vs %q", a.String(), b.String())
		}
		if a.Equal(b) != structural {
			t.Fatal("Equal disagrees with structural equality")
		}
	})
}
